# Empty compiler generated dependencies file for lbpsim.
# This may be replaced when dependencies are built.
