file(REMOVE_RECURSE
  "CMakeFiles/lbpsim.dir/lbpsim.cc.o"
  "CMakeFiles/lbpsim.dir/lbpsim.cc.o.d"
  "lbpsim"
  "lbpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
