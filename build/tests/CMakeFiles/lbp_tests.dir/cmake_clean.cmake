file(REMOVE_RECURSE
  "CMakeFiles/lbp_tests.dir/test_common.cc.o"
  "CMakeFiles/lbp_tests.dir/test_common.cc.o.d"
  "CMakeFiles/lbp_tests.dir/test_core.cc.o"
  "CMakeFiles/lbp_tests.dir/test_core.cc.o.d"
  "CMakeFiles/lbp_tests.dir/test_integration.cc.o"
  "CMakeFiles/lbp_tests.dir/test_integration.cc.o.d"
  "CMakeFiles/lbp_tests.dir/test_loop_predictor.cc.o"
  "CMakeFiles/lbp_tests.dir/test_loop_predictor.cc.o.d"
  "CMakeFiles/lbp_tests.dir/test_obq.cc.o"
  "CMakeFiles/lbp_tests.dir/test_obq.cc.o.d"
  "CMakeFiles/lbp_tests.dir/test_runner.cc.o"
  "CMakeFiles/lbp_tests.dir/test_runner.cc.o.d"
  "CMakeFiles/lbp_tests.dir/test_schemes.cc.o"
  "CMakeFiles/lbp_tests.dir/test_schemes.cc.o.d"
  "CMakeFiles/lbp_tests.dir/test_tage.cc.o"
  "CMakeFiles/lbp_tests.dir/test_tage.cc.o.d"
  "CMakeFiles/lbp_tests.dir/test_workload.cc.o"
  "CMakeFiles/lbp_tests.dir/test_workload.cc.o.d"
  "lbp_tests"
  "lbp_tests.pdb"
  "lbp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
