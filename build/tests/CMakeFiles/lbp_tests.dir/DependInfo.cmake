
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/lbp_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/lbp_tests.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_core.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/lbp_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_loop_predictor.cc" "tests/CMakeFiles/lbp_tests.dir/test_loop_predictor.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_loop_predictor.cc.o.d"
  "/root/repo/tests/test_obq.cc" "tests/CMakeFiles/lbp_tests.dir/test_obq.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_obq.cc.o.d"
  "/root/repo/tests/test_runner.cc" "tests/CMakeFiles/lbp_tests.dir/test_runner.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_runner.cc.o.d"
  "/root/repo/tests/test_schemes.cc" "tests/CMakeFiles/lbp_tests.dir/test_schemes.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_schemes.cc.o.d"
  "/root/repo/tests/test_tage.cc" "tests/CMakeFiles/lbp_tests.dir/test_tage.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_tage.cc.o.d"
  "/root/repo/tests/test_workload.cc" "tests/CMakeFiles/lbp_tests.dir/test_workload.cc.o" "gcc" "tests/CMakeFiles/lbp_tests.dir/test_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/lbp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lbp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/repair/CMakeFiles/lbp_repair.dir/DependInfo.cmake"
  "/root/repo/build/src/bpu/CMakeFiles/lbp_bpu.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/lbp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lbp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
