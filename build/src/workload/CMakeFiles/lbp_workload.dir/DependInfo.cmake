
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/behavior.cc" "src/workload/CMakeFiles/lbp_workload.dir/behavior.cc.o" "gcc" "src/workload/CMakeFiles/lbp_workload.dir/behavior.cc.o.d"
  "/root/repo/src/workload/builder.cc" "src/workload/CMakeFiles/lbp_workload.dir/builder.cc.o" "gcc" "src/workload/CMakeFiles/lbp_workload.dir/builder.cc.o.d"
  "/root/repo/src/workload/executor.cc" "src/workload/CMakeFiles/lbp_workload.dir/executor.cc.o" "gcc" "src/workload/CMakeFiles/lbp_workload.dir/executor.cc.o.d"
  "/root/repo/src/workload/program.cc" "src/workload/CMakeFiles/lbp_workload.dir/program.cc.o" "gcc" "src/workload/CMakeFiles/lbp_workload.dir/program.cc.o.d"
  "/root/repo/src/workload/suite.cc" "src/workload/CMakeFiles/lbp_workload.dir/suite.cc.o" "gcc" "src/workload/CMakeFiles/lbp_workload.dir/suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lbp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
