file(REMOVE_RECURSE
  "CMakeFiles/lbp_workload.dir/behavior.cc.o"
  "CMakeFiles/lbp_workload.dir/behavior.cc.o.d"
  "CMakeFiles/lbp_workload.dir/builder.cc.o"
  "CMakeFiles/lbp_workload.dir/builder.cc.o.d"
  "CMakeFiles/lbp_workload.dir/executor.cc.o"
  "CMakeFiles/lbp_workload.dir/executor.cc.o.d"
  "CMakeFiles/lbp_workload.dir/program.cc.o"
  "CMakeFiles/lbp_workload.dir/program.cc.o.d"
  "CMakeFiles/lbp_workload.dir/suite.cc.o"
  "CMakeFiles/lbp_workload.dir/suite.cc.o.d"
  "liblbp_workload.a"
  "liblbp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
