file(REMOVE_RECURSE
  "liblbp_workload.a"
)
