# Empty compiler generated dependencies file for lbp_workload.
# This may be replaced when dependencies are built.
