# Empty compiler generated dependencies file for lbp_common.
# This may be replaced when dependencies are built.
