file(REMOVE_RECURSE
  "CMakeFiles/lbp_common.dir/stats.cc.o"
  "CMakeFiles/lbp_common.dir/stats.cc.o.d"
  "liblbp_common.a"
  "liblbp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
