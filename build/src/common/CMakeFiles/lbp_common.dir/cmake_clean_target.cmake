file(REMOVE_RECURSE
  "liblbp_common.a"
)
