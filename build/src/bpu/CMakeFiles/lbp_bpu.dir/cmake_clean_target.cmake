file(REMOVE_RECURSE
  "liblbp_bpu.a"
)
