
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bpu/local_two_level.cc" "src/bpu/CMakeFiles/lbp_bpu.dir/local_two_level.cc.o" "gcc" "src/bpu/CMakeFiles/lbp_bpu.dir/local_two_level.cc.o.d"
  "/root/repo/src/bpu/loop_predictor.cc" "src/bpu/CMakeFiles/lbp_bpu.dir/loop_predictor.cc.o" "gcc" "src/bpu/CMakeFiles/lbp_bpu.dir/loop_predictor.cc.o.d"
  "/root/repo/src/bpu/tage.cc" "src/bpu/CMakeFiles/lbp_bpu.dir/tage.cc.o" "gcc" "src/bpu/CMakeFiles/lbp_bpu.dir/tage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lbp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
