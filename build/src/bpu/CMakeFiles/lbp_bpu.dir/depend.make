# Empty dependencies file for lbp_bpu.
# This may be replaced when dependencies are built.
