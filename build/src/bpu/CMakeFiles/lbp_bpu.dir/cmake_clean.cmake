file(REMOVE_RECURSE
  "CMakeFiles/lbp_bpu.dir/local_two_level.cc.o"
  "CMakeFiles/lbp_bpu.dir/local_two_level.cc.o.d"
  "CMakeFiles/lbp_bpu.dir/loop_predictor.cc.o"
  "CMakeFiles/lbp_bpu.dir/loop_predictor.cc.o.d"
  "CMakeFiles/lbp_bpu.dir/tage.cc.o"
  "CMakeFiles/lbp_bpu.dir/tage.cc.o.d"
  "liblbp_bpu.a"
  "liblbp_bpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbp_bpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
