file(REMOVE_RECURSE
  "CMakeFiles/lbp_repair.dir/obq.cc.o"
  "CMakeFiles/lbp_repair.dir/obq.cc.o.d"
  "CMakeFiles/lbp_repair.dir/scheme.cc.o"
  "CMakeFiles/lbp_repair.dir/scheme.cc.o.d"
  "CMakeFiles/lbp_repair.dir/schemes.cc.o"
  "CMakeFiles/lbp_repair.dir/schemes.cc.o.d"
  "liblbp_repair.a"
  "liblbp_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbp_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
