file(REMOVE_RECURSE
  "liblbp_repair.a"
)
