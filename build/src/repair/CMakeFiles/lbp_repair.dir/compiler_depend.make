# Empty compiler generated dependencies file for lbp_repair.
# This may be replaced when dependencies are built.
