file(REMOVE_RECURSE
  "CMakeFiles/lbp_core.dir/cache.cc.o"
  "CMakeFiles/lbp_core.dir/cache.cc.o.d"
  "CMakeFiles/lbp_core.dir/core.cc.o"
  "CMakeFiles/lbp_core.dir/core.cc.o.d"
  "liblbp_core.a"
  "liblbp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
