file(REMOVE_RECURSE
  "liblbp_core.a"
)
