# Empty dependencies file for lbp_core.
# This may be replaced when dependencies are built.
