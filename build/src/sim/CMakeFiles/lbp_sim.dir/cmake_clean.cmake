file(REMOVE_RECURSE
  "CMakeFiles/lbp_sim.dir/runner.cc.o"
  "CMakeFiles/lbp_sim.dir/runner.cc.o.d"
  "liblbp_sim.a"
  "liblbp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
