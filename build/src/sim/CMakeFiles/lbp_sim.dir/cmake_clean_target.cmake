file(REMOVE_RECURSE
  "liblbp_sim.a"
)
