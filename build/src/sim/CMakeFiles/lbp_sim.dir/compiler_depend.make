# Empty compiler generated dependencies file for lbp_sim.
# This may be replaced when dependencies are built.
