
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/runner.cc" "src/sim/CMakeFiles/lbp_sim.dir/runner.cc.o" "gcc" "src/sim/CMakeFiles/lbp_sim.dir/runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lbp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/repair/CMakeFiles/lbp_repair.dir/DependInfo.cmake"
  "/root/repo/build/src/bpu/CMakeFiles/lbp_bpu.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/lbp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lbp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
