# Empty dependencies file for repair_comparison.
# This may be replaced when dependencies are built.
