file(REMOVE_RECURSE
  "CMakeFiles/repair_comparison.dir/repair_comparison.cpp.o"
  "CMakeFiles/repair_comparison.dir/repair_comparison.cpp.o.d"
  "repair_comparison"
  "repair_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repair_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
