file(REMOVE_RECURSE
  "CMakeFiles/generic_local.dir/generic_local.cpp.o"
  "CMakeFiles/generic_local.dir/generic_local.cpp.o.d"
  "generic_local"
  "generic_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generic_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
