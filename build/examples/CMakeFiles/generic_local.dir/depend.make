# Empty dependencies file for generic_local.
# This may be replaced when dependencies are built.
