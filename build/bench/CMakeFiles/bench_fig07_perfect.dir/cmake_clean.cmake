file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_perfect.dir/bench_fig07_perfect.cc.o"
  "CMakeFiles/bench_fig07_perfect.dir/bench_fig07_perfect.cc.o.d"
  "bench_fig07_perfect"
  "bench_fig07_perfect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_perfect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
