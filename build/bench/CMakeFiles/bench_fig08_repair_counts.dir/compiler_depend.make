# Empty compiler generated dependencies file for bench_fig08_repair_counts.
# This may be replaced when dependencies are built.
