file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_repair_counts.dir/bench_fig08_repair_counts.cc.o"
  "CMakeFiles/bench_fig08_repair_counts.dir/bench_fig08_repair_counts.cc.o.d"
  "bench_fig08_repair_counts"
  "bench_fig08_repair_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_repair_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
