file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_multistage.dir/bench_fig12_multistage.cc.o"
  "CMakeFiles/bench_fig12_multistage.dir/bench_fig12_multistage.cc.o.d"
  "bench_fig12_multistage"
  "bench_fig12_multistage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_multistage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
