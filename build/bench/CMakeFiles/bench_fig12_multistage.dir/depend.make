# Empty dependencies file for bench_fig12_multistage.
# This may be replaced when dependencies are built.
