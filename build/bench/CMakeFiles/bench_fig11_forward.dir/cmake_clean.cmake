file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_forward.dir/bench_fig11_forward.cc.o"
  "CMakeFiles/bench_fig11_forward.dir/bench_fig11_forward.cc.o.d"
  "bench_fig11_forward"
  "bench_fig11_forward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_forward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
