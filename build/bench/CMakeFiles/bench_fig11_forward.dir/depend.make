# Empty dependencies file for bench_fig11_forward.
# This may be replaced when dependencies are built.
