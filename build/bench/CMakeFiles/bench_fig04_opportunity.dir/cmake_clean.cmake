file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_opportunity.dir/bench_fig04_opportunity.cc.o"
  "CMakeFiles/bench_fig04_opportunity.dir/bench_fig04_opportunity.cc.o.d"
  "bench_fig04_opportunity"
  "bench_fig04_opportunity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_opportunity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
