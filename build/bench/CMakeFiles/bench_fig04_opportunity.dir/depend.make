# Empty dependencies file for bench_fig04_opportunity.
# This may be replaced when dependencies are built.
