file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_predictors.dir/bench_micro_predictors.cc.o"
  "CMakeFiles/bench_micro_predictors.dir/bench_micro_predictors.cc.o.d"
  "bench_micro_predictors"
  "bench_micro_predictors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
