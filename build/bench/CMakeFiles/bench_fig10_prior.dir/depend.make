# Empty dependencies file for bench_fig10_prior.
# This may be replaced when dependencies are built.
