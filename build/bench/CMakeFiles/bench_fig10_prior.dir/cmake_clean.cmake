file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_prior.dir/bench_fig10_prior.cc.o"
  "CMakeFiles/bench_fig10_prior.dir/bench_fig10_prior.cc.o.d"
  "bench_fig10_prior"
  "bench_fig10_prior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_prior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
