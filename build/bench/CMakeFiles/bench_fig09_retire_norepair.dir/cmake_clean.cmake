file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_retire_norepair.dir/bench_fig09_retire_norepair.cc.o"
  "CMakeFiles/bench_fig09_retire_norepair.dir/bench_fig09_retire_norepair.cc.o.d"
  "bench_fig09_retire_norepair"
  "bench_fig09_retire_norepair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_retire_norepair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
