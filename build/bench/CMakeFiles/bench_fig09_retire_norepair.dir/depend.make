# Empty dependencies file for bench_fig09_retire_norepair.
# This may be replaced when dependencies are built.
