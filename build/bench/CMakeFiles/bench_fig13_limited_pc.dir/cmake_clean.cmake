file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_limited_pc.dir/bench_fig13_limited_pc.cc.o"
  "CMakeFiles/bench_fig13_limited_pc.dir/bench_fig13_limited_pc.cc.o.d"
  "bench_fig13_limited_pc"
  "bench_fig13_limited_pc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_limited_pc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
