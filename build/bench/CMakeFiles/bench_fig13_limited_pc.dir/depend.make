# Empty dependencies file for bench_fig13_limited_pc.
# This may be replaced when dependencies are built.
