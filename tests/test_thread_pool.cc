/**
 * @file
 * Unit tests for the common/thread_pool engine: job-count resolution,
 * index coverage and slot placement under parallelFor, exception
 * propagation to the calling thread, drain-on-destruct, and the
 * utilization accounting. The final test measures the actual parallel
 * speedup of a suite run and is skipped on machines without enough
 * hardware threads for the ratio to be meaningful.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hh"
#include "sim/runner.hh"
#include "workload/suite.hh"

using namespace lbp;

TEST(ResolveJobs, ExplicitRequestWins)
{
    ASSERT_EQ(setenv("REPRO_JOBS", "7", 1), 0);
    EXPECT_EQ(resolveJobs(3), 3u);
    unsetenv("REPRO_JOBS");
}

TEST(ResolveJobs, ReadsReproJobsEnv)
{
    ASSERT_EQ(setenv("REPRO_JOBS", "5", 1), 0);
    EXPECT_EQ(resolveJobs(0), 5u);
    ASSERT_EQ(setenv("REPRO_JOBS", "999999", 1), 0);
    EXPECT_EQ(resolveJobs(0), 1024u);  // sanity clamp
    ASSERT_EQ(setenv("REPRO_JOBS", "0", 1), 0);
    EXPECT_GE(resolveJobs(0), 1u);     // 0 falls through to hardware
    unsetenv("REPRO_JOBS");
    EXPECT_GE(resolveJobs(0), 1u);
}

TEST(ThreadPool, WorkerCountClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.workerCount(), 1u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    constexpr std::size_t kN = 500;
    ThreadPool pool(4);
    std::vector<std::atomic<unsigned>> hits(kN);
    std::vector<std::size_t> slot(kN, 0);
    pool.parallelFor(kN, [&](std::size_t i) {
        hits[i].fetch_add(1);
        slot[i] = i * i;  // each index writes only its own slot
    });
    for (std::size_t i = 0; i < kN; ++i) {
        EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
        EXPECT_EQ(slot[i], i * i) << "index " << i;
    }
}

TEST(ThreadPool, ParallelForZeroIsNoop)
{
    ThreadPool pool(2);
    bool ran = false;
    pool.parallelFor(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, ExceptionPropagatesThroughWait)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("task failed"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);

    // The error is cleared on rethrow: the pool stays usable.
    std::atomic<int> ok{0};
    pool.submit([&] { ++ok; });
    pool.wait();
    EXPECT_EQ(ok.load(), 1);
}

TEST(ThreadPool, ExceptionPropagatesThroughParallelFor)
{
    ThreadPool pool(3);
    EXPECT_THROW(pool.parallelFor(16,
                                  [&](std::size_t i) {
                                      if (i == 7)
                                          throw std::logic_error("bad");
                                  }),
                 std::logic_error);
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 32; ++i)
            pool.submit([&] { ++done; });
        // No wait(): destruction must still run every queued task.
    }
    EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, BusySecondsTracksEachWorker)
{
    ThreadPool pool(3);
    std::atomic<std::uint64_t> sink{0};
    pool.parallelFor(6, [&](std::size_t) {
        std::uint64_t x = 0;
        for (int i = 0; i < 100000; ++i)
            x += static_cast<std::uint64_t>(i);
        sink += x;  // keep the loop observable
    });
    const std::vector<double> busy = pool.busySeconds();
    ASSERT_EQ(busy.size(), 3u);
    for (const double b : busy)
        EXPECT_GE(b, 0.0);
    const double total =
        std::accumulate(busy.begin(), busy.end(), 0.0);
    EXPECT_GT(total, 0.0);
}

TEST(ThreadPool, ParallelSuiteSpeedup)
{
    // Acceptance target: jobs=4 is >= 2.5x faster than serial on a
    // 20-workload suite. The ratio only exists with real hardware
    // parallelism, so skip where threads would just time-slice.
    if (std::thread::hardware_concurrency() < 4)
        GTEST_SKIP() << "needs >= 4 hardware threads, have "
                     << std::thread::hardware_concurrency();

    SuiteOptions opts;
    opts.maxWorkloads = 20;
    const std::vector<Program> suite = buildSuite(opts);
    SimConfig cfg;
    cfg.warmupInstrs = 20000;
    cfg.measureInstrs = 40000;
    cfg.useLocal = true;
    cfg.repair.kind = RepairKind::ForwardWalk;

    const SuiteResult serial = runSuite(suite, cfg, 1);
    const SuiteResult parallel = runSuite(suite, cfg, 4);
    ASSERT_GT(parallel.telemetry.wallSeconds, 0.0);
    EXPECT_GE(serial.telemetry.wallSeconds /
                  parallel.telemetry.wallSeconds,
              2.5)
        << "serial " << serial.telemetry.wallSeconds << "s vs parallel "
        << parallel.telemetry.wallSeconds << "s";
}
