/**
 * @file
 * Resident sweep daemon (src/serve): cross-client dedup with
 * byte-identical results, graceful drain semantics (in-flight work
 * finishes, new submits are rejected, clean exit), and the thin-client
 * guarantee — `lbpsweep --server` output byte-identical to a local
 * sweep for the default figure set. Wire format under test:
 * docs/SERVER.md (lbp-serve-v1).
 */

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/jsonl.hh"
#include "common/socket.hh"
#include "common/thread_pool.hh"
#include "obs/metrics.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "sim/result_store.hh"
#include "sim/suite_cache.hh"
#include "sim/sweep.hh"
#include "sim/sweep_spec.hh"

using namespace lbp;

namespace {

constexpr const char *kHello =
    "{\"type\":\"hello\",\"protocol\":\"lbp-serve-v1\"}\n";

/** Read one frame (30s timeout) and parse it; fails the test on EOF,
 *  timeout or malformed JSON. */
JsonValue
readFrame(TcpConn &conn)
{
    std::string line;
    const int got = conn.readLine(line, 30000);
    EXPECT_EQ(got, 1) << "no frame from server";
    JsonValue msg;
    std::string err;
    EXPECT_TRUE(JsonValue::parse(line, msg, &err))
        << err << " in: " << line;
    return msg;
}

std::string
frameType(const JsonValue &msg)
{
    const JsonValue *t = msg.member("type");
    return t ? t->str() : "";
}

/** Drive the hello exchange; returns after the server's hello. */
void
shakeHands(TcpConn &conn)
{
    ASSERT_TRUE(conn.sendAll(kHello));
    const JsonValue reply = readFrame(conn);
    ASSERT_EQ(frameType(reply), "hello");
    const JsonValue *proto = reply.member("protocol");
    ASSERT_TRUE(proto);
    EXPECT_EQ(proto->str(), "lbp-serve-v1");
}

/** Consume frames for @p id until its result arrives; returns it. */
JsonValue
awaitResult(TcpConn &conn, const std::string &id)
{
    while (true) {
        const JsonValue msg = readFrame(conn);
        const std::string type = frameType(msg);
        EXPECT_NE(type, "rejected") << "request " << id << " rejected";
        EXPECT_NE(type, "error") << "protocol error for " << id;
        if (type == "rejected" || type == "error" || type.empty())
            return msg;
        if (type == "result") {
            const JsonValue *idv = msg.member("id");
            EXPECT_TRUE(idv && idv->str() == id);
            return msg;
        }
    }
}

/** A submit frame meaty enough (~1.4M instrs) to still be in flight
 *  when a back-to-back duplicate arrives. */
std::string
bigSubmit(const std::string &id)
{
    return "{\"type\":\"submit\",\"id\":\"" + id +
           "\",\"suite\":2,\"warmup\":1000,\"instr\":200000,"
           "\"spec\":\"config forward-walk\"}\n";
}

/** Send a `metrics` frame and return the unescaped exposition text. */
std::string
scrape(TcpConn &conn)
{
    EXPECT_TRUE(conn.sendAll("{\"type\":\"metrics\"}\n"));
    const JsonValue msg = readFrame(conn);
    EXPECT_EQ(frameType(msg), "metrics");
    const JsonValue *e = msg.member("exposition");
    EXPECT_TRUE(e);
    return e ? e->str() : std::string();
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line))
        lines.push_back(line);
    return lines;
}

/** Count unlabeled sample lines for @p name ("name value"). */
std::size_t
countSamples(const std::vector<std::string> &lines,
             const std::string &name)
{
    const std::string prefix = name + ' ';
    std::size_t n = 0;
    for (const std::string &l : lines)
        if (l.rfind(prefix, 0) == 0)
            ++n;
    return n;
}

/** Exposition-format histogram invariants: all 24 finite buckets
 *  present and monotonically cumulative, the +Inf bucket and the top
 *  finite bucket (samples clamp) both equal to _count. */
void
expectHistogramWellFormed(const std::vector<std::string> &lines,
                          const std::string &name)
{
    std::vector<std::uint64_t> buckets;
    std::uint64_t inf = 0, count = 0;
    bool haveInf = false, haveCount = false;
    const std::string bucketPrefix = name + "_bucket{le=\"";
    const std::string countPrefix = name + "_count ";
    for (const std::string &l : lines) {
        if (l.rfind(bucketPrefix, 0) == 0) {
            const std::size_t sep = l.find("\"} ");
            ASSERT_NE(sep, std::string::npos) << l;
            const std::uint64_t v =
                std::strtoull(l.c_str() + sep + 3, nullptr, 10);
            if (l.compare(bucketPrefix.size(), 4, "+Inf") == 0) {
                inf = v;
                haveInf = true;
            } else {
                buckets.push_back(v);
            }
        } else if (l.rfind(countPrefix, 0) == 0) {
            count = std::strtoull(l.c_str() + countPrefix.size(),
                                  nullptr, 10);
            haveCount = true;
        }
    }
    ASSERT_TRUE(haveInf) << name;
    ASSERT_TRUE(haveCount) << name;
    ASSERT_EQ(buckets.size(), FixedHistogram::numBuckets) << name;
    for (std::size_t i = 1; i < buckets.size(); ++i)
        EXPECT_GE(buckets[i], buckets[i - 1])
            << name << " bucket " << i << " not cumulative";
    EXPECT_EQ(inf, count) << name;
    EXPECT_EQ(buckets.back(), count) << name;
}

} // namespace

TEST(Serve, DedupTwoClientsShareOneSimulation)
{
    SuiteCache cache;  // fresh: the server must actually simulate
    ServeOptions sopts;
    sopts.port = 0;
    sopts.jobs = 2;
    sopts.cache = &cache;
    Server server(sopts);
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;

    ThreadPool pool(1);
    int rc = -1;
    pool.submit([&] { rc = server.run(); });

    TcpConn a = tcpConnect("127.0.0.1", server.port(), err);
    ASSERT_TRUE(a.valid()) << err;
    TcpConn b = tcpConnect("127.0.0.1", server.port(), err);
    ASSERT_TRUE(b.valid()) << err;
    shakeHands(a);
    shakeHands(b);

    // Identical submits, back to back: the second must coalesce onto
    // the first (the sweep runs far longer than the submit gap).
    ASSERT_TRUE(a.sendAll(bigSubmit("ra")));
    const JsonValue accA = readFrame(a);
    ASSERT_EQ(frameType(accA), "accepted");
    ASSERT_TRUE(accA.member("dedup"));
    EXPECT_FALSE(accA.member("dedup")->boolean(true));

    ASSERT_TRUE(b.sendAll(bigSubmit("rb")));
    const JsonValue accB = readFrame(b);
    ASSERT_EQ(frameType(accB), "accepted");
    ASSERT_TRUE(accB.member("dedup"));
    EXPECT_TRUE(accB.member("dedup")->boolean(false));

    const JsonValue resA = awaitResult(a, "ra");
    const JsonValue resB = awaitResult(b, "rb");
    ASSERT_EQ(frameType(resA), "result");
    ASSERT_EQ(frameType(resB), "result");

    // Both subscribers get byte-identical payloads.
    const JsonValue *csvA = resA.member("csv");
    const JsonValue *csvB = resB.member("csv");
    ASSERT_TRUE(csvA && csvB);
    EXPECT_FALSE(csvA->str().empty());
    EXPECT_EQ(csvA->str(), csvB->str());
    ASSERT_TRUE(resA.member("manifest") && resB.member("manifest"));
    EXPECT_EQ(resA.member("manifest")->str(),
              resB.member("manifest")->str());

    a.closeConn();
    b.closeConn();
    server.requestDrain();
    pool.wait();
    EXPECT_EQ(rc, 0);

    const ServeStats st = server.stats();
    EXPECT_EQ(st.sweepsExecuted, 1u);   // one simulation for both
    EXPECT_EQ(st.requestsReceived, 2u);
    EXPECT_EQ(st.requestsAccepted, 2u);
    EXPECT_EQ(st.requestsDeduped, 1u);
    EXPECT_EQ(st.requestsCompleted, 2u);
    EXPECT_EQ(st.clientsConnected, 2u);
    EXPECT_GT(st.eventsStreamed, 0u);
    EXPECT_GT(st.cellsSimulated, 0u);
}

TEST(Serve, DrainFinishesInFlightAndRejectsNewSubmits)
{
    SuiteCache cache;
    ServeOptions sopts;
    sopts.port = 0;
    sopts.jobs = 2;
    sopts.cache = &cache;
    Server server(sopts);
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;

    ThreadPool pool(1);
    int rc = -1;
    pool.submit([&] { rc = server.run(); });

    TcpConn conn = tcpConnect("127.0.0.1", server.port(), err);
    ASSERT_TRUE(conn.valid()) << err;
    shakeHands(conn);

    ASSERT_TRUE(conn.sendAll(bigSubmit("r1")));
    const JsonValue acc = readFrame(conn);
    ASSERT_EQ(frameType(acc), "accepted");

    // Drain via the protocol: same-connection ordering guarantees the
    // server is draining before it reads the next submit. Event frames
    // from the in-flight sweep may interleave before the reply.
    ASSERT_TRUE(conn.sendAll("{\"type\":\"drain\"}\n"));
    JsonValue draining;
    while (true) {
        draining = readFrame(conn);
        if (frameType(draining) != "event")
            break;
    }
    ASSERT_EQ(frameType(draining), "draining");
    ASSERT_TRUE(draining.member("pending"));
    EXPECT_EQ(draining.member("pending")->number(), 1.0);

    ASSERT_TRUE(conn.sendAll(bigSubmit("r2")));
    JsonValue rej;
    while (true) {
        rej = readFrame(conn);
        if (frameType(rej) != "event")
            break;
    }
    ASSERT_EQ(frameType(rej), "rejected");
    ASSERT_TRUE(rej.member("id") && rej.member("code"));
    EXPECT_EQ(rej.member("id")->str(), "r2");
    EXPECT_EQ(rej.member("code")->str(), "draining");

    // The in-flight request still completes...
    const JsonValue res = awaitResult(conn, "r1");
    ASSERT_EQ(frameType(res), "result");
    ASSERT_TRUE(res.member("csv"));
    EXPECT_FALSE(res.member("csv")->str().empty());

    // ...and the server then exits cleanly.
    pool.wait();
    EXPECT_EQ(rc, 0);
    const ServeStats st = server.stats();
    EXPECT_EQ(st.sweepsExecuted, 1u);
    EXPECT_EQ(st.requestsCompleted, 1u);
    EXPECT_EQ(st.requestsRejected, 1u);
    EXPECT_GT(st.drainSeconds, 0.0);
}

TEST(Serve, ServerSweepByteIdenticalToLocal)
{
    // Local reference: the default figure set over a tiny suite,
    // simulated from a cold cache.
    SweepSpec spec;
    spec.suite = 2;
    spec.warmupInstrs = 2000;
    spec.measureInstrs = 3000;
    finalizeSweepSpec(spec);
    const std::vector<Program> suite = buildSpecSuite(spec);

    SuiteCache localCache;
    SweepOptions lopts;
    lopts.jobs = 2;
    lopts.cache = &localCache;
    const SweepResult local = runSweep(suite, spec.configs, lopts);
    std::ostringstream localCsv;
    writeSweepCsv(localCsv, local, spec.configs);

    // Server side: a fresh daemon with its own cold cache.
    SuiteCache serverCache;
    ServeOptions sopts;
    sopts.port = 0;
    sopts.jobs = 2;
    sopts.cache = &serverCache;
    Server server(sopts);
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;

    ThreadPool pool(1);
    int rc = -1;
    pool.submit([&] { rc = server.run(); });

    ServeClientOptions copts;
    copts.host = "127.0.0.1";
    copts.port = server.port();
    copts.suite = 2;
    copts.warmupInstrs = 2000;
    copts.measureInstrs = 3000;
    ServeSweepResult res;
    ASSERT_TRUE(runServeSweep(copts, res, err)) << err;

    EXPECT_EQ(res.cells, local.stats.cellsTotal);
    EXPECT_EQ(res.csv, localCsv.str());
    EXPECT_EQ(res.configs.size(), spec.configs.size());
    for (std::size_t c = 0; c < res.configs.size(); ++c) {
        EXPECT_EQ(res.configs[c].name, spec.configs[c].name);
        EXPECT_EQ(res.configs[c].key, local.configKeys[c]);
    }
    // Manifests agree on identity (timings legitimately differ).
    EXPECT_NE(res.manifest.find("\"suite_key\": " +
                                jsonQuote(local.suiteKey)),
              std::string::npos);
    EXPECT_EQ(res.counter("sweep_cells_total"),
              static_cast<double>(local.stats.cellsTotal));
    EXPECT_EQ(res.counter("sweep_cells_simulated"),
              static_cast<double>(local.stats.cellsSimulated));

    server.requestDrain();
    pool.wait();
    EXPECT_EQ(rc, 0);
}

TEST(Serve, MetricsFrameCoversEveryRegistryRowExactlyOnce)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::path(::testing::TempDir()) / "serve_scrape_store";
    fs::remove_all(dir);
    ResultStore store(dir.string());

    SuiteCache cache;
    ServeOptions sopts;
    sopts.port = 0;
    sopts.jobs = 2;
    sopts.cache = &cache;
    sopts.store = &store;
    Server server(sopts);
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;

    ThreadPool pool(1);
    int rc = -1;
    pool.submit([&] { rc = server.run(); });

    // One executed sweep gives every registry real traffic: run
    // aggregates, sweep totals, serve counters, store writes.
    ServeClientOptions copts;
    copts.host = "127.0.0.1";
    copts.port = server.port();
    copts.suite = 2;
    copts.warmupInstrs = 1000;
    copts.measureInstrs = 2000;
    ServeSweepResult res;
    ASSERT_TRUE(runServeSweep(copts, res, err)) << err;

    TcpConn conn = tcpConnect("127.0.0.1", server.port(), err);
    ASSERT_TRUE(conn.valid()) << err;
    shakeHands(conn);
    const std::string expo = scrape(conn);
    conn.closeConn();

    server.requestDrain();
    pool.wait();
    EXPECT_EQ(rc, 0);

    // Every row of all four descriptor tables renders exactly one
    // unlabeled sample — no missing rows, no duplicates, so scrape
    // names cannot drift from the tables.
    const std::vector<std::string> lines = splitLines(expo);
    for (const RunMetricDesc &d : runMetrics())
        EXPECT_EQ(countSamples(lines, d.name), 1u) << d.name;
    for (const SweepMetricDesc &d : sweepMetrics())
        EXPECT_EQ(countSamples(lines, d.name), 1u) << d.name;
    for (const ServeMetricDesc &d : serveMetrics())
        EXPECT_EQ(countSamples(lines, d.name), 1u) << d.name;
    for (const StoreMetricDesc &d : storeMetrics())
        EXPECT_EQ(countSamples(lines, d.name), 1u) << d.name;

    for (const char *h : {"serve_queue_wait_ms", "serve_execute_ms",
                          "serve_request_total_ms", "serve_queue_depth"})
        expectHistogramWellFormed(lines, h);

    // The cold sweep missed and then wrote fresh entries, so the
    // per-fingerprint labeled families carry the live fingerprint.
    EXPECT_GT(store.stats().writes, 0u);
    EXPECT_NE(
        expo.find("result_store_fingerprint_misses{fingerprint=\""),
        std::string::npos);
    EXPECT_NE(
        expo.find("result_store_fingerprint_bytes{fingerprint=\""),
        std::string::npos);
}

TEST(Serve, ScrapeDuringInFlightSweepParsesCleanly)
{
    SuiteCache cache;
    ServeOptions sopts;
    sopts.port = 0;
    sopts.jobs = 2;
    sopts.cache = &cache;
    Server server(sopts);
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;

    ThreadPool pool(1);
    int rc = -1;
    pool.submit([&] { rc = server.run(); });

    TcpConn a = tcpConnect("127.0.0.1", server.port(), err);
    ASSERT_TRUE(a.valid()) << err;
    shakeHands(a);
    ASSERT_TRUE(a.sendAll(bigSubmit("rs")));
    const JsonValue acc = readFrame(a);
    ASSERT_EQ(frameType(acc), "accepted");
    ASSERT_TRUE(acc.member("trace_id"));
    EXPECT_EQ(acc.member("trace_id")->str(), "srv-1");

    // A second connection scrapes while that sweep is executing: the
    // reply must be a complete, parseable exposition.
    TcpConn b = tcpConnect("127.0.0.1", server.port(), err);
    ASSERT_TRUE(b.valid()) << err;
    shakeHands(b);
    const std::vector<std::string> lines = splitLines(scrape(b));
    b.closeConn();
    ASSERT_FALSE(lines.empty());
    EXPECT_EQ(countSamples(lines, "serve_requests_received"), 1u);
    EXPECT_EQ(countSamples(lines, "sweep_cells_total"), 1u);
    for (const std::string &l : lines) {
        if (l.empty() || l[0] == '#')
            continue;
        EXPECT_NE(l.find(' '), std::string::npos)
            << "sample line without a value: " << l;
    }

    const JsonValue resp = awaitResult(a, "rs");
    ASSERT_EQ(frameType(resp), "result");
    a.closeConn();
    server.requestDrain();
    pool.wait();
    EXPECT_EQ(rc, 0);

    // The executed request landed one sample in each latency
    // histogram (and one admission-time queue-depth sample).
    const ServeHistograms hs = server.histograms();
    EXPECT_EQ(hs.queueWaitMs.count(), 1u);
    EXPECT_EQ(hs.executeMs.count(), 1u);
    EXPECT_EQ(hs.requestTotalMs.count(), 1u);
    EXPECT_EQ(hs.queueDepth.count(), 1u);
    EXPECT_GE(server.stats().scrapesServed, 1u);
}

TEST(Serve, TraceIdPropagatesEndToEnd)
{
    SuiteCache cache;
    std::ostringstream serverLog, traceOut;
    ServeOptions sopts;
    sopts.port = 0;
    sopts.jobs = 2;
    sopts.cache = &cache;
    sopts.eventLog = &serverLog;
    sopts.traceOut = &traceOut;
    Server server(sopts);
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;

    ThreadPool pool(1);
    int rc = -1;
    pool.submit([&] { rc = server.run(); });

    // Client-supplied trace id: echoed in the accepted frame, stamped
    // on every mirrored sweep event, embedded in the manifest.
    std::ostringstream clientLog;
    ServeClientOptions copts;
    copts.host = "127.0.0.1";
    copts.port = server.port();
    copts.suite = 2;
    copts.warmupInstrs = 1000;
    copts.measureInstrs = 2000;
    copts.traceId = "trace-e2e";
    copts.eventLog = &clientLog;
    ServeSweepResult res;
    ASSERT_TRUE(runServeSweep(copts, res, err)) << err;
    EXPECT_EQ(res.traceId, "trace-e2e");
    EXPECT_NE(res.manifest.find("\"trace_id\": \"trace-e2e\""),
              std::string::npos);
    const std::vector<std::string> clientLines =
        splitLines(clientLog.str());
    ASSERT_FALSE(clientLines.empty());
    for (const std::string &l : clientLines)
        EXPECT_NE(l.find("\"trace\":\"trace-e2e\""), std::string::npos)
            << l;

    // Identical request without a client trace: the server mints a
    // deterministic id, and the payload bytes don't depend on tracing.
    ServeClientOptions copts2 = copts;
    copts2.traceId.clear();
    copts2.eventLog = nullptr;
    ServeSweepResult res2;
    ASSERT_TRUE(runServeSweep(copts2, res2, err)) << err;
    EXPECT_EQ(res2.traceId.rfind("srv-", 0), 0u);
    EXPECT_EQ(res2.csv, res.csv);

    server.requestDrain();
    pool.wait();
    EXPECT_EQ(rc, 0);

    // Daemon side: event-log records and the Chrome-trace service
    // spans carry the same id, completing the traversal.
    EXPECT_NE(serverLog.str().find("\"trace\":\"trace-e2e\""),
              std::string::npos);
    const std::string spans = traceOut.str();
    EXPECT_NE(spans.find("\"trace_id\":\"trace-e2e\""),
              std::string::npos);
    for (const char *phase : {"queue", "simulate", "assemble"}) {
        const std::string needle =
            std::string("\"name\":\"") + phase + "\"";
        EXPECT_NE(spans.find(needle), std::string::npos) << phase;
    }
}
