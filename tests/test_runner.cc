/**
 * @file
 * Tests for the sim harness: environment knobs, run accounting, and
 * TAGE-configuration property sweeps through the full runner path.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/runner.hh"
#include "workload/suite.hh"

using namespace lbp;

TEST(BenchEnv, DefaultsWhenUnset)
{
    unsetenv("REPRO_INSTR");
    unsetenv("REPRO_WARMUP");
    unsetenv("REPRO_WORKLOADS");
    const BenchEnv env = BenchEnv::fromEnvironment();
    EXPECT_EQ(env.measureInstrs, 60000u);
    EXPECT_EQ(env.warmupInstrs, 40000u);
    EXPECT_EQ(env.maxWorkloads, 0u);
}

TEST(BenchEnv, ReadsOverrides)
{
    setenv("REPRO_INSTR", "12345", 1);
    setenv("REPRO_WARMUP", "777", 1);
    setenv("REPRO_WORKLOADS", "9", 1);
    const BenchEnv env = BenchEnv::fromEnvironment();
    EXPECT_EQ(env.measureInstrs, 12345u);
    EXPECT_EQ(env.warmupInstrs, 777u);
    EXPECT_EQ(env.maxWorkloads, 9u);
    unsetenv("REPRO_INSTR");
    unsetenv("REPRO_WARMUP");
    unsetenv("REPRO_WORKLOADS");

    SimConfig cfg;
    BenchEnv e2;
    e2.warmupInstrs = 111;
    e2.measureInstrs = 222;
    e2.apply(cfg);
    EXPECT_EQ(cfg.warmupInstrs, 111u);
    EXPECT_EQ(cfg.measureInstrs, 222u);
}

TEST(Runner, RunOneFillsEveryField)
{
    const Program prog =
        buildWorkload(categoryProfiles()[0], 3, SuiteOptions{}.seed);
    SimConfig cfg;
    cfg.warmupInstrs = 10000;
    cfg.measureInstrs = 20000;
    cfg.useLocal = true;
    cfg.repair.kind = RepairKind::ForwardWalk;
    const RunResult r = runOne(prog, cfg);
    EXPECT_EQ(r.workload, prog.name);
    EXPECT_EQ(r.category, "Server");
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GE(r.stats.retiredInstrs, 20000u);
    EXPECT_GT(r.tageKB, 5.0);
    EXPECT_GT(r.localKB, 0.3);
    EXPECT_GT(r.repairKB, 0.2);
}

TEST(Runner, RunOneIsDeterministic)
{
    const Program prog =
        buildWorkload(categoryProfiles()[4], 0, SuiteOptions{}.seed);
    SimConfig cfg;
    cfg.warmupInstrs = 10000;
    cfg.measureInstrs = 20000;
    const RunResult a = runOne(prog, cfg);
    const RunResult b = runOne(prog, cfg);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.mispredicts, b.stats.mispredicts);
}

// A TAGE-configuration property: bigger configurations never do
// meaningfully worse, end to end through the pipeline.
class TageConfigs : public ::testing::TestWithParam<int>
{
};

TEST_P(TageConfigs, LargerIsNotWorse)
{
    const Program prog = buildWorkload(
        categoryProfiles()[static_cast<unsigned>(GetParam())], 0,
        SuiteOptions{}.seed);
    SimConfig small;
    small.warmupInstrs = 15000;
    small.measureInstrs = 30000;
    SimConfig big = small;
    big.tage = TageConfig::kb57();
    const RunResult rs = runOne(prog, small);
    const RunResult rb = runOne(prog, big);
    EXPECT_LE(rb.mpki, rs.mpki * 1.1)
        << "57KB TAGE must not lose to 7KB";
}

INSTANTIATE_TEST_SUITE_P(Categories, TageConfigs,
                         ::testing::Values(0, 2, 4, 6));

TEST(Runner, SCurveIsSortedAscending)
{
    SuiteOptions opts;
    opts.maxWorkloads = 7;
    const auto suite = buildSuite(opts);
    SimConfig base;
    base.warmupInstrs = 8000;
    base.measureInstrs = 15000;
    SimConfig test = base;
    test.useLocal = true;
    test.repair.kind = RepairKind::Perfect;
    const auto curve =
        ipcSCurve(runSuite(suite, base), runSuite(suite, test));
    for (std::size_t i = 1; i < curve.size(); ++i)
        EXPECT_LE(curve[i - 1].second, curve[i].second);
}
