/**
 * @file
 * Tests for the sim harness: environment knobs, run accounting, and
 * TAGE-configuration property sweeps through the full runner path.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/runner.hh"
#include "sim/suite_cache.hh"
#include "workload/suite.hh"

using namespace lbp;

TEST(BenchEnv, DefaultsWhenUnset)
{
    unsetenv("REPRO_INSTR");
    unsetenv("REPRO_WARMUP");
    unsetenv("REPRO_WORKLOADS");
    unsetenv("REPRO_JOBS");
    const BenchEnv env = BenchEnv::fromEnvironment();
    EXPECT_EQ(env.measureInstrs, 60000u);
    EXPECT_EQ(env.warmupInstrs, 40000u);
    EXPECT_EQ(env.maxWorkloads, 0u);
    EXPECT_EQ(env.jobs, 0u);
}

TEST(BenchEnv, ReadsOverrides)
{
    setenv("REPRO_INSTR", "12345", 1);
    setenv("REPRO_WARMUP", "777", 1);
    setenv("REPRO_WORKLOADS", "9", 1);
    setenv("REPRO_JOBS", "3", 1);
    const BenchEnv env = BenchEnv::fromEnvironment();
    EXPECT_EQ(env.measureInstrs, 12345u);
    EXPECT_EQ(env.warmupInstrs, 777u);
    EXPECT_EQ(env.maxWorkloads, 9u);
    EXPECT_EQ(env.jobs, 3u);
    unsetenv("REPRO_INSTR");
    unsetenv("REPRO_WARMUP");
    unsetenv("REPRO_WORKLOADS");
    unsetenv("REPRO_JOBS");

    SimConfig cfg;
    BenchEnv e2;
    e2.warmupInstrs = 111;
    e2.measureInstrs = 222;
    e2.apply(cfg);
    EXPECT_EQ(cfg.warmupInstrs, 111u);
    EXPECT_EQ(cfg.measureInstrs, 222u);
}

TEST(Runner, RunOneFillsEveryField)
{
    const Program prog =
        buildWorkload(categoryProfiles()[0], 3, SuiteOptions{}.seed);
    SimConfig cfg;
    cfg.warmupInstrs = 10000;
    cfg.measureInstrs = 20000;
    cfg.useLocal = true;
    cfg.repair.kind = RepairKind::ForwardWalk;
    const RunResult r = runOne(prog, cfg);
    EXPECT_EQ(r.workload, prog.name);
    EXPECT_EQ(r.category, "Server");
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GE(r.stats.retiredInstrs, 20000u);
    EXPECT_GT(r.tageKB, 5.0);
    EXPECT_GT(r.localKB, 0.3);
    EXPECT_GT(r.repairKB, 0.2);
}

TEST(Runner, RunOneIsDeterministic)
{
    const Program prog =
        buildWorkload(categoryProfiles()[4], 0, SuiteOptions{}.seed);
    SimConfig cfg;
    cfg.warmupInstrs = 10000;
    cfg.measureInstrs = 20000;
    const RunResult a = runOne(prog, cfg);
    const RunResult b = runOne(prog, cfg);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.mispredicts, b.stats.mispredicts);
}

// A TAGE-configuration property: bigger configurations never do
// meaningfully worse, end to end through the pipeline.
class TageConfigs : public ::testing::TestWithParam<int>
{
};

TEST_P(TageConfigs, LargerIsNotWorse)
{
    const Program prog = buildWorkload(
        categoryProfiles()[static_cast<unsigned>(GetParam())], 0,
        SuiteOptions{}.seed);
    SimConfig small;
    small.warmupInstrs = 15000;
    small.measureInstrs = 30000;
    SimConfig big = small;
    big.tage = TageConfig::kb57();
    const RunResult rs = runOne(prog, small);
    const RunResult rb = runOne(prog, big);
    EXPECT_LE(rb.mpki, rs.mpki * 1.1)
        << "57KB TAGE must not lose to 7KB";
}

INSTANTIATE_TEST_SUITE_P(Categories, TageConfigs,
                         ::testing::Values(0, 2, 4, 6));

TEST(Runner, SCurveIsSortedAscending)
{
    SuiteOptions opts;
    opts.maxWorkloads = 7;
    const auto suite = buildSuite(opts);
    SimConfig base;
    base.warmupInstrs = 8000;
    base.measureInstrs = 15000;
    SimConfig test = base;
    test.useLocal = true;
    test.repair.kind = RepairKind::Perfect;
    const auto curve =
        ipcSCurve(runSuite(suite, base), runSuite(suite, test));
    for (std::size_t i = 1; i < curve.size(); ++i)
        EXPECT_LE(curve[i - 1].second, curve[i].second);
}

namespace {

/** A suite whose runs all have the given IPC (zero = degenerate). */
SuiteResult
syntheticSuite(double ipc)
{
    SuiteResult s;
    for (int i = 0; i < 3; ++i) {
        RunResult r;
        r.workload = "w" + std::to_string(i);
        r.category = i < 2 ? "A" : "B";
        r.ipc = ipc;
        s.runs.push_back(r);
    }
    return s;
}

} // namespace

TEST(Runner, IpcGainGuardsEmptyRatioList)
{
    // All-zero-IPC suites produce no comparable pairs. geomean of an
    // empty list is 0, which naively reads as a -100% "gain"; the
    // aggregation must report 0 (no data) instead.
    const SuiteResult dead = syntheticSuite(0.0);
    EXPECT_EQ(ipcGainPct(dead, dead), 0.0);

    const SuiteResult live = syntheticSuite(1.5);
    EXPECT_EQ(ipcGainPct(live, dead), 0.0);
    EXPECT_EQ(ipcGainPct(dead, live), 0.0);
    EXPECT_NEAR(ipcGainPct(live, live), 0.0, 1e-12);
}

TEST(Runner, AggregateByCategoryGuardsEmptyRatioList)
{
    const SuiteResult dead = syntheticSuite(0.0);
    for (const CategoryAgg &c : aggregateByCategory(dead, dead)) {
        EXPECT_EQ(c.ipcGainPct, 0.0) << c.name;
        EXPECT_EQ(c.mpkiReductionPct, 0.0) << c.name;
    }
}

TEST(SuiteCache, SecondRunIsAMemoHit)
{
    SuiteOptions opts;
    opts.maxWorkloads = 3;
    const auto suite = buildSuite(opts);
    SimConfig cfg;
    cfg.warmupInstrs = 4000;
    cfg.measureInstrs = 8000;

    SuiteCache cache;
    const SuiteResult &a = cache.run(suite, cfg, 1);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 0u);

    const SuiteResult &b = cache.run(suite, cfg, 1);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(&a, &b);  // the cache hands back the same entry
    EXPECT_EQ(cache.entries(), 1u);
}

TEST(SuiteCache, DistinctConfigsAreDistinctEntries)
{
    SuiteOptions opts;
    opts.maxWorkloads = 2;
    const auto suite = buildSuite(opts);
    SimConfig base;
    base.warmupInstrs = 4000;
    base.measureInstrs = 8000;
    SimConfig local = base;
    local.useLocal = true;
    local.repair.kind = RepairKind::Perfect;

    SuiteCache cache;
    cache.run(suite, base, 1);
    cache.run(suite, local, 1);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.entries(), 2u);
}

TEST(SuiteCache, RepairFieldsIgnoredWithoutUseLocal)
{
    // The core builds no repair scheme when useLocal is off, so two
    // baseline configs differing only in leftover repair fields must
    // share one cache entry.
    SimConfig a;
    a.warmupInstrs = 4000;
    a.measureInstrs = 8000;
    SimConfig b = a;
    b.repair.kind = RepairKind::Snapshot;
    b.repair.ports = {64, 8, 8};
    EXPECT_EQ(configKey(a), configKey(b));
    b.useLocal = true;
    EXPECT_NE(configKey(a), configKey(b));
}

TEST(Runner, SuiteTelemetryIsFilledIn)
{
    SuiteOptions opts;
    opts.maxWorkloads = 3;
    const auto suite = buildSuite(opts);
    SimConfig cfg;
    cfg.warmupInstrs = 4000;
    cfg.measureInstrs = 8000;
    const SuiteResult res = runSuite(suite, cfg, 2);
    EXPECT_EQ(res.telemetry.workloads, suite.size());
    EXPECT_EQ(res.telemetry.jobs, 2u);
    EXPECT_GT(res.telemetry.wallSeconds, 0.0);
    EXPECT_GT(res.telemetry.simInstrs, 0u);
    EXPECT_GT(res.telemetry.minstrPerSec(), 0.0);
    EXPECT_EQ(res.telemetry.label, configLabel(cfg));
    EXPECT_EQ(res.telemetry.workerBusySeconds.size(), 2u);
}
