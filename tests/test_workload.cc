/**
 * @file
 * Tests for the workload substrate: branch behaviours, CFG programs,
 * the architectural executor, and the 202-workload suite.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/builder.hh"
#include "workload/executor.hh"
#include "workload/suite.hh"

using namespace lbp;

// ---------------------------------------------------------------------
// Behaviours
// ---------------------------------------------------------------------

namespace {

std::vector<bool>
drive(BranchBehavior &b, unsigned n, std::uint64_t ghist = 0)
{
    std::vector<std::uint64_t> state(b.stateWords(), 0);
    b.reset(state.data());
    GlobalBranchCtx ctx;
    ctx.globalHist = ghist;
    std::vector<bool> out;
    out.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        out.push_back(b.next(state.data(), ctx));
    return out;
}

} // namespace

class LoopPeriod : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(LoopPeriod, BackwardLoopShape)
{
    const unsigned period = GetParam();
    LoopExitBehavior b(true, {{period, 1}}, 42);
    const auto seq = drive(b, period * 5);
    // Every block of `period` outcomes is (period-1) taken + 1 not.
    for (unsigned rep = 0; rep < 5; ++rep) {
        for (unsigned i = 0; i < period; ++i) {
            const bool expect_taken = i + 1 < period;
            EXPECT_EQ(seq[rep * period + i], expect_taken)
                << "period " << period << " rep " << rep << " i " << i;
        }
    }
}

TEST_P(LoopPeriod, ForwardExitIsInverted)
{
    const unsigned period = GetParam();
    LoopExitBehavior b(false, {{period, 1}}, 42);
    const auto seq = drive(b, period * 3);
    for (unsigned i = 0; i < seq.size(); ++i)
        EXPECT_EQ(seq[i], (i % period) + 1 == period);
}

INSTANTIATE_TEST_SUITE_P(Periods, LoopPeriod,
                         ::testing::Values(2u, 3u, 5u, 8u, 24u, 100u));

TEST(Behavior, LoopEntropyDrawsBothPeriods)
{
    LoopExitBehavior b(true, {{4, 1}, {7, 1}}, 9);
    const auto seq = drive(b, 600);
    // Measure run lengths between not-takens.
    std::set<unsigned> runs;
    unsigned run = 0;
    for (bool t : seq) {
        if (t) {
            ++run;
        } else {
            runs.insert(run + 1);
            run = 0;
        }
    }
    EXPECT_TRUE(runs.count(4));
    EXPECT_TRUE(runs.count(7));
    EXPECT_EQ(runs.size(), 2u);
}

TEST(Behavior, LoopIsDeterministicAcrossResets)
{
    LoopExitBehavior b(true, {{5, 3}, {9, 1}}, 1234);
    EXPECT_EQ(drive(b, 200), drive(b, 200));
}

TEST(Behavior, PatternRepeatsExactly)
{
    PatternBehavior b(0b0110, 4);
    const auto seq = drive(b, 16);
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(seq[i], ((0b0110 >> (i % 4)) & 1) != 0);
}

TEST(Behavior, CorrelatedFollowsParity)
{
    CorrelatedBehavior b(0b101, false, 0, 3);
    std::vector<std::uint64_t> state(1);
    b.reset(state.data());
    GlobalBranchCtx ctx;
    ctx.globalHist = 0b111;
    EXPECT_EQ(b.next(state.data(), ctx),
              (__builtin_popcountll(0b111 & 0b101) & 1) != 0);
    ctx.globalHist = 0b100;
    EXPECT_EQ(b.next(state.data(), ctx), true);
    ctx.globalHist = 0b000;
    EXPECT_EQ(b.next(state.data(), ctx), false);
}

TEST(Behavior, CorrelatedInvertFlips)
{
    CorrelatedBehavior plain(0b11, false, 0, 3);
    CorrelatedBehavior inv(0b11, true, 0, 3);
    std::vector<std::uint64_t> s1(1), s2(1);
    plain.reset(s1.data());
    inv.reset(s2.data());
    GlobalBranchCtx ctx;
    ctx.globalHist = 0b01;
    EXPECT_NE(plain.next(s1.data(), ctx), inv.next(s2.data(), ctx));
}

TEST(Behavior, BiasedRandomMatchesRate)
{
    BiasedRandomBehavior b(250, 77);
    const auto seq = drive(b, 20000);
    unsigned taken = 0;
    for (bool t : seq)
        taken += t;
    EXPECT_NEAR(static_cast<double>(taken) / seq.size(), 0.25, 0.03);
}

// ---------------------------------------------------------------------
// Program / builder
// ---------------------------------------------------------------------

TEST(Program, BuilderProducesValidCfg)
{
    ProgramBuilder b("t", "Test", 1);
    b.addStream({0x1000, 8, 4096, false, 0});
    std::vector<Seg> top;
    top.push_back(Seg::straight(5));
    std::vector<Seg> body;
    body.push_back(Seg::straight(3));
    top.push_back(Seg::loop(
        std::make_unique<LoopExitBehavior>(
            true, std::vector<LoopExitBehavior::PeriodChoice>{{4, 1}},
            2),
        true, std::move(body)));
    const Program p = b.build(std::move(top));  // build() validates
    EXPECT_EQ(p.numCondBranches(), 1u);
    EXPECT_GE(p.blocks.size(), 4u);
}

TEST(Program, AddressesAreUniqueAndOrdered)
{
    const Program p =
        buildWorkload(categoryProfiles()[0], 0, SuiteOptions{}.seed);
    std::set<Addr> pcs;
    Addr last = 0;
    for (const auto &bb : p.blocks) {
        for (const auto &si : bb.body) {
            EXPECT_TRUE(pcs.insert(si.pc).second)
                << "duplicate pc " << si.pc;
            EXPECT_GT(si.pc, last);
            last = si.pc;
        }
    }
}

TEST(Program, CensusMatchesBranchCount)
{
    const Program p =
        buildWorkload(categoryProfiles()[2], 3, SuiteOptions{}.seed);
    const BranchCensus c = p.census();
    EXPECT_EQ(c.loops + c.forwardExits + c.patterns + c.correlated +
                  c.random,
              p.numCondBranches());
    EXPECT_GT(c.loops + c.forwardExits, 0u);
}

TEST(Program, CfgAdvanceFollowsEdges)
{
    ProgramBuilder b("t", "Test", 1);
    std::vector<Seg> top;
    std::vector<Seg> then_arm, else_arm;
    then_arm.push_back(Seg::straight(2));
    else_arm.push_back(Seg::straight(2));
    top.push_back(Seg::diamond(
        std::make_unique<PatternBehavior>(0b1, 1), std::move(then_arm),
        std::move(else_arm)));
    const Program p = b.build(std::move(top));

    // Find the diamond's branch block and check both successors.
    const std::uint32_t br_block = p.branches[0].blockIdx;
    CfgCursor cur{br_block,
                  static_cast<std::uint32_t>(
                      p.blocks[br_block].body.size() - 1)};
    ASSERT_TRUE(cfgAtTerminator(p, cur));
    CfgCursor taken = cur;
    cfgAdvance(p, taken, true);
    EXPECT_EQ(taken.block, p.blocks[br_block].takenTarget);
    CfgCursor fall = cur;
    cfgAdvance(p, fall, false);
    EXPECT_EQ(fall.block, p.blocks[br_block].fallThrough);
}

// ---------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------

TEST(Executor, DeterministicStream)
{
    const Program p =
        buildWorkload(categoryProfiles()[4], 1, SuiteOptions{}.seed);
    Executor a(p), b(p);
    for (unsigned i = 0; i < 20000; ++i) {
        const DynInstDesc &da = a.next();
        const DynInstDesc &db = b.next();
        ASSERT_EQ(da.pc, db.pc);
        ASSERT_EQ(da.taken, db.taken);
        ASSERT_EQ(da.memAddr, db.memAddr);
    }
}

TEST(Executor, GlobalHistTracksCondOutcomes)
{
    const Program p =
        buildWorkload(categoryProfiles()[0], 2, SuiteOptions{}.seed);
    Executor e(p);
    std::uint64_t shadow = 0;
    for (unsigned i = 0; i < 5000; ++i) {
        const DynInstDesc &d = e.next();
        if (d.cls == InstClass::CondBranch)
            shadow = (shadow << 1) | (d.taken ? 1 : 0);
        ASSERT_EQ(e.globalHist(), shadow);
    }
}

TEST(Executor, CursorMatchesNextInstruction)
{
    const Program p =
        buildWorkload(categoryProfiles()[1], 0, SuiteOptions{}.seed);
    Executor e(p);
    for (unsigned i = 0; i < 3000; ++i) {
        const CfgCursor cur = e.cursor();
        const Addr expect_pc = cfgInst(p, cur).pc;
        const DynInstDesc &d = e.next();
        ASSERT_EQ(d.pc, expect_pc);
    }
}

TEST(Executor, MemAddrsStayInsideFootprint)
{
    const Program p =
        buildWorkload(categoryProfiles()[0], 1, SuiteOptions{}.seed);
    Executor e(p);
    for (unsigned i = 0; i < 30000; ++i) {
        const DynInstDesc &d = e.next();
        if (d.memAddr == invalidAddr)
            continue;
        bool inside = false;
        for (const MemStream &ms : p.streams) {
            if (d.memAddr >= ms.base &&
                d.memAddr < ms.base + ms.footprint)
                inside = true;
        }
        ASSERT_TRUE(inside) << "addr " << d.memAddr;
    }
}

TEST(Executor, CondBranchesMatchBehaviorReplay)
{
    // The executor's outcomes for each branch must equal a standalone
    // replay of its behaviour state machine.
    const Program p =
        buildWorkload(categoryProfiles()[5], 0, SuiteOptions{}.seed);
    Executor e(p);
    std::vector<std::vector<std::uint64_t>> states;
    for (const auto &br : p.branches) {
        states.emplace_back(br.behavior->stateWords(), 0);
        br.behavior->reset(states.back().data());
    }
    std::uint64_t shadow_hist = 0;
    for (unsigned i = 0; i < 20000; ++i) {
        const DynInstDesc &d = e.next();
        if (d.cls != InstClass::CondBranch)
            continue;
        GlobalBranchCtx ctx;
        ctx.globalHist = shadow_hist;
        const bool expect =
            p.branches[d.branchId].behavior->next(
                states[d.branchId].data(), ctx);
        ASSERT_EQ(d.taken, expect) << "branch " << d.branchId;
        shadow_hist = (shadow_hist << 1) | (d.taken ? 1 : 0);
    }
}

// ---------------------------------------------------------------------
// Suite
// ---------------------------------------------------------------------

TEST(Suite, FullSuiteHas202Workloads)
{
    const auto &profiles = categoryProfiles();
    unsigned total = 0;
    for (const auto &p : profiles)
        total += p.count;
    EXPECT_EQ(total, 202u);
    EXPECT_EQ(profiles.size(), 7u);
}

TEST(Suite, SubsampleKeepsEveryCategory)
{
    SuiteOptions opts;
    opts.maxWorkloads = 21;
    const auto suite = buildSuite(opts);
    EXPECT_EQ(suite.size(), 21u);
    std::set<std::string> cats;
    for (const auto &p : suite)
        cats.insert(p.category);
    EXPECT_EQ(cats.size(), 7u);
}

TEST(Suite, NamedWorkloadsExist)
{
    SuiteOptions opts;
    const auto suite = buildSuite(opts);
    std::set<std::string> names;
    for (const auto &p : suite)
        names.insert(p.name);
    for (const char *n : {"cloud-compression", "tabletmark-email",
                          "sysmark-photoshop", "eembc-dither"})
        EXPECT_TRUE(names.count(n)) << n;
}

TEST(Suite, WorkloadsAreSeedDeterministic)
{
    const Program a =
        buildWorkload(categoryProfiles()[3], 7, SuiteOptions{}.seed);
    const Program b =
        buildWorkload(categoryProfiles()[3], 7, SuiteOptions{}.seed);
    EXPECT_EQ(a.blocks.size(), b.blocks.size());
    EXPECT_EQ(a.numCondBranches(), b.numCondBranches());
    Executor ea(a), eb(b);
    for (unsigned i = 0; i < 5000; ++i)
        ASSERT_EQ(ea.next().pc, eb.next().pc);
}

TEST(Suite, DitherThrashesBht)
{
    const Program p =
        buildWorkload(categoryProfiles()[6], 1, SuiteOptions{}.seed);
    EXPECT_EQ(p.name, "eembc-dither");
    EXPECT_GT(p.numCondBranches(), 128u)
        << "the thrash workload must exceed the 128-entry BHT";
}
