/**
 * @file
 * Tests for the Outstanding Branch Queue: id assignment, overflow,
 * squash rollback, retirement eviction, and the coalescing rules of
 * section 3.1.
 */

#include <gtest/gtest.h>

#include "repair/obq.hh"

using namespace lbp;

TEST(Obq, PushAssignsMonotonicIds)
{
    Obq q(8, false);
    bool merged = false;
    EXPECT_EQ(q.push(0x100, 1, 10, &merged), 0u);
    EXPECT_EQ(q.push(0x104, 2, 11, &merged), 1u);
    EXPECT_EQ(q.push(0x108, 3, 12, &merged), 2u);
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.at(1).pc, 0x104u);
    EXPECT_EQ(q.at(1).preState, 2);
}

TEST(Obq, OverflowReturnsInvalid)
{
    Obq q(2, false);
    bool merged = false;
    q.push(0x100, 1, 1, &merged);
    q.push(0x104, 2, 2, &merged);
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.push(0x108, 3, 3, &merged), invalidId);
    EXPECT_EQ(q.overflowCount(), 1u);
}

TEST(Obq, RetireEvictsHead)
{
    Obq q(4, false);
    bool merged = false;
    q.push(0x100, 1, 1, &merged);
    q.push(0x104, 2, 2, &merged);
    q.push(0x108, 3, 3, &merged);
    q.retireUpTo(0, 2);  // everything with lastSeq <= 2 leaves
    EXPECT_EQ(q.head(), 2u);
    EXPECT_EQ(q.size(), 1u);
    // Freed slots are reusable.
    q.push(0x10c, 4, 4, &merged);
    q.push(0x110, 5, 5, &merged);
    q.push(0x114, 6, 6, &merged);
    EXPECT_TRUE(q.full());
}

TEST(Obq, SquashDropsYoungerEntries)
{
    Obq q(8, false);
    bool merged = false;
    q.push(0x100, 1, 10, &merged);
    q.push(0x104, 2, 20, &merged);
    q.push(0x108, 3, 30, &merged);
    q.squashYoungerThan(20, 0x104, 2);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.at(q.tail() - 1).pc, 0x104u);
}

TEST(Obq, CoalescingMergesThirdConsecutiveInstance)
{
    Obq q(8, true);
    bool merged = false;
    const auto id0 = q.push(0x100, 1, 1, &merged);
    EXPECT_FALSE(merged);
    const auto id1 = q.push(0x100, 2, 2, &merged);
    EXPECT_FALSE(merged) << "second instance keeps its own entry";
    EXPECT_NE(id0, id1);
    const auto id2 = q.push(0x100, 3, 3, &merged);
    EXPECT_TRUE(merged) << "third instance merges into the last entry";
    EXPECT_EQ(id2, id1);
    EXPECT_EQ(q.size(), 2u) << "first and last instance remain";
    EXPECT_EQ(q.at(id1).preState, 3) << "payload tracks latest instance";
    EXPECT_EQ(q.at(id1).firstSeq, 2u);
    EXPECT_EQ(q.at(id1).lastSeq, 3u);
    EXPECT_EQ(q.mergeCount(), 1u);
}

TEST(Obq, CoalescingBrokenByInterveningPc)
{
    Obq q(8, true);
    bool merged = false;
    q.push(0x100, 1, 1, &merged);
    q.push(0x100, 2, 2, &merged);
    q.push(0x200, 9, 3, &merged);
    q.push(0x100, 3, 4, &merged);
    EXPECT_FALSE(merged) << "run interrupted by another PC";
    EXPECT_EQ(q.size(), 4u);
}

TEST(Obq, CoalescingDisabledKeepsAllEntries)
{
    Obq q(8, false);
    bool merged = false;
    for (unsigned i = 0; i < 5; ++i)
        q.push(0x100, i, i, &merged);
    EXPECT_EQ(q.size(), 5u);
    EXPECT_EQ(q.mergeCount(), 0u);
}

TEST(Obq, SquashTrimsMergedEntryToSurvivor)
{
    Obq q(8, true);
    bool merged = false;
    q.push(0x100, 1, 1, &merged);
    q.push(0x100, 2, 2, &merged);
    q.push(0x100, 3, 3, &merged);  // merged into entry id 1
    q.push(0x100, 4, 4, &merged);  // merged again
    ASSERT_TRUE(merged);
    // Instruction 3 mispredicts: instances 4 squashed; the entry must
    // be trimmed back to instance 3's state.
    q.squashYoungerThan(3, 0x100, 3);
    EXPECT_EQ(q.at(q.tail() - 1).lastSeq, 3u);
    EXPECT_EQ(q.at(q.tail() - 1).preState, 3);
}

TEST(Obq, CoalescedRunCanStillMergeAfterSquash)
{
    Obq q(8, true);
    bool merged = false;
    q.push(0x100, 1, 1, &merged);
    q.push(0x100, 2, 2, &merged);
    q.push(0x100, 3, 3, &merged);
    q.squashYoungerThan(2, 0x100, 2);
    q.push(0x100, 5, 5, &merged);
    EXPECT_TRUE(merged);
    EXPECT_EQ(q.at(q.tail() - 1).preState, 5);
}

TEST(Obq, StoragePerPaper)
{
    // 76 bits per entry (64-bit PC + 11-bit pattern + valid).
    Obq q(32, false);
    EXPECT_NEAR(q.storageKB(), 32 * 76.0 / 8192.0, 1e-9);
}
