/**
 * @file
 * Unit tests for the common substrate: saturating counters, RNG,
 * set-associative table, statistics helpers.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/random.hh"
#include "common/sat_counter.hh"
#include "common/set_assoc.hh"
#include "common/stats.hh"

using namespace lbp;

// ---------------------------------------------------------------------
// SatCounter
// ---------------------------------------------------------------------

class SatCounterWidth : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SatCounterWidth, SaturatesAtBounds)
{
    const unsigned bits = GetParam();
    SatCounter c(bits);
    for (unsigned i = 0; i < (2u << bits); ++i)
        c.increment();
    EXPECT_EQ(c.value(), c.max());
    EXPECT_TRUE(c.saturated());
    for (unsigned i = 0; i < (2u << bits); ++i)
        c.decrement();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_TRUE(c.saturated());
}

TEST_P(SatCounterWidth, TakenThresholdIsMidpoint)
{
    const unsigned bits = GetParam();
    SatCounter c(bits, 0);
    EXPECT_FALSE(c.taken());
    c.set((1u << (bits - 1)) - 1);
    EXPECT_FALSE(c.taken());
    c.set(1u << (bits - 1));
    EXPECT_TRUE(c.taken());
    c.set(c.max());
    EXPECT_TRUE(c.taken());
}

INSTANTIATE_TEST_SUITE_P(Widths, SatCounterWidth,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u, 11u));

TEST(SatCounter, UpdateMovesTowardDirection)
{
    SatCounter c(2, 1);
    c.update(true);
    EXPECT_EQ(c.value(), 2u);
    c.update(false);
    c.update(false);
    EXPECT_EQ(c.value(), 0u);
}

// ---------------------------------------------------------------------
// SignedSatCounter
// ---------------------------------------------------------------------

class SignedWidth : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SignedWidth, RangeAndSaturation)
{
    const unsigned bits = GetParam();
    SignedSatCounter c(bits, 0);
    EXPECT_EQ(c.min(), -(1 << (bits - 1)));
    EXPECT_EQ(c.max(), (1 << (bits - 1)) - 1);
    for (int i = 0; i < (2 << bits); ++i)
        c.update(true);
    EXPECT_EQ(c.value(), c.max());
    for (int i = 0; i < (2 << bits); ++i)
        c.update(false);
    EXPECT_EQ(c.value(), c.min());
}

INSTANTIATE_TEST_SUITE_P(Widths, SignedWidth,
                         ::testing::Values(2u, 3u, 7u, 8u));

TEST(SignedSatCounter, NonNegativeReadsTaken)
{
    SignedSatCounter c(4, -1);
    EXPECT_FALSE(c.taken());
    c.update(true);
    EXPECT_TRUE(c.taken());
    EXPECT_EQ(c.magnitude(), 0u);
    c.set(-3);
    EXPECT_EQ(c.magnitude(), 2u);
}

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

TEST(Random, SplitMixIsDeterministic)
{
    EXPECT_EQ(splitmix64(42), splitmix64(42));
    EXPECT_NE(splitmix64(42), splitmix64(43));
}

TEST(Random, XoshiroReproducibleAcrossReseed)
{
    Xoshiro256ss a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    a.reseed(7);
    Xoshiro256ss c(7);
    EXPECT_EQ(a.next(), c.next());
}

TEST(Random, BelowStaysInRange)
{
    Xoshiro256ss rng(3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Random, RangeInclusive)
{
    Xoshiro256ss rng(5);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.range(3, 6);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 6);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u) << "all values in [3,6] must appear";
}

TEST(Random, ChanceMatchesProbability)
{
    Xoshiro256ss rng(11);
    unsigned hits = 0;
    const unsigned n = 20000;
    for (unsigned i = 0; i < n; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Random, LfsrNeverSticksAtZero)
{
    std::uint64_t state = 0;
    const std::uint16_t first = Lfsr16::step(state);
    EXPECT_NE(first, 0);
    for (int i = 0; i < 1000; ++i)
        EXPECT_NE(Lfsr16::step(state), 0);
}

// ---------------------------------------------------------------------
// SetAssocTable
// ---------------------------------------------------------------------

struct Payload
{
    int v = 0;
};

TEST(SetAssoc, InsertLookupRoundTrip)
{
    SetAssocTable<Payload> t(16, 4);
    auto &way = t.insert(0x1234);
    way.data.v = 99;
    const auto *hit = t.lookup(0x1234);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->data.v, 99);
    EXPECT_EQ(t.lookup(0x9999), nullptr);
}

TEST(SetAssoc, LruEvictsLeastRecentlyUsed)
{
    SetAssocTable<Payload> t(1, 2);  // one set, two ways
    t.insert(0).data.v = 1;
    t.insert(1).data.v = 2;
    // Touch key 0 so key 1 becomes LRU.
    ASSERT_NE(t.lookup(0), nullptr);
    bool victimized = false;
    t.insert(2, &victimized);
    EXPECT_TRUE(victimized);
    EXPECT_NE(t.lookup(0), nullptr) << "recently used entry must stay";
    EXPECT_EQ(t.lookup(1), nullptr) << "LRU entry must be evicted";
}

TEST(SetAssoc, InvalidateRemovesEntry)
{
    SetAssocTable<Payload> t(8, 2);
    t.insert(5);
    EXPECT_NE(t.lookup(5), nullptr);
    t.invalidate(5);
    EXPECT_EQ(t.lookup(5), nullptr);
    t.invalidate(5);  // double-invalidate is a no-op
}

TEST(SetAssoc, KeysMapToDistinctSets)
{
    SetAssocTable<Payload> t(4, 1);
    // Keys 0..3 land in different sets, so all coexist with 1 way.
    for (std::uint64_t k = 0; k < 4; ++k)
        t.insert(k);
    for (std::uint64_t k = 0; k < 4; ++k)
        EXPECT_NE(t.lookup(k), nullptr);
}

TEST(SetAssoc, TagDisambiguatesAliases)
{
    SetAssocTable<Payload> t(4, 2);
    // Keys 1 and 5 share set index 1 but differ in tag.
    t.insert(1).data.v = 10;
    t.insert(5).data.v = 50;
    EXPECT_EQ(t.lookup(1)->data.v, 10);
    EXPECT_EQ(t.lookup(5)->data.v, 50);
}

TEST(SetAssoc, HelpersPowerOf2)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(48));
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(9), 3u);
    EXPECT_EQ(floorLog2(1024), 10u);
}

// ---------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------

TEST(Stats, DistributionTracksMoments)
{
    Distribution d;
    for (std::uint64_t v : {1, 2, 3, 4, 10})
        d.sample(v);
    EXPECT_EQ(d.count(), 5u);
    EXPECT_EQ(d.min(), 1u);
    EXPECT_EQ(d.max(), 10u);
    EXPECT_DOUBLE_EQ(d.mean(), 4.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.max(), 0u);
}

TEST(Stats, GeomeanOfRatios)
{
    EXPECT_NEAR(geomean({2.0, 0.5}), 1.0, 1e-12);
    EXPECT_NEAR(geomean({1.1, 1.1, 1.1}), 1.1, 1e-12);
    EXPECT_EQ(geomean({}), 0.0);
}

TEST(Stats, MeanAndFormatting)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtPercent(0.0312, 1), "3.1%");
}

TEST(Stats, TextTableAlignsColumns)
{
    TextTable t({"a", "bbbb"});
    t.addRow({"xxxx", "y"});
    const std::string out = t.render();
    EXPECT_NE(out.find("a     bbbb"), std::string::npos);
    EXPECT_NE(out.find("xxxx  y"), std::string::npos);
}
