/**
 * @file
 * Integration tests: the paper's headline causal claims, checked
 * end-to-end on the real pipeline. These are the properties the whole
 * reproduction stands on, so they run on real workloads with real
 * budgets (still < seconds each).
 */

#include <gtest/gtest.h>

#include "sim/runner.hh"
#include "workload/suite.hh"

using namespace lbp;

namespace {

RunResult
runScheme(const Program &prog, RepairKind kind,
          RepairPorts ports = {32, 4, 2}, bool use_local = true)
{
    SimConfig cfg;
    cfg.warmupInstrs = 40000;
    cfg.measureInstrs = 80000;
    cfg.useLocal = use_local;
    cfg.repair.kind = kind;
    cfg.repair.ports = ports;
    return runOne(prog, cfg);
}

const Program &
loopHeavy()
{
    static const Program prog = buildWorkload(
        categoryProfiles()[0], 0, SuiteOptions{}.seed);
    return prog;
}

} // namespace

TEST(Integration, PerfectRepairBeatsBaseline)
{
    const RunResult base =
        runScheme(loopHeavy(), RepairKind::Perfect, {32, 4, 2}, false);
    const RunResult perfect =
        runScheme(loopHeavy(), RepairKind::Perfect);
    EXPECT_LT(perfect.mpki, base.mpki * 0.95)
        << "the local predictor must reduce MPKI with perfect repair";
    EXPECT_GT(perfect.ipc, base.ipc);
}

TEST(Integration, RepairQualityLadder)
{
    const RunResult perfect =
        runScheme(loopHeavy(), RepairKind::Perfect);
    const RunResult fwd =
        runScheme(loopHeavy(), RepairKind::ForwardWalk);
    const RunResult norep =
        runScheme(loopHeavy(), RepairKind::NoRepair);
    EXPECT_LE(perfect.mpki, fwd.mpki * 1.02)
        << "perfect is the floor";
    EXPECT_LT(fwd.mpki, norep.mpki)
        << "forward-walk must beat no repair";
}

TEST(Integration, UnboundedForwardWalkMatchesPerfect)
{
    // With an unbounded OBQ and ports, forward walk restores exactly
    // the architectural state perfect repair restores — the strongest
    // internal consistency check of the repair machinery.
    const RunResult perfect =
        runScheme(loopHeavy(), RepairKind::Perfect);
    const RunResult fwd = runScheme(loopHeavy(),
                                    RepairKind::ForwardWalk,
                                    {4096, 64, 64});
    EXPECT_NEAR(fwd.mpki, perfect.mpki, 0.05);
    EXPECT_NEAR(fwd.ipc, perfect.ipc, 0.01);
}

TEST(Integration, NoRepairLosesOnTightLoops)
{
    // A BP-category workload (tight loops, heavy pollution).
    const Program prog =
        buildWorkload(categoryProfiles()[5], 3, SuiteOptions{}.seed);
    const RunResult base =
        runScheme(prog, RepairKind::Perfect, {32, 4, 2}, false);
    const RunResult norep = runScheme(prog, RepairKind::NoRepair);
    EXPECT_GT(norep.mpki, base.mpki * 0.97)
        << "an unrepaired local predictor must not look like a win";
}

TEST(Integration, SmallerBhtGivesSmallerGains)
{
    SimConfig base;
    base.warmupInstrs = 40000;
    base.measureInstrs = 80000;
    const RunResult baseline = runOne(loopHeavy(), base);

    double gains[2];
    const LoopConfig cfgs[2] = {LoopConfig::entries64(),
                                LoopConfig::entries256()};
    for (int i = 0; i < 2; ++i) {
        SimConfig cfg = base;
        cfg.useLocal = true;
        cfg.repair.kind = RepairKind::Perfect;
        cfg.repair.loop = cfgs[i];
        const RunResult r = runOne(loopHeavy(), cfg);
        gains[i] = baseline.mpki - r.mpki;
    }
    EXPECT_GE(gains[1], gains[0] * 0.9)
        << "256 entries must not be much worse than 64";
}

TEST(Integration, BiggerTageLowersBaselineMpki)
{
    SimConfig small;
    small.warmupInstrs = 40000;
    small.measureInstrs = 80000;
    SimConfig big = small;
    big.tage = TageConfig::kb57();
    const RunResult r_small = runOne(loopHeavy(), small);
    const RunResult r_big = runOne(loopHeavy(), big);
    EXPECT_LT(r_big.mpki, r_small.mpki);
}

TEST(Integration, SuiteLevelHeadline)
{
    // Scaled-down version of the Table 3 headline: across a category-
    // balanced subsample, perfect repair buys a solid MPKI reduction
    // and a positive IPC gain, and forward walk retains most of it.
    SuiteOptions opts;
    opts.maxWorkloads = 14;
    const auto suite = buildSuite(opts);

    SimConfig base;
    base.warmupInstrs = 40000;
    base.measureInstrs = 60000;
    const SuiteResult baseline = runSuite(suite, base);

    SimConfig perfect = base;
    perfect.useLocal = true;
    perfect.repair.kind = RepairKind::Perfect;
    const SuiteResult r_perfect = runSuite(suite, perfect);

    SimConfig fwd = base;
    fwd.useLocal = true;
    fwd.repair.kind = RepairKind::ForwardWalk;
    fwd.repair.ports = {32, 4, 2};
    const SuiteResult r_fwd = runSuite(suite, fwd);

    const double perfect_mpki = mpkiReductionPct(baseline, r_perfect);
    const double perfect_ipc = ipcGainPct(baseline, r_perfect);
    const double fwd_ipc = ipcGainPct(baseline, r_fwd);

    EXPECT_GT(perfect_mpki, 10.0)
        << "perfect repair must reduce MPKI suite-wide";
    EXPECT_GT(perfect_ipc, 0.5);
    EXPECT_GT(fwd_ipc, 0.5 * perfect_ipc)
        << "forward walk retains the majority of perfect gains";
}

TEST(Integration, AggregationHelpers)
{
    SuiteOptions opts;
    opts.maxWorkloads = 7;
    const auto suite = buildSuite(opts);
    SimConfig base;
    base.warmupInstrs = 10000;
    base.measureInstrs = 20000;
    const SuiteResult a = runSuite(suite, base);

    // Self-comparison: zero reductions, flat S-curve, aligned categories.
    EXPECT_DOUBLE_EQ(mpkiReductionPct(a, a), 0.0);
    EXPECT_NEAR(ipcGainPct(a, a), 0.0, 1e-9);
    const auto curve = ipcSCurve(a, a);
    EXPECT_EQ(curve.size(), suite.size());
    for (const auto &[name, gain] : curve)
        EXPECT_NEAR(gain, 0.0, 1e-9);
    const auto agg = aggregateByCategory(a, a);
    ASSERT_FALSE(agg.empty());
    EXPECT_EQ(agg.back().name, "All");
    unsigned total = 0;
    for (const auto &c : agg)
        if (c.name != "All")
            total += c.workloads;
    EXPECT_EQ(total, suite.size());
}
