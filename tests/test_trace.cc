/**
 * @file
 * Observability-layer tests (src/obs): the bit-identity contract
 * (trace-on == trace-off), Chrome trace well-formedness, forensics/
 * counter reconciliation, histogram/counter reconciliation, Konata
 * framing, and the run-metric table.
 */

#include <cctype>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/runner.hh"
#include "workload/suite.hh"

using namespace lbp;

namespace {

SimConfig
schemeConfig(RepairKind kind)
{
    SimConfig cfg;
    cfg.warmupInstrs = 20000;
    cfg.measureInstrs = 30000;
    cfg.useLocal = true;
    cfg.repair.kind = kind;
    return cfg;
}

std::vector<Program>
smallSuite(unsigned n)
{
    SuiteOptions opts;
    opts.maxWorkloads = n;
    return buildSuite(opts);
}

/** Run with observability fully on (trace + forensics). */
RunResult
observedRun(const Program &prog, SimConfig cfg)
{
    cfg.obs.trace = true;
    cfg.obs.forensics = true;
    return runOne(prog, cfg);
}

/**
 * Minimal recursive-descent JSON parser — just enough structure checking
 * to prove the Chrome trace is real JSON (not a curly-brace lookalike),
 * plus extraction of the "ph"/"tid" fields of each event object.
 */
class MiniJson
{
  public:
    struct Event
    {
        char ph = '?';
        std::int64_t tid = -1;
        std::int64_t ts = -1;
    };

    explicit MiniJson(const std::string &text) : s_(text) {}

    /** Parse the top-level array; false on any syntax error. */
    bool
    parseTraceArray()
    {
        skipWs();
        if (!consume('['))
            return false;
        skipWs();
        if (peek() == ']')
            return consume(']');
        do {
            Event ev;
            if (!parseObject(&ev))
                return false;
            events.push_back(ev);
            skipWs();
        } while (consume(','));
        if (!consume(']'))
            return false;
        skipWs();
        return pos_ == s_.size();
    }

    std::vector<Event> events;

  private:
    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
    bool
    consume(char c)
    {
        skipWs();
        if (peek() != c)
            return false;
        ++pos_;
        return true;
    }
    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    bool
    parseString(std::string *out)
    {
        if (!consume('"'))
            return false;
        std::string v;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
            }
            v += s_[pos_++];
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_;  // closing quote
        if (out)
            *out = v;
        return true;
    }

    bool
    parseNumber(double *out)
    {
        skipWs();
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (std::isdigit(static_cast<unsigned char>(peek())) ||
               peek() == '.' || peek() == 'e' || peek() == 'E' ||
               peek() == '+' || peek() == '-')
            ++pos_;
        if (pos_ == start)
            return false;
        *out = std::stod(s_.substr(start, pos_ - start));
        return true;
    }

    bool
    parseValue(Event *ev, const std::string &key)
    {
        skipWs();
        const char c = peek();
        if (c == '"') {
            std::string v;
            if (!parseString(&v))
                return false;
            if (ev && key == "ph" && v.size() == 1)
                ev->ph = v[0];
            return true;
        }
        if (c == '{')
            return parseObject(nullptr);
        if (c == '[') {
            if (!consume('['))
                return false;
            skipWs();
            if (peek() == ']')
                return consume(']');
            do {
                if (!parseValue(nullptr, ""))
                    return false;
            } while (consume(','));
            return consume(']');
        }
        double num = 0.0;
        if (!parseNumber(&num))
            return false;
        if (ev && key == "tid")
            ev->tid = static_cast<std::int64_t>(num);
        if (ev && key == "ts")
            ev->ts = static_cast<std::int64_t>(num);
        return true;
    }

    bool
    parseObject(Event *ev)
    {
        if (!consume('{'))
            return false;
        skipWs();
        if (peek() == '}')
            return consume('}');
        do {
            std::string key;
            skipWs();
            if (!parseString(&key))
                return false;
            if (!consume(':'))
                return false;
            if (!parseValue(ev, key))
                return false;
            skipWs();
        } while (consume(','));
        return consume('}');
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

} // namespace

// The load-bearing contract: attaching the tracer (events + forensics)
// must not change a single architectural counter. Covers a walk scheme,
// a snapshot scheme, the multi-stage split BHT (early resteers take a
// different hook path) and the TAGE-only baseline.
TEST(Trace, TraceOnIsBitIdenticalToTraceOff)
{
    SimConfig base;
    base.warmupInstrs = 20000;
    base.measureInstrs = 30000;
    const SimConfig configs[] = {
        base,
        schemeConfig(RepairKind::ForwardWalk),
        schemeConfig(RepairKind::Snapshot),
        schemeConfig(RepairKind::MultiStage),
    };
    for (const Program &prog : smallSuite(3)) {
        for (const SimConfig &cfg : configs) {
            SCOPED_TRACE(prog.name + " / " + configLabel(cfg));
            const RunResult off = runOne(prog, cfg);
            const RunResult on = observedRun(prog, cfg);

            EXPECT_FALSE(off.obs);
            ASSERT_TRUE(on.obs);

            EXPECT_EQ(on.stats.cycles, off.stats.cycles);
            EXPECT_EQ(on.stats.retiredInstrs, off.stats.retiredInstrs);
            EXPECT_EQ(on.stats.retiredCond, off.stats.retiredCond);
            EXPECT_EQ(on.stats.mispredicts, off.stats.mispredicts);
            EXPECT_EQ(on.stats.fetchedInstrs, off.stats.fetchedInstrs);
            EXPECT_EQ(on.stats.wrongPathFetched,
                      off.stats.wrongPathFetched);
            EXPECT_EQ(on.stats.earlyResteers, off.stats.earlyResteers);
            EXPECT_EQ(on.stats.btbMisses, off.stats.btbMisses);
            EXPECT_EQ(on.overrides, off.overrides);
            EXPECT_EQ(on.overridesCorrect, off.overridesCorrect);
            EXPECT_EQ(on.repairs, off.repairs);
            EXPECT_EQ(on.repairWrites, off.repairWrites);
            EXPECT_EQ(on.uncheckpointedMispredicts,
                      off.uncheckpointedMispredicts);
            EXPECT_EQ(on.deniedPredictions, off.deniedPredictions);
            EXPECT_EQ(on.skippedSpecUpdates, off.skippedSpecUpdates);
            EXPECT_EQ(on.cacheAccesses, off.cacheAccesses);
            EXPECT_EQ(on.cacheMisses, off.cacheMisses);
            EXPECT_EQ(on.ipc, off.ipc);
            EXPECT_EQ(on.mpki, off.mpki);
        }
    }
}

// The Chrome export must be valid JSON with every duration-begin matched
// by an end on the same tid, never nesting out of order (Perfetto
// rejects unbalanced pairs).
TEST(Trace, ChromeTraceParsesWithBalancedPairs)
{
    const std::vector<Program> suite = smallSuite(2);
    std::vector<RunResult> results;
    for (const Program &prog : suite)
        results.push_back(
            observedRun(prog, schemeConfig(RepairKind::ForwardWalk)));

    std::vector<const ObsRun *> obs;
    for (const RunResult &r : results)
        obs.push_back(r.obs.get());

    std::ostringstream os;
    writeChromeTrace(os, obs);
    const std::string text = os.str();

    MiniJson parser(text);
    ASSERT_TRUE(parser.parseTraceArray())
        << "trace is not valid JSON";
    ASSERT_FALSE(parser.events.empty());

    std::uint64_t begins = 0, ends = 0;
    std::map<std::int64_t, int> depth;
    for (const MiniJson::Event &ev : parser.events) {
        if (ev.ph == 'B') {
            ++begins;
            ++depth[ev.tid];
        } else if (ev.ph == 'E') {
            ++ends;
            ASSERT_GT(depth[ev.tid], 0)
                << "E without matching B on tid " << ev.tid;
            --depth[ev.tid];
        }
    }
    EXPECT_EQ(begins, ends);
    for (const auto &[tid, d] : depth)
        EXPECT_EQ(d, 0) << "unclosed span on tid " << tid;
}

// Forensics channel reconciles exactly with the core counters: one
// squash record per misprediction, and the CSV dump has one row per
// record plus the header.
TEST(Trace, ForensicsReconcilesWithCoreStats)
{
    const std::vector<Program> suite = smallSuite(3);
    std::vector<RunResult> results;
    for (const Program &prog : suite)
        results.push_back(
            observedRun(prog, schemeConfig(RepairKind::ForwardWalk)));

    std::vector<const ObsRun *> obs;
    std::size_t total_squashes = 0;
    for (const RunResult &r : results) {
        ASSERT_TRUE(r.obs);
        EXPECT_EQ(r.obs->squashes.size(), r.obs->totalMispredicts)
            << r.workload;
        EXPECT_GT(r.obs->totalMispredicts, 0u) << r.workload;
        obs.push_back(r.obs.get());
        total_squashes += r.obs->squashes.size();
    }

    std::ostringstream os;
    writeForensicsCsv(os, obs);
    const std::string text = os.str();
    std::size_t lines = 0;
    for (char c : text)
        if (c == '\n')
            ++lines;
    EXPECT_EQ(lines, total_squashes + 1);  // +1 header
    EXPECT_EQ(text.rfind("workload,cycle,pc,seq,source,", 0), 0u);
}

// Histogram bucket sums must equal their sample counts, and the sample
// counts must reconcile with the squash/repair totals they observe.
TEST(Trace, HistogramsReconcileWithCounters)
{
    for (const Program &prog : smallSuite(2)) {
        const RunResult r =
            observedRun(prog, schemeConfig(RepairKind::ForwardWalk));
        ASSERT_TRUE(r.obs);
        const ObsRun &o = *r.obs;

        const std::uint64_t n = o.squashes.size();
        EXPECT_EQ(o.resolveLatency.count(), n);
        EXPECT_EQ(o.robOccupancy.count(), n);
        // Walk-length samples only exist for squashes whose repair
        // actually walked entries, so the count is bounded by, not equal
        // to, the repair total.
        EXPECT_LE(o.walkLength.count(), o.totalRepairs);

        for (const FixedHistogram *h :
             {&o.resolveLatency, &o.robOccupancy, &o.walkLength}) {
            EXPECT_EQ(h->bucketTotal(), h->count());
            std::uint64_t max_seen = h->max();
            EXPECT_LE(max_seen, h->sum());
        }

        // Per-record sums must match the histogram sums exactly.
        std::uint64_t lat = 0, rob = 0, walk = 0;
        for (const SquashRecord &s : o.squashes) {
            lat += s.resolveLatency;
            rob += s.robOccupancy;
            walk += s.walkLength;
        }
        EXPECT_EQ(o.resolveLatency.sum(), lat);
        EXPECT_EQ(o.robOccupancy.sum(), rob);
        EXPECT_EQ(o.walkLength.sum(), walk);
    }
}

TEST(Trace, FixedHistogramBucketBounds)
{
    FixedHistogram h;
    h.sample(0);
    h.sample(1);   // bucket 0: v <= 1
    h.sample(2);   // bucket 1: 1 < v <= 2
    h.sample(3);   // bucket 2: 2 < v <= 4
    h.sample(4);
    h.sample(5);   // bucket 3
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 2u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.sum(), 15u);
    EXPECT_EQ(h.max(), 5u);
    EXPECT_EQ(h.bucketTotal(), h.count());
    // Clamp: huge samples land in the last bucket, not out of bounds.
    h.sample(~0ull);
    EXPECT_EQ(h.bucket(FixedHistogram::numBuckets - 1), 1u);
    EXPECT_EQ(h.bucketTotal(), h.count());
}

TEST(Trace, KonataLogStartsWithFormatHeader)
{
    const std::vector<Program> suite = smallSuite(1);
    const RunResult r =
        observedRun(suite[0], schemeConfig(RepairKind::ForwardWalk));
    ASSERT_TRUE(r.obs);
    std::ostringstream os;
    writeKonata(os, *r.obs);
    const std::string text = os.str();
    EXPECT_EQ(text.rfind("Kanata\t0004\n", 0), 0u);
    EXPECT_NE(text.find("\nC=\t"), std::string::npos);
    EXPECT_NE(text.find("\nR\t"), std::string::npos);
}

// Window bounding: a tiny window must yield a subset of a huge window's
// events (same suffix), and dropped + kept spans the same emission total.
TEST(Trace, WindowBoundsEventMemory)
{
    const std::vector<Program> suite = smallSuite(1);
    SimConfig cfg = schemeConfig(RepairKind::ForwardWalk);
    cfg.obs.trace = true;

    cfg.obs.traceWindowCycles = 500;
    const RunResult small = runOne(suite[0], cfg);
    cfg.obs.traceWindowCycles = 1u << 20;
    const RunResult big = runOne(suite[0], cfg);

    ASSERT_TRUE(small.obs);
    ASSERT_TRUE(big.obs);
    EXPECT_LE(small.obs->events.size(), big.obs->events.size());
    ASSERT_FALSE(small.obs->events.empty());

    // Every kept event lies within the window of the newest one.
    Cycle newest = 0;
    for (const TraceRecord &e : small.obs->events)
        newest = std::max(newest, e.end);
    for (const TraceRecord &e : small.obs->events)
        EXPECT_GE(e.end + 500, newest);
}

// Offender aggregation: squash totals are conserved and the table is
// sorted by squash count.
TEST(Trace, TopOffendersConserveSquashes)
{
    const std::vector<Program> suite = smallSuite(1);
    const RunResult r =
        observedRun(suite[0], schemeConfig(RepairKind::ForwardWalk));
    ASSERT_TRUE(r.obs);
    const std::vector<const ObsRun *> obs = {r.obs.get()};

    const auto all = topOffenders(obs, ~std::size_t{0});
    std::uint64_t sum = 0;
    for (const OffenderRow &row : all)
        sum += row.squashes;
    EXPECT_EQ(sum, r.obs->squashes.size());
    for (std::size_t i = 1; i < all.size(); ++i)
        EXPECT_GE(all[i - 1].squashes, all[i].squashes);

    const auto top3 = topOffenders(obs, 3);
    ASSERT_LE(top3.size(), 3u);
    for (std::size_t i = 0; i < top3.size(); ++i)
        EXPECT_EQ(top3[i].pc, all[i].pc);

    const std::string table = formatOffenders(all);
    EXPECT_NE(table.find("squashes"), std::string::npos);
}

// The metric table is the single naming authority: every entry must
// produce the same value as the RunResult field it fronts, names must be
// unique, and registration must preserve table order.
TEST(Trace, RunMetricTableMatchesRunResult)
{
    const std::vector<Program> suite = smallSuite(1);
    const RunResult r =
        runOne(suite[0], schemeConfig(RepairKind::ForwardWalk));

    const auto &table = runMetrics();
    ASSERT_GE(table.size(), 20u);

    std::map<std::string, int> names;
    for (const RunMetricDesc &d : table)
        ++names[d.name];
    for (const auto &[name, count] : names)
        EXPECT_EQ(count, 1) << "duplicate metric name " << name;

    MetricsRegistry reg;
    registerRunMetrics(reg, r);
    ASSERT_EQ(reg.scalars().size(), table.size());
    for (std::size_t i = 0; i < table.size(); ++i) {
        EXPECT_EQ(reg.scalars()[i].name, table[i].name);
        EXPECT_EQ(reg.scalars()[i].value, table[i].get(r));
        EXPECT_EQ(reg.scalars()[i].integral, table[i].integral);
    }

    // Spot-check a few bindings against the underlying fields.
    const auto value = [&](const char *name) {
        for (const RunMetricDesc &d : table)
            if (std::string(name) == d.name)
                return d.get(r);
        ADD_FAILURE() << "missing metric " << name;
        return -1.0;
    };
    EXPECT_EQ(value("ipc"), r.ipc);
    EXPECT_EQ(value("mpki"), r.mpki);
    EXPECT_EQ(value("mispredicts"),
              static_cast<double>(r.stats.mispredicts));
    EXPECT_EQ(value("repairs"), static_cast<double>(r.repairs));
    EXPECT_EQ(value("cache_misses"),
              static_cast<double>(r.cacheMisses));

    // JSON export round-trips through the mini parser's object grammar.
    std::ostringstream os;
    reg.writeJson(os);
    const std::string js = os.str();
    EXPECT_EQ(js.find('{'), 0u);
    EXPECT_NE(js.find("\"scalars\""), std::string::npos);
}

// Windowed forensics striding: recording every Nth squash must keep
// exactly ceil(totalMispredicts / N) records (the first squash is
// always recorded), reconcile against the recorded sampling factor,
// sample histograms only from recorded squashes — and, like all
// observability, leave the architectural counters untouched.
TEST(Trace, ForensicsStrideReconcilesAndStaysBitIdentical)
{
    const std::vector<Program> suite = smallSuite(2);
    SimConfig cfg = schemeConfig(RepairKind::ForwardWalk);
    cfg.obs.forensics = true;

    for (const Program &prog : suite) {
        const RunResult full = runOne(prog, cfg);
        ASSERT_TRUE(full.obs);
        const std::uint64_t mispredicts = full.obs->totalMispredicts;
        ASSERT_GT(mispredicts, 0u) << prog.name;
        EXPECT_EQ(full.obs->forensicsStride, 1u);
        EXPECT_EQ(full.obs->squashes.size(), mispredicts);

        for (const std::uint64_t stride : {2ull, 7ull, 1000000ull}) {
            SCOPED_TRACE(prog.name + " stride " +
                         std::to_string(stride));
            SimConfig strided = cfg;
            strided.obs.forensicsStride = stride;
            const RunResult r = runOne(prog, strided);
            ASSERT_TRUE(r.obs);
            const ObsRun &o = *r.obs;

            // Reconciliation against the recorded sampling factor.
            EXPECT_EQ(o.forensicsStride, stride);
            EXPECT_EQ(o.totalMispredicts, mispredicts);
            EXPECT_EQ(o.squashes.size(),
                      (mispredicts + stride - 1) / stride);

            // Every recorded squash is a verbatim member of the full
            // record stream, at stride spacing from its start.
            for (std::size_t i = 0; i < o.squashes.size(); ++i) {
                const SquashRecord &got = o.squashes[i];
                const SquashRecord &want =
                    full.obs->squashes[i * stride];
                EXPECT_EQ(got.cycle, want.cycle);
                EXPECT_EQ(got.pc, want.pc);
                EXPECT_EQ(got.walkLength, want.walkLength);
                EXPECT_EQ(got.repairWrites, want.repairWrites);
            }

            // Histograms sample only recorded squashes.
            EXPECT_EQ(o.resolveLatency.count(), o.squashes.size());
            EXPECT_EQ(o.robOccupancy.count(), o.squashes.size());

            // Observation-only: simulation outcome is unchanged.
            EXPECT_EQ(r.stats.cycles, full.stats.cycles);
            EXPECT_EQ(r.stats.mispredicts, full.stats.mispredicts);
            EXPECT_EQ(r.ipc, full.ipc);
            EXPECT_EQ(r.repairWrites, full.repairWrites);
        }
    }
}

// Konata multi-run naming: the workload tag lands before the
// extension, path separators survive, and hostile characters are
// sanitized to '_'.
TEST(Trace, KonataRunPathInsertsWorkloadTag)
{
    EXPECT_EQ(konataRunPath("trace.kanata", "Server:0"),
              "trace.Server_0.kanata");
    EXPECT_EQ(konataRunPath("out/pipe.kanata", "Client:12"),
              "out/pipe.Client_12.kanata");
    // No extension: the tag is appended.
    EXPECT_EQ(konataRunPath("trace", "Mix:3"), "trace.Mix_3");
    // A dot in a parent directory is not an extension.
    EXPECT_EQ(konataRunPath("run.d/trace", "A"), "run.d/trace.A");
    // Already-safe characters pass through untouched.
    EXPECT_EQ(konataRunPath("t.kanata", "plain_Name-7"),
              "t.plain_Name-7.kanata");
}
