/**
 * @file
 * Determinism regression: two executions of the same seeded
 * configuration must produce bit-identical results. Every source of
 * randomness in the tree flows from the explicit seeds in
 * common/random.hh (enforced by tools/lbp_lint.py), so any divergence
 * here means hidden state leaked between runs — iteration-order
 * dependence, uninitialized reads, or wall-clock coupling.
 */

#include <gtest/gtest.h>

#include "sim/runner.hh"
#include "sim/suite_cache.hh"
#include "sim/sweep.hh"
#include "workload/suite.hh"

using namespace lbp;

namespace {

void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.retiredInstrs, b.stats.retiredInstrs);
    EXPECT_EQ(a.stats.retiredCond, b.stats.retiredCond);
    EXPECT_EQ(a.stats.mispredicts, b.stats.mispredicts);
    EXPECT_EQ(a.stats.earlyResteers, b.stats.earlyResteers);
    EXPECT_EQ(a.stats.wrongPathFetched, b.stats.wrongPathFetched);
    EXPECT_EQ(a.stats.btbMisses, b.stats.btbMisses);
    EXPECT_EQ(a.stats.fetchedInstrs, b.stats.fetchedInstrs);
    EXPECT_EQ(a.ipc, b.ipc);    // exact: same arithmetic, same order
    EXPECT_EQ(a.mpki, b.mpki);
    EXPECT_EQ(a.overrides, b.overrides);
    EXPECT_EQ(a.overridesCorrect, b.overridesCorrect);
    EXPECT_EQ(a.repairs, b.repairs);
    EXPECT_EQ(a.repairWrites, b.repairWrites);
    EXPECT_EQ(a.uncheckpointedMispredicts,
              b.uncheckpointedMispredicts);
    EXPECT_EQ(a.deniedPredictions, b.deniedPredictions);
    EXPECT_EQ(a.skippedSpecUpdates, b.skippedSpecUpdates);
    EXPECT_EQ(a.avgRepairsNeeded, b.avgRepairsNeeded);
    EXPECT_EQ(a.avgWalkLength, b.avgWalkLength);
    EXPECT_EQ(a.avgRepairWrites, b.avgRepairWrites);
    EXPECT_EQ(a.avgRepairCycles, b.avgRepairCycles);
    EXPECT_EQ(a.cacheAccesses, b.cacheAccesses);
    EXPECT_EQ(a.cacheMisses, b.cacheMisses);
    EXPECT_EQ(a.auditChecks, b.auditChecks);
    EXPECT_EQ(a.auditViolations, b.auditViolations);
}

SimConfig
schemeConfig(RepairKind kind)
{
    SimConfig cfg;
    cfg.warmupInstrs = 15000;
    cfg.measureInstrs = 30000;
    cfg.useLocal = true;
    cfg.repair.kind = kind;
    return cfg;
}

} // namespace

TEST(Determinism, IdenticalRunsBitIdenticalStats)
{
    const Program prog =
        buildWorkload(categoryProfiles()[0], 0, SuiteOptions{}.seed);
    for (const RepairKind kind :
         {RepairKind::BackwardWalk, RepairKind::ForwardWalk,
          RepairKind::Snapshot, RepairKind::MultiStage}) {
        const SimConfig cfg = schemeConfig(kind);
        const RunResult a = runOne(prog, cfg);
        const RunResult b = runOne(prog, cfg);
        expectIdentical(a, b);
    }
}

TEST(Determinism, WorkloadGenerationIsSeedStable)
{
    const Program a =
        buildWorkload(categoryProfiles()[1], 2, SuiteOptions{}.seed);
    const Program b =
        buildWorkload(categoryProfiles()[1], 2, SuiteOptions{}.seed);
    EXPECT_EQ(a.name, b.name);
    ASSERT_EQ(a.blocks.size(), b.blocks.size());
    ASSERT_EQ(a.branches.size(), b.branches.size());
    for (std::size_t i = 0; i < a.blocks.size(); ++i) {
        ASSERT_EQ(a.blocks[i].body.size(), b.blocks[i].body.size());
        EXPECT_EQ(a.blocks[i].takenTarget, b.blocks[i].takenTarget);
        EXPECT_EQ(a.blocks[i].fallThrough, b.blocks[i].fallThrough);
        for (std::size_t j = 0; j < a.blocks[i].body.size(); ++j)
            ASSERT_EQ(a.blocks[i].body[j].pc, b.blocks[i].body[j].pc)
                << "block " << i << " inst " << j;
    }
    for (std::size_t i = 0; i < a.branches.size(); ++i)
        EXPECT_EQ(a.branches[i].pc, b.branches[i].pc);
}

TEST(Determinism, FreshSuiteRunsMatch)
{
    SuiteOptions opts;
    const std::vector<Program> s1 = buildSuite(opts);
    const SimConfig cfg = schemeConfig(RepairKind::ForwardWalk);

    // Two fully independent suite executions over the first few
    // workloads (the full 202 would be slow here).
    for (std::size_t i = 0; i < 3 && i < s1.size(); ++i)
        expectIdentical(runOne(s1[i], cfg), runOne(s1[i], cfg));
}

TEST(Determinism, ParallelMatchesSerial)
{
    // The parallel suite engine must be an observational no-op: a
    // jobs=4 run is bit-identical to jobs=1, run by run and in suite
    // order, for every scheme. Each runOne owns its core, so the only
    // way this fails is shared mutable state leaking across workers.
    SuiteOptions opts;
    opts.maxWorkloads = 8;
    const std::vector<Program> suite = buildSuite(opts);
    ASSERT_GE(suite.size(), 4u);

    for (const RepairKind kind :
         {RepairKind::ForwardWalk, RepairKind::Snapshot}) {
        SimConfig cfg = schemeConfig(kind);
        cfg.warmupInstrs = 8000;
        cfg.measureInstrs = 15000;
        const SuiteResult serial = runSuite(suite, cfg, 1);
        const SuiteResult parallel = runSuite(suite, cfg, 4);
        ASSERT_EQ(serial.runs.size(), parallel.runs.size());
        for (std::size_t i = 0; i < serial.runs.size(); ++i) {
            SCOPED_TRACE(serial.runs[i].workload);
            expectIdentical(serial.runs[i], parallel.runs[i]);
        }
        EXPECT_EQ(parallel.telemetry.jobs, 4u);
        EXPECT_EQ(serial.telemetry.jobs, 1u);
        EXPECT_EQ(serial.telemetry.simInstrs,
                  parallel.telemetry.simInstrs);
    }
}

TEST(Determinism, SweepMatchesSerial)
{
    // Sweep orchestration (cell queue over the pool, cache/store
    // probing, preassigned result slots) must be an observational
    // no-op: every config's runs are bit-identical to a serial
    // per-config runSuite() call.
    SuiteOptions opts;
    opts.maxWorkloads = 6;
    const std::vector<Program> suite = buildSuite(opts);

    std::vector<SweepConfig> configs;
    for (const RepairKind kind :
         {RepairKind::ForwardWalk, RepairKind::Snapshot,
          RepairKind::BackwardWalk}) {
        SimConfig cfg = schemeConfig(kind);
        cfg.warmupInstrs = 8000;
        cfg.measureInstrs = 15000;
        configs.push_back({configLabel(cfg), cfg});
    }

    SuiteCache cache;
    SweepOptions so;
    so.jobs = 4;
    so.cache = &cache;
    const SweepResult sweep = runSweep(suite, configs, so);
    ASSERT_EQ(sweep.configResults.size(), configs.size());
    EXPECT_EQ(sweep.stats.cellsSimulated,
              configs.size() * suite.size());

    for (std::size_t c = 0; c < configs.size(); ++c) {
        SCOPED_TRACE(configs[c].name);
        ASSERT_NE(sweep.configResults[c], nullptr);
        const SuiteResult serial = runSuite(suite, configs[c].cfg, 1);
        const SuiteResult &swept = *sweep.configResults[c];
        ASSERT_EQ(serial.runs.size(), swept.runs.size());
        for (std::size_t i = 0; i < serial.runs.size(); ++i) {
            SCOPED_TRACE(serial.runs[i].workload);
            expectIdentical(serial.runs[i], swept.runs[i]);
        }
    }
}
