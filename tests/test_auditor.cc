/**
 * @file
 * The speculative-state invariant auditor, tested from both sides:
 * positive (a correct walk scheme runs silent — non-zero checks, zero
 * violations) and negative (injected BHT corruption and a
 * deliberately-broken repair scheme are flagged). The negative tests
 * are the auditor's own acceptance test: a checker that cannot catch a
 * seeded bug is worse than no checker.
 */

#include <gtest/gtest.h>

#include <deque>

#include "bpu/loop_predictor.hh"
#include "repair/schemes.hh"
#include "verify/auditor.hh"

#ifdef LBP_AUDIT
#include "sim/runner.hh"
#include "workload/suite.hh"
#endif

using namespace lbp;

namespace {

RepairConfig
walkConfig(RepairKind kind, RepairPorts ports = {32, 4, 2})
{
    RepairConfig cfg;
    cfg.kind = kind;
    cfg.ports = ports;
    cfg.localKind = LocalKind::CbpwLoop;
    cfg.loop = LoopConfig::entries128();
    return cfg;
}

/**
 * Drives a real scheme and the auditor side by side, exactly as
 * OooCore wires them under LBP_AUDIT.
 */
class AuditDriver
{
  public:
    explicit AuditDriver(const RepairConfig &cfg,
                         const AuditorConfig &acfg = {})
        : AuditDriver(makeRepairScheme(cfg), acfg)
    {
    }

    /** Drive a hand-built (e.g. deliberately broken) scheme. */
    explicit AuditDriver(std::unique_ptr<RepairScheme> scheme,
                         const AuditorConfig &acfg = {})
        : scheme_(std::move(scheme)),
          auditor_(scheme_->local(), acfg)
    {
    }

    RepairScheme &scheme() { return *scheme_; }
    LocalPredictor &lp() { return scheme_->local(); }
    SpecStateAuditor &auditor() { return auditor_; }
    const AuditorStats &astats() const { return auditor_.stats(); }

    DynInst &
    predict(Addr pc, bool tage_dir, bool actual,
            bool wrong_path = false)
    {
        insts_.emplace_back();
        DynInst &di = insts_.back();
        di.seq = seq_++;
        di.pc = pc;
        di.cls = InstClass::CondBranch;
        di.wrongPath = wrong_path;
        di.actualDir = actual;
        scheme_->atPredict(di, tage_dir, now_);
        // MultiStage reads/writes the audited table at the defer/alloc
        // stage; record afterwards, as OooCore does under LBP_AUDIT.
        if (scheme_->auditsAtAlloc())
            scheme_->atAlloc(di, now_);
        auditor_.onPredict(di);
        if (!wrong_path)
            scheme_->atTruePathFetch(di);
        return di;
    }

    void
    mispredict(DynInst &di)
    {
        const std::uint64_t pre =
            scheme_->stats().uncheckpointedMispredicts;
        scheme_->atMispredict(di, now_);
        scheme_->atSquash(di.seq, di);
        auditor_.onRecovery(
            di, scheme_->local(),
            scheme_->stats().uncheckpointedMispredicts == pre,
            scheme_->lastRepairSet());
    }

    void
    retire(DynInst &di)
    {
        auditor_.onRetire(di);
        scheme_->atRetire(di);
    }

    void advanceTime(Cycle c) { now_ += c; }

  private:
    std::unique_ptr<RepairScheme> scheme_;
    SpecStateAuditor auditor_;
    std::deque<DynInst> insts_;
    InstSeq seq_ = 0;
    Cycle now_ = 100;
};

constexpr Addr pcA = 0x1000;
constexpr Addr pcB = 0x2000;

} // namespace

TEST(Auditor, AuditableKinds)
{
    EXPECT_TRUE(SpecStateAuditor::auditableKind(RepairKind::BackwardWalk));
    EXPECT_TRUE(SpecStateAuditor::auditableKind(RepairKind::ForwardWalk));
    EXPECT_TRUE(SpecStateAuditor::auditableKind(RepairKind::Snapshot));
    EXPECT_TRUE(SpecStateAuditor::auditableKind(RepairKind::LimitedPc));
    EXPECT_TRUE(SpecStateAuditor::auditableKind(RepairKind::MultiStage));
    EXPECT_FALSE(SpecStateAuditor::auditableKind(RepairKind::Perfect));
    EXPECT_FALSE(SpecStateAuditor::auditableKind(RepairKind::NoRepair));
    EXPECT_FALSE(SpecStateAuditor::auditableKind(RepairKind::RetireUpdate));
    EXPECT_FALSE(SpecStateAuditor::auditableKind(RepairKind::FutureFile));
}

TEST(Auditor, CleanRunIsSilentWithNonZeroChecks)
{
    AuditDriver d(walkConfig(RepairKind::BackwardWalk));

    // A few true-path iterations of two PCs, each retired in order.
    std::deque<DynInst *> inflight;
    for (int i = 0; i < 6; ++i) {
        inflight.push_back(&d.predict(pcA, true, true));
        inflight.push_back(&d.predict(pcB, false, false));
        d.advanceTime(1);
    }
    while (!inflight.empty()) {
        d.retire(*inflight.front());
        inflight.pop_front();
    }
    EXPECT_GT(d.astats().retireChecks, 0u);
    EXPECT_EQ(d.astats().violations(), 0u);
}

TEST(Auditor, CorrectRepairPassesRecoveryCheck)
{
    AuditDriver d(walkConfig(RepairKind::BackwardWalk));

    // Warm the BHT on the true path.
    DynInst &warmA = d.predict(pcA, true, true);
    DynInst &warmB = d.predict(pcB, true, true);
    d.advanceTime(1);

    // A mispredicted branch followed by wrong-path pollution of both
    // PCs, then recovery: the walk must restore both and the auditor
    // must verify it did (checks > 0, violations == 0).
    DynInst &cause = d.predict(pcA, true, false);
    d.predict(pcB, true, true, /*wrong_path=*/true);
    d.predict(pcA, true, true, /*wrong_path=*/true);
    d.advanceTime(5);
    d.mispredict(cause);

    EXPECT_GT(d.astats().recoveryChecks, 0u);
    EXPECT_EQ(d.astats().recoveryViolations, 0u);

    d.retire(warmA);
    d.retire(warmB);
    d.retire(cause);
    EXPECT_EQ(d.astats().violations(), 0u);
}

TEST(Auditor, InjectedCorruptionAtRecoveryIsFlagged)
{
    AuditDriver d(walkConfig(RepairKind::BackwardWalk));

    DynInst &warmA = d.predict(pcA, true, true);
    DynInst &warmB = d.predict(pcB, true, true);
    d.advanceTime(1);

    DynInst &cause = d.predict(pcA, true, false);
    d.predict(pcB, true, true, /*wrong_path=*/true);
    d.advanceTime(5);

    // Simulate a buggy repair: run the real walk, then corrupt the
    // repaired entry before the auditor's cross-check.
    const std::uint64_t pre =
        d.scheme().stats().uncheckpointedMispredicts;
    d.scheme().atMispredict(cause, 105);
    d.scheme().atSquash(cause.seq, cause);
    d.lp().writeState(pcB, LoopState::make(999, true));
    d.auditor().onRecovery(
        cause, d.lp(),
        d.scheme().stats().uncheckpointedMispredicts == pre);

    EXPECT_GE(d.astats().recoveryViolations, 1u);

    d.retire(warmA);
    d.retire(warmB);
    d.retire(cause);
}

TEST(Auditor, InjectedCorruptionAtRetireIsFlagged)
{
    AuditDriver d(walkConfig(RepairKind::BackwardWalk));

    std::deque<DynInst *> inflight;
    for (int i = 0; i < 4; ++i)
        inflight.push_back(&d.predict(pcA, true, true));

    // Corrupt the live BHT entry mid-flight (no recovery event to
    // declare it): the next prediction observes the corrupt state and
    // the golden chain catches the discontinuity at its retire.
    d.lp().writeState(pcA, LoopState::make(777, false));
    inflight.push_back(&d.predict(pcA, true, true));

    while (!inflight.empty()) {
        d.retire(*inflight.front());
        inflight.pop_front();
    }
    EXPECT_GE(d.astats().retireViolations, 1u);
}

TEST(Auditor, ObqOverflowIsDeclaredNotFlagged)
{
    // Two OBQ entries: the third checkpointed branch overflows. The
    // scheme declares the gap; the auditor must count it as uncovered
    // or skipped rather than as a violation.
    AuditDriver d(walkConfig(RepairKind::BackwardWalk, {2, 4, 2}));

    DynInst &warmA = d.predict(pcA, true, true);
    DynInst &warmB = d.predict(pcB, true, true);
    d.advanceTime(1);

    DynInst &cause = d.predict(pcA, true, false);
    d.predict(pcB, true, true, /*wrong_path=*/true);
    d.predict(pcA, true, true, /*wrong_path=*/true);
    d.predict(pcB, true, false, /*wrong_path=*/true);
    d.advanceTime(5);
    d.mispredict(cause);

    EXPECT_EQ(d.astats().violations(), 0u);

    d.retire(warmA);
    d.retire(warmB);
    d.retire(cause);
    EXPECT_EQ(d.astats().violations(), 0u);
}

TEST(Auditor, LimitedPcCleanRecovery)
{
    RepairConfig cfg = walkConfig(RepairKind::LimitedPc);
    cfg.limitedM = 8;
    AuditDriver d(cfg);

    DynInst &warmA = d.predict(pcA, true, true);
    DynInst &warmB = d.predict(pcB, true, true);
    d.advanceTime(1);

    // Both polluted PCs land inside the M=8 payload (the cause itself
    // plus the recently-updated neighbour), so the repair is total and
    // the auditor checks it exactly.
    DynInst &cause = d.predict(pcA, true, false);
    d.predict(pcB, true, true, /*wrong_path=*/true);
    d.predict(pcA, true, true, /*wrong_path=*/true);
    d.advanceTime(5);
    d.mispredict(cause);

    EXPECT_GT(d.astats().recoveryChecks, 0u);
    EXPECT_EQ(d.astats().violations(), 0u);

    d.retire(warmA);
    d.retire(warmB);
    d.retire(cause);
    EXPECT_EQ(d.astats().violations(), 0u);
}

TEST(Auditor, LimitedPcOutOfSetIsCountedNotAsserted)
{
    // M=1: the payload holds only the mispredicting PC, so wrong-path
    // pollution of pcB is *designed* divergence (section 3.3). The
    // auditor must count it (skipped, chain desync) — never assert.
    RepairConfig cfg = walkConfig(RepairKind::LimitedPc);
    cfg.limitedM = 1;
    AuditDriver d(cfg);

    DynInst &warmA = d.predict(pcA, true, true);
    DynInst &warmB = d.predict(pcB, true, true);
    d.advanceTime(1);

    DynInst &cause = d.predict(pcA, true, false);
    d.predict(pcB, true, true, /*wrong_path=*/true);
    d.advanceTime(5);
    const std::uint64_t skipped_before = d.astats().skipped;
    d.mispredict(cause);

    ASSERT_NE(d.scheme().lastRepairSet(), nullptr);
    EXPECT_EQ(d.scheme().lastRepairSet()->size(), 1u);
    EXPECT_GT(d.astats().skipped, skipped_before)
        << "out-of-set pollution must be counted as a declared gap";
    EXPECT_GT(d.astats().recoveryChecks, 0u)
        << "the mispredicting PC itself is still checked";
    EXPECT_EQ(d.astats().violations(), 0u);

    d.retire(warmA);
    d.retire(warmB);
    d.retire(cause);
    EXPECT_EQ(d.astats().violations(), 0u);
}

TEST(Auditor, MultiStageCleanRecovery)
{
    AuditDriver d(walkConfig(RepairKind::MultiStage));
    ASSERT_TRUE(d.scheme().auditsAtAlloc());

    DynInst &warmA = d.predict(pcA, true, true);
    DynInst &warmB = d.predict(pcB, true, true);
    d.advanceTime(1);

    DynInst &cause = d.predict(pcA, true, false);
    d.predict(pcB, true, true, /*wrong_path=*/true);
    d.predict(pcA, true, true, /*wrong_path=*/true);
    d.advanceTime(5);
    d.mispredict(cause);

    EXPECT_GT(d.astats().recoveryChecks, 0u);
    EXPECT_EQ(d.astats().violations(), 0u);

    d.retire(warmA);
    d.retire(warmB);
    d.retire(cause);
    EXPECT_EQ(d.astats().violations(), 0u);
}

namespace {

/**
 * Broken LimitedPc: runs the real repair, then corrupts the
 * mispredicting PC's restored entry — the failure the auditor's
 * always-checked cause PC exists to catch.
 */
class BrokenLimitedPcScheme : public LimitedPcScheme
{
  public:
    using LimitedPcScheme::LimitedPcScheme;

    void
    atMispredict(DynInst &di, Cycle now) override
    {
        LimitedPcScheme::atMispredict(di, now);
        lp_->writeState(di.pc, LoopState::make(999, true));
    }

    const char *name() const override { return "broken-limited-pc"; }
};

/** Broken MultiStage: same corruption, against BHT-Defer. */
class BrokenMultiStageScheme : public MultiStageScheme
{
  public:
    using MultiStageScheme::MultiStageScheme;

    void
    atMispredict(DynInst &di, Cycle now) override
    {
        MultiStageScheme::atMispredict(di, now);
        lp_->writeState(di.pc, LoopState::make(999, true));
    }

    const char *name() const override { return "broken-multi-stage"; }
};

} // namespace

TEST(Auditor, BrokenLimitedPcIsDetected)
{
    RepairConfig cfg = walkConfig(RepairKind::LimitedPc);
    cfg.limitedM = 4;
    AuditDriver d(std::make_unique<BrokenLimitedPcScheme>(
        makeLocalPredictor(cfg), cfg));

    DynInst &warmA = d.predict(pcA, true, true);
    DynInst &warmB = d.predict(pcB, true, true);
    d.advanceTime(1);

    DynInst &cause = d.predict(pcA, true, false);
    d.predict(pcB, true, true, /*wrong_path=*/true);
    d.advanceTime(5);
    d.mispredict(cause);

    EXPECT_GE(d.astats().recoveryViolations, 1u)
        << "a limited-PC repair that corrupts its own cause must trip";

    d.retire(warmA);
    d.retire(warmB);
    d.retire(cause);
}

TEST(Auditor, BrokenMultiStageIsDetected)
{
    RepairConfig cfg = walkConfig(RepairKind::MultiStage);
    AuditDriver d(std::make_unique<BrokenMultiStageScheme>(
        makeLocalPredictor(cfg), makeLocalPredictor(cfg),
        /*shared_pt=*/true, cfg));

    DynInst &warmA = d.predict(pcA, true, true);
    DynInst &warmB = d.predict(pcB, true, true);
    d.advanceTime(1);

    DynInst &cause = d.predict(pcA, true, false);
    d.predict(pcB, true, true, /*wrong_path=*/true);
    d.advanceTime(5);
    d.mispredict(cause);

    EXPECT_GE(d.astats().recoveryViolations, 1u)
        << "a defer-side repair that corrupts its cause must trip";

    d.retire(warmA);
    d.retire(warmB);
    d.retire(cause);
}

#ifdef LBP_AUDIT

namespace {

/**
 * A deliberately-broken backward walk: claims every recovery is
 * covered but never rewrites the BHT. The paper's point is that this
 * failure mode does not crash — it just silently corrupts speculative
 * state. The end-to-end negative test proves the auditor catches it
 * on the real pipeline.
 */
class BrokenWalkScheme : public BackwardWalkScheme
{
  public:
    BrokenWalkScheme(std::unique_ptr<LocalPredictor> lp,
                     const RepairConfig &cfg)
        : BackwardWalkScheme(std::move(lp), cfg)
    {
    }

    void
    atMispredict(DynInst &di, Cycle now) override
    {
        // Pollution accounting only; no repair, no declared gap.
        RepairScheme::atMispredict(di, now);
    }

    const char *name() const override { return "broken-walk"; }
};

} // namespace

TEST(AuditorIntegration, RealPipelineRunsClean)
{
    SimConfig cfg;
    cfg.warmupInstrs = 20000;
    cfg.measureInstrs = 40000;
    cfg.useLocal = true;
    cfg.repair.kind = RepairKind::BackwardWalk;

    const Program prog =
        buildWorkload(categoryProfiles()[0], 0, SuiteOptions{}.seed);
    const RunResult r = runOne(prog, cfg);
    EXPECT_GT(r.auditChecks, 0u)
        << "the auditor must actually check something";
    EXPECT_EQ(r.auditViolations, 0u);
}

TEST(AuditorIntegration, LimitedPcPipelineRunsClean)
{
    SimConfig cfg;
    cfg.warmupInstrs = 20000;
    cfg.measureInstrs = 40000;
    cfg.useLocal = true;
    cfg.repair.kind = RepairKind::LimitedPc;

    const Program prog =
        buildWorkload(categoryProfiles()[0], 0, SuiteOptions{}.seed);
    const RunResult r = runOne(prog, cfg);
    EXPECT_GT(r.auditChecks, 0u);
    EXPECT_EQ(r.auditViolations, 0u);
}

TEST(AuditorIntegration, MultiStagePipelineRunsClean)
{
    SimConfig cfg;
    cfg.warmupInstrs = 20000;
    cfg.measureInstrs = 40000;
    cfg.useLocal = true;
    cfg.repair.kind = RepairKind::MultiStage;

    const Program prog =
        buildWorkload(categoryProfiles()[0], 0, SuiteOptions{}.seed);
    const RunResult r = runOne(prog, cfg);
    EXPECT_GT(r.auditChecks, 0u);
    EXPECT_EQ(r.auditViolations, 0u);
}

TEST(AuditorIntegration, BrokenRepairSchemeIsDetected)
{
    SimConfig cfg;
    cfg.warmupInstrs = 20000;
    cfg.measureInstrs = 40000;
    cfg.useLocal = true;
    cfg.repair.kind = RepairKind::BackwardWalk;

    const Program prog =
        buildWorkload(categoryProfiles()[0], 0, SuiteOptions{}.seed);
    OooCore core(prog, cfg,
                 std::make_unique<BrokenWalkScheme>(
                     makeLocalPredictor(cfg.repair), cfg.repair));
    core.run(cfg.warmupInstrs + cfg.measureInstrs);

    const AuditorStats *as = core.auditorStats();
    ASSERT_NE(as, nullptr);
    EXPECT_GT(as->violations(), 0u)
        << "a repair scheme that never repairs must be flagged";
}

#else

TEST(AuditorIntegration, DISABLED_RequiresLbpAuditBuild) {}

#endif // LBP_AUDIT
