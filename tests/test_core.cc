/**
 * @file
 * Tests for the cache hierarchy and the OOO core: latency accounting,
 * prefetch behaviour, pipeline progress, determinism, misprediction
 * accounting, and scheme-agnostic liveness across the suite.
 */

#include <gtest/gtest.h>

#include "core/cache.hh"
#include "core/core.hh"
#include "workload/builder.hh"
#include "workload/suite.hh"

using namespace lbp;

// ---------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------

TEST(Cache, HitAndMissLatencies)
{
    CacheConfig cfg{"l1", 32, 8, 64, 5, false};
    Cache c(cfg, nullptr, 200);
    EXPECT_EQ(c.access(0x1000), 205u) << "cold miss pays memory";
    EXPECT_EQ(c.access(0x1000), 5u) << "hit pays only L1";
    EXPECT_EQ(c.access(0x1038), 5u) << "same line";
    EXPECT_EQ(c.access(0x1040), 205u) << "next line misses";
    EXPECT_EQ(c.stats().misses, 2u);
    EXPECT_EQ(c.stats().accesses, 4u);
}

TEST(Cache, StreamerPrefetchCoversStrides)
{
    CacheConfig cfg{"l1", 32, 8, 64, 5, true};
    Cache c(cfg, nullptr, 200);
    c.access(0x2000);
    // Sequential walk: every subsequent line was prefetched.
    for (Addr a = 0x2008; a < 0x2000 + 64 * 64; a += 8)
        EXPECT_EQ(c.access(a), 5u) << "addr " << a;
    EXPECT_EQ(c.stats().misses, 1u) << "only the first touch misses";
}

TEST(Cache, HierarchyAccumulatesLatency)
{
    MemoryHierarchyConfig cfg;
    MemoryHierarchy mem(cfg);
    const unsigned cold = mem.dataAccess(0x5000000);
    EXPECT_EQ(cold, cfg.l1d.latency + cfg.l2.latency +
                        cfg.llc.latency + cfg.memLatency);
    EXPECT_EQ(mem.dataAccess(0x5000000), cfg.l1d.latency);
}

TEST(Cache, L2ServesL1Victims)
{
    MemoryHierarchyConfig cfg;
    cfg.l1d.nextLinePrefetch = false;
    cfg.l2.nextLinePrefetch = false;
    cfg.llc.nextLinePrefetch = false;
    MemoryHierarchy mem(cfg);
    // Touch far more lines than L1 holds but fewer than L2 holds.
    const unsigned lines = 2 * cfg.l1d.sizeKB * 1024 / 64;
    for (unsigned i = 0; i < lines; ++i)
        mem.dataAccess(0x4000000 + 64 * i);
    // First line was evicted from L1 but must still be in L2.
    EXPECT_EQ(mem.dataAccess(0x4000000),
              cfg.l1d.latency + cfg.l2.latency);
}

// ---------------------------------------------------------------------
// Core
// ---------------------------------------------------------------------

namespace {

Program
testProgram(unsigned cat = 0, unsigned idx = 0)
{
    return buildWorkload(categoryProfiles()[cat], idx,
                         SuiteOptions{}.seed);
}

} // namespace

TEST(Core, RetiresExactlyRequestedInstructions)
{
    const Program prog = testProgram();
    OooCore core(prog, SimConfig{});
    core.run(5000);
    EXPECT_GE(core.stats().retiredInstrs, 5000u);
    EXPECT_LT(core.stats().retiredInstrs, 5004u)
        << "overshoot bounded by retire width";
}

TEST(Core, IpcWithinPhysicalBounds)
{
    const Program prog = testProgram();
    OooCore core(prog, SimConfig{});
    core.run(50000);
    const double ipc = core.stats().ipc();
    EXPECT_GT(ipc, 0.1);
    EXPECT_LE(ipc, 4.0) << "cannot beat retire width";
}

TEST(Core, DeterministicAcrossRuns)
{
    const Program prog = testProgram(2, 1);
    SimConfig cfg;
    cfg.useLocal = true;
    cfg.repair.kind = RepairKind::ForwardWalk;
    OooCore a(prog, cfg), b(prog, cfg);
    a.run(40000);
    b.run(40000);
    EXPECT_EQ(a.stats().cycles, b.stats().cycles);
    EXPECT_EQ(a.stats().mispredicts, b.stats().mispredicts);
    EXPECT_EQ(a.stats().wrongPathFetched, b.stats().wrongPathFetched);
}

TEST(Core, MispredictsProduceWrongPathFetch)
{
    const Program prog = testProgram();
    OooCore core(prog, SimConfig{});
    core.run(50000);
    EXPECT_GT(core.stats().mispredicts, 0u);
    EXPECT_GT(core.stats().wrongPathFetched, 0u);
    // Each flush discards a bounded wrong-path window.
    EXPECT_LT(core.stats().wrongPathFetched,
              300u * core.stats().mispredicts);
}

TEST(Core, FetchesMoreThanItRetires)
{
    const Program prog = testProgram();
    OooCore core(prog, SimConfig{});
    core.run(30000);
    EXPECT_GE(core.stats().fetchedInstrs,
              core.stats().retiredInstrs +
                  core.stats().wrongPathFetched);
}

TEST(Core, PerfectPredictionBoundsMispredicts)
{
    // A program with a single constant always-taken loop branch has
    // (almost) no mispredictions once TAGE warms up.
    ProgramBuilder b("tiny", "Test", 5);
    b.addStream({0x1000, 8, 4096, false, 0});
    std::vector<Seg> body;
    body.push_back(Seg::straight(6));
    std::vector<Seg> top;
    top.push_back(Seg::loop(
        std::make_unique<PatternBehavior>(~0ull, 1), true,
        std::move(body)));
    const Program prog = b.build(std::move(top));

    OooCore core(prog, SimConfig{});
    core.run(30000);
    EXPECT_LT(core.stats().mpki(), 0.5);
    EXPECT_GT(core.stats().ipc(), 1.5);
}

TEST(Core, BtbMissesBoundedByBranchSites)
{
    const Program prog = testProgram();
    OooCore core(prog, SimConfig{});
    core.run(60000);
    // 2K-entry BTB fits every site: misses are (mostly) cold only.
    EXPECT_LT(core.stats().btbMisses,
              2u * prog.staticInstCount());
}

TEST(Core, WarmupDeltaAccounting)
{
    const Program prog = testProgram(4, 2);
    SimConfig cfg;
    OooCore core(prog, cfg);
    core.run(20000);
    const CoreStats warm = core.stats();
    core.run(30000);
    const CoreStats d = CoreStats::delta(core.stats(), warm);
    EXPECT_GE(d.retiredInstrs, 30000u);
    EXPECT_LT(d.retiredInstrs, 30004u);
    EXPECT_EQ(d.cycles, core.stats().cycles - warm.cycles);
}

class CoreLiveness
    : public ::testing::TestWithParam<std::tuple<int, RepairKind>>
{
};

TEST_P(CoreLiveness, RunsWithoutDeadlock)
{
    const auto [cat, kind] = GetParam();
    const Program prog = testProgram(static_cast<unsigned>(cat), 0);
    SimConfig cfg;
    cfg.useLocal = true;
    cfg.repair.kind = kind;
    cfg.repair.ports = {16, 2, 2};
    OooCore core(prog, cfg);
    core.run(30000);  // panics internally on deadlock
    EXPECT_GE(core.stats().retiredInstrs, 30000u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CoreLiveness,
    ::testing::Combine(
        ::testing::Values(0, 1, 2, 3, 4, 5, 6),
        ::testing::Values(RepairKind::Perfect, RepairKind::NoRepair,
                          RepairKind::ForwardWalk,
                          RepairKind::BackwardWalk,
                          RepairKind::Snapshot, RepairKind::LimitedPc,
                          RepairKind::RetireUpdate,
                          RepairKind::MultiStage,
                          RepairKind::FutureFile)),
    [](const auto &info) {
        std::string n =
            "cat" + std::to_string(std::get<0>(info.param)) + "_" +
            repairKindName(std::get<1>(info.param));
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });
