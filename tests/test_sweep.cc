/**
 * @file
 * Sweep orchestration observability (src/sim/sweep): JSON-lines event
 * log well-formedness and wall-time reconciliation, pinned progress/ETA
 * line content, manifest schema and provenance, the sweep-counter
 * table, and Figure-8 port-analysis reconciliation against the raw
 * forensics records.
 */

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hh"
#include "obs/port_analysis.hh"
#include "sim/result_store.hh"
#include "sim/suite_cache.hh"
#include "sim/sweep.hh"
#include "workload/suite.hh"

using namespace lbp;

namespace {

SimConfig
schemeConfig(RepairKind kind)
{
    SimConfig cfg;
    cfg.warmupInstrs = 5000;
    cfg.measureInstrs = 8000;
    cfg.useLocal = true;
    cfg.repair.kind = kind;
    return cfg;
}

std::vector<Program>
smallSuite(unsigned n)
{
    SuiteOptions opts;
    opts.maxWorkloads = n;
    return buildSuite(opts);
}

std::vector<SweepConfig>
twoConfigs()
{
    return {{"forward-walk", schemeConfig(RepairKind::ForwardWalk)},
            {"snapshot", schemeConfig(RepairKind::Snapshot)}};
}

/**
 * Minimal recursive-descent validator for one JSON value — enough to
 * prove the event log and manifest are real JSON, not curly-brace
 * lookalikes. Accepts objects/arrays/strings/numbers/literals.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s_(text) {}

    bool
    valid()
    {
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }
    bool
    consume(char c)
    {
        skipWs();
        if (peek() != c)
            return false;
        ++pos_;
        return true;
    }

    bool
    string()
    {
        if (!consume('"'))
            return false;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\')
                ++pos_;
            ++pos_;
        }
        return pos_ < s_.size() && s_[pos_++] == '"';
    }

    bool
    number()
    {
        skipWs();
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (std::isdigit(static_cast<unsigned char>(peek())) ||
               peek() == '.' || peek() == 'e' || peek() == 'E' ||
               peek() == '+' || peek() == '-')
            ++pos_;
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        skipWs();
        const std::size_t len = std::string(word).size();
        if (s_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    bool
    value()
    {
        skipWs();
        switch (peek()) {
          case '{': {
            consume('{');
            skipWs();
            if (peek() == '}')
                return consume('}');
            do {
                if (!string() || !consume(':') || !value())
                    return false;
                skipWs();
            } while (consume(','));
            return consume('}');
          }
          case '[': {
            consume('[');
            skipWs();
            if (peek() == ']')
                return consume(']');
            do {
                if (!value())
                    return false;
                skipWs();
            } while (consume(','));
            return consume(']');
          }
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

/** Value of the first `"key":<number>` occurrence; fails the test if
 *  the key is absent. */
double
numberField(const std::string &text, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    const std::size_t pos = text.find(needle);
    if (pos == std::string::npos) {
        ADD_FAILURE() << "missing JSON field " << key;
        return -1.0;
    }
    return std::strtod(text.c_str() + pos + needle.size(), nullptr);
}

/**
 * Value of the named counter in a MetricsRegistry JSON dump, where
 * scalars are `{"name": "<name>", ..., "value": <v>}` objects.
 */
double
counterValue(const std::string &text, const std::string &name)
{
    const std::string needle = "{\"name\": \"" + name + "\"";
    const std::size_t pos = text.find(needle);
    if (pos == std::string::npos) {
        ADD_FAILURE() << "missing counter " << name;
        return -1.0;
    }
    const std::string value = "\"value\": ";
    const std::size_t vpos = text.find(value, pos);
    if (vpos == std::string::npos) {
        ADD_FAILURE() << "counter " << name << " has no value";
        return -1.0;
    }
    return std::strtod(text.c_str() + vpos + value.size(), nullptr);
}

} // namespace

TEST(Sweep, EventLogIsValidJsonLinesAndWallTimesReconcile)
{
    const std::vector<Program> suite = smallSuite(2);
    const std::vector<SweepConfig> configs = twoConfigs();

    std::ostringstream events;
    SuiteCache cache;
    SweepOptions opts;
    opts.jobs = 1;
    opts.cache = &cache;
    opts.eventLog = &events;
    const SweepResult res = runSweep(suite, configs, opts);

    std::istringstream lines(events.str());
    std::string line;
    std::vector<std::string> kinds;
    double cellWallSum = 0.0;
    double endCellWall = -1.0;
    while (std::getline(lines, line)) {
        ASSERT_TRUE(JsonChecker(line).valid())
            << "event line is not valid JSON: " << line;
        if (line.find("\"event\":\"cell\"") != std::string::npos) {
            kinds.push_back("cell");
            cellWallSum += numberField(line, "wall_s");
        } else if (line.find("\"event\":\"config\"") !=
                   std::string::npos) {
            kinds.push_back("config");
        } else if (line.find("\"event\":\"sweep_start\"") !=
                   std::string::npos) {
            kinds.push_back("start");
        } else if (line.find("\"event\":\"sweep_end\"") !=
                   std::string::npos) {
            kinds.push_back("end");
            endCellWall = numberField(line, "cell_wall_s");
        } else {
            FAIL() << "unknown event line: " << line;
        }
    }

    // One line per cell and per config, framed by start/end.
    const std::size_t cells = configs.size() * suite.size();
    ASSERT_FALSE(kinds.empty());
    EXPECT_EQ(kinds.front(), "start");
    EXPECT_EQ(kinds.back(), "end");
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(kinds.begin(), kinds.end(), "cell")),
              cells);
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(kinds.begin(), kinds.end(), "config")),
              configs.size());

    // Per-cell wall times reconcile with the aggregate counter, both
    // as logged (%.17g round-trips doubles) and as recorded.
    EXPECT_NEAR(cellWallSum, res.stats.cellWallSeconds, 1e-9);
    EXPECT_NEAR(endCellWall, res.stats.cellWallSeconds, 1e-9);
    double recorded = 0.0;
    for (const SweepCell &cell : res.cells)
        recorded += cell.wallSeconds;
    EXPECT_DOUBLE_EQ(recorded, res.stats.cellWallSeconds);
    EXPECT_LE(res.stats.cellWallSeconds,
              res.stats.wallSeconds * static_cast<double>(res.jobs) +
                  1e-6);
}

TEST(Sweep, ProgressLineContentIsPinned)
{
    // No throughput yet: percentage but no rate/ETA estimate.
    EXPECT_EQ(renderSweepProgress(0, 10, 0.0),
              "[sweep] 0/10 cells (0.0%) ETA --");
    EXPECT_EQ(renderSweepProgress(0, 10, 1.5),
              "[sweep] 0/10 cells (0.0%) ETA --");
    // Mid-sweep: 5 cells in 2s -> 2.5 cells/s, 5 remaining -> 2s.
    EXPECT_EQ(renderSweepProgress(5, 10, 2.0),
              "[sweep] 5/10 cells (50.0%) 2.5 cells/s ETA 2s");
    // Done: ETA reaches zero.
    EXPECT_EQ(renderSweepProgress(10, 10, 4.0),
              "[sweep] 10/10 cells (100.0%) 2.5 cells/s ETA 0s");
}

TEST(Sweep, ProgressSinkReceivesLiveLine)
{
    const std::vector<Program> suite = smallSuite(1);
    const std::vector<SweepConfig> configs = twoConfigs();

    std::FILE *sink = std::tmpfile();
    ASSERT_NE(sink, nullptr);
    SuiteCache cache;
    SweepOptions opts;
    opts.jobs = 1;
    opts.cache = &cache;
    opts.progress = sink;
    const SweepResult res = runSweep(suite, configs, opts);

    std::rewind(sink);
    std::string text;
    char buf[256];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), sink)) > 0)
        text.append(buf, got);
    std::fclose(sink);

    const std::string done = std::to_string(res.stats.cellsTotal);
    EXPECT_NE(text.find("[sweep] "), std::string::npos);
    EXPECT_NE(text.find(done + "/" + done + " cells (100.0%)"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find('\r'), std::string::npos)
        << "progress line must redraw in place";
}

TEST(Sweep, ManifestParsesAndCarriesProvenance)
{
    const std::vector<Program> suite = smallSuite(2);
    const std::vector<SweepConfig> configs = twoConfigs();

    SuiteCache cache;
    SweepOptions opts;
    opts.jobs = 1;
    opts.cache = &cache;
    const SweepResult res = runSweep(suite, configs, opts);

    std::ostringstream os;
    writeSweepManifest(os, res, configs);
    const std::string text = os.str();

    ASSERT_TRUE(JsonChecker(text).valid())
        << "manifest is not valid JSON";
    EXPECT_NE(text.find("\"schema\": \"lbp-sweep-manifest-v1\""),
              std::string::npos);
    EXPECT_NE(text.find("\"git_sha\": "), std::string::npos);
    EXPECT_NE(text.find("\"fingerprint\": "), std::string::npos);
    EXPECT_NE(text.find(gitShaString()), std::string::npos);

    // Every sweep counter the metrics table names must be present, and
    // the cell wall-time total must reconcile with the cells recorded.
    for (const SweepMetricDesc &d : sweepMetrics()) {
        std::string quoted("\"");
        quoted += d.name;
        quoted += '"';
        EXPECT_NE(text.find(quoted), std::string::npos)
            << "manifest counters missing " << d.name;
    }
    EXPECT_EQ(static_cast<std::uint64_t>(
                  counterValue(text, "sweep_cells_total")),
              res.stats.cellsTotal);
    EXPECT_EQ(static_cast<std::uint64_t>(
                  counterValue(text, "sweep_cells_simulated")),
              res.stats.cellsSimulated);
    double cellSum = 0.0;
    for (const SweepCell &cell : res.cells)
        cellSum += cell.wallSeconds;
    // Gauges render with 6 significant digits; compare accordingly.
    EXPECT_NEAR(counterValue(text, "sweep_cell_wall_s"), cellSum,
                1e-5 * std::max(1.0, cellSum));

    // Per-config provenance: names and every workload appear.
    for (const SweepConfig &c : configs)
        EXPECT_NE(text.find("\"name\": \"" + c.name + "\""),
                  std::string::npos);
    for (const Program &p : suite)
        EXPECT_NE(text.find("\"workload\": \"" + p.name + "\""),
                  std::string::npos);
}

TEST(Sweep, MetricTableNamesUniqueAndBound)
{
    const auto &table = sweepMetrics();
    ASSERT_GE(table.size(), 12u);

    std::map<std::string, int> names;
    for (const SweepMetricDesc &d : table)
        ++names[d.name];
    for (const auto &[name, count] : names)
        EXPECT_EQ(count, 1) << "duplicate sweep metric " << name;

    SweepStats s;
    s.cellsTotal = 7;
    s.cellsSimulated = 4;
    s.cellsStoreHit = 2;
    s.cellsCacheHit = 1;
    s.storeHits = 2;
    s.storeMisses = 5;
    s.storeStale = 1;
    s.storeWrites = 4;
    s.simInstrs = 2'000'000;
    s.wallSeconds = 4.0;
    s.cellWallSeconds = 3.5;

    MetricsRegistry reg;
    registerSweepMetrics(reg, s);
    ASSERT_EQ(reg.scalars().size(), table.size());
    for (std::size_t i = 0; i < table.size(); ++i) {
        EXPECT_EQ(reg.scalars()[i].name, table[i].name);
        EXPECT_EQ(reg.scalars()[i].value, table[i].get(s));
    }

    const auto value = [&](const char *name) {
        for (const SweepMetricDesc &d : table)
            if (std::string(name) == d.name)
                return d.get(s);
        ADD_FAILURE() << "missing sweep metric " << name;
        return -1.0;
    };
    EXPECT_EQ(value("sweep_cells_total"), 7.0);
    EXPECT_EQ(value("sweep_cells_simulated"), 4.0);
    EXPECT_EQ(value("store_stale"), 1.0);
    EXPECT_EQ(value("sweep_wall_s"), 4.0);
    // Derived gauge: simulated Minstr over sweep wall time.
    EXPECT_DOUBLE_EQ(value("sweep_minstr_per_s"), 0.5);
}

// Figure-8 port analysis must reconcile exactly against the raw
// forensics records: every row aggregates every squash, single-cycle
// counts match a direct recount, and more ports never hurt.
TEST(Sweep, PortAnalysisReconcilesWithForensicsRecords)
{
    const std::vector<Program> suite = smallSuite(3);
    SimConfig cfg = schemeConfig(RepairKind::ForwardWalk);
    cfg.obs.forensics = true;

    const SuiteResult res = runSuite(suite, cfg, 1);
    std::vector<const ObsRun *> obs;
    std::uint64_t records = 0;
    for (const RunResult &r : res.runs) {
        ASSERT_TRUE(r.obs) << r.workload;
        obs.push_back(r.obs.get());
        records += r.obs->squashes.size();
    }
    ASSERT_GT(records, 0u);

    const std::vector<unsigned> ports = {1, 2, 4, 8};
    const auto rows = portAnalysis(obs, ports);
    ASSERT_EQ(rows.size(), ports.size());

    for (std::size_t i = 0; i < rows.size(); ++i) {
        SCOPED_TRACE("ports=" + std::to_string(ports[i]));
        EXPECT_EQ(rows[i].ports, ports[i]);
        EXPECT_EQ(rows[i].squashes, records)
            << "row does not aggregate every forensics record";

        // Direct recount against the raw records.
        std::uint64_t walkFit = 0, writeFit = 0, maxWalk = 0;
        double drainSum = 0.0;
        for (const ObsRun *o : obs) {
            for (const SquashRecord &sq : o->squashes) {
                walkFit += sq.walkLength <= ports[i];
                writeFit += sq.repairWrites <= ports[i];
                const std::uint64_t drain =
                    (sq.walkLength + ports[i] - 1) / ports[i];
                drainSum += static_cast<double>(drain);
                maxWalk = std::max(maxWalk, drain);
            }
        }
        EXPECT_EQ(rows[i].walkSingleCycle, walkFit);
        EXPECT_EQ(rows[i].writeSingleCycle, writeFit);
        EXPECT_EQ(rows[i].maxWalkDrainCycles, maxWalk);
        EXPECT_DOUBLE_EQ(rows[i].avgWalkDrainCycles,
                         drainSum / static_cast<double>(records));
        EXPECT_NEAR(rows[i].walkSingleCyclePct,
                    100.0 * static_cast<double>(walkFit) /
                        static_cast<double>(records),
                    1e-9);
    }

    // Monotone in ports: more ports never drain slower.
    for (std::size_t i = 1; i < rows.size(); ++i) {
        EXPECT_GE(rows[i].walkSingleCycle, rows[i - 1].walkSingleCycle);
        EXPECT_GE(rows[i].writeSingleCycle,
                  rows[i - 1].writeSingleCycle);
        EXPECT_LE(rows[i].avgWalkDrainCycles,
                  rows[i - 1].avgWalkDrainCycles);
        EXPECT_LE(rows[i].maxWalkDrainCycles,
                  rows[i - 1].maxWalkDrainCycles);
    }

    // CSV: header plus one row per port count.
    std::ostringstream csv;
    writePortAnalysisCsv(csv, rows);
    const std::string text = csv.str();
    EXPECT_EQ(text.rfind("ports,squashes,", 0), 0u);
    std::size_t lines = 0;
    for (const char c : text)
        lines += c == '\n';
    EXPECT_EQ(lines, rows.size() + 1);
    EXPECT_NE(formatPortAnalysis(rows).find("ports"),
              std::string::npos);
}
