/**
 * @file
 * Hand-driven scenario tests for every repair scheme: exact restored
 * states, repair-bit single-write semantics, coalesced self-repair,
 * snapshot eviction, limited-PC payload selection, timing windows, and
 * the multi-stage resteer protocol.
 */

#include <gtest/gtest.h>

#include <deque>

#include "bpu/loop_predictor.hh"
#include "repair/schemes.hh"

using namespace lbp;

namespace {

/** Minimal pipeline stand-in driving a scheme's event hooks. */
class Driver
{
  public:
    explicit Driver(const RepairConfig &cfg)
        : scheme_(makeRepairScheme(cfg))
    {
    }

    RepairScheme &scheme() { return *scheme_; }
    LocalPredictor &lp() { return scheme_->local(); }

    /** Fetch-stage prediction of a conditional branch. */
    DynInst &
    predict(Addr pc, bool tage_dir, bool actual,
            bool wrong_path = false)
    {
        insts_.emplace_back();
        DynInst &di = insts_.back();
        di.seq = seq_++;
        di.pc = pc;
        di.cls = InstClass::CondBranch;
        di.wrongPath = wrong_path;
        di.actualDir = actual;
        scheme_->atPredict(di, tage_dir, now_);
        if (!wrong_path)
            scheme_->atTruePathFetch(di);
        return di;
    }

    void
    mispredict(DynInst &di)
    {
        scheme_->atMispredict(di, now_);
        scheme_->atSquash(di.seq, di);
    }

    void retire(DynInst &di) { scheme_->atRetire(di); }
    void advanceTime(Cycle c) { now_ += c; }
    Cycle now() const { return now_; }

    LocalState
    state(Addr pc, bool *present = nullptr)
    {
        bool here = false;
        const LocalState s = lp().readState(pc, &here);
        if (present)
            *present = here;
        return s;
    }

  private:
    std::unique_ptr<RepairScheme> scheme_;
    std::deque<DynInst> insts_;
    InstSeq seq_ = 0;
    Cycle now_ = 100;
};

RepairConfig
config(RepairKind kind, RepairPorts ports = {32, 4, 2},
       bool coalesce = false)
{
    RepairConfig cfg;
    cfg.kind = kind;
    cfg.ports = ports;
    cfg.coalesce = coalesce;
    return cfg;
}

constexpr Addr pcA = 0x400100;
constexpr Addr pcB = 0x400200;
constexpr Addr pcC = 0x400300;

} // namespace

// ---------------------------------------------------------------------
// Forward walk
// ---------------------------------------------------------------------

TEST(ForwardWalk, RestoresPolludedStatesExactly)
{
    Driver d(config(RepairKind::ForwardWalk));
    // Warm both PCs so later instances hit the BHT and checkpoint.
    d.predict(pcA, true, true);
    d.predict(pcB, true, true);
    d.predict(pcA, true, true);                       // A = {2,T}
    DynInst &b = d.predict(pcB, true, false);         // B = {2,T}, wrong
    d.predict(pcA, true, true, /*wrong_path=*/true);  // A = {3,T}
    d.predict(pcA, true, true, /*wrong_path=*/true);  // A = {4,T}

    EXPECT_EQ(LoopState::count(d.state(pcA)), 4);
    d.mispredict(b);

    // A restored to its oldest wrong-path pre-state {3,T}... that
    // instance's pre-state was {2,T}: state after the last good update.
    EXPECT_EQ(d.state(pcA), LoopState::make(2, true));
    // B restored to pre-state {1,T} advanced by the actual not-taken.
    EXPECT_EQ(d.state(pcB), LoopState::make(1, false));
}

TEST(ForwardWalk, RepairBitGivesOneWritePerPc)
{
    Driver d(config(RepairKind::ForwardWalk));
    d.predict(pcA, true, true);
    DynInst &b = d.predict(pcB, true, false);
    d.predict(pcA, true, true, true);
    d.predict(pcA, true, true, true);
    d.predict(pcA, true, true, true);
    d.mispredict(b);
    // 4 entries walked (3 wrong-path A + none for B: B missed at its
    // own predict)... writes counted must equal distinct PCs written.
    const RepairStats &st = d.scheme().stats();
    EXPECT_EQ(st.writesPerRepair.max(), 1u)
        << "three A instances must collapse to one write";
}

TEST(ForwardWalk, PerEntryAvailabilityDuringRepair)
{
    Driver d(config(RepairKind::ForwardWalk, {32, 1, 1}));
    d.predict(pcA, true, true);
    d.predict(pcB, true, true);
    d.predict(pcC, true, true);
    DynInst &b = d.predict(pcB, true, false);
    d.predict(pcA, true, true, true);
    d.predict(pcC, true, true, true);
    d.mispredict(b);
    // With 1 write/cycle and 3 writes (B, A, C), the BHT entries under
    // repair are unavailable until their write lands; untouched PCs
    // stay usable. We can't probe bhtUsable directly, but predictions
    // through atPredict on a fresh PC must not be denied.
    const auto before = d.scheme().stats().deniedPredictions;
    d.predict(0x400999, true, true);
    EXPECT_EQ(d.scheme().stats().deniedPredictions, before)
        << "PCs outside the walk range must stay predictable";
    const auto denied_before = d.scheme().stats().deniedPredictions;
    d.predict(pcC, true, true);  // under repair, same cycle
    EXPECT_GT(d.scheme().stats().deniedPredictions, denied_before)
        << "an entry awaiting its repair write must be denied";
    d.advanceTime(10);
    const auto denied_after = d.scheme().stats().deniedPredictions;
    d.predict(pcC, true, true);
    EXPECT_EQ(d.scheme().stats().deniedPredictions, denied_after)
        << "after the walk completes everything is usable again";
}

TEST(ForwardWalk, UncheckpointedMispredictIsUnrecovered)
{
    Driver d(config(RepairKind::ForwardWalk, {2, 4, 2}));
    d.predict(pcA, true, true);
    d.predict(pcA, true, true);  // A hits -> entry (queue: 1 used)
    d.predict(pcB, true, true);
    d.predict(pcB, true, true);  // B hits -> entry (queue full)
    DynInst &c = d.predict(pcC, true, false);
    DynInst &c2 = d.predict(pcC, true, false);
    (void)c;
    // c2 hits the BHT but the OBQ is full: no id at all.
    EXPECT_EQ(c2.br.obqId, invalidId);
    d.mispredict(c2);
    EXPECT_GE(d.scheme().stats().uncheckpointedMispredicts, 1u);
}

TEST(ForwardWalk, CoalescedSelfRepairUsesCarriedState)
{
    Driver d(config(RepairKind::ForwardWalk, {32, 4, 2},
                    /*coalesce=*/true));
    d.predict(pcA, true, true);            // miss, marker
    d.predict(pcA, true, true);            // entry #1 (pre {1,T})
    d.predict(pcA, true, true);            // entry #2 (pre {2,T})
    DynInst &m = d.predict(pcA, true, false);  // merged into #2
    EXPECT_TRUE(m.br.mergedEntry);
    d.predict(pcA, true, true, true);      // wrong path merges again
    d.mispredict(m);
    // Self-repair from m's carried pre-state {3,T} + actual N.
    EXPECT_EQ(d.state(pcA), LoopState::make(1, false));
}

// ---------------------------------------------------------------------
// Backward walk
// ---------------------------------------------------------------------

TEST(BackwardWalk, FinalStateMatchesForwardWalk)
{
    Driver fwd(config(RepairKind::ForwardWalk));
    Driver bwd(config(RepairKind::BackwardWalk));
    for (Driver *d : {&fwd, &bwd}) {
        d->predict(pcA, true, true);
        d->predict(pcB, true, true);
        d->predict(pcA, true, true);
        DynInst &b = d->predict(pcB, true, false);
        d->predict(pcA, true, true, true);
        d->predict(pcA, true, true, true);
        d->predict(pcB, true, true, true);
        d->mispredict(b);
    }
    EXPECT_EQ(fwd.state(pcA), bwd.state(pcA));
    EXPECT_EQ(fwd.state(pcB), bwd.state(pcB));
}

TEST(BackwardWalk, WalksMoreEntriesThanForward)
{
    Driver fwd(config(RepairKind::ForwardWalk));
    Driver bwd(config(RepairKind::BackwardWalk));
    for (Driver *d : {&fwd, &bwd}) {
        d->predict(pcA, true, true);
        DynInst &b = d->predict(pcB, true, false);
        for (int i = 0; i < 6; ++i)
            d->predict(pcA, true, true, true);
        d->mispredict(b);
    }
    EXPECT_GT(bwd.scheme().stats().writesPerRepair.max(),
              fwd.scheme().stats().writesPerRepair.max())
        << "backward rewrites duplicate PCs, forward writes each once";
}

TEST(BackwardWalk, WholeBhtBlockedDuringRepair)
{
    Driver d(config(RepairKind::BackwardWalk, {32, 1, 1}));
    d.predict(pcA, true, true);
    d.predict(pcA, true, true);
    DynInst &b = d.predict(pcB, true, false);
    d.predict(pcB, true, false);
    for (int i = 0; i < 5; ++i)
        d.predict(pcA, true, true, true);
    d.mispredict(b);
    const auto denied_before = d.scheme().stats().deniedPredictions;
    d.predict(pcC, true, true);  // untouched PC — still blocked
    EXPECT_GT(d.scheme().stats().deniedPredictions, denied_before);
    d.advanceTime(20);
    const auto denied_later = d.scheme().stats().deniedPredictions;
    d.predict(pcC, true, true);
    EXPECT_EQ(d.scheme().stats().deniedPredictions, denied_later);
}

// ---------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------

TEST(Snapshot, RestoreRewindsWholeBht)
{
    Driver d(config(RepairKind::Snapshot, {8, 4, 4}));
    d.predict(pcB, true, true);  // warm B so it owns an entry
    d.predict(pcA, true, true);
    d.predict(pcA, true, true);
    DynInst &b = d.predict(pcB, true, false);
    d.predict(pcA, true, true, true);
    d.predict(pcA, true, true, true);
    d.mispredict(b);
    EXPECT_EQ(d.state(pcA), LoopState::make(2, true));
    // B's pre-snapshot state {1,T} advanced by the actual not-taken.
    EXPECT_EQ(d.state(pcB), LoopState::make(1, false));
}

TEST(Snapshot, RestoreDropsEntriesAllocatedAfterSnapshot)
{
    Driver d(config(RepairKind::Snapshot, {8, 4, 4}));
    d.predict(pcA, true, true);
    DynInst &b = d.predict(pcB, true, false);  // B's first sighting
    d.mispredict(b);
    bool present = true;
    d.state(pcB, &present);
    EXPECT_FALSE(present)
        << "the snapshot predates B's allocation, so restore removes "
           "its speculatively-allocated entry";
}

TEST(Snapshot, EvictedSnapshotMeansNoRecovery)
{
    Driver d(config(RepairKind::Snapshot, {2, 4, 4}));
    DynInst &a = d.predict(pcA, true, false);
    d.predict(pcB, true, true);
    d.predict(pcC, true, true);  // a's snapshot evicted (capacity 2)
    d.mispredict(a);
    EXPECT_GE(d.scheme().stats().uncheckpointedMispredicts, 1u);
}

// ---------------------------------------------------------------------
// Limited-PC
// ---------------------------------------------------------------------

TEST(LimitedPc, SelfAndRecentNeighbourRepaired)
{
    RepairConfig cfg = config(RepairKind::LimitedPc);
    cfg.limitedM = 2;
    Driver d(cfg);
    d.predict(pcA, true, true);
    d.predict(pcB, true, true);
    d.predict(pcA, true, true);               // A = {2,T}
    DynInst &b = d.predict(pcB, true, false);  // payload: {B, A}
    d.predict(pcA, true, true, true);          // pollution A = {3,T}
    d.predict(pcB, true, true, true);          // pollution B = {3,T}
    d.mispredict(b);
    EXPECT_EQ(d.state(pcA), LoopState::make(2, true))
        << "the recency slot must cover the hot neighbour";
    EXPECT_EQ(d.state(pcB), LoopState::make(1, false))
        << "the mispredicting branch always repairs itself";
}

TEST(LimitedPc, UnselectedPcStaysPolluted)
{
    RepairConfig cfg = config(RepairKind::LimitedPc);
    cfg.limitedM = 2;
    Driver d(cfg);
    // C is older than the recent window relative to b's fetch.
    d.predict(pcC, true, true);
    d.predict(pcC, true, true);  // C = {2,T}
    d.predict(pcA, true, true);
    d.predict(pcA, true, true);
    DynInst &b = d.predict(pcB, true, false);
    d.predict(pcC, true, true, true);  // pollution C = {3,T}
    d.mispredict(b);
    EXPECT_EQ(d.state(pcC), LoopState::make(3, true))
        << "leave-as-is policy: unrepaired pollution persists";
}

TEST(LimitedPc, PayloadSizeBoundsWrites)
{
    for (unsigned m : {1u, 2u, 4u, 8u, 16u}) {
        RepairConfig cfg = config(RepairKind::LimitedPc);
        cfg.limitedM = m;
        Driver d(cfg);
        for (int i = 0; i < 20; ++i)
            d.predict(0x400000 + 8 * i, true, true);
        for (int i = 0; i < 20; ++i)
            d.predict(0x400000 + 8 * i, true, true);
        DynInst &b = d.predict(pcB, true, false);
        d.mispredict(b);
        EXPECT_LE(d.scheme().stats().writesPerRepair.max(), m);
    }
}

TEST(LimitedPc, DeterministicRepairLatency)
{
    RepairConfig cfg = config(RepairKind::LimitedPc, {32, 0, 2});
    cfg.limitedM = 4;
    Driver d(cfg);
    for (int i = 0; i < 8; ++i)
        d.predict(0x400000 + 8 * i, true, true);
    for (int i = 0; i < 8; ++i)
        d.predict(0x400000 + 8 * i, true, true);
    DynInst &b = d.predict(pcB, true, false);
    d.predict(pcB, true, true);
    DynInst &b2 = d.predict(pcB, true, false);
    d.mispredict(b);
    d.mispredict(b2);
    // ceil(4 writes / 2 ports) = 2 cycles, always.
    EXPECT_EQ(d.scheme().stats().repairCycles.min(), 2u);
    EXPECT_EQ(d.scheme().stats().repairCycles.max(), 2u);
}

// ---------------------------------------------------------------------
// Perfect repair
// ---------------------------------------------------------------------

TEST(Perfect, RestoreMatchesArchitecturalState)
{
    Driver d(config(RepairKind::Perfect));
    // Mispredicted path: predicted taken, actual alternating.
    d.predict(pcA, true, true);
    d.predict(pcA, true, true);
    DynInst &b = d.predict(pcB, true, false);
    // Heavy wrong-path pollution of both PCs.
    for (int i = 0; i < 10; ++i)
        d.predict(pcA, true, true, true);
    d.mispredict(b);
    EXPECT_EQ(d.state(pcA), LoopState::make(2, true));
    EXPECT_EQ(d.state(pcB), LoopState::make(1, false));
}

TEST(Perfect, RepairIsInstant)
{
    Driver d(config(RepairKind::Perfect));
    d.predict(pcA, true, true);
    DynInst &b = d.predict(pcB, true, false);
    d.mispredict(b);
    const auto denied = d.scheme().stats().deniedPredictions;
    d.predict(pcA, true, true);
    EXPECT_EQ(d.scheme().stats().deniedPredictions, denied);
    EXPECT_EQ(d.scheme().stats().repairCycles.max(), 0u);
}

// ---------------------------------------------------------------------
// Retire update / no repair
// ---------------------------------------------------------------------

TEST(RetireUpdate, BhtOnlyWrittenAtRetire)
{
    Driver d(config(RepairKind::RetireUpdate));
    DynInst &a = d.predict(pcA, true, true);
    bool present = true;
    d.state(pcA, &present);
    EXPECT_FALSE(present) << "no speculative update at predict";
    d.retire(a);
    d.state(pcA, &present);
    EXPECT_TRUE(present);
    EXPECT_EQ(LoopState::count(d.state(pcA)), 1);
}

TEST(NoRepair, PollutionPersistsThroughMispredicts)
{
    Driver d(config(RepairKind::NoRepair));
    d.predict(pcA, true, true);
    DynInst &b = d.predict(pcB, true, false);
    d.predict(pcA, true, true, true);
    d.predict(pcA, true, true, true);
    d.mispredict(b);
    EXPECT_EQ(d.state(pcA), LoopState::make(3, true))
        << "no-repair leaves the wrong-path updates in place";
}

// ---------------------------------------------------------------------
// Future file (section 2.6)
// ---------------------------------------------------------------------

TEST(FutureFile, ReadsSpeculativeStateFromQueue)
{
    Driver d(config(RepairKind::FutureFile));
    // Three speculative instances of A; the architectural BHT is only
    // written at retirement, so the queue is the sole source of the
    // running count.
    d.predict(pcA, true, true);
    d.predict(pcA, true, true);
    DynInst &a3 = d.predict(pcA, true, true);
    EXPECT_EQ(a3.br.local.preState, LoopState::make(2, true))
        << "third instance must see the two queued updates";
    bool present = true;
    d.state(pcA, &present);
    EXPECT_FALSE(present) << "architectural BHT untouched pre-retire";
}

TEST(FutureFile, MispredictIsTailRevert)
{
    Driver d(config(RepairKind::FutureFile));
    d.predict(pcA, true, true);
    DynInst &b = d.predict(pcB, true, false);
    d.predict(pcA, true, true, true);
    d.predict(pcA, true, true, true);
    d.mispredict(b);
    // Next A instance must see the pre-pollution count.
    DynInst &a = d.predict(pcA, true, true);
    EXPECT_EQ(a.br.local.preState, LoopState::make(1, true));
    EXPECT_EQ(d.scheme().stats().repairCycles.max(), 0u)
        << "future-file repair is O(1)";
}

TEST(FutureFile, WindowLimitsVisibility)
{
    RepairConfig cfg = config(RepairKind::FutureFile, {64, 4, 2});
    cfg.ffWindow = 2;
    Driver d(cfg);
    d.predict(pcA, true, true);
    d.predict(pcB, true, true);
    d.predict(pcC, true, true);
    // A's entry is now 3 deep: beyond the 2-entry associative window,
    // and not yet retired into the BHT.
    DynInst &a = d.predict(pcA, true, true);
    EXPECT_FALSE(a.br.local.bhtHit)
        << "state deeper than the search window reads as unknown";
}

TEST(FutureFile, RetireDrainsIntoArchitecturalBht)
{
    Driver d(config(RepairKind::FutureFile));
    DynInst &a = d.predict(pcA, true, true);
    d.retire(a);
    bool present = false;
    const LocalState s = d.state(pcA, &present);
    EXPECT_TRUE(present);
    EXPECT_EQ(s, LoopState::make(1, true));
}

// ---------------------------------------------------------------------
// Multi-stage (split BHT)
// ---------------------------------------------------------------------

namespace {

/**
 * Drive a full event cycle through a MultiStage scheme, emulating what
 * the core does: a branch whose final prediction is wrong flushes and
 * repairs (otherwise the defer counter would desynchronize forever,
 * which is exactly the pathology repair exists to prevent).
 */
void
msCycle(Driver &d, MultiStageScheme &ms, Addr pc, bool tage_dir,
        bool actual)
{
    DynInst &di = d.predict(pc, tage_dir, actual);
    const auto out = ms.atAlloc(di, d.now());
    if (out.resteer)
        di.br.finalPred = out.dir;
    if (di.br.finalPred != actual)
        d.mispredict(di);
    ms.atRetire(di);
    d.advanceTime(4);
}

} // namespace

TEST(MultiStage, DeferOverrideRequestsResteer)
{
    RepairConfig cfg = config(RepairKind::MultiStage, {32, 4, 4});
    Driver d(cfg);
    auto &ms = dynamic_cast<MultiStageScheme &>(d.scheme());

    // Train a trip-5 loop through both stages until confident.
    for (int rep = 0; rep < 12; ++rep)
        for (int i = 0; i < 5; ++i)
            msCycle(d, ms, pcA, /*tage says continue*/ true,
                    /*actual*/ i + 1 < 5);

    // Kill the fetch-stage copy so only BHT-Defer can catch the exit.
    // Walk to the exit point first: 4 continues.
    for (int i = 0; i < 4; ++i)
        msCycle(d, ms, pcA, true, true);
    ms.bhtTage().invalidateEntry(pcA);
    DynInst &exit_br = d.predict(pcA, /*tage*/ true, /*actual*/ false);
    EXPECT_FALSE(exit_br.br.usedLoop)
        << "fetch stage must have no override after invalidation";
    const auto out = ms.atAlloc(exit_br, d.now());
    EXPECT_TRUE(out.resteer) << "BHT-Defer must catch the exit";
    EXPECT_FALSE(out.dir);
    EXPECT_TRUE(exit_br.br.earlyResteered);
    ms.atRetire(exit_br);
}

TEST(MultiStage, RepairCopiesDeferIntoFetchTable)
{
    RepairConfig cfg = config(RepairKind::MultiStage, {32, 4, 4});
    Driver d(cfg);
    auto &ms = dynamic_cast<MultiStageScheme &>(d.scheme());

    // Seed defer with checkpointed state for pcA.
    for (int i = 0; i < 3; ++i) {
        DynInst &di = d.predict(pcA, true, true);
        ms.atAlloc(di, d.now());
    }
    DynInst &b = d.predict(pcB, true, false);
    ms.atAlloc(b, d.now());
    // Wrong-path instance pollutes both tables.
    DynInst &wp = d.predict(pcA, true, true, true);
    ms.atAlloc(wp, d.now());

    d.mispredict(b);

    bool present = false;
    const LocalState defer_state =
        ms.local().readState(pcA, &present);
    ASSERT_TRUE(present);
    EXPECT_EQ(LoopState::count(defer_state), 3)
        << "defer walked back to its pre-wrong-path state";
    const LocalState tage_state =
        ms.bhtTage().readState(pcA, &present);
    ASSERT_TRUE(present);
    EXPECT_EQ(tage_state, defer_state)
        << "repaired PCs must be copied into BHT-TAGE";
}

// ---------------------------------------------------------------------
// Cross-scheme invariants
// ---------------------------------------------------------------------

class AllSchemes : public ::testing::TestWithParam<RepairKind>
{
};

TEST_P(AllSchemes, SurvivesRandomEventSoup)
{
    RepairConfig cfg = config(GetParam(), {16, 2, 2});
    cfg.limitedM = 2;
    Driver d(cfg);
    std::uint64_t rng = 12345;
    std::deque<DynInst *> inflight;
    for (int i = 0; i < 3000; ++i) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        const Addr pc = 0x400000 + 8 * ((rng >> 13) % 24);
        const bool tdir = (rng >> 20) & 1;
        const bool actual = (rng >> 21) & 1;
        const bool wrong = ((rng >> 22) & 7) == 0;
        DynInst &di = d.predict(pc, tdir, actual, wrong);
        if (!wrong)
            inflight.push_back(&di);
        if (((rng >> 25) & 15) == 0 && !inflight.empty()) {
            DynInst *victim = inflight.back();
            d.mispredict(*victim);
            inflight.pop_back();
        }
        if (((rng >> 29) & 3) == 0 && !inflight.empty()) {
            d.retire(*inflight.front());
            inflight.pop_front();
        }
        if ((i & 63) == 0)
            d.advanceTime(1 + ((rng >> 33) & 7));
    }
    SUCCEED() << "no assertion failures across the event soup";
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AllSchemes,
    ::testing::Values(RepairKind::Perfect, RepairKind::NoRepair,
                      RepairKind::RetireUpdate,
                      RepairKind::BackwardWalk, RepairKind::Snapshot,
                      RepairKind::ForwardWalk, RepairKind::LimitedPc,
                      RepairKind::FutureFile),
    [](const auto &info) {
        return std::string(repairKindName(info.param)) == "no-repair"
                   ? std::string("NoRepair")
                   : [&] {
                         std::string n = repairKindName(info.param);
                         for (auto &c : n)
                             if (c == '-')
                                 c = '_';
                         return n;
                     }();
    });
