/**
 * @file
 * Persistent result store (src/sim/result_store): bit-exact
 * serialization round trips, fingerprint/key validation, stale-entry
 * invalidation, entry-file naming, and the cold-then-warm sweep
 * contract (the warm pass performs zero simulations yet emits CSVs
 * byte-identical to the cold pass that populated the store).
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/result_store.hh"
#include "sim/suite_cache.hh"
#include "sim/sweep.hh"
#include "workload/suite.hh"

using namespace lbp;
namespace fs = std::filesystem;

namespace {

SimConfig
schemeConfig(RepairKind kind)
{
    SimConfig cfg;
    cfg.warmupInstrs = 5000;
    cfg.measureInstrs = 8000;
    cfg.useLocal = true;
    cfg.repair.kind = kind;
    return cfg;
}

std::vector<Program>
smallSuite(unsigned n)
{
    SuiteOptions opts;
    opts.maxWorkloads = n;
    return buildSuite(opts);
}

/** Fresh empty directory under the test temp root. */
fs::path
freshDir(const char *name)
{
    const fs::path d = fs::path(::testing::TempDir()) / name;
    fs::remove_all(d);
    fs::create_directories(d);
    return d;
}

/**
 * Exact equality over every serialized RunResult field — the
 * round-trip analogue of test_determinism.cc's expectIdentical, plus
 * identity (workload/category) and storage accounting. Doubles compare
 * with EXPECT_EQ: the %a hex-float format round-trips IEEE bits.
 */
void
expectRunIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.category, b.category);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.retiredInstrs, b.stats.retiredInstrs);
    EXPECT_EQ(a.stats.retiredCond, b.stats.retiredCond);
    EXPECT_EQ(a.stats.mispredicts, b.stats.mispredicts);
    EXPECT_EQ(a.stats.earlyResteers, b.stats.earlyResteers);
    EXPECT_EQ(a.stats.wrongPathFetched, b.stats.wrongPathFetched);
    EXPECT_EQ(a.stats.btbMisses, b.stats.btbMisses);
    EXPECT_EQ(a.stats.fetchedInstrs, b.stats.fetchedInstrs);
    EXPECT_EQ(a.overrides, b.overrides);
    EXPECT_EQ(a.overridesCorrect, b.overridesCorrect);
    EXPECT_EQ(a.repairs, b.repairs);
    EXPECT_EQ(a.repairWrites, b.repairWrites);
    EXPECT_EQ(a.earlyResteers, b.earlyResteers);
    EXPECT_EQ(a.earlyResteersWrong, b.earlyResteersWrong);
    EXPECT_EQ(a.uncheckpointedMispredicts, b.uncheckpointedMispredicts);
    EXPECT_EQ(a.deniedPredictions, b.deniedPredictions);
    EXPECT_EQ(a.skippedSpecUpdates, b.skippedSpecUpdates);
    EXPECT_EQ(a.maxRepairsNeeded, b.maxRepairsNeeded);
    EXPECT_EQ(a.auditChecks, b.auditChecks);
    EXPECT_EQ(a.auditViolations, b.auditViolations);
    EXPECT_EQ(a.auditResyncs, b.auditResyncs);
    EXPECT_EQ(a.auditSkipped, b.auditSkipped);
    EXPECT_EQ(a.auditUncovered, b.auditUncovered);
    EXPECT_EQ(a.cacheAccesses, b.cacheAccesses);
    EXPECT_EQ(a.cacheMisses, b.cacheMisses);
    EXPECT_EQ(a.cachePrefetchFills, b.cachePrefetchFills);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.mpki, b.mpki);
    EXPECT_EQ(a.avgRepairsNeeded, b.avgRepairsNeeded);
    EXPECT_EQ(a.avgWalkLength, b.avgWalkLength);
    EXPECT_EQ(a.avgRepairWrites, b.avgRepairWrites);
    EXPECT_EQ(a.avgRepairCycles, b.avgRepairCycles);
    EXPECT_EQ(a.tageKB, b.tageKB);
    EXPECT_EQ(a.localKB, b.localKB);
    EXPECT_EQ(a.repairKB, b.repairKB);
}

} // namespace

TEST(ResultStore, SerializationRoundTripsEveryFieldExactly)
{
    const std::vector<Program> suite = smallSuite(2);
    const SimConfig cfg = schemeConfig(RepairKind::ForwardWalk);
    const SuiteResult res = runSuite(suite, cfg, 1);
    const std::string sk = suiteKey(suite);
    const std::string ck = configKey(cfg);

    std::stringstream ss;
    serializeSuiteResult(ss, buildFingerprint(), sk, ck, res);
    const auto back = deserializeSuiteResult(ss, buildFingerprint(),
                                             sk, ck);
    ASSERT_TRUE(back);
    ASSERT_EQ(back->runs.size(), res.runs.size());
    for (std::size_t i = 0; i < res.runs.size(); ++i) {
        SCOPED_TRACE(res.runs[i].workload);
        expectRunIdentical(res.runs[i], back->runs[i]);
        // Observability capture is deliberately not persisted.
        EXPECT_FALSE(back->runs[i].obs);
    }
    // A loaded result reports as a hit with no simulation cost.
    EXPECT_TRUE(back->telemetry.memoHit);
    EXPECT_EQ(back->telemetry.simInstrs, 0u);
}

TEST(ResultStore, MismatchedKeysOrFingerprintRejectEntry)
{
    const std::vector<Program> suite = smallSuite(1);
    const SimConfig cfg = schemeConfig(RepairKind::Snapshot);
    const SuiteResult res = runSuite(suite, cfg, 1);
    const std::string sk = suiteKey(suite);
    const std::string ck = configKey(cfg);

    const auto tryLoad = [&](const std::string &fp,
                             const std::string &suite_key,
                             const std::string &config_key) {
        std::stringstream ss;
        serializeSuiteResult(ss, buildFingerprint(), sk, ck, res);
        return deserializeSuiteResult(ss, fp, suite_key, config_key);
    };

    EXPECT_TRUE(tryLoad(buildFingerprint(), sk, ck));
    EXPECT_FALSE(tryLoad("doctored-fingerprint", sk, ck));
    EXPECT_FALSE(tryLoad(buildFingerprint(), sk + "x", ck));
    EXPECT_FALSE(tryLoad(buildFingerprint(), sk, ck + "x"));

    // A truncated entry (missing terminator) must also be rejected.
    std::stringstream ss;
    serializeSuiteResult(ss, buildFingerprint(), sk, ck, res);
    std::string text = ss.str();
    text.resize(text.size() / 2);
    std::stringstream cut(text);
    EXPECT_FALSE(deserializeSuiteResult(cut, buildFingerprint(), sk, ck));
}

TEST(ResultStore, SaveLoadHitMissAndStaleCounters)
{
    const fs::path dir = freshDir("lbp-store-counters");
    const std::vector<Program> suite = smallSuite(1);
    const SimConfig cfg = schemeConfig(RepairKind::ForwardWalk);
    const SuiteResult res = runSuite(suite, cfg, 1);
    const std::string sk = suiteKey(suite);
    const std::string ck = configKey(cfg);

    ResultStore store(dir.string());
    EXPECT_FALSE(store.load(sk, ck));  // cold miss
    EXPECT_EQ(store.stats().misses, 1u);

    ASSERT_TRUE(store.save(sk, ck, res));
    EXPECT_EQ(store.stats().writes, 1u);
    const auto hit = store.load(sk, ck);
    ASSERT_TRUE(hit);
    EXPECT_EQ(store.stats().hits, 1u);
    expectRunIdentical(res.runs[0], hit->runs[0]);

    // Doctor the on-disk entry with a foreign fingerprint: the next
    // load must count it stale, delete the file, and report a miss.
    const fs::path entry =
        dir / ResultStore::entryFileName(buildFingerprint(), sk, ck);
    ASSERT_TRUE(fs::exists(entry));
    {
        std::ofstream f(entry);
        serializeSuiteResult(f, "stale-build-fingerprint", sk, ck, res);
    }
    EXPECT_FALSE(store.load(sk, ck));
    EXPECT_EQ(store.stats().stale, 1u);
    EXPECT_EQ(store.stats().misses, 2u);
    EXPECT_FALSE(fs::exists(entry)) << "stale entry not removed";
}

TEST(ResultStore, DistinctKeysGetDistinctEntryFiles)
{
    const std::string fp = buildFingerprint();
    const std::string f1 = ResultStore::entryFileName(fp, "s1", "c1");
    EXPECT_NE(f1, ResultStore::entryFileName(fp, "s1", "c2"));
    EXPECT_NE(f1, ResultStore::entryFileName(fp, "s2", "c1"));
    EXPECT_NE(f1, ResultStore::entryFileName("other", "s1", "c1"));
    // Stable across calls (cross-process addressing depends on it).
    EXPECT_EQ(f1, ResultStore::entryFileName(fp, "s1", "c1"));
}

// The headline contract: a warm-store sweep in a "fresh process"
// (modeled by a fresh SuiteCache) performs zero simulations and emits
// a CSV byte-identical to the cold pass that populated the store.
TEST(ResultStore, ColdThenWarmSweepIsByteIdenticalWithZeroSims)
{
    const fs::path dir = freshDir("lbp-store-sweep");
    const std::vector<Program> suite = smallSuite(3);
    const std::vector<SweepConfig> configs = {
        {"forward-walk", schemeConfig(RepairKind::ForwardWalk)},
        {"snapshot", schemeConfig(RepairKind::Snapshot)},
    };
    const std::size_t cells = configs.size() * suite.size();
    ResultStore store(dir.string());

    SuiteCache coldCache;
    SweepOptions opts;
    opts.jobs = 1;
    opts.store = &store;
    opts.cache = &coldCache;
    const SweepResult cold = runSweep(suite, configs, opts);
    EXPECT_EQ(cold.stats.cellsTotal, cells);
    EXPECT_EQ(cold.stats.cellsSimulated, cells);
    EXPECT_EQ(cold.stats.cellsStoreHit, 0u);
    EXPECT_EQ(cold.stats.storeWrites, configs.size());
    EXPECT_EQ(cold.stats.storeMisses, configs.size());

    SuiteCache warmCache;
    opts.cache = &warmCache;
    const SweepResult warm = runSweep(suite, configs, opts);
    EXPECT_EQ(warm.stats.cellsSimulated, 0u) << "warm pass simulated";
    EXPECT_EQ(warm.stats.cellsStoreHit, cells);
    EXPECT_EQ(warm.stats.storeHits, configs.size());
    EXPECT_EQ(warm.stats.storeWrites, 0u);
    EXPECT_EQ(warm.stats.simInstrs, 0u);

    std::ostringstream coldCsv, warmCsv;
    writeSweepCsv(coldCsv, cold, configs);
    writeSweepCsv(warmCsv, warm, configs);
    EXPECT_FALSE(coldCsv.str().empty());
    EXPECT_EQ(coldCsv.str(), warmCsv.str())
        << "store round trip is not byte-exact";

    // Third pass in the same "process": served by the cache, store
    // untouched.
    const ResultStore::StoreStats before = store.stats();
    const SweepResult cached = runSweep(suite, configs, opts);
    EXPECT_EQ(cached.stats.cellsCacheHit, cells);
    EXPECT_EQ(store.stats().hits, before.hits);
    EXPECT_EQ(store.stats().misses, before.misses);
}
