/**
 * @file
 * Tests for the CBPw-Loop predictor (BHT + PT) and the generic
 * two-level local predictor: state packing, the prediction decision
 * table, confidence dynamics, repair-bit mechanics, snapshot/restore.
 */

#include <gtest/gtest.h>

#include "bpu/local_two_level.hh"
#include "bpu/loop_predictor.hh"

using namespace lbp;

// ---------------------------------------------------------------------
// LoopState packing & state machine
// ---------------------------------------------------------------------

TEST(LoopState, PackUnpackRoundTrip)
{
    const LocalState s = LoopState::make(1234, true);
    EXPECT_EQ(LoopState::count(s), 1234);
    EXPECT_TRUE(LoopState::dir(s));
    EXPECT_TRUE(LoopState::known(s));
    const LocalState u = LoopState::make(7, false, false);
    EXPECT_FALSE(LoopState::known(u));
    EXPECT_FALSE(LoopState::dir(u));
}

TEST(LoopState, AdvanceCountsRuns)
{
    LocalState s = 0;  // unknown
    s = LoopState::advance(s, true);
    EXPECT_EQ(LoopState::count(s), 1);
    EXPECT_TRUE(LoopState::dir(s));
    s = LoopState::advance(s, true);
    s = LoopState::advance(s, true);
    EXPECT_EQ(LoopState::count(s), 3);
    s = LoopState::advance(s, false);  // flip resets the run
    EXPECT_EQ(LoopState::count(s), 1);
    EXPECT_FALSE(LoopState::dir(s));
}

TEST(LoopState, AdvanceSaturatesAtCounterMax)
{
    LocalState s = LoopState::make(LoopState::counterMask, true);
    s = LoopState::advance(s, true);
    EXPECT_EQ(LoopState::count(s), LoopState::counterMask);
}

// ---------------------------------------------------------------------
// statePredict decision table
// ---------------------------------------------------------------------

TEST(LoopPredict, MidRunPredictsContinue)
{
    LoopPatternTable::Entry e{9, 7, true};  // trip 9, sense taken
    bool valid = false;
    EXPECT_TRUE(LoopPredictor::statePredict(LoopState::make(4, true), e,
                                            &valid));
    EXPECT_TRUE(valid);
}

TEST(LoopPredict, ExitAtExactTrip)
{
    LoopPatternTable::Entry e{9, 7, true};
    bool valid = false;
    EXPECT_FALSE(LoopPredictor::statePredict(LoopState::make(9, true),
                                             e, &valid));
    EXPECT_TRUE(valid);
}

TEST(LoopPredict, OvercountPredictsContinueNotExit)
{
    // Polluted counter past the trip: the equality rule keeps
    // predicting the dominant direction instead of cascading early
    // exits (section 3.3 observation d).
    LoopPatternTable::Entry e{9, 7, true};
    bool valid = false;
    EXPECT_TRUE(LoopPredictor::statePredict(LoopState::make(12, true),
                                            e, &valid));
    EXPECT_TRUE(valid);
}

TEST(LoopPredict, AfterFlipPredictsReturnToDominant)
{
    LoopPatternTable::Entry e{9, 7, true};
    bool valid = false;
    EXPECT_TRUE(LoopPredictor::statePredict(LoopState::make(1, false),
                                            e, &valid));
    EXPECT_TRUE(valid);
}

TEST(LoopPredict, LongNonDominantRunIsNotPredictable)
{
    LoopPatternTable::Entry e{9, 7, true};
    bool valid = true;
    LoopPredictor::statePredict(LoopState::make(3, false), e, &valid);
    EXPECT_FALSE(valid);
}

TEST(LoopPredict, UnknownStateIsNotPredictable)
{
    LoopPatternTable::Entry e{9, 7, true};
    bool valid = true;
    LoopPredictor::statePredict(LoopState::make(0, false, false), e,
                                &valid);
    EXPECT_FALSE(valid);
}

// ---------------------------------------------------------------------
// End-to-end functional behaviour
// ---------------------------------------------------------------------

namespace {

/**
 * Feed a perfect (always-correct speculative update) stream for a loop
 * with the given trip count and return the number of wrong computed
 * predictions over the last @p measure occurrences.
 */
unsigned
driveLoop(LoopPredictor &lp, Addr pc, unsigned trip, unsigned reps,
          unsigned measure_from, unsigned *overrides = nullptr)
{
    unsigned wrong = 0;
    unsigned n = 0;
    for (unsigned r = 0; r < reps; ++r) {
        for (unsigned i = 0; i < trip; ++i) {
            const bool actual = i + 1 < trip;
            const LocalPred pred = lp.predict(pc);
            if (n >= measure_from) {
                if (pred.valid) {
                    if (overrides)
                        ++*overrides;
                    if (pred.dir != actual)
                        ++wrong;
                }
            }
            lp.specUpdate(pc, actual);
            lp.retireTrain(pc, actual);
            if (pred.predictable)
                lp.predictionFeedback(pc, pred.dir, actual);
            ++n;
        }
    }
    return wrong;
}

} // namespace

class LoopTrips : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(LoopTrips, ConstantLoopBecomesPerfect)
{
    const unsigned trip = GetParam();
    LoopPredictor lp;
    unsigned overrides = 0;
    const unsigned wrong =
        driveLoop(lp, 0x400100, trip, 12, trip * 6, &overrides);
    EXPECT_EQ(wrong, 0u) << "trip " << trip;
    EXPECT_GT(overrides, 0u) << "must become confident";
}

INSTANTIATE_TEST_SUITE_P(Trips, LoopTrips,
                         ::testing::Values(3u, 5u, 9u, 24u, 60u, 200u));

TEST(LoopPredictor, ForwardExitLearned)
{
    // NNN..T shape: dominant not-taken.
    LoopPredictor lp;
    const Addr pc = 0x400200;
    unsigned wrong = 0, total = 0;
    for (unsigned r = 0; r < 15; ++r) {
        for (unsigned i = 0; i < 6; ++i) {
            const bool actual = i + 1 == 6;  // taken only at the end
            const LocalPred pred = lp.predict(pc);
            if (r >= 8 && pred.valid) {
                ++total;
                wrong += pred.dir != actual;
            }
            lp.specUpdate(pc, actual);
            lp.retireTrain(pc, actual);
            if (pred.predictable)
                lp.predictionFeedback(pc, pred.dir, actual);
        }
    }
    EXPECT_EQ(wrong, 0u);
    EXPECT_GT(total, 0u);
}

TEST(LoopPredictor, WrongPredictionDropsConfidence)
{
    LoopPredictor lp;
    const Addr pc = 0x400300;
    driveLoop(lp, pc, 8, 10, 1 << 30);  // train to confidence
    ASSERT_TRUE(lp.predict(pc).valid);
    // Wrong used predictions (simulated feedback) must gate overrides;
    // each costs ptConfPenalty (2) of the 3-bit confidence.
    lp.predictionFeedback(pc, true, false);
    lp.predictionFeedback(pc, true, false);
    lp.predictionFeedback(pc, true, false);
    EXPECT_FALSE(lp.predict(pc).valid)
        << "confidence must fall below threshold";
}

TEST(LoopPredictor, TripChangeRelearned)
{
    LoopPredictor lp;
    const Addr pc = 0x400400;
    driveLoop(lp, pc, 7, 10, 1 << 30);
    // Behaviour changes to trip 11; after re-training the predictor
    // must be wrong-free again.
    const unsigned wrong = driveLoop(lp, pc, 11, 14, 11 * 8);
    EXPECT_EQ(wrong, 0u);
}

// ---------------------------------------------------------------------
// Repair-facing state access
// ---------------------------------------------------------------------

TEST(LoopPredictor, ReadWriteStateRoundTrip)
{
    LoopPredictor lp;
    lp.specUpdate(0x400500, true);
    bool present = false;
    const LocalState s = lp.readState(0x400500, &present);
    EXPECT_TRUE(present);
    EXPECT_EQ(LoopState::count(s), 1);

    lp.writeState(0x400500, LoopState::make(5, true));
    const LocalState s2 = lp.readState(0x400500, &present);
    EXPECT_EQ(LoopState::count(s2), 5);

    // Writes to absent PCs are dropped, never allocated.
    lp.writeState(0x999900, LoopState::make(3, false));
    lp.readState(0x999900, &present);
    EXPECT_FALSE(present);
}

TEST(LoopPredictor, RepairBitsTestAndClear)
{
    LoopPredictor lp;
    lp.specUpdate(0x400600, true);
    lp.specUpdate(0x400604, false);
    lp.setAllRepairBits();
    EXPECT_TRUE(lp.testClearRepairBit(0x400600));
    EXPECT_FALSE(lp.testClearRepairBit(0x400600))
        << "second touch must see a cleared bit";
    EXPECT_TRUE(lp.testClearRepairBit(0x400604));
    EXPECT_FALSE(lp.testClearRepairBit(0xdead00))
        << "absent PCs report false";
}

TEST(LoopPredictor, SnapshotRestoreExact)
{
    LoopPredictor lp;
    for (unsigned i = 0; i < 50; ++i)
        lp.specUpdate(0x400000 + 8 * (i % 10), i % 7 != 0);
    const auto snap = lp.snapshotBht();

    for (unsigned i = 0; i < 40; ++i)
        lp.specUpdate(0x500000 + 8 * i, true);  // clobber
    lp.restoreBht(snap);

    bool present = false;
    for (unsigned i = 0; i < 10; ++i) {
        const Addr pc = 0x400000 + 8 * i;
        lp.readState(pc, &present);
        EXPECT_TRUE(present) << "entry " << i << " must be restored";
    }
    EXPECT_EQ(lp.snapshotBht(), snap);
}

TEST(LoopPredictor, InvalidateRemovesEntry)
{
    LoopPredictor lp;
    lp.specUpdate(0x400700, true);
    bool present = false;
    lp.readState(0x400700, &present);
    ASSERT_TRUE(present);
    lp.invalidateEntry(0x400700);
    lp.readState(0x400700, &present);
    EXPECT_FALSE(present);
}

TEST(LoopPredictor, BhtEvictsLruWithinSet)
{
    LoopConfig cfg;
    cfg.bhtEntries = 8;  // 1 set x 8 ways
    cfg.bhtWays = 8;
    cfg.ptEntries = 8;
    cfg.ptWays = 4;
    LoopPredictor lp(cfg);
    for (unsigned i = 0; i < 9; ++i)
        lp.specUpdate(0x400000 + 4 * i, true);
    bool present = true;
    lp.readState(0x400000, &present);
    EXPECT_FALSE(present) << "oldest entry must be evicted";
    lp.readState(0x400000 + 4 * 8, &present);
    EXPECT_TRUE(present);
}

TEST(LoopPredictor, StorageMatchesTable2)
{
    EXPECT_NEAR(LoopPredictor(LoopConfig::entries256()).storageKB(),
                0.75 + 1.5, 0.8);
    const double kb128 =
        LoopPredictor(LoopConfig::entries128()).storageKB();
    const double kb64 =
        LoopPredictor(LoopConfig::entries64()).storageKB();
    EXPECT_GT(kb128, kb64);
    EXPECT_NEAR(kb128 / kb64, 2.0, 0.1);
}

TEST(LoopPredictor, SharedPtIsShared)
{
    LoopConfig half = LoopConfig::entries64();
    LoopPredictor defer(half);
    LoopPredictor tage_side(half, &defer.pt());

    // Train through the defer side; the tage side must see confidence.
    const Addr pc = 0x400800;
    for (unsigned r = 0; r < 10; ++r) {
        for (unsigned i = 0; i < 6; ++i) {
            const bool actual = i + 1 < 6;
            const LocalPred pred = defer.predict(pc);
            defer.specUpdate(pc, actual);
            tage_side.specUpdate(pc, actual);
            defer.retireTrain(pc, actual);
            if (pred.predictable)
                defer.predictionFeedback(pc, pred.dir, actual);
        }
    }
    EXPECT_TRUE(tage_side.predict(pc).valid)
        << "shared PT confidence must serve both BHTs";
}

// ---------------------------------------------------------------------
// Generic two-level predictor
// ---------------------------------------------------------------------

TEST(TwoLevel, LearnsShortPattern)
{
    LocalTwoLevelPredictor lp;
    const Addr pc = 0x400900;
    const bool pattern[] = {true, true, false};
    unsigned wrong = 0, valid = 0;
    for (unsigned i = 0; i < 600; ++i) {
        const bool actual = pattern[i % 3];
        const LocalPred pred = lp.predict(pc);
        if (i > 300 && pred.valid) {
            ++valid;
            wrong += pred.dir != actual;
        }
        lp.specUpdate(pc, actual);
        lp.retireTrain(pc, actual);
    }
    EXPECT_GT(valid, 200u);
    EXPECT_EQ(wrong, 0u);
}

TEST(TwoLevel, StateIsShiftRegister)
{
    LocalTwoLevelPredictor lp;
    LocalState s = 0;
    s = lp.advanceState(s, true);
    s = lp.advanceState(s, false);
    s = lp.advanceState(s, true);
    EXPECT_EQ(s & 0x7u, 0b101u);
    EXPECT_TRUE((s & LocalTwoLevelPredictor::knownBit) != 0);
}

TEST(TwoLevel, RepairInterfaceParity)
{
    // The repair layer's contract must hold identically.
    LocalTwoLevelPredictor lp;
    lp.specUpdate(0x400a00, true);
    lp.setAllRepairBits();
    EXPECT_TRUE(lp.testClearRepairBit(0x400a00));
    EXPECT_FALSE(lp.testClearRepairBit(0x400a00));
    const auto snap = lp.snapshotBht();
    lp.specUpdate(0x400a00, false);
    lp.restoreBht(snap);
    EXPECT_EQ(lp.snapshotBht(), snap);
}
