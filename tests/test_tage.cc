/**
 * @file
 * TAGE unit tests: learning on canonical branch populations, history
 * checkpoint/restore semantics, configuration storage accounting.
 */

#include <gtest/gtest.h>

#include "bpu/tage.hh"
#include "common/random.hh"

using namespace lbp;

namespace {

/** Drive one predict/update step for a branch. */
bool
step(TagePredictor &tage, Addr pc, bool actual)
{
    TagePredStorage p;
    const bool pred = tage.predict(pc, p);
    tage.specUpdateHist(pc, actual);  // perfect front-end: push actual
    tage.train(pc, actual, p);
    return pred == actual;
}

/** Accuracy of the last @p measure steps of @p gen after warm-up. */
template <typename Gen>
double
accuracy(TagePredictor &tage, unsigned warmup, unsigned measure,
         Gen &&gen)
{
    for (unsigned i = 0; i < warmup; ++i)
        gen(true);
    unsigned correct = 0;
    for (unsigned i = 0; i < measure; ++i)
        correct += gen(false) ? 1 : 0;
    return static_cast<double>(correct) / measure;
}

} // namespace

TEST(Tage, AlwaysTakenConverges)
{
    TagePredictor tage;
    unsigned correct = 0;
    for (unsigned i = 0; i < 1000; ++i)
        correct += step(tage, 0x400100, true) ? 1 : 0;
    EXPECT_GT(correct, 990u);
}

TEST(Tage, AlternatingPatternConverges)
{
    TagePredictor tage;
    bool dir = false;
    unsigned correct = 0;
    for (unsigned i = 0; i < 4000; ++i) {
        dir = !dir;
        const bool ok = step(tage, 0x400200, dir);
        if (i >= 2000)
            correct += ok ? 1 : 0;
    }
    EXPECT_GT(correct, 1960u) << "TNTN pattern must be near-perfect";
}

TEST(Tage, ShortPeriodicPatternConverges)
{
    // Period-3 TTN pattern on one branch, interleaved with an
    // always-taken branch (as inside a loop body).
    TagePredictor tage;
    unsigned i = 0;
    unsigned correct = 0, total = 0;
    for (unsigned n = 0; n < 6000; ++n) {
        step(tage, 0x400300, true);  // loop branch
        const bool dir = (i % 3) != 2;
        ++i;
        const bool ok = step(tage, 0x400400, dir);
        if (n >= 3000) {
            correct += ok ? 1 : 0;
            ++total;
        }
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.95)
        << "period-3 pattern in stable context must converge";
}

TEST(Tage, GlobalCorrelationLearned)
{
    // Branch B's outcome equals branch A's most recent outcome.
    TagePredictor tage;
    Xoshiro256ss rng(7);
    bool last_a = false;
    unsigned correct = 0, total = 0;
    for (unsigned n = 0; n < 8000; ++n) {
        last_a = rng.chance(0.5);
        step(tage, 0x400500, last_a);
        const bool ok = step(tage, 0x400600, last_a);
        if (n >= 4000) {
            correct += ok ? 1 : 0;
            ++total;
        }
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.93);
}

TEST(Tage, LongLoopExitNeedsLongHistory)
{
    // Constant-trip loop of period 12: exits are learnable within the
    // history lengths of the 7.1KB config.
    TagePredictor tage;
    unsigned correct = 0, total = 0;
    unsigned iter = 0;
    for (unsigned n = 0; n < 20000; ++n) {
        const bool dir = ++iter < 12;
        if (!dir)
            iter = 0;
        const bool ok = step(tage, 0x400700, dir);
        if (n >= 10000) {
            correct += ok ? 1 : 0;
            ++total;
        }
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.97);
}

TEST(Tage, CheckpointRestoreRoundTrip)
{
    TagePredictor tage;
    Xoshiro256ss rng(13);
    for (unsigned i = 0; i < 500; ++i)
        step(tage, 0x400000 + 4 * (i % 7), rng.chance(0.6));

    TageCheckpointStorage ckpt;
    tage.checkpoint(ckpt);
    TagePredStorage before;
    tage.predict(0x400abc, before);

    // Wander down a "wrong path" of speculative pushes.
    for (unsigned i = 0; i < 40; ++i)
        tage.specUpdateHist(0x400f00 + 4 * i, (i & 3) == 0);

    tage.restore(ckpt);
    TagePredStorage after;
    tage.predict(0x400abc, after);

    EXPECT_EQ(before.pred, after.pred);
    EXPECT_EQ(before.provider, after.provider);
    EXPECT_EQ(before.buf, after.buf);  // all per-table indices + tags
}

TEST(Tage, ConfigStorageBudgets)
{
    EXPECT_NEAR(TageConfig::kb7().storageKB(), 7.1, 0.8);
    EXPECT_NEAR(TageConfig::kb9().storageKB(), 9.0, 1.0);
    EXPECT_NEAR(TageConfig::kb57().storageKB(), 57.0, 6.0);
    EXPECT_GT(TageConfig::kb9().storageKB(),
              TageConfig::kb7().storageKB());
    EXPECT_GT(TageConfig::kb57().storageKB(),
              TageConfig::kb9().storageKB());
}

TEST(Tage, BiasedRandomTracksBias)
{
    // A 90/10 branch should be predicted taken nearly always, giving
    // ~90% accuracy (the entropy floor).
    TagePredictor tage;
    Xoshiro256ss rng(99);
    unsigned correct = 0, total = 0;
    for (unsigned n = 0; n < 10000; ++n) {
        const bool dir = rng.chance(0.9);
        const bool ok = step(tage, 0x400900, dir);
        if (n >= 2000) {
            correct += ok ? 1 : 0;
            ++total;
        }
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.85);
}
