/**
 * @file
 * Golden-stats fixture: a small reference suite's per-run CoreStats,
 * scheme counters and derived IPC/MPKI values, captured once from the
 * seed simulator and committed as tests/golden_stats_fixture.hh.
 *
 * Every data-layout or scheduling refactor of the hot path (branch
 * record pool, ring-buffer queues, TAGE arena, idle-cycle fast-forward)
 * must reproduce these numbers *exactly* — the simulator's contract is
 * bit-identical results, not statistically-similar ones. If a change is
 * intentionally behavioral, regenerate the fixture and say so in the
 * commit:
 *
 *   REPRO_GOLDEN_REGEN=1 ./build/tests/lbp_tests \
 *       --gtest_filter='GoldenStats.MatchesCommittedFixture' \
 *       > tests/golden_stats_fixture.hh
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dyn_inst.hh"
#include "sim/runner.hh"
#include "workload/suite.hh"

using namespace lbp;

namespace {

/** One pinned measurement row. Audit counters are compared only in
 *  LBP_AUDIT builds (they are all-zero otherwise). */
struct GoldenRun
{
    const char *config;
    const char *workload;
    std::uint64_t cycles;
    std::uint64_t retiredInstrs;
    std::uint64_t retiredCond;
    std::uint64_t mispredicts;
    std::uint64_t earlyResteers;
    std::uint64_t wrongPathFetched;
    std::uint64_t btbMisses;
    std::uint64_t fetchedInstrs;
    std::uint64_t overrides;
    std::uint64_t overridesCorrect;
    std::uint64_t repairs;
    std::uint64_t repairWrites;
    std::uint64_t uncheckpointed;
    std::uint64_t deniedPredictions;
    std::uint64_t skippedSpecUpdates;
    std::uint64_t cacheAccesses;
    std::uint64_t cacheMisses;
    std::uint64_t auditChecks;
    std::uint64_t auditViolations;
};

#include "golden_stats_fixture.hh"

struct GoldenConfig
{
    const char *name;
    SimConfig cfg;
};

std::vector<GoldenConfig>
goldenConfigs()
{
    const auto scheme = [](RepairKind kind) {
        SimConfig cfg;
        cfg.warmupInstrs = 20000;
        cfg.measureInstrs = 30000;
        cfg.useLocal = true;
        cfg.repair.kind = kind;
        return cfg;
    };
    SimConfig base;
    base.warmupInstrs = 20000;
    base.measureInstrs = 30000;

    SimConfig fw_merge = scheme(RepairKind::ForwardWalk);
    fw_merge.repair.coalesce = true;

    return {
        {"baseline", base},
        {"perfect", scheme(RepairKind::Perfect)},
        {"no-repair", scheme(RepairKind::NoRepair)},
        {"retire-update", scheme(RepairKind::RetireUpdate)},
        {"backward-walk", scheme(RepairKind::BackwardWalk)},
        {"snapshot", scheme(RepairKind::Snapshot)},
        {"forward-walk", scheme(RepairKind::ForwardWalk)},
        {"forward-walk+merge", fw_merge},
        {"limited-pc", scheme(RepairKind::LimitedPc)},
        {"multi-stage", scheme(RepairKind::MultiStage)},
        {"future-file", scheme(RepairKind::FutureFile)},
    };
}

std::vector<Program>
goldenSuite()
{
    SuiteOptions opts;
    opts.maxWorkloads = 6;
    return buildSuite(opts);
}

void
printRow(const GoldenConfig &gc, const RunResult &r)
{
    std::printf("    {\"%s\", \"%s\",\n"
                "     %lluu, %lluu, %lluu, %lluu, %lluu, %lluu, %lluu, "
                "%lluu,\n"
                "     %lluu, %lluu, %lluu, %lluu, %lluu, %lluu, %lluu, "
                "%lluu, %lluu,\n"
                "     %lluu, %lluu},\n",
                gc.name, r.workload.c_str(),
                static_cast<unsigned long long>(r.stats.cycles),
                static_cast<unsigned long long>(r.stats.retiredInstrs),
                static_cast<unsigned long long>(r.stats.retiredCond),
                static_cast<unsigned long long>(r.stats.mispredicts),
                static_cast<unsigned long long>(r.stats.earlyResteers),
                static_cast<unsigned long long>(
                    r.stats.wrongPathFetched),
                static_cast<unsigned long long>(r.stats.btbMisses),
                static_cast<unsigned long long>(r.stats.fetchedInstrs),
                static_cast<unsigned long long>(r.overrides),
                static_cast<unsigned long long>(r.overridesCorrect),
                static_cast<unsigned long long>(r.repairs),
                static_cast<unsigned long long>(r.repairWrites),
                static_cast<unsigned long long>(
                    r.uncheckpointedMispredicts),
                static_cast<unsigned long long>(r.deniedPredictions),
                static_cast<unsigned long long>(r.skippedSpecUpdates),
                static_cast<unsigned long long>(r.cacheAccesses),
                static_cast<unsigned long long>(r.cacheMisses),
                static_cast<unsigned long long>(r.auditChecks),
                static_cast<unsigned long long>(r.auditViolations));
}

} // namespace

TEST(GoldenStats, MatchesCommittedFixture)
{
    const bool regen = std::getenv("REPRO_GOLDEN_REGEN") != nullptr;
    const std::vector<Program> suite = goldenSuite();
    const std::vector<GoldenConfig> configs = goldenConfigs();

    if (regen) {
        std::printf(
            "// Generated by REPRO_GOLDEN_REGEN=1 lbp_tests\n"
            "// --gtest_filter=GoldenStats.MatchesCommittedFixture\n"
            "// (see test_golden_stats.cc). Do not edit by hand.\n"
            "\n"
            "constexpr GoldenRun goldenRuns[] = {\n");
        for (const GoldenConfig &gc : configs)
            for (const Program &prog : suite)
                printRow(gc, runOne(prog, gc.cfg));
        std::printf("};\n");
        GTEST_SKIP() << "fixture regenerated, not compared";
    }

    std::size_t row = 0;
    const std::size_t nrows = std::size(goldenRuns);
    for (const GoldenConfig &gc : configs) {
        for (const Program &prog : suite) {
            ASSERT_LT(row, nrows) << "fixture shorter than the suite";
            const GoldenRun &g = goldenRuns[row++];
            ASSERT_STREQ(g.config, gc.name);
            ASSERT_EQ(g.workload, prog.name);
            SCOPED_TRACE(std::string(gc.name) + " / " + prog.name);

            const RunResult r = runOne(prog, gc.cfg);
            EXPECT_EQ(r.stats.cycles, g.cycles);
            EXPECT_EQ(r.stats.retiredInstrs, g.retiredInstrs);
            EXPECT_EQ(r.stats.retiredCond, g.retiredCond);
            EXPECT_EQ(r.stats.mispredicts, g.mispredicts);
            EXPECT_EQ(r.stats.earlyResteers, g.earlyResteers);
            EXPECT_EQ(r.stats.wrongPathFetched, g.wrongPathFetched);
            EXPECT_EQ(r.stats.btbMisses, g.btbMisses);
            EXPECT_EQ(r.stats.fetchedInstrs, g.fetchedInstrs);
            EXPECT_EQ(r.overrides, g.overrides);
            EXPECT_EQ(r.overridesCorrect, g.overridesCorrect);
            EXPECT_EQ(r.repairs, g.repairs);
            EXPECT_EQ(r.repairWrites, g.repairWrites);
            EXPECT_EQ(r.uncheckpointedMispredicts, g.uncheckpointed);
            EXPECT_EQ(r.deniedPredictions, g.deniedPredictions);
            EXPECT_EQ(r.skippedSpecUpdates, g.skippedSpecUpdates);
            EXPECT_EQ(r.cacheAccesses, g.cacheAccesses);
            EXPECT_EQ(r.cacheMisses, g.cacheMisses);
#ifdef LBP_AUDIT
            EXPECT_EQ(r.auditChecks, g.auditChecks);
            EXPECT_EQ(r.auditViolations, g.auditViolations);
#endif
            // Derived values follow the counters exactly (same
            // arithmetic, same order).
            EXPECT_EQ(r.ipc, r.stats.ipc());
            EXPECT_EQ(r.mpki, r.stats.mpki());
        }
    }
    EXPECT_EQ(row, nrows) << "fixture has stale extra rows";
}

// The tentpole data-layout contract: the per-branch TAGE baggage
// (TagePred tables + TageCheckpoint) lives in the branch-record pool,
// not in the 8K-entry DynInst ring, so one ring entry spans at most two
// cache lines (the seed layout was 304 bytes).
TEST(GoldenStats, DynInstStaysWithinTwoCacheLines)
{
    EXPECT_LE(sizeof(DynInst), 128u);
}
