#!/usr/bin/env python3
"""Validate a Prometheus text-exposition scrape (version 0.0.4).

The resident daemon renders its scrape from the descriptor tables in
src/obs/metrics.cc (docs/METRICS.md); this checker holds any scrape —
the lbp-serve-v1 `metrics` frame payload or the --metrics-port HTTP
body — to the format's structural rules:

  - every sample line parses as `name value` or `name{labels} value`
    with a legal metric name and a finite numeric value;
  - every sample family is announced by `# HELP` and `# TYPE` lines
    (HELP first), with a TYPE from the exposition vocabulary;
  - no duplicate series: a (name, label-set) pair appears once;
  - every `histogram` family has cumulative, monotonically
    non-decreasing `_bucket{le=...}` series ending in `+Inf`, plus
    `_sum` and `_count`, with the `+Inf` bucket equal to `_count`.

Usage:
    check_exposition.py <scrape.txt>      validate a file ("-" = stdin)
    check_exposition.py --self-test       prove each rule fires

Exit 0 when the scrape is clean, 1 on findings, 2 on usage errors.
"""

import re
import sys

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>\S+)$")
LABEL_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
VALID_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}
HIST_SUFFIXES = ("_bucket", "_sum", "_count")


def family_of(name, types):
    """Map a sample name to its announced family: histogram samples
    carry _bucket/_sum/_count suffixes on the family name."""
    for suffix in HIST_SUFFIXES:
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return name


def check_exposition(text):
    """Return a list of findings (strings); empty means clean."""
    findings = []
    helps = {}      # family -> line no of # HELP
    types = {}      # family -> declared type
    series = set()  # (name, frozenset(labels)) seen
    hist = {}       # family -> {"buckets": [(le, v)], "sum": v, "count": v}

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            m = re.match(r"# (HELP|TYPE) (\S+)(?: (.*))?$", line)
            if not m:
                # Free-form comments are legal; only HELP/TYPE are
                # structural.
                continue
            kind, fam, rest = m.group(1), m.group(2), m.group(3) or ""
            if not NAME_RE.match(fam):
                findings.append(f"line {lineno}: bad metric name {fam!r}")
                continue
            if kind == "HELP":
                if fam in helps:
                    findings.append(
                        f"line {lineno}: duplicate HELP for {fam}")
                helps[fam] = lineno
            else:
                if fam not in helps:
                    findings.append(
                        f"line {lineno}: TYPE {fam} before its HELP")
                if fam in types:
                    findings.append(
                        f"line {lineno}: duplicate TYPE for {fam}")
                if rest not in VALID_TYPES:
                    findings.append(
                        f"line {lineno}: TYPE {fam} has invalid type "
                        f"{rest!r}")
                types[fam] = rest
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            findings.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name, labels_text = m.group("name"), m.group("labels") or ""
        try:
            value = float(m.group("value"))
        except ValueError:
            findings.append(
                f"line {lineno}: non-numeric value for {name}: "
                f"{m.group('value')!r}")
            continue
        if value != value:
            findings.append(f"line {lineno}: NaN value for {name}")

        labels = tuple(sorted(LABEL_RE.findall(labels_text)))
        if (name, labels) in series:
            findings.append(
                f"line {lineno}: duplicate series {name}"
                f"{labels_text or ''}")
        series.add((name, labels))

        fam = family_of(name, types)
        if fam not in types:
            findings.append(
                f"line {lineno}: sample {name} has no # TYPE for {fam}")
        if fam not in helps:
            findings.append(
                f"line {lineno}: sample {name} has no # HELP for {fam}")

        if types.get(fam) == "histogram" and fam != name:
            h = hist.setdefault(fam, {"buckets": [], "sum": None,
                                      "count": None})
            if name.endswith("_bucket"):
                le = dict(labels).get("le")
                if le is None:
                    findings.append(
                        f"line {lineno}: {name} sample without an "
                        f"le label")
                else:
                    h["buckets"].append((lineno, le, value))
            elif name.endswith("_sum"):
                h["sum"] = value
            else:
                h["count"] = value

    for fam, h in sorted(hist.items()):
        if h["sum"] is None:
            findings.append(f"histogram {fam}: missing {fam}_sum")
        if h["count"] is None:
            findings.append(f"histogram {fam}: missing {fam}_count")
        if not h["buckets"]:
            findings.append(f"histogram {fam}: no _bucket samples")
            continue
        prev = None
        for lineno, le, value in h["buckets"]:
            if prev is not None and value < prev:
                findings.append(
                    f"line {lineno}: histogram {fam} bucket "
                    f'le="{le}" not cumulative ({value} < {prev})')
            prev = value
        last_le = h["buckets"][-1][1]
        if last_le != "+Inf":
            findings.append(
                f"histogram {fam}: last bucket le={last_le!r}, "
                f"expected +Inf")
        elif h["count"] is not None and h["buckets"][-1][2] != h["count"]:
            findings.append(
                f"histogram {fam}: +Inf bucket "
                f"{h['buckets'][-1][2]} != _count {h['count']}")
    return findings


GOOD = """\
# HELP serve_requests_received Submit frames parsed
# TYPE serve_requests_received counter
serve_requests_received 3
# HELP result_store_fingerprint_hits Store hits by build fingerprint.
# TYPE result_store_fingerprint_hits counter
result_store_fingerprint_hits{fingerprint="abc"} 2
result_store_fingerprint_hits{fingerprint="def"} 0
# HELP serve_queue_depth queued+running depth sampled at each accept
# TYPE serve_queue_depth histogram
serve_queue_depth_bucket{le="1"} 1
serve_queue_depth_bucket{le="2"} 3
serve_queue_depth_bucket{le="+Inf"} 3
serve_queue_depth_sum 4
serve_queue_depth_count 3
"""

# Each fixture seeds exactly one violation; the self-test demands the
# expected fragment shows up in the findings.
BAD_FIXTURES = [
    ("no_help", "serve_scrapes 1\n", "no # HELP"),
    ("bad_value",
     "# HELP x y\n# TYPE x counter\nx one\n", "non-numeric value"),
    ("duplicate_series",
     "# HELP x y\n# TYPE x counter\nx 1\nx 2\n", "duplicate series"),
    ("bad_type",
     "# HELP x y\n# TYPE x speedometer\nx 1\n", "invalid type"),
    ("non_cumulative",
     "# HELP h y\n# TYPE h histogram\n"
     'h_bucket{le="1"} 5\nh_bucket{le="2"} 3\n'
     'h_bucket{le="+Inf"} 5\nh_sum 9\nh_count 5\n',
     "not cumulative"),
    ("inf_mismatch",
     "# HELP h y\n# TYPE h histogram\n"
     'h_bucket{le="1"} 2\nh_bucket{le="+Inf"} 2\nh_sum 2\nh_count 3\n',
     "!= _count"),
    ("missing_inf",
     "# HELP h y\n# TYPE h histogram\n"
     'h_bucket{le="1"} 2\nh_sum 2\nh_count 2\n',
     "expected +Inf"),
]


def self_test():
    good = check_exposition(GOOD)
    if good:
        print("check_exposition: self-test: clean fixture flagged:")
        for f in good:
            print(f"  {f}")
        return 1
    rc = 0
    for name, text, fragment in BAD_FIXTURES:
        findings = check_exposition(text)
        if not any(fragment in f for f in findings):
            print(f"check_exposition: self-test: fixture {name!r} did "
                  f"not trigger {fragment!r}; got {findings}")
            rc = 1
    if rc == 0:
        print(f"check_exposition: self-test OK "
              f"({len(BAD_FIXTURES)} seeded violations fire)")
    return rc


def main(argv):
    if len(argv) != 2:
        print(__doc__)
        return 2
    if argv[1] == "--self-test":
        return self_test()
    if argv[1] == "-":
        text = sys.stdin.read()
    else:
        with open(argv[1], encoding="utf-8") as fh:
            text = fh.read()
    findings = check_exposition(text)
    for f in findings:
        print(f"check_exposition: {f}")
    if findings:
        return 1
    samples = sum(
        1 for l in text.splitlines() if l and not l.startswith("#"))
    print(f"check_exposition: OK ({samples} samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
