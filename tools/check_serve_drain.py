#!/usr/bin/env python3
"""Graceful-drain check for lbpserved's signal path.

The gtest suite covers the in-protocol `drain` frame deterministically
(tests/test_serve.cc); this script drives the *signal* path end to end
with a real process: SIGTERM lands while a sweep is in flight, after
which the daemon must

  1. reject new submits with code "draining",
  2. still deliver the in-flight request's result, and
  3. exit 0.

Usage:
    check_serve_drain.py <lbpserved> <scratch_dir>
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time


def fail(msg):
    print(f"check_serve_drain: {msg}")
    return 1


def recv_frame(sock, buf):
    while b"\n" not in buf[0]:
        chunk = sock.recv(65536)
        if not chunk:
            return None
        buf[0] += chunk
    line, buf[0] = buf[0].split(b"\n", 1)
    return json.loads(line)


def next_non_event(sock, buf):
    while True:
        msg = recv_frame(sock, buf)
        if msg is None or msg.get("type") != "event":
            return msg


def main(argv):
    if len(argv) != 3:
        print(__doc__)
        return 2
    daemon_path, scratch = argv[1], argv[2]
    os.makedirs(scratch, exist_ok=True)
    port_file = os.path.join(scratch, "drain.port")
    if os.path.exists(port_file):
        os.unlink(port_file)
    env = dict(os.environ)
    env.pop("REPRO_RESULT_STORE", None)  # every cell must simulate
    daemon = subprocess.Popen(
        [daemon_path, "--port", "0", "--jobs", "1",
         "--port-file", port_file, "--quiet"],
        env=env)
    try:
        for _ in range(200):
            if os.path.exists(port_file):
                break
            time.sleep(0.05)
        else:
            return fail("daemon never wrote its port file")
        port = int(open(port_file).read().strip())

        sock = socket.create_connection(("127.0.0.1", port),
                                        timeout=120)
        buf = [b""]
        sock.sendall(b'{"type":"hello","protocol":"lbp-serve-v1"}\n')
        hello = recv_frame(sock, buf)
        if not hello or hello.get("type") != "hello":
            return fail(f"bad hello reply: {hello!r}")

        # A sweep long enough (~70M instructions, one worker — a few
        # seconds) that SIGTERM is guaranteed to land mid-flight.
        submit = {"type": "submit", "id": "r1", "suite": 2,
                  "warmup": 1000, "instr": 10000000,
                  "spec": "config forward-walk"}
        sock.sendall(json.dumps(submit).encode() + b"\n")
        acc = recv_frame(sock, buf)
        if not acc or acc.get("type") != "accepted":
            return fail(f"submit not accepted: {acc!r}")

        # The sweep_start event proves the sweep is running.
        first = recv_frame(sock, buf)
        if (not first or first.get("type") != "event" or
                first.get("data", {}).get("event") != "sweep_start"):
            return fail(f"expected sweep_start event, got {first!r}")

        daemon.send_signal(signal.SIGTERM)
        time.sleep(0.5)  # let the signal's wake byte reach the loop

        submit["id"] = "r2"
        sock.sendall(json.dumps(submit).encode() + b"\n")
        rej = next_non_event(sock, buf)
        if (not rej or rej.get("type") != "rejected" or
                rej.get("id") != "r2" or rej.get("code") != "draining"):
            return fail(f"expected rejected(draining) for r2, "
                        f"got {rej!r}")

        res = next_non_event(sock, buf)
        if (not res or res.get("type") != "result" or
                res.get("id") != "r1" or not res.get("csv")):
            return fail(f"expected r1's result after drain, "
                        f"got {str(res)[:200]!r}")

        # After delivering the last result the daemon exits cleanly.
        rc = daemon.wait(timeout=120)
        if rc != 0:
            return fail(f"daemon exited {rc}, expected 0")
        sock.close()
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()
    print("check_serve_drain: SIGTERM drained cleanly "
          "(r1 delivered, r2 rejected, exit 0)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
