// Seeded violation: a predictor that speculatively updates its state
// at predict-time but does not expose the checkpoint/repair interface.
// lbp_lint must flag this with predictor-repair-interface.

#ifndef LBP_BAD_PREDICTOR_HH
#define LBP_BAD_PREDICTOR_HH

class LocalPredictor;

class LeakyPredictor : public LocalPredictor
{
  public:
    void specUpdate(unsigned long pc, bool dir);
    bool predict(unsigned long pc);
};

#endif // LBP_BAD_PREDICTOR_HH
