// A clean fixture: correct guard, no banned calls. Mentions of
// "prediction time (stored below)" and "operand assert(ions)" in
// comments — and banned tokens inside string literals — must NOT be
// flagged; the linter strips comments and strings first.

#ifndef LBP_CLEAN_HH
#define LBP_CLEAN_HH

inline const char *
bannedWordsInStrings()
{
    return "assert( rand( time( <random> <ctime> system_clock";
}

#endif // LBP_CLEAN_HH
