// Seeded violations: a guard that does not follow LBP_<DIR>_<FILE>_HH
// and an include that escapes the source root with "../".
// lbp_lint must flag include-guard and no-parent-include.

#ifndef WRONG_GUARD_H
#define WRONG_GUARD_H

#include "../outside/helper.hh"

#endif // WRONG_GUARD_H
