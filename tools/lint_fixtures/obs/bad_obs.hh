// Fixture for the obs-doc-comment rule: exactly ONE seeded violation
// (UndocumentedRecord). The forward declaration, the documented types
// and the nested struct must all stay quiet.

#ifndef LBP_OBS_BAD_OBS_HH
#define LBP_OBS_BAD_OBS_HH

namespace lbp {

struct DocumentedElsewhere;  // forward declaration: no body here

/** Block-doc-commented type: must not fire. */
struct GoodRecord
{
    int x = 0;
};

/// Line-doc-commented type: must not fire.
class GoodCollector
{
  public:
    int y = 0;

    struct Nested  // class scope, not namespace scope: must not fire
    {
        int z = 0;
    };
};

struct UndocumentedRecord
{
    int w = 0;
};

} // namespace lbp

#endif // LBP_OBS_BAD_OBS_HH
