// Fixture: seeded no-raw-thread violations. Direct thread spawns
// bypass the ThreadPool's determinism/exception/shutdown contract.

#include <future>
#include <thread>

void
spawnsRawThread()
{
    std::thread t([] {});
    t.join();
}

void
spawnsRawAsync()
{
    auto f = std::async([] { return 1; });
    (void)f.get();
}
