// The fixture tree's reporting layer: references reportedEvents (so it
// passes stats-counter-reported) but not forgottenEvents.

#include <cstdio>

void
printOrphanStats(unsigned long long reportedEvents)
{
    std::printf("reported %llu\n", reportedEvents);
}
