#ifndef LBP_COMMON_RING_QUEUE_HH
#define LBP_COMMON_RING_QUEUE_HH

/// Documented template container: the doc comment sits above the
/// template introducer and must satisfy obs-doc-comment.
template <typename T>
class GoodRing {
  public:
    bool empty() const { return size_ == 0; }

  private:
    unsigned size_ = 0;
    T slot_{};
};

template <typename T>
class BadRing {  // seeded violation: template class with no doc
  public:
    bool occupied() const { return size_ != 0; }

  private:
    unsigned size_ = 0;
    T slot_{};
};

#endif
