// Seeded violation: a growing-vector call inside a hot stage function
// of a file named core/core.cc. lbp_lint must flag no-hot-path-alloc
// for the push_back in stepCycle() and for the new in fetchStage(),
// accept the explicitly-marked construction-time line in makeInst(),
// and ignore the allocation in the non-hot helper.

#include <vector>

struct FakeCore
{
    void stepCycle();
    void fetchStage();
    void makeInst();
    void coldHelper();
    std::vector<int> retired_;
    int *scratch_ = nullptr;
};

void
FakeCore::stepCycle()
{
    retired_.push_back(1);  // must be flagged
}

void
FakeCore::fetchStage()
{
    scratch_ = new int[4];  // must be flagged
}

void
FakeCore::makeInst()
{
    retired_.reserve(64);  // lint:allow-hot-alloc (one-time lazy init)
}

void
FakeCore::coldHelper()
{
    // Not in the hot-function list: growing here is fine.
    retired_.push_back(2);
}
