// Fixture for the serve-directory extension of the obs-doc-comment
// rule: src/serve/ headers are the daemon's public protocol surface.
// Exactly ONE seeded violation (UndocumentedFrame); the documented
// type, the forward declaration and the nested struct stay quiet.

#ifndef LBP_SERVE_BAD_SERVE_HH
#define LBP_SERVE_BAD_SERVE_HH

namespace lbp {

class ServerElsewhere;  // forward declaration: no body here

/** Documented protocol record: must not fire. */
struct GoodFrame
{
    int id = 0;

    struct Nested  // class scope, not namespace scope: must not fire
    {
        int field = 0;
    };
};

struct UndocumentedFrame
{
    int code = 0;
};

} // namespace lbp

#endif // LBP_SERVE_BAD_SERVE_HH
