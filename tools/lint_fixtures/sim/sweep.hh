#ifndef LBP_SIM_SWEEP_HH
#define LBP_SIM_SWEEP_HH

// Fixture for the obs-doc-comment rule's extension to the sweep
// headers (paths ending in sim/sweep.hh / sim/result_store.hh). Seeds
// exactly ONE undocumented namespace-scope type; the documented,
// forward-declared and nested types below must all stay quiet.

#include <cstdint>

namespace lbp {

/// Documented sweep cell: must not trigger.
struct FixtureSweepCell {
    std::uint64_t wall = 0;
    /// Nested type inside a documented type: nested scope is exempt.
    struct Inner {
        int worker = -1;
    };
};

// Forward declaration: no body to document here, must not trigger.
struct FixtureSweepOptions;

struct FixtureSweepResult { // seeded violation: missing doc comment
    std::uint64_t cells = 0;
};

} // namespace lbp

#endif // LBP_SIM_SWEEP_HH
