// Seeded violation: a Stats counter that no reporting-layer file ever
// references. lbp_lint must flag stats-counter-reported.

#ifndef LBP_BAD_STATS_HH
#define LBP_BAD_STATS_HH

#include <cstdint>

struct OrphanStats
{
    std::uint64_t reportedEvents = 0;
    std::uint64_t forgottenEvents = 0;  // never printed anywhere
};

#endif // LBP_BAD_STATS_HH
