// Seeded violations: raw assert, libc randomness, and wall-clock time.
// lbp_lint must flag no-raw-assert, no-raw-random, and no-raw-time.

#include <cassert>
#include <cstdlib>
#include <ctime>

unsigned
roll(unsigned sides)
{
    assert(sides > 0);
    srand(static_cast<unsigned>(time(nullptr)));
    return static_cast<unsigned>(std::rand()) % sides;
}
