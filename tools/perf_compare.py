#!/usr/bin/env python3
"""Compare measured throughput telemetry against a committed baseline.

Usage:
    perf_compare.py --baseline bench/baseline_throughput.json \
        [--out BENCH_throughput.json] measured.json [measured.json ...]
    perf_compare.py --self-test

Each measured file is a telemetry dump written by lbpsim
(--throughput-json) or by the benches (REPRO_THROUGHPUT_JSON) — the
format produced by TelemetryRegistry::toJson(). Records are matched to
baseline entries by their ``label``.

The gate is WARN-ONLY by design: shared CI runners vary widely in
absolute speed, so a hard Minstr/s floor would flap. The committed
baseline records reference numbers from one machine plus a
``tolerance_fraction``; a measured label running more than that
fraction below its baseline emits a GitHub ``::warning`` annotation
(visible on the run summary) but never fails the job. An individual
baseline entry may carry its own ``tolerance_fraction`` to override
the file-level default (used for probes whose speed depends on runner
characteristics beyond CPU clock, e.g. the memcpy-bound snapshot
scheme). A baselined label that yields no usable measurement also
warns — distinguishing a probe that is absent from the telemetry
entirely (the probe was dropped or renamed) from one that appeared
only as memo hits or zero-wall records (the run never actually
simulated it). The real signal is the trajectory of the uploaded
BENCH_throughput.json artifacts over time. The exit code is non-zero
only for operational errors (missing or malformed files), never for
slow measurements.

With --out, the measured records are merged into a single telemetry
JSON (same shape as the inputs) so the CI job has one artifact to
upload regardless of how many processes produced telemetry.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_records(path: str) -> list[dict]:
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    suites = data.get("suites")
    if not isinstance(suites, list):
        raise ValueError(f"{path}: no 'suites' array")
    return suites


def merge_json(records: list[dict], bench: str) -> dict:
    total_instrs = sum(int(r.get("sim_instrs", 0)) for r in records)
    total_wall = sum(float(r.get("wall_s", 0.0)) for r in records)
    return {
        "bench": bench,
        "suites_run": len(records),
        "memo_hits": sum(1 for r in records if r.get("memo_hit")),
        "total_sim_instrs": total_instrs,
        "total_wall_s": round(total_wall, 6),
        "minstr_per_s": round(total_instrs / total_wall / 1e6, 6)
        if total_wall > 0
        else 0.0,
        "suites": records,
    }


def compare(baseline: dict, records: list[dict]) -> tuple[list[str], int]:
    """Return (output lines, warning count) for one comparison run."""
    tolerance = float(baseline.get("tolerance_fraction", 0.4))
    expected = {b["label"]: b for b in baseline.get("baselines", [])}

    seen = {r.get("label", "?") for r in records}
    measured = {}
    for r in records:
        if not r.get("memo_hit") and float(r.get("wall_s", 0.0)) > 0:
            # Last record wins if a label repeats within one run.
            measured[r.get("label", "?")] = r

    lines: list[str] = []
    warned = 0
    for label, base in expected.items():
        want = float(base["minstr_per_s"])
        tol = float(base.get("tolerance_fraction", tolerance))
        floor = want * (1.0 - tol)
        got = measured.get(label)
        if got is None:
            if label in seen:
                why = ("only memo-hit or zero-wall records — the run "
                       "never freshly simulated it")
            else:
                why = ("absent from the measured telemetry — dropped "
                       "or renamed probe?")
            lines.append(
                f"::warning::perf-smoke: baseline label '{label}' "
                f"has no usable measurement this run ({why})"
            )
            warned += 1
            continue
        speed = float(got["minstr_per_s"])
        verdict = "OK" if speed >= floor else "SLOW"
        lines.append(
            f"perf-smoke: {label:40s} {speed:8.2f} Minstr/s "
            f"(baseline {want:.2f}, floor {floor:.2f}) {verdict}"
        )
        if speed < floor:
            lines.append(
                f"::warning::perf-smoke: '{label}' ran at "
                f"{speed:.2f} Minstr/s, more than "
                f"{tol:.0%} below the committed baseline "
                f"of {want:.2f} (warn-only; see "
                f"bench/baseline_throughput.json)"
            )
            warned += 1

    for label in measured:
        if label not in expected:
            lines.append(
                f"perf-smoke: {label}: no committed baseline (info)")

    lines.append(
        f"perf-smoke: {len(measured)} labels measured, "
        f"{len(expected)} baselined, {warned} warnings (warn-only)"
    )
    return lines, warned


def self_test() -> int:
    """Seeded scenarios: each must produce exactly the expected
    warning (or none), proving the gate cannot silently pass a
    missing or slow probe."""
    baseline = {
        "tolerance_fraction": 0.4,
        "baselines": [
            {"label": "fast", "minstr_per_s": 10.0},
            {"label": "slow", "minstr_per_s": 10.0},
            {"label": "memoed", "minstr_per_s": 10.0},
            {"label": "vanished", "minstr_per_s": 10.0},
        ],
    }
    records = [
        {"label": "fast", "minstr_per_s": 9.0, "wall_s": 1.0},
        {"label": "slow", "minstr_per_s": 1.0, "wall_s": 1.0},
        {"label": "memoed", "minstr_per_s": 0.0, "wall_s": 0.0,
         "memo_hit": True},
        {"label": "unbaselined", "minstr_per_s": 5.0, "wall_s": 1.0},
    ]
    lines, warned = compare(baseline, records)
    text = "\n".join(lines)
    checks = [
        ("slow probe warns", "'slow' ran at 1.00"),
        ("memo-only probe warns with its cause",
         "'memoed' has no usable measurement this run (only memo-hit"),
        ("vanished probe warns with its cause",
         "'vanished' has no usable measurement this run (absent"),
        ("unbaselined label is info only",
         "unbaselined: no committed baseline (info)"),
        ("fast probe passes", "fast"),
    ]
    ok = True
    for name, fragment in checks:
        if fragment not in text:
            print(f"perf_compare self-test: {name}: {fragment!r} "
                  f"not found in output")
            ok = False
    if warned != 3:
        print(f"perf_compare self-test: expected 3 warnings, "
              f"got {warned}")
        ok = False
    if ok:
        print("perf_compare: self-test OK (3 seeded warnings fire)")
        return 0
    print(text)
    return 1


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline")
    ap.add_argument("--out", help="write merged telemetry JSON here")
    ap.add_argument("--self-test", action="store_true")
    ap.add_argument("measured", nargs="*")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.measured:
        ap.error("--baseline and at least one measured file required")

    try:
        with open(args.baseline, "r", encoding="utf-8") as f:
            baseline = json.load(f)
    except (OSError, ValueError) as e:
        print(f"::error::perf_compare: cannot read baseline: {e}")
        return 1

    records: list[dict] = []
    for path in args.measured:
        try:
            records.extend(load_records(path))
        except (OSError, ValueError) as e:
            print(f"::error::perf_compare: {e}")
            return 1

    lines, _warned = compare(baseline, records)
    for line in lines:
        print(line)

    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as f:
                json.dump(merge_json(records, "perf-smoke"), f, indent=2)
                f.write("\n")
        except OSError as e:
            print(f"::error::perf_compare: cannot write {args.out}: {e}")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
