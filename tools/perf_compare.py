#!/usr/bin/env python3
"""Compare measured throughput telemetry against a committed baseline.

Usage:
    perf_compare.py --baseline bench/baseline_throughput.json \
        [--out BENCH_throughput.json] measured.json [measured.json ...]

Each measured file is a telemetry dump written by lbpsim
(--throughput-json) or by the benches (REPRO_THROUGHPUT_JSON) — the
format produced by TelemetryRegistry::toJson(). Records are matched to
baseline entries by their ``label``.

The gate is WARN-ONLY by design: shared CI runners vary widely in
absolute speed, so a hard Minstr/s floor would flap. The committed
baseline records reference numbers from one machine plus a
``tolerance_fraction``; a measured label running more than that
fraction below its baseline emits a GitHub ``::warning`` annotation
(visible on the run summary) but never fails the job. An individual
baseline entry may carry its own ``tolerance_fraction`` to override
the file-level default (used for probes whose speed depends on runner
characteristics beyond CPU clock, e.g. the memcpy-bound snapshot
scheme). The real signal
is the trajectory of the uploaded BENCH_throughput.json artifacts over
time. The exit code is non-zero only for operational errors (missing
or malformed files), never for slow measurements.

With --out, the measured records are merged into a single telemetry
JSON (same shape as the inputs) so the CI job has one artifact to
upload regardless of how many processes produced telemetry.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_records(path: str) -> list[dict]:
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    suites = data.get("suites")
    if not isinstance(suites, list):
        raise ValueError(f"{path}: no 'suites' array")
    return suites


def merge_json(records: list[dict], bench: str) -> dict:
    total_instrs = sum(int(r.get("sim_instrs", 0)) for r in records)
    total_wall = sum(float(r.get("wall_s", 0.0)) for r in records)
    return {
        "bench": bench,
        "suites_run": len(records),
        "memo_hits": sum(1 for r in records if r.get("memo_hit")),
        "total_sim_instrs": total_instrs,
        "total_wall_s": round(total_wall, 6),
        "minstr_per_s": round(total_instrs / total_wall / 1e6, 6)
        if total_wall > 0
        else 0.0,
        "suites": records,
    }


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--out", help="write merged telemetry JSON here")
    ap.add_argument("measured", nargs="+")
    args = ap.parse_args()

    try:
        with open(args.baseline, "r", encoding="utf-8") as f:
            baseline = json.load(f)
    except (OSError, ValueError) as e:
        print(f"::error::perf_compare: cannot read baseline: {e}")
        return 1

    tolerance = float(baseline.get("tolerance_fraction", 0.4))
    expected = {b["label"]: b for b in baseline.get("baselines", [])}

    records: list[dict] = []
    for path in args.measured:
        try:
            records.extend(load_records(path))
        except (OSError, ValueError) as e:
            print(f"::error::perf_compare: {e}")
            return 1

    measured = {}
    for r in records:
        if not r.get("memo_hit") and float(r.get("wall_s", 0.0)) > 0:
            # Last record wins if a label repeats within one run.
            measured[r.get("label", "?")] = r

    warned = 0
    for label, base in expected.items():
        want = float(base["minstr_per_s"])
        tol = float(base.get("tolerance_fraction", tolerance))
        floor = want * (1.0 - tol)
        got = measured.get(label)
        if got is None:
            print(
                f"::warning::perf-smoke: baseline label '{label}' "
                f"was not measured this run"
            )
            warned += 1
            continue
        speed = float(got["minstr_per_s"])
        verdict = "OK" if speed >= floor else "SLOW"
        print(
            f"perf-smoke: {label:40s} {speed:8.2f} Minstr/s "
            f"(baseline {want:.2f}, floor {floor:.2f}) {verdict}"
        )
        if speed < floor:
            print(
                f"::warning::perf-smoke: '{label}' ran at "
                f"{speed:.2f} Minstr/s, more than "
                f"{tol:.0%} below the committed baseline "
                f"of {want:.2f} (warn-only; see "
                f"bench/baseline_throughput.json)"
            )
            warned += 1

    for label in measured:
        if label not in expected:
            print(f"perf-smoke: {label}: no committed baseline (info)")

    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as f:
                json.dump(merge_json(records, "perf-smoke"), f, indent=2)
                f.write("\n")
        except OSError as e:
            print(f"::error::perf_compare: cannot write {args.out}: {e}")
            return 1

    print(
        f"perf-smoke: {len(measured)} labels measured, "
        f"{len(expected)} baselined, {warned} warnings (warn-only)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
