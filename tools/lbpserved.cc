/**
 * @file
 * lbpserved — the resident sweep daemon (simulation as a service).
 *
 * Keeps one SuiteCache and one persistent ResultStore warm across
 * sweep requests and serves them to concurrent lbpsweep --server
 * clients over line-delimited JSON (lbp-serve-v1, docs/SERVER.md).
 * Identical concurrent requests coalesce onto one simulation; a
 * bounded queue rejects overload explicitly; SIGTERM/SIGINT drain
 * gracefully (in-flight work finishes, new submits are rejected, then
 * the process exits 0 with a counter summary).
 *
 *   lbpserved --port 7737 --store .result-store
 *   lbpserved --port 0 --port-file port.txt --event-log served.jsonl
 *
 * Exit codes: 0 clean drain, 1 bad usage or bind failure.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "obs/metrics.hh"
#include "serve/server.hh"
#include "sim/result_store.hh"

using namespace lbp;

namespace {

struct Options
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;      ///< 0 = kernel-assigned
    std::string portFile;        ///< write the bound port here
    std::string storeDir;        ///< persistent store (REPRO_RESULT_STORE)
    unsigned jobs = 0;           ///< per-sweep workers
    std::size_t maxQueue = 8;
    std::uint64_t maxCells = 131072;
    double queueTimeout = 600.0;
    std::string eventLogPath;
    bool quiet = false;          ///< suppress the [lbpserved] log

    int metricsPort = -1;        ///< -1 off, 0 kernel-assigned
    std::string metricsPortFile; ///< write the bound metrics port here
    double heartbeat = 0.0;      ///< heartbeat interval; 0 = off
    double gcAge = 0.0;          ///< store GC: max entry age
    std::uint64_t gcBytes = 0;   ///< store GC: total size cap
    double gcInterval = 60.0;    ///< seconds between idle GC passes
    std::string traceOutPath;    ///< Chrome-trace service spans
};

struct OptSpec
{
    const char *flag;
    const char *metavar;  ///< nullptr = boolean
    const char *help;
};

constexpr OptSpec kOptions[] = {
    {"--help", nullptr, "print this help and exit"},
    {"--host", "<addr>", "bind address (default 127.0.0.1)"},
    {"--port", "<N>", "TCP port; 0 = kernel-assigned (default 0)"},
    {"--port-file", "<path>", "write the bound port (for port 0)"},
    {"--store", "<dir>", "persistent result store directory (default "
     "$REPRO_RESULT_STORE; empty = memory only)"},
    {"--jobs", "<N>", "workers per sweep (default REPRO_JOBS, else "
     "hardware concurrency)"},
    {"--max-queue", "<N>", "max requests queued or running "
     "(default 8)"},
    {"--max-cells", "<N>", "max cells queued or running "
     "(default 131072)"},
    {"--queue-timeout", "<secs>", "max wait in the queue "
     "(default 600)"},
    {"--event-log", "<path>", "append the server's JSON-lines event "
     "log (serve_* records plus every sweep's events)"},
    {"--metrics-port", "<N>", "serve Prometheus text exposition over "
     "HTTP on this port; 0 = kernel-assigned (default off)"},
    {"--metrics-port-file", "<path>", "write the bound metrics port "
     "(for --metrics-port 0)"},
    {"--heartbeat", "<secs>", "emit a heartbeat event-log record "
     "every N seconds (default off)"},
    {"--store-gc-age", "<secs>", "idle GC: evict store entries older "
     "than this (default off)"},
    {"--store-gc-bytes", "<N>", "idle GC: then cap the store at N "
     "bytes, oldest first (default off)"},
    {"--store-gc-interval", "<secs>", "seconds between idle GC passes "
     "(default 60)"},
    {"--trace-out", "<path>", "write per-request service spans as "
     "Chrome trace JSON at exit"},
    {"--quiet", nullptr, "suppress the [lbpserved] log lines"},
};

void
usage()
{
    std::printf("lbpserved — resident sweep daemon (lbp-serve-v1)\n\n");
    for (const OptSpec &o : kOptions) {
        char left[48];
        std::snprintf(left, sizeof(left), "  %s%s%s", o.flag,
                      o.metavar ? " " : "", o.metavar ? o.metavar : "");
        std::printf("%-28s%s\n", left, o.help);
    }
}

bool
parseOptions(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        const OptSpec *spec = nullptr;
        for (const OptSpec &o : kOptions)
            if (std::strcmp(argv[i], o.flag) == 0)
                spec = &o;
        if (!spec) {
            std::fprintf(stderr, "unknown option %s\n", argv[i]);
            usage();
            return false;
        }
        const char *v = nullptr;
        if (spec->metavar) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", argv[i]);
                return false;
            }
            v = argv[++i];
        }
        const std::string flag = spec->flag;
        if (flag == "--help") {
            usage();
            std::exit(0);
        } else if (flag == "--host") {
            opt.host = v;
        } else if (flag == "--port") {
            opt.port = static_cast<std::uint16_t>(std::atoi(v));
        } else if (flag == "--port-file") {
            opt.portFile = v;
        } else if (flag == "--store") {
            opt.storeDir = v;
        } else if (flag == "--jobs") {
            opt.jobs = static_cast<unsigned>(std::atoi(v));
        } else if (flag == "--max-queue") {
            opt.maxQueue = static_cast<std::size_t>(std::atoi(v));
        } else if (flag == "--max-cells") {
            opt.maxCells = std::strtoull(v, nullptr, 10);
        } else if (flag == "--queue-timeout") {
            opt.queueTimeout = std::atof(v);
        } else if (flag == "--event-log") {
            opt.eventLogPath = v;
        } else if (flag == "--metrics-port") {
            opt.metricsPort = std::atoi(v);
        } else if (flag == "--metrics-port-file") {
            opt.metricsPortFile = v;
        } else if (flag == "--heartbeat") {
            opt.heartbeat = std::atof(v);
        } else if (flag == "--store-gc-age") {
            opt.gcAge = std::atof(v);
        } else if (flag == "--store-gc-bytes") {
            opt.gcBytes = std::strtoull(v, nullptr, 10);
        } else if (flag == "--store-gc-interval") {
            opt.gcInterval = std::atof(v);
        } else if (flag == "--trace-out") {
            opt.traceOutPath = v;
        } else if (flag == "--quiet") {
            opt.quiet = true;
        }
    }
    return true;
}

/** Drain target for the signal handlers (requestDrain is
 *  async-signal-safe: one pipe write). */
Server *gServer = nullptr;

void
onSignal(int)
{
    if (gServer)
        gServer->requestDrain();
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (const char *env = std::getenv("REPRO_RESULT_STORE"))
        opt.storeDir = env;
    if (!parseOptions(argc, argv, opt))
        return 1;

    ResultStore store(opt.storeDir);
    std::ofstream eventLog;
    if (!opt.eventLogPath.empty()) {
        eventLog.open(opt.eventLogPath, std::ios::app);
        if (!eventLog) {
            std::fprintf(stderr, "lbpserved: cannot write %s\n",
                         opt.eventLogPath.c_str());
            return 1;
        }
    }

    std::ofstream traceOut;
    if (!opt.traceOutPath.empty()) {
        traceOut.open(opt.traceOutPath);
        if (!traceOut) {
            std::fprintf(stderr, "lbpserved: cannot write %s\n",
                         opt.traceOutPath.c_str());
            return 1;
        }
    }

    ServeOptions sopts;
    sopts.host = opt.host;
    sopts.port = opt.port;
    sopts.jobs = opt.jobs;
    sopts.store = opt.storeDir.empty() ? nullptr : &store;
    sopts.eventLog = eventLog.is_open() ? &eventLog : nullptr;
    sopts.log = opt.quiet ? nullptr : stderr;
    sopts.maxQueue = opt.maxQueue;
    sopts.maxCells = opt.maxCells;
    sopts.queueTimeoutSeconds = opt.queueTimeout;
    sopts.metricsPort = opt.metricsPort;
    sopts.heartbeatSeconds = opt.heartbeat;
    sopts.storeGc.maxAgeSeconds = opt.gcAge;
    sopts.storeGc.maxBytes = opt.gcBytes;
    sopts.gcIntervalSeconds = opt.gcInterval;
    sopts.traceOut = traceOut.is_open() ? &traceOut : nullptr;

    Server server(sopts);
    std::string error;
    if (!server.start(error)) {
        std::fprintf(stderr, "lbpserved: %s\n", error.c_str());
        return 1;
    }

    gServer = &server;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onSignal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
    // A client vanishing mid-write must not kill the daemon.
    std::signal(SIGPIPE, SIG_IGN);

    std::printf("lbpserved: listening on %s:%u\n", opt.host.c_str(),
                static_cast<unsigned>(server.port()));
    if (server.metricsPort())
        std::printf("lbpserved: metrics on %s:%u\n", opt.host.c_str(),
                    static_cast<unsigned>(server.metricsPort()));
    std::fflush(stdout);
    if (!opt.portFile.empty()) {
        std::ofstream pf(opt.portFile);
        if (!pf) {
            std::fprintf(stderr, "lbpserved: cannot write %s\n",
                         opt.portFile.c_str());
            return 1;
        }
        pf << server.port() << '\n';
    }
    if (!opt.metricsPortFile.empty()) {
        std::ofstream pf(opt.metricsPortFile);
        if (!pf) {
            std::fprintf(stderr, "lbpserved: cannot write %s\n",
                         opt.metricsPortFile.c_str());
            return 1;
        }
        pf << server.metricsPort() << '\n';
    }

    const int rc = server.run();
    gServer = nullptr;

    const ServeStats st = server.stats();
    std::printf("lbpserved: %llu requests (%llu deduped, %llu "
                "rejected), %llu sweeps, %llu cells served\n",
                static_cast<unsigned long long>(st.requestsReceived),
                static_cast<unsigned long long>(st.requestsDeduped),
                static_cast<unsigned long long>(st.requestsRejected),
                static_cast<unsigned long long>(st.sweepsExecuted),
                static_cast<unsigned long long>(st.cellsServed));
    return rc;
}
