/**
 * @file
 * lbpsim — command-line front-end for the simulator.
 *
 * Run any workload (or the whole suite) under any predictor/repair
 * configuration and print per-run or aggregated results, optionally as
 * CSV for plotting. Observability flags capture cycle-level pipeline
 * traces, misprediction forensics, and metrics exports (docs/TRACING.md
 * and docs/METRICS.md).
 *
 *   lbpsim --workload Server:0 --scheme forward-walk --ports 32-4-2
 *   lbpsim --suite 21 --scheme perfect --loop 256 --csv out.csv
 *   lbpsim --workload Web:1 --scheme forward-walk --trace-out t.json \
 *          --forensics-csv f.csv --top-offenders 10
 *   lbpsim --list
 *
 * Exit codes: 0 ok, 1 bad usage (fatal() semantics).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/telemetry.hh"
#include "common/thread_pool.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/runner.hh"
#include "workload/suite.hh"

using namespace lbp;

namespace {

struct Options
{
    std::optional<std::pair<std::string, unsigned>> workload;
    unsigned suite = 0;           ///< 0 = no suite run
    bool fullSuite = false;
    std::string scheme = "baseline";
    RepairPorts ports{32, 4, 2};
    bool coalesce = false;
    unsigned limitedM = 4;
    unsigned loopEntries = 128;
    unsigned tageKB = 7;
    std::uint64_t warmup = 40000;
    std::uint64_t instrs = 60000;
    std::string csvPath;
    std::string throughputJson;
    unsigned jobs = 0;            ///< 0 = REPRO_JOBS / hardware
    bool list = false;

    // Observability (src/obs; all off by default — zero-cost).
    std::string traceOut;         ///< Chrome trace_event JSON path
    std::string traceKonata;      ///< Konata pipeline log path
    std::uint64_t traceWindow = 20000;  ///< trace window, cycles
    std::string forensicsCsv;     ///< per-squash forensics CSV path
    std::uint64_t forensicsStride = 1;  ///< record every Nth squash
    std::string metricsJson;      ///< metrics-registry JSON path
    unsigned topOffenders = 0;    ///< print top-N mispredicting PCs
};

/** Identifier for each option the parser dispatches on. */
enum class Opt
{
    Help, List, Workload, Suite, Scheme, Ports, Coalesce, LimitedM,
    Loop, Tage, Warmup, Instr, Csv, Jobs, ThroughputJson,
    TraceOut, TraceKonata, TraceWindow, ForensicsCsv, ForensicsStride,
    MetricsJson, TopOffenders,
};

/**
 * The single option table: the parser resolves flags against it and
 * usage() renders it, so help text and accepted flags cannot drift
 * (tools/check_lbpsim_help.py asserts every parsed flag is printed).
 */
struct OptSpec
{
    Opt id;
    const char *flag;
    const char *alias;    ///< alternate spelling, or nullptr
    const char *metavar;  ///< value placeholder, or nullptr (boolean)
    const char *help;     ///< '\n' continues on an aligned next line
};

constexpr OptSpec kOptions[] = {
    {Opt::Help, "--help", "-h", nullptr, "print this help and exit"},
    {Opt::List, "--list", nullptr, nullptr,
     "print categories and named workloads"},
    {Opt::Workload, "--workload", nullptr, "<Category:N>",
     "simulate one workload (e.g. Server:0)"},
    {Opt::Suite, "--suite", nullptr, "<N|all>",
     "simulate N suite workloads (category-proportional)"},
    {Opt::Scheme, "--scheme", nullptr, "<name>",
     "baseline | perfect | no-repair | retire-update |\n"
     "backward-walk | snapshot | forward-walk |\n"
     "limited-pc | multi-stage | future-file"},
    {Opt::Ports, "--ports", nullptr, "<M-N-P>",
     "OBQ/SQ entries, read ports, BHT write ports"},
    {Opt::Coalesce, "--coalesce", nullptr, nullptr,
     "enable OBQ entry merging"},
    {Opt::LimitedM, "--limited-m", nullptr, "<M>",
     "PCs repaired by limited-pc"},
    {Opt::Loop, "--loop", nullptr, "<64|128|256>",
     "CBPw-Loop BHT/PT entries"},
    {Opt::Tage, "--tage", nullptr, "<7|9|57>",
     "TAGE configuration (KB)"},
    {Opt::Warmup, "--warmup", nullptr, "<N>",
     "warm-up instruction budget"},
    {Opt::Instr, "--instr", nullptr, "<N>",
     "measured instruction budget"},
    {Opt::Csv, "--csv", nullptr, "<path>",
     "write per-workload results as CSV"},
    {Opt::Jobs, "--jobs", nullptr, "<N>",
     "worker threads for suite runs (default:\n"
     "REPRO_JOBS, else hardware concurrency)"},
    {Opt::ThroughputJson, "--throughput-json", nullptr, "<path>",
     "dump throughput telemetry as JSON"},
    {Opt::TraceOut, "--trace-out", nullptr, "<path>",
     "write a Chrome trace_event JSON of pipeline\n"
     "stage events (chrome://tracing, Perfetto)"},
    {Opt::TraceKonata, "--trace-konata", nullptr, "<path>",
     "write a Konata-style pipeline log"},
    {Opt::TraceWindow, "--trace-window", nullptr, "<cycles>",
     "cycle span the dumped trace keeps (default\n"
     "20000; memory stays fixed regardless)"},
    {Opt::ForensicsCsv, "--forensics-csv", nullptr, "<path>",
     "write one CSV row per misprediction squash\n"
     "(PC, predictor component, pollution, repair)"},
    {Opt::ForensicsStride, "--forensics-stride", nullptr, "<N>",
     "record every Nth squash (default 1 = all);\n"
     "bounds forensics memory on long runs"},
    {Opt::MetricsJson, "--metrics-json", nullptr, "<path>",
     "write the metrics registry (counters +\n"
     "histograms) as JSON, per run"},
    {Opt::TopOffenders, "--top-offenders", nullptr, "<N>",
     "print the N PCs causing the most squashes"},
};

void
usage()
{
    std::printf("lbpsim — local-branch-predictor repair simulator\n\n");
    for (const OptSpec &o : kOptions) {
        char left[64];
        std::snprintf(left, sizeof(left), "  %s%s%s%s%s", o.flag,
                      o.alias ? ", " : "", o.alias ? o.alias : "",
                      o.metavar ? " " : "",
                      o.metavar ? o.metavar : "");
        std::printf("%-29s", left);
        for (const char *p = o.help; *p; ++p) {
            if (*p == '\n')
                std::printf("\n%-29s", "");
            else
                std::putchar(*p);
        }
        std::putchar('\n');
    }
}

const OptSpec *
findOption(const char *arg)
{
    for (const OptSpec &o : kOptions)
        if (std::strcmp(arg, o.flag) == 0 ||
            (o.alias && std::strcmp(arg, o.alias) == 0))
            return &o;
    return nullptr;
}

std::optional<RepairKind>
parseScheme(const std::string &s)
{
    const struct
    {
        const char *name;
        RepairKind kind;
    } names[] = {
        {"perfect", RepairKind::Perfect},
        {"no-repair", RepairKind::NoRepair},
        {"retire-update", RepairKind::RetireUpdate},
        {"backward-walk", RepairKind::BackwardWalk},
        {"snapshot", RepairKind::Snapshot},
        {"forward-walk", RepairKind::ForwardWalk},
        {"limited-pc", RepairKind::LimitedPc},
        {"multi-stage", RepairKind::MultiStage},
        {"future-file", RepairKind::FutureFile},
    };
    for (const auto &n : names)
        if (s == n.name)
            return n.kind;
    return std::nullopt;
}

bool
parseOptions(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        const OptSpec *spec = findOption(argv[i]);
        if (!spec) {
            std::fprintf(stderr, "unknown option %s\n", argv[i]);
            usage();
            return false;
        }
        const char *v = nullptr;
        if (spec->metavar) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", argv[i]);
                return false;
            }
            v = argv[++i];
        }
        switch (spec->id) {
          case Opt::Help:
            usage();
            std::exit(0);
          case Opt::List:
            opt.list = true;
            break;
          case Opt::Workload: {
            const char *colon = std::strchr(v, ':');
            if (!colon) {
                std::fprintf(stderr, "--workload wants Category:N\n");
                return false;
            }
            opt.workload = {{std::string(v, colon - v),
                             static_cast<unsigned>(
                                 std::atoi(colon + 1))}};
            break;
          }
          case Opt::Suite:
            if (std::string(v) == "all")
                opt.fullSuite = true;
            else
                opt.suite = static_cast<unsigned>(std::atoi(v));
            break;
          case Opt::Scheme:
            opt.scheme = v;
            break;
          case Opt::Ports: {
            unsigned m = 0, n = 0, p = 0;
            if (std::sscanf(v, "%u-%u-%u", &m, &n, &p) != 3) {
                std::fprintf(stderr, "--ports wants M-N-P\n");
                return false;
            }
            opt.ports = {m, n, p};
            break;
          }
          case Opt::Coalesce:
            opt.coalesce = true;
            break;
          case Opt::LimitedM:
            opt.limitedM = static_cast<unsigned>(std::atoi(v));
            break;
          case Opt::Loop:
            opt.loopEntries = static_cast<unsigned>(std::atoi(v));
            break;
          case Opt::Tage:
            opt.tageKB = static_cast<unsigned>(std::atoi(v));
            break;
          case Opt::Warmup:
            opt.warmup = std::strtoull(v, nullptr, 10);
            break;
          case Opt::Instr:
            opt.instrs = std::strtoull(v, nullptr, 10);
            break;
          case Opt::Csv:
            opt.csvPath = v;
            break;
          case Opt::Jobs:
            opt.jobs = static_cast<unsigned>(std::atoi(v));
            break;
          case Opt::ThroughputJson:
            opt.throughputJson = v;
            break;
          case Opt::TraceOut:
            opt.traceOut = v;
            break;
          case Opt::TraceKonata:
            opt.traceKonata = v;
            break;
          case Opt::TraceWindow:
            opt.traceWindow = std::strtoull(v, nullptr, 10);
            break;
          case Opt::ForensicsCsv:
            opt.forensicsCsv = v;
            break;
          case Opt::ForensicsStride:
            opt.forensicsStride = std::strtoull(v, nullptr, 10);
            break;
          case Opt::MetricsJson:
            opt.metricsJson = v;
            break;
          case Opt::TopOffenders:
            opt.topOffenders = static_cast<unsigned>(std::atoi(v));
            break;
        }
    }
    return true;
}

SimConfig
makeConfig(const Options &opt)
{
    SimConfig cfg;
    cfg.warmupInstrs = opt.warmup;
    cfg.measureInstrs = opt.instrs;
    switch (opt.tageKB) {
      case 7: cfg.tage = TageConfig::kb7(); break;
      case 9: cfg.tage = TageConfig::kb9(); break;
      case 57: cfg.tage = TageConfig::kb57(); break;
      default:
        std::fprintf(stderr, "--tage must be 7, 9 or 57\n");
        std::exit(1);
    }
    if (opt.scheme != "baseline") {
        const auto kind = parseScheme(opt.scheme);
        if (!kind) {
            std::fprintf(stderr, "unknown scheme %s\n",
                         opt.scheme.c_str());
            std::exit(1);
        }
        cfg.useLocal = true;
        cfg.repair.kind = *kind;
        cfg.repair.ports = opt.ports;
        cfg.repair.coalesce = opt.coalesce;
        cfg.repair.limitedM = opt.limitedM;
        switch (opt.loopEntries) {
          case 64: cfg.repair.loop = LoopConfig::entries64(); break;
          case 128: cfg.repair.loop = LoopConfig::entries128(); break;
          case 256: cfg.repair.loop = LoopConfig::entries256(); break;
          default:
            std::fprintf(stderr, "--loop must be 64, 128 or 256\n");
            std::exit(1);
        }
    }
    cfg.obs.trace =
        !opt.traceOut.empty() || !opt.traceKonata.empty();
    cfg.obs.forensics = !opt.forensicsCsv.empty() ||
                        !opt.metricsJson.empty() ||
                        opt.topOffenders > 0;
    cfg.obs.traceWindowCycles = opt.traceWindow;
    cfg.obs.forensicsStride = opt.forensicsStride;
    return cfg;
}

void
printRun(const RunResult &r)
{
    std::printf("%-22s %-9s IPC %6.3f  MPKI %6.2f  misp %7llu  "
                "overrides %7llu (%5.1f%% ok)  repairs %6llu\n",
                r.workload.c_str(), r.category.c_str(), r.ipc, r.mpki,
                static_cast<unsigned long long>(r.stats.mispredicts),
                static_cast<unsigned long long>(r.overrides),
                r.overrides ? 100.0 * r.overridesCorrect / r.overrides
                            : 0.0,
                static_cast<unsigned long long>(r.repairs));
    if (r.auditChecks || r.auditViolations) {
        std::printf("  audit: %llu checks, %llu violations, "
                    "%llu resyncs, %llu skipped, %llu uncovered\n",
                    static_cast<unsigned long long>(r.auditChecks),
                    static_cast<unsigned long long>(r.auditViolations),
                    static_cast<unsigned long long>(r.auditResyncs),
                    static_cast<unsigned long long>(r.auditSkipped),
                    static_cast<unsigned long long>(r.auditUncovered));
    }
}

std::ofstream
openOrDie(const std::string &path)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(1);
    }
    return out;
}

void
writeCsv(const std::string &path, const SuiteResult &res)
{
    std::ofstream out = openOrDie(path);
    const SuiteTelemetry &tel = res.telemetry;
    out << "# wall_s=" << tel.wallSeconds
        << " minstr_per_s=" << tel.minstrPerSec()
        << " jobs=" << tel.jobs << '\n';
    // Columns come from the shared metric table (src/obs/metrics.cc):
    // one naming authority for CSV, --metrics-json and docs/METRICS.md.
    out << "workload,category";
    for (const RunMetricDesc &d : runMetrics())
        out << ',' << d.name;
    out << '\n';
    for (const RunResult &r : res.runs) {
        out << r.workload << ',' << r.category;
        for (const RunMetricDesc &d : runMetrics()) {
            const double v = d.get(r);
            out << ',';
            if (d.integral)
                out << static_cast<std::uint64_t>(v);
            else
                out << v;
        }
        out << '\n';
    }
    std::printf("wrote %zu rows to %s\n", res.runs.size(),
                path.c_str());
}

/** Write every observability artifact the flags requested. */
void
writeObsOutputs(const Options &opt, const std::vector<RunResult> &runs)
{
    std::vector<const ObsRun *> obs;
    for (const RunResult &r : runs)
        if (r.obs)
            obs.push_back(r.obs.get());
    if (obs.empty())
        return;

    if (!opt.traceOut.empty()) {
        std::ofstream out = openOrDie(opt.traceOut);
        writeChromeTrace(out, obs);
        std::printf("wrote Chrome trace (%zu runs) to %s\n",
                    obs.size(), opt.traceOut.c_str());
    }
    if (!opt.traceKonata.empty()) {
        if (obs.size() == 1) {
            std::ofstream out = openOrDie(opt.traceKonata);
            writeKonata(out, *obs.front());
            std::printf("wrote Konata log to %s\n",
                        opt.traceKonata.c_str());
        } else {
            // One file per run, workload tag inserted before the
            // extension (konataRunPath; naming in docs/TRACING.md).
            for (const ObsRun *o : obs) {
                const std::string path =
                    konataRunPath(opt.traceKonata, o->workload);
                std::ofstream out = openOrDie(path);
                writeKonata(out, *o);
            }
            std::printf("wrote %zu Konata logs (one per workload, "
                        "first: %s)\n",
                        obs.size(),
                        konataRunPath(opt.traceKonata,
                                      obs.front()->workload)
                            .c_str());
        }
    }
    if (!opt.forensicsCsv.empty()) {
        std::ofstream out = openOrDie(opt.forensicsCsv);
        writeForensicsCsv(out, obs);
        std::size_t rows = 0;
        for (const ObsRun *o : obs)
            rows += o->squashes.size();
        std::printf("wrote %zu squash rows to %s\n", rows,
                    opt.forensicsCsv.c_str());
    }
    if (opt.topOffenders > 0) {
        const auto rows = topOffenders(obs, opt.topOffenders);
        std::printf("\ntop %zu mispredicting PCs:\n%s", rows.size(),
                    formatOffenders(rows).c_str());
    }
    if (!opt.metricsJson.empty()) {
        std::ofstream out = openOrDie(opt.metricsJson);
        out << "{\n  \"runs\": [\n";
        for (std::size_t i = 0; i < runs.size(); ++i) {
            const RunResult &r = runs[i];
            MetricsRegistry reg;
            registerRunMetrics(reg, r);
            if (r.obs) {
                reg.histogram("resolve_latency", "cycles",
                              "Fetch-to-resolve latency per squashed "
                              "branch",
                              r.obs->resolveLatency);
                reg.histogram("rob_occupancy_at_squash", "entries",
                              "ROB occupancy at each misprediction "
                              "flush",
                              r.obs->robOccupancy);
                reg.histogram("repair_walk_length", "entries",
                              "OBQ entries examined per repair episode",
                              r.obs->walkLength);
            }
            out << "    {\"workload\": \"" << r.workload
                << "\", \"category\": \"" << r.category
                << "\", \"metrics\": ";
            reg.writeJson(out);
            out << "    }" << (i + 1 < runs.size() ? "," : "") << '\n';
        }
        out << "  ]\n}\n";
        std::printf("wrote metrics for %zu runs to %s\n", runs.size(),
                    opt.metricsJson.c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseOptions(argc, argv, opt))
        return 1;

    if (opt.list) {
        std::printf("categories (Table 1):\n");
        for (std::size_t i = 0; i < categoryProfiles().size(); ++i) {
            const auto &p = categoryProfiles()[i];
            std::printf("  [%zu] %-10s %u workloads\n", i,
                        p.name.c_str(), p.count);
        }
        std::printf("\nusage: --workload <Category:N> or --suite "
                    "<N|all>\n");
        return 0;
    }

    const SimConfig cfg = makeConfig(opt);

    if (opt.workload) {
        const auto &[cat_name, idx] = *opt.workload;
        const CategoryProfile *prof = nullptr;
        for (const auto &p : categoryProfiles())
            if (p.name == cat_name)
                prof = &p;
        if (!prof) {
            std::fprintf(stderr, "unknown category %s (try --list)\n",
                         cat_name.c_str());
            return 1;
        }
        if (idx >= prof->count) {
            std::fprintf(stderr, "%s has only %u workloads\n",
                         cat_name.c_str(), prof->count);
            return 1;
        }
        const Program prog =
            buildWorkload(*prof, idx, SuiteOptions{}.seed);
        Stopwatch sw;
        const RunResult r = runOne(prog, cfg);
        const double wall = sw.seconds();
        printRun(r);
        const std::uint64_t sim = r.stats.retiredInstrs + cfg.warmupInstrs;
        std::printf("wall %.2fs, %.2f Msim-instr/s\n", wall,
                    wall > 0.0
                        ? static_cast<double>(sim) / wall / 1e6
                        : 0.0);
        writeObsOutputs(opt, {r});
        return 0;
    }

    if (opt.suite == 0 && !opt.fullSuite) {
        usage();
        return 1;
    }

    SuiteOptions sopts;
    sopts.maxWorkloads = opt.fullSuite ? 0 : opt.suite;
    const auto suite = buildSuite(sopts);
    std::printf("running %zu workloads, scheme=%s, jobs=%u ...\n",
                suite.size(), opt.scheme.c_str(),
                resolveJobs(opt.jobs));
    const SuiteResult res = runSuite(suite, cfg, opt.jobs);
    for (const RunResult &r : res.runs)
        printRun(r);

    // Aggregate footer.
    std::uint64_t misp = 0, instr = 0, cyc = 0;
    for (const RunResult &r : res.runs) {
        misp += r.stats.mispredicts;
        instr += r.stats.retiredInstrs;
        cyc += r.stats.cycles;
    }
    std::printf("\naggregate: MPKI %.2f, IPC %.3f over %llu "
                "instructions\n",
                instr ? 1000.0 * misp / instr : 0.0,
                cyc ? static_cast<double>(instr) / cyc : 0.0,
                static_cast<unsigned long long>(instr));
    std::printf("wall %.2fs, %.2f Msim-instr/s (jobs=%u)\n",
                res.telemetry.wallSeconds, res.telemetry.minstrPerSec(),
                res.telemetry.jobs);

    if (!opt.csvPath.empty())
        writeCsv(opt.csvPath, res);
    if (!opt.throughputJson.empty())
        TelemetryRegistry::process().writeJson(opt.throughputJson,
                                               "lbpsim");
    writeObsOutputs(opt, res.runs);
    return 0;
}
