/**
 * @file
 * lbpsim — command-line front-end for the simulator.
 *
 * Run any workload (or the whole suite) under any predictor/repair
 * configuration and print per-run or aggregated results, optionally as
 * CSV for plotting.
 *
 *   lbpsim --workload Server:0 --scheme forward-walk --ports 32-4-2
 *   lbpsim --suite 21 --scheme perfect --loop 256 --csv out.csv
 *   lbpsim --list
 *
 * Exit codes: 0 ok, 1 bad usage (fatal() semantics).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "common/stats.hh"
#include "common/telemetry.hh"
#include "common/thread_pool.hh"
#include "sim/runner.hh"
#include "workload/suite.hh"

using namespace lbp;

namespace {

struct Options
{
    std::optional<std::pair<std::string, unsigned>> workload;
    unsigned suite = 0;           ///< 0 = no suite run
    bool fullSuite = false;
    std::string scheme = "baseline";
    RepairPorts ports{32, 4, 2};
    bool coalesce = false;
    unsigned limitedM = 4;
    unsigned loopEntries = 128;
    unsigned tageKB = 7;
    std::uint64_t warmup = 40000;
    std::uint64_t instrs = 60000;
    std::string csvPath;
    std::string throughputJson;
    unsigned jobs = 0;            ///< 0 = REPRO_JOBS / hardware
    bool list = false;
};

void
usage()
{
    std::puts(
        "lbpsim — local-branch-predictor repair simulator\n"
        "\n"
        "  --list                     print categories and named "
        "workloads\n"
        "  --workload <Category:N>    simulate one workload (e.g. "
        "Server:0)\n"
        "  --suite <N|all>            simulate N suite workloads "
        "(category-proportional)\n"
        "  --scheme <name>            baseline | perfect | no-repair | "
        "retire-update |\n"
        "                             backward-walk | snapshot | "
        "forward-walk |\n"
        "                             limited-pc | multi-stage | "
        "future-file\n"
        "  --ports <M-N-P>            OBQ/SQ entries, read ports, BHT "
        "write ports\n"
        "  --coalesce                 enable OBQ entry merging\n"
        "  --limited-m <M>            PCs repaired by limited-pc\n"
        "  --loop <64|128|256>        CBPw-Loop BHT/PT entries\n"
        "  --tage <7|9|57>            TAGE configuration (KB)\n"
        "  --warmup <N> --instr <N>   instruction budgets\n"
        "  --csv <path>               write per-workload results as "
        "CSV\n"
        "  --jobs <N>                 worker threads for suite runs "
        "(default:\n"
        "                             REPRO_JOBS, else hardware "
        "concurrency)\n"
        "  --throughput-json <path>   dump throughput telemetry as "
        "JSON\n");
}

std::optional<RepairKind>
parseScheme(const std::string &s)
{
    const struct
    {
        const char *name;
        RepairKind kind;
    } names[] = {
        {"perfect", RepairKind::Perfect},
        {"no-repair", RepairKind::NoRepair},
        {"retire-update", RepairKind::RetireUpdate},
        {"backward-walk", RepairKind::BackwardWalk},
        {"snapshot", RepairKind::Snapshot},
        {"forward-walk", RepairKind::ForwardWalk},
        {"limited-pc", RepairKind::LimitedPc},
        {"multi-stage", RepairKind::MultiStage},
        {"future-file", RepairKind::FutureFile},
    };
    for (const auto &n : names)
        if (s == n.name)
            return n.kind;
    return std::nullopt;
}

bool
parseOptions(int argc, char **argv, Options &opt)
{
    const auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", argv[i]);
            return nullptr;
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else if (a == "--list") {
            opt.list = true;
        } else if (a == "--workload") {
            const char *v = need(i);
            if (!v)
                return false;
            const char *colon = std::strchr(v, ':');
            if (!colon) {
                std::fprintf(stderr, "--workload wants Category:N\n");
                return false;
            }
            opt.workload = {{std::string(v, colon - v),
                             static_cast<unsigned>(
                                 std::atoi(colon + 1))}};
        } else if (a == "--suite") {
            const char *v = need(i);
            if (!v)
                return false;
            if (std::string(v) == "all")
                opt.fullSuite = true;
            else
                opt.suite = static_cast<unsigned>(std::atoi(v));
        } else if (a == "--scheme") {
            const char *v = need(i);
            if (!v)
                return false;
            opt.scheme = v;
        } else if (a == "--ports") {
            const char *v = need(i);
            if (!v)
                return false;
            unsigned m = 0, n = 0, p = 0;
            if (std::sscanf(v, "%u-%u-%u", &m, &n, &p) != 3) {
                std::fprintf(stderr, "--ports wants M-N-P\n");
                return false;
            }
            opt.ports = {m, n, p};
        } else if (a == "--coalesce") {
            opt.coalesce = true;
        } else if (a == "--limited-m") {
            const char *v = need(i);
            if (!v)
                return false;
            opt.limitedM = static_cast<unsigned>(std::atoi(v));
        } else if (a == "--loop") {
            const char *v = need(i);
            if (!v)
                return false;
            opt.loopEntries = static_cast<unsigned>(std::atoi(v));
        } else if (a == "--tage") {
            const char *v = need(i);
            if (!v)
                return false;
            opt.tageKB = static_cast<unsigned>(std::atoi(v));
        } else if (a == "--warmup") {
            const char *v = need(i);
            if (!v)
                return false;
            opt.warmup = std::strtoull(v, nullptr, 10);
        } else if (a == "--instr") {
            const char *v = need(i);
            if (!v)
                return false;
            opt.instrs = std::strtoull(v, nullptr, 10);
        } else if (a == "--csv") {
            const char *v = need(i);
            if (!v)
                return false;
            opt.csvPath = v;
        } else if (a == "--jobs") {
            const char *v = need(i);
            if (!v)
                return false;
            opt.jobs = static_cast<unsigned>(std::atoi(v));
        } else if (a == "--throughput-json") {
            const char *v = need(i);
            if (!v)
                return false;
            opt.throughputJson = v;
        } else {
            std::fprintf(stderr, "unknown option %s\n", a.c_str());
            usage();
            return false;
        }
    }
    return true;
}

SimConfig
makeConfig(const Options &opt)
{
    SimConfig cfg;
    cfg.warmupInstrs = opt.warmup;
    cfg.measureInstrs = opt.instrs;
    switch (opt.tageKB) {
      case 7: cfg.tage = TageConfig::kb7(); break;
      case 9: cfg.tage = TageConfig::kb9(); break;
      case 57: cfg.tage = TageConfig::kb57(); break;
      default:
        std::fprintf(stderr, "--tage must be 7, 9 or 57\n");
        std::exit(1);
    }
    if (opt.scheme != "baseline") {
        const auto kind = parseScheme(opt.scheme);
        if (!kind) {
            std::fprintf(stderr, "unknown scheme %s\n",
                         opt.scheme.c_str());
            std::exit(1);
        }
        cfg.useLocal = true;
        cfg.repair.kind = *kind;
        cfg.repair.ports = opt.ports;
        cfg.repair.coalesce = opt.coalesce;
        cfg.repair.limitedM = opt.limitedM;
        switch (opt.loopEntries) {
          case 64: cfg.repair.loop = LoopConfig::entries64(); break;
          case 128: cfg.repair.loop = LoopConfig::entries128(); break;
          case 256: cfg.repair.loop = LoopConfig::entries256(); break;
          default:
            std::fprintf(stderr, "--loop must be 64, 128 or 256\n");
            std::exit(1);
        }
    }
    return cfg;
}

void
printRun(const RunResult &r)
{
    std::printf("%-22s %-9s IPC %6.3f  MPKI %6.2f  misp %7llu  "
                "overrides %7llu (%5.1f%% ok)  repairs %6llu\n",
                r.workload.c_str(), r.category.c_str(), r.ipc, r.mpki,
                static_cast<unsigned long long>(r.stats.mispredicts),
                static_cast<unsigned long long>(r.overrides),
                r.overrides ? 100.0 * r.overridesCorrect / r.overrides
                            : 0.0,
                static_cast<unsigned long long>(r.repairs));
    if (r.auditChecks || r.auditViolations) {
        std::printf("  audit: %llu checks, %llu violations, "
                    "%llu resyncs, %llu skipped, %llu uncovered\n",
                    static_cast<unsigned long long>(r.auditChecks),
                    static_cast<unsigned long long>(r.auditViolations),
                    static_cast<unsigned long long>(r.auditResyncs),
                    static_cast<unsigned long long>(r.auditSkipped),
                    static_cast<unsigned long long>(r.auditUncovered));
    }
}

void
writeCsv(const std::string &path, const SuiteResult &res)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(1);
    }
    const SuiteTelemetry &tel = res.telemetry;
    out << "# wall_s=" << tel.wallSeconds
        << " minstr_per_s=" << tel.minstrPerSec()
        << " jobs=" << tel.jobs << '\n';
    out << "workload,category,ipc,mpki,mispredicts,instructions,"
           "cycles,retired_cond,fetched,wrong_path_fetched,"
           "btb_misses,overrides,overrides_correct,repairs,"
           "repair_writes,early_resteers,early_resteers_wrong,"
           "uncheckpointed,denied_predictions,skipped_spec_updates,"
           "avg_walk_length,audit_checks,audit_violations,"
           "cache_accesses,cache_misses,cache_prefetch_fills\n";
    for (const RunResult &r : res.runs) {
        out << r.workload << ',' << r.category << ',' << r.ipc << ','
            << r.mpki << ',' << r.stats.mispredicts << ','
            << r.stats.retiredInstrs << ',' << r.stats.cycles << ','
            << r.stats.retiredCond << ',' << r.stats.fetchedInstrs
            << ',' << r.stats.wrongPathFetched << ','
            << r.stats.btbMisses << ',' << r.overrides << ','
            << r.overridesCorrect << ',' << r.repairs << ','
            << r.repairWrites << ',' << r.earlyResteers << ','
            << r.earlyResteersWrong << ','
            << r.uncheckpointedMispredicts << ','
            << r.deniedPredictions << ',' << r.skippedSpecUpdates
            << ',' << r.avgWalkLength << ',' << r.auditChecks << ','
            << r.auditViolations << ',' << r.cacheAccesses << ','
            << r.cacheMisses << ',' << r.cachePrefetchFills << '\n';
    }
    std::printf("wrote %zu rows to %s\n", res.runs.size(),
                path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseOptions(argc, argv, opt))
        return 1;

    if (opt.list) {
        std::printf("categories (Table 1):\n");
        for (std::size_t i = 0; i < categoryProfiles().size(); ++i) {
            const auto &p = categoryProfiles()[i];
            std::printf("  [%zu] %-10s %u workloads\n", i,
                        p.name.c_str(), p.count);
        }
        std::printf("\nusage: --workload <Category:N> or --suite "
                    "<N|all>\n");
        return 0;
    }

    const SimConfig cfg = makeConfig(opt);

    if (opt.workload) {
        const auto &[cat_name, idx] = *opt.workload;
        const CategoryProfile *prof = nullptr;
        for (const auto &p : categoryProfiles())
            if (p.name == cat_name)
                prof = &p;
        if (!prof) {
            std::fprintf(stderr, "unknown category %s (try --list)\n",
                         cat_name.c_str());
            return 1;
        }
        if (idx >= prof->count) {
            std::fprintf(stderr, "%s has only %u workloads\n",
                         cat_name.c_str(), prof->count);
            return 1;
        }
        const Program prog =
            buildWorkload(*prof, idx, SuiteOptions{}.seed);
        Stopwatch sw;
        const RunResult r = runOne(prog, cfg);
        const double wall = sw.seconds();
        printRun(r);
        const std::uint64_t sim = r.stats.retiredInstrs + cfg.warmupInstrs;
        std::printf("wall %.2fs, %.2f Msim-instr/s\n", wall,
                    wall > 0.0
                        ? static_cast<double>(sim) / wall / 1e6
                        : 0.0);
        return 0;
    }

    if (opt.suite == 0 && !opt.fullSuite) {
        usage();
        return 1;
    }

    SuiteOptions sopts;
    sopts.maxWorkloads = opt.fullSuite ? 0 : opt.suite;
    const auto suite = buildSuite(sopts);
    std::printf("running %zu workloads, scheme=%s, jobs=%u ...\n",
                suite.size(), opt.scheme.c_str(),
                resolveJobs(opt.jobs));
    const SuiteResult res = runSuite(suite, cfg, opt.jobs);
    for (const RunResult &r : res.runs)
        printRun(r);

    // Aggregate footer.
    std::uint64_t misp = 0, instr = 0, cyc = 0;
    for (const RunResult &r : res.runs) {
        misp += r.stats.mispredicts;
        instr += r.stats.retiredInstrs;
        cyc += r.stats.cycles;
    }
    std::printf("\naggregate: MPKI %.2f, IPC %.3f over %llu "
                "instructions\n",
                instr ? 1000.0 * misp / instr : 0.0,
                cyc ? static_cast<double>(instr) / cyc : 0.0,
                static_cast<unsigned long long>(instr));
    std::printf("wall %.2fs, %.2f Msim-instr/s (jobs=%u)\n",
                res.telemetry.wallSeconds, res.telemetry.minstrPerSec(),
                res.telemetry.jobs);

    if (!opt.csvPath.empty())
        writeCsv(opt.csvPath, res);
    if (!opt.throughputJson.empty())
        TelemetryRegistry::process().writeJson(opt.throughputJson,
                                               "lbpsim");
    return 0;
}
