#!/usr/bin/env python3
"""Domain-specific lint for the lbp simulator tree.

Rules (each finding is printed as ``rule:file:line: message``):

  predictor-repair-interface
      Every class deriving from LocalPredictor that performs
      predict-time speculative updates (declares ``specUpdate``) must
      also declare the full checkpoint/repair interface the schemes in
      src/repair/scheme.hh rely on. A predictor without it silently
      opts out of misprediction repair — the exact bug class the paper
      studies.

  stats-counter-reported
      Every counter field registered in a ``*Stats`` struct in src/
      must be referenced by the reporting layer (src/sim/, src/obs/,
      tools/, bench/). An unreported counter is dead weight at best and
      a silently-dropped result at worst.

  obs-doc-comment
      Every namespace-scope struct/class in an src/obs/ or src/serve/
      header must be preceded by a doc comment (``///`` line or a
      ``*/`` block end). The observability layer is the repo's public
      reporting surface — docs/METRICS.md and docs/TRACING.md are
      generated against these types — and the serve headers are the
      daemon's public protocol surface, which docs/SERVER.md is
      written against, so an undocumented type is an undocumented
      export. The sweep-observability headers (src/sim/sweep.hh,
      src/sim/result_store.hh), the runner surface (src/sim/runner.hh),
      the wire-format helpers (common/jsonl.hh, common/socket.hh) and
      the public src/common containers (ring_queue.hh, event_wheel.hh,
      sat_counter.hh, set_assoc.hh) are part of the same surface and
      are held to the same rule; for class templates the doc comment
      sits above the ``template <...>`` introducer.

  include-guard / no-parent-include
      Headers guard with LBP_<DIR>_<FILE>_HH matching their path, and
      project includes are rooted at src/ (no "../" escapes).

The scope-sensitive rules that used to live here (no-raw-assert /
no-raw-random / no-raw-time / no-raw-thread and no-hot-path-alloc)
moved to tools/lbp_analyze.py, which re-hosts them on a brace-scope
model with scope-level allows instead of per-file exemption lists.

Usage:
    lbp_lint.py <repo_root>            lint <repo_root>/src
    lbp_lint.py --self-test <repo_root>
        run against tools/lint_fixtures/ and verify every seeded
        violation is caught and the clean fixture stays clean
"""

import re
import sys
from pathlib import Path

REPAIR_INTERFACE = [
    "readState",
    "writeState",
    "advanceState",
    "invalidateEntry",
    "setAllRepairBits",
    "testClearRepairBit",
    "snapshotBht",
    "restoreBht",
]

REPORTING_DIRS = ["src/sim", "src/obs", "tools", "bench"]

CPP_SUFFIXES = {".cc", ".hh", ".cpp", ".hpp", ".h"}


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return f"{self.rule}:{self.path}:{self.line}: {self.message}"


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals. Length-preserving:
    every non-newline character is replaced by a space, so offsets and
    line numbers in the stripped text match the original."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            out.extend(ch if ch == "\n" else " " for ch in text[i:j + 2])
            i = j + 2
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out.append(" ")
                    i += 1
                    if i < n:
                        out.append(" " if text[i] != "\n" else "\n")
                        i += 1
                else:
                    out.append(" " if text[i] != "\n" else "\n")
                    i += 1
            if i < n:
                out.append(" ")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def iter_source_files(root):
    for path in sorted(root.rglob("*")):
        if path.suffix in CPP_SUFFIXES and path.is_file():
            yield path


def class_bodies(text):
    """Yield (name, bases, body, line) for each class/struct with an
    inheritance list. Input must already be comment-stripped."""
    pattern = re.compile(
        r"\b(?:class|struct)\s+(\w+)\s*(?:final\s*)?:\s*([^{;]+)\{")
    for m in pattern.finditer(text):
        depth = 1
        i = m.end()
        while i < len(text) and depth:
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
            i += 1
        yield m.group(1), m.group(2), text[m.end():i - 1], \
            line_of(text, m.start())


# ---------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------

def check_predictor_interface(path, stripped, findings):
    for name, bases, body, line in class_bodies(stripped):
        if "LocalPredictor" not in bases:
            continue
        if not re.search(r"\bspecUpdate\s*\(", body):
            continue
        missing = [fn for fn in REPAIR_INTERFACE
                   if not re.search(r"\b%s\s*\(" % fn, body)]
        if missing:
            findings.append(Finding(
                "predictor-repair-interface", path, line,
                f"{name} performs speculative updates but does not "
                f"declare the repair interface "
                f"(missing: {', '.join(missing)})"))


STATS_FIELD = re.compile(
    r"\b(?:std::uint64_t|Distribution)\s+(\w+)\s*[=;]")


def collect_stats_fields(src_root):
    """(struct, field, path, line) for every counter field of a *Stats
    struct declared under src/."""
    fields = []
    for path in iter_source_files(src_root):
        if path.suffix not in {".hh", ".hpp", ".h"}:
            continue
        stripped = strip_comments_and_strings(
            path.read_text(encoding="utf-8"))
        pattern = re.compile(r"\bstruct\s+(\w*Stats)\s*\{")
        for m in pattern.finditer(stripped):
            depth = 1
            i = m.end()
            while i < len(stripped) and depth:
                if stripped[i] == "{":
                    depth += 1
                elif stripped[i] == "}":
                    depth -= 1
                i += 1
            body = stripped[m.end():i - 1]
            for fm in STATS_FIELD.finditer(body):
                fields.append((m.group(1), fm.group(1), path,
                               line_of(stripped, m.end() + fm.start())))
    return fields


def check_stats_reported(repo_root, src_root, findings):
    corpus = []
    for rel in REPORTING_DIRS:
        d = repo_root / rel
        if not d.is_dir():
            continue
        for path in iter_source_files(d):
            corpus.append(strip_comments_and_strings(
                path.read_text(encoding="utf-8")))
    blob = "\n".join(corpus)
    for struct, field, path, line in collect_stats_fields(src_root):
        if not re.search(r"\b%s\b" % re.escape(field), blob):
            findings.append(Finding(
                "stats-counter-reported", path, line,
                f"{struct}::{field} is registered but never referenced "
                f"by the reporting layer ({', '.join(REPORTING_DIRS)})"))


# Doc-comment rule for the observability layer: namespace-scope types
# in src/obs/ headers are the export surface the docs describe. The
# sweep orchestrator, result store and runner headers are reporting
# surface too (docs/SWEEP.md, docs/METRICS.md and the manifest schema
# are written against them), and the public src/common containers are
# the building blocks every layer reuses — all opt in by exact path
# suffix.
OBS_DECL = re.compile(r"(?<!enum )\b(?:class|struct)\s+(\w+)")

OBS_DOC_EXTRA_HEADERS = (
    "sim/sweep.hh", "sim/result_store.hh", "sim/runner.hh",
    "common/ring_queue.hh", "common/event_wheel.hh",
    "common/sat_counter.hh", "common/set_assoc.hh",
    "common/jsonl.hh", "common/socket.hh",
)


def check_obs_doc_comments(path, raw, stripped, findings):
    posix = str(path).replace("\\", "/")
    if path.suffix not in {".hh", ".hpp", ".h"}:
        return
    # src/serve/ headers are the daemon's public protocol surface —
    # docs/SERVER.md and docs/METRICS.md are written against them, so
    # they are held to the same doc-comment bar as src/obs/.
    if "/obs/" not in posix and "/serve/" not in posix and \
            not posix.endswith(OBS_DOC_EXTRA_HEADERS):
        return
    # Namespace braces do not open a nesting scope for this rule: types
    # directly inside `namespace lbp {` count as namespace-scope.
    ns_braces = {m.end() - 1
                 for m in re.finditer(r"\bnamespace\s+\w*\s*\{",
                                      stripped)}
    decls = {m.start(): m for m in OBS_DECL.finditer(stripped)}
    raw_lines = raw.splitlines()
    depth = 0
    for pos, ch in enumerate(stripped):
        if pos in decls and depth == 0:
            m = decls[pos]
            brace = stripped.find("{", m.end())
            semi = stripped.find(";", m.end())
            # A ';' before any '{' is a forward declaration: no body to
            # document here.
            if brace >= 0 and not (0 <= semi < brace):
                line = line_of(stripped, m.start())
                # For class templates the doc comment sits above the
                # template introducer, so walk past template<...>
                # header lines first.
                ln = line - 1
                while ln >= 1 and \
                        raw_lines[ln - 1].lstrip().startswith(
                            "template"):
                    ln -= 1
                prev = raw_lines[ln - 1].strip() if ln >= 1 else ""
                if not (prev.startswith("///") or prev.endswith("*/")):
                    findings.append(Finding(
                        "obs-doc-comment", path, line,
                        f"{m.group(1)} is part of the observability "
                        f"export surface and needs a /// or /** doc "
                        f"comment"))
        if ch == "{":
            if pos not in ns_braces:
                depth += 1
        elif ch == "}":
            if depth > 0:
                depth -= 1


GUARD_IFNDEF = re.compile(r"#\s*ifndef\s+(\w+)")


def expected_guard(src_root, path):
    rel = path.relative_to(src_root)
    parts = [p.upper() for p in rel.parts[:-1]]
    stem = re.sub(r"[^A-Za-z0-9]", "_", rel.stem).upper()
    return "_".join(["LBP"] + parts + [stem]) + "_HH"


def check_include_hygiene(src_root, path, raw, stripped, findings):
    if path.suffix in {".hh", ".hpp", ".h"}:
        m = GUARD_IFNDEF.search(stripped)
        want = expected_guard(src_root, path)
        if not m or m.group(1) != want:
            got = m.group(1) if m else "none"
            findings.append(Finding(
                "include-guard", path,
                line_of(stripped, m.start()) if m else 1,
                f"include guard should be {want} (found {got})"))
    # Paths live inside string literals (blanked in the stripped text),
    # so scan the raw text and use the stripped text only to reject
    # matches sitting inside comments or strings.
    for m in re.finditer(r"#\s*include\s*\"(\.\./[^\"]*)\"", raw):
        if stripped[m.start()] != "#":
            continue
        findings.append(Finding(
            "no-parent-include", path, line_of(raw, m.start()),
            f"include \"{m.group(1)}\" escapes src/; use a src-rooted "
            f"path"))


# ---------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------

def lint_tree(repo_root, src_root, check_stats=True):
    findings = []
    for path in iter_source_files(src_root):
        raw = path.read_text(encoding="utf-8")
        stripped = strip_comments_and_strings(raw)
        check_predictor_interface(path, stripped, findings)
        check_obs_doc_comments(path, raw, stripped, findings)
        check_include_hygiene(src_root, path, raw, stripped, findings)
    if check_stats:
        check_stats_reported(repo_root, src_root, findings)
    return findings


def self_test(repo_root):
    fixtures = repo_root / "tools" / "lint_fixtures"
    if not fixtures.is_dir():
        print(f"lbp_lint: fixture directory {fixtures} missing")
        return 1

    findings = lint_tree(repo_root, fixtures, check_stats=False)
    # The fixture tree has its own tiny reporting layer.
    blob = strip_comments_and_strings(
        (fixtures / "reporting.cc").read_text(encoding="utf-8"))
    for struct, field, path, line in collect_stats_fields(fixtures):
        if not re.search(r"\b%s\b" % re.escape(field), blob):
            findings.append(Finding(
                "stats-counter-reported", path, line,
                f"{struct}::{field} unreported"))

    by_file = {}
    for f in findings:
        by_file.setdefault(Path(f.path).name, set()).add(f.rule)

    expect = {
        "bad_predictor.hh": {"predictor-repair-interface"},
        "bad_stats.hh": {"stats-counter-reported"},
        "bad_include.hh": {"include-guard", "no-parent-include"},
        "bad_obs.hh": {"obs-doc-comment"},
        "sweep.hh": {"obs-doc-comment"},
        "ring_queue.hh": {"obs-doc-comment"},
        "bad_serve.hh": {"obs-doc-comment"},
    }
    ok = True
    for name, rules in expect.items():
        got = by_file.get(name, set())
        for rule in rules:
            if rule not in got:
                print(f"lbp_lint self-test: {name} should trigger "
                      f"{rule} but did not")
                ok = False
    # bad_obs.hh seeds exactly one undocumented type; its documented,
    # forward-declared and nested types must all stay quiet.
    obs_doc = [f for f in findings
               if f.rule == "obs-doc-comment"
               and Path(f.path).name == "bad_obs.hh"]
    if len(obs_doc) != 1:
        print(f"lbp_lint self-test: bad_obs.hh should trigger exactly "
              f"1 obs-doc-comment finding, got {len(obs_doc)}")
        ok = False
    # sim/sweep.hh exercises the path-suffix extension of the same
    # rule: exactly one seeded undocumented type; the doc-commented,
    # forward-declared and nested types must stay quiet, and no other
    # rule may fire on it.
    sweep_fix = [f for f in findings
                 if Path(f.path).name == "sweep.hh"]
    if not (len(sweep_fix) == 1
            and sweep_fix[0].rule == "obs-doc-comment"):
        print(f"lbp_lint self-test: sim/sweep.hh should trigger "
              f"exactly 1 obs-doc-comment finding, got "
              f"{[(f.rule, f.line) for f in sweep_fix]}")
        ok = False
    # common/ring_queue.hh exercises the template-introducer case:
    # the documented template class must stay quiet, the undocumented
    # one must fire exactly once.
    ring_fix = [f for f in findings
                if Path(f.path).name == "ring_queue.hh"]
    if not (len(ring_fix) == 1
            and ring_fix[0].rule == "obs-doc-comment"):
        print(f"lbp_lint self-test: common/ring_queue.hh should "
              f"trigger exactly 1 obs-doc-comment finding, got "
              f"{[(f.rule, f.line) for f in ring_fix]}")
        ok = False
    # serve/bad_serve.hh exercises the serve-directory extension:
    # exactly one seeded undocumented type, everything else quiet.
    serve_fix = [f for f in findings
                 if Path(f.path).name == "bad_serve.hh"]
    if not (len(serve_fix) == 1
            and serve_fix[0].rule == "obs-doc-comment"):
        print(f"lbp_lint self-test: serve/bad_serve.hh should "
              f"trigger exactly 1 obs-doc-comment finding, got "
              f"{[(f.rule, f.line) for f in serve_fix]}")
        ok = False
    for name in ("clean.hh", "reporting.cc"):
        extra = by_file.get(name, set())
        if extra:
            print(f"lbp_lint self-test: {name} should be clean but "
                  f"triggered {sorted(extra)}")
            ok = False
    print("lbp_lint self-test: %s (%d findings across fixtures)" %
          ("PASS" if ok else "FAIL", len(findings)))
    return 0 if ok else 1


def main(argv):
    args = [a for a in argv[1:] if a != "--self-test"]
    if len(args) != 1:
        print(__doc__)
        return 2
    repo_root = Path(args[0]).resolve()
    if "--self-test" in argv:
        return self_test(repo_root)

    src_root = repo_root / "src"
    if not src_root.is_dir():
        print(f"lbp_lint: {src_root} is not a directory")
        return 2
    findings = lint_tree(repo_root, src_root)
    for f in sorted(findings, key=lambda f: (str(f.path), f.line)):
        print(f)
    if findings:
        print(f"lbp_lint: {len(findings)} finding(s)")
        return 1
    print("lbp_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
