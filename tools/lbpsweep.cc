/**
 * @file
 * lbpsweep — figure-sweep driver over the sweep orchestrator.
 *
 * Runs a set of configurations (the full figure set by default, or a
 * declarative spec file) over one suite as a concurrent cell queue
 * with the persistent result store, the JSON-lines event log, a live
 * progress/ETA line, and a final manifest + results CSV. Also hosts
 * the Figure-8 port-sensitivity analysis over squash forensics. With
 * --server it becomes a thin lbp-serve-v1 client: the sweep runs
 * inside a resident lbpserved (docs/SERVER.md) and the CSV, manifest
 * and event log come back byte-identical to a local run. Spec format,
 * store layout and manifest schema: docs/SWEEP.md.
 *
 *   lbpsweep --suite 8 --store .result-store --manifest manifest.json
 *   lbpsweep --spec sweep.spec --csv results.csv --event-log sweep.jsonl
 *   lbpsweep --server 127.0.0.1:7737 --csv results.csv
 *   lbpsweep --suite 8 --port-analysis ports.csv
 *
 * Exit codes: 0 ok, 1 bad usage, unwritable output or server failure.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/telemetry.hh"
#include "common/thread_pool.hh"
#include "obs/port_analysis.hh"
#include "serve/client.hh"
#include "sim/result_store.hh"
#include "sim/runner.hh"
#include "sim/suite_cache.hh"
#include "sim/sweep.hh"
#include "sim/sweep_spec.hh"
#include "workload/suite.hh"

using namespace lbp;

namespace {

struct Options
{
    std::string specPath;
    unsigned suite = 8;       ///< workload cap (0 via --suite all)
    bool fullSuite = false;
    std::uint64_t warmup = 40000;
    std::uint64_t instrs = 60000;
    unsigned jobs = 0;
    std::string storeDir;     ///< persistent store (REPRO_RESULT_STORE)
    bool storeFromFlag = false;  ///< --store given explicitly
    std::string eventLogPath;
    std::string manifestPath;
    std::string csvPath;
    std::string portAnalysisPath;
    std::string server;       ///< host:port of a resident lbpserved
    bool quiet = false;       ///< suppress the live progress line

    std::string traceId;      ///< request trace id (--trace)
    bool storeGc = false;     ///< --store-gc maintenance mode
    double gcAge = 0.0;       ///< --store-gc-age
    std::uint64_t gcBytes = 0;  ///< --store-gc-bytes
};

struct OptSpec
{
    const char *flag;
    const char *metavar;  ///< nullptr = boolean
    const char *help;
};

constexpr OptSpec kOptions[] = {
    {"--help", nullptr, "print this help and exit"},
    {"--spec", "<path>", "declarative sweep spec (docs/SWEEP.md); "
     "default: the full 11-config figure set"},
    {"--suite", "<N|all>", "workloads to sweep (default 8)"},
    {"--warmup", "<N>", "warm-up instruction budget (default 40000)"},
    {"--instr", "<N>", "measured instruction budget (default 60000)"},
    {"--jobs", "<N>", "worker threads (default REPRO_JOBS, else "
     "hardware concurrency)"},
    {"--store", "<dir>", "persistent result store directory (default "
     "$REPRO_RESULT_STORE; empty = no store)"},
    {"--event-log", "<path>", "append JSON-lines cell/config events"},
    {"--manifest", "<path>", "write the sweep manifest JSON"},
    {"--csv", "<path>", "write per-run results CSV"},
    {"--port-analysis", "<path>", "write the Figure-8 repair-port "
     "sensitivity CSV (runs a forensics pass)"},
    {"--server", "<host:port>", "run the sweep on a resident lbpserved "
     "instead of locally (docs/SERVER.md)"},
    {"--trace", "<id>", "request trace id stamped on every event "
     "record and the manifest (default: server-minted in --server "
     "mode, off locally)"},
    {"--store-gc", nullptr, "no sweep: garbage-collect the store by "
     "--store-gc-age/--store-gc-bytes and print the eviction audit"},
    {"--store-gc-age", "<secs>", "gc: evict entries older than this"},
    {"--store-gc-bytes", "<N>", "gc: then cap the store at N bytes, "
     "oldest first"},
    {"--quiet", nullptr, "suppress the live progress line"},
};

void
usage()
{
    std::printf("lbpsweep — concurrent figure-sweep orchestrator\n\n");
    for (const OptSpec &o : kOptions) {
        char left[48];
        std::snprintf(left, sizeof(left), "  %s%s%s", o.flag,
                      o.metavar ? " " : "", o.metavar ? o.metavar : "");
        std::printf("%-28s%s\n", left, o.help);
    }
}

[[noreturn]] void
die(const std::string &msg)
{
    std::fprintf(stderr, "lbpsweep: %s\n", msg.c_str());
    std::exit(1);
}

bool
parseOptions(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        const OptSpec *spec = nullptr;
        for (const OptSpec &o : kOptions)
            if (std::strcmp(argv[i], o.flag) == 0)
                spec = &o;
        if (!spec) {
            std::fprintf(stderr, "unknown option %s\n", argv[i]);
            usage();
            return false;
        }
        const char *v = nullptr;
        if (spec->metavar) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", argv[i]);
                return false;
            }
            v = argv[++i];
        }
        const std::string flag = spec->flag;
        if (flag == "--help") {
            usage();
            std::exit(0);
        } else if (flag == "--spec") {
            opt.specPath = v;
        } else if (flag == "--suite") {
            if (std::string(v) == "all") {
                opt.fullSuite = true;
                opt.suite = 0;
            } else {
                opt.suite = static_cast<unsigned>(std::atoi(v));
            }
        } else if (flag == "--warmup") {
            opt.warmup = std::strtoull(v, nullptr, 10);
        } else if (flag == "--instr") {
            opt.instrs = std::strtoull(v, nullptr, 10);
        } else if (flag == "--jobs") {
            opt.jobs = static_cast<unsigned>(std::atoi(v));
        } else if (flag == "--store") {
            opt.storeDir = v;
            opt.storeFromFlag = true;
        } else if (flag == "--event-log") {
            opt.eventLogPath = v;
        } else if (flag == "--manifest") {
            opt.manifestPath = v;
        } else if (flag == "--csv") {
            opt.csvPath = v;
        } else if (flag == "--port-analysis") {
            opt.portAnalysisPath = v;
        } else if (flag == "--server") {
            opt.server = v;
        } else if (flag == "--trace") {
            opt.traceId = v;
        } else if (flag == "--store-gc") {
            opt.storeGc = true;
        } else if (flag == "--store-gc-age") {
            opt.gcAge = std::atof(v);
        } else if (flag == "--store-gc-bytes") {
            opt.gcBytes = std::strtoull(v, nullptr, 10);
        } else if (flag == "--quiet") {
            opt.quiet = true;
        }
    }
    return true;
}

std::ofstream
openOrDie(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        die("cannot write " + path);
    return out;
}

/**
 * The Figure-8 port-sensitivity pass: a forensics-enabled forward-walk
 * run (the realistic repair scheme — its squash records carry the
 * OBQ-walk and BHT-write work), aggregated over candidate port counts.
 * Runs through runSuite directly: observability is excluded from cache
 * keys, so cached results carry no forensics records.
 */
void
runPortAnalysis(const std::vector<Program> &suite, const Options &opt)
{
    SimConfig cfg;
    cfg.warmupInstrs = opt.warmup;
    cfg.measureInstrs = opt.instrs;
    cfg.useLocal = true;
    cfg.repair.kind = RepairKind::ForwardWalk;
    cfg.obs.forensics = true;

    std::printf("port analysis: forensics pass over %zu workloads "
                "(forward-walk)...\n",
                suite.size());
    const SuiteResult res = runSuite(suite, cfg, opt.jobs);

    std::vector<const ObsRun *> obs;
    std::uint64_t records = 0;
    for (const RunResult &r : res.runs) {
        if (r.obs) {
            obs.push_back(r.obs.get());
            records += r.obs->squashes.size();
        }
    }
    const std::vector<unsigned> portCounts = {1, 2, 4, 8};
    const auto rows = portAnalysis(obs, portCounts);
    std::ofstream out = openOrDie(opt.portAnalysisPath);
    writePortAnalysisCsv(out, rows);
    std::printf("%s", formatPortAnalysis(rows).c_str());
    std::printf("port analysis: %llu squash records -> %s\n",
                static_cast<unsigned long long>(records),
                opt.portAnalysisPath.c_str());
}

/**
 * Maintenance mode (--store-gc): apply the age/size retention policy
 * to the persistent store without sweeping, and print every eviction
 * so the operation leaves an audit trail on the terminal.
 */
int
runStoreGc(const Options &opt)
{
    if (opt.storeDir.empty())
        die("--store-gc needs a store (--store or "
            "$REPRO_RESULT_STORE)");
    if (opt.gcAge <= 0.0 && opt.gcBytes == 0)
        die("--store-gc needs --store-gc-age and/or "
            "--store-gc-bytes");
    ResultStore store(opt.storeDir);
    StoreGcPolicy policy;
    policy.maxAgeSeconds = opt.gcAge;
    policy.maxBytes = opt.gcBytes;
    const std::vector<StoreAuditRecord> evicted = store.gc(policy);
    std::uint64_t bytes = 0;
    for (const StoreAuditRecord &rec : evicted) {
        bytes += rec.bytes;
        std::printf("evict %s (%s, %llu bytes, age %.0fs, "
                    "fingerprint %s)\n",
                    rec.file.c_str(), rec.reason.c_str(),
                    static_cast<unsigned long long>(rec.bytes),
                    rec.ageSeconds, rec.fingerprint.c_str());
    }
    std::printf("store gc: evicted %zu entries (%llu bytes) from %s\n",
                evicted.size(),
                static_cast<unsigned long long>(bytes),
                store.dir().c_str());
    return 0;
}

/** "store_hit" -> "store hit" for the summary table. */
std::string
tableOutcome(std::string s)
{
    for (char &c : s)
        if (c == '_')
            c = ' ';
    return s;
}

/**
 * Thin-client mode: the sweep runs inside a resident lbpserved; the
 * CLI flags and raw spec text ride in the submit frame so the server
 * resolves the request exactly as a local run would, and the summary,
 * CSV and manifest below come back byte-identical to local output.
 */
int
runServerMode(const Options &opt, const SweepSpec &spec,
              const std::string &specText,
              const std::vector<Program> &suite)
{
    if (!opt.portAnalysisPath.empty())
        die("--port-analysis runs locally; drop --server");
    if (opt.storeFromFlag)
        die("--store is server-side in --server mode (lbpserved "
            "--store)");
    if (opt.jobs)
        std::fprintf(stderr,
                     "lbpsweep: note: --jobs is server-side in "
                     "--server mode; ignoring\n");

    ServeClientOptions copts;
    const std::size_t colon = opt.server.rfind(':');
    if (colon == std::string::npos || colon + 1 >= opt.server.size())
        die("--server wants host:port");
    copts.host = opt.server.substr(0, colon);
    copts.port = static_cast<std::uint16_t>(
        std::atoi(opt.server.c_str() + colon + 1));
    copts.specText = specText;
    copts.suite = opt.suite;
    copts.fullSuite = opt.fullSuite;
    copts.warmupInstrs = opt.warmup;
    copts.measureInstrs = opt.instrs;
    copts.traceId = opt.traceId;
    copts.progress = opt.quiet ? nullptr : stderr;

    std::ofstream eventLog;
    if (!opt.eventLogPath.empty()) {
        eventLog.open(opt.eventLogPath, std::ios::app);
        if (!eventLog)
            die("cannot write " + opt.eventLogPath);
        copts.eventLog = &eventLog;
    }

    std::printf("sweeping %zu configs x %zu workloads (%llu warm-up + "
                "%llu measured instrs each, server=%s)\n",
                spec.configs.size(), suite.size(),
                static_cast<unsigned long long>(spec.warmupInstrs),
                static_cast<unsigned long long>(spec.measureInstrs),
                opt.server.c_str());

    ServeSweepResult res;
    std::string error;
    if (!runServeSweep(copts, res, error))
        die(error);
    if (res.dedup)
        std::printf("request coalesced with an identical in-flight "
                    "sweep on the server\n");
    if (!res.traceId.empty())
        std::printf("server trace id: %s\n", res.traceId.c_str());

    TextTable table({"config", "label", "outcome", "wall_s"});
    for (const auto &c : res.configs) {
        char wallBuf[32];
        std::snprintf(wallBuf, sizeof(wallBuf), "%.2f", c.wallSeconds);
        table.addRow({c.name, c.label, tableOutcome(c.outcome),
                      wallBuf});
    }
    std::printf("%s", table.render().c_str());

    const auto u64 = [&res](const char *name) {
        return static_cast<unsigned long long>(res.counter(name));
    };
    std::printf("cells: %llu total = %llu simulated + %llu store hits "
                "+ %llu cache hits\n",
                u64("sweep_cells_total"), u64("sweep_cells_simulated"),
                u64("sweep_cells_store_hit"),
                u64("sweep_cells_cache_hit"));
    if (u64("store_hits") || u64("store_misses") || u64("store_writes"))
        std::printf("store: %llu hits, %llu misses (%llu stale), "
                    "%llu writes -> server\n",
                    u64("store_hits"), u64("store_misses"),
                    u64("store_stale"), u64("store_writes"));
    std::printf("wall %.2fs (%.2f Minstr/s)\n",
                res.counter("sweep_wall_s"),
                res.counter("sweep_minstr_per_s"));

    if (!opt.manifestPath.empty()) {
        std::ofstream out = openOrDie(opt.manifestPath);
        out << res.manifest;
        std::printf("wrote manifest to %s\n", opt.manifestPath.c_str());
    }
    if (!opt.csvPath.empty()) {
        std::ofstream out = openOrDie(opt.csvPath);
        out << res.csv;
        std::printf("wrote results CSV to %s\n", opt.csvPath.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (const char *env = std::getenv("REPRO_RESULT_STORE"))
        opt.storeDir = env;
    if (!parseOptions(argc, argv, opt))
        return 1;

    if (opt.storeGc)
        return runStoreGc(opt);

    // Resolve the request through the shared spec grammar
    // (sim/sweep_spec.hh) — the same code path a server submit takes.
    SweepSpec spec;
    spec.suite = opt.suite;
    spec.fullSuite = opt.fullSuite;
    spec.warmupInstrs = opt.warmup;
    spec.measureInstrs = opt.instrs;
    std::string specText;
    if (!opt.specPath.empty()) {
        std::ifstream in(opt.specPath);
        if (!in)
            die("cannot read spec " + opt.specPath);
        std::ostringstream raw;
        raw << in.rdbuf();
        specText = raw.str();
        std::string err;
        if (!parseSweepSpecText(specText, spec, err))
            die(err);
    }
    finalizeSweepSpec(spec);
    const std::vector<Program> suite = buildSpecSuite(spec);
    const std::vector<SweepConfig> &configs = spec.configs;

    if (!opt.server.empty())
        return runServerMode(opt, spec, specText, suite);

    std::printf("sweeping %zu configs x %zu workloads (%llu warm-up + "
                "%llu measured instrs each, jobs=%u)\n",
                configs.size(), suite.size(),
                static_cast<unsigned long long>(spec.warmupInstrs),
                static_cast<unsigned long long>(spec.measureInstrs),
                resolveJobs(opt.jobs));

    ResultStore store(opt.storeDir);
    std::ofstream eventLog;
    if (!opt.eventLogPath.empty()) {
        eventLog.open(opt.eventLogPath, std::ios::app);
        if (!eventLog)
            die("cannot write " + opt.eventLogPath);
    }

    SweepOptions sweepOpts;
    sweepOpts.jobs = opt.jobs;
    sweepOpts.store = opt.storeDir.empty() ? nullptr : &store;
    sweepOpts.eventLog = eventLog.is_open() ? &eventLog : nullptr;
    sweepOpts.progress = opt.quiet ? nullptr : stderr;
    sweepOpts.traceId = opt.traceId;

    const SweepResult res = runSweep(suite, configs, sweepOpts);

    // Per-config summary table.
    TextTable table({"config", "label", "outcome", "wall_s"});
    const std::size_t nw = suite.size();
    for (std::size_t c = 0; c < configs.size(); ++c) {
        double wall = 0.0;
        for (std::size_t w = 0; w < nw; ++w)
            wall += res.cells[c * nw + w].wallSeconds;
        const SweepCell::Outcome outcome = res.cells[c * nw].outcome;
        const char *name =
            outcome == SweepCell::Outcome::Simulated ? "simulated"
            : outcome == SweepCell::Outcome::StoreHit ? "store hit"
                                                      : "cache hit";
        char wallBuf[32];
        std::snprintf(wallBuf, sizeof(wallBuf), "%.2f", wall);
        table.addRow({configs[c].name, configLabel(configs[c].cfg),
                      name, wallBuf});
    }
    std::printf("%s", table.render().c_str());

    const SweepStats &s = res.stats;
    std::printf("cells: %llu total = %llu simulated + %llu store hits "
                "+ %llu cache hits\n",
                static_cast<unsigned long long>(s.cellsTotal),
                static_cast<unsigned long long>(s.cellsSimulated),
                static_cast<unsigned long long>(s.cellsStoreHit),
                static_cast<unsigned long long>(s.cellsCacheHit));
    if (sweepOpts.store)
        std::printf("store: %llu hits, %llu misses (%llu stale), "
                    "%llu writes -> %s\n",
                    static_cast<unsigned long long>(s.storeHits),
                    static_cast<unsigned long long>(s.storeMisses),
                    static_cast<unsigned long long>(s.storeStale),
                    static_cast<unsigned long long>(s.storeWrites),
                    store.dir().c_str());
    std::printf("wall %.2fs (%.2f Minstr/s)\n", s.wallSeconds,
                s.wallSeconds > 0.0
                    ? static_cast<double>(s.simInstrs) / 1e6 /
                          s.wallSeconds
                    : 0.0);

    if (!opt.manifestPath.empty()) {
        std::ofstream out = openOrDie(opt.manifestPath);
        writeSweepManifest(out, res, configs);
        std::printf("wrote manifest to %s\n", opt.manifestPath.c_str());
    }
    if (!opt.csvPath.empty()) {
        std::ofstream out = openOrDie(opt.csvPath);
        writeSweepCsv(out, res, configs);
        std::printf("wrote results CSV to %s\n", opt.csvPath.c_str());
    }
    if (!opt.portAnalysisPath.empty())
        runPortAnalysis(suite, opt);
    return 0;
}
