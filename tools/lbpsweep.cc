/**
 * @file
 * lbpsweep — figure-sweep driver over the sweep orchestrator.
 *
 * Runs a set of configurations (the full figure set by default, or a
 * declarative spec file) over one suite as a concurrent cell queue
 * with the persistent result store, the JSON-lines event log, a live
 * progress/ETA line, and a final manifest + results CSV. Also hosts
 * the Figure-8 port-sensitivity analysis over squash forensics. Spec
 * format, store layout and manifest schema: docs/SWEEP.md.
 *
 *   lbpsweep --suite 8 --store .result-store --manifest manifest.json
 *   lbpsweep --spec sweep.spec --csv results.csv --event-log sweep.jsonl
 *   lbpsweep --suite 8 --port-analysis ports.csv
 *
 * Exit codes: 0 ok, 1 bad usage or unwritable output.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/telemetry.hh"
#include "common/thread_pool.hh"
#include "obs/port_analysis.hh"
#include "sim/result_store.hh"
#include "sim/runner.hh"
#include "sim/suite_cache.hh"
#include "sim/sweep.hh"
#include "workload/suite.hh"

using namespace lbp;

namespace {

struct Options
{
    std::string specPath;
    unsigned suite = 8;       ///< workload cap (0 via --suite all)
    bool fullSuite = false;
    std::uint64_t warmup = 40000;
    std::uint64_t instrs = 60000;
    unsigned jobs = 0;
    std::string storeDir;     ///< persistent store (REPRO_RESULT_STORE)
    std::string eventLogPath;
    std::string manifestPath;
    std::string csvPath;
    std::string portAnalysisPath;
    bool quiet = false;       ///< suppress the live progress line
};

struct OptSpec
{
    const char *flag;
    const char *metavar;  ///< nullptr = boolean
    const char *help;
};

constexpr OptSpec kOptions[] = {
    {"--help", nullptr, "print this help and exit"},
    {"--spec", "<path>", "declarative sweep spec (docs/SWEEP.md); "
     "default: the full 11-config figure set"},
    {"--suite", "<N|all>", "workloads to sweep (default 8)"},
    {"--warmup", "<N>", "warm-up instruction budget (default 40000)"},
    {"--instr", "<N>", "measured instruction budget (default 60000)"},
    {"--jobs", "<N>", "worker threads (default REPRO_JOBS, else "
     "hardware concurrency)"},
    {"--store", "<dir>", "persistent result store directory (default "
     "$REPRO_RESULT_STORE; empty = no store)"},
    {"--event-log", "<path>", "append JSON-lines cell/config events"},
    {"--manifest", "<path>", "write the sweep manifest JSON"},
    {"--csv", "<path>", "write per-run results CSV"},
    {"--port-analysis", "<path>", "write the Figure-8 repair-port "
     "sensitivity CSV (runs a forensics pass)"},
    {"--quiet", nullptr, "suppress the live progress line"},
};

void
usage()
{
    std::printf("lbpsweep — concurrent figure-sweep orchestrator\n\n");
    for (const OptSpec &o : kOptions) {
        char left[48];
        std::snprintf(left, sizeof(left), "  %s%s%s", o.flag,
                      o.metavar ? " " : "", o.metavar ? o.metavar : "");
        std::printf("%-28s%s\n", left, o.help);
    }
}

/** Scheme-name -> RepairKind mapping shared with the spec parser. */
bool
schemeKind(const std::string &s, RepairKind &kind)
{
    const struct
    {
        const char *name;
        RepairKind k;
    } names[] = {
        {"perfect", RepairKind::Perfect},
        {"no-repair", RepairKind::NoRepair},
        {"retire-update", RepairKind::RetireUpdate},
        {"backward-walk", RepairKind::BackwardWalk},
        {"snapshot", RepairKind::Snapshot},
        {"forward-walk", RepairKind::ForwardWalk},
        {"limited-pc", RepairKind::LimitedPc},
        {"multi-stage", RepairKind::MultiStage},
        {"future-file", RepairKind::FutureFile},
    };
    for (const auto &n : names) {
        if (s == n.name) {
            kind = n.k;
            return true;
        }
    }
    return false;
}

[[noreturn]] void
die(const std::string &msg)
{
    std::fprintf(stderr, "lbpsweep: %s\n", msg.c_str());
    std::exit(1);
}

/**
 * Parse one spec "config" line: scheme name followed by optional
 * ports=M-N-P, loop=64|128|256, tage=7|9|57, limited-m=M, coalesce,
 * name=<id> modifiers.
 */
SweepConfig
parseConfigLine(std::istringstream &ls, const Options &opt)
{
    std::string scheme;
    if (!(ls >> scheme))
        die("spec: 'config' needs a scheme name");

    SweepConfig sc;
    sc.name = scheme;
    sc.cfg.warmupInstrs = opt.warmup;
    sc.cfg.measureInstrs = opt.instrs;
    if (scheme != "baseline") {
        RepairKind kind;
        if (!schemeKind(scheme, kind))
            die("spec: unknown scheme '" + scheme + "'");
        sc.cfg.useLocal = true;
        sc.cfg.repair.kind = kind;
    }

    std::string tok;
    while (ls >> tok) {
        if (tok == "coalesce") {
            sc.cfg.repair.coalesce = true;
            continue;
        }
        const std::size_t eq = tok.find('=');
        if (eq == std::string::npos)
            die("spec: bad config modifier '" + tok + "'");
        const std::string k = tok.substr(0, eq);
        const std::string v = tok.substr(eq + 1);
        if (k == "name") {
            sc.name = v;
        } else if (k == "ports") {
            unsigned m = 0, n = 0, p = 0;
            if (std::sscanf(v.c_str(), "%u-%u-%u", &m, &n, &p) != 3)
                die("spec: ports wants M-N-P");
            sc.cfg.repair.ports = {m, n, p};
        } else if (k == "loop") {
            if (v == "64")
                sc.cfg.repair.loop = LoopConfig::entries64();
            else if (v == "128")
                sc.cfg.repair.loop = LoopConfig::entries128();
            else if (v == "256")
                sc.cfg.repair.loop = LoopConfig::entries256();
            else
                die("spec: loop must be 64, 128 or 256");
        } else if (k == "tage") {
            if (v == "7")
                sc.cfg.tage = TageConfig::kb7();
            else if (v == "9")
                sc.cfg.tage = TageConfig::kb9();
            else if (v == "57")
                sc.cfg.tage = TageConfig::kb57();
            else
                die("spec: tage must be 7, 9 or 57");
        } else if (k == "limited-m") {
            sc.cfg.repair.limitedM =
                static_cast<unsigned>(std::atoi(v.c_str()));
        } else {
            die("spec: unknown config key '" + k + "'");
        }
    }
    return sc;
}

/**
 * Read a sweep spec: '#' comments, blank lines, and
 * `suite N|all` / `warmup N` / `instr N` / `config <scheme> [mods]`
 * directives. suite/warmup/instr override the command line; config
 * lines replace the default figure set.
 */
std::vector<SweepConfig>
parseSpec(const std::string &path, Options &opt)
{
    std::ifstream in(path);
    if (!in)
        die("cannot read spec " + path);
    std::vector<SweepConfig> configs;
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ls(line);
        std::string word;
        if (!(ls >> word))
            continue;
        if (word == "suite") {
            std::string v;
            ls >> v;
            if (v == "all") {
                opt.fullSuite = true;
                opt.suite = 0;
            } else {
                opt.suite = static_cast<unsigned>(std::atoi(v.c_str()));
            }
        } else if (word == "warmup") {
            ls >> opt.warmup;
        } else if (word == "instr") {
            ls >> opt.instrs;
        } else if (word == "config") {
            configs.push_back(parseConfigLine(ls, opt));
        } else {
            die("spec: unknown directive '" + word + "'");
        }
    }
    return configs;
}

/** The default sweep: every figure configuration at CBPw-Loop128. */
std::vector<SweepConfig>
defaultConfigs(const Options &opt)
{
    const char *schemes[] = {
        "baseline",      "perfect",      "no-repair",
        "retire-update", "backward-walk", "snapshot",
        "forward-walk",  "forward-walk+merge", "limited-pc",
        "multi-stage",   "future-file",
    };
    std::vector<SweepConfig> configs;
    for (const char *s : schemes) {
        std::string scheme = s;
        const bool merge = scheme == "forward-walk+merge";
        std::istringstream mods(merge ? "forward-walk coalesce "
                                        "name=forward-walk+merge"
                                      : scheme);
        configs.push_back(parseConfigLine(mods, opt));
    }
    return configs;
}

bool
parseOptions(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        const OptSpec *spec = nullptr;
        for (const OptSpec &o : kOptions)
            if (std::strcmp(argv[i], o.flag) == 0)
                spec = &o;
        if (!spec) {
            std::fprintf(stderr, "unknown option %s\n", argv[i]);
            usage();
            return false;
        }
        const char *v = nullptr;
        if (spec->metavar) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", argv[i]);
                return false;
            }
            v = argv[++i];
        }
        const std::string flag = spec->flag;
        if (flag == "--help") {
            usage();
            std::exit(0);
        } else if (flag == "--spec") {
            opt.specPath = v;
        } else if (flag == "--suite") {
            if (std::string(v) == "all") {
                opt.fullSuite = true;
                opt.suite = 0;
            } else {
                opt.suite = static_cast<unsigned>(std::atoi(v));
            }
        } else if (flag == "--warmup") {
            opt.warmup = std::strtoull(v, nullptr, 10);
        } else if (flag == "--instr") {
            opt.instrs = std::strtoull(v, nullptr, 10);
        } else if (flag == "--jobs") {
            opt.jobs = static_cast<unsigned>(std::atoi(v));
        } else if (flag == "--store") {
            opt.storeDir = v;
        } else if (flag == "--event-log") {
            opt.eventLogPath = v;
        } else if (flag == "--manifest") {
            opt.manifestPath = v;
        } else if (flag == "--csv") {
            opt.csvPath = v;
        } else if (flag == "--port-analysis") {
            opt.portAnalysisPath = v;
        } else if (flag == "--quiet") {
            opt.quiet = true;
        }
    }
    return true;
}

std::ofstream
openOrDie(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        die("cannot write " + path);
    return out;
}

/**
 * The Figure-8 port-sensitivity pass: a forensics-enabled forward-walk
 * run (the realistic repair scheme — its squash records carry the
 * OBQ-walk and BHT-write work), aggregated over candidate port counts.
 * Runs through runSuite directly: observability is excluded from cache
 * keys, so cached results carry no forensics records.
 */
void
runPortAnalysis(const std::vector<Program> &suite, const Options &opt)
{
    SimConfig cfg;
    cfg.warmupInstrs = opt.warmup;
    cfg.measureInstrs = opt.instrs;
    cfg.useLocal = true;
    cfg.repair.kind = RepairKind::ForwardWalk;
    cfg.obs.forensics = true;

    std::printf("port analysis: forensics pass over %zu workloads "
                "(forward-walk)...\n",
                suite.size());
    const SuiteResult res = runSuite(suite, cfg, opt.jobs);

    std::vector<const ObsRun *> obs;
    std::uint64_t records = 0;
    for (const RunResult &r : res.runs) {
        if (r.obs) {
            obs.push_back(r.obs.get());
            records += r.obs->squashes.size();
        }
    }
    const std::vector<unsigned> portCounts = {1, 2, 4, 8};
    const auto rows = portAnalysis(obs, portCounts);
    std::ofstream out = openOrDie(opt.portAnalysisPath);
    writePortAnalysisCsv(out, rows);
    std::printf("%s", formatPortAnalysis(rows).c_str());
    std::printf("port analysis: %llu squash records -> %s\n",
                static_cast<unsigned long long>(records),
                opt.portAnalysisPath.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (const char *env = std::getenv("REPRO_RESULT_STORE"))
        opt.storeDir = env;
    if (!parseOptions(argc, argv, opt))
        return 1;

    std::vector<SweepConfig> configs;
    if (!opt.specPath.empty())
        configs = parseSpec(opt.specPath, opt);
    if (configs.empty())
        configs = defaultConfigs(opt);

    SuiteOptions sopts;
    sopts.maxWorkloads = opt.fullSuite ? 0 : opt.suite;
    const std::vector<Program> suite = buildSuite(sopts);

    std::printf("sweeping %zu configs x %zu workloads (%llu warm-up + "
                "%llu measured instrs each, jobs=%u)\n",
                configs.size(), suite.size(),
                static_cast<unsigned long long>(opt.warmup),
                static_cast<unsigned long long>(opt.instrs),
                resolveJobs(opt.jobs));

    ResultStore store(opt.storeDir);
    std::ofstream eventLog;
    if (!opt.eventLogPath.empty()) {
        eventLog.open(opt.eventLogPath, std::ios::app);
        if (!eventLog)
            die("cannot write " + opt.eventLogPath);
    }

    SweepOptions sweepOpts;
    sweepOpts.jobs = opt.jobs;
    sweepOpts.store = opt.storeDir.empty() ? nullptr : &store;
    sweepOpts.eventLog = eventLog.is_open() ? &eventLog : nullptr;
    sweepOpts.progress = opt.quiet ? nullptr : stderr;

    const SweepResult res = runSweep(suite, configs, sweepOpts);

    // Per-config summary table.
    TextTable table({"config", "label", "outcome", "wall_s"});
    const std::size_t nw = suite.size();
    for (std::size_t c = 0; c < configs.size(); ++c) {
        double wall = 0.0;
        for (std::size_t w = 0; w < nw; ++w)
            wall += res.cells[c * nw + w].wallSeconds;
        const SweepCell::Outcome outcome = res.cells[c * nw].outcome;
        const char *name =
            outcome == SweepCell::Outcome::Simulated ? "simulated"
            : outcome == SweepCell::Outcome::StoreHit ? "store hit"
                                                      : "cache hit";
        char wallBuf[32];
        std::snprintf(wallBuf, sizeof(wallBuf), "%.2f", wall);
        table.addRow({configs[c].name, configLabel(configs[c].cfg),
                      name, wallBuf});
    }
    std::printf("%s", table.render().c_str());

    const SweepStats &s = res.stats;
    std::printf("cells: %llu total = %llu simulated + %llu store hits "
                "+ %llu cache hits\n",
                static_cast<unsigned long long>(s.cellsTotal),
                static_cast<unsigned long long>(s.cellsSimulated),
                static_cast<unsigned long long>(s.cellsStoreHit),
                static_cast<unsigned long long>(s.cellsCacheHit));
    if (sweepOpts.store)
        std::printf("store: %llu hits, %llu misses (%llu stale), "
                    "%llu writes -> %s\n",
                    static_cast<unsigned long long>(s.storeHits),
                    static_cast<unsigned long long>(s.storeMisses),
                    static_cast<unsigned long long>(s.storeStale),
                    static_cast<unsigned long long>(s.storeWrites),
                    store.dir().c_str());
    std::printf("wall %.2fs (%.2f Minstr/s)\n", s.wallSeconds,
                s.wallSeconds > 0.0
                    ? static_cast<double>(s.simInstrs) / 1e6 /
                          s.wallSeconds
                    : 0.0);

    if (!opt.manifestPath.empty()) {
        std::ofstream out = openOrDie(opt.manifestPath);
        writeSweepManifest(out, res, configs);
        std::printf("wrote manifest to %s\n", opt.manifestPath.c_str());
    }
    if (!opt.csvPath.empty()) {
        std::ofstream out = openOrDie(opt.csvPath);
        writeSweepCsv(out, res, configs);
        std::printf("wrote results CSV to %s\n", opt.csvPath.c_str());
    }
    if (!opt.portAnalysisPath.empty())
        runPortAnalysis(suite, opt);
    return 0;
}
