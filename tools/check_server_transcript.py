#!/usr/bin/env python3
"""Replay docs/SERVER.md's transcript blocks against a live lbpserved.

The fenced ```transcript blocks in docs/SERVER.md are the normative
examples of the lbp-serve-v1 wire protocol. This checker keeps them
honest: it starts one daemon (--jobs 1, memory-only store) and replays
every block in document order, each on a fresh connection —

  C: <line>   sent to the server verbatim (plus the newline)
  S: <json>   must match the server's next frame
  #  ...      comment, ignored

Matching is structural: "*" matches any value; every other value must
be equal, and objects must have exactly the expected key set (a new
field in a server frame is a spec bug — document it). Arrays match
element-wise.

Usage:
    check_server_transcript.py <SERVER.md> <lbpserved> <scratch_dir>

Exit 0 when every block replays and the daemon drains cleanly on
SIGTERM; 1 otherwise.
"""

import json
import os
import re
import signal
import socket
import subprocess
import sys
import time


def fail(msg):
    print(f"check_server_transcript: {msg}")
    return 1


def extract_blocks(doc_path):
    text = open(doc_path, encoding="utf-8").read()
    return re.findall(r"```transcript\n(.*?)```", text, re.S)


def match(exp, act, path="frame"):
    """Structural match of actual frame against expected; returns an
    error string or None."""
    if exp == "*":
        return None
    if isinstance(exp, dict):
        if not isinstance(act, dict):
            return f"{path}: expected object, got {act!r}"
        if set(exp) != set(act):
            missing = sorted(set(exp) - set(act))
            extra = sorted(set(act) - set(exp))
            return (f"{path}: key set mismatch "
                    f"(missing {missing}, unexpected {extra})")
        for k in exp:
            err = match(exp[k], act[k], f"{path}.{k}")
            if err:
                return err
        return None
    if isinstance(exp, list):
        if not isinstance(act, list):
            return f"{path}: expected array, got {act!r}"
        if len(exp) != len(act):
            return (f"{path}: expected {len(exp)} elements, "
                    f"got {len(act)}")
        for i, (e, a) in enumerate(zip(exp, act)):
            err = match(e, a, f"{path}[{i}]")
            if err:
                return err
        return None
    if isinstance(exp, bool) or isinstance(act, bool):
        if exp is not act:
            return f"{path}: expected {exp!r}, got {act!r}"
        return None
    if isinstance(exp, (int, float)) and isinstance(act, (int, float)):
        if float(exp) != float(act):
            return f"{path}: expected {exp!r}, got {act!r}"
        return None
    if exp != act:
        return f"{path}: expected {exp!r}, got {act!r}"
    return None


class Conn:
    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port),
                                             timeout=60)
        self.buf = b""

    def send(self, line):
        self.sock.sendall(line.encode() + b"\n")

    def recv_frame(self):
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                return None
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return line.decode()

    def close(self):
        self.sock.close()


def replay_block(port, block_no, block):
    conn = Conn(port)
    try:
        for line_no, raw in enumerate(block.splitlines(), 1):
            where = f"block {block_no} line {line_no}"
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if line.startswith("C: "):
                conn.send(line[3:])
            elif line.startswith("S: "):
                expected = json.loads(line[3:])
                actual_raw = conn.recv_frame()
                if actual_raw is None:
                    return fail(f"{where}: server closed the "
                                f"connection, expected {line[3:]}")
                try:
                    actual = json.loads(actual_raw)
                except ValueError as e:
                    return fail(f"{where}: server sent non-JSON "
                                f"{actual_raw!r} ({e})")
                err = match(expected, actual)
                if err:
                    return fail(f"{where}: {err}\n  expected: "
                                f"{line[3:]}\n  actual:   {actual_raw}")
            else:
                return fail(f"{where}: transcript lines must start "
                            f"with 'C: ', 'S: ' or '#', got {raw!r}")
    finally:
        conn.close()
    return 0


def main(argv):
    if len(argv) != 4:
        print(__doc__)
        return 2
    doc_path, daemon_path, scratch = argv[1], argv[2], argv[3]
    blocks = extract_blocks(doc_path)
    if not blocks:
        return fail(f"no ```transcript blocks in {doc_path}")

    os.makedirs(scratch, exist_ok=True)
    port_file = os.path.join(scratch, "transcript.port")
    if os.path.exists(port_file):
        os.unlink(port_file)
    env = dict(os.environ)
    env.pop("REPRO_RESULT_STORE", None)  # memory-only: cold outcomes
    daemon = subprocess.Popen(
        [daemon_path, "--port", "0", "--jobs", "1",
         "--port-file", port_file, "--quiet"],
        env=env)
    try:
        for _ in range(200):
            if os.path.exists(port_file):
                break
            time.sleep(0.05)
        else:
            return fail("daemon never wrote its port file")
        port = int(open(port_file).read().strip())

        for block_no, block in enumerate(blocks, 1):
            if replay_block(port, block_no, block):
                return 1

        daemon.send_signal(signal.SIGTERM)
        rc = daemon.wait(timeout=60)
        if rc != 0:
            return fail(f"daemon exited {rc} on SIGTERM, expected 0")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()
    print(f"check_server_transcript: {len(blocks)} blocks replayed "
          f"against {os.path.basename(daemon_path)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
