#!/usr/bin/env python3
"""Assert lbpsim --help documents every flag the parser accepts.

Extracts every ``--flag`` string literal from tools/lbpsim.cc (the
option table is the only place flags are spelled) and checks each one
appears in the output of the built binary's ``--help``. Because help and
parser are generated from the same table this should be impossible to
break — this test guards the "same table" property itself against a
future hand-written special case.

Usage:
    check_lbpsim_help.py <lbpsim.cc> <lbpsim-binary>
"""

import re
import subprocess
import sys
from pathlib import Path


def main(argv):
    if len(argv) != 3:
        print(__doc__)
        return 2
    source = Path(argv[1])
    binary = argv[2]

    text = source.read_text(encoding="utf-8")
    flags = sorted(set(re.findall(r"\"(--[a-z][a-z0-9-]*)\"", text)))
    flags += ["-h"]
    if len(flags) < 5:
        print(f"check_lbpsim_help: only {len(flags)} flags extracted "
              f"from {source} — extraction regex broken?")
        return 1

    proc = subprocess.run([binary, "--help"], capture_output=True,
                          text=True)
    if proc.returncode != 0:
        print(f"check_lbpsim_help: {binary} --help exited "
              f"{proc.returncode}\n{proc.stderr}")
        return 1
    helptext = proc.stdout

    missing = [f for f in flags if f not in helptext]
    for f in missing:
        print(f"check_lbpsim_help: parser accepts {f} but --help "
              f"does not mention it")
    if missing:
        return 1
    print(f"check_lbpsim_help: all {len(flags)} flags documented")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
