// Clean fixture: all mutations sit inside sanctioned methods or a
// private helper reachable only from sanctioned methods (the
// transitive-sanction case, like LoopPredictor::runFor).
#ifndef LBP_ANALYZE_FIXTURE_CLEAN_SPEC_HH
#define LBP_ANALYZE_FIXTURE_CLEAN_SPEC_HH

#include <vector>

struct CleanLocal : public LocalPredictor {
    int predict(int pc) const
    {
        return static_cast<int>((hist_ >> (pc & 3)) & 1u);
    }

    void specUpdate(int pc, bool dir)
    {
        (void)pc;
        roll(dir);
    }

    void retireTrain(int pc, bool dir)
    {
        (void)pc;
        roll(dir);
    }

  private:
    void roll(bool dir)
    {
        hist_ = (hist_ << 1) | (dir ? 1u : 0u);
        counts_.push_back(hist_);
    }

    unsigned hist_ = 0;
    std::vector<unsigned> counts_;
};

#endif
