// Miniature runMetrics() table for the metric-row-coverage rule: a
// duplicated row name and a stale row referencing a field RunResult
// does not have (two findings anchored here), plus the double export
// of 'dup' reported against runner.hh. The serveMetrics() table below
// adds a stale ServeStats row (third finding here) and leaves
// protocol.hh's fixOrphanServe uncovered (finding anchored there);
// the storeMetrics() table adds a stale StoreStats row (fourth
// finding here) and leaves result_store.hh's fixOrphanStore
// uncovered (finding anchored there).
#include "protocol.hh"
#include "result_store.hh"
#include "runner.hh"

#include <vector>

struct RunMetricDesc {
    const char *name;
    double (*get)(const RunResult &);
};

const std::vector<RunMetricDesc> &runMetrics()
{
    static const std::vector<RunMetricDesc> table = {
        {"fix_ipc", [](const RunResult &r) { return r.ipc; }},
        {"fix_cycles",
         [](const RunResult &r) {
             return static_cast<double>(r.stats.cycles);
         }},
        {"fix_dup", [](const RunResult &r) { return r.dup; }},
        {"fix_dup", [](const RunResult &r) { return r.dup; }},
        {"fix_ghost", [](const RunResult &r) { return r.ghost; }},
    };
    return table;
}

struct ServeMetricDesc {
    const char *name;
    double (*get)(const ServeStats &);
};

const std::vector<ServeMetricDesc> &serveMetrics()
{
    static const std::vector<ServeMetricDesc> table = {
        {"fix_serve_clients",
         [](const ServeStats &s) {
             return static_cast<double>(s.fixClients);
         }},
        {"fix_serve_ghost",
         [](const ServeStats &s) {
             return static_cast<double>(s.ghostServe);
         }},
    };
    return table;
}

struct StoreMetricDesc {
    const char *name;
    double (*get)(const StoreStats &);
};

const std::vector<StoreMetricDesc> &storeMetrics()
{
    static const std::vector<StoreMetricDesc> table = {
        {"fix_store_hits",
         [](const StoreStats &s) {
             return static_cast<double>(s.fixStoreHits);
         }},
        {"fix_store_ghost",
         [](const StoreStats &s) {
             return static_cast<double>(s.ghostStore);
         }},
    };
    return table;
}
