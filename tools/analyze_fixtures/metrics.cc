// Miniature runMetrics() table for the metric-row-coverage rule: a
// duplicated row name and a stale row referencing a field RunResult
// does not have (two findings anchored here), plus the double export
// of 'dup' reported against runner.hh.
#include "runner.hh"

#include <vector>

struct RunMetricDesc {
    const char *name;
    double (*get)(const RunResult &);
};

const std::vector<RunMetricDesc> &runMetrics()
{
    static const std::vector<RunMetricDesc> table = {
        {"fix_ipc", [](const RunResult &r) { return r.ipc; }},
        {"fix_cycles",
         [](const RunResult &r) {
             return static_cast<double>(r.stats.cycles);
         }},
        {"fix_dup", [](const RunResult &r) { return r.dup; }},
        {"fix_dup", [](const RunResult &r) { return r.dup; }},
        {"fix_ghost", [](const RunResult &r) { return r.ghost; }},
    };
    return table;
}
