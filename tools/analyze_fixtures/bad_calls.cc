// Negative fixture for the re-hosted banned-call rules: raw assert,
// libc rand, and a steady_clock read outside the Stopwatch class. The
// Stopwatch method itself is scope-allowed.
#include <cassert>
#include <chrono>
#include <cstdlib>

struct Stopwatch {
    long nowNs() const
    {
        // clean: the Stopwatch class is the sanctioned clock wrapper
        return std::chrono::steady_clock::now()
            .time_since_epoch()
            .count();
    }
};

int checkedRoll(int bound)
{
    assert(bound > 0);            // expect: no-raw-assert
    int r = rand() % bound;       // expect: no-raw-random
    auto t0 = std::chrono::steady_clock::now();  // expect: no-raw-time
    (void)t0;
    return r;
}
