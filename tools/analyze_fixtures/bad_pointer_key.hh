// Negative fixture: containers keyed by pointer values order/bucket by
// allocator addresses, which vary run to run.
#ifndef LBP_ANALYZE_FIXTURE_BAD_POINTER_KEY_HH
#define LBP_ANALYZE_FIXTURE_BAD_POINTER_KEY_HH

#include <map>
#include <unordered_map>

struct Node;

struct PointerKeyed {
    std::unordered_map<const Node *, int> byNode_;  // expect: pointer-keyed-container
    std::map<Node *, long> order_;                  // expect: pointer-keyed-container
};

#endif
