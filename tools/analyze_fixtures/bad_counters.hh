// Negative fixture: a *Stats struct with one live counter (written in
// counters_user.cc) and one declared-but-dead counter.
#ifndef LBP_ANALYZE_FIXTURE_BAD_COUNTERS_HH
#define LBP_ANALYZE_FIXTURE_BAD_COUNTERS_HH

#include <cstdint>

struct FixtureStats {
    std::uint64_t fixLive = 0;
    std::uint64_t fixDead = 0;  // expect: stats-counter-dead
};

#endif
