// Companion to bad_counters.hh / runner.hh: provides the write sites
// that keep FixtureStats::fixLive and CoreStats::cycles alive.
#include "bad_counters.hh"
#include "runner.hh"

void touchCounters(FixtureStats &st, CoreStats &cs)
{
    st.fixLive += 1;
    cs.cycles += 1;
}
