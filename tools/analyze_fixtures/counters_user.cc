// Companion to bad_counters.hh / runner.hh / protocol.hh: provides
// the write sites that keep FixtureStats::fixLive, CoreStats::cycles
// and the ServeStats fields alive.
#include "bad_counters.hh"
#include "protocol.hh"
#include "runner.hh"

void touchCounters(FixtureStats &st, CoreStats &cs, ServeStats &ss)
{
    st.fixLive += 1;
    cs.cycles += 1;
    ss.fixClients += 1;
    ss.fixOrphanServe += 1;
}
