// Companion to bad_counters.hh / runner.hh / protocol.hh: provides
// the write sites that keep FixtureStats::fixLive, CoreStats::cycles
// and the ServeStats/StoreStats fields alive.
#include "bad_counters.hh"
#include "protocol.hh"
#include "result_store.hh"
#include "runner.hh"

void touchCounters(FixtureStats &st, CoreStats &cs, ServeStats &ss,
                   StoreStats &ts)
{
    st.fixLive += 1;
    cs.cycles += 1;
    ss.fixClients += 1;
    ss.fixOrphanServe += 1;
    ts.fixStoreHits += 1;
    ts.fixOrphanStore += 1;
}
