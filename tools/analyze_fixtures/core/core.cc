// Negative fixture for no-hot-path-alloc: the path ends in
// core/core.cc, so OooCore's per-cycle stage bodies are hot. Two raw
// allocations fire; one carries the legacy allow marker; a non-hot
// method may allocate freely.
#include <cstdint>
#include <vector>

struct Inst;

struct OooCore {
    void stepCycle();
    void allocStage();
    void drainStats();
    std::vector<Inst *> window_;
    std::vector<std::uint64_t> trace_;
};

void OooCore::stepCycle()
{
    window_.push_back(nullptr);  // expect: no-hot-path-alloc
}

void OooCore::allocStage()
{
    Inst *slot = new Inst;  // expect: no-hot-path-alloc
    (void)slot;
    // lint:allow-hot-alloc: one-time growth, amortized out of steady
    // state.
    trace_.reserve(64);  // suppressed by the legacy marker
}

void OooCore::drainStats()
{
    trace_.push_back(0);  // clean: not a hot function
}
