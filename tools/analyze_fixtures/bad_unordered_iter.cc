// Negative fixture: iterating an unordered_map (range-for and
// .begin()) feeds output in unspecified order.
#include <cstdio>
#include <unordered_map>

struct IterDump {
    std::unordered_map<int, int> hits_;

    void dump() const
    {
        for (const auto &kv : hits_) {  // expect: unordered-iteration
            std::printf("%d %d\n", kv.first, kv.second);
        }
    }

    int firstValue() const
    {
        auto it = hits_.begin();  // expect: unordered-iteration
        return it == hits_.end() ? 0 : it->second;
    }
};
