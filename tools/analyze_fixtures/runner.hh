// Miniature RunResult for the metric-row-coverage rule. 'ipc' and
// 'stats.cycles' are each exported by exactly one row in metrics.cc;
// 'dup' is exported twice and 'orphan' not at all (two findings,
// anchored here at the struct declarations).
#ifndef LBP_ANALYZE_FIXTURE_RUNNER_HH
#define LBP_ANALYZE_FIXTURE_RUNNER_HH

#include <cstdint>

struct CoreStats {
    std::uint64_t cycles = 0;
};

struct RunResult {
    double ipc = 0.0;     // covered by exactly one row: fine
    double dup = 0.0;     // expect: exported by 2 rows
    double orphan = 0.0;  // expect: no runMetrics() row
    CoreStats stats;
};

#endif
