// Negative fixture: a LocalPredictor subclass mutating its state from
// predict() and from a helper reachable only from predict(). Both
// writes bypass the repair interface and must be flagged.
#ifndef LBP_ANALYZE_FIXTURE_BAD_SPEC_WRITE_HH
#define LBP_ANALYZE_FIXTURE_BAD_SPEC_WRITE_HH

#include <set>

struct BadLocal : public LocalPredictor {
    void specUpdate(int pc, bool dir)
    {
        (void)pc;
        hist_ = (hist_ << 1) | (dir ? 1u : 0u);  // sanctioned: fine
    }

    int predict(int pc)
    {
        table_.insert(pc);  // expect: spec-state-write
        return helper(pc);
    }

    int helper(int pc)
    {
        hist_ += 1;  // expect: spec-state-write (caller unsanctioned)
        return static_cast<int>(hist_) ^ pc;
    }

    unsigned hist_ = 0;
    std::set<int> table_;
};

#endif
