// Clean fixture: ordered containers, stable integer keys, no
// speculative state, no banned calls — zero findings expected.
#ifndef LBP_ANALYZE_FIXTURE_CLEAN_HH
#define LBP_ANALYZE_FIXTURE_CLEAN_HH

#include <cstdint>
#include <map>

/// A well-behaved lookup table keyed by stable ids.
struct CleanTable {
    void update(std::uint32_t key, std::uint64_t value)
    {
        rows_[key] = value;
    }

    std::uint64_t lookup(std::uint32_t key) const
    {
        auto it = rows_.find(key);
        return it == rows_.end() ? 0 : it->second;
    }

    std::map<std::uint32_t, std::uint64_t> rows_;
};

#endif
