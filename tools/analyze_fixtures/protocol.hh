// Miniature ServeStats for the metric-row-coverage rule.
// 'fixClients' is exported by exactly one serveMetrics() row in
// metrics.cc; 'fixOrphanServe' has no row (one finding, anchored here
// at the struct declaration). Both fields are kept alive for the
// stats-counter-dead rule by counters_user.cc.
#ifndef LBP_ANALYZE_FIXTURE_PROTOCOL_HH
#define LBP_ANALYZE_FIXTURE_PROTOCOL_HH

#include <cstdint>

struct ServeStats {
    std::uint64_t fixClients = 0;      // covered by one row: fine
    std::uint64_t fixOrphanServe = 0;  // expect: no serveMetrics() row
};

#endif
