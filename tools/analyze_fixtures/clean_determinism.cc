// Clean fixture: per-slot writes inside the worker, serial reduction
// after the barrier, ordered containers throughout.
#include <cstddef>
#include <map>
#include <vector>

struct WorkPool {
    template <typename Fn> void parallelFor(std::size_t n, Fn &&fn);
};

double fillSlots(WorkPool &pool, std::size_t n)
{
    std::vector<double> out(n, 0.0);
    auto fill = [&](std::size_t i) {
        double local = static_cast<double>(i);
        local += 0.5;    // clean: worker-local accumulator
        out[i] = local;  // clean: per-slot write
    };
    pool.parallelFor(n, fill);

    double sum = 0.0;
    for (const auto &v : out) {  // clean: ordered container
        sum += v;                // clean: serial assemble phase
    }
    std::map<int, double> keyed;
    keyed[0] = sum;
    return sum;
}
