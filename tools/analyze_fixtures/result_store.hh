// Miniature StoreStats for the metric-row-coverage rule.
// 'fixStoreHits' is exported by exactly one storeMetrics() row in
// metrics.cc; 'fixOrphanStore' has no row (one finding, anchored here
// at the struct declaration). Both fields are kept alive for the
// stats-counter-dead rule by counters_user.cc.
#ifndef LBP_ANALYZE_FIXTURE_RESULT_STORE_HH
#define LBP_ANALYZE_FIXTURE_RESULT_STORE_HH

#include <cstdint>

struct StoreStats {
    std::uint64_t fixStoreHits = 0;   // covered by one row: fine
    std::uint64_t fixOrphanStore = 0; // expect: no storeMetrics() row
};

#endif
