// Negative fixture: order-dependent float accumulation inside a
// parallelFor worker. Worker-local floats and integer counters in the
// same body must stay quiet.
#include <cstddef>
#include <vector>

struct ThreadPool {
    template <typename Fn> void parallelFor(std::size_t n, Fn &&fn);
};

double totalWeight(ThreadPool &pool, const std::vector<double> &w)
{
    double total = 0.0;
    std::size_t touched = 0;
    pool.parallelFor(w.size(), [&](std::size_t i) {
        total += w[i];  // expect: parallel-float-accum
        double scratch = w[i];
        scratch += 1.0;  // clean: worker-local
        touched += 1;    // clean: integral
    });
    return total + static_cast<double>(touched);
}
