// Negative fixture for no-raw-thread: std::thread is legal inside the
// ThreadPool class and the resolveJobs() helper, and nowhere else.
#include <thread>

struct ThreadPool {
    void start()
    {
        worker_ = std::thread([] {});  // clean: inside ThreadPool
    }
    std::thread worker_;  // clean: inside ThreadPool
};

unsigned resolveJobs()
{
    // clean: resolveJobs() is the sanctioned concurrency probe
    return std::thread::hardware_concurrency();
}

void rogueSpawn()
{
    std::thread t([] {});  // expect: no-raw-thread
    t.join();
}
