#!/usr/bin/env python3
"""Markdown link-and-anchor checker.

Scans every ``*.md`` at the repo root plus everything under ``docs/``
and fails on:

  * relative links to files that do not exist,
  * ``#anchor`` fragments that match no heading in the target file
    (GitHub's slug rules: lowercase, punctuation dropped, spaces to
    hyphens, duplicate slugs suffixed ``-1``, ``-2``, ...),
  * reference-style links ``[text][ref]`` with no ``[ref]:`` definition.

External links (http/https/mailto) are not fetched — this guards the
repo's internal cross-references, which are the ones that silently rot
when files move. Links inside fenced code blocks are ignored.

Usage:
    check_md_links.py <repo_root>
"""

import re
import sys
from pathlib import Path

INLINE_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_USE = re.compile(r"\[[^\]]+\]\[([^\]]+)\]")
REF_DEF = re.compile(r"^\[([^\]]+)\]:\s*(\S+)", re.MULTILINE)
HEADING = re.compile(r"^(#{1,6})\s+(.+?)\s*#*\s*$")
FENCE = re.compile(r"^(```|~~~)")


def strip_fences(text):
    """Drop fenced code blocks, preserving line count."""
    out = []
    fence = None
    for line in text.splitlines():
        m = FENCE.match(line.strip())
        if m:
            if fence is None:
                fence = m.group(1)
            elif m.group(1) == fence:
                fence = None
            out.append("")
            continue
        out.append("" if fence else line)
    return "\n".join(out)


def github_slug(heading):
    """GitHub's anchor slug for a heading line."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)     # unwrap code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path, cache={}):
    if path not in cache:
        slugs = set()
        seen = {}
        try:
            text = strip_fences(path.read_text(encoding="utf-8"))
        except OSError:
            cache[path] = slugs
            return slugs
        for line in text.splitlines():
            m = HEADING.match(line)
            if not m:
                continue
            slug = github_slug(m.group(2))
            n = seen.get(slug, 0)
            seen[slug] = n + 1
            slugs.add(slug if n == 0 else f"{slug}-{n}")
        # Explicit HTML anchors also resolve.
        for m in re.finditer(r"<a\s+(?:name|id)=\"([^\"]+)\"",
                             path.read_text(encoding="utf-8")):
            slugs.add(m.group(1))
        cache[path] = slugs
    return cache[path]


def markdown_files(root):
    files = sorted(root.glob("*.md"))
    docs = root / "docs"
    if docs.is_dir():
        files += sorted(docs.rglob("*.md"))
    return files


def check_file(root, path):
    errors = []
    raw = path.read_text(encoding="utf-8")
    text = strip_fences(raw)

    defs = {m.group(1).lower(): m.group(2)
            for m in REF_DEF.finditer(text)}
    targets = []  # (line, target)
    for i, line in enumerate(text.splitlines(), 1):
        for m in INLINE_LINK.finditer(line):
            targets.append((i, m.group(1)))
        for m in REF_USE.finditer(line):
            ref = m.group(1).lower()
            if ref in defs:
                targets.append((i, defs[ref]))
            else:
                errors.append((i, f"unresolved reference [{m.group(1)}]"))

    for line, target in targets:
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # URL scheme
            continue
        frag = None
        if "#" in target:
            target, frag = target.split("#", 1)
        dest = path if not target else (path.parent / target).resolve()
        if target and not dest.exists():
            errors.append((line, f"dead link: {target}"))
            continue
        if frag is not None and dest.suffix == ".md":
            if frag not in anchors_of(dest):
                errors.append(
                    (line,
                     f"dead anchor: {target or path.name}#{frag}"))
    return [(path.relative_to(root), line, msg) for line, msg in errors]


def main(argv):
    if len(argv) != 2:
        print(__doc__)
        return 2
    root = Path(argv[1]).resolve()
    errors = []
    files = markdown_files(root)
    for path in files:
        errors.extend(check_file(root, path))
    for path, line, msg in errors:
        print(f"{path}:{line}: {msg}")
    if errors:
        print(f"check_md_links: {len(errors)} broken link(s) across "
              f"{len(files)} file(s)")
        return 1
    print(f"check_md_links: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
