#!/usr/bin/env python3
"""Scope-aware whole-program static analysis for the lbp simulator.

lbp_analyze is the second-generation companion to lbp_lint: instead of
per-line regexes it lexes every C++ file (comment/string-aware, length
preserving), tracks brace scopes (namespace / class / function / lambda
/ control block), and runs cross-file rules over the resulting scope
model. No compiler is involved — the pass is driven purely by the file
set, so it runs anywhere Python runs.

Rules (findings print as ``rule:file:line: message``):

  spec-state-write
      Mutations of predictor state fields (any class deriving from
      LocalPredictor, plus TagePredictor and LoopPatternTable) are only
      legal inside the sanctioned update/checkpoint/repair methods
      (specUpdate, retireTrain, writeState, restore, train, ...). The
      paper's whole subject is that speculative local state must flow
      through a repairable interface; a predictor mutating its BHT from
      predict() or a helper silently bypasses every repair scheme.

  unordered-iteration
      Iterating an ``unordered_map``/``unordered_set`` yields an
      unspecified order, which poisons anything it feeds — stats, CSV
      rows, serialization, store keys. Ordered containers or sorted
      snapshots only.

  pointer-keyed-container
      Containers keyed (or hashed) by pointer values order/bucket by
      allocator addresses, which vary run to run. Key by stable ids
      (Addr, names, indices) instead.

  parallel-float-accum
      Floating-point accumulation (``+=``/``-=`` on a float/double)
      inside a ThreadPool::parallelFor worker body is order-dependent:
      worker interleaving changes the rounding. Accumulate per-slot and
      reduce serially (the sanctioned assemble phases), or carry an
      explicit allow marker for inherently nondeterministic values
      (wall-clock telemetry).

  stats-counter-dead
      Every counter/histogram field of a ``*Stats`` struct must be
      written somewhere in src/ (incremented, assigned or sampled). A
      declared-but-dead counter reports a permanent zero and hides the
      missing instrumentation.

  metric-row-coverage
      Whole-program counter coverage over the MetricsRegistry tables:
      every numeric RunResult field (and every CoreStats field behind
      RunResult::stats) must be read by exactly one runMetrics() row,
      every SweepStats field by exactly one primary sweepMetrics() row,
      every ServeStats field by exactly one primary serveMetrics() row
      and every StoreStats field by exactly one primary storeMetrics()
      row (rows combining several fields are derived and exempt), row
      names must be unique across all four tables, and no row may
      reference a field that does not exist. This closes the
      declared-but-dead and reported-but-unnamed gaps the registry
      itself cannot see.

  no-raw-assert / no-raw-random / no-raw-time / no-raw-thread
      Re-hosted from lbp_lint on the scope engine: the ThreadPool class
      and resolveJobs() may touch std::thread, the Stopwatch class may
      read the steady clock — everything else in src/ must use
      lbp_assert, common/random.hh, and the ThreadPool. Scope-level
      allows replace the old per-file exemption list.

  no-hot-path-alloc
      Re-hosted from lbp_lint: the per-cycle stage functions of
      OooCore (core/core.cc) and the predict/update path of
      TagePredictor (bpu/tage.cc) must not allocate; bodies are found
      via the scope model rather than brace-counting regexes.

Suppression: a finding whose line (or the line above) carries
``analyze:allow(<rule>)`` is suppressed. The legacy
``lint:allow-hot-alloc`` marker is honored for no-hot-path-alloc.

Baseline / diff: ``--baseline FILE --diff`` compares findings against a
committed baseline (tools/analyze_baseline.json) keyed by
``rule|file|message`` (line numbers drift too easily to gate on) and
fails only on findings not in the baseline — CI stays green on legacy
debt while rejecting new violations.

Usage:
    lbp_analyze.py <repo_root>                 analyze <repo_root>/src
    lbp_analyze.py --sarif out.sarif <root>    also write SARIF 2.1.0
    lbp_analyze.py --baseline B --diff <root>  fail on new findings only
    lbp_analyze.py --self-test <repo_root>     fixture suite + diff mode
"""

import argparse
import json
import re
import sys
from pathlib import Path

CPP_SUFFIXES = {".cc", ".hh", ".cpp", ".hpp", ".h"}

# ---------------------------------------------------------------------
# Lexing: length-preserving strip of comments, strings and preprocessor
# lines so offsets in the stripped text equal offsets in the original.
# ---------------------------------------------------------------------


def strip_comments_and_strings(text):
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            out.extend(ch if ch == "\n" else " "
                       for ch in text[i:j + 2])
            i = j + 2
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out.append(" ")
                    i += 1
                    if i < n:
                        out.append(" " if text[i] != "\n" else "\n")
                        i += 1
                else:
                    out.append(" " if text[i] != "\n" else "\n")
                    i += 1
            if i < n:
                out.append(" ")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def blank_preprocessor(stripped):
    """Blank out preprocessor lines (length-preserving) so #include
    angle brackets and conditional compilation never confuse the scope
    walker."""
    lines = stripped.split("\n")
    for k, line in enumerate(lines):
        if line.lstrip().startswith("#"):
            lines[k] = " " * len(line)
    return "\n".join(lines)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def iter_source_files(root):
    for path in sorted(root.rglob("*")):
        if path.suffix in CPP_SUFFIXES and path.is_file():
            yield path


# ---------------------------------------------------------------------
# Scope model
# ---------------------------------------------------------------------

CONTROL_KEYWORDS = {"if", "for", "while", "switch", "do", "else",
                    "try", "catch"}

LAMBDA_TAIL = re.compile(
    r"\[[^\[\]]*\]\s*(?:\([^()]*\))?\s*(?:mutable\b)?\s*"
    r"(?:noexcept\b)?\s*(?:->\s*[\w:<>,&*\s]+)?$")

CLASS_HEAD = re.compile(
    r"^(?:class|struct|union)\s+(?:\[\[[^\]]*\]\]\s*)?(\w+)"
    r"(?:\s+final\b)?\s*(?::\s*(.*))?$", re.S)

FUNC_NAME = re.compile(
    r"((?:\w+\s*::\s*)*~?\w+|operator\s*(?:\(\)|\[\]|[^\s(]+))\s*$")


class Scope:
    """One brace scope: kind is 'namespace', 'class', 'function',
    'lambda', 'block', 'enum' or 'init'."""

    def __init__(self, kind, name, start, header, parent):
        self.kind = kind
        self.name = name          # class/function/namespace name
        self.owner = None         # enclosing or :: qualified class
        self.bases = ""           # class base list text
        self.start = start        # offset of the opening '{'
        self.end = None           # offset just past the closing '}'
        self.header = header
        self.parent = parent
        self.children = []


def _strip_templates(header):
    h = header.lstrip()
    while h.startswith("template"):
        i = h.find("<")
        if i < 0:
            break
        depth = 0
        j = i
        while j < len(h):
            if h[j] == "<":
                depth += 1
            elif h[j] == ">":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        h = h[j + 1:].lstrip()
    return h


def _classify(header):
    """Return (kind, name, bases) for the scope a '{' opens."""
    h = _strip_templates(header).strip()
    if not h:
        return "block", "", ""
    if LAMBDA_TAIL.search(h):
        return "lambda", "", ""
    first = re.match(r"[A-Za-z_]\w*", h)
    word = first.group(0) if first else ""
    if word == "namespace":
        m = re.match(r"namespace\s+(\w+)?", h)
        return "namespace", (m.group(1) or "") if m else "", ""
    if word == "enum":
        return "enum", "", ""
    if word in ("class", "struct", "union") and "(" not in h.split(
            ":", 1)[0]:
        m = CLASS_HEAD.match(h)
        if m:
            return "class", m.group(1), (m.group(2) or "")
    if word in CONTROL_KEYWORDS:
        return "block", "", ""
    if word == "extern":
        return "block", "", ""
    if h.endswith(("=", ",", "(", "return")):
        return "init", "", ""
    # A parenthesized parameter list makes this a function definition;
    # the name is the identifier before the first top-level '('.
    paren = -1
    depth = 0
    for i, c in enumerate(h):
        if c == "<":
            depth += 1
        elif c == ">":
            depth = max(0, depth - 1)
        elif c == "(" and depth == 0:
            paren = i
            break
    if paren > 0:
        m = FUNC_NAME.search(h[:paren].rstrip())
        if m:
            name = re.sub(r"\s+", "", m.group(1))
            bare = name.rsplit("::", 1)[-1]
            if bare in CONTROL_KEYWORDS:
                return "block", "", ""
            return "function", name, ""
    return "init", "", ""


def parse_scopes(code):
    """Parse blanked/stripped code into a scope tree. Returns the list
    of all scopes (preorder); roots have parent None."""
    scopes = []
    stack = []
    header_start = 0
    i = 0
    n = len(code)
    while i < n:
        c = code[i]
        if c == "{":
            header = code[header_start:i]
            kind, name, bases = _classify(header)
            parent = stack[-1] if stack else None
            sc = Scope(kind, name, i, header.strip(), parent)
            sc.bases = bases
            if kind == "function":
                if "::" in name:
                    sc.owner = name.rsplit("::", 2)[-2]
                    sc.name = name.rsplit("::", 1)[-1]
                elif parent is not None and parent.kind == "class":
                    sc.owner = parent.name
            if parent is not None:
                parent.children.append(sc)
            scopes.append(sc)
            stack.append(sc)
            header_start = i + 1
        elif c == "}":
            if stack:
                stack.pop().end = i + 1
            header_start = i + 1
        elif c == ";":
            header_start = i + 1
        i += 1
    for sc in stack:  # unterminated (shouldn't happen on valid input)
        sc.end = n
    return scopes


def enclosing(scope, kinds):
    s = scope
    while s is not None:
        if s.kind in kinds:
            return s
        s = s.parent
    return None


def enclosing_class_name(scope):
    s = scope
    while s is not None:
        if s.kind == "function" and s.owner:
            return s.owner
        if s.kind == "class":
            return s.name
        s = s.parent
    return None


# ---------------------------------------------------------------------
# Field extraction
# ---------------------------------------------------------------------

FIELD_DECL = re.compile(
    r"^(?:mutable\s+|volatile\s+)?"
    r"((?:const\s+)?(?:unsigned\s+|signed\s+|long\s+|short\s+)*"
    r"[A-Za-z_][\w:]*(?:\s*<.*>)?(?:\s*[*&])*)"
    r"\s+([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*(?:=.*)?$", re.S)

SKIP_STMT = re.compile(
    r"^(?:using\b|typedef\b|friend\b|static\b|template\b|return\b|"
    r"public\b|private\b|protected\b|enum\b)")


def class_fields(code, scope):
    """{name: type} for the member fields declared directly inside a
    class scope. Child scopes (method bodies, default-init braces) are
    blanked; method bodies become ';' so the following declaration
    still starts a fresh statement."""
    body = list(code[scope.start + 1:scope.end - 1])
    for ch in scope.children:
        a = ch.start - (scope.start + 1)
        b = ch.end - (scope.start + 1)
        for k in range(a, b):
            if body[k] != "\n":
                body[k] = " "
        if b - 1 < len(body):
            body[b - 1] = ";"
    fields = {}
    for stmt in "".join(body).split(";"):
        s = re.sub(r"^(?:\s*(?:public|private|protected)\s*:)+", "",
                   stmt)
        s = re.sub(r"\s+", " ", s).strip()
        if not s or SKIP_STMT.match(s):
            continue
        eq = s.find("=")
        head = s if eq < 0 else s[:eq]
        if "(" in head:
            continue  # function declaration (or function-typed field)
        m = FIELD_DECL.match(s)
        if m:
            fields[m.group(2)] = re.sub(r"\s+", " ",
                                        m.group(1)).strip()
    return fields


# ---------------------------------------------------------------------
# Per-file analysis unit
# ---------------------------------------------------------------------


class SourceFile:
    def __init__(self, path, rel):
        self.path = path
        self.rel = rel  # posix path relative to the repo root
        self.raw = path.read_text(encoding="utf-8")
        self.stripped = strip_comments_and_strings(self.raw)
        self.code = blank_preprocessor(self.stripped)
        self.scopes = parse_scopes(self.code)
        self.raw_lines = self.raw.splitlines()

    def line(self, pos):
        return line_of(self.code, pos)

    def allowed(self, rule, line, extra_markers=()):
        """Marker on the finding's line, or anywhere in the block of
        comment lines immediately above it."""
        markers = [f"analyze:allow({rule})"] + list(extra_markers)

        def hit(ln):
            if 1 <= ln <= len(self.raw_lines):
                return any(m in self.raw_lines[ln - 1]
                           for m in markers)
            return False

        if hit(line):
            return True
        ln = line - 1
        while ln >= 1 and self.raw_lines[ln - 1].lstrip().startswith(
                ("//", "*", "/*")):
            if hit(ln):
                return True
            ln -= 1
        return False


class Finding:
    def __init__(self, rule, rel, line, message):
        self.rule = rule
        self.rel = rel
        self.line = line
        self.message = message

    def __str__(self):
        return f"{self.rule}:{self.rel}:{self.line}: {self.message}"

    def key(self):
        return f"{self.rule}|{self.rel}|{self.message}"


def emit(findings, sf, rule, pos, message, extra_markers=()):
    line = sf.line(pos)
    if sf.allowed(rule, line, extra_markers):
        return
    findings.append(Finding(rule, sf.rel, line, message))


# ---------------------------------------------------------------------
# Rule: spec-state-write
# ---------------------------------------------------------------------

# Classes whose member state is speculative predictor state even though
# they do not derive from LocalPredictor.
STATE_CLASSES_EXTRA = {"TagePredictor", "LoopPatternTable"}

# Methods allowed to mutate predictor state: construction, the
# speculative/retirement update interface, and the checkpoint/repair
# interface of src/bpu/predictor.hh.
SANCTIONED_METHODS = {
    "specUpdate", "specUpdateHist", "retireTrain",
    "predictionFeedback", "train", "feedback", "update",
    "writeState", "advanceState", "invalidateEntry",
    "setAllRepairBits", "testClearRepairBit", "restoreBht",
    "checkpoint", "restore", "reset", "clear", "operator=",
}

MUTATING_CALLS = (
    "insert|erase|clear|push_back|pop_back|emplace|emplace_back|"
    "resize|assign|reserve|fill|swap|invalidate|install|touch|"
    "advance|train|update|set|reset")


def collect_predictor_classes(files):
    """{class name: {field: type}} for every predictor state class."""
    classes = {}
    for sf in files:
        for sc in sf.scopes:
            if sc.kind != "class":
                continue
            if ("LocalPredictor" in sc.bases
                    or sc.name in STATE_CLASSES_EXTRA):
                fields = class_fields(sf.code, sc)
                classes.setdefault(sc.name, {}).update(fields)
    return classes


def field_mutation_re(fields):
    alt = "|".join(re.escape(f) for f in sorted(fields))
    return re.compile(
        r"(?:\+\+|--)\s*(?:this\s*->\s*)?(?:%s)\b"
        r"|\b(?:this\s*->\s*)?(?:%s)\s*(?:\[[^\]]*\])?\s*"
        r"(?:(?:\+|-|\*|/|%%|&|\||\^|<<|>>)?=(?!=)|\+\+|--)"
        r"|\b(?:this\s*->\s*)?(?:%s)\s*\.\s*(?:%s)\s*\("
        % (alt, alt, alt, MUTATING_CALLS))


def _effective_sanctioned(cls, methods, bodies):
    """The sanctioned set plus its transitive closure: a private
    helper whose every in-class call site sits inside a sanctioned
    method inherits the sanction (e.g. LoopPredictor::runFor, reached
    only from retireTrain). A helper also reachable from predict()
    stays unsanctioned."""
    sanctioned = {m for m in methods
                  if m in SANCTIONED_METHODS or m == cls
                  or m == "~" + cls}
    calls = {}  # method -> set of in-class methods it calls
    for method, texts in bodies.items():
        called = set()
        for text in texts:
            for m in re.finditer(r"\b([A-Za-z_]\w*)\s*\(", text):
                if m.group(1) in methods and m.group(1) != method:
                    called.add(m.group(1))
        calls[method] = called
    changed = True
    while changed:
        changed = False
        for method in methods:
            if method in sanctioned:
                continue
            callers = {c for c, callees in calls.items()
                       if method in callees}
            if callers and callers <= sanctioned:
                sanctioned.add(method)
                changed = True
    return sanctioned


def check_spec_state_writes(files, predictor_classes, findings):
    mut_res = {name: field_mutation_re(fields)
               for name, fields in predictor_classes.items() if fields}
    # Per class: every method scope and its body text (definitions may
    # be split across .hh and .cc).
    method_scopes = {name: [] for name in mut_res}
    for sf in files:
        for sc in sf.scopes:
            if sc.kind == "function" and sc.owner in mut_res:
                method_scopes[sc.owner].append((sf, sc))
    for cls, scoped in method_scopes.items():
        methods = {sc.name for _sf, sc in scoped}
        bodies = {}
        for sf, sc in scoped:
            bodies.setdefault(sc.name, []).append(
                sf.code[sc.start:sc.end])
        sanctioned = _effective_sanctioned(cls, methods, bodies)
        for sf, sc in scoped:
            if sc.name in sanctioned:
                continue
            body = sf.code[sc.start:sc.end]
            for m in mut_res[cls].finditer(body):
                emit(findings, sf, "spec-state-write",
                     sc.start + m.start(),
                     f"{cls}::{sc.name}() mutates predictor state "
                     f"('{m.group(0).strip()}'); speculative state "
                     f"may only change inside the sanctioned "
                     f"specUpdate/retire/checkpoint/repair methods")


# ---------------------------------------------------------------------
# Rules: determinism hazards
# ---------------------------------------------------------------------

UNORDERED_DECL = re.compile(
    r"\b(?:std\s*::\s*)?unordered_(?:map|set|multimap|multiset)\s*<")

POINTER_KEY = re.compile(
    r"\b(?:std\s*::\s*)?(?:unordered_)?map\s*<[^<>,]*\*\s*,"
    r"|\b(?:std\s*::\s*)?(?:unordered_)?set\s*<[^<>]*\*\s*>"
    r"|\bstd\s*::\s*hash\s*<[^<>]*\*\s*>")

RANGE_FOR = re.compile(r"\bfor\s*\(([^;{}]*?):([^;{})]*)\)")


def unordered_names(code):
    """Identifiers declared with an unordered container type anywhere
    in the file (fields, locals, params)."""
    names = set()
    for m in UNORDERED_DECL.finditer(code):
        depth = 0
        i = m.end() - 1
        while i < len(code):
            if code[i] == "<":
                depth += 1
            elif code[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        tail = code[i + 1:i + 120]
        dm = re.match(r"\s*[&*]*\s*([A-Za-z_]\w*)", tail)
        if dm and dm.group(1) not in ("const",):
            names.add(dm.group(1))
    return names


def check_unordered_iteration(sf, findings):
    names = unordered_names(sf.code)
    if not names:
        return
    for m in RANGE_FOR.finditer(sf.code):
        expr = m.group(2).strip()
        base = re.match(r"(?:this\s*->\s*)?([A-Za-z_]\w*)", expr)
        if base and base.group(1) in names:
            emit(findings, sf, "unordered-iteration", m.start(),
                 f"iteration over unordered container "
                 f"'{base.group(1)}' has unspecified order; anything "
                 f"it feeds (stats, CSV, serialization, store keys) "
                 f"becomes nondeterministic — iterate an ordered "
                 f"container or a sorted snapshot")
    for name in sorted(names):
        for m in re.finditer(
                r"\b%s\s*\.\s*(?:begin|cbegin)\s*\(" % re.escape(name),
                sf.code):
            emit(findings, sf, "unordered-iteration", m.start(),
                 f"'{name}.begin()' walks an unordered container in "
                 f"unspecified order; iterate an ordered container or "
                 f"a sorted snapshot")


def check_pointer_keys(sf, findings):
    for m in POINTER_KEY.finditer(sf.code):
        emit(findings, sf, "pointer-keyed-container", m.start(),
             "container keyed/hashed by a pointer orders by allocator "
             "addresses, which vary run to run; key by a stable id "
             "(Addr, name, index) instead")


FLOAT_ACCUM = re.compile(
    r"\b([A-Za-z_][\w.\->\[\]]*?)\s*[+\-]=(?!=)")


def collect_float_fields(files):
    """Names of struct/class fields declared double or float anywhere
    in the tree (by name; ambiguity is resolved conservatively)."""
    floats = set()
    for sf in files:
        for sc in sf.scopes:
            if sc.kind != "class":
                continue
            for name, ftype in class_fields(sf.code, sc).items():
                base = ftype.replace("const", "").strip()
                if base in ("double", "float"):
                    floats.add(name)
    return floats


def parallel_lambdas(sf):
    """Lambda scopes executed by ThreadPool::parallelFor: either inline
    arguments of a parallelFor(...) call or named lambdas later passed
    to one."""
    named = set()
    for m in re.finditer(r"parallelFor\s*\(([^;{]*)", sf.code):
        for ident in re.findall(r"[A-Za-z_]\w*", m.group(1)):
            named.add(ident)
    out = []
    for sc in sf.scopes:
        if sc.kind != "lambda":
            continue
        if "parallelFor" in sc.header:
            out.append(sc)
            continue
        nm = re.search(r"([A-Za-z_]\w*)\s*=\s*\[[^\[\]]*\]\s*[(\s]",
                       sc.header.replace("\n", " ") + " ")
        if nm and nm.group(1) in named:
            out.append(sc)
    return out


def check_parallel_float_accum(sf, float_fields, findings):
    # Captured file-local doubles count as shared accumulators too.
    file_floats = set(
        re.findall(r"\b(?:double|float)\s+([A-Za-z_]\w*)\s*[=;{]",
                   sf.code))
    for sc in parallel_lambdas(sf):
        body = sf.code[sc.start:sc.end]
        # Locals declared inside the lambda are worker-private.
        local_floats = set(
            re.findall(r"\b(?:double|float)\s+([A-Za-z_]\w*)", body))
        for m in FLOAT_ACCUM.finditer(body):
            target = m.group(1)
            leaf = re.split(r"[.\->\[\]]+", target.strip())[-1]
            if not leaf or leaf in local_floats:
                continue
            if leaf not in float_fields and leaf not in file_floats:
                continue
            emit(findings, sf, "parallel-float-accum",
                 sc.start + m.start(),
                 f"float accumulation '{target.strip()} +=' inside a "
                 f"parallelFor worker is ordering-dependent; "
                 f"accumulate per-slot and reduce in the serial "
                 f"assemble phase")


# ---------------------------------------------------------------------
# Rule: stats-counter-dead
# ---------------------------------------------------------------------

STATS_FIELD_TYPES = ("std::uint64_t", "uint64_t", "Distribution",
                     "double", "FixedHistogram")


def collect_stats_structs(files):
    """[(struct, field, sf, line)] for counter fields of *Stats
    structs."""
    out = []
    for sf in files:
        if sf.path.suffix not in {".hh", ".hpp", ".h"}:
            continue
        for sc in sf.scopes:
            if sc.kind != "class" or not sc.name.endswith("Stats"):
                continue
            for name, ftype in class_fields(sf.code, sc).items():
                base = ftype.replace("const", "").strip()
                if base in STATS_FIELD_TYPES:
                    out.append((sc.name, name, sf, sf.line(sc.start)))
    return out


def check_stats_counter_dead(files, findings):
    # Blank the *Stats struct bodies themselves so a field's own
    # "= 0" initializer never counts as a write site.
    parts = []
    for sf in files:
        code = sf.code
        spans = [(sc.start, sc.end) for sc in sf.scopes
                 if sc.kind == "class" and sc.name.endswith("Stats")]
        if spans:
            buf = list(code)
            for a, b in spans:
                for k in range(a, b):
                    if buf[k] != "\n":
                        buf[k] = " "
            code = "".join(buf)
        parts.append(code)
    blob = "\n".join(parts)
    for struct, field, sf, line in collect_stats_structs(files):
        f = re.escape(field)
        written = re.search(
            r"(?:\+\+|--)\s*[\w.\->\[\]]*\b%s\b"
            r"|\b%s\s*(?:\+\+|--|(?:[+\-*/%%&|^]|<<|>>)?=(?!=))"
            r"|\b%s\s*\.\s*sample\s*\(" % (f, f, f), blob)
        if not written:
            findings.append(Finding(
                "stats-counter-dead", sf.rel, line,
                f"{struct}::{field} is declared but never "
                f"incremented/assigned/sampled anywhere in the "
                f"analyzed tree — dead counters report permanent "
                f"zeros"))


# ---------------------------------------------------------------------
# Rule: metric-row-coverage
# ---------------------------------------------------------------------

NUMERIC_TYPES = {
    "double", "float", "int", "unsigned", "std::uint64_t", "uint64_t",
    "std::uint32_t", "uint32_t", "std::int64_t", "std::size_t",
    "unsigned long", "long",
}


def find_struct(files, name):
    for sf in files:
        for sc in sf.scopes:
            if sc.kind == "class" and sc.name == name:
                return sf, sc
    return None, None


def table_rows(sf, func_name):
    """Rows of a metric table: the direct {…} children of the table
    initializer inside function func_name. Returns
    [(name, refs, pos)] where refs is the set of field paths the row's
    accessor reads ('ipc', 'stats.mispredicts', ...)."""
    func = None
    for sc in sf.scopes:
        if sc.kind == "function" and sc.name == func_name:
            func = sc
            break
    if func is None:
        return None
    table = None
    for ch in func.children:
        if ch.kind == "init" and "=" in ch.header:
            table = ch
            break
    if table is None:
        return None
    rows = []
    for row in table.children:
        span_raw = sf.raw[row.start:row.end]
        span_code = sf.code[row.start:row.end]
        nm = re.search(r'"([^"]+)"', span_raw)
        if not nm:
            continue
        refs = set()
        for m in re.finditer(r"\b[rs]\s*\.\s*(\w+(?:\s*\.\s*\w+)?)",
                             span_code):
            refs.add(re.sub(r"\s+", "", m.group(1)))
        rows.append((nm.group(1), refs, row.start))
    return rows


def check_metric_rows(files, findings):
    runner_sf, runres = find_struct(files, "RunResult")
    metrics_sf = None
    for sf in files:
        if any(sc.kind == "function" and sc.name == "runMetrics"
               for sc in sf.scopes):
            metrics_sf = sf
            break
    if runner_sf is None or metrics_sf is None:
        return  # tree without a metrics surface (partial fixtures)

    run_rows = table_rows(metrics_sf, "runMetrics") or []
    sweep_rows = table_rows(metrics_sf, "sweepMetrics") or []
    serve_rows = table_rows(metrics_sf, "serveMetrics") or []
    store_rows = table_rows(metrics_sf, "storeMetrics") or []

    # Row-name uniqueness across all four tables.
    seen = {}
    for name, _refs, pos in (run_rows + sweep_rows + serve_rows +
                             store_rows):
        if name in seen:
            emit(findings, metrics_sf, "metric-row-coverage", pos,
                 f"metric row name '{name}' is declared twice; "
                 f"export names must be unique")
        seen[name] = pos

    # RunResult numeric fields (plus the expanded CoreStats behind
    # RunResult::stats) must each be read by exactly one row.
    fields = class_fields(runner_sf.code, runres)
    known_paths = set()
    expect = {}
    for fname, ftype in fields.items():
        base = ftype.replace("const", "").strip()
        if base in NUMERIC_TYPES:
            expect[fname] = (runner_sf, runres.start)
            known_paths.add(fname)
        elif base == "CoreStats":
            core_sf, core = find_struct(files, "CoreStats")
            if core is not None:
                for cf, ct in class_fields(core_sf.code, core).items():
                    if ct.replace("const", "").strip() in NUMERIC_TYPES:
                        expect[f"{fname}.{cf}"] = (core_sf, core.start)
                        known_paths.add(f"{fname}.{cf}")

    counts = {path: 0 for path in expect}
    for _name, refs, _pos in run_rows:
        primary = len(refs) == 1
        for ref in refs:
            if ref in counts and primary:
                counts[ref] += 1
    for path, cnt in sorted(counts.items()):
        sf, pos = expect[path]
        if cnt == 0:
            emit(findings, sf, "metric-row-coverage", pos,
                 f"RunResult field '{path}' is not exported by any "
                 f"runMetrics() row — reported-but-unnamed results "
                 f"never reach the CSV/JSON surface")
        elif cnt > 1:
            emit(findings, sf, "metric-row-coverage", pos,
                 f"RunResult field '{path}' is exported by {cnt} "
                 f"runMetrics() rows; exactly one primary row per "
                 f"field")

    # Rows must not reference unknown RunResult fields.
    for name, refs, pos in run_rows:
        for ref in refs:
            if ref.split(".")[0] not in fields:
                emit(findings, metrics_sf, "metric-row-coverage", pos,
                     f"runMetrics() row '{name}' reads '{ref}', which "
                     f"is not a RunResult field — stale row")

    # SweepStats coverage (when the tree has a sweep surface).
    sweep_sf, sweep = find_struct(files, "SweepStats")
    if sweep is not None and sweep_rows:
        sfields = {f: t for f, t in
                   class_fields(sweep_sf.code, sweep).items()
                   if t.replace("const", "").strip() in NUMERIC_TYPES}
        scount = {f: 0 for f in sfields}
        for _name, refs, _pos in sweep_rows:
            primary = len(refs) == 1
            for ref in refs:
                if ref in scount and primary:
                    scount[ref] += 1
        for field, cnt in sorted(scount.items()):
            if cnt == 0:
                emit(findings, sweep_sf, "metric-row-coverage",
                     sweep.start,
                     f"SweepStats field '{field}' has no primary "
                     f"sweepMetrics() row — the manifest never "
                     f"reports it")
            elif cnt > 1:
                emit(findings, sweep_sf, "metric-row-coverage",
                     sweep.start,
                     f"SweepStats field '{field}' is exported by "
                     f"{cnt} primary sweepMetrics() rows; exactly one")
        for name, refs, pos in sweep_rows:
            for ref in refs:
                if ref.split(".")[0] not in sfields:
                    emit(findings, metrics_sf, "metric-row-coverage",
                         pos,
                         f"sweepMetrics() row '{name}' reads '{ref}', "
                         f"which is not a SweepStats field — stale "
                         f"row")

    # ServeStats coverage (when the tree has a serve surface). The
    # stats frame of lbp-serve-v1 is rendered straight from this
    # table, so an uncovered field is a counter the daemon maintains
    # but never reports to clients.
    serve_sf, serve = find_struct(files, "ServeStats")
    if serve is not None and serve_rows:
        vfields = {f: t for f, t in
                   class_fields(serve_sf.code, serve).items()
                   if t.replace("const", "").strip() in NUMERIC_TYPES}
        vcount = {f: 0 for f in vfields}
        for _name, refs, _pos in serve_rows:
            primary = len(refs) == 1
            for ref in refs:
                if ref in vcount and primary:
                    vcount[ref] += 1
        for field, cnt in sorted(vcount.items()):
            if cnt == 0:
                emit(findings, serve_sf, "metric-row-coverage",
                     serve.start,
                     f"ServeStats field '{field}' has no primary "
                     f"serveMetrics() row — the stats frame never "
                     f"reports it")
            elif cnt > 1:
                emit(findings, serve_sf, "metric-row-coverage",
                     serve.start,
                     f"ServeStats field '{field}' is exported by "
                     f"{cnt} primary serveMetrics() rows; exactly one")
        for name, refs, pos in serve_rows:
            for ref in refs:
                if ref.split(".")[0] not in vfields:
                    emit(findings, metrics_sf, "metric-row-coverage",
                         pos,
                         f"serveMetrics() row '{name}' reads '{ref}', "
                         f"which is not a ServeStats field — stale "
                         f"row")

    # StoreStats coverage (when the tree has a result-store surface).
    # The daemon scrape and the manifest's store section are rendered
    # straight from this table, so an uncovered field is accounting
    # the store keeps but never exposes.
    store_sf, store = find_struct(files, "StoreStats")
    if store is not None and store_rows:
        tfields = {f: t for f, t in
                   class_fields(store_sf.code, store).items()
                   if t.replace("const", "").strip() in NUMERIC_TYPES}
        tcount = {f: 0 for f in tfields}
        for _name, refs, _pos in store_rows:
            primary = len(refs) == 1
            for ref in refs:
                if ref in tcount and primary:
                    tcount[ref] += 1
        for field, cnt in sorted(tcount.items()):
            if cnt == 0:
                emit(findings, store_sf, "metric-row-coverage",
                     store.start,
                     f"StoreStats field '{field}' has no primary "
                     f"storeMetrics() row — the scrape never "
                     f"reports it")
            elif cnt > 1:
                emit(findings, store_sf, "metric-row-coverage",
                     store.start,
                     f"StoreStats field '{field}' is exported by "
                     f"{cnt} primary storeMetrics() rows; exactly one")
        for name, refs, pos in store_rows:
            for ref in refs:
                if ref.split(".")[0] not in tfields:
                    emit(findings, metrics_sf, "metric-row-coverage",
                         pos,
                         f"storeMetrics() row '{name}' reads '{ref}', "
                         f"which is not a StoreStats field — stale "
                         f"row")


# ---------------------------------------------------------------------
# Re-hosted rules: banned calls and hot-path allocation
# ---------------------------------------------------------------------

BANNED_CALLS = [
    ("no-raw-assert", re.compile(r"(?<![\w:])assert\s*\("),
     "use lbp_assert (common/logging.hh) instead of assert"),
    ("no-raw-random", re.compile(r"(?<![\w:])s?rand\s*\("),
     "use common/random.hh instead of rand()/srand()"),
    ("no-raw-random", re.compile(r"\bstd\s*::\s*s?rand\b"),
     "use common/random.hh instead of std::rand/std::srand"),
    ("no-raw-time", re.compile(r"(?<![\w:])time\s*\("),
     "wall-clock time breaks determinism; seed explicitly"),
    ("no-raw-time",
     re.compile(r"\b(?:system|steady|high_resolution)_clock\b"),
     "wall-clock time breaks determinism; timing goes through "
     "Stopwatch (common/telemetry.hh)"),
    ("no-raw-thread",
     re.compile(r"\bstd\s*::\s*(?:jthread|thread|async)\b"),
     "spawn threads only via common/thread_pool.hh (ThreadPool)"),
    ("no-raw-thread", re.compile(r"\bpthread_create\s*\("),
     "spawn threads only via common/thread_pool.hh (ThreadPool)"),
]

BANNED_INCLUDES = [
    ("no-raw-random", re.compile(r"#\s*include\s*<random>"),
     "use common/random.hh instead of <random>"),
    ("no-raw-time", re.compile(r"#\s*include\s*<ctime>"),
     "wall-clock time breaks determinism; drop <ctime>"),
]

# Scopes sanctioned to implement the wrapped facility: class scopes by
# name, function scopes by (owner or bare) name. Replaces lbp_lint's
# whole-file exemptions.
SCOPE_ALLOW = {
    "no-raw-thread": {("class", "ThreadPool"),
                      ("function", "resolveJobs")},
    "no-raw-time": {("class", "Stopwatch")},
}


def scope_allows(rule, sf, pos):
    allowed = SCOPE_ALLOW.get(rule)
    if not allowed:
        return False
    for sc in sf.scopes:
        if sc.start < pos < (sc.end or 0):
            if (sc.kind, sc.name) in allowed:
                return True
            if sc.kind == "function" and sc.owner and \
                    ("class", sc.owner) in allowed:
                return True
    return False


def check_banned_calls(sf, findings):
    for rule, pattern, message in BANNED_CALLS:
        for m in pattern.finditer(sf.code):
            if scope_allows(rule, sf, m.start()):
                continue
            emit(findings, sf, rule, m.start(), message)
    for rule, pattern, message in BANNED_INCLUDES:
        # Includes live on blanked preprocessor lines; scan the
        # stripped text instead.
        for m in pattern.finditer(sf.stripped):
            posix = sf.rel
            if rule == "no-raw-thread" and "thread_pool" in posix:
                continue
            emit(findings, sf, rule, m.start(), message)


HOT_ALLOC_FUNCS = {
    "core/core.cc": ("OooCore", [
        "stepCycle", "retireStage", "resolveStage", "deferStage",
        "allocStage", "fetchStage", "scheduleInst", "doFlush",
        "handleEarlyResteer", "makeInst", "nextWakeup",
        "fastForwardTo", "btbCheck", "icacheCheck",
    ]),
    "bpu/tage.cc": ("TagePredictor", [
        "predict", "specUpdateHist", "checkpoint", "restore", "train",
    ]),
}

HOT_ALLOC_PATTERN = re.compile(
    r"\bnew\b|\bmake_unique\s*<|\bmake_shared\s*<|"
    r"\.\s*(?:push_back|emplace_back|resize|reserve)\s*\(")

LEGACY_HOT_ALLOW = "lint:allow-hot-alloc"


def check_hot_path_alloc(sf, findings):
    spec = None
    for suffix, s in HOT_ALLOC_FUNCS.items():
        if sf.rel.endswith(suffix):
            spec = s
            break
    if spec is None:
        return
    owner, names = spec
    for sc in sf.scopes:
        if sc.kind != "function" or sc.name not in names:
            continue
        if sc.owner is not None and sc.owner != owner:
            continue
        body = sf.code[sc.start:sc.end]
        for m in HOT_ALLOC_PATTERN.finditer(body):
            emit(findings, sf, "no-hot-path-alloc",
                 sc.start + m.start(),
                 f"allocation in hot function {sc.name}(): the "
                 f"per-cycle path must use preallocated pools/rings "
                 f"(construction-time code may carry "
                 f"'// {LEGACY_HOT_ALLOW}')",
                 extra_markers=(LEGACY_HOT_ALLOW,))


# ---------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------

RULE_IDS = [
    ("spec-state-write",
     "Predictor state mutated outside the repair interface"),
    ("unordered-iteration",
     "Iteration over an unordered container (nondeterministic order)"),
    ("pointer-keyed-container",
     "Container keyed or hashed by pointer values"),
    ("parallel-float-accum",
     "Order-dependent float accumulation in a parallel worker"),
    ("stats-counter-dead", "Stats counter declared but never written"),
    ("metric-row-coverage",
     "RunResult/SweepStats/ServeStats/StoreStats field vs "
     "metric-table row "
     "mismatch"),
    ("no-raw-assert", "Raw assert() instead of lbp_assert"),
    ("no-raw-random", "Unseeded libc/std randomness"),
    ("no-raw-time", "Wall-clock access outside Stopwatch"),
    ("no-raw-thread", "Thread spawned outside ThreadPool"),
    ("no-hot-path-alloc", "Allocation on the per-cycle hot path"),
]


def analyze_tree(repo_root, src_root):
    files = []
    for path in iter_source_files(src_root):
        try:
            rel = path.relative_to(repo_root).as_posix()
        except ValueError:
            rel = path.as_posix()
        files.append(SourceFile(path, rel))

    findings = []
    predictor_classes = collect_predictor_classes(files)
    check_spec_state_writes(files, predictor_classes, findings)
    float_fields = collect_float_fields(files)
    for sf in files:
        check_unordered_iteration(sf, findings)
        check_pointer_keys(sf, findings)
        check_parallel_float_accum(sf, float_fields, findings)
        check_banned_calls(sf, findings)
        check_hot_path_alloc(sf, findings)
    check_stats_counter_dead(files, findings)
    check_metric_rows(files, findings)
    findings.sort(key=lambda f: (f.rel, f.line, f.rule))
    return findings


def write_sarif(findings, out_path):
    results = []
    for f in findings:
        results.append({
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.rel},
                    "region": {"startLine": f.line},
                },
            }],
        })
    sarif = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0"
                    ".json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "lbp_analyze",
                "informationUri":
                    "https://example.invalid/lbp/docs/ANALYSIS.md",
                "rules": [{"id": rid,
                           "shortDescription": {"text": desc}}
                          for rid, desc in RULE_IDS],
            }},
            "results": results,
        }],
    }
    Path(out_path).write_text(json.dumps(sarif, indent=2) + "\n",
                              encoding="utf-8")


def load_baseline(path):
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return set(data.get("findings", []))


# ---------------------------------------------------------------------
# Self-test over tools/analyze_fixtures/
# ---------------------------------------------------------------------

FIXTURE_EXPECT = {
    "bad_spec_write.hh": {"spec-state-write": 2},
    "clean_spec.hh": {},
    "bad_unordered_iter.cc": {"unordered-iteration": 2},
    "bad_pointer_key.hh": {"pointer-keyed-container": 2},
    "bad_parallel_accum.cc": {"parallel-float-accum": 1},
    "clean_determinism.cc": {},
    "bad_counters.hh": {"stats-counter-dead": 1},
    "runner.hh": {"metric-row-coverage": 2},
    "metrics.cc": {"metric-row-coverage": 4},
    "protocol.hh": {"metric-row-coverage": 1},
    "result_store.hh": {"metric-row-coverage": 1},
    "core.cc": {"no-hot-path-alloc": 2},
    "bad_calls.cc": {"no-raw-assert": 1, "no-raw-random": 1,
                     "no-raw-time": 1},
    "bad_thread.cc": {"no-raw-thread": 1},
    "clean.hh": {},
}


def self_test(repo_root):
    fixtures = repo_root / "tools" / "analyze_fixtures"
    if not fixtures.is_dir():
        print(f"lbp_analyze: fixture directory {fixtures} missing")
        return 1
    findings = analyze_tree(repo_root, fixtures)

    by_file = {}
    for f in findings:
        name = Path(f.rel).name
        by_file.setdefault(name, {})
        by_file[name][f.rule] = by_file[name].get(f.rule, 0) + 1

    ok = True
    for name, rules in FIXTURE_EXPECT.items():
        got = by_file.get(name, {})
        if got != rules:
            print(f"lbp_analyze self-test: {name}: expected {rules}, "
                  f"got {got}")
            ok = False
    for name in by_file:
        if name not in FIXTURE_EXPECT:
            print(f"lbp_analyze self-test: unexpected findings in "
                  f"{name}: {by_file[name]}")
            ok = False

    # Diff mode: a baseline built from the current findings silences
    # them all; injecting a synthetic new finding must fail the diff.
    baseline = {f.key() for f in findings}
    new = [f for f in findings if f.key() not in baseline]
    if new:
        print("lbp_analyze self-test: diff mode leaked baselined "
              "findings")
        ok = False
    baseline.discard(findings[0].key() if findings else "")
    new = [f for f in findings if f.key() not in baseline]
    if len(new) != 1:
        print(f"lbp_analyze self-test: diff mode should flag exactly "
              f"the one non-baselined finding, got {len(new)}")
        ok = False

    print("lbp_analyze self-test: %s (%d findings across fixtures)" %
          ("PASS" if ok else "FAIL", len(findings)))
    return 0 if ok else 1


def main(argv):
    ap = argparse.ArgumentParser(
        description="scope-aware static analysis for the lbp tree")
    ap.add_argument("repo_root")
    ap.add_argument("--self-test", action="store_true")
    ap.add_argument("--sarif", help="write a SARIF 2.1.0 report here")
    ap.add_argument("--baseline",
                    help="baseline JSON (default "
                         "tools/analyze_baseline.json if present)")
    ap.add_argument("--diff", action="store_true",
                    help="fail only on findings not in the baseline")
    args = ap.parse_args(argv[1:])

    repo_root = Path(args.repo_root).resolve()
    if args.self_test:
        return self_test(repo_root)

    src_root = repo_root / "src"
    if not src_root.is_dir():
        print(f"lbp_analyze: {src_root} is not a directory")
        return 2

    findings = analyze_tree(repo_root, src_root)
    if args.sarif:
        write_sarif(findings, args.sarif)

    baseline_path = args.baseline
    if baseline_path is None:
        default = repo_root / "tools" / "analyze_baseline.json"
        if default.is_file():
            baseline_path = str(default)

    if args.diff and baseline_path:
        baseline = load_baseline(baseline_path)
        new = [f for f in findings if f.key() not in baseline]
        suppressed = len(findings) - len(new)
        for f in new:
            print(f)
        print(f"lbp_analyze: {len(new)} new finding(s), "
              f"{suppressed} baselined")
        return 1 if new else 0

    for f in findings:
        print(f)
    if findings:
        print(f"lbp_analyze: {len(findings)} finding(s)")
        return 1
    print("lbp_analyze: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
