/**
 * @file
 * Run one workload through every repair scheme and print a Table-3
 * style comparison, including the scheme-internal counters (overrides,
 * repairs, denied predictions) that explain *why* each scheme lands
 * where it does.
 *
 * Usage: repair_comparison [category-index] [workload-index]
 *   categories: 0 Server, 1 HPC, 2 ISPEC, 3 FSPEC, 4 MM, 5 BP,
 *               6 Personal
 */

#include <cstdio>
#include <cstdlib>

#include "common/stats.hh"
#include "sim/runner.hh"
#include "workload/suite.hh"

using namespace lbp;

int
main(int argc, char **argv)
{
    const unsigned cat =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 0;
    const unsigned idx =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 0;
    if (cat >= categoryProfiles().size()) {
        std::fprintf(stderr, "category index out of range\n");
        return 1;
    }

    const Program prog =
        buildWorkload(categoryProfiles()[cat], idx, SuiteOptions{}.seed);
    std::printf("workload %s (%s): %u branch sites, %zu basic blocks\n\n",
                prog.name.c_str(), prog.category.c_str(),
                prog.numCondBranches(), prog.blocks.size());

    SimConfig base;
    base.warmupInstrs = 60000;
    base.measureInstrs = 120000;
    const RunResult baseline = runOne(prog, base);
    std::printf("baseline TAGE (%.1fKB): IPC %.3f, MPKI %.2f\n\n",
                baseline.tageKB, baseline.ipc, baseline.mpki);

    struct Row
    {
        const char *name;
        RepairKind kind;
        RepairPorts ports;
        bool coalesce;
    };
    const Row rows[] = {
        {"no-repair", RepairKind::NoRepair, {32, 4, 2}, false},
        {"retire-update", RepairKind::RetireUpdate, {32, 4, 2}, false},
        {"snapshot 32-8-8", RepairKind::Snapshot, {32, 8, 8}, false},
        {"backward-walk 32-4-4", RepairKind::BackwardWalk, {32, 4, 4},
         false},
        {"limited-4PC", RepairKind::LimitedPc, {32, 4, 4}, false},
        {"split-BHT", RepairKind::MultiStage, {32, 4, 4}, false},
        {"forward-walk 32-4-2", RepairKind::ForwardWalk, {32, 4, 2},
         true},
        {"perfect", RepairKind::Perfect, {32, 4, 2}, false},
    };

    TextTable t({"scheme", "IPC", "MPKI", "overrides", "ovr-correct",
                 "repairs", "denied"});
    for (const Row &row : rows) {
        SimConfig cfg = base;
        cfg.useLocal = true;
        cfg.repair.kind = row.kind;
        cfg.repair.ports = row.ports;
        cfg.repair.coalesce = row.coalesce;
        const RunResult r = runOne(prog, cfg);
        t.addRow({row.name, fmtDouble(r.ipc, 3), fmtDouble(r.mpki, 2),
                  std::to_string(r.overrides),
                  r.overrides
                      ? fmtPercent(static_cast<double>(
                                       r.overridesCorrect) /
                                       r.overrides, 1)
                      : "-",
                  std::to_string(r.repairs),
                  std::to_string(r.uncheckpointedMispredicts)});
    }
    std::printf("%s", t.render().c_str());
    return 0;
}
