/**
 * @file
 * Build a program by hand with the ProgramBuilder API — a nested-loop
 * kernel with a data-dependent branch — and study how repair quality
 * changes the loop predictor's value on it.
 *
 * This is the "bring your own workload" path a downstream user takes
 * when they want to model a specific branch population instead of the
 * shipped category suite.
 */

#include <cstdio>
#include <memory>

#include "common/stats.hh"
#include "sim/runner.hh"
#include "workload/builder.hh"

using namespace lbp;

namespace {

Program
makeKernel()
{
    ProgramBuilder builder("custom-kernel", "Custom", /*seed=*/12345);

    // Memory: one L1-resident stream, one L2-sized stream.
    builder.addStream({0x10000000, 16, 8 << 10, false, 1});
    builder.addStream({0x20000000, 32, 128 << 10, false, 2});

    // Inner loop: constant 24-iteration trip — invisible to global
    // history once the body's data-dependent branch scrambles it.
    std::vector<Seg> inner_body;
    inner_body.push_back(Seg::straight(10));
    {
        std::vector<Seg> then_arm, else_arm;
        then_arm.push_back(Seg::straight(3));
        else_arm.push_back(Seg::straight(2));
        inner_body.push_back(Seg::diamond(
            std::make_unique<BiasedRandomBehavior>(300, 7),
            std::move(then_arm), std::move(else_arm)));
    }
    inner_body.push_back(Seg::straight(6));

    auto inner_exit = std::make_unique<LoopExitBehavior>(
        /*dominant_taken=*/true,
        std::vector<LoopExitBehavior::PeriodChoice>{{24, 1}},
        /*seed=*/99);

    // Outer structure: the inner loop plus a forward if-then-else exit
    // that fires every 6th pass (NNN..T shape).
    std::vector<Seg> top;
    top.push_back(Seg::loop(std::move(inner_exit), true,
                            std::move(inner_body)));
    {
        std::vector<Seg> then_arm, else_arm;
        then_arm.push_back(Seg::straight(12));
        else_arm.push_back(Seg::straight(2));
        top.push_back(Seg::diamond(
            std::make_unique<LoopExitBehavior>(
                /*dominant_taken=*/false,
                std::vector<LoopExitBehavior::PeriodChoice>{{6, 1}},
                /*seed=*/7),
            std::move(then_arm), std::move(else_arm)));
    }
    top.push_back(Seg::straight(8));

    return builder.build(std::move(top));
}

} // namespace

int
main()
{
    const Program prog = makeKernel();
    const BranchCensus c = prog.census();
    std::printf("custom kernel: %zu blocks, %u branches "
                "(%u loops, %u fwd-exits, %u random)\n\n",
                prog.blocks.size(), prog.numCondBranches(), c.loops,
                c.forwardExits, c.random);

    SimConfig base;
    base.warmupInstrs = 30000;
    base.measureInstrs = 80000;
    const RunResult baseline = runOne(prog, base);

    TextTable t({"configuration", "IPC", "MPKI"});
    t.addRow({"TAGE only", fmtDouble(baseline.ipc, 3),
              fmtDouble(baseline.mpki, 2)});
    for (const RepairKind kind :
         {RepairKind::NoRepair, RepairKind::RetireUpdate,
          RepairKind::ForwardWalk, RepairKind::Perfect}) {
        SimConfig cfg = base;
        cfg.useLocal = true;
        cfg.repair.kind = kind;
        cfg.repair.ports = {32, 4, 2};
        const RunResult r = runOne(prog, cfg);
        t.addRow({std::string("+ Loop128, ") + repairKindName(kind),
                  fmtDouble(r.ipc, 3), fmtDouble(r.mpki, 2)});
    }
    std::printf("%s", t.render().c_str());
    return 0;
}
