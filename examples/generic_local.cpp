/**
 * @file
 * The paper claims its repair techniques "can be directly extended to
 * any local predictor design". This example substantiates that in
 * code: the generic Yeh-Patt two-level local predictor (per-PC history
 * register + shared pattern table) implements the same LocalPredictor
 * interface as CBPw-Loop — its packed state word is a shift register
 * instead of a run counter — and plugs into the same repair schemes
 * unchanged.
 *
 * We run both local predictors under no-repair, forward-walk and
 * perfect repair on a pattern-heavy workload; the repair ladder should
 * appear for both designs.
 */

#include <cstdio>

#include "common/stats.hh"
#include "sim/runner.hh"
#include "workload/suite.hh"

using namespace lbp;

namespace {

RunResult
runWith(const Program &prog, LocalKind local, RepairKind kind)
{
    SimConfig cfg;
    cfg.warmupInstrs = 60000;
    cfg.measureInstrs = 120000;
    cfg.useLocal = true;
    cfg.repair.localKind = local;
    cfg.repair.kind = kind;
    cfg.repair.ports = {32, 4, 2};
    return runOne(prog, cfg);
}

} // namespace

int
main()
{
    // A BP-category workload: tight loops and repeating if-then-else
    // patterns, the generic local predictor's home turf.
    const Program prog =
        buildWorkload(categoryProfiles()[5], 2, SuiteOptions{}.seed);
    std::printf("workload %s: %u branch sites\n\n", prog.name.c_str(),
                prog.numCondBranches());

    SimConfig base;
    base.warmupInstrs = 60000;
    base.measureInstrs = 120000;
    const RunResult baseline = runOne(prog, base);
    std::printf("baseline TAGE: IPC %.3f, MPKI %.2f\n\n", baseline.ipc,
                baseline.mpki);

    TextTable t({"local predictor", "repair", "IPC", "MPKI",
                 "overrides", "correct"});
    for (const LocalKind local :
         {LocalKind::CbpwLoop, LocalKind::TwoLevel}) {
        for (const RepairKind kind :
             {RepairKind::NoRepair, RepairKind::ForwardWalk,
              RepairKind::Perfect}) {
            const RunResult r = runWith(prog, local, kind);
            t.addRow({local == LocalKind::CbpwLoop ? "CBPw-Loop128"
                                                   : "two-level-128",
                      repairKindName(kind), fmtDouble(r.ipc, 3),
                      fmtDouble(r.mpki, 2), std::to_string(r.overrides),
                      r.overrides
                          ? fmtPercent(static_cast<double>(
                                           r.overridesCorrect) /
                                           r.overrides, 1)
                          : "-"});
        }
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Both designs ride the same repair machinery: the "
                "no-repair -> forward-walk -> perfect ladder holds for "
                "each, which is the paper's extensibility claim.\n");
    return 0;
}
