/**
 * @file
 * Quickstart: simulate one synthetic workload on the Skylake-like core
 * with (a) the baseline TAGE predictor and (b) TAGE plus the CBPw-Loop
 * local predictor under perfect repair and under the paper's
 * forward-walk repair, and print the headline numbers.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "sim/runner.hh"
#include "workload/suite.hh"

using namespace lbp;

namespace {

void
report(const char *label, const RunResult &r)
{
    std::printf("%-28s IPC %.3f   MPKI %6.2f   overrides %llu "
                "(%.1f%% correct)\n",
                label, r.ipc, r.mpki,
                static_cast<unsigned long long>(r.overrides),
                r.overrides ? 100.0 * r.overridesCorrect / r.overrides
                            : 0.0);
}

} // namespace

int
main()
{
    // Build one Server-category workload from the reproduction suite.
    const Program prog =
        buildWorkload(categoryProfiles()[0], 0, SuiteOptions{}.seed);
    const BranchCensus census = prog.census();
    std::printf("workload %s: %u branch sites (%u loops, %u fwd-exits, "
                "%u patterns, %u correlated, %u random)\n\n",
                prog.name.c_str(), prog.numCondBranches(), census.loops,
                census.forwardExits, census.patterns, census.correlated,
                census.random);

    SimConfig base;
    base.warmupInstrs = 30000;
    base.measureInstrs = 100000;

    // (a) Baseline: TAGE only.
    const RunResult tage_only = runOne(prog, base);
    report("TAGE (7.1KB)", tage_only);

    // (b) TAGE + CBPw-Loop128, perfect repair.
    SimConfig perfect = base;
    perfect.useLocal = true;
    perfect.repair.kind = RepairKind::Perfect;
    const RunResult r_perfect = runOne(prog, perfect);
    report("+ CBPw-Loop128 (perfect)", r_perfect);

    // (c) TAGE + CBPw-Loop128, forward-walk repair (FWD-32-4-2).
    SimConfig fwd = base;
    fwd.useLocal = true;
    fwd.repair.kind = RepairKind::ForwardWalk;
    fwd.repair.ports = {32, 4, 2};
    fwd.repair.coalesce = true;
    const RunResult r_fwd = runOne(prog, fwd);
    report("+ CBPw-Loop128 (fwd walk)", r_fwd);

    std::printf("\nIPC gain: perfect %+.2f%%, forward-walk %+.2f%%\n",
                100.0 * (r_perfect.ipc / tage_only.ipc - 1.0),
                100.0 * (r_fwd.ipc / tage_only.ipc - 1.0));
    std::printf("MPKI reduction: perfect %+.1f%%, forward-walk %+.1f%%\n",
                100.0 * (1.0 - r_perfect.mpki / tage_only.mpki),
                100.0 * (1.0 - r_fwd.mpki / tage_only.mpki));
    return 0;
}
