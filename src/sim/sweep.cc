#include "sim/sweep.hh"

#include <cstdio>
#include <mutex>
#include <ostream>

#include "common/jsonl.hh"
#include "common/thread_pool.hh"
#include "obs/metrics.hh"
#include "sim/result_store.hh"
#include "sim/suite_cache.hh"

namespace lbp {

namespace {

const char *
outcomeName(SweepCell::Outcome o)
{
    switch (o) {
      case SweepCell::Outcome::Simulated:
        return "simulated";
      case SweepCell::Outcome::StoreHit:
        return "store_hit";
      case SweepCell::Outcome::CacheHit:
        return "cache_hit";
    }
    return "unknown";
}

/** Deterministic, lossless double rendering (common/jsonl.hh):
 *  cold- and warm-store sweeps must emit identical bytes. */
std::string
num(double v)
{
    return jsonNumber(v);
}

double
cellMinstrPerSec(const SweepCell &cell)
{
    if (cell.wallSeconds <= 0.0)
        return 0.0;
    return static_cast<double>(cell.simInstrs) / 1e6 / cell.wallSeconds;
}

/** `,"trace":"<id>"` when a trace id is set; nothing otherwise, so
 *  untraced (local) event logs keep their historical bytes. */
void
emitTrace(std::ostream &os, const std::string &trace_id)
{
    if (trace_id.empty())
        return;
    os << ",\"trace\":";
    jsonEscape(os, trace_id);
}

void
emitCellEvent(std::ostream &os, const std::string &trace_id,
              const SweepConfig &cfg, const SweepCell &cell)
{
    os << "{\"event\":\"cell\"";
    emitTrace(os, trace_id);
    os << ",\"config\":";
    jsonEscape(os, cfg.name);
    os << ",\"workload\":";
    jsonEscape(os, cell.workload);
    os << ",\"outcome\":\"" << outcomeName(cell.outcome) << '"'
       << ",\"wall_s\":" << num(cell.wallSeconds)
       << ",\"minstr_per_s\":" << num(cellMinstrPerSec(cell))
       << ",\"worker\":" << cell.worker << "}\n";
}

void
emitConfigEvent(std::ostream &os, const std::string &trace_id,
                const SweepConfig &cfg, const std::string &config_key,
                SweepCell::Outcome outcome, double wallSeconds)
{
    os << "{\"event\":\"config\"";
    emitTrace(os, trace_id);
    os << ",\"config\":";
    jsonEscape(os, cfg.name);
    os << ",\"key\":";
    jsonEscape(os, config_key);
    os << ",\"outcome\":\"" << outcomeName(outcome) << '"'
       << ",\"wall_s\":" << num(wallSeconds) << "}\n";
}

void
emitEvictEvent(std::ostream &os, const std::string &trace_id,
               const StoreAuditRecord &rec)
{
    os << "{\"event\":\"store_evict\"";
    emitTrace(os, trace_id);
    os << ",\"file\":";
    jsonEscape(os, rec.file);
    os << ",\"reason\":\"" << rec.reason << "\",\"fingerprint\":";
    jsonEscape(os, rec.fingerprint);
    os << ",\"bytes\":" << rec.bytes
       << ",\"age_s\":" << num(rec.ageSeconds) << "}\n";
}

} // namespace

std::string
renderSweepProgress(std::size_t done, std::size_t total,
                    double elapsedSeconds)
{
    const double pct =
        total ? 100.0 * static_cast<double>(done) /
                    static_cast<double>(total)
              : 100.0;
    char buf[160];
    if (done > 0 && elapsedSeconds > 0.0) {
        const double rate =
            static_cast<double>(done) / elapsedSeconds;
        const double eta =
            static_cast<double>(total - done) / rate;
        std::snprintf(buf, sizeof(buf),
                      "[sweep] %llu/%llu cells (%.1f%%) %.1f cells/s "
                      "ETA %.0fs",
                      static_cast<unsigned long long>(done),
                      static_cast<unsigned long long>(total), pct, rate,
                      eta);
    } else {
        std::snprintf(buf, sizeof(buf),
                      "[sweep] %llu/%llu cells (%.1f%%) ETA --",
                      static_cast<unsigned long long>(done),
                      static_cast<unsigned long long>(total), pct);
    }
    return buf;
}

SweepResult
runSweep(const std::vector<Program> &suite,
         const std::vector<SweepConfig> &configs,
         const SweepOptions &opts)
{
    SweepResult out;
    SuiteCache &cache = opts.cache ? *opts.cache : SuiteCache::process();
    const std::size_t nc = configs.size();
    const std::size_t nw = suite.size();
    out.suiteKey = suiteKey(suite);
    out.configKeys.resize(nc);
    out.configResults.assign(nc, nullptr);
    out.cells.resize(nc * nw);
    out.jobs = resolveJobs(opts.jobs);
    out.stats.cellsTotal = nc * nw;
    out.traceId = opts.traceId;
    out.storeUsed = opts.store != nullptr;

    const ResultStore::StoreStats storeBefore =
        opts.store ? opts.store->stats() : ResultStore::StoreStats{};

    Stopwatch sweepSw;
    if (opts.eventLog) {
        *opts.eventLog << "{\"event\":\"sweep_start\"";
        emitTrace(*opts.eventLog, opts.traceId);
        *opts.eventLog << ",\"configs\":" << nc
                       << ",\"workloads\":" << nw
                       << ",\"cells\":" << nc * nw << "}\n";
    }

    for (std::size_t c = 0; c < nc; ++c) {
        for (std::size_t w = 0; w < nw; ++w) {
            SweepCell &cell = out.cells[c * nw + w];
            cell.configIndex = c;
            cell.workloadIndex = w;
            cell.workload = suite[w].name;
        }
    }

    // Phase 1 (serial): probe the cache, then the store, per config.
    // Store loads enter the cache so the cache owns every result the
    // sweep hands out, whatever its origin.
    std::vector<std::size_t> pending;
    std::size_t done = 0;
    for (std::size_t c = 0; c < nc; ++c) {
        out.configKeys[c] = configKey(configs[c].cfg);
        const std::string key = out.suiteKey + '\n' + out.configKeys[c];

        SweepCell::Outcome outcome = SweepCell::Outcome::Simulated;
        if (const SuiteResult *hit = cache.find(key)) {
            out.configResults[c] = hit;
            outcome = SweepCell::Outcome::CacheHit;
            out.stats.cellsCacheHit += nw;
        } else if (opts.store) {
            if (auto loaded =
                    opts.store->load(out.suiteKey, out.configKeys[c])) {
                out.configResults[c] =
                    &cache.insert(key, std::move(*loaded));
                outcome = SweepCell::Outcome::StoreHit;
                out.stats.cellsStoreHit += nw;
            }
        }
        if (outcome == SweepCell::Outcome::Simulated) {
            pending.push_back(c);
            continue;
        }

        done += nw;
        SuiteTelemetry t;
        t.label = configLabel(configs[c].cfg);
        t.workloads = nw;
        t.memoHit = true;
        TelemetryRegistry::process().record(std::move(t));
        for (std::size_t w = 0; w < nw; ++w) {
            SweepCell &cell = out.cells[c * nw + w];
            cell.outcome = outcome;
            if (opts.eventLog)
                emitCellEvent(*opts.eventLog, opts.traceId, configs[c],
                              cell);
        }
        if (opts.eventLog)
            emitConfigEvent(*opts.eventLog, opts.traceId, configs[c],
                            out.configKeys[c], outcome, 0.0);
    }

    // Phase 2 (parallel): flatten every remaining (config, workload)
    // pair into one queue; uneven cells self-balance across workers.
    struct Task
    {
        std::size_t c;
        std::size_t w;
    };
    std::vector<Task> tasks;
    tasks.reserve(pending.size() * nw);
    for (const std::size_t c : pending)
        for (std::size_t w = 0; w < nw; ++w)
            tasks.push_back(Task{c, w});

    std::vector<SuiteResult> fresh(nc);
    for (const std::size_t c : pending)
        fresh[c].runs.resize(nw);

    std::mutex mu;  // cell records, stats, event log, progress line
    const auto runCell = [&](std::size_t t) {
        const Task &task = tasks[t];
        const SimConfig &cfg = configs[task.c].cfg;
        Stopwatch sw;
        RunResult r = runOne(suite[task.w], cfg);
        const double secs = sw.seconds();
        const std::uint64_t instrs =
            r.stats.retiredInstrs + cfg.warmupInstrs;
        SweepCell &cell = out.cells[task.c * nw + task.w];
        fresh[task.c].runs[task.w] = std::move(r);

        std::lock_guard<std::mutex> lk(mu);
        cell.outcome = SweepCell::Outcome::Simulated;
        cell.wallSeconds = secs;
        cell.simInstrs = instrs;
        cell.worker = ThreadPool::currentIndex();
        ++out.stats.cellsSimulated;
        // analyze:allow(parallel-float-accum): wall-clock telemetry —
        // the summand is already nondeterministic, and the manifest
        // never feeds this back into simulation state.
        out.stats.cellWallSeconds += secs;
        out.stats.simInstrs += instrs;
        ++done;
        if (opts.eventLog)
            emitCellEvent(*opts.eventLog, opts.traceId, configs[task.c],
                          cell);
        if (opts.progress) {
            std::fprintf(opts.progress, "\r%s",
                         renderSweepProgress(done, out.stats.cellsTotal,
                                             sweepSw.seconds())
                             .c_str());
            std::fflush(opts.progress);
        }
    };

    if (!tasks.empty()) {
        if (out.jobs <= 1) {
            for (std::size_t t = 0; t < tasks.size(); ++t)
                runCell(t);
        } else {
            ThreadPool pool(out.jobs);
            pool.parallelFor(tasks.size(), runCell);
        }
    }

    // Phase 3 (serial): assemble telemetry, persist, memoize.
    for (const std::size_t c : pending) {
        SuiteResult &res = fresh[c];
        double wall = 0.0;
        std::uint64_t instrs = 0;
        for (std::size_t w = 0; w < nw; ++w) {
            const SweepCell &cell = out.cells[c * nw + w];
            wall += cell.wallSeconds;
            instrs += cell.simInstrs;
        }
        SuiteTelemetry t;
        t.label = configLabel(configs[c].cfg);
        t.workloads = nw;
        t.jobs = out.jobs;
        t.wallSeconds = wall;
        t.simInstrs = instrs;
        res.telemetry = t;
        TelemetryRegistry::process().record(std::move(t));

        if (opts.store)
            opts.store->save(out.suiteKey, out.configKeys[c], res);
        const std::string key = out.suiteKey + '\n' + out.configKeys[c];
        out.configResults[c] = &cache.insert(key, std::move(res));
        if (opts.eventLog)
            emitConfigEvent(*opts.eventLog, opts.traceId, configs[c],
                            out.configKeys[c],
                            SweepCell::Outcome::Simulated, wall);
    }

    if (opts.store) {
        const ResultStore::StoreStats after = opts.store->stats();
        out.stats.storeHits = after.hits - storeBefore.hits;
        out.stats.storeMisses = after.misses - storeBefore.misses;
        out.stats.storeStale = after.stale - storeBefore.stale;
        out.stats.storeWrites = after.writes - storeBefore.writes;
        // Stale deletes the probes performed, for the manifest's audit
        // trail and the event log — no more silent unlinks.
        out.storeAudit = opts.store->takeAudit();
        if (opts.eventLog)
            for (const StoreAuditRecord &rec : out.storeAudit)
                emitEvictEvent(*opts.eventLog, opts.traceId, rec);
    }
    out.stats.wallSeconds = sweepSw.seconds();

    if (opts.progress)
        std::fprintf(opts.progress, "\r%s\n",
                     renderSweepProgress(done, out.stats.cellsTotal,
                                         out.stats.wallSeconds)
                         .c_str());
    if (opts.eventLog) {
        const SweepStats &s = out.stats;
        *opts.eventLog << "{\"event\":\"sweep_end\"";
        emitTrace(*opts.eventLog, opts.traceId);
        *opts.eventLog << ",\"cells_total\":" << s.cellsTotal
                       << ",\"cells_simulated\":" << s.cellsSimulated
                       << ",\"cells_store_hit\":" << s.cellsStoreHit
                       << ",\"cells_cache_hit\":" << s.cellsCacheHit
                       << ",\"store_hits\":" << s.storeHits
                       << ",\"store_misses\":" << s.storeMisses
                       << ",\"store_stale\":" << s.storeStale
                       << ",\"store_writes\":" << s.storeWrites
                       << ",\"sim_instrs\":" << s.simInstrs
                       << ",\"cell_wall_s\":" << num(s.cellWallSeconds)
                       << ",\"wall_s\":" << num(s.wallSeconds) << "}\n";
    }
    return out;
}

void
writeSweepManifest(std::ostream &os, const SweepResult &res,
                   const std::vector<SweepConfig> &configs)
{
    const std::size_t nc = configs.size();
    const std::size_t nw = nc ? res.cells.size() / nc : 0;
    os << "{\n  \"schema\": \"lbp-sweep-manifest-v1\",\n  \"git_sha\": ";
    jsonEscape(os, gitShaString());
    os << ",\n  \"fingerprint\": ";
    jsonEscape(os, buildFingerprint());
    os << ",\n  \"suite_key\": ";
    jsonEscape(os, res.suiteKey);
    os << ",\n  \"jobs\": " << res.jobs;
    if (!res.traceId.empty()) {
        os << ",\n  \"trace_id\": ";
        jsonEscape(os, res.traceId);
    }
    os << ",\n  \"counters\": ";
    MetricsRegistry reg;
    registerSweepMetrics(reg, res.stats);
    reg.writeJson(os);
    if (res.storeUsed) {
        // Store lifecycle this sweep observed: the stale-delete count
        // plus the full eviction audit trail (empty when nothing was
        // invalidated — warm and cold runs keep identical shapes).
        os << "  ,\n  \"store\": {\"stale_deletes\": "
           << res.stats.storeStale << ", \"evictions\": [";
        for (std::size_t i = 0; i < res.storeAudit.size(); ++i) {
            const StoreAuditRecord &rec = res.storeAudit[i];
            os << (i ? "," : "") << "\n    {\"file\": ";
            jsonEscape(os, rec.file);
            os << ", \"reason\": \"" << rec.reason
               << "\", \"fingerprint\": ";
            jsonEscape(os, rec.fingerprint);
            os << ", \"bytes\": " << rec.bytes << '}';
        }
        os << "]}";
    }
    os << "  ,\n  \"configs\": [\n";
    for (std::size_t c = 0; c < nc; ++c) {
        double wall = 0.0;
        for (std::size_t w = 0; w < nw; ++w)
            wall += res.cells[c * nw + w].wallSeconds;
        const SweepCell::Outcome outcome =
            nw ? res.cells[c * nw].outcome
               : SweepCell::Outcome::Simulated;
        os << "    {\"name\": ";
        jsonEscape(os, configs[c].name);
        os << ", \"label\": ";
        jsonEscape(os, configLabel(configs[c].cfg));
        os << ", \"key\": ";
        jsonEscape(os, res.configKeys[c]);
        os << ", \"outcome\": \"" << outcomeName(outcome)
           << "\", \"wall_s\": " << num(wall) << ",\n     \"cells\": [";
        for (std::size_t w = 0; w < nw; ++w) {
            const SweepCell &cell = res.cells[c * nw + w];
            os << (w ? "," : "") << "\n      {\"workload\": ";
            jsonEscape(os, cell.workload);
            os << ", \"outcome\": \"" << outcomeName(cell.outcome)
               << "\", \"wall_s\": " << num(cell.wallSeconds)
               << ", \"sim_instrs\": " << cell.simInstrs
               << ", \"worker\": " << cell.worker << '}';
        }
        os << "]}" << (c + 1 < nc ? "," : "") << '\n';
    }
    os << "  ]\n}\n";
}

void
writeSweepCsv(std::ostream &os, const SweepResult &res,
              const std::vector<SweepConfig> &configs)
{
    os << "config,workload,category";
    for (const RunMetricDesc &d : runMetrics())
        os << ',' << d.name;
    os << '\n';
    for (std::size_t c = 0; c < configs.size(); ++c) {
        const SuiteResult *sr = res.configResults[c];
        if (!sr)
            continue;
        for (const RunResult &r : sr->runs) {
            os << configs[c].name << ',' << r.workload << ','
               << r.category;
            for (const RunMetricDesc &d : runMetrics()) {
                os << ',';
                if (d.integral)
                    os << static_cast<std::uint64_t>(d.get(r));
                else
                    os << num(d.get(r));
            }
            os << '\n';
        }
    }
}

const std::string &
gitShaString()
{
    static const std::string sha =
#ifdef LBP_GIT_SHA
        LBP_GIT_SHA;
#else
        "unknown";
#endif
    return sha;
}

} // namespace lbp
