#include "sim/suite_cache.hh"

#include <cstdio>

namespace lbp {

namespace {

void
appendField(std::string &out, const char *name, std::uint64_t v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%s=%llu;", name,
                  static_cast<unsigned long long>(v));
    out += buf;
}

void
appendCache(std::string &out, const char *name, const CacheConfig &c)
{
    out += name;
    out += '{';
    appendField(out, "kb", c.sizeKB);
    appendField(out, "ways", c.ways);
    appendField(out, "line", c.lineBytes);
    appendField(out, "lat", c.latency);
    appendField(out, "pf", c.nextLinePrefetch ? 1 : 0);
    out += '}';
}

} // namespace

std::string
configKey(const SimConfig &cfg)
{
    std::string k;
    k.reserve(512);

    appendField(k, "warm", cfg.warmupInstrs);
    appendField(k, "meas", cfg.measureInstrs);
    appendField(k, "audit", cfg.audit ? 1 : 0);
    appendField(k, "auditPanic", cfg.auditPanic ? 1 : 0);
    // cfg.obs is deliberately NOT keyed: observability is purely
    // observational (trace-on results are bit-identical to trace-off),
    // so keying it would only split the cache. A memoized hit therefore
    // carries no ObsRun — callers wanting traces use runSuite directly.
#ifdef LBP_AUDIT
    k += "auditBuild;";
#endif

    const CoreConfig &c = cfg.core;
    k += "core{";
    appendField(k, "fw", c.fetchWidth);
    appendField(k, "aw", c.allocWidth);
    appendField(k, "rw", c.retireWidth);
    appendField(k, "iw", c.issueWidth);
    appendField(k, "rob", c.robEntries);
    appendField(k, "fq", c.fetchQueueEntries);
    appendField(k, "lq", c.loadQueue);
    appendField(k, "sq", c.storeQueue);
    appendField(k, "fed", c.frontEndDepth);
    appendField(k, "dd", c.deferDepth);
    appendField(k, "btb", c.btbEntries);
    appendField(k, "btbw", c.btbWays);
    appendField(k, "btbp", c.btbMissPenalty);
    appendField(k, "mlpc", c.maxLoadsPerCycle);
    appendField(k, "mspc", c.maxStoresPerCycle);
    appendField(k, "mul", c.mulLatency);
    appendField(k, "fp", c.fpLatency);
    appendCache(k, "l1i", c.mem.l1i);
    appendCache(k, "l1d", c.mem.l1d);
    appendCache(k, "l2", c.mem.l2);
    appendCache(k, "llc", c.mem.llc);
    appendField(k, "memlat", c.mem.memLatency);
    k += '}';

    const TageConfig &t = cfg.tage;
    k += "tage{";
    appendField(k, "bim", t.bimodalLog);
    appendField(k, "ctr", t.ctrBits);
    appendField(k, "u", t.uBits);
    appendField(k, "ph", t.phistBits);
    for (const TageTableConfig &tt : t.tables) {
        appendField(k, "sz", tt.sizeLog);
        appendField(k, "tag", tt.tagBits);
        appendField(k, "h", tt.histLen);
    }
    k += '}';

    appendField(k, "local", cfg.useLocal ? 1 : 0);
    if (cfg.useLocal) {
        // The repair config only exists in simulation when useLocal is
        // set (OooCore builds no scheme otherwise), so baseline runs
        // share one entry regardless of leftover repair fields.
        const RepairConfig &r = cfg.repair;
        k += "repair{";
        appendField(k, "kind", static_cast<std::uint64_t>(r.kind));
        appendField(k, "lk", static_cast<std::uint64_t>(r.localKind));
        appendField(k, "m", r.ports.entries);
        appendField(k, "n", r.ports.readPorts);
        appendField(k, "p", r.ports.bhtWritePorts);
        appendField(k, "coal", r.coalesce ? 1 : 0);
        appendField(k, "lm", r.limitedM);
        appendField(k, "linv", r.limitedInvalidate ? 1 : 0);
        appendField(k, "mspt", r.msSplitPt ? 1 : 0);
        appendField(k, "ffw", r.ffWindow);
        appendField(k, "ch", r.useChooser ? 1 : 0);
        appendField(k, "chi",
                    static_cast<std::uint64_t>(
                        static_cast<std::int64_t>(r.chooserInit)));
        k += "loop{";
        appendField(k, "bht", r.loop.bhtEntries);
        appendField(k, "bhtw", r.loop.bhtWays);
        appendField(k, "pt", r.loop.ptEntries);
        appendField(k, "ptw", r.loop.ptWays);
        appendField(k, "cb", r.loop.ptConfBits);
        appendField(k, "ct", r.loop.ptConfThreshold);
        appendField(k, "cp", r.loop.ptConfPenalty);
        appendField(k, "btag", r.loop.bhtTagBits);
        appendField(k, "ptag", r.loop.ptTagBits);
        k += '}';
        k += "2lvl{";
        appendField(k, "bht", r.twoLevel.bhtEntries);
        appendField(k, "bhtw", r.twoLevel.bhtWays);
        appendField(k, "hist", r.twoLevel.histBits);
        appendField(k, "ctr", r.twoLevel.ctrBits);
        appendField(k, "tag", r.twoLevel.bhtTagBits);
        appendField(k, "conf", r.twoLevel.confMargin);
        k += "}}";
    }
    return k;
}

std::string
suiteKey(const std::vector<Program> &suite)
{
    std::string k;
    k.reserve(suite.size() * 32 + 16);
    appendField(k, "n", suite.size());
    for (const Program &p : suite) {
        k += p.name;
        k += '|';
        appendField(k, "b", p.blocks.size());
        appendField(k, "br", p.branches.size());
        appendField(k, "si", p.staticInstCount());
    }
    return k;
}

std::string
suiteCacheKey(const std::vector<Program> &suite, const SimConfig &cfg)
{
    return suiteKey(suite) + '\n' + configKey(cfg);
}

const SuiteResult &
SuiteCache::run(const std::vector<Program> &suite, const SimConfig &cfg,
                unsigned jobs)
{
    const std::string key = suiteCacheKey(suite, cfg);
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = map_.find(key);
        if (it != map_.end()) {
            ++stats_.hits;
            SuiteTelemetry t;
            t.label = configLabel(cfg);
            t.workloads = suite.size();
            t.jobs = it->second->telemetry.jobs;
            t.memoHit = true;
            TelemetryRegistry::process().record(std::move(t));
            return *it->second;
        }
    }

    // Simulate outside the lock; callers are single-threaded at this
    // level (the parallelism lives inside runSuite), so a duplicate
    // concurrent miss is not a real scenario — but stay correct if it
    // happens: first insert wins.
    auto result = std::make_unique<SuiteResult>(runSuite(suite, cfg,
                                                         jobs));
    std::lock_guard<std::mutex> lk(mu_);
    auto [it, inserted] = map_.emplace(key, std::move(result));
    if (inserted)
        ++stats_.misses;
    else
        ++stats_.hits;
    return *it->second;
}

const SuiteResult *
SuiteCache::find(const std::string &key)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = map_.find(key);
    if (it == map_.end())
        return nullptr;
    ++stats_.hits;
    return it->second.get();
}

const SuiteResult &
SuiteCache::insert(const std::string &key, SuiteResult res)
{
    auto owned = std::make_unique<SuiteResult>(std::move(res));
    std::lock_guard<std::mutex> lk(mu_);
    auto [it, inserted] = map_.emplace(key, std::move(owned));
    (void)inserted;
    return *it->second;
}

SuiteCache::CacheStats
SuiteCache::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

std::size_t
SuiteCache::entries() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return map_.size();
}

void
SuiteCache::clear()
{
    std::lock_guard<std::mutex> lk(mu_);
    map_.clear();
    stats_ = CacheStats{};
}

SuiteCache &
SuiteCache::process()
{
    static SuiteCache cache;
    return cache;
}

const SuiteResult &
runSuiteCached(const std::vector<Program> &suite, const SimConfig &cfg,
               unsigned jobs)
{
    return SuiteCache::process().run(suite, cfg, jobs);
}

} // namespace lbp
