/**
 * @file
 * Persistent cross-process memoization of whole-suite simulations.
 *
 * SuiteCache (suite_cache.hh) memoizes within one process; every fresh
 * bench or CI invocation still re-simulates the TAGE baseline and the
 * perfect-repair reference from scratch. ResultStore extends the same
 * keying to disk: completed SuiteResults are serialized under
 * (build fingerprint, suiteKey, configKey), so a repeated invocation —
 * warm CI job, second figure bench, re-run sweep — loads results in
 * milliseconds and performs zero simulations.
 *
 * Staleness is handled by construction, not by trust: the fingerprint
 * embeds the SHA-256 of tests/golden_stats_fixture.hh (the committed
 * pin of the simulator's bit-exact behavior — any behavioral change
 * regenerates it) plus the compiler and result-affecting build flags.
 * An entry whose fingerprint or keys no longer match is counted stale,
 * deleted, and re-simulated; a stored hit is therefore always
 * bit-identical to what a fresh simulation would produce.
 *
 * Serialization is exact: doubles round-trip through C99 hex-float
 * (%a), so a warm-store pass emits byte-identical CSVs to the cold
 * pass that populated it (tests/test_result_store.cc pins this).
 */

#ifndef LBP_SIM_RESULT_STORE_HH
#define LBP_SIM_RESULT_STORE_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>

#include "sim/runner.hh"

namespace lbp {

/**
 * Fingerprint of everything besides (suite, config) that could change
 * a result: the golden-stats fixture hash (behavioral pin), compiler
 * version, and result-relevant build flags (LBP_AUDIT, NDEBUG). Two
 * builds with equal fingerprints produce bit-identical SuiteResults
 * for equal keys.
 */
const std::string &buildFingerprint();

/**
 * Serialize @p res under (@p fingerprint, @p suite_key, @p config_key)
 * in the store's line-based text format (doubles as %a hex-floats, so
 * the round trip is bit-exact). Exposed separately from ResultStore so
 * tests can craft entries with doctored fingerprints.
 */
void serializeSuiteResult(std::ostream &os,
                          const std::string &fingerprint,
                          const std::string &suite_key,
                          const std::string &config_key,
                          const SuiteResult &res);

/**
 * Parse a serialized entry, validating the fingerprint and both keys
 * against the expected values. Returns null on any mismatch or parse
 * error (the caller treats that as a stale entry). The returned
 * result's telemetry is marked as a store hit (no wall time, no
 * simulated instructions).
 */
std::unique_ptr<SuiteResult>
deserializeSuiteResult(std::istream &is, const std::string &fingerprint,
                       const std::string &suite_key,
                       const std::string &config_key);

/**
 * On-disk store of completed SuiteResults, one file per
 * (fingerprint, suiteKey, configKey) entry. Thread-safe; the sweep
 * orchestrator shares one instance across its workers. The directory
 * is created lazily on first save.
 */
class ResultStore
{
  public:
    /** Hit/miss/staleness counters, exported via sweepMetrics(). */
    struct StoreStats
    {
        std::uint64_t hits = 0;     ///< entries loaded from disk
        std::uint64_t misses = 0;   ///< lookups with no usable entry
        std::uint64_t stale = 0;    ///< entries invalidated and removed
        std::uint64_t writes = 0;   ///< entries persisted
    };

    /** Open (without touching) the store rooted at @p dir. */
    explicit ResultStore(std::string dir);

    /**
     * Load the entry for (suite_key, config_key) under the current
     * build fingerprint. Null on miss; a present-but-mismatched entry
     * (old fingerprint, hash collision, truncated file) counts as
     * stale, is deleted, and reports as a miss.
     */
    std::unique_ptr<SuiteResult> load(const std::string &suite_key,
                                      const std::string &config_key);

    /**
     * Persist @p res for (suite_key, config_key). Returns false (and
     * warns) on I/O failure — the sweep continues, just colder.
     */
    bool save(const std::string &suite_key,
              const std::string &config_key, const SuiteResult &res);

    StoreStats stats() const;

    /** Store directory as given at construction. */
    const std::string &dir() const { return dir_; }

    /**
     * File name (inside dir()) for an entry: an FNV-1a-64 digest of
     * (fingerprint, suite key, config key), so entries are stable
     * across processes and distinct configurations never share a file.
     */
    static std::string entryFileName(const std::string &fingerprint,
                                     const std::string &suite_key,
                                     const std::string &config_key);

  private:
    std::string dir_;
    mutable std::mutex mu_;
    StoreStats stats_;
};

} // namespace lbp

#endif // LBP_SIM_RESULT_STORE_HH
