/**
 * @file
 * Persistent cross-process memoization of whole-suite simulations.
 *
 * SuiteCache (suite_cache.hh) memoizes within one process; every fresh
 * bench or CI invocation still re-simulates the TAGE baseline and the
 * perfect-repair reference from scratch. ResultStore extends the same
 * keying to disk: completed SuiteResults are serialized under
 * (build fingerprint, suiteKey, configKey), so a repeated invocation —
 * warm CI job, second figure bench, re-run sweep — loads results in
 * milliseconds and performs zero simulations.
 *
 * Staleness is handled by construction, not by trust: the fingerprint
 * embeds the SHA-256 of tests/golden_stats_fixture.hh (the committed
 * pin of the simulator's bit-exact behavior — any behavioral change
 * regenerates it) plus the compiler and result-affecting build flags.
 * An entry whose fingerprint or keys no longer match is counted stale,
 * deleted, and re-simulated; a stored hit is therefore always
 * bit-identical to what a fresh simulation would produce.
 *
 * Serialization is exact: doubles round-trip through C99 hex-float
 * (%a), so a warm-store pass emits byte-identical CSVs to the cold
 * pass that populated it (tests/test_result_store.cc pins this).
 */

#ifndef LBP_SIM_RESULT_STORE_HH
#define LBP_SIM_RESULT_STORE_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/runner.hh"

namespace lbp {

/**
 * Fingerprint of everything besides (suite, config) that could change
 * a result: the golden-stats fixture hash (behavioral pin), compiler
 * version, and result-relevant build flags (LBP_AUDIT, NDEBUG). Two
 * builds with equal fingerprints produce bit-identical SuiteResults
 * for equal keys.
 */
const std::string &buildFingerprint();

/**
 * Serialize @p res under (@p fingerprint, @p suite_key, @p config_key)
 * in the store's line-based text format (doubles as %a hex-floats, so
 * the round trip is bit-exact). Exposed separately from ResultStore so
 * tests can craft entries with doctored fingerprints.
 */
void serializeSuiteResult(std::ostream &os,
                          const std::string &fingerprint,
                          const std::string &suite_key,
                          const std::string &config_key,
                          const SuiteResult &res);

/**
 * Parse a serialized entry, validating the fingerprint and both keys
 * against the expected values. Returns null on any mismatch or parse
 * error (the caller treats that as a stale entry). The returned
 * result's telemetry is marked as a store hit (no wall time, no
 * simulated instructions).
 */
std::unique_ptr<SuiteResult>
deserializeSuiteResult(std::istream &is, const std::string &fingerprint,
                       const std::string &suite_key,
                       const std::string &config_key);

/**
 * Store-lifecycle counters, exported via storeMetrics() (the per-sweep
 * deltas of the first four also flow into sweepMetrics()). Lifetime of
 * one ResultStore instance — a resident daemon accumulates them across
 * every sweep it executes.
 */
struct StoreStats
{
    std::uint64_t hits = 0;     ///< entries loaded from disk
    std::uint64_t misses = 0;   ///< lookups with no usable entry
    std::uint64_t stale = 0;    ///< entries invalidated and removed
    std::uint64_t writes = 0;   ///< entries persisted
    std::uint64_t bytesRead = 0;     ///< bytes of entries loaded
    std::uint64_t bytesWritten = 0;  ///< bytes of entries persisted
    std::uint64_t gcEvicted = 0;       ///< entries removed by gc()
    std::uint64_t gcEvictedBytes = 0;  ///< bytes reclaimed by gc()
};

/**
 * Per-build-fingerprint accounting: which build's entries are being
 * hit, missed and invalidated. Hits/misses/writes accrue to the
 * running build's fingerprint; stale deletes accrue to the fingerprint
 * recorded in the evicted entry (or "unreadable"), so a scrape shows
 * exactly whose leftovers a shared store is shedding.
 */
struct FingerprintStats
{
    std::uint64_t hits = 0;    ///< usable loads under this fingerprint
    std::uint64_t misses = 0;  ///< lookups that found nothing usable
    std::uint64_t stale = 0;   ///< entries of this fingerprint evicted
    std::uint64_t bytes = 0;   ///< bytes loaded + persisted
};

/**
 * One store eviction, for the audit trail: stale deletes on load and
 * gc() removals both produce these. Sweeps forward them into the
 * event log and manifest; the daemon streams them as event records.
 */
struct StoreAuditRecord
{
    std::string file;         ///< entry file name inside dir()
    std::string reason;       ///< "stale" / "age" / "size"
    std::string fingerprint;  ///< evicted entry's recorded fingerprint
    std::uint64_t bytes = 0;  ///< file size at eviction
    double ageSeconds = 0.0;  ///< mtime age when evicted (gc only)
};

/**
 * Retention policy for ResultStore::gc(): entries older than
 * maxAgeSeconds are evicted, then the oldest entries go until the
 * store fits under maxBytes. Zero disables either limit.
 */
struct StoreGcPolicy
{
    double maxAgeSeconds = 0.0;  ///< evict entries older than this
    std::uint64_t maxBytes = 0;  ///< then cap total store size
};

/**
 * On-disk store of completed SuiteResults, one file per
 * (fingerprint, suiteKey, configKey) entry. Thread-safe; the sweep
 * orchestrator shares one instance across its workers. The directory
 * is created lazily on first save.
 */
class ResultStore
{
  public:
    /** Historical nested-name spelling of the counters struct. */
    using StoreStats = ::lbp::StoreStats;

    /** Open (without touching) the store rooted at @p dir. */
    explicit ResultStore(std::string dir);

    /**
     * Load the entry for (suite_key, config_key) under the current
     * build fingerprint. Null on miss; a present-but-mismatched entry
     * (old fingerprint, hash collision, truncated file) counts as
     * stale, is deleted, and reports as a miss.
     */
    std::unique_ptr<SuiteResult> load(const std::string &suite_key,
                                      const std::string &config_key);

    /**
     * Persist @p res for (suite_key, config_key). Returns false (and
     * warns) on I/O failure — the sweep continues, just colder.
     */
    bool save(const std::string &suite_key,
              const std::string &config_key, const SuiteResult &res);

    StoreStats stats() const;

    /** Per-fingerprint accounting snapshot (deterministic key order). */
    std::map<std::string, FingerprintStats> fingerprintStats() const;

    /**
     * Drain the eviction audit trail accumulated since the last call
     * (stale deletes and gc() removals, in occurrence order).
     */
    std::vector<StoreAuditRecord> takeAudit();

    /**
     * Garbage-collect by age then size cap (see StoreGcPolicy): scan
     * the directory for *.result entries, evict everything older than
     * the age limit, then evict oldest-first until the remainder fits
     * under the byte cap. Deterministic order (age, then file name).
     * Returns the evictions performed; the same records also join the
     * audit trail and bump the gc counters.
     */
    std::vector<StoreAuditRecord> gc(const StoreGcPolicy &policy);

    /** Store directory as given at construction. */
    const std::string &dir() const { return dir_; }

    /**
     * File name (inside dir()) for an entry: an FNV-1a-64 digest of
     * (fingerprint, suite key, config key), so entries are stable
     * across processes and distinct configurations never share a file.
     */
    static std::string entryFileName(const std::string &fingerprint,
                                     const std::string &suite_key,
                                     const std::string &config_key);

  private:
    std::string dir_;
    mutable std::mutex mu_;
    StoreStats stats_;
    std::map<std::string, FingerprintStats> fps_;
    std::vector<StoreAuditRecord> audit_;
};

} // namespace lbp

#endif // LBP_SIM_RESULT_STORE_HH
