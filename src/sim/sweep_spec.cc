#include "sim/sweep_spec.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "sim/suite_cache.hh"
#include "workload/suite.hh"

namespace lbp {

bool
sweepSchemeKind(const std::string &name, RepairKind &kind)
{
    const struct
    {
        const char *name;
        RepairKind k;
    } names[] = {
        {"perfect", RepairKind::Perfect},
        {"no-repair", RepairKind::NoRepair},
        {"retire-update", RepairKind::RetireUpdate},
        {"backward-walk", RepairKind::BackwardWalk},
        {"snapshot", RepairKind::Snapshot},
        {"forward-walk", RepairKind::ForwardWalk},
        {"limited-pc", RepairKind::LimitedPc},
        {"multi-stage", RepairKind::MultiStage},
        {"future-file", RepairKind::FutureFile},
    };
    for (const auto &n : names) {
        if (name == n.name) {
            kind = n.k;
            return true;
        }
    }
    return false;
}

namespace {

/**
 * Parse one `config` line: scheme name plus optional ports=M-N-P,
 * loop=64|128|256, tage=7|9|57, limited-m=M, coalesce, name=<id>
 * modifiers. Budgets are the spec's current ones.
 */
bool
parseConfigLine(std::istringstream &ls, const SweepSpec &spec,
                SweepConfig &out, std::string &error)
{
    std::string scheme;
    if (!(ls >> scheme)) {
        error = "spec: 'config' needs a scheme name";
        return false;
    }

    out = SweepConfig();
    out.name = scheme;
    out.cfg.warmupInstrs = spec.warmupInstrs;
    out.cfg.measureInstrs = spec.measureInstrs;
    if (scheme != "baseline") {
        RepairKind kind;
        if (!sweepSchemeKind(scheme, kind)) {
            error = "spec: unknown scheme '" + scheme + "'";
            return false;
        }
        out.cfg.useLocal = true;
        out.cfg.repair.kind = kind;
    }

    std::string tok;
    while (ls >> tok) {
        if (tok == "coalesce") {
            out.cfg.repair.coalesce = true;
            continue;
        }
        const std::size_t eq = tok.find('=');
        if (eq == std::string::npos) {
            error = "spec: bad config modifier '" + tok + "'";
            return false;
        }
        const std::string k = tok.substr(0, eq);
        const std::string v = tok.substr(eq + 1);
        if (k == "name") {
            out.name = v;
        } else if (k == "ports") {
            unsigned m = 0, n = 0, p = 0;
            if (std::sscanf(v.c_str(), "%u-%u-%u", &m, &n, &p) != 3) {
                error = "spec: ports wants M-N-P";
                return false;
            }
            out.cfg.repair.ports = {m, n, p};
        } else if (k == "loop") {
            if (v == "64")
                out.cfg.repair.loop = LoopConfig::entries64();
            else if (v == "128")
                out.cfg.repair.loop = LoopConfig::entries128();
            else if (v == "256")
                out.cfg.repair.loop = LoopConfig::entries256();
            else {
                error = "spec: loop must be 64, 128 or 256";
                return false;
            }
        } else if (k == "tage") {
            if (v == "7")
                out.cfg.tage = TageConfig::kb7();
            else if (v == "9")
                out.cfg.tage = TageConfig::kb9();
            else if (v == "57")
                out.cfg.tage = TageConfig::kb57();
            else {
                error = "spec: tage must be 7, 9 or 57";
                return false;
            }
        } else if (k == "limited-m") {
            out.cfg.repair.limitedM =
                static_cast<unsigned>(std::atoi(v.c_str()));
        } else {
            error = "spec: unknown config key '" + k + "'";
            return false;
        }
    }
    return true;
}

} // namespace

bool
parseSweepSpecText(const std::string &text, SweepSpec &spec,
                   std::string &error)
{
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ls(line);
        std::string word;
        if (!(ls >> word))
            continue;
        if (word == "suite") {
            std::string v;
            ls >> v;
            if (v == "all") {
                spec.fullSuite = true;
                spec.suite = 0;
            } else {
                spec.fullSuite = false;
                spec.suite =
                    static_cast<unsigned>(std::atoi(v.c_str()));
            }
        } else if (word == "warmup") {
            ls >> spec.warmupInstrs;
        } else if (word == "instr") {
            ls >> spec.measureInstrs;
        } else if (word == "config") {
            SweepConfig sc;
            if (!parseConfigLine(ls, spec, sc, error))
                return false;
            spec.configs.push_back(std::move(sc));
        } else {
            error = "spec: unknown directive '" + word + "'";
            return false;
        }
    }
    return true;
}

std::vector<SweepConfig>
defaultFigureConfigs(const SweepSpec &spec)
{
    const char *schemes[] = {
        "baseline",      "perfect",      "no-repair",
        "retire-update", "backward-walk", "snapshot",
        "forward-walk",  "forward-walk+merge", "limited-pc",
        "multi-stage",   "future-file",
    };
    std::vector<SweepConfig> configs;
    for (const char *s : schemes) {
        std::string scheme = s;
        const bool merge = scheme == "forward-walk+merge";
        std::istringstream mods(merge ? "forward-walk coalesce "
                                        "name=forward-walk+merge"
                                      : scheme);
        SweepConfig sc;
        std::string error;
        // The default set is a fixed, well-formed spec; a parse
        // failure here is a programming error, not user input.
        if (parseConfigLine(mods, spec, sc, error))
            configs.push_back(std::move(sc));
    }
    return configs;
}

void
finalizeSweepSpec(SweepSpec &spec)
{
    if (spec.configs.empty())
        spec.configs = defaultFigureConfigs(spec);
}

std::vector<Program>
buildSpecSuite(const SweepSpec &spec)
{
    SuiteOptions sopts;
    sopts.maxWorkloads = spec.fullSuite ? 0 : spec.suite;
    return buildSuite(sopts);
}

std::string
sweepRequestKey(const std::vector<Program> &suite,
                const std::vector<SweepConfig> &configs)
{
    std::string key = suiteKey(suite);
    for (const SweepConfig &sc : configs) {
        key += '\n';
        key += sc.name;
        key += '\x1f';
        key += configKey(sc.cfg);
    }
    return key;
}

} // namespace lbp
