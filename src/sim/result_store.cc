#include "sim/result_store.hh"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace lbp {

namespace {

constexpr const char *kMagic = "lbp-result-store 1";

/** FNV-1a 64-bit over @p s. */
std::uint64_t
fnv1a64(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

void
appendU64(std::string &out, std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), " %" PRIu64, v);
    out += buf;
}

/** Hex-float rendering: exact round trip, no locale dependence. */
void
appendF64(std::string &out, double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), " %a", v);
    out += buf;
}

/** Pull the next space-separated token off @p is into a u64. */
bool
readU64(std::istringstream &is, std::uint64_t &v)
{
    std::string tok;
    if (!(is >> tok))
        return false;
    char *end = nullptr;
    v = std::strtoull(tok.c_str(), &end, 10);
    return end && *end == '\0';
}

bool
readF64(std::istringstream &is, double &v)
{
    std::string tok;
    if (!(is >> tok))
        return false;
    char *end = nullptr;
    v = std::strtod(tok.c_str(), &end);
    return end && *end == '\0';
}

/** Line must start with @p tag followed by a space (or be exactly it). */
bool
stripTag(const std::string &line, const char *tag, std::string &rest)
{
    const std::size_t n = std::strlen(tag);
    if (line.compare(0, n, tag) != 0)
        return false;
    if (line.size() == n) {
        rest.clear();
        return true;
    }
    if (line[n] != ' ')
        return false;
    rest = line.substr(n + 1);
    return true;
}

/** Fingerprint recorded in the entry at @p path ("unreadable" when the
 *  header cannot be parsed) — attribution for eviction audits. */
std::string
readEntryFingerprint(const std::filesystem::path &path)
{
    std::ifstream in(path);
    std::string line, rest;
    if (in && std::getline(in, line) && line == kMagic &&
        std::getline(in, line) && stripTag(line, "fingerprint", rest))
        return rest;
    return "unreadable";
}

/** File size with errors collapsed to zero. */
std::uint64_t
fileBytes(const std::filesystem::path &path)
{
    std::error_code ec;
    const std::uintmax_t sz = std::filesystem::file_size(path, ec);
    return ec ? 0 : static_cast<std::uint64_t>(sz);
}

} // namespace

const std::string &
buildFingerprint()
{
    static const std::string fp = [] {
        std::string f = "store-v1;golden=";
#ifdef LBP_GOLDEN_FIXTURE_HASH
        f += LBP_GOLDEN_FIXTURE_HASH;
#else
        f += "unknown";
#endif
        f += ";compiler=";
        f += __VERSION__;
#ifdef LBP_AUDIT
        f += ";audit";
#endif
#ifdef NDEBUG
        f += ";ndebug";
#endif
        return f;
    }();
    return fp;
}

void
serializeSuiteResult(std::ostream &os, const std::string &fingerprint,
                     const std::string &suite_key,
                     const std::string &config_key,
                     const SuiteResult &res)
{
    os << kMagic << '\n'
       << "fingerprint " << fingerprint << '\n'
       << "suite " << suite_key << '\n'
       << "config " << config_key << '\n';
    std::string tel = "telemetry";
    appendU64(tel, res.telemetry.simInstrs);
    tel += ' ';
    tel += res.telemetry.label;
    os << tel << '\n';
    os << "runs " << res.runs.size() << '\n';
    for (const RunResult &r : res.runs) {
        // Workload/category names are space-free by construction
        // (suite.cc "Category:N"); '|' keeps the pair one token each.
        os << "run " << r.workload << '|' << r.category << '\n';
        std::string line = "cs";
        appendU64(line, r.stats.cycles);
        appendU64(line, r.stats.retiredInstrs);
        appendU64(line, r.stats.retiredCond);
        appendU64(line, r.stats.mispredicts);
        appendU64(line, r.stats.earlyResteers);
        appendU64(line, r.stats.wrongPathFetched);
        appendU64(line, r.stats.btbMisses);
        appendU64(line, r.stats.fetchedInstrs);
        os << line << '\n';
        line = "rc";
        appendU64(line, r.overrides);
        appendU64(line, r.overridesCorrect);
        appendU64(line, r.repairs);
        appendU64(line, r.repairWrites);
        appendU64(line, r.earlyResteers);
        appendU64(line, r.earlyResteersWrong);
        appendU64(line, r.uncheckpointedMispredicts);
        appendU64(line, r.deniedPredictions);
        appendU64(line, r.skippedSpecUpdates);
        appendU64(line, r.maxRepairsNeeded);
        os << line << '\n';
        line = "au";
        appendU64(line, r.auditChecks);
        appendU64(line, r.auditViolations);
        appendU64(line, r.auditResyncs);
        appendU64(line, r.auditSkipped);
        appendU64(line, r.auditUncovered);
        os << line << '\n';
        line = "ca";
        appendU64(line, r.cacheAccesses);
        appendU64(line, r.cacheMisses);
        appendU64(line, r.cachePrefetchFills);
        os << line << '\n';
        line = "fp";
        appendF64(line, r.ipc);
        appendF64(line, r.mpki);
        appendF64(line, r.avgRepairsNeeded);
        appendF64(line, r.avgWalkLength);
        appendF64(line, r.avgRepairWrites);
        appendF64(line, r.avgRepairCycles);
        appendF64(line, r.tageKB);
        appendF64(line, r.localKB);
        appendF64(line, r.repairKB);
        os << line << '\n';
    }
    os << "end\n";
}

std::unique_ptr<SuiteResult>
deserializeSuiteResult(std::istream &is,
                       const std::string &fingerprint,
                       const std::string &suite_key,
                       const std::string &config_key)
{
    std::string line, rest;
    if (!std::getline(is, line) || line != kMagic)
        return nullptr;
    if (!std::getline(is, line) ||
        !stripTag(line, "fingerprint", rest) || rest != fingerprint)
        return nullptr;
    if (!std::getline(is, line) || !stripTag(line, "suite", rest) ||
        rest != suite_key)
        return nullptr;
    if (!std::getline(is, line) || !stripTag(line, "config", rest) ||
        rest != config_key)
        return nullptr;

    auto res = std::make_unique<SuiteResult>();
    if (!std::getline(is, line) || !stripTag(line, "telemetry", rest))
        return nullptr;
    {
        std::istringstream ls(rest);
        if (!readU64(ls, res->telemetry.simInstrs))
            return nullptr;
        std::string label;
        std::getline(ls, label);
        if (!label.empty() && label.front() == ' ')
            label.erase(0, 1);
        res->telemetry.label = label;
        // A loaded entry performed no simulation in this process.
        res->telemetry.memoHit = true;
        res->telemetry.wallSeconds = 0.0;
        res->telemetry.simInstrs = 0;
    }

    if (!std::getline(is, line) || !stripTag(line, "runs", rest))
        return nullptr;
    const std::uint64_t n = std::strtoull(rest.c_str(), nullptr, 10);
    res->runs.resize(n);
    res->telemetry.workloads = n;
    for (std::uint64_t i = 0; i < n; ++i) {
        RunResult &r = res->runs[i];
        if (!std::getline(is, line) || !stripTag(line, "run", rest))
            return nullptr;
        const std::size_t bar = rest.find('|');
        if (bar == std::string::npos)
            return nullptr;
        r.workload = rest.substr(0, bar);
        r.category = rest.substr(bar + 1);

        if (!std::getline(is, line) || !stripTag(line, "cs", rest))
            return nullptr;
        std::istringstream cs(rest);
        if (!readU64(cs, r.stats.cycles) ||
            !readU64(cs, r.stats.retiredInstrs) ||
            !readU64(cs, r.stats.retiredCond) ||
            !readU64(cs, r.stats.mispredicts) ||
            !readU64(cs, r.stats.earlyResteers) ||
            !readU64(cs, r.stats.wrongPathFetched) ||
            !readU64(cs, r.stats.btbMisses) ||
            !readU64(cs, r.stats.fetchedInstrs))
            return nullptr;

        if (!std::getline(is, line) || !stripTag(line, "rc", rest))
            return nullptr;
        std::istringstream rc(rest);
        if (!readU64(rc, r.overrides) ||
            !readU64(rc, r.overridesCorrect) ||
            !readU64(rc, r.repairs) || !readU64(rc, r.repairWrites) ||
            !readU64(rc, r.earlyResteers) ||
            !readU64(rc, r.earlyResteersWrong) ||
            !readU64(rc, r.uncheckpointedMispredicts) ||
            !readU64(rc, r.deniedPredictions) ||
            !readU64(rc, r.skippedSpecUpdates) ||
            !readU64(rc, r.maxRepairsNeeded))
            return nullptr;

        if (!std::getline(is, line) || !stripTag(line, "au", rest))
            return nullptr;
        std::istringstream au(rest);
        if (!readU64(au, r.auditChecks) ||
            !readU64(au, r.auditViolations) ||
            !readU64(au, r.auditResyncs) ||
            !readU64(au, r.auditSkipped) ||
            !readU64(au, r.auditUncovered))
            return nullptr;

        if (!std::getline(is, line) || !stripTag(line, "ca", rest))
            return nullptr;
        std::istringstream ca(rest);
        if (!readU64(ca, r.cacheAccesses) ||
            !readU64(ca, r.cacheMisses) ||
            !readU64(ca, r.cachePrefetchFills))
            return nullptr;

        if (!std::getline(is, line) || !stripTag(line, "fp", rest))
            return nullptr;
        std::istringstream fp(rest);
        if (!readF64(fp, r.ipc) || !readF64(fp, r.mpki) ||
            !readF64(fp, r.avgRepairsNeeded) ||
            !readF64(fp, r.avgWalkLength) ||
            !readF64(fp, r.avgRepairWrites) ||
            !readF64(fp, r.avgRepairCycles) ||
            !readF64(fp, r.tageKB) || !readF64(fp, r.localKB) ||
            !readF64(fp, r.repairKB))
            return nullptr;
    }
    if (!std::getline(is, line) || line != "end")
        return nullptr;
    return res;
}

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir)) {}

std::string
ResultStore::entryFileName(const std::string &fingerprint,
                           const std::string &suite_key,
                           const std::string &config_key)
{
    const std::uint64_t h =
        fnv1a64(fingerprint + '\n' + suite_key + '\n' + config_key);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64 ".result", h);
    return buf;
}

std::unique_ptr<SuiteResult>
ResultStore::load(const std::string &suite_key,
                  const std::string &config_key)
{
    const std::string &fp = buildFingerprint();
    const std::filesystem::path path =
        std::filesystem::path(dir_) /
        entryFileName(fp, suite_key, config_key);

    std::lock_guard<std::mutex> lk(mu_);
    std::ifstream in(path);
    if (!in) {
        ++stats_.misses;
        ++fps_[fp].misses;
        return nullptr;
    }
    auto res = deserializeSuiteResult(in, fp, suite_key, config_key);
    if (!res) {
        // Stale (old fingerprint / collision / truncation): the entry
        // can never be used again under this build, so remove it —
        // counted, attributed to the fingerprint it recorded, and
        // logged on the audit trail (no more silent unlinks).
        in.close();
        StoreAuditRecord rec;
        rec.file = path.filename().string();
        rec.reason = "stale";
        rec.fingerprint = readEntryFingerprint(path);
        rec.bytes = fileBytes(path);
        ++stats_.stale;
        ++stats_.misses;
        ++fps_[fp].misses;
        ++fps_[rec.fingerprint].stale;
        audit_.push_back(std::move(rec));
        std::error_code ec;
        std::filesystem::remove(path, ec);
        return nullptr;
    }
    ++stats_.hits;
    const std::uint64_t bytes = fileBytes(path);
    stats_.bytesRead += bytes;
    FingerprintStats &fstat = fps_[fp];
    ++fstat.hits;
    fstat.bytes += bytes;
    return res;
}

bool
ResultStore::save(const std::string &suite_key,
                  const std::string &config_key, const SuiteResult &res)
{
    const std::string &fp = buildFingerprint();
    const std::filesystem::path dir(dir_);
    const std::filesystem::path path =
        dir / entryFileName(fp, suite_key, config_key);
    const std::filesystem::path tmp =
        path.string() + ".tmp";

    std::lock_guard<std::mutex> lk(mu_);
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    std::ostringstream body;
    serializeSuiteResult(body, fp, suite_key, config_key, res);
    const std::string bytes = body.str();
    {
        std::ofstream out(tmp);
        if (!out) {
            warnImpl(("result store: cannot write " + tmp.string())
                         .c_str());
            return false;
        }
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out) {
            warnImpl(("result store: short write to " + tmp.string())
                         .c_str());
            return false;
        }
    }
    // Rename-into-place keeps concurrent readers from seeing a torn
    // entry (they either miss or read a complete file).
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        warnImpl(("result store: cannot install " + path.string())
                     .c_str());
        return false;
    }
    ++stats_.writes;
    stats_.bytesWritten += bytes.size();
    fps_[fp].bytes += bytes.size();
    return true;
}

ResultStore::StoreStats
ResultStore::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

std::map<std::string, FingerprintStats>
ResultStore::fingerprintStats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return fps_;
}

std::vector<StoreAuditRecord>
ResultStore::takeAudit()
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<StoreAuditRecord> out;
    out.swap(audit_);
    return out;
}

std::vector<StoreAuditRecord>
ResultStore::gc(const StoreGcPolicy &policy)
{
    namespace fs = std::filesystem;
    struct Entry
    {
        std::string name;
        std::uint64_t bytes = 0;
        double age = 0.0;
    };
    std::vector<Entry> entries;
    std::error_code ec;
    // Ages come from the filesystem's own clock so a mounted shared
    // store is judged by its server's mtimes, not a local stopwatch.
    const fs::file_time_type now = fs::file_time_type::clock::now();
    for (const fs::directory_entry &de : fs::directory_iterator(dir_, ec)) {
        std::error_code fec;
        if (!de.is_regular_file(fec) || fec)
            continue;
        const fs::path &p = de.path();
        if (p.extension() != ".result")
            continue;
        Entry e;
        e.name = p.filename().string();
        e.bytes = fileBytes(p);
        const fs::file_time_type mtime = fs::last_write_time(p, fec);
        if (!fec)
            e.age = std::chrono::duration<double>(now - mtime).count();
        entries.push_back(std::move(e));
    }
    // Deterministic eviction order: oldest first, file name breaking
    // ties — two gc passes over the same tree pick the same victims.
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.age != b.age)
                      return a.age > b.age;
                  return a.name < b.name;
              });

    std::uint64_t total = 0;
    for (const Entry &e : entries)
        total += e.bytes;

    std::vector<StoreAuditRecord> evicted;
    std::lock_guard<std::mutex> lk(mu_);
    for (const Entry &e : entries) {
        const char *reason = nullptr;
        if (policy.maxAgeSeconds > 0.0 && e.age > policy.maxAgeSeconds)
            reason = "age";
        else if (policy.maxBytes > 0 && total > policy.maxBytes)
            reason = "size";
        if (!reason)
            continue;
        const fs::path p = fs::path(dir_) / e.name;
        StoreAuditRecord rec;
        rec.file = e.name;
        rec.reason = reason;
        rec.fingerprint = readEntryFingerprint(p);
        rec.bytes = e.bytes;
        rec.ageSeconds = e.age;
        fs::remove(p, ec);
        if (ec) {
            ec.clear();
            continue;
        }
        total -= e.bytes;
        ++stats_.gcEvicted;
        stats_.gcEvictedBytes += e.bytes;
        audit_.push_back(rec);
        evicted.push_back(std::move(rec));
    }
    return evicted;
}

} // namespace lbp
