/**
 * @file
 * Config-keyed memoization of whole-suite simulations.
 *
 * Every figure bench replays the same TAGE-only baseline and
 * perfect-repair suites; a sensitivity sweep revisits configurations
 * it has already simulated. Since runs are bit-deterministic functions
 * of (suite, SimConfig), identical inputs can share one simulation.
 * SuiteCache keys completed SuiteResults by a canonical serialization
 * of the configuration plus a structural fingerprint of the suite, so
 * each distinct configuration is simulated at most once per process.
 *
 * Cached entries are heap-stable (unique_ptr), so the references
 * handed out stay valid for the cache's lifetime.
 */

#ifndef LBP_SIM_SUITE_CACHE_HH
#define LBP_SIM_SUITE_CACHE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/runner.hh"

namespace lbp {

/**
 * Canonical serialization of every result-affecting SimConfig field.
 * Two configs with equal keys produce bit-identical SuiteResults.
 * When adding a SimConfig field, add it here or stale hits follow.
 */
std::string configKey(const SimConfig &cfg);

/** Structural fingerprint of a built suite (names + CFG shape). */
std::string suiteKey(const std::vector<Program> &suite);

/**
 * Combined cache key, suiteKey + '\n' + configKey — the exact key
 * SuiteCache uses internally, exposed so the sweep orchestrator and
 * the result store can address entries without re-deriving the format.
 */
std::string suiteCacheKey(const std::vector<Program> &suite,
                          const SimConfig &cfg);

class SuiteCache
{
  public:
    struct CacheStats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
    };

    /**
     * Return the memoized result for (suite, cfg), simulating it via
     * runSuite(suite, cfg, jobs) on the first request. The reference
     * is stable until clear().
     */
    const SuiteResult &run(const std::vector<Program> &suite,
                           const SimConfig &cfg, unsigned jobs = 0);

    /**
     * Look up a precomputed key (suiteCacheKey) without simulating on
     * miss. Counts a hit when found; a miss is NOT counted (the caller
     * decides what a failed probe means) and no telemetry is recorded.
     * Null on miss; otherwise stable until clear().
     */
    const SuiteResult *find(const std::string &key);

    /**
     * Insert an externally produced result (e.g. loaded from the
     * persistent store) under @p key. First insert wins; the returned
     * reference is the canonical entry either way, stable until
     * clear(). Does not touch hit/miss counters.
     */
    const SuiteResult &insert(const std::string &key, SuiteResult res);

    CacheStats stats() const;
    std::size_t entries() const;
    void clear();

    /** The process-wide cache the benches share. */
    static SuiteCache &process();

  private:
    mutable std::mutex mu_;
    std::unordered_map<std::string, std::unique_ptr<SuiteResult>> map_;
    CacheStats stats_;
};

/** Shorthand for SuiteCache::process().run(...). */
const SuiteResult &runSuiteCached(const std::vector<Program> &suite,
                                  const SimConfig &cfg,
                                  unsigned jobs = 0);

} // namespace lbp

#endif // LBP_SIM_SUITE_CACHE_HH
