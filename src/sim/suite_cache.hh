/**
 * @file
 * Config-keyed memoization of whole-suite simulations.
 *
 * Every figure bench replays the same TAGE-only baseline and
 * perfect-repair suites; a sensitivity sweep revisits configurations
 * it has already simulated. Since runs are bit-deterministic functions
 * of (suite, SimConfig), identical inputs can share one simulation.
 * SuiteCache keys completed SuiteResults by a canonical serialization
 * of the configuration plus a structural fingerprint of the suite, so
 * each distinct configuration is simulated at most once per process.
 *
 * Cached entries are heap-stable (unique_ptr), so the references
 * handed out stay valid for the cache's lifetime.
 */

#ifndef LBP_SIM_SUITE_CACHE_HH
#define LBP_SIM_SUITE_CACHE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/runner.hh"

namespace lbp {

/**
 * Canonical serialization of every result-affecting SimConfig field.
 * Two configs with equal keys produce bit-identical SuiteResults.
 * When adding a SimConfig field, add it here or stale hits follow.
 */
std::string configKey(const SimConfig &cfg);

/** Structural fingerprint of a built suite (names + CFG shape). */
std::string suiteKey(const std::vector<Program> &suite);

class SuiteCache
{
  public:
    struct CacheStats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
    };

    /**
     * Return the memoized result for (suite, cfg), simulating it via
     * runSuite(suite, cfg, jobs) on the first request. The reference
     * is stable until clear().
     */
    const SuiteResult &run(const std::vector<Program> &suite,
                           const SimConfig &cfg, unsigned jobs = 0);

    CacheStats stats() const;
    std::size_t entries() const;
    void clear();

    /** The process-wide cache the benches share. */
    static SuiteCache &process();

  private:
    mutable std::mutex mu_;
    std::unordered_map<std::string, std::unique_ptr<SuiteResult>> map_;
    CacheStats stats_;
};

/** Shorthand for SuiteCache::process().run(...). */
const SuiteResult &runSuiteCached(const std::vector<Program> &suite,
                                  const SimConfig &cfg,
                                  unsigned jobs = 0);

} // namespace lbp

#endif // LBP_SIM_SUITE_CACHE_HH
