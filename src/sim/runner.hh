/**
 * @file
 * Experiment harness: run one workload (warm-up + measurement) and run
 * whole suites, with the aggregation the paper's figures use —
 * per-category MPKI reduction (misprediction-weighted) and geometric-
 * mean IPC gain versus a baseline configuration.
 */

#ifndef LBP_SIM_RUNNER_HH
#define LBP_SIM_RUNNER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/telemetry.hh"
#include "core/core.hh"
#include "workload/program.hh"

namespace lbp {

/**
 * Result of simulating one workload under one configuration.
 *
 * Exported names/units for these fields live in the obs metric table
 * (src/obs/metrics.cc runMetrics(), documented in docs/METRICS.md);
 * exporters iterate that table rather than naming fields ad hoc.
 */
struct RunResult
{
    std::string workload;  ///< workload name ("Server:0")
    std::string category;  ///< Table-1 category the workload belongs to

    CoreStats stats;   ///< measurement window only (warm-up excluded)
    double ipc = 0.0;  ///< retired instructions per cycle (window)
    double mpki = 0.0; ///< mispredictions per kilo-instruction (window)

    // Scheme-side counters (whole run; window-independent shapes).
    std::uint64_t overrides = 0;         ///< local overrides of TAGE
    std::uint64_t overridesCorrect = 0;  ///< ...that were right
    std::uint64_t repairs = 0;           ///< repair episodes triggered
    std::uint64_t repairWrites = 0;      ///< BHT writes repairs made
    std::uint64_t earlyResteers = 0;     ///< alloc-stage resteers (3.2)
    std::uint64_t earlyResteersWrong = 0;  ///< ...with a wrong direction
    std::uint64_t uncheckpointedMispredicts = 0;  ///< OBQ-overflow cases
    std::uint64_t deniedPredictions = 0; ///< BHT busy at lookup (2.5)
    std::uint64_t skippedSpecUpdates = 0;  ///< BHT busy at spec update
    double avgRepairsNeeded = 0.0;  ///< mean polluted PCs per flush (Fig 8)
    std::uint64_t maxRepairsNeeded = 0;  ///< worst-case polluted PCs
    double avgWalkLength = 0.0;     ///< mean OBQ entries walked per repair
    double avgRepairWrites = 0.0;   ///< mean BHT writes per repair
    double avgRepairCycles = 0.0;   ///< mean cycles a repair occupied

    // Invariant-auditor outcome (LBP_AUDIT builds with an auditable
    // scheme; all-zero otherwise).
    std::uint64_t auditChecks = 0;      ///< recovery + retire checks
    std::uint64_t auditViolations = 0;  ///< must stay 0
    std::uint64_t auditResyncs = 0;     ///< oracle resyncs after gaps
    std::uint64_t auditSkipped = 0;     ///< checks skipped (declared gaps)
    std::uint64_t auditUncovered = 0;   ///< recoveries with no checkpoint

    // Cache-hierarchy totals (all levels, whole run).
    std::uint64_t cacheAccesses = 0;      ///< L1I+L1D+L2+LLC accesses
    std::uint64_t cacheMisses = 0;        ///< misses across those levels
    std::uint64_t cachePrefetchFills = 0; ///< next-line prefetch fills

    // Storage accounting for Table 3.
    double tageKB = 0.0;    ///< TAGE tables
    double localKB = 0.0;   ///< local predictor (BHT+PT, both for 3.2)
    double repairKB = 0.0;  ///< repair structures (OBQ/snapshots/...)

    /**
     * Observability capture (stage events, squash forensics,
     * histograms); null unless SimConfig::obs asked for it. Shared so
     * copying results around the suite machinery stays cheap;
     * excluded — like telemetry — from determinism comparisons.
     */
    std::shared_ptr<const ObsRun> obs;
};

/** Simulate one workload under @p cfg. */
RunResult runOne(const Program &prog, const SimConfig &cfg);

/** One RunResult per workload, in suite order. */
struct SuiteResult
{
    std::vector<RunResult> runs;

    /**
     * Throughput record of the execution that produced the runs.
     * Observational only — never feeds back into simulation, and is
     * excluded from determinism comparisons (runs must be
     * bit-identical for any jobs count; wall time obviously is not).
     */
    SuiteTelemetry telemetry;
};

/** Short human label for a configuration ("tage-7.1KB", scheme+ports). */
std::string configLabel(const SimConfig &cfg);

/**
 * Run every workload of @p suite under @p cfg, fanned across a
 * ThreadPool. @p jobs = 0 resolves REPRO_JOBS, then hardware
 * concurrency (resolveJobs); 1 runs serially on the calling thread.
 * Suite order is preserved and the runs are bit-identical to a serial
 * execution: every OooCore is constructed per run and workloads share
 * no mutable state.
 */
SuiteResult runSuite(const std::vector<Program> &suite,
                     const SimConfig &cfg, unsigned jobs = 0);

/** Per-category comparison row (Figures 4/7/9 style). */
struct CategoryAgg
{
    std::string name;        ///< category ("Server", ..., or "All")
    unsigned workloads = 0;  ///< runs aggregated into this row
    double mpkiBase = 0.0;   ///< misprediction-weighted baseline MPKI
    double mpkiTest = 0.0;   ///< same, for the test configuration
    double mpkiReductionPct = 0.0;  ///< positive = fewer mispredicts
    double ipcGainPct = 0.0;        ///< geometric mean, percent
};

/** Aggregate @p test against @p base per category (plus an "All" row). */
std::vector<CategoryAgg> aggregateByCategory(const SuiteResult &base,
                                             const SuiteResult &test);

/** Suite-wide MPKI reduction percent (misprediction-weighted). */
double mpkiReductionPct(const SuiteResult &base, const SuiteResult &test);

/** Suite-wide geometric-mean IPC gain percent. */
double ipcGainPct(const SuiteResult &base, const SuiteResult &test);

/** Per-workload IPC gains (percent), sorted ascending (S-curve). */
std::vector<std::pair<std::string, double>>
ipcSCurve(const SuiteResult &base, const SuiteResult &test);

/** Environment knobs shared by every bench (see DESIGN.md section 7). */
struct BenchEnv
{
    std::uint64_t warmupInstrs = 40000;   ///< REPRO_WARMUP
    std::uint64_t measureInstrs = 60000;  ///< REPRO_INSTR
    unsigned maxWorkloads = 0;  ///< 0 = the full 202-workload suite
    unsigned jobs = 0;          ///< REPRO_JOBS; 0 = hardware concurrency

    /** Read REPRO_INSTR / REPRO_WARMUP / REPRO_WORKLOADS / REPRO_JOBS. */
    static BenchEnv fromEnvironment();
    /** Copy the instruction budgets into @p cfg. */
    void apply(SimConfig &cfg) const;
};

} // namespace lbp

#endif // LBP_SIM_RUNNER_HH
