/**
 * @file
 * Experiment harness: run one workload (warm-up + measurement) and run
 * whole suites, with the aggregation the paper's figures use —
 * per-category MPKI reduction (misprediction-weighted) and geometric-
 * mean IPC gain versus a baseline configuration.
 */

#ifndef LBP_SIM_RUNNER_HH
#define LBP_SIM_RUNNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/telemetry.hh"
#include "core/core.hh"
#include "workload/program.hh"

namespace lbp {

/** Result of simulating one workload under one configuration. */
struct RunResult
{
    std::string workload;
    std::string category;

    CoreStats stats;  ///< measurement window only (warm-up excluded)
    double ipc = 0.0;
    double mpki = 0.0;

    // Scheme-side counters (whole run; window-independent shapes).
    std::uint64_t overrides = 0;
    std::uint64_t overridesCorrect = 0;
    std::uint64_t repairs = 0;
    std::uint64_t repairWrites = 0;
    std::uint64_t earlyResteers = 0;
    std::uint64_t earlyResteersWrong = 0;
    std::uint64_t uncheckpointedMispredicts = 0;
    std::uint64_t deniedPredictions = 0;
    std::uint64_t skippedSpecUpdates = 0;
    double avgRepairsNeeded = 0.0;
    std::uint64_t maxRepairsNeeded = 0;
    double avgWalkLength = 0.0;
    double avgRepairWrites = 0.0;
    double avgRepairCycles = 0.0;

    // Invariant-auditor outcome (LBP_AUDIT builds with an auditable
    // scheme; all-zero otherwise).
    std::uint64_t auditChecks = 0;
    std::uint64_t auditViolations = 0;
    std::uint64_t auditResyncs = 0;
    std::uint64_t auditSkipped = 0;
    std::uint64_t auditUncovered = 0;

    // Cache-hierarchy totals (all levels, whole run).
    std::uint64_t cacheAccesses = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t cachePrefetchFills = 0;

    // Storage accounting for Table 3.
    double tageKB = 0.0;
    double localKB = 0.0;
    double repairKB = 0.0;
};

/** Simulate one workload under @p cfg. */
RunResult runOne(const Program &prog, const SimConfig &cfg);

/** One RunResult per workload, in suite order. */
struct SuiteResult
{
    std::vector<RunResult> runs;

    /**
     * Throughput record of the execution that produced the runs.
     * Observational only — never feeds back into simulation, and is
     * excluded from determinism comparisons (runs must be
     * bit-identical for any jobs count; wall time obviously is not).
     */
    SuiteTelemetry telemetry;
};

/** Short human label for a configuration ("tage-7.1KB", scheme+ports). */
std::string configLabel(const SimConfig &cfg);

/**
 * Run every workload of @p suite under @p cfg, fanned across a
 * ThreadPool. @p jobs = 0 resolves REPRO_JOBS, then hardware
 * concurrency (resolveJobs); 1 runs serially on the calling thread.
 * Suite order is preserved and the runs are bit-identical to a serial
 * execution: every OooCore is constructed per run and workloads share
 * no mutable state.
 */
SuiteResult runSuite(const std::vector<Program> &suite,
                     const SimConfig &cfg, unsigned jobs = 0);

/** Per-category comparison row (Figures 4/7/9 style). */
struct CategoryAgg
{
    std::string name;
    unsigned workloads = 0;
    double mpkiBase = 0.0;
    double mpkiTest = 0.0;
    double mpkiReductionPct = 0.0;  ///< positive = fewer mispredicts
    double ipcGainPct = 0.0;        ///< geometric mean, percent
};

/** Aggregate @p test against @p base per category (plus an "All" row). */
std::vector<CategoryAgg> aggregateByCategory(const SuiteResult &base,
                                             const SuiteResult &test);

/** Suite-wide MPKI reduction percent (misprediction-weighted). */
double mpkiReductionPct(const SuiteResult &base, const SuiteResult &test);

/** Suite-wide geometric-mean IPC gain percent. */
double ipcGainPct(const SuiteResult &base, const SuiteResult &test);

/** Per-workload IPC gains (percent), sorted ascending (S-curve). */
std::vector<std::pair<std::string, double>>
ipcSCurve(const SuiteResult &base, const SuiteResult &test);

/** Environment knobs shared by every bench (see DESIGN.md section 7). */
struct BenchEnv
{
    std::uint64_t warmupInstrs = 40000;
    std::uint64_t measureInstrs = 60000;
    unsigned maxWorkloads = 0;  ///< 0 = the full 202-workload suite
    unsigned jobs = 0;          ///< REPRO_JOBS; 0 = hardware concurrency

    static BenchEnv fromEnvironment();
    void apply(SimConfig &cfg) const;
};

} // namespace lbp

#endif // LBP_SIM_RUNNER_HH
