/**
 * @file
 * The declarative sweep-spec grammar, shared by every sweep frontend.
 *
 * lbpsweep historically owned the --spec parser; the sweep daemon
 * (src/serve/) accepts the same text over the wire, and the two must
 * agree byte-for-byte on what a spec means or `lbpsweep --server`
 * stops being a thin client. This header hoists the grammar into the
 * sim layer: directives (`suite N|all`, `warmup N`, `instr N`,
 * `config <scheme> [modifiers]`), the default 11-configuration figure
 * set, and suite construction, all returning errors instead of
 * exiting so the daemon can turn a bad spec into a `rejected` reply.
 * Grammar reference: docs/SWEEP.md; wire usage: docs/SERVER.md.
 */

#ifndef LBP_SIM_SWEEP_SPEC_HH
#define LBP_SIM_SWEEP_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/sweep.hh"

namespace lbp {

/**
 * A fully described sweep request: suite selection, instruction
 * budgets, and the configurations to run. Field defaults mirror the
 * lbpsweep command-line defaults; parseSweepSpecText() overrides them
 * in directive order, and config lines capture the budgets in effect
 * at their point in the text (so a `warmup` directive applies to the
 * config lines after it, exactly as the CLI always behaved).
 */
struct SweepSpec
{
    unsigned suite = 8;        ///< workload cap (ignored if fullSuite)
    bool fullSuite = false;    ///< `suite all`: the whole 202 workloads
    std::uint64_t warmupInstrs = 40000;   ///< warm-up budget per cell
    std::uint64_t measureInstrs = 60000;  ///< measured budget per cell
    std::vector<SweepConfig> configs;     ///< empty = caller's default
};

/**
 * Scheme-name -> RepairKind mapping ("perfect", "forward-walk", ...).
 * False when @p name names no scheme ("baseline" is not a scheme: it
 * is the TAGE-only configuration config lines special-case).
 */
bool sweepSchemeKind(const std::string &name, RepairKind &kind);

/**
 * Parse spec text ('#' comments, blank lines, directives — see the
 * file comment) into @p spec, overriding its current fields. On
 * error, fills @p error with a one-line description and returns
 * false; @p spec is then partially updated and must be discarded.
 */
bool parseSweepSpecText(const std::string &text, SweepSpec &spec,
                        std::string &error);

/**
 * The default figure set at @p spec's budgets: baseline, perfect,
 * no-repair, retire-update, backward-walk, snapshot, forward-walk,
 * forward-walk+merge, limited-pc, multi-stage, future-file — every
 * paper configuration at CBPw-Loop128.
 */
std::vector<SweepConfig> defaultFigureConfigs(const SweepSpec &spec);

/** Substitute the default figure set when the spec has no configs. */
void finalizeSweepSpec(SweepSpec &spec);

/** Build the workload suite @p spec selects (cap or full suite). */
std::vector<Program> buildSpecSuite(const SweepSpec &spec);

/**
 * The cross-client identity of a sweep request: suiteKey(suite)
 * followed by each configuration's display name and configKey(), one
 * per line. Two requests with equal keys produce byte-identical
 * results (CSV included — the name is the CSV's config column), which
 * is exactly the condition under which the daemon coalesces them.
 */
std::string sweepRequestKey(const std::vector<Program> &suite,
                            const std::vector<SweepConfig> &configs);

} // namespace lbp

#endif // LBP_SIM_SWEEP_SPEC_HH
