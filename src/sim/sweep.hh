/**
 * @file
 * Figure-sweep orchestration: run many (configuration × workload)
 * cells as one observable work queue.
 *
 * Reproducing the paper means simulating ~10 configurations over the
 * same suite; done bench-by-bench that re-simulates shared baselines
 * and gives no visibility into progress or provenance. runSweep()
 * schedules every cell over one thread pool, probes the process-wide
 * SuiteCache and the persistent ResultStore before simulating, and
 * reports everything it did: per-cell outcome/wall-time/worker in a
 * JSON-lines event log, a live progress/ETA line, aggregate counters
 * (sweepMetrics() in obs/metrics.hh names them), and a final manifest
 * with git SHA + store fingerprint + per-cell provenance.
 *
 * Orchestration never changes results: cells are pure functions of
 * (workload, SimConfig), each lands in its own preassigned slot, and
 * tests/test_determinism.cc pins sweep output bit-identical to serial
 * per-config runSuite() calls.
 */

#ifndef LBP_SIM_SWEEP_HH
#define LBP_SIM_SWEEP_HH

#include <cstdint>
#include <cstdio>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/result_store.hh"
#include "sim/runner.hh"

namespace lbp {

class ResultStore;
class SuiteCache;

/** One named configuration of a sweep (one column of the figure set). */
struct SweepConfig
{
    std::string name;  ///< spec-facing identifier ("baseline", ...)
    SimConfig cfg;     ///< full simulator configuration
};

/**
 * Outcome and provenance of one (configuration × workload) cell — one
 * line of the event log, one entry of the manifest.
 */
struct SweepCell
{
    /** How the cell's result was obtained. */
    enum class Outcome
    {
        Simulated,  ///< freshly simulated in this sweep
        StoreHit,   ///< whole config loaded from the persistent store
        CacheHit,   ///< whole config found in the in-process SuiteCache
    };

    std::size_t configIndex = 0;    ///< index into the configs vector
    std::size_t workloadIndex = 0;  ///< index into the suite
    std::string workload;           ///< workload name ("Server:0")
    Outcome outcome = Outcome::Simulated;
    double wallSeconds = 0.0;       ///< 0 for store/cache hits
    std::uint64_t simInstrs = 0;    ///< instructions simulated (w/ warm-up)
    int worker = -1;                ///< pool worker id; -1 = not simulated
};

/**
 * Aggregate sweep counters, named and exported via sweepMetrics()
 * (obs/metrics.hh) so the manifest, CSV and docs surfaces iterate one
 * table. Store counters are the delta this sweep contributed, so
 * back-to-back sweeps against one store report their own hits.
 */
struct SweepStats
{
    std::uint64_t cellsTotal = 0;      ///< configs × workloads
    std::uint64_t cellsSimulated = 0;  ///< cells actually simulated
    std::uint64_t cellsStoreHit = 0;   ///< cells served from disk
    std::uint64_t cellsCacheHit = 0;   ///< cells served from SuiteCache
    std::uint64_t storeHits = 0;       ///< ResultStore loads that hit
    std::uint64_t storeMisses = 0;     ///< ResultStore loads that missed
    std::uint64_t storeStale = 0;      ///< stale entries invalidated
    std::uint64_t storeWrites = 0;     ///< entries persisted by this sweep
    std::uint64_t simInstrs = 0;       ///< instructions simulated (w/ warm-up)
    double wallSeconds = 0.0;      ///< whole-sweep wall time
    double cellWallSeconds = 0.0;  ///< sum of simulated cells' wall times
};

/**
 * Orchestration knobs. All pointers are optional and borrowed (the
 * caller keeps ownership); null disables the corresponding output.
 */
struct SweepOptions
{
    unsigned jobs = 0;  ///< worker count; 0 = resolveJobs default

    /** Persistent store to probe/populate; null = in-process only. */
    ResultStore *store = nullptr;

    /** Memoization cache; null = the process-wide SuiteCache. Tests
     *  pass fresh instances to model cold processes. */
    SuiteCache *cache = nullptr;

    /** JSON-lines event sink (one object per line); null = off. */
    std::ostream *eventLog = nullptr;

    /** Live progress/ETA line sink (stderr in lbpsweep); null = off. */
    std::FILE *progress = nullptr;

    /**
     * Request-scoped trace id: when non-empty, every event record and
     * the manifest carry it, correlating one service request with the
     * cells it spawned (docs/SERVER.md "Scraping and tracing"). Empty
     * (the local default) changes nothing — event logs and manifests
     * stay byte-identical to pre-tracing runs.
     */
    std::string traceId;
};

/**
 * Everything a sweep produced: canonical per-config results (owned by
 * the SuiteCache used, stable until its clear()), per-cell provenance
 * in configs-major order, aggregate counters, and the cache keys that
 * addressed each config.
 */
struct SweepResult
{
    /** Per-config suite results, index-aligned with the configs. */
    std::vector<const SuiteResult *> configResults;

    /** All cells, row-major: cell (c, w) at index c * workloads + w. */
    std::vector<SweepCell> cells;

    SweepStats stats;  ///< aggregate counters (sweepMetrics() names them)

    std::string suiteKey;  ///< structural suite fingerprint (suiteKey())

    /** configKey() per config, index-aligned with the configs. */
    std::vector<std::string> configKeys;

    unsigned jobs = 1;  ///< worker count the sweep resolved to

    /** Trace id the sweep ran under (SweepOptions::traceId, verbatim). */
    std::string traceId;

    /** True when a persistent store was probed (manifest gains its
     *  "store" section only then, keeping storeless runs unchanged). */
    bool storeUsed = false;

    /** Store evictions observed during this sweep (stale deletes),
     *  in occurrence order — the manifest's eviction audit trail. */
    std::vector<StoreAuditRecord> storeAudit;
};

/**
 * Run every config of @p configs over @p suite as one cell queue.
 * Per config: probe the cache, then the store, and only simulate what
 * neither had; freshly simulated configs are persisted (when a store
 * is given) and inserted into the cache, which owns the results.
 * Bit-identical to per-config runSuite() calls for any jobs count.
 */
SweepResult runSweep(const std::vector<Program> &suite,
                     const std::vector<SweepConfig> &configs,
                     const SweepOptions &opts = {});

/**
 * Render the live progress line ("cells done/total, %, cells/s, ETA")
 * for @p done of @p total cells after @p elapsedSeconds. Pure
 * formatting — exposed so tests can pin the content without a clock.
 */
std::string renderSweepProgress(std::size_t done, std::size_t total,
                                double elapsedSeconds);

/**
 * Write the sweep manifest as JSON: schema tag, git SHA, store
 * fingerprint, suite key, resolved jobs, aggregate counters (the
 * sweepMetrics() table) and per-config provenance with every cell's
 * outcome/wall-time/worker. docs/SWEEP.md documents the schema.
 */
void writeSweepManifest(std::ostream &os, const SweepResult &res,
                        const std::vector<SweepConfig> &configs);

/**
 * Write per-run results as CSV: config,workload,category plus every
 * runMetrics() column. Deterministic formatting — a warm-store sweep
 * emits bytes identical to the cold sweep that populated the store.
 */
void writeSweepCsv(std::ostream &os, const SweepResult &res,
                   const std::vector<SweepConfig> &configs);

/**
 * Git SHA the build was configured from ("unknown" outside a
 * checkout). Manifest provenance only — never part of any cache key.
 */
const std::string &gitShaString();

} // namespace lbp

#endif // LBP_SIM_SWEEP_HH
