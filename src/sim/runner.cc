#include "sim/runner.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"

namespace lbp {

RunResult
runOne(const Program &prog, const SimConfig &cfg)
{
    OooCore core(prog, cfg);

    // Observability is opt-in per run; the tracer lives on this stack
    // frame for the core's whole life and only ever *reads* core state,
    // so attaching it cannot perturb results (test_trace.cc pins
    // trace-on == trace-off against the golden fixture).
    const bool observed = cfg.obs.trace || cfg.obs.forensics;
    PipelineTracer tracer(cfg.obs);
    if (observed)
        core.attachTracer(&tracer);

    core.run(cfg.warmupInstrs);
    const CoreStats at_warm = core.stats();
    core.run(cfg.measureInstrs);
    const CoreStats window = CoreStats::delta(core.stats(), at_warm);

    RunResult r;
    r.workload = prog.name;
    r.category = prog.category;
    r.stats = window;
    r.ipc = window.ipc();
    r.mpki = window.mpki();
    r.tageKB = core.tage().storageKB();

    const MemoryHierarchy &mem = core.mem();
    for (const Cache *c :
         {&mem.l1i(), &mem.l1d(), &mem.l2(), &mem.llc()}) {
        r.cacheAccesses += c->stats().accesses;
        r.cacheMisses += c->stats().misses;
        r.cachePrefetchFills += c->stats().prefetchFills;
    }

    if (RepairScheme *scheme = core.scheme()) {
        const RepairStats &ss = scheme->stats();
        r.overrides = ss.overrides;
        r.overridesCorrect = ss.overridesCorrect;
        r.repairs = ss.repairsTriggered;
        r.repairWrites = ss.repairWrites;
        r.earlyResteers = ss.earlyResteers;
        r.earlyResteersWrong = ss.earlyResteersWrong;
        r.uncheckpointedMispredicts = ss.uncheckpointedMispredicts;
        r.deniedPredictions = ss.deniedPredictions;
        r.skippedSpecUpdates = ss.skippedSpecUpdates;
        r.avgRepairsNeeded = ss.repairsNeeded.mean();
        r.maxRepairsNeeded = ss.repairsNeeded.max();
        r.avgWalkLength = ss.walkLength.mean();
        r.avgRepairWrites = ss.writesPerRepair.mean();
        r.avgRepairCycles = ss.repairCycles.mean();
        r.localKB = scheme->localStorageKB();
        r.repairKB = scheme->storageKB();
    }
#ifdef LBP_AUDIT
    if (const AuditorStats *as = core.auditorStats()) {
        r.auditChecks = as->recoveryChecks + as->retireChecks;
        r.auditViolations =
            as->recoveryViolations + as->retireViolations;
        r.auditResyncs = as->resyncs;
        r.auditSkipped = as->skipped;
        r.auditUncovered = as->uncoveredRecoveries;
    }
#endif

    if (observed) {
        auto obs = std::make_shared<ObsRun>(tracer.finish());
        obs->workload = prog.name;
        obs->config = configLabel(cfg);
        // Whole-run totals the forensics channel must reconcile with:
        // one squash record per execute-time flush, warm-up included.
        obs->totalMispredicts = core.stats().mispredicts;
        obs->totalCycles = core.stats().cycles;
        if (const RepairScheme *scheme = core.scheme())
            obs->totalRepairs = scheme->stats().repairsTriggered;
        r.obs = std::move(obs);
    }
    return r;
}

std::string
configLabel(const SimConfig &cfg)
{
    char buf[96];
    if (!cfg.useLocal) {
        std::snprintf(buf, sizeof(buf), "tage-%.1fKB",
                      cfg.tage.storageKB());
        return buf;
    }
    std::snprintf(buf, sizeof(buf), "%s %u-%u-%u loop%u%s",
                  repairKindName(cfg.repair.kind),
                  cfg.repair.ports.entries, cfg.repair.ports.readPorts,
                  cfg.repair.ports.bhtWritePorts,
                  cfg.repair.loop.bhtEntries,
                  cfg.repair.coalesce ? "+merge" : "");
    return buf;
}

SuiteResult
runSuite(const std::vector<Program> &suite, const SimConfig &cfg,
         unsigned jobs)
{
    const unsigned want = resolveJobs(jobs);
    Stopwatch sw;

    SuiteResult res;
    res.runs.resize(suite.size());
    if (want <= 1 || suite.size() <= 1) {
        for (std::size_t i = 0; i < suite.size(); ++i)
            res.runs[i] = runOne(suite[i], cfg);
        res.telemetry.jobs = 1;
    } else {
        // Each index is an independent simulation writing only its own
        // slot, so any claim order yields bit-identical results.
        ThreadPool pool(static_cast<unsigned>(
            std::min<std::size_t>(want, suite.size())));
        pool.parallelFor(suite.size(), [&](std::size_t i) {
            res.runs[i] = runOne(suite[i], cfg);
        });
        res.telemetry.jobs = pool.workerCount();
        res.telemetry.workerBusySeconds = pool.busySeconds();
    }

    res.telemetry.label = configLabel(cfg);
    res.telemetry.workloads = suite.size();
    // True-path instructions simulated: the measurement window per
    // run's stats plus the warm-up each run retired before it.
    for (const RunResult &r : res.runs)
        res.telemetry.simInstrs += r.stats.retiredInstrs;
    res.telemetry.simInstrs +=
        static_cast<std::uint64_t>(suite.size()) * cfg.warmupInstrs;
    res.telemetry.wallSeconds = sw.seconds();
    TelemetryRegistry::process().record(res.telemetry);
    return res;
}

namespace {

void
checkAligned(const SuiteResult &base, const SuiteResult &test)
{
    lbp_assert(base.runs.size() == test.runs.size());
    for (std::size_t i = 0; i < base.runs.size(); ++i)
        lbp_assert(base.runs[i].workload == test.runs[i].workload);
}

} // namespace

std::vector<CategoryAgg>
aggregateByCategory(const SuiteResult &base, const SuiteResult &test)
{
    checkAligned(base, test);

    struct Acc
    {
        unsigned n = 0;
        std::uint64_t baseMisp = 0, baseInstr = 0;
        std::uint64_t testMisp = 0, testInstr = 0;
        std::vector<double> ipcRatios;
    };
    std::map<std::string, Acc> by_cat;
    std::vector<std::string> order;

    for (std::size_t i = 0; i < base.runs.size(); ++i) {
        const RunResult &b = base.runs[i];
        const RunResult &t = test.runs[i];
        if (by_cat.find(b.category) == by_cat.end())
            order.push_back(b.category);
        Acc &a = by_cat[b.category];
        ++a.n;
        a.baseMisp += b.stats.mispredicts;
        a.baseInstr += b.stats.retiredInstrs;
        a.testMisp += t.stats.mispredicts;
        a.testInstr += t.stats.retiredInstrs;
        if (b.ipc > 0.0 && t.ipc > 0.0)
            a.ipcRatios.push_back(t.ipc / b.ipc);
    }
    order.push_back("All");
    Acc &all = by_cat["All"];
    for (const auto &[name, a] : by_cat) {
        if (name == "All")
            continue;
        all.n += a.n;
        all.baseMisp += a.baseMisp;
        all.baseInstr += a.baseInstr;
        all.testMisp += a.testMisp;
        all.testInstr += a.testInstr;
        all.ipcRatios.insert(all.ipcRatios.end(), a.ipcRatios.begin(),
                             a.ipcRatios.end());
    }

    std::vector<CategoryAgg> out;
    for (const std::string &name : order) {
        const Acc &a = by_cat[name];
        CategoryAgg c;
        c.name = name;
        c.workloads = a.n;
        c.mpkiBase = a.baseInstr
                         ? 1000.0 * static_cast<double>(a.baseMisp) /
                               static_cast<double>(a.baseInstr)
                         : 0.0;
        c.mpkiTest = a.testInstr
                         ? 1000.0 * static_cast<double>(a.testMisp) /
                               static_cast<double>(a.testInstr)
                         : 0.0;
        c.mpkiReductionPct =
            c.mpkiBase > 0.0
                ? 100.0 * (c.mpkiBase - c.mpkiTest) / c.mpkiBase
                : 0.0;
        // A degenerate category (every run at zero IPC) contributes no
        // ratios; geomean(empty) is 0 and must not read as a -100%
        // "gain".
        c.ipcGainPct = a.ipcRatios.empty()
                           ? 0.0
                           : 100.0 * (geomean(a.ipcRatios) - 1.0);
        out.push_back(c);
    }
    return out;
}

double
mpkiReductionPct(const SuiteResult &base, const SuiteResult &test)
{
    checkAligned(base, test);
    std::uint64_t bm = 0, bi = 0, tm = 0, ti = 0;
    for (std::size_t i = 0; i < base.runs.size(); ++i) {
        bm += base.runs[i].stats.mispredicts;
        bi += base.runs[i].stats.retiredInstrs;
        tm += test.runs[i].stats.mispredicts;
        ti += test.runs[i].stats.retiredInstrs;
    }
    const double b =
        bi ? 1000.0 * static_cast<double>(bm) / static_cast<double>(bi)
           : 0.0;
    const double t =
        ti ? 1000.0 * static_cast<double>(tm) / static_cast<double>(ti)
           : 0.0;
    return b > 0.0 ? 100.0 * (b - t) / b : 0.0;
}

double
ipcGainPct(const SuiteResult &base, const SuiteResult &test)
{
    checkAligned(base, test);
    std::vector<double> ratios;
    ratios.reserve(base.runs.size());
    for (std::size_t i = 0; i < base.runs.size(); ++i)
        if (base.runs[i].ipc > 0.0 && test.runs[i].ipc > 0.0)
            ratios.push_back(test.runs[i].ipc / base.runs[i].ipc);
    // No comparable pair (empty or all-zero-IPC suites): report "no
    // gain", not the -100% geomean(empty) would imply.
    return ratios.empty() ? 0.0 : 100.0 * (geomean(ratios) - 1.0);
}

std::vector<std::pair<std::string, double>>
ipcSCurve(const SuiteResult &base, const SuiteResult &test)
{
    checkAligned(base, test);
    std::vector<std::pair<std::string, double>> curve;
    for (std::size_t i = 0; i < base.runs.size(); ++i) {
        const double gain =
            base.runs[i].ipc > 0.0
                ? 100.0 * (test.runs[i].ipc / base.runs[i].ipc - 1.0)
                : 0.0;
        curve.emplace_back(base.runs[i].workload, gain);
    }
    std::sort(curve.begin(), curve.end(),
              [](const auto &a, const auto &b) {
                  return a.second < b.second;
              });
    return curve;
}

BenchEnv
BenchEnv::fromEnvironment()
{
    BenchEnv env;
    if (const char *s = std::getenv("REPRO_INSTR"))
        env.measureInstrs = std::strtoull(s, nullptr, 10);
    if (const char *s = std::getenv("REPRO_WARMUP"))
        env.warmupInstrs = std::strtoull(s, nullptr, 10);
    if (const char *s = std::getenv("REPRO_WORKLOADS"))
        env.maxWorkloads = static_cast<unsigned>(
            std::strtoul(s, nullptr, 10));
    if (const char *s = std::getenv("REPRO_JOBS"))
        env.jobs = static_cast<unsigned>(std::strtoul(s, nullptr, 10));
    return env;
}

void
BenchEnv::apply(SimConfig &cfg) const
{
    cfg.warmupInstrs = warmupInstrs;
    cfg.measureInstrs = measureInstrs;
}

} // namespace lbp
