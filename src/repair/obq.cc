#include "repair/obq.hh"

#include "common/logging.hh"

namespace lbp {

Obq::Obq(unsigned capacity, bool coalesce)
    : capacity_(capacity), coalesce_(coalesce), ring_(capacity)
{
    lbp_assert(capacity >= 2);
}

std::uint64_t
Obq::push(Addr pc, LocalState pre_state, InstSeq seq, bool *merged)
{
    *merged = false;
    if (coalesce_ && size() >= 2 && slot(tail_ - 1).pc == pc &&
        slot(tail_ - 2).pc == pc) {
        // Third-or-later consecutive instance of the same PC: overwrite
        // the "last instance" entry and share its id. The first
        // instance's entry (tail-2) stays intact for walks that start
        // older than the run.
        Entry &last = slot(tail_ - 1);
        last.preState = pre_state;
        last.lastSeq = seq;
        ++merges_;
        *merged = true;
        return tail_ - 1;
    }

    if (full()) {
        ++overflows_;
        return invalidId;
    }

    Entry &e = slot(tail_);
    e.pc = pc;
    e.preState = pre_state;
    e.firstSeq = seq;
    e.lastSeq = seq;
    return tail_++;
}

const Obq::Entry &
Obq::at(std::uint64_t id) const
{
    lbp_assert(id >= head_ && id < tail_);
    return slot(id);
}

void
Obq::squashYoungerThan(InstSeq seq, Addr survivor_pc,
                       LocalState survivor_state)
{
    while (tail_ > head_ && slot(tail_ - 1).firstSeq > seq)
        --tail_;
    if (tail_ > head_) {
        Entry &e = slot(tail_ - 1);
        if (e.lastSeq > seq) {
            // Coalesced entry whose younger merged instances were
            // squashed: trim it back to the surviving instruction.
            e.lastSeq = seq;
            if (e.pc == survivor_pc)
                e.preState = survivor_state;
        }
    }
}

void
Obq::retireUpTo(std::uint64_t, InstSeq seq)
{
    // lastSeq is monotonic across live entries (coalescing only ever
    // extends the current tail entry), so head eviction is a scan.
    while (head_ < tail_ && slot(head_).lastSeq <= seq)
        ++head_;
}

} // namespace lbp
