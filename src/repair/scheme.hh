/**
 * @file
 * Local-predictor repair schemes.
 *
 * A RepairScheme owns a local predictor instance and the policy side of
 * integrating it into the OOO pipeline (section 2.4's event list): when
 * the BHT is looked up and speculatively updated, what gets checkpointed
 * where, what happens on a misprediction, and when the BHT is
 * unavailable because a repair is in flight (section 2.5's issue list).
 *
 * Implemented schemes (paper sections in parentheses):
 *  - PerfectRepair   — oracle upper bound: instantaneous, unbounded (6.1)
 *  - NoRepair        — speculative updates, never repaired (2.7)
 *  - RetireUpdate    — BHT written only at retirement (6.2)
 *  - BackwardWalk    — Skadron history-file walk, youngest first (2.6)
 *  - Snapshot        — whole-BHT snapshot queue (2.6)
 *  - ForwardWalk     — mispredict-first walk with repair bits, optional
 *                      OBQ coalescing (3.1)
 *  - LimitedPc       — repair only M heuristically-chosen PCs (3.3)
 *  - MultiStage      — split BHT-TAGE / BHT-Defer with alloc-stage
 *                      override and two-step repair (3.2)
 *
 * Timing model: a repair performing W BHT writes with the configured
 * ports sustains min(obqReadPorts, bhtWritePorts) writes per cycle and
 * occupies the BHT until done. Backward walks and snapshot restores
 * make the whole BHT unavailable for the duration; forward walks free
 * each entry the cycle it is rewritten (the paper's key timeliness
 * argument); limited-PC repair completes in a deterministic
 * ceil(M / writePorts) cycles.
 */

#ifndef LBP_REPAIR_SCHEME_HH
#define LBP_REPAIR_SCHEME_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "bpu/local_two_level.hh"
#include "bpu/loop_predictor.hh"
#include "bpu/predictor.hh"
#include "common/sat_counter.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "core/dyn_inst.hh"
#include "repair/obq.hh"

namespace lbp {

/** Which repair technique to instantiate. */
enum class RepairKind
{
    Perfect,
    NoRepair,
    RetireUpdate,
    BackwardWalk,
    Snapshot,
    ForwardWalk,
    LimitedPc,
    MultiStage,
    FutureFile,
};

const char *repairKindName(RepairKind kind);

/** Which local predictor design the scheme manages. */
enum class LocalKind
{
    CbpwLoop,   ///< the paper's demonstration vehicle
    TwoLevel,   ///< generic Yeh-Patt (extensibility claim)
};

/** M-N-P structure configuration from the paper's figures. */
struct RepairPorts
{
    unsigned entries = 32;        ///< OBQ / snapshot-queue entries
    unsigned readPorts = 4;       ///< checkpoint-structure read ports
    unsigned bhtWritePorts = 2;   ///< BHT write ports usable for repair
};

/** Full repair-scheme configuration. */
struct RepairConfig
{
    RepairKind kind = RepairKind::ForwardWalk;
    LocalKind localKind = LocalKind::CbpwLoop;
    LoopConfig loop = LoopConfig::entries128();
    LocalTwoLevelConfig twoLevel{};
    RepairPorts ports{};
    bool coalesce = false;        ///< ForwardWalk: OBQ entry merging
    unsigned limitedM = 4;        ///< LimitedPc: PCs repaired
    bool limitedInvalidate = false;  ///< LimitedPc: invalidate the rest
    bool msSplitPt = false;       ///< MultiStage: split the PT
    /** FutureFile: associative-search window (entries from the tail a
     *  lookup can reach; the paper caps practical designs at 8-16). */
    unsigned ffWindow = 16;
    /**
     * Optional CBP-style global WITHLOOP chooser. Off by default: the
     * per-entry PT confidence (reset on a wrong used prediction) is the
     * override gate, which reproduces the paper's observation that an
     * unrepaired local predictor actively *loses* performance — a
     * global trust counter would just turn it off instead.
     */
    bool useChooser = false;
    int chooserInit = -4;  ///< chooser start value when enabled
};

/** Counters every scheme maintains. */
struct RepairStats
{
    std::uint64_t repairsTriggered = 0;
    std::uint64_t repairWrites = 0;
    std::uint64_t uncheckpointedMispredicts = 0;
    std::uint64_t deniedPredictions = 0;  ///< BHT busy at lookup
    std::uint64_t skippedSpecUpdates = 0;
    std::uint64_t overrides = 0;
    std::uint64_t overridesCorrect = 0;
    std::uint64_t earlyResteers = 0;
    std::uint64_t earlyResteersWrong = 0;
    Distribution walkLength;       ///< entries examined per repair
    Distribution writesPerRepair;  ///< BHT writes per repair
    Distribution repairsNeeded;    ///< distinct polluted PCs (Figure 8)
    Distribution repairCycles;
};

/**
 * Base class: implements the common fetch-stage policy (lookup,
 * WITHLOOP-gated override, speculative update) and the Figure-8
 * pollution accounting. The default misprediction action is "do
 * nothing", i.e. the NoRepair scheme.
 */
class RepairScheme
{
  public:
    struct PredictOutcome
    {
        bool finalDir = false;
        bool usedLoop = false;
    };

    struct AllocOutcome
    {
        bool resteer = false;
        bool dir = false;
    };

    RepairScheme(std::unique_ptr<LocalPredictor> lp,
                 const RepairConfig &cfg);
    virtual ~RepairScheme() = default;

    /**
     * Fetch-stage handling of a conditional branch: local lookup,
     * override decision against @p tage_dir, checkpointing, and
     * speculative BHT update. Fills di.br.
     */
    virtual PredictOutcome atPredict(DynInst &di, bool tage_dir,
                                     Cycle now);

    /** True-path fetch hook (oracle maintenance for PerfectRepair). */
    virtual void atTruePathFetch(const DynInst &di) { (void)di; }

    /** Alloc-stage hook; only MultiStage ever requests a resteer. */
    virtual AllocOutcome
    atAlloc(DynInst &di, Cycle now)
    {
        (void)di;
        (void)now;
        return {};
    }

    /** Execute-time resolution of a mispredicted conditional branch. */
    virtual void atMispredict(DynInst &di, Cycle now);

    /** Pipeline squash: instructions with seq > @p kept_seq vanish. */
    virtual void atSquash(InstSeq kept_seq, const DynInst &cause);

    /** Retirement of a conditional branch: training + housekeeping. */
    virtual void atRetire(DynInst &di);

    /** Additional storage beyond TAGE + the local predictor (KB). */
    virtual double storageKB() const { return 0.0; }

    /**
     * Live entries in the scheme's checkpoint structure (OBQ, snapshot
     * queue, future-file ring); 0 for schemes without one. Observability
     * only — the misprediction-forensics channel records it per squash.
     */
    virtual unsigned obqOccupancy() const { return 0; }

    virtual const char *name() const;

    /**
     * PCs the scheme's most recent atMispredict() claimed to repair,
     * or nullptr when the scheme repairs every polluted PC (the walks,
     * snapshot, multi-stage). LimitedPc declares its M-entry payload
     * here so the LBP_AUDIT checker can count pollution outside the
     * set as a declared gap instead of asserting on it (section 3.3's
     * divergence-by-design).
     */
    virtual const std::vector<Addr> *lastRepairSet() const
    {
        return nullptr;
    }

    /**
     * True when the checkpointed local state is read and written at
     * the alloc/defer stage rather than at fetch (MultiStage's
     * BHT-Defer): the LBP_AUDIT record must then be taken after
     * atAlloc(), when di.br.local holds the audited table's lookup.
     */
    virtual bool auditsAtAlloc() const { return false; }

    /** The managed local predictor (primary one for MultiStage). */
    LocalPredictor &local() { return *lp_; }
    const LocalPredictor &local() const { return *lp_; }

    /** Local predictor storage (both tables for MultiStage). */
    virtual double localStorageKB() const { return lp_->storageKB(); }

    const RepairStats &stats() const { return stats_; }
    const RepairConfig &config() const { return cfg_; }

    /** Current WITHLOOP chooser value (diagnostics/tests). */
    int chooserValue() const { return withLoop_.value(); }

  protected:
    /** Can the BHT serve a prediction for @p pc right now? */
    virtual bool
    bhtUsable(Addr pc, Cycle now) const
    {
        (void)pc;
        (void)now;
        return true;
    }

    /** Can the BHT accept a speculative update for @p pc right now? */
    virtual bool
    bhtWritable(Addr pc, Cycle now) const
    {
        return bhtUsable(pc, now);
    }

    /** Subclass checkpointing hook, called before the spec update. */
    virtual void
    checkpoint(DynInst &di, Cycle now)
    {
        (void)di;
        (void)now;
    }

    /** Whether this scheme speculatively updates the BHT at predict. */
    virtual bool specUpdatesAtPredict() const { return true; }

    /** Writes-per-cycle a repair can sustain. */
    unsigned
    repairThroughput() const
    {
        return std::max(1u, std::min(cfg_.ports.readPorts,
                                     cfg_.ports.bhtWritePorts));
    }

    /** Record a speculative update for Figure-8 pollution accounting. */
    void logSpecUpdate(InstSeq seq, Addr pc);

    /** Distinct PCs speculatively updated after @p seq (Figure 8). */
    unsigned pollutedPcsSince(InstSeq seq) const;

    /** The same set, as a list (LimitedPc invalidation ablation). */
    std::vector<Addr> pollutedListSince(InstSeq seq) const;

    std::unique_ptr<LocalPredictor> lp_;
    RepairConfig cfg_;
    RepairStats stats_;
    SignedSatCounter withLoop_;

  private:
    const std::vector<Addr> &pollutedScratchSince(InstSeq seq) const;

    /** Ring of recent speculative updates (seq, pc). */
    std::vector<std::pair<InstSeq, Addr>> updateLog_;
    std::size_t updateLogPos_ = 0;
    /** Scratch for the per-misprediction pollution count — reused so
     *  the hot resolve path never allocates. */
    mutable std::vector<Addr> pollutedScratch_;
};

/**
 * Instantiate a scheme per @p cfg, constructing the local predictor(s)
 * it manages from cfg.localKind / cfg.loop / cfg.twoLevel.
 */
std::unique_ptr<RepairScheme> makeRepairScheme(const RepairConfig &cfg);

/** Construct a local predictor instance per the config (shared helper). */
std::unique_ptr<LocalPredictor> makeLocalPredictor(const RepairConfig &cfg);

} // namespace lbp

#endif // LBP_REPAIR_SCHEME_HH
