#include "repair/schemes.hh"

#include <algorithm>

#include "common/logging.hh"

namespace lbp {

namespace {

/** ROB entries charged for per-instruction repair baggage (Table 2/3). */
constexpr unsigned robEntriesForStorage = 224;

Cycle
ceilDiv(std::uint64_t work, unsigned per_cycle)
{
    return (work + per_cycle - 1) / per_cycle;
}

} // namespace

// ---------------------------------------------------------------------
// RetireUpdate
// ---------------------------------------------------------------------

void
RetireUpdateScheme::atRetire(DynInst &di)
{
    RepairScheme::atRetire(di);
    // The only BHT write: architectural outcome at retirement.
    lp_->specUpdate(di.pc, di.actualDir);
}

// ---------------------------------------------------------------------
// PerfectRepair
// ---------------------------------------------------------------------

PerfectRepairScheme::PerfectRepairScheme(
    std::unique_ptr<LocalPredictor> lp,
    std::unique_ptr<LocalPredictor> oracle, const RepairConfig &cfg)
    : RepairScheme(std::move(lp), cfg), oracle_(std::move(oracle))
{
    lbp_assert(oracle_ != nullptr);
    lbp_assert(oracle_->bhtEntries() == lp_->bhtEntries());
}

void
PerfectRepairScheme::atTruePathFetch(const DynInst &di)
{
    if (di.isCond())
        oracle_->specUpdate(di.pc, di.actualDir);
}

void
PerfectRepairScheme::atMispredict(DynInst &di, Cycle now)
{
    RepairScheme::atMispredict(di, now);
    // Instant, unbounded restore: the shadow table already reflects the
    // architectural path up to and including this branch.
    lp_->restoreBht(oracle_->snapshotBht());
    stats_.writesPerRepair.sample(lp_->bhtEntries());
    stats_.repairCycles.sample(0);
}

// ---------------------------------------------------------------------
// WalkSchemeBase
// ---------------------------------------------------------------------

WalkSchemeBase::WalkSchemeBase(std::unique_ptr<LocalPredictor> lp,
                               const RepairConfig &cfg, bool coalesce)
    : RepairScheme(std::move(lp), cfg),
      obq_(cfg.ports.entries, coalesce)
{
}

void
WalkSchemeBase::checkpoint(DynInst &di, Cycle)
{
    // Per the paper's OBQ design (section 5): only PCs that hit in the
    // BHT get an entry of their own; missing PCs are assigned the
    // position "before the tail" purely to order a later walk. When the
    // OBQ is full, no id is assigned at all and a misprediction of that
    // branch cannot be recovered (section 3.1 overflow rule).
    di.br.obqId = invalidId;
    di.br.checkpointed = false;
    di.br.mergedEntry = false;

    if (di.br.local.bhtHit) {
        bool merged = false;
        const std::uint64_t id =
            obq_.push(di.pc, di.br.local.preState, di.seq, &merged);
        if (id != invalidId) {
            di.br.obqId = id;
            di.br.checkpointed = true;
            di.br.mergedEntry = merged;
        }
    } else if (!obq_.full()) {
        di.br.obqId = obq_.tail();  // ordering marker, no storage
    }
}

void
WalkSchemeBase::atSquash(InstSeq kept_seq, const DynInst &cause)
{
    obq_.squashYoungerThan(kept_seq, cause.pc, cause.br.local.preState);
}

void
WalkSchemeBase::atRetire(DynInst &di)
{
    RepairScheme::atRetire(di);
    if (di.br.checkpointed)
        obq_.retireUpTo(di.br.obqId, di.seq);
}

double
WalkSchemeBase::storageKB() const
{
    // OBQ + 1 repair bit per BHT entry + ROB extension (OBQ id + 11-bit
    // pre-update counter carried with each instruction), per Table 3.
    const double obq_kb = obq_.storageKB();
    const double repair_bits_kb = lp_->bhtEntries() / 8192.0;
    const double rob_kb = robEntriesForStorage * 16.0 / 8192.0;
    return obq_kb + repair_bits_kb + rob_kb;
}

// ---------------------------------------------------------------------
// BackwardWalk
// ---------------------------------------------------------------------

BackwardWalkScheme::BackwardWalkScheme(std::unique_ptr<LocalPredictor> lp,
                                       const RepairConfig &cfg)
    : WalkSchemeBase(std::move(lp), cfg, /*coalesce=*/false)
{
}

bool
BackwardWalkScheme::bhtUsable(Addr, Cycle now) const
{
    return now >= busyUntil_;
}

void
BackwardWalkScheme::atMispredict(DynInst &di, Cycle now)
{
    RepairScheme::atMispredict(di, now);
    if (di.br.obqId == invalidId) {
        ++stats_.uncheckpointedMispredicts;
        return;
    }

    // Youngest entry first, down to (and including) the mispredicting
    // branch. Duplicate PCs get rewritten on every occurrence; the last
    // write (the oldest instance's pre-state) is the correct one.
    unsigned walked = 0;
    unsigned writes = 0;
    const std::uint64_t begin = std::max(di.br.obqId, obq_.head());
    for (std::uint64_t id = obq_.tail(); id-- > begin;) {
        const Obq::Entry &e = obq_.at(id);
        lp_->writeState(e.pc, e.preState);
        ++walked;
        ++writes;
    }

    // Step 7 (section 2.4): fold in the branch's own resolution; only
    // possible when this branch's pre-state was actually checkpointed.
    if (di.br.checkpointed) {
        bool present = false;
        const LocalState st = lp_->readState(di.pc, &present);
        if (present) {
            lp_->writeState(di.pc, lp_->advanceState(st, di.actualDir));
            ++writes;
        }
    }

    const Cycle start = std::max<Cycle>(now + 1, busyUntil_);
    const Cycle cycles = ceilDiv(writes, repairThroughput());
    busyUntil_ = start + cycles;

    stats_.repairWrites += writes;
    stats_.walkLength.sample(walked);
    stats_.writesPerRepair.sample(writes);
    stats_.repairCycles.sample(cycles);
}

// ---------------------------------------------------------------------
// ForwardWalk
// ---------------------------------------------------------------------

ForwardWalkScheme::ForwardWalkScheme(std::unique_ptr<LocalPredictor> lp,
                                     const RepairConfig &cfg)
    : WalkSchemeBase(std::move(lp), cfg, cfg.coalesce)
{
}

bool
ForwardWalkScheme::bhtUsable(Addr pc, Cycle now) const
{
    // Entries outside the active walk are usable immediately; walked
    // entries become usable the cycle their repair write lands.
    if (now >= busyUntil_) {
        if (!pendingRepair_.empty())
            pendingRepair_.clear();
        return true;
    }
    const auto it = pendingRepair_.find(pc);
    if (it == pendingRepair_.end())
        return true;
    if (now >= it->second) {
        pendingRepair_.erase(it);
        return true;
    }
    return false;
}

void
ForwardWalkScheme::atMispredict(DynInst &di, Cycle now)
{
    RepairScheme::atMispredict(di, now);
    if (di.br.obqId == invalidId) {
        ++stats_.uncheckpointedMispredicts;
        return;
    }

    lp_->setAllRepairBits();
    pendingRepair_.clear();

    const unsigned tput = repairThroughput();
    const Cycle start = std::max<Cycle>(now + 1, busyUntil_);
    unsigned walked = 0;
    unsigned writes = 0;

    std::uint64_t begin = std::max(di.br.obqId, obq_.head());
    if (di.br.checkpointed && di.br.mergedEntry) {
        // This branch shares a coalesced entry: repair its PC from the
        // state carried with the instruction (section 3.1), then walk
        // the strictly-younger entries.
        if (lp_->testClearRepairBit(di.pc)) {
            lp_->writeState(di.pc, lp_->advanceState(
                                       di.br.local.preState,
                                       di.actualDir));
            ++writes;
            pendingRepair_[di.pc] = start + ceilDiv(writes, tput);
        }
        begin = di.br.obqId + 1;
    }

    for (std::uint64_t id = begin; id < obq_.tail(); ++id) {
        ++walked;
        const Obq::Entry &e = obq_.at(id);
        // The repair bit guarantees one write per PC: the first (i.e.
        // oldest) instance wins, which is the architectural pre-state.
        if (!lp_->testClearRepairBit(e.pc))
            continue;
        LocalState st = e.preState;
        if (di.br.checkpointed && id == di.br.obqId && e.pc == di.pc)
            st = lp_->advanceState(st, di.actualDir);
        lp_->writeState(e.pc, st);
        ++writes;
        pendingRepair_[e.pc] = start + ceilDiv(writes, tput);
    }

    busyUntil_ = start + ceilDiv(writes, tput);

    stats_.repairWrites += writes;
    stats_.walkLength.sample(walked);
    stats_.writesPerRepair.sample(writes);
    stats_.repairCycles.sample(busyUntil_ - start);
}

// ---------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------

SnapshotScheme::SnapshotScheme(std::unique_ptr<LocalPredictor> lp,
                               const RepairConfig &cfg)
    : RepairScheme(std::move(lp), cfg), ring_(cfg.ports.entries)
{
}

bool
SnapshotScheme::bhtUsable(Addr, Cycle now) const
{
    return now >= busyUntil_;
}

void
SnapshotScheme::checkpoint(DynInst &di, Cycle)
{
    if (tail_ - head_ == ring_.size()) {
        // Oldest snapshot evicted; a misprediction older than the
        // window can no longer be repaired.
        ++head_;
        ++evictions_;
    }
    Snap &s = ring_[tail_ % ring_.size()];
    s.seq = di.seq;
    s.data = lp_->snapshotBht();
    di.br.snapId = tail_++;
    di.br.checkpointed = true;
}

void
SnapshotScheme::atMispredict(DynInst &di, Cycle now)
{
    RepairScheme::atMispredict(di, now);
    if (!di.br.checkpointed || di.br.snapId < head_ ||
        di.br.snapId >= tail_) {
        ++stats_.uncheckpointedMispredicts;
        return;
    }

    lp_->restoreBht(ring_[di.br.snapId % ring_.size()].data);
    bool present = false;
    const LocalState st = lp_->readState(di.pc, &present);
    if (present)
        lp_->writeState(di.pc, lp_->advanceState(st, di.actualDir));

    // Restoring a snapshot rewrites the whole BHT through the limited
    // ports; the table is unavailable until done.
    const unsigned writes = lp_->bhtEntries() + 1;
    const Cycle start = std::max<Cycle>(now + 1, busyUntil_);
    const Cycle cycles = ceilDiv(writes, repairThroughput());
    busyUntil_ = start + cycles;

    stats_.repairWrites += writes;
    stats_.writesPerRepair.sample(writes);
    stats_.repairCycles.sample(cycles);
}

void
SnapshotScheme::atSquash(InstSeq kept_seq, const DynInst &)
{
    while (tail_ > head_ &&
           ring_[(tail_ - 1) % ring_.size()].seq > kept_seq) {
        --tail_;
    }
}

void
SnapshotScheme::atRetire(DynInst &di)
{
    RepairScheme::atRetire(di);
    while (head_ < tail_ && ring_[head_ % ring_.size()].seq <= di.seq)
        ++head_;
}

double
SnapshotScheme::storageKB() const
{
    // Each snapshot stores every BHT entry's state+tag (~13+8 bits).
    const double bits_per_snap = lp_->bhtEntries() * 21.0;
    return static_cast<double>(ring_.size()) * bits_per_snap / 8192.0 +
           robEntriesForStorage * 6.0 / 8192.0;
}

// ---------------------------------------------------------------------
// LimitedPc
// ---------------------------------------------------------------------

LimitedPcScheme::LimitedPcScheme(std::unique_ptr<LocalPredictor> lp,
                                 const RepairConfig &cfg)
    : RepairScheme(std::move(lp), cfg),
      payloadRing_(1u << payloadRingLog)
{
    lbp_assert(cfg.limitedM >= 1 && cfg.limitedM <= maxM);
    lastRepairSet_.reserve(maxM);
}

bool
LimitedPcScheme::bhtUsable(Addr, Cycle) const
{
    // Limited-PC repair writes its M entries through dedicated write
    // ports (Table 3: 0 read / M write) in a deterministic one or two
    // cycles that overlap the flush shadow, so the prediction path is
    // never blocked — that determinism is the technique's selling
    // point (section 3.3).
    return true;
}

void
LimitedPcScheme::noteRecentUpdate(Addr pc)
{
    auto it = std::find(recentUpdates_.begin(), recentUpdates_.end(), pc);
    if (it != recentUpdates_.end())
        recentUpdates_.erase(it);
    recentUpdates_.push_back(pc);
    if (recentUpdates_.size() > 2 * maxM)
        recentUpdates_.erase(recentUpdates_.begin());
}

void
LimitedPcScheme::checkpoint(DynInst &di, Cycle)
{
    Payload &p = payloadRing_[di.seq & (payloadRing_.size() - 1)];
    p.seq = di.seq;
    p.count = 0;

    const unsigned m = cfg_.limitedM;
    const auto add = [&](Addr pc, LocalState st) {
        if (p.count >= m)
            return;
        for (unsigned i = 0; i < p.count; ++i)
            if (p.pcs[i].first == pc)
                return;
        p.pcs[p.count++] = {pc, st};
    };

    // 1. The branch always repairs itself.
    add(di.pc, di.br.local.preState);

    // 2. Alternate the paper's two criteria — recency of BHT updates
    //    and utility (recent correct overriders) — so even M=2 covers
    //    the hot neighbour most likely to share the wrong path with
    //    this branch.
    auto recent_it = recentUpdates_.rbegin();
    auto util_it = overrideLru_.rbegin();
    while (p.count < m && (recent_it != recentUpdates_.rend() ||
                           util_it != overrideLru_.rend())) {
        if (recent_it != recentUpdates_.rend()) {
            bool present = false;
            const LocalState st = lp_->readState(*recent_it, &present);
            if (present)
                add(*recent_it, st);
            ++recent_it;
        }
        if (p.count < m && util_it != overrideLru_.rend()) {
            bool present = false;
            const LocalState st = lp_->readState(*util_it, &present);
            if (present)
                add(*util_it, st);
            ++util_it;
        }
    }

    di.br.limitedSlot = di.seq;
    di.br.checkpointed = true;

    noteRecentUpdate(di.pc);
}

void
LimitedPcScheme::atMispredict(DynInst &di, Cycle now)
{
    RepairScheme::atMispredict(di, now);
    lastRepairSet_.clear();
    const Payload &p =
        payloadRing_[di.seq & (payloadRing_.size() - 1)];
    if (!di.br.checkpointed || p.seq != di.seq) {
        ++stats_.uncheckpointedMispredicts;
        return;
    }

    for (unsigned i = 0; i < p.count; ++i) {
        const auto &[pc, st] = p.pcs[i];
        if (pc == di.pc)
            lp_->writeState(pc, lp_->advanceState(st, di.actualDir));
        else
            lp_->writeState(pc, st);
        lastRepairSet_.push_back(pc);
    }

    if (cfg_.limitedInvalidate) {
        // Ablation policy: polluted-but-unrepaired PCs are invalidated
        // so they stop overriding until they re-learn.
        // (The paper found leave-as-is better; section 3.3.)
        // Approximated via the pollution log.
        // Note: invalidation of repaired PCs is avoided.
        for (Addr pc : pollutedListSince(di.seq)) {
            bool repaired = false;
            for (unsigned i = 0; i < p.count; ++i)
                if (p.pcs[i].first == pc)
                    repaired = true;
            if (!repaired)
                lp_->invalidateEntry(pc);
        }
    }

    const unsigned writes = p.count;
    const unsigned tput = std::max(1u, cfg_.ports.bhtWritePorts);
    const Cycle start = std::max<Cycle>(now + 1, busyUntil_);
    const Cycle cycles = ceilDiv(writes, tput);
    busyUntil_ = start + cycles;

    stats_.repairWrites += writes;
    stats_.writesPerRepair.sample(writes);
    stats_.repairCycles.sample(cycles);
}

void
LimitedPcScheme::atRetire(DynInst &di)
{
    RepairScheme::atRetire(di);
    if (di.br.usedLoop && di.br.loopDir == di.actualDir) {
        auto it =
            std::find(overrideLru_.begin(), overrideLru_.end(), di.pc);
        if (it != overrideLru_.end())
            overrideLru_.erase(it);
        overrideLru_.push_back(di.pc);
        if (overrideLru_.size() > 2 * maxM)
            overrideLru_.erase(overrideLru_.begin());
    }
}

double
LimitedPcScheme::storageKB() const
{
    // M x 24 bits (5-bit set, 8-bit tag, 11-bit pattern) carried with
    // each in-flight instruction (section 3.3).
    return robEntriesForStorage * cfg_.limitedM * 24.0 / 8192.0;
}

// ---------------------------------------------------------------------
// FutureFile
// ---------------------------------------------------------------------

FutureFileScheme::FutureFileScheme(std::unique_ptr<LocalPredictor> lp,
                                   const RepairConfig &cfg)
    : RepairScheme(std::move(lp), cfg), ring_(cfg.ports.entries)
{
    lbp_assert(cfg.ffWindow >= 1);
}

RepairScheme::PredictOutcome
FutureFileScheme::atPredict(DynInst &di, bool tage_dir, Cycle now)
{
    (void)now;
    BranchRec &br = di.br;
    br.tageDir = tage_dir;

    // Associative search of the youngest ffWindow entries for this PC;
    // a hit yields the speculative state, otherwise fall back to the
    // retirement-updated BHT.
    bool known = false;
    LocalState state = 0;
    const std::uint64_t window =
        std::min<std::uint64_t>(tail_ - head_, cfg_.ffWindow);
    for (std::uint64_t i = 0; i < window; ++i) {
        const Entry &e = slot(tail_ - 1 - i);
        if (e.pc == di.pc) {
            known = true;
            state = e.state;
            break;
        }
    }
    if (!known)
        state = lp_->readState(di.pc, &known);

    br.local = lp_->predictFrom(di.pc, state, known);
    br.loopDir = br.local.dir;
    const bool use = br.local.valid &&
                     (!cfg_.useChooser || withLoop_.value() >= 0);
    br.usedLoop = use;
    br.finalPred = use ? br.local.dir : tage_dir;

    // Append the post-update speculative state; on overflow the PC is
    // simply untracked (reads will see stale architectural state).
    if (tail_ - head_ < ring_.size()) {
        Entry &e = slot(tail_);
        e.pc = di.pc;
        e.state = lp_->advanceState(state, br.finalPred);
        e.seq = di.seq;
        br.obqId = tail_++;
        br.checkpointed = true;
    }
    logSpecUpdate(di.seq, di.pc);
    return {br.finalPred, use};
}

void
FutureFileScheme::atMispredict(DynInst &di, Cycle now)
{
    RepairScheme::atMispredict(di, now);
    if (!di.br.checkpointed || di.br.obqId < head_) {
        ++stats_.uncheckpointedMispredicts;
        return;
    }
    // O(1) repair: drop everything younger and rewrite this branch's
    // own entry with its resolved outcome.
    tail_ = di.br.obqId + 1;
    Entry &e = slot(di.br.obqId);
    e.state = lp_->advanceState(di.br.local.preState, di.actualDir);
    stats_.repairWrites += 1;
    stats_.writesPerRepair.sample(1);
    stats_.repairCycles.sample(0);
}

void
FutureFileScheme::atSquash(InstSeq kept_seq, const DynInst &)
{
    while (tail_ > head_ && slot(tail_ - 1).seq > kept_seq)
        --tail_;
}

void
FutureFileScheme::atRetire(DynInst &di)
{
    RepairScheme::atRetire(di);
    // The architectural BHT is written at retirement, and retired
    // entries leave the queue.
    lp_->specUpdate(di.pc, di.actualDir);
    while (head_ < tail_ && slot(head_).seq <= di.seq)
        ++head_;
}

double
FutureFileScheme::storageKB() const
{
    // Same 76-bit entries as the OBQ, plus the comparators' cost is
    // power, not storage.
    return static_cast<double>(ring_.size()) * 76.0 / 8192.0;
}

// ---------------------------------------------------------------------
// MultiStage (split BHT)
// ---------------------------------------------------------------------

MultiStageScheme::MultiStageScheme(std::unique_ptr<LocalPredictor> lp,
                                   std::unique_ptr<LocalPredictor> bht_tage,
                                   bool shared_pt, const RepairConfig &cfg)
    : RepairScheme(std::move(lp), cfg), bhtTage_(std::move(bht_tage)),
      sharedPt_(shared_pt), obq_(cfg.ports.entries, cfg.coalesce)
{
    lbp_assert(bhtTage_ != nullptr);
}

RepairScheme::PredictOutcome
MultiStageScheme::atPredict(DynInst &di, bool tage_dir, Cycle now)
{
    BranchRec &br = di.br;
    br.tageDir = tage_dir;

    const bool usable = !tageBusy(now);
    if (!usable)
        ++stats_.deniedPredictions;
    const LocalPred lp = usable ? bhtTage_->predict(di.pc) : LocalPred{};
    br.local = lp;
    br.loopDir = lp.dir;

    const bool use = lp.valid &&
                     (!cfg_.useChooser || withLoop_.value() >= 0);
    br.usedLoop = use;
    br.finalPred = use ? lp.dir : tage_dir;

    // BHT-TAGE is speculatively updated but never checkpointed; during
    // a repair period incoming PCs have their valid bits reset instead
    // (section 3.2.1).
    if (tageBusy(now))
        bhtTage_->invalidateEntry(di.pc);
    else
        bhtTage_->specUpdate(di.pc, br.finalPred);

    return {br.finalPred, use};
}

RepairScheme::AllocOutcome
MultiStageScheme::atAlloc(DynInst &di, Cycle now)
{
    AllocOutcome out;
    BranchRec &br = di.br;

    if (deferBusy(now)) {
        // Rare: the instruction reached BHT-Defer mid-repair — no
        // prediction, state marked invalid (section 3.2.1).
        lp_->invalidateEntry(di.pc);
        ++stats_.deniedPredictions;
        return out;
    }

    const LocalPred lp = lp_->predict(di.pc);
    const bool use = lp.valid &&
                     (!cfg_.useChooser || withLoop_.value() >= 0);

    if (use && lp.dir != br.finalPred && !di.wrongPath) {
        // Deferred override: resteer the pipeline from the alloc stage.
        out.resteer = true;
        out.dir = lp.dir;
        br.finalPred = lp.dir;
        br.usedLoop = true;
        br.earlyResteered = true;
        ++stats_.earlyResteers;
        if (lp.dir != di.actualDir)
            ++stats_.earlyResteersWrong;
    } else if (use) {
        br.usedLoop = true;
    }
    // BHT-Defer's lookup governs chooser training and repair payloads.
    br.local = lp;
    br.loopDir = lp.dir;

    br.obqId = invalidId;
    br.checkpointed = false;
    br.mergedEntry = false;
    if (lp.bhtHit) {
        bool merged = false;
        const std::uint64_t id =
            obq_.push(di.pc, lp.preState, di.seq, &merged);
        if (id != invalidId) {
            br.obqId = id;
            br.checkpointed = true;
            br.mergedEntry = merged;
        }
    } else if (!obq_.full()) {
        br.obqId = obq_.tail();
    }

    lp_->specUpdate(di.pc, br.finalPred);
    br.specUpdated = true;
    logSpecUpdate(di.seq, di.pc);
    return out;
}

void
MultiStageScheme::atMispredict(DynInst &di, Cycle now)
{
    RepairScheme::atMispredict(di, now);
    if (di.br.obqId == invalidId) {
        ++stats_.uncheckpointedMispredicts;
        return;
    }

    // Phase 1: forward-walk BHT-Defer from the OBQ. Defer's own 4
    // prediction-side write ports double as repair ports (no extra
    // ports: it is not predicting while fetch refills the pipe).
    lp_->setAllRepairBits();
    const unsigned tput =
        std::max(1u, std::min(cfg_.ports.readPorts, 4u));
    unsigned walked = 0;
    unsigned writes = 0;
    std::vector<Addr> repaired;

    std::uint64_t begin = std::max(di.br.obqId, obq_.head());
    if (di.br.checkpointed && di.br.mergedEntry) {
        if (lp_->testClearRepairBit(di.pc)) {
            lp_->writeState(di.pc,
                            lp_->advanceState(di.br.local.preState,
                                              di.actualDir));
            ++writes;
            repaired.push_back(di.pc);
        }
        begin = di.br.obqId + 1;
    }
    for (std::uint64_t id = begin; id < obq_.tail(); ++id) {
        ++walked;
        const Obq::Entry &e = obq_.at(id);
        if (!lp_->testClearRepairBit(e.pc))
            continue;
        LocalState st = e.preState;
        if (di.br.checkpointed && id == di.br.obqId && e.pc == di.pc)
            st = lp_->advanceState(st, di.actualDir);
        lp_->writeState(e.pc, st);
        ++writes;
        repaired.push_back(e.pc);
    }

    const Cycle start = std::max<Cycle>(now + 1, deferBusyUntil_);
    deferBusyUntil_ = start + ceilDiv(writes, tput);

    // Phase 2: copy the repaired PCs into BHT-TAGE through its own
    // prediction ports (4/cycle); it declines predictions meanwhile.
    for (Addr pc : repaired) {
        bool present = false;
        const LocalState st = lp_->readState(pc, &present);
        if (present)
            bhtTage_->writeState(pc, st);
    }
    tageBusyUntil_ =
        deferBusyUntil_ +
        ceilDiv(static_cast<unsigned>(repaired.size()), 4u);

    stats_.repairWrites += writes + repaired.size();
    stats_.walkLength.sample(walked);
    stats_.writesPerRepair.sample(writes);
    stats_.repairCycles.sample(tageBusyUntil_ - start);
}

void
MultiStageScheme::atSquash(InstSeq kept_seq, const DynInst &cause)
{
    obq_.squashYoungerThan(kept_seq, cause.pc, cause.br.local.preState);
}

void
MultiStageScheme::atRetire(DynInst &di)
{
    lp_->retireTrain(di.pc, di.actualDir);
    if (!sharedPt_)
        bhtTage_->retireTrain(di.pc, di.actualDir);

    BranchRec &br = di.br;
    if (br.local.predictable) {
        lp_->predictionFeedback(di.pc, br.loopDir, di.actualDir);
        if (!sharedPt_)
            bhtTage_->predictionFeedback(di.pc, br.loopDir,
                                         di.actualDir);
    }
    if (br.local.valid && br.loopDir != br.tageDir)
        withLoop_.update(br.loopDir == di.actualDir);
    if (br.usedLoop) {
        ++stats_.overrides;
        if (br.loopDir == di.actualDir)
            ++stats_.overridesCorrect;
    }
    if (br.checkpointed)
        obq_.retireUpTo(br.obqId, di.seq);
}

double
MultiStageScheme::storageKB() const
{
    const double obq_kb = obq_.storageKB();
    const double repair_bits_kb =
        (lp_->bhtEntries() + bhtTage_->bhtEntries()) / 8192.0;
    const double rob_kb = robEntriesForStorage * 16.0 / 8192.0;
    return obq_kb + repair_bits_kb + rob_kb;
}

double
MultiStageScheme::localStorageKB() const
{
    return lp_->storageKB() + bhtTage_->storageKB();
}

} // namespace lbp
