/**
 * @file
 * Concrete repair-scheme classes. Declared in a header so unit tests
 * can instantiate and poke them directly; most users go through
 * makeRepairScheme().
 */

#ifndef LBP_REPAIR_SCHEMES_HH
#define LBP_REPAIR_SCHEMES_HH

#include <array>
#include <unordered_map>
#include <vector>

#include "repair/scheme.hh"

namespace lbp {

/**
 * NoRepair: speculative BHT updates are applied on the predicted path
 * and never rolled back (section 2.7's cautionary baseline).
 */
class NoRepairScheme : public RepairScheme
{
  public:
    using RepairScheme::RepairScheme;
    const char *name() const override { return "no-repair"; }
};

/**
 * RetireUpdate: the BHT is written only at retirement with the
 * architectural outcome, so there is no speculative state to repair —
 * at the price of stale state for tight loops (section 6.2).
 */
class RetireUpdateScheme : public RepairScheme
{
  public:
    using RepairScheme::RepairScheme;
    void atRetire(DynInst &di) override;
    const char *name() const override { return "retire-update"; }

  protected:
    bool specUpdatesAtPredict() const override { return false; }
};

/**
 * PerfectRepair: oracle upper bound. A shadow BHT is updated with
 * architectural outcomes in fetch order; a misprediction restores the
 * live BHT from it instantaneously (section 6.1).
 */
class PerfectRepairScheme : public RepairScheme
{
  public:
    PerfectRepairScheme(std::unique_ptr<LocalPredictor> lp,
                        std::unique_ptr<LocalPredictor> oracle,
                        const RepairConfig &cfg);

    void atTruePathFetch(const DynInst &di) override;
    void atMispredict(DynInst &di, Cycle now) override;
    const char *name() const override { return "perfect"; }

  private:
    std::unique_ptr<LocalPredictor> oracle_;
};

/**
 * Shared machinery for the OBQ-backed history-file walks.
 */
class WalkSchemeBase : public RepairScheme
{
  public:
    WalkSchemeBase(std::unique_ptr<LocalPredictor> lp,
                   const RepairConfig &cfg, bool coalesce);

    void atSquash(InstSeq kept_seq, const DynInst &cause) override;
    void atRetire(DynInst &di) override;
    double storageKB() const override;
    unsigned obqOccupancy() const override { return obq_.size(); }

    const Obq &obq() const { return obq_; }

  protected:
    void checkpoint(DynInst &di, Cycle now) override;

    Obq obq_;
    Cycle busyUntil_ = 0;
};

/**
 * BackwardWalk: Skadron-style history-file repair — walk the OBQ from
 * the youngest entry down to the mispredicting one, rewriting every
 * entry (duplicate PCs rewritten multiple times); the BHT is
 * unavailable until the whole walk completes (section 2.6).
 */
class BackwardWalkScheme : public WalkSchemeBase
{
  public:
    BackwardWalkScheme(std::unique_ptr<LocalPredictor> lp,
                       const RepairConfig &cfg);

    void atMispredict(DynInst &di, Cycle now) override;
    const char *name() const override { return "backward-walk"; }

  protected:
    bool bhtUsable(Addr pc, Cycle now) const override;
};

/**
 * ForwardWalk: the paper's technique (section 3.1) — start at the
 * mispredicting entry and walk toward the tail; per-entry repair bits
 * guarantee one write per PC (the oldest instance's pre-state, which
 * is the architecturally-correct value), and each entry becomes usable
 * the cycle it is rewritten. Optional OBQ coalescing merges consecutive
 * same-PC checkpoints.
 */
class ForwardWalkScheme : public WalkSchemeBase
{
  public:
    ForwardWalkScheme(std::unique_ptr<LocalPredictor> lp,
                      const RepairConfig &cfg);

    void atMispredict(DynInst &di, Cycle now) override;
    const char *name() const override
    {
        return cfg_.coalesce ? "forward-walk+coalesce" : "forward-walk";
    }

  protected:
    bool bhtUsable(Addr pc, Cycle now) const override;

  private:
    /** PCs awaiting their repair write during an active walk. */
    mutable std::unordered_map<Addr, Cycle> pendingRepair_;
};

/**
 * Snapshot: whole-BHT snapshots pushed to a bounded snapshot queue at
 * every checkpointed prediction; a misprediction restores the full
 * table, paying storage and a long whole-BHT-busy restore (section 2.6).
 */
class SnapshotScheme : public RepairScheme
{
  public:
    SnapshotScheme(std::unique_ptr<LocalPredictor> lp,
                   const RepairConfig &cfg);

    void atMispredict(DynInst &di, Cycle now) override;
    void atSquash(InstSeq kept_seq, const DynInst &cause) override;
    void atRetire(DynInst &di) override;
    double storageKB() const override;
    unsigned obqOccupancy() const override
    {
        return static_cast<unsigned>(tail_ - head_);
    }
    const char *name() const override { return "snapshot"; }

  protected:
    void checkpoint(DynInst &di, Cycle now) override;
    bool bhtUsable(Addr pc, Cycle now) const override;

  private:
    struct Snap
    {
        InstSeq seq = invalidSeq;
        std::vector<std::uint64_t> data;
    };

    std::vector<Snap> ring_;
    std::uint64_t head_ = 0;
    std::uint64_t tail_ = 0;
    Cycle busyUntil_ = 0;
    std::uint64_t evictions_ = 0;
};

/**
 * LimitedPc: repair exactly M PCs chosen by the paper's
 * utility-plus-recency heuristic — the mispredicting PC itself, recent
 * correct overriders, then recently-updated BHT entries. The pre-update
 * states of the chosen PCs travel with every instruction (24 bits per
 * PC), so repair needs no OBQ and completes in deterministic time
 * (section 3.3).
 */
class LimitedPcScheme : public RepairScheme
{
  public:
    LimitedPcScheme(std::unique_ptr<LocalPredictor> lp,
                    const RepairConfig &cfg);

    void atMispredict(DynInst &di, Cycle now) override;
    void atRetire(DynInst &di) override;
    double storageKB() const override;
    const char *name() const override { return "limited-pc"; }

    /** The M PCs the last repair actually wrote (declared coverage). */
    const std::vector<Addr> *lastRepairSet() const override
    {
        return &lastRepairSet_;
    }

  protected:
    void checkpoint(DynInst &di, Cycle now) override;
    bool bhtUsable(Addr pc, Cycle now) const override;

  private:
    static constexpr unsigned maxM = 16;
    static constexpr unsigned payloadRingLog = 13;

    struct Payload
    {
        std::array<std::pair<Addr, LocalState>, maxM> pcs;
        std::uint8_t count = 0;
        InstSeq seq = invalidSeq;
    };

    void noteRecentUpdate(Addr pc);

    std::vector<Payload> payloadRing_;
    std::vector<Addr> overrideLru_;   ///< recent correct overriders
    std::vector<Addr> recentUpdates_; ///< recent BHT-updated PCs
    std::vector<Addr> lastRepairSet_; ///< PCs written by the last repair
    Cycle busyUntil_ = 0;
};

/**
 * FutureFile: the second Skadron organization (section 2.6). The
 * speculative per-PC state lives in the queue itself: a prediction
 * associatively searches the youngest entries for its PC (falling back
 * to the retirement-updated BHT), and repair is a single tail-pointer
 * revert — O(1), no BHT unavailability. The paper rejects the design
 * because the common-case prediction path needs the associative search
 * (a power/latency problem beyond 8-16 ways); we model that limit as a
 * bounded search window, so PCs whose latest update lies deeper than
 * the window read stale architectural state.
 */
class FutureFileScheme : public RepairScheme
{
  public:
    FutureFileScheme(std::unique_ptr<LocalPredictor> lp,
                     const RepairConfig &cfg);

    PredictOutcome atPredict(DynInst &di, bool tage_dir,
                             Cycle now) override;
    void atMispredict(DynInst &di, Cycle now) override;
    void atSquash(InstSeq kept_seq, const DynInst &cause) override;
    void atRetire(DynInst &di) override;
    double storageKB() const override;
    unsigned obqOccupancy() const override
    {
        return static_cast<unsigned>(tail_ - head_);
    }
    const char *name() const override { return "future-file"; }

  private:
    struct Entry
    {
        Addr pc = 0;
        LocalState state = 0;  ///< post-update speculative state
        InstSeq seq = invalidSeq;
    };

    Entry &slot(std::uint64_t id) { return ring_[id % ring_.size()]; }

    std::vector<Entry> ring_;
    std::uint64_t head_ = 0;
    std::uint64_t tail_ = 0;
};

/**
 * MultiStage: split BHT (section 3.2). BHT-TAGE sits at the prediction
 * stage and overrides immediately; BHT-Defer sits at the allocation
 * stage, is the only checkpointed table, and can override with an early
 * pipeline resteer. Repair forward-walks BHT-Defer from the OBQ, then
 * copies the repaired PCs into BHT-TAGE using the prediction ports
 * (BHT-TAGE simply declines predictions during the repair period, so no
 * extra ports are needed).
 */
class MultiStageScheme : public RepairScheme
{
  public:
    /** @p lp is BHT-Defer (checkpointed); @p bht_tage the fetch table. */
    MultiStageScheme(std::unique_ptr<LocalPredictor> lp,
                     std::unique_ptr<LocalPredictor> bht_tage,
                     bool shared_pt, const RepairConfig &cfg);

    PredictOutcome atPredict(DynInst &di, bool tage_dir,
                             Cycle now) override;
    AllocOutcome atAlloc(DynInst &di, Cycle now) override;
    void atMispredict(DynInst &di, Cycle now) override;
    void atSquash(InstSeq kept_seq, const DynInst &cause) override;
    void atRetire(DynInst &di) override;
    double storageKB() const override;
    double localStorageKB() const override;
    unsigned obqOccupancy() const override { return obq_.size(); }
    const char *name() const override
    {
        return sharedPt_ ? "split-bht(shared-pt)" : "split-bht(split-pt)";
    }

    /** BHT-Defer (the checkpointed table) is looked up at atAlloc(). */
    bool auditsAtAlloc() const override { return true; }

    LocalPredictor &bhtTage() { return *bhtTage_; }

  private:
    bool deferBusy(Cycle now) const { return now < deferBusyUntil_; }
    bool tageBusy(Cycle now) const { return now < tageBusyUntil_; }

    std::unique_ptr<LocalPredictor> bhtTage_;
    bool sharedPt_;
    Obq obq_;
    Cycle deferBusyUntil_ = 0;
    Cycle tageBusyUntil_ = 0;
};

} // namespace lbp

#endif // LBP_REPAIR_SCHEMES_HH
