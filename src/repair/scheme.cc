#include "repair/scheme.hh"

#include "common/logging.hh"
#include "repair/schemes.hh"

namespace lbp {

const char *
repairKindName(RepairKind kind)
{
    switch (kind) {
      case RepairKind::Perfect: return "perfect";
      case RepairKind::NoRepair: return "no-repair";
      case RepairKind::RetireUpdate: return "retire-update";
      case RepairKind::BackwardWalk: return "backward-walk";
      case RepairKind::Snapshot: return "snapshot";
      case RepairKind::ForwardWalk: return "forward-walk";
      case RepairKind::LimitedPc: return "limited-pc";
      case RepairKind::MultiStage: return "multi-stage";
      case RepairKind::FutureFile: return "future-file";
    }
    return "unknown";
}

RepairScheme::RepairScheme(std::unique_ptr<LocalPredictor> lp,
                           const RepairConfig &cfg)
    : lp_(std::move(lp)), cfg_(cfg), withLoop_(7, cfg.chooserInit),
      updateLog_(1u << 13)
{
    lbp_assert(lp_ != nullptr);
    lbp_assert(cfg.chooserInit < 0);
    lbp_assert(cfg.chooserInit >= withLoop_.min());
}

void
RepairScheme::logSpecUpdate(InstSeq seq, Addr pc)
{
    updateLog_[updateLogPos_] = {seq, pc};
    updateLogPos_ = (updateLogPos_ + 1) % updateLog_.size();
}

const std::vector<Addr> &
RepairScheme::pollutedScratchSince(InstSeq seq) const
{
    // Walk the update log backwards collecting distinct PCs updated at
    // or after the mispredicting branch. Seqs are monotonic in fetch
    // order, so the walk stops at the first older record. The scratch
    // buffer is a member so the every-misprediction count stays
    // allocation-free.
    std::vector<Addr> &distinct = pollutedScratch_;
    distinct.clear();
    std::size_t pos = updateLogPos_;
    for (std::size_t n = 0; n < updateLog_.size(); ++n) {
        pos = (pos + updateLog_.size() - 1) % updateLog_.size();
        const auto &[s, pc] = updateLog_[pos];
        if (s < seq || s == invalidSeq)
            break;
        if (std::find(distinct.begin(), distinct.end(), pc) ==
            distinct.end()) {
            distinct.push_back(pc);
        }
    }
    return distinct;
}

std::vector<Addr>
RepairScheme::pollutedListSince(InstSeq seq) const
{
    return pollutedScratchSince(seq);
}

unsigned
RepairScheme::pollutedPcsSince(InstSeq seq) const
{
    return static_cast<unsigned>(pollutedScratchSince(seq).size());
}

RepairScheme::PredictOutcome
RepairScheme::atPredict(DynInst &di, bool tage_dir, Cycle now)
{
    BranchRec &br = di.br;
    br.tageDir = tage_dir;

    const bool usable = bhtUsable(di.pc, now);
    if (!usable)
        ++stats_.deniedPredictions;
    br.local = usable ? lp_->predict(di.pc) : LocalPred{};
    br.loopDir = br.local.dir;

    const bool use = br.local.valid &&
                     (!cfg_.useChooser || withLoop_.value() >= 0);
    br.usedLoop = use;
    br.finalPred = use ? br.local.dir : tage_dir;

    if (specUpdatesAtPredict()) {
        if (bhtWritable(di.pc, now)) {
            checkpoint(di, now);
            lp_->specUpdate(di.pc, br.finalPred);
            br.specUpdated = true;
            logSpecUpdate(di.seq, di.pc);
        } else {
            ++stats_.skippedSpecUpdates;
        }
    }
    return {br.finalPred, use};
}

void
RepairScheme::atMispredict(DynInst &di, Cycle)
{
    ++stats_.repairsTriggered;
    stats_.repairsNeeded.sample(pollutedPcsSince(di.seq));
}

void
RepairScheme::atSquash(InstSeq, const DynInst &)
{
}

void
RepairScheme::atRetire(DynInst &di)
{
    BranchRec &br = di.br;
    lp_->retireTrain(di.pc, di.actualDir);
    if (br.local.predictable)
        lp_->predictionFeedback(di.pc, br.loopDir, di.actualDir);
    // Train the WITHLOOP chooser (when enabled) on disagreements.
    if (br.local.valid && br.loopDir != br.tageDir)
        withLoop_.update(br.loopDir == di.actualDir);
    if (br.usedLoop) {
        ++stats_.overrides;
        if (br.loopDir == di.actualDir)
            ++stats_.overridesCorrect;
    }
}

const char *
RepairScheme::name() const
{
    return "base";
}

std::unique_ptr<LocalPredictor>
makeLocalPredictor(const RepairConfig &cfg)
{
    if (cfg.localKind == LocalKind::CbpwLoop)
        return std::make_unique<LoopPredictor>(cfg.loop);
    return std::make_unique<LocalTwoLevelPredictor>(cfg.twoLevel);
}

std::unique_ptr<RepairScheme>
makeRepairScheme(const RepairConfig &cfg)
{
    auto lp = makeLocalPredictor(cfg);
    switch (cfg.kind) {
      case RepairKind::Perfect:
        return std::make_unique<PerfectRepairScheme>(
            std::move(lp), makeLocalPredictor(cfg), cfg);
      case RepairKind::NoRepair:
        return std::make_unique<NoRepairScheme>(std::move(lp), cfg);
      case RepairKind::RetireUpdate:
        return std::make_unique<RetireUpdateScheme>(std::move(lp), cfg);
      case RepairKind::BackwardWalk:
        return std::make_unique<BackwardWalkScheme>(std::move(lp), cfg);
      case RepairKind::Snapshot:
        return std::make_unique<SnapshotScheme>(std::move(lp), cfg);
      case RepairKind::ForwardWalk:
        return std::make_unique<ForwardWalkScheme>(std::move(lp), cfg);
      case RepairKind::LimitedPc:
        return std::make_unique<LimitedPcScheme>(std::move(lp), cfg);
      case RepairKind::FutureFile:
        return std::make_unique<FutureFileScheme>(std::move(lp), cfg);
      case RepairKind::MultiStage: {
        // Two half-size tables; the second one optionally shares the
        // first's PT (only meaningful for the CBPw-Loop design).
        lbp_assert(cfg.localKind == LocalKind::CbpwLoop);
        LoopConfig half = cfg.loop;
        half.bhtEntries = std::max(cfg.loop.bhtWays,
                                   cfg.loop.bhtEntries / 2);
        half.ptEntries = std::max(cfg.loop.ptWays,
                                  cfg.loop.ptEntries / 2);
        auto defer = std::make_unique<LoopPredictor>(half);
        std::unique_ptr<LocalPredictor> bht_tage;
        const bool shared_pt = !cfg.msSplitPt;
        if (shared_pt) {
            bht_tage =
                std::make_unique<LoopPredictor>(half, &defer->pt());
        } else {
            bht_tage = std::make_unique<LoopPredictor>(half);
        }
        return std::make_unique<MultiStageScheme>(
            std::move(defer), std::move(bht_tage), shared_pt, cfg);
      }
    }
    lbp_panic("unknown repair kind");
}

} // namespace lbp
