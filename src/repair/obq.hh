/**
 * @file
 * The Outstanding Branch Queue (OBQ): the history file that backs the
 * walk-based repair schemes (sections 2.6 and 3.1).
 *
 * A circular buffer of (PC, pre-update BHT state) records, one per
 * checkpointed prediction, appended at the tail and drained from the
 * head as branches retire. On a misprediction the scheme walks the
 * entries between the mispredicting branch and the tail — backwards
 * (youngest first, Skadron-style) or forwards (mispredict first, the
 * paper's technique) — to restore the BHT.
 *
 * Entry ids are monotonic positions; id -> slot is id % capacity, which
 * makes rollback (squash of younger entries) and retirement eviction a
 * matter of moving the head/tail cursors.
 *
 * The coalescing optimization of section 3.1 merges consecutive
 * same-PC checkpoints: the first and last instance keep separate
 * entries; intermediate instances share the last entry's id and rely on
 * the state carried with the instruction for self-repair.
 */

#ifndef LBP_REPAIR_OBQ_HH
#define LBP_REPAIR_OBQ_HH

#include <cstdint>
#include <vector>

#include "bpu/predictor.hh"
#include "common/types.hh"

namespace lbp {

class Obq
{
  public:
    struct Entry
    {
        Addr pc = 0;
        LocalState preState = 0;
        InstSeq firstSeq = invalidSeq;  ///< oldest instruction sharing it
        InstSeq lastSeq = invalidSeq;   ///< youngest (== first unless merged)
    };

    explicit Obq(unsigned capacity, bool coalesce);

    /**
     * Checkpoint a prediction. Returns the assigned entry id, or
     * invalidId when the queue is full (the paper's overflow case: the
     * PC goes unprotected). @p merged reports id-sharing via coalescing.
     */
    std::uint64_t push(Addr pc, LocalState pre_state, InstSeq seq,
                       bool *merged);

    /** Entry lookup by id; id must be live (head <= id < tail). */
    const Entry &at(std::uint64_t id) const;

    /**
     * Squash entries belonging to instructions younger than @p seq.
     * A surviving coalesced tail entry that had younger merged
     * instances is trimmed back to @p survivor_state / @p seq when
     * those instances are squashed.
     */
    void squashYoungerThan(InstSeq seq, Addr survivor_pc,
                           LocalState survivor_state);

    /** Retirement: evict entries wholly older than the retiring branch. */
    void retireUpTo(std::uint64_t id, InstSeq seq);

    std::uint64_t head() const { return head_; }
    std::uint64_t tail() const { return tail_; }
    unsigned size() const { return static_cast<unsigned>(tail_ - head_); }
    unsigned capacity() const { return capacity_; }
    bool full() const { return size() == capacity_; }

    /** Lifetime counters for stats. */
    std::uint64_t overflowCount() const { return overflows_; }
    std::uint64_t mergeCount() const { return merges_; }

    /** Storage: 64-bit PC + 11-bit state + valid, per the paper. */
    double
    storageKB() const
    {
        return capacity_ * 76.0 / 8192.0;
    }

  private:
    Entry &slot(std::uint64_t id) { return ring_[id % capacity_]; }
    const Entry &slot(std::uint64_t id) const
    {
        return ring_[id % capacity_];
    }

    unsigned capacity_;
    bool coalesce_;
    std::vector<Entry> ring_;
    std::uint64_t head_ = 0;
    std::uint64_t tail_ = 0;
    std::uint64_t overflows_ = 0;
    std::uint64_t merges_ = 0;
};

} // namespace lbp

#endif // LBP_REPAIR_OBQ_HH
