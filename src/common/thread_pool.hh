/**
 * @file
 * A small fixed-size thread pool for fanning independent simulations
 * across cores.
 *
 * Design points, in order of importance:
 *  - Determinism: the pool never decides *what* work produces — only
 *    when it runs. parallelFor() hands out indices through a shared
 *    atomic counter (chunk-of-one work stealing), so scheduling order
 *    varies run to run but each index's work is independent and lands
 *    in its own slot; callers get bit-identical results regardless of
 *    worker count.
 *  - Exception safety: the first exception thrown by any task is
 *    captured and rethrown from wait() (and hence parallelFor()) on
 *    the calling thread; later exceptions are dropped.
 *  - Accountability: per-worker busy time is tracked so the harness
 *    can report utilization alongside wall-clock throughput.
 *
 * This file (and thread_pool.cc) is the only place in src/ allowed to
 * spawn threads — tools/lbp_lint.py's no-raw-thread rule enforces it.
 * Everything else goes through ThreadPool so TSan coverage and
 * shutdown behaviour stay centralized.
 */

#ifndef LBP_COMMON_THREAD_POOL_HH
#define LBP_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lbp {

/**
 * Resolve a worker count: @p requested if non-zero, else the
 * REPRO_JOBS environment variable, else hardware concurrency
 * (minimum 1).
 */
unsigned resolveJobs(unsigned requested);

/** Fixed-size worker pool; see the file comment for the determinism
 *  and exception-propagation contract. */
class ThreadPool
{
  public:
    /** Spawn @p workers threads (clamped to at least 1). */
    explicit ThreadPool(unsigned workers);

    /** Drains every pending task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads actually spawned. */
    unsigned
    workerCount() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /** Enqueue one task. Not callable from inside a task. */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished; rethrows the
     * first task exception (then clears it, so the pool is reusable).
     */
    void wait();

    /**
     * Run body(0..n-1) across the workers and block until done.
     * Indices are claimed dynamically (one at a time) so uneven work
     * self-balances. Rethrows the first body exception.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /** Cumulative busy seconds per worker. Call only while idle. */
    std::vector<double> busySeconds() const;

    /**
     * Index of the pool worker executing the caller (0-based), or -1
     * when called off-pool (e.g. from the main thread). Lets tasks
     * attribute their output — the sweep event log records which
     * worker simulated each cell — without threading an id through
     * every callback.
     */
    static int currentIndex();

  private:
    void workerLoop(unsigned idx);

    std::vector<std::thread> threads_;
    std::vector<double> busy_;  ///< guarded by mu_
    mutable std::mutex mu_;
    std::condition_variable cvTask_;
    std::condition_variable cvIdle_;
    std::deque<std::function<void()>> queue_;
    std::exception_ptr firstError_;
    unsigned active_ = 0;
    bool stop_ = false;
};

} // namespace lbp

#endif // LBP_COMMON_THREAD_POOL_HH
