/**
 * @file
 * Throughput telemetry for the experiment harness: a wall-clock
 * stopwatch, per-suite throughput records, and a process-wide registry
 * the benches and lbpsim dump as a machine-readable JSON file.
 *
 * This file (and telemetry.cc) is the only place in src/ allowed to
 * touch wall-clock time — tools/lbp_lint.py exempts it from the
 * no-raw-time rule. Telemetry is observational only: nothing simulated
 * may ever depend on a Stopwatch reading, or run-to-run determinism
 * dies. Keep clock reads out of every other translation unit.
 */

#ifndef LBP_COMMON_TELEMETRY_HH
#define LBP_COMMON_TELEMETRY_HH

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

namespace lbp {

/** Monotonic wall-clock stopwatch (observational use only). */
class Stopwatch
{
  public:
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}

    void reset() { start_ = std::chrono::steady_clock::now(); }

    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** Throughput record for one suite execution (or memoization hit). */
struct SuiteTelemetry
{
    std::string label;            ///< short configuration description
    std::size_t workloads = 0;
    std::uint64_t simInstrs = 0;  ///< true-path instructions simulated
    double wallSeconds = 0.0;
    unsigned jobs = 1;            ///< workers the suite actually used
    bool memoHit = false;         ///< served from the suite cache
    /** Busy seconds per worker (empty for serial / memoized runs). */
    std::vector<double> workerBusySeconds;

    /** Millions of simulated instructions per wall-clock second. */
    double minstrPerSec() const;

    /** Mean fraction of wall time the workers spent simulating. */
    double avgWorkerUtilization() const;
};

/**
 * Process-wide collection of suite telemetry. runSuite() records into
 * it; benches print a summary and dump it as BENCH_throughput.json so
 * the repo accumulates a performance trajectory in CI artifacts.
 */
class TelemetryRegistry
{
  public:
    /** The process-wide registry instance. */
    static TelemetryRegistry &process();

    void record(SuiteTelemetry t);
    std::vector<SuiteTelemetry> snapshot() const;
    void clear();

    /** Aggregate over all records (memo hits contribute no instrs). */
    struct Totals
    {
        std::size_t suites = 0;
        std::size_t memoHits = 0;
        std::uint64_t simInstrs = 0;
        double wallSeconds = 0.0;
    };
    Totals totals() const;

    /** Machine-readable dump, one object per recorded suite. */
    std::string toJson(const std::string &bench) const;

    /** Write toJson() to @p path; false (with a warning) on I/O error. */
    bool writeJson(const std::string &path,
                   const std::string &bench) const;

    /** Human-readable per-suite throughput table. */
    void printSummary(std::FILE *out) const;

  private:
    mutable std::mutex mu_;
    std::vector<SuiteTelemetry> records_;
};

/** REPRO_THROUGHPUT_JSON env override, or "BENCH_throughput.json". */
std::string throughputJsonPath();

} // namespace lbp

#endif // LBP_COMMON_TELEMETRY_HH
