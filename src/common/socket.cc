#include "common/socket.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace lbp {

namespace {

/** Resolve a numeric IPv4 address or "localhost" into @p addr. */
bool
resolveHost(const std::string &host, std::uint16_t port,
            sockaddr_in &addr, std::string &error)
{
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    const std::string numeric =
        host == "localhost" || host.empty() ? "127.0.0.1" : host;
    if (inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
        error = "bad host '" + host +
                "' (numeric IPv4 or localhost only)";
        return false;
    }
    return true;
}

void
setNoDelay(int fd)
{
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

} // namespace

TcpConn::~TcpConn()
{
    closeConn();
}

TcpConn::TcpConn(TcpConn &&other) noexcept
    : fd_(other.fd_), buf_(std::move(other.buf_))
{
    other.fd_ = -1;
}

TcpConn &
TcpConn::operator=(TcpConn &&other) noexcept
{
    if (this != &other) {
        closeConn();
        fd_ = other.fd_;
        buf_ = std::move(other.buf_);
        other.fd_ = -1;
    }
    return *this;
}

void
TcpConn::closeConn()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
TcpConn::sendAll(std::string_view data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd_, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
TcpConn::nextLine(std::string &line)
{
    const std::size_t nl = buf_.find('\n');
    if (nl == std::string::npos)
        return false;
    line.assign(buf_, 0, nl);
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    buf_.erase(0, nl + 1);
    return true;
}

int
TcpConn::readLine(std::string &line, int timeoutMs)
{
    while (true) {
        if (nextLine(line))
            return 1;
        pollfd pfd{fd_, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, timeoutMs);
        if (rc == 0)
            return 0;
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n == 0)
            return -1;  // EOF; any partial line is discarded
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK)
                continue;
            return -1;
        }
        buf_.append(chunk, static_cast<std::size_t>(n));
    }
}

int
TcpConn::fillAvailable()
{
    bool got = false;
    while (true) {
        char chunk[4096];
        const ssize_t n =
            ::recv(fd_, chunk, sizeof(chunk), MSG_DONTWAIT);
        if (n > 0) {
            buf_.append(chunk, static_cast<std::size_t>(n));
            got = true;
            continue;
        }
        if (n == 0)
            return -1;  // orderly EOF
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return got ? 1 : 0;
        if (errno == EINTR)
            continue;
        return -1;
    }
}

TcpListener::~TcpListener()
{
    closeListener();
}

void
TcpListener::closeListener()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
TcpListener::listenOn(const std::string &host, std::uint16_t port,
                      std::string &error)
{
    sockaddr_in addr;
    if (!resolveHost(host, port, addr, error))
        return false;
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    int one = 1;
    setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        error = std::string("bind: ") + std::strerror(errno);
        closeListener();
        return false;
    }
    if (::listen(fd_, 64) != 0) {
        error = std::string("listen: ") + std::strerror(errno);
        closeListener();
        return false;
    }
    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (getsockname(fd_, reinterpret_cast<sockaddr *>(&bound),
                    &len) == 0)
        port_ = ntohs(bound.sin_port);
    else
        port_ = port;
    return true;
}

TcpConn
TcpListener::acceptConn()
{
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0)
        return TcpConn();
    setNoDelay(fd);
    return TcpConn(fd);
}

TcpConn
tcpConnect(const std::string &host, std::uint16_t port,
           std::string &error)
{
    sockaddr_in addr;
    if (!resolveHost(host, port, addr, error))
        return TcpConn();
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return TcpConn();
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        error = std::string("connect: ") + std::strerror(errno);
        ::close(fd);
        return TcpConn();
    }
    setNoDelay(fd);
    return TcpConn(fd);
}

} // namespace lbp
