#include "common/stats.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace lbp {

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        lbp_assert(v > 0.0);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

std::string
fmtDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
fmtPercent(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

TextTable::TextTable(std::vector<std::string> header)
{
    rows_.push_back(std::move(header));
}

void
TextTable::addRow(std::vector<std::string> row)
{
    lbp_assert(row.size() == rows_.front().size());
    rows_.push_back(std::move(row));
}

std::string
TextTable::render() const
{
    const std::size_t cols = rows_.front().size();
    std::vector<std::size_t> widths(cols, 0);
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < cols; ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::string out;
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            const std::string &cell = rows_[r][c];
            out += cell;
            if (c + 1 < cols)
                out.append(widths[c] - cell.size() + 2, ' ');
        }
        out += '\n';
        if (r == 0) {
            std::size_t total = 0;
            for (std::size_t c = 0; c < cols; ++c)
                total += widths[c] + (c + 1 < cols ? 2 : 0);
            out.append(total, '-');
            out += '\n';
        }
    }
    return out;
}

} // namespace lbp
