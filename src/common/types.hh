/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef LBP_COMMON_TYPES_HH
#define LBP_COMMON_TYPES_HH

#include <cstdint>

namespace lbp {

/** Byte address in the simulated address space. */
using Addr = std::uint64_t;

/** Absolute cycle count since simulation start. */
using Cycle = std::uint64_t;

/** Monotonic dynamic-instruction sequence number (program order). */
using InstSeq = std::uint64_t;

/** Sentinel for "no instruction". */
constexpr InstSeq invalidSeq = ~static_cast<InstSeq>(0);

/** Sentinel for "no address". */
constexpr Addr invalidAddr = ~static_cast<Addr>(0);

/** Sentinel for "no id" (OBQ/snapshot/payload slots). */
constexpr std::uint64_t invalidId = ~static_cast<std::uint64_t>(0);

/** Broad instruction classes used by the execution latency model. */
enum class InstClass : std::uint8_t {
    Alu,        ///< single-cycle integer op
    Mul,        ///< integer multiply / slow ALU
    FpOp,       ///< floating-point arithmetic
    Load,       ///< memory read (latency from the cache hierarchy)
    Store,      ///< memory write
    CondBranch, ///< conditional direct branch
    Jump,       ///< unconditional direct branch
    NumClasses
};

/** True when the class is any kind of control-flow instruction. */
inline bool
isControl(InstClass c)
{
    return c == InstClass::CondBranch || c == InstClass::Jump;
}

/** Direction of a conditional branch. */
enum class Dir : std::uint8_t { NotTaken = 0, Taken = 1 };

inline Dir
dirOf(bool taken)
{
    return taken ? Dir::Taken : Dir::NotTaken;
}

} // namespace lbp

#endif // LBP_COMMON_TYPES_HH
