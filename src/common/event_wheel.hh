/**
 * @file
 * Calendar-wheel event queue for branch-resolution events.
 *
 * Replaces the core's std::priority_queue pendingResolve_: almost every
 * resolution lands within a couple hundred cycles, so O(log n) heap
 * sifting (and its vector churn) is overkill. Events within the wheel
 * window go straight into their slot; the rare far-future ones (deep
 * dependence chains can push doneCycle thousands of cycles out) sit in
 * an overflow list sorted descending by (time, value) and are refiled
 * as the window advances.
 *
 * Ordering contract, needed for bit-identical replacement of the heap:
 * events fire in ascending (time, insertion-order) — for the core,
 * same-cycle events were inserted in ascending sequence-number order at
 * alloc, which is exactly the (time, seq) order the old
 * priority_queue<greater<>> popped. The overflow list preserves this
 * too: a refiled event always entered the wheel slot before any
 * direct-scheduled event of the same time could (its schedule() call
 * preceded the window reaching that time).
 */

#ifndef LBP_COMMON_EVENT_WHEEL_HH
#define LBP_COMMON_EVENT_WHEEL_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace lbp {

/** Calendar-wheel event queue; see the file comment for the ordering
 *  contract that makes it a bit-identical heap replacement. */
class EventWheel
{
  public:
    using Event = std::pair<Cycle, std::uint64_t>;  ///< (time, value)

    /** Wheel with 2^log2_slots one-cycle slots. */
    explicit EventWheel(unsigned log2_slots)
        : slots_(std::size_t{1} << log2_slots),
          mask_((std::size_t{1} << log2_slots) - 1)
    {
    }

    /** Pending events, wheel-resident plus far-future overflow. */
    std::size_t size() const { return count_; }
    /** True when nothing is scheduled. */
    bool empty() const { return count_ == 0; }
    /** Number of one-cycle wheel slots (the direct-file window). */
    std::size_t slotCount() const { return mask_ + 1; }

    /** Schedule @p value at @p t (must be > @p now). */
    void schedule(Cycle t, std::uint64_t value, Cycle now)
    {
        lbp_assert(t > now);
        ++count_;
        if (t - now < slotCount()) {
            slots_[t & mask_].push_back({t, value});
            return;
        }
        // Far-future: keep far_ sorted descending so the earliest event
        // is at the back (O(1) refile peek/pop).
        const Event ev{t, value};
        auto it = std::upper_bound(
            far_.begin(), far_.end(), ev,
            [](const Event &a, const Event &b) { return a > b; });
        far_.insert(it, ev);
    }

    /**
     * Pop one event due at or before @p now (into @p value). Call in a
     * loop each cycle; returns false when nothing further is due.
     * Events for the same cycle come back in insertion order.
     */
    bool popDue(Cycle now, std::uint64_t &value)
    {
        refile(now);
        auto &slot = slots_[now & mask_];
        for (auto it = slot.begin(); it != slot.end(); ++it) {
            if (it->first <= now) {
                value = it->second;
                slot.erase(it);
                --count_;
                return true;
            }
        }
        return false;
    }

    /**
     * Earliest pending event time in (now, limit); returns @p limit if
     * none lies below it. Used by the idle fast-forward to bound a
     * cycle jump.
     */
    Cycle nextEventTime(Cycle now, Cycle limit) const
    {
        if (count_ == 0)
            return limit;
        Cycle best = limit;
        if (!far_.empty())
            best = std::min(best, far_.back().first);
        // All wheel-resident events have times in (now, now+slots).
        const Cycle scan_end =
            std::min(best, now + static_cast<Cycle>(slotCount()) + 1);
        for (Cycle t = now + 1; t < scan_end; ++t) {
            const auto &slot = slots_[t & mask_];
            if (slot.empty())
                continue;
            for (const Event &e : slot)
                if (e.first == t)
                    return t;
        }
        return best;
    }

  private:
    void refile(Cycle now)
    {
        while (!far_.empty() &&
               far_.back().first - now < slotCount()) {
            const Event ev = far_.back();
            far_.pop_back();
            slots_[ev.first & mask_].push_back(ev);
        }
    }

    std::vector<std::vector<Event>> slots_;
    std::vector<Event> far_;
    std::size_t mask_;
    std::size_t count_ = 0;
};

} // namespace lbp

#endif // LBP_COMMON_EVENT_WHEEL_HH
