#include "common/jsonl.hh"

#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

namespace lbp {

void
jsonEscape(std::ostream &os, std::string_view s)
{
    os << '"';
    for (const char c : s) {
        const unsigned char u = static_cast<unsigned char>(c);
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\b':
            os << "\\b";
            break;
          case '\f':
            os << "\\f";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\r':
            os << "\\r";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (u < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", u);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

std::string
jsonQuote(std::string_view s)
{
    std::ostringstream os;
    jsonEscape(os, s);
    return os.str();
}

std::string
jsonNumber(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/**
 * Recursive-descent reader over a string_view cursor. Depth is bounded
 * (the protocol nests at most frame -> data -> value) to keep hostile
 * input from exhausting the stack.
 */
class JsonParser
{
  public:
    JsonParser(std::string_view text, std::string *error)
        : text_(text), error_(error)
    {}

    bool
    run(JsonValue &out)
    {
        if (!value(out, 0))
            return false;
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing characters after JSON value");
        return true;
    }

  private:
    static constexpr int maxDepth = 32;

    bool
    fail(const std::string &msg)
    {
        if (error_ && error_->empty())
            *error_ = msg;
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    literal(const char *word, std::size_t n)
    {
        if (text_.compare(pos_, n, word) != 0)
            return fail(std::string("bad literal, expected ") + word);
        pos_ += n;
        return true;
    }

    bool
    hex4(unsigned &out)
    {
        if (pos_ + 4 > text_.size())
            return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_++];
            unsigned d = 0;
            if (c >= '0' && c <= '9')
                d = static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                d = static_cast<unsigned>(c - 'a') + 10;
            else if (c >= 'A' && c <= 'F')
                d = static_cast<unsigned>(c - 'A') + 10;
            else
                return fail("bad hex digit in \\u escape");
            out = out * 16 + d;
        }
        return true;
    }

    static void
    appendUtf8(std::string &s, unsigned cp)
    {
        if (cp < 0x80) {
            s += static_cast<char>(cp);
        } else if (cp < 0x800) {
            s += static_cast<char>(0xc0 | (cp >> 6));
            s += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            s += static_cast<char>(0xe0 | (cp >> 12));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            s += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            s += static_cast<char>(0xf0 | (cp >> 18));
            s += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            s += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    bool
    string(std::string &out)
    {
        ++pos_;  // opening quote
        while (true) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("truncated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"':
              case '\\':
              case '/':
                out += e;
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                unsigned cp = 0;
                if (!hex4(cp))
                    return false;
                if (cp >= 0xd800 && cp <= 0xdbff) {
                    // High surrogate: a \uXXXX low surrogate follows.
                    if (text_.compare(pos_, 2, "\\u") != 0)
                        return fail("unpaired high surrogate");
                    pos_ += 2;
                    unsigned lo = 0;
                    if (!hex4(lo))
                        return false;
                    if (lo < 0xdc00 || lo > 0xdfff)
                        return fail("bad low surrogate");
                    cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                } else if (cp >= 0xdc00 && cp <= 0xdfff) {
                    return fail("unpaired low surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                return fail("unknown escape character");
            }
        }
    }

    bool
    number(double &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if ((c >= '0' && c <= '9') || c == '.' || c == 'e' ||
                c == 'E' || c == '+' || c == '-') {
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start)
            return fail("bad number");
        const std::string tok(text_.substr(start, pos_ - start));
        char *end = nullptr;
        out = std::strtod(tok.c_str(), &end);
        if (!end || *end != '\0')
            return fail("bad number");
        return true;
    }

    bool
    value(JsonValue &out, int depth)
    {
        if (depth > maxDepth)
            return fail("nesting too deep");
        skipSpace();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        switch (c) {
          case '{': {
            ++pos_;
            out.kind_ = JsonValue::Kind::Object;
            skipSpace();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            while (true) {
                skipSpace();
                if (pos_ >= text_.size() || text_[pos_] != '"')
                    return fail("expected object key");
                std::string key;
                if (!string(key))
                    return false;
                skipSpace();
                if (pos_ >= text_.size() || text_[pos_] != ':')
                    return fail("expected ':' after object key");
                ++pos_;
                JsonValue v;
                if (!value(v, depth + 1))
                    return false;
                out.members_.emplace_back(std::move(key),
                                          std::move(v));
                skipSpace();
                if (pos_ >= text_.size())
                    return fail("unterminated object");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or '}' in object");
            }
          }
          case '[': {
            ++pos_;
            out.kind_ = JsonValue::Kind::Array;
            skipSpace();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            while (true) {
                JsonValue v;
                if (!value(v, depth + 1))
                    return false;
                out.items_.push_back(std::move(v));
                skipSpace();
                if (pos_ >= text_.size())
                    return fail("unterminated array");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or ']' in array");
            }
          }
          case '"':
            out.kind_ = JsonValue::Kind::String;
            return string(out.str_);
          case 't':
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = true;
            return literal("true", 4);
          case 'f':
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = false;
            return literal("false", 5);
          case 'n':
            out.kind_ = JsonValue::Kind::Null;
            return literal("null", 4);
          default:
            out.kind_ = JsonValue::Kind::Number;
            return number(out.num_);
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    std::string *error_;
};

const JsonValue *
JsonValue::member(std::string_view key) const
{
    for (const auto &kv : members_)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

bool
JsonValue::parse(std::string_view text, JsonValue &out,
                 std::string *error)
{
    out = JsonValue();
    if (error)
        error->clear();
    JsonParser p(text, error);
    return p.run(out);
}

} // namespace lbp
