/**
 * @file
 * Saturating counters: the workhorse state element of branch predictors.
 */

#ifndef LBP_COMMON_SAT_COUNTER_HH
#define LBP_COMMON_SAT_COUNTER_HH

#include <cstdint>

#include "common/logging.hh"

namespace lbp {

/**
 * An unsigned saturating counter of a runtime-configurable bit width.
 *
 * Prediction convention: values in the upper half of the range mean
 * "taken". A width of 0 is invalid.
 */
class SatCounter
{
  public:
    explicit SatCounter(unsigned bits = 2, std::uint32_t initial = 0)
        : bits_(bits), value_(initial)
    {
        lbp_assert(bits >= 1 && bits <= 16);
        lbp_assert(initial <= max());
    }

    std::uint32_t max() const { return (1u << bits_) - 1; }
    std::uint32_t value() const { return value_; }
    unsigned bits() const { return bits_; }

    /** Move toward saturation at max(). */
    void
    increment()
    {
        if (value_ < max())
            ++value_;
    }

    /** Move toward saturation at zero. */
    void
    decrement()
    {
        if (value_ > 0)
            --value_;
    }

    /** Update toward the given direction. */
    void
    update(bool taken)
    {
        if (taken)
            increment();
        else
            decrement();
    }

    /** Prediction: upper half of the range reads as taken. */
    bool taken() const { return value_ >= (1u << (bits_ - 1)); }

    /** True when the counter is at either saturation point. */
    bool saturated() const { return value_ == 0 || value_ == max(); }

    /** Force a specific value (used by repair and snapshot restore). */
    void
    set(std::uint32_t v)
    {
        lbp_assert(v <= max());
        value_ = v;
    }

    /** Reset to the weakly-not-taken midpoint minus one. */
    void resetWeak() { value_ = (1u << (bits_ - 1)) - 1; }

  private:
    unsigned bits_;
    std::uint32_t value_;
};

/**
 * A signed saturating counter in [-2^(bits-1), 2^(bits-1) - 1].
 *
 * Used for TAGE prediction counters and the WITHLOOP chooser: >= 0 reads
 * as taken / "trust the adjunct predictor".
 */
class SignedSatCounter
{
  public:
    explicit SignedSatCounter(unsigned bits = 3, std::int32_t initial = 0)
        : bits_(bits), value_(initial)
    {
        lbp_assert(bits >= 2 && bits <= 16);
        lbp_assert(initial >= min() && initial <= max());
    }

    std::int32_t min() const { return -(1 << (bits_ - 1)); }
    std::int32_t max() const { return (1 << (bits_ - 1)) - 1; }
    std::int32_t value() const { return value_; }
    unsigned bits() const { return bits_; }

    void
    update(bool positive)
    {
        if (positive) {
            if (value_ < max())
                ++value_;
        } else {
            if (value_ > min())
                --value_;
        }
    }

    /** Prediction convention: non-negative means taken. */
    bool taken() const { return value_ >= 0; }

    /** Confidence proxy: distance from the decision boundary. */
    std::uint32_t
    magnitude() const
    {
        return value_ >= 0 ? static_cast<std::uint32_t>(value_)
                           : static_cast<std::uint32_t>(-(value_ + 1));
    }

    /** True when at full positive or negative saturation. */
    bool saturated() const { return value_ == min() || value_ == max(); }

    void
    set(std::int32_t v)
    {
        lbp_assert(v >= min() && v <= max());
        value_ = v;
    }

  private:
    unsigned bits_;
    std::int32_t value_;
};

} // namespace lbp

#endif // LBP_COMMON_SAT_COUNTER_HH
