/**
 * @file
 * Status and error reporting helpers, following the gem5 conventions:
 * panic() for internal invariant violations (simulator bugs), fatal() for
 * user/configuration errors, warn()/inform() for non-fatal notices.
 */

#ifndef LBP_COMMON_LOGGING_HH
#define LBP_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>

namespace lbp {

[[noreturn]] inline void
panicImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg, file, line);
    std::abort();
}

[[noreturn]] inline void
fatalImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg, file, line);
    std::exit(1);
}

inline void
warnImpl(const char *msg)
{
    std::fprintf(stderr, "warn: %s\n", msg);
}

inline void
informImpl(const char *msg)
{
    std::fprintf(stdout, "info: %s\n", msg);
}

} // namespace lbp

/** Abort on a condition that indicates a simulator bug. */
#define lbp_panic(msg) ::lbp::panicImpl(__FILE__, __LINE__, (msg))

/** Exit on a condition that indicates a user/configuration error. */
#define lbp_fatal(msg) ::lbp::fatalImpl(__FILE__, __LINE__, (msg))

/** Assert a simulator invariant; compiled in all build types. */
#define lbp_assert(cond)                                                     \
    do {                                                                     \
        if (!(cond))                                                         \
            ::lbp::panicImpl(__FILE__, __LINE__,                             \
                             "assertion failed: " #cond);                    \
    } while (0)

#endif // LBP_COMMON_LOGGING_HH
