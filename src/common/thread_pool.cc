#include "common/thread_pool.hh"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "common/telemetry.hh"

namespace lbp {

unsigned
resolveJobs(unsigned requested)
{
    if (requested)
        return requested;
    if (const char *s = std::getenv("REPRO_JOBS")) {
        const unsigned long v = std::strtoul(s, nullptr, 10);
        if (v)
            return static_cast<unsigned>(std::min(v, 1024ul));
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned workers)
{
    const unsigned n = std::max(1u, workers);
    busy_.assign(n, 0.0);
    threads_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cvTask_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        queue_.push_back(std::move(task));
    }
    cvTask_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lk(mu_);
    cvIdle_.wait(lk, [&] { return queue_.empty() && active_ == 0; });
    if (firstError_) {
        std::exception_ptr err = firstError_;
        firstError_ = nullptr;
        lk.unlock();
        std::rethrow_exception(err);
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    // Each lane pulls the next unclaimed index until none remain;
    // capturing body by reference is safe because wait() below does
    // not return before every lane has finished.
    const auto next = std::make_shared<std::atomic<std::size_t>>(0);
    const std::size_t lanes =
        std::min<std::size_t>(workerCount(), n);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
        submit([next, n, &body] {
            for (std::size_t i = next->fetch_add(1); i < n;
                 i = next->fetch_add(1))
                body(i);
        });
    }
    wait();
}

std::vector<double>
ThreadPool::busySeconds() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return busy_;
}

namespace {
// -1 off-pool; workers set their index for the thread's lifetime.
thread_local int tlsWorkerIndex = -1;
} // namespace

int
ThreadPool::currentIndex()
{
    return tlsWorkerIndex;
}

void
ThreadPool::workerLoop(unsigned idx)
{
    tlsWorkerIndex = static_cast<int>(idx);
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        cvTask_.wait(lk, [&] { return stop_ || !queue_.empty(); });
        if (queue_.empty())
            return;  // stop_ set and nothing left to drain
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
        lk.unlock();

        Stopwatch sw;
        std::exception_ptr err;
        try {
            task();
        } catch (...) {
            err = std::current_exception();
        }
        const double elapsed = sw.seconds();

        lk.lock();
        busy_[idx] += elapsed;
        if (err && !firstError_)
            firstError_ = err;
        --active_;
        if (queue_.empty() && active_ == 0)
            cvIdle_.notify_all();
    }
}

} // namespace lbp
