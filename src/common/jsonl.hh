/**
 * @file
 * Line-delimited JSON primitives shared by every JSON-emitting surface.
 *
 * The sweep event log, the manifest writer and the metrics registry
 * each grew a private string escaper that only handled quotes and
 * backslashes — fine for metric names, fatally wrong for a wire
 * protocol that embeds whole CSV files (newlines!) inside one-line
 * frames. This header centralizes RFC 8259 string escaping, a
 * deterministic double renderer, and a small recursive-descent JSON
 * reader (JsonValue) sized for the lbp-serve-v1 protocol
 * (docs/SERVER.md): objects keep member order in a vector, so
 * iteration is deterministic and the unordered-iteration analyzer rule
 * never applies.
 */

#ifndef LBP_COMMON_JSONL_HH
#define LBP_COMMON_JSONL_HH

#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lbp {

/**
 * Write @p s to @p os as a JSON string literal: surrounding quotes,
 * with `"` `\` and every control character below 0x20 escaped (named
 * escapes for \b \f \n \r \t, \u00XX for the rest). A superset of the
 * escaping the sweep surfaces historically used — existing outputs
 * carry no control characters, so their bytes are unchanged.
 */
void jsonEscape(std::ostream &os, std::string_view s);

/** jsonEscape into a fresh string ("..." included). */
std::string jsonQuote(std::string_view s);

/**
 * Deterministic, lossless double rendering (%.17g round-trips IEEE
 * doubles). Every JSON surface that must emit identical bytes across
 * processes — warm vs cold sweeps, server vs local CSV — uses this.
 */
std::string jsonNumber(double v);

/**
 * One parsed JSON value. Objects preserve member order (first wins on
 * duplicate lookup), numbers are doubles (exact for the counters and
 * cell counts the protocol carries), strings are UTF-8 with \uXXXX
 * escapes decoded (surrogate pairs included). Accessors are total:
 * asking a value for the wrong kind returns the fallback, so message
 * handlers validate with kind() only where the distinction matters.
 */
class JsonValue
{
  public:
    /** JSON type tag. */
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Object,
        Array,
    };

    /** Type of this value. */
    Kind kind() const { return kind_; }

    /** Boolean payload; @p dflt unless kind() == Bool. */
    bool boolean(bool dflt = false) const
    {
        return kind_ == Kind::Bool ? bool_ : dflt;
    }

    /** Numeric payload; @p dflt unless kind() == Number. */
    double number(double dflt = 0.0) const
    {
        return kind_ == Kind::Number ? num_ : dflt;
    }

    /** String payload; empty unless kind() == String. */
    const std::string &str() const { return str_; }

    /** Object members in document order (empty for non-objects). */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return members_;
    }

    /** Array elements in document order (empty for non-arrays). */
    const std::vector<JsonValue> &items() const { return items_; }

    /** First member named @p key, or null when absent / not an object. */
    const JsonValue *member(std::string_view key) const;

    /**
     * Parse one JSON document from @p text (surrounding whitespace
     * allowed, trailing garbage rejected). On failure returns false
     * and, when @p error is non-null, describes the first problem.
     */
    static bool parse(std::string_view text, JsonValue &out,
                      std::string *error = nullptr);

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<std::pair<std::string, JsonValue>> members_;
    std::vector<JsonValue> items_;
};

} // namespace lbp

#endif // LBP_COMMON_JSONL_HH
