/**
 * @file
 * A generic set-associative table with true-LRU replacement.
 *
 * Used for the loop predictor's BHT and PT, the BTB, and the cache tag
 * arrays. The payload type is supplied by the user; valid bit, tag and
 * LRU ordering are managed here.
 */

#ifndef LBP_COMMON_SET_ASSOC_HH
#define LBP_COMMON_SET_ASSOC_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace lbp {

/** True when x is a power of two (and non-zero). */
inline bool
isPowerOf2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** floor(log2(x)) for x > 0. */
inline unsigned
floorLog2(std::uint64_t x)
{
    lbp_assert(x > 0);
    unsigned l = 0;
    while (x >>= 1)
        ++l;
    return l;
}

/**
 * Set-associative table of user payloads.
 *
 * @tparam PayloadT  Default-constructible per-entry payload.
 */
template <typename PayloadT>
class SetAssocTable
{
  public:
    struct Way
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint32_t lruStamp = 0;
        PayloadT data{};
    };

    SetAssocTable(unsigned num_sets, unsigned num_ways)
        : numSets_(num_sets), numWays_(num_ways), stamp_(0),
          ways_(static_cast<std::size_t>(num_sets) * num_ways)
    {
        lbp_assert(num_sets >= 1 && num_ways >= 1);
        lbp_assert(isPowerOf2(num_sets));
    }

    unsigned numSets() const { return numSets_; }
    unsigned numWays() const { return numWays_; }
    unsigned numEntries() const { return numSets_ * numWays_; }

    /** Compute the set index for a pre-hashed key. */
    unsigned
    setIndex(std::uint64_t key) const
    {
        return static_cast<unsigned>(key & (numSets_ - 1));
    }

    /** Tag bits for a pre-hashed key (the part above the index). */
    std::uint64_t tagOf(std::uint64_t key) const { return key >> setBits(); }

    /**
     * Look up a key. Returns the way or nullptr on miss.
     * Updates LRU on hit when @p touch is true.
     */
    Way *
    lookup(std::uint64_t key, bool touch = true)
    {
        const unsigned set = setIndex(key);
        const std::uint64_t tag = tagOf(key);
        for (unsigned w = 0; w < numWays_; ++w) {
            Way &way = at(set, w);
            if (way.valid && way.tag == tag) {
                if (touch)
                    way.lruStamp = ++stamp_;
                return &way;
            }
        }
        return nullptr;
    }

    const Way *
    lookup(std::uint64_t key) const
    {
        return const_cast<SetAssocTable *>(this)->lookup(key, false);
    }

    /**
     * Insert a key, evicting the LRU way of its set if needed.
     * The returned way has valid/tag set; payload is caller's to fill.
     * @param victimized set to true when a valid entry was evicted.
     */
    Way &
    insert(std::uint64_t key, bool *victimized = nullptr)
    {
        const unsigned set = setIndex(key);
        Way *victim = &at(set, 0);
        for (unsigned w = 0; w < numWays_; ++w) {
            Way &way = at(set, w);
            if (!way.valid) {
                victim = &way;
                break;
            }
            if (way.lruStamp < victim->lruStamp)
                victim = &way;
        }
        if (victimized)
            *victimized = victim->valid;
        victim->valid = true;
        victim->tag = tagOf(key);
        victim->lruStamp = ++stamp_;
        victim->data = PayloadT{};
        return *victim;
    }

    /** Invalidate a key if present. */
    void
    invalidate(std::uint64_t key)
    {
        if (Way *way = lookup(key, false))
            way->valid = false;
    }

    /** Invalidate every entry. */
    void
    invalidateAll()
    {
        for (auto &way : ways_)
            way.valid = false;
    }

    /** Raw access to way storage, for snapshot/restore and iteration. */
    std::vector<Way> &raw() { return ways_; }
    const std::vector<Way> &raw() const { return ways_; }

    /** Direct access to a (set, way) slot. */
    Way &
    at(unsigned set, unsigned way)
    {
        return ways_[static_cast<std::size_t>(set) * numWays_ + way];
    }

    const Way &
    at(unsigned set, unsigned way) const
    {
        return ways_[static_cast<std::size_t>(set) * numWays_ + way];
    }

    unsigned setBits() const { return floorLog2(numSets_); }

  private:
    unsigned numSets_;
    unsigned numWays_;
    std::uint32_t stamp_;
    std::vector<Way> ways_;
};

} // namespace lbp

#endif // LBP_COMMON_SET_ASSOC_HH
