/**
 * @file
 * A generic set-associative table with true-LRU replacement.
 *
 * Used for the loop predictor's BHT and PT, the BTB, and the cache tag
 * arrays. The payload type is supplied by the user; valid bit, tag and
 * LRU ordering are managed here.
 */

#ifndef LBP_COMMON_SET_ASSOC_HH
#define LBP_COMMON_SET_ASSOC_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace lbp {

/** True when x is a power of two (and non-zero). */
inline bool
isPowerOf2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** floor(log2(x)) for x > 0. */
inline unsigned
floorLog2(std::uint64_t x)
{
    lbp_assert(x > 0);
    unsigned l = 0;
    while (x >>= 1)
        ++l;
    return l;
}

/**
 * Set-associative table of user payloads.
 *
 * @tparam PayloadT  Default-constructible per-entry payload.
 */
template <typename PayloadT>
class SetAssocTable
{
  public:
    struct Way
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint32_t lruStamp = 0;
        PayloadT data{};
    };

    SetAssocTable(unsigned num_sets, unsigned num_ways)
        : numSets_(num_sets), numWays_(num_ways),
          setBits_(floorLog2(num_sets)), stamp_(0),
          ways_(static_cast<std::size_t>(num_sets) * num_ways)
    {
        lbp_assert(num_sets >= 1 && num_ways >= 1);
        lbp_assert(isPowerOf2(num_sets));
    }

    unsigned numSets() const { return numSets_; }
    unsigned numWays() const { return numWays_; }
    unsigned numEntries() const { return numSets_ * numWays_; }

    /** Compute the set index for a pre-hashed key. */
    unsigned
    setIndex(std::uint64_t key) const
    {
        return static_cast<unsigned>(key & (numSets_ - 1));
    }

    /** Tag bits for a pre-hashed key (the part above the index). */
    std::uint64_t tagOf(std::uint64_t key) const { return key >> setBits(); }

    /**
     * Look up a key. Returns the way or nullptr on miss.
     * Updates LRU on hit when @p touch is true.
     */
    Way *
    lookup(std::uint64_t key, bool touch = true)
    {
        const unsigned set = setIndex(key);
        const std::uint64_t tag = tagOf(key);
        for (unsigned w = 0; w < numWays_; ++w) {
            Way &way = at(set, w);
            if (way.valid && way.tag == tag) {
                if (touch)
                    way.lruStamp = ++stamp_;
                return &way;
            }
        }
        return nullptr;
    }

    const Way *
    lookup(std::uint64_t key) const
    {
        return const_cast<SetAssocTable *>(this)->lookup(key, false);
    }

    /**
     * Insert a key, evicting the LRU way of its set if needed.
     * The returned way has valid/tag set; payload is caller's to fill.
     * @param victimized set to true when a valid entry was evicted.
     */
    Way &
    insert(std::uint64_t key, bool *victimized = nullptr)
    {
        const unsigned set = setIndex(key);
        Way *victim = &at(set, 0);
        for (unsigned w = 0; w < numWays_; ++w) {
            Way &way = at(set, w);
            if (!way.valid) {
                victim = &way;
                break;
            }
            if (way.lruStamp < victim->lruStamp)
                victim = &way;
        }
        if (victimized)
            *victimized = victim->valid;
        victim->valid = true;
        victim->tag = tagOf(key);
        victim->lruStamp = ++stamp_;
        victim->data = PayloadT{};
        return *victim;
    }

    /** Invalidate a key if present. */
    void
    invalidate(std::uint64_t key)
    {
        if (Way *way = lookup(key, false))
            way->valid = false;
    }

    /** Invalidate every entry. */
    void
    invalidateAll()
    {
        for (auto &way : ways_)
            way.valid = false;
    }

    /** Raw access to way storage, for snapshot/restore and iteration. */
    std::vector<Way> &raw() { return ways_; }
    const std::vector<Way> &raw() const { return ways_; }

    /** Direct access to a (set, way) slot. */
    Way &
    at(unsigned set, unsigned way)
    {
        return ways_[static_cast<std::size_t>(set) * numWays_ + way];
    }

    const Way &
    at(unsigned set, unsigned way) const
    {
        return ways_[static_cast<std::size_t>(set) * numWays_ + way];
    }

    unsigned setBits() const { return setBits_; }

  private:
    unsigned numSets_;
    unsigned numWays_;
    unsigned setBits_;  ///< cached: tagOf() runs on every lookup
    std::uint32_t stamp_;
    std::vector<Way> ways_;
};

/**
 * Payload-free set-associative tag array with true-LRU replacement —
 * the same replacement policy as SetAssocTable (first invalid way,
 * else lowest stamp in way order), but stored as parallel arrays so a
 * set scan reads one cache line of tags instead of striding over
 * 24-byte Way records. Used where only presence matters (cache tag
 * arrays, the BTB), which are the hottest lookups in the simulator.
 */
class FlatTagLru
{
  public:
    FlatTagLru(unsigned num_sets, unsigned num_ways)
        : numSets_(num_sets), numWays_(num_ways),
          setBits_(floorLog2(num_sets)), stamp_(0),
          tags_(static_cast<std::size_t>(num_sets) * num_ways, 0),
          lru_(static_cast<std::size_t>(num_sets) * num_ways, 0)
    {
        lbp_assert(num_sets >= 1 && num_ways >= 1);
        lbp_assert(isPowerOf2(num_sets));
    }

    unsigned numSets() const { return numSets_; }
    unsigned numWays() const { return numWays_; }
    unsigned numEntries() const { return numSets_ * numWays_; }

    /** True when the key is present; updates LRU when @p touch. */
    bool
    lookup(std::uint64_t key, bool touch = true)
    {
        const std::size_t base =
            static_cast<std::size_t>(key & (numSets_ - 1)) * numWays_;
        const std::uint64_t want = packedTag(key);
        for (unsigned w = 0; w < numWays_; ++w) {
            if (tags_[base + w] == want) {
                if (touch)
                    lru_[base + w] = ++stamp_;
                return true;
            }
        }
        return false;
    }

    bool
    lookup(std::uint64_t key) const
    {
        return const_cast<FlatTagLru *>(this)->lookup(key, false);
    }

    /** Insert a key, evicting the set's LRU way if needed. */
    void
    insert(std::uint64_t key)
    {
        const std::size_t base =
            static_cast<std::size_t>(key & (numSets_ - 1)) * numWays_;
        std::size_t victim = base;
        for (unsigned w = 0; w < numWays_; ++w) {
            if (tags_[base + w] == 0) {
                victim = base + w;
                break;
            }
            if (lru_[base + w] < lru_[victim])
                victim = base + w;
        }
        tags_[victim] = packedTag(key);
        lru_[victim] = ++stamp_;
    }

  private:
    /**
     * Tag and valid bit share one word — a set scan then reads a single
     * contiguous line of tags — by storing tag+1: 0 means empty, and an
     * invalid way can never match a probe. Keys are line/instruction
     * addresses shifted down, so tag+1 cannot wrap.
     */
    std::uint64_t
    packedTag(std::uint64_t key) const
    {
        const std::uint64_t tag = (key >> setBits_) + 1;
        lbp_assert(tag != 0);
        return tag;
    }

    unsigned numSets_;
    unsigned numWays_;
    unsigned setBits_;
    std::uint32_t stamp_;
    std::vector<std::uint64_t> tags_;
    std::vector<std::uint32_t> lru_;
};

} // namespace lbp

#endif // LBP_COMMON_SET_ASSOC_HH
