/**
 * @file
 * Minimal TCP plumbing for the sweep daemon and its clients.
 *
 * The lbp-serve-v1 protocol (docs/SERVER.md) is one JSON object per
 * '\n'-terminated line over a loopback TCP connection. These wrappers
 * cover exactly what that needs — a listener with ephemeral-port
 * support (bind port 0, report the kernel's choice), a connected
 * stream with blocking send / line-buffered receive, and a
 * non-blocking drain for poll()-driven servers — so no other
 * translation unit touches raw sockets. Numeric IPv4 addresses and
 * "localhost" only: the daemon is a loopback service, name resolution
 * is out of scope.
 */

#ifndef LBP_COMMON_SOCKET_HH
#define LBP_COMMON_SOCKET_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace lbp {

/**
 * One connected TCP stream with an internal receive buffer that
 * reassembles '\n'-terminated lines across reads. Move-only; the
 * destructor closes the descriptor.
 */
class TcpConn
{
  public:
    TcpConn() = default;
    /** Adopt an already-connected descriptor (-1 = empty). */
    explicit TcpConn(int fd) : fd_(fd) {}
    ~TcpConn();

    TcpConn(TcpConn &&other) noexcept;
    TcpConn &operator=(TcpConn &&other) noexcept;
    TcpConn(const TcpConn &) = delete;
    TcpConn &operator=(const TcpConn &) = delete;

    /** True while an open descriptor is held. */
    bool valid() const { return fd_ >= 0; }

    /** Underlying descriptor (-1 when empty); for poll() sets. */
    int fd() const { return fd_; }

    /**
     * Send all of @p data, blocking as needed. False on any error
     * (the peer vanished); SIGPIPE is suppressed.
     */
    bool sendAll(std::string_view data);

    /**
     * Blocking read of one line. Waits up to @p timeoutMs (-1 =
     * forever) for a complete line, in multiple reads if needed.
     * Returns 1 with @p line filled (terminator stripped, trailing
     * '\r' too), 0 on timeout, -1 on EOF or error.
     */
    int readLine(std::string &line, int timeoutMs = -1);

    /**
     * Drain everything currently readable without blocking. Returns 1
     * if bytes arrived, 0 if nothing was pending, -1 on EOF or error.
     * Extract completed lines with nextLine() afterwards.
     */
    int fillAvailable();

    /** Pop the next buffered complete line; false when none is. */
    bool nextLine(std::string &line);

    /** Close the descriptor now (idempotent). */
    void closeConn();

  private:
    int fd_ = -1;
    std::string buf_;
};

/**
 * Listening TCP socket. Binding port 0 asks the kernel for an
 * ephemeral port, reported by boundPort() — tests and CI start the
 * daemon that way and discover the port from its --port-file.
 */
class TcpListener
{
  public:
    TcpListener() = default;
    ~TcpListener();

    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;

    /**
     * Bind and listen on @p host:@p port (numeric IPv4 or
     * "localhost"). False on failure with @p error describing it.
     */
    bool listenOn(const std::string &host, std::uint16_t port,
                  std::string &error);

    /** Listening descriptor (-1 before listenOn); for poll() sets. */
    int fd() const { return fd_; }

    /** Port actually bound (resolves port-0 binds). */
    std::uint16_t boundPort() const { return port_; }

    /**
     * Accept one pending connection (call after poll() reports the
     * listener readable). Invalid TcpConn if accept fails.
     */
    TcpConn acceptConn();

    /** Stop listening and close the descriptor (idempotent). */
    void closeListener();

  private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
};

/**
 * Connect to @p host:@p port (numeric IPv4 or "localhost"),
 * blocking. Invalid TcpConn on failure with @p error describing it.
 */
TcpConn tcpConnect(const std::string &host, std::uint16_t port,
                   std::string &error);

} // namespace lbp

#endif // LBP_COMMON_SOCKET_HH
