#include "common/telemetry.hh"

#include <cstdlib>
#include <fstream>

#include "common/logging.hh"

namespace lbp {

double
SuiteTelemetry::minstrPerSec() const
{
    return wallSeconds > 0.0
               ? static_cast<double>(simInstrs) / wallSeconds / 1e6
               : 0.0;
}

double
SuiteTelemetry::avgWorkerUtilization() const
{
    if (workerBusySeconds.empty() || wallSeconds <= 0.0)
        return 0.0;
    double busy = 0.0;
    for (double b : workerBusySeconds)
        busy += b;
    return busy /
           (wallSeconds *
            static_cast<double>(workerBusySeconds.size()));
}

TelemetryRegistry &
TelemetryRegistry::process()
{
    static TelemetryRegistry reg;
    return reg;
}

void
TelemetryRegistry::record(SuiteTelemetry t)
{
    std::lock_guard<std::mutex> lk(mu_);
    records_.push_back(std::move(t));
}

std::vector<SuiteTelemetry>
TelemetryRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return records_;
}

void
TelemetryRegistry::clear()
{
    std::lock_guard<std::mutex> lk(mu_);
    records_.clear();
}

TelemetryRegistry::Totals
TelemetryRegistry::totals() const
{
    std::lock_guard<std::mutex> lk(mu_);
    Totals t;
    for (const SuiteTelemetry &r : records_) {
        ++t.suites;
        if (r.memoHit)
            ++t.memoHits;
        t.simInstrs += r.simInstrs;
        t.wallSeconds += r.wallSeconds;
    }
    return t;
}

namespace {

void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out += ' ';
        } else {
            out += c;
        }
    }
    out += '"';
}

std::string
fmtJsonDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
}

} // namespace

std::string
TelemetryRegistry::toJson(const std::string &bench) const
{
    const std::vector<SuiteTelemetry> records = snapshot();
    const Totals t = totals();

    std::string out = "{\n  \"bench\": ";
    appendJsonString(out, bench);
    out += ",\n  \"suites_run\": " + std::to_string(t.suites);
    out += ",\n  \"memo_hits\": " + std::to_string(t.memoHits);
    out += ",\n  \"total_sim_instrs\": " + std::to_string(t.simInstrs);
    out += ",\n  \"total_wall_s\": " + fmtJsonDouble(t.wallSeconds);
    out += ",\n  \"minstr_per_s\": " +
           fmtJsonDouble(t.wallSeconds > 0.0
                             ? static_cast<double>(t.simInstrs) /
                                   t.wallSeconds / 1e6
                             : 0.0);
    out += ",\n  \"suites\": [";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const SuiteTelemetry &r = records[i];
        out += i ? ",\n    {" : "\n    {";
        out += "\"label\": ";
        appendJsonString(out, r.label);
        out += ", \"workloads\": " + std::to_string(r.workloads);
        out += ", \"sim_instrs\": " + std::to_string(r.simInstrs);
        out += ", \"wall_s\": " + fmtJsonDouble(r.wallSeconds);
        out += ", \"minstr_per_s\": " + fmtJsonDouble(r.minstrPerSec());
        out += ", \"jobs\": " + std::to_string(r.jobs);
        out += std::string(", \"memo_hit\": ") +
               (r.memoHit ? "true" : "false");
        out += ", \"worker_util\": [";
        for (std::size_t w = 0; w < r.workerBusySeconds.size(); ++w) {
            if (w)
                out += ", ";
            out += fmtJsonDouble(r.wallSeconds > 0.0
                                     ? r.workerBusySeconds[w] /
                                           r.wallSeconds
                                     : 0.0);
        }
        out += "]}";
    }
    out += records.empty() ? "]\n}\n" : "\n  ]\n}\n";
    return out;
}

bool
TelemetryRegistry::writeJson(const std::string &path,
                             const std::string &bench) const
{
    std::ofstream out(path);
    if (!out) {
        warnImpl(("cannot write throughput JSON to " + path).c_str());
        return false;
    }
    out << toJson(bench);
    return static_cast<bool>(out);
}

void
TelemetryRegistry::printSummary(std::FILE *out) const
{
    const std::vector<SuiteTelemetry> records = snapshot();
    const Totals t = totals();
    std::fprintf(out, "--- throughput telemetry ---\n");
    for (const SuiteTelemetry &r : records) {
        if (r.memoHit) {
            std::fprintf(out, "  %-34s memo hit\n", r.label.c_str());
            continue;
        }
        std::fprintf(out,
                     "  %-34s %4zu workloads  %7.3fs  %7.2f "
                     "Minstr/s  jobs=%u  util=%.0f%%\n",
                     r.label.c_str(), r.workloads, r.wallSeconds,
                     r.minstrPerSec(), r.jobs,
                     100.0 * r.avgWorkerUtilization());
    }
    std::fprintf(out,
                 "  total: %zu suites (%zu memoized), %.1f Minstr in "
                 "%.3fs wall = %.2f Minstr/s\n",
                 t.suites, t.memoHits,
                 static_cast<double>(t.simInstrs) / 1e6, t.wallSeconds,
                 t.wallSeconds > 0.0
                     ? static_cast<double>(t.simInstrs) /
                           t.wallSeconds / 1e6
                     : 0.0);
}

std::string
throughputJsonPath()
{
    if (const char *s = std::getenv("REPRO_THROUGHPUT_JSON"))
        return s;
    return "BENCH_throughput.json";
}

} // namespace lbp
