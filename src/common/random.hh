/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * Two generators are provided:
 *  - SplitMix64: a stateless mixing function, used to derive per-object
 *    seeds and to compute hash-like deterministic properties (instruction
 *    classes, dependency distances) from structural identifiers.
 *  - Xoshiro256ss: a fast sequential generator used where a stream of
 *    random values is needed (workload construction).
 *
 * All simulation randomness flows through these so runs are reproducible
 * from a single seed.
 */

#ifndef LBP_COMMON_RANDOM_HH
#define LBP_COMMON_RANDOM_HH

#include <array>
#include <cstdint>

#include "common/logging.hh"

namespace lbp {

/** One step of the SplitMix64 mixing function. */
inline std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Mix two identifiers into one well-distributed 64-bit value. */
inline std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    return splitmix64(a ^ splitmix64(b));
}

/**
 * xoshiro256** generator (Blackman & Vigna). Fast, high quality, and
 * trivially seedable from a single 64-bit value via SplitMix64.
 */
class Xoshiro256ss
{
  public:
    explicit Xoshiro256ss(std::uint64_t seed = 1) { reseed(seed); }

    /** Re-initialize the state from a single seed value. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x = splitmix64(x);
            word = x;
        }
        // The all-zero state is invalid; SplitMix64 of any seed avoids it,
        // but guard anyway.
        if (!(state_[0] | state_[1] | state_[2] | state_[3]))
            state_[0] = 1;
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        lbp_assert(bound > 0);
        // Multiply-shift range reduction; bias is negligible for our use.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        lbp_assert(hi >= lo);
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw with probability p (clamped to [0,1]). */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return static_cast<double>(next() >> 11) *
               (1.0 / 9007199254740992.0) < p;
    }

    /** Real value uniform in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_;
};

/**
 * A tiny 16-bit Galois LFSR used as per-branch architectural random state
 * inside workload behaviour models. It lives in a single state word so the
 * executor can fork (checkpoint) it by value.
 */
class Lfsr16
{
  public:
    /** Advance the LFSR stored in @p state and return the new value. */
    static std::uint16_t
    step(std::uint64_t &state)
    {
        auto lfsr = static_cast<std::uint16_t>(state ? state : 0xACE1u);
        const std::uint16_t lsb = lfsr & 1u;
        lfsr >>= 1;
        if (lsb)
            lfsr ^= 0xB400u;
        state = lfsr;
        return lfsr;
    }
};

} // namespace lbp

#endif // LBP_COMMON_RANDOM_HH
