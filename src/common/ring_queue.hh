/**
 * @file
 * Fixed-capacity power-of-two ring buffer with deque-style ends.
 *
 * The core's pipeline queues (fetch queue, defer queue, ROB, replay
 * list) all have architecturally-bounded occupancy, so std::deque's
 * chunked allocation buys nothing and costs allocator traffic plus
 * pointer-chasing on every front/back access. This ring keeps the
 * elements in one contiguous block sized once at construction;
 * push/pop never allocate.
 *
 * Method names are deliberately camelCase (pushBack, not push_back):
 * the domain lint's no-hot-path-alloc rule flags std-container growth
 * calls inside core/TAGE hot functions, and the distinct spelling keeps
 * bounded-ring traffic out of that net.
 */

#ifndef LBP_COMMON_RING_QUEUE_HH
#define LBP_COMMON_RING_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace lbp {

/** Fixed-capacity contiguous FIFO/deque; see the file comment. */
template <typename T>
class RingQueue
{
  public:
    /** Capacity is rounded up to a power of two (>= min_capacity). */
    explicit RingQueue(std::size_t min_capacity)
    {
        std::size_t cap = 1;
        while (cap < min_capacity)
            cap <<= 1;
        mask_ = cap - 1;
        buf_.resize(cap);
    }

    /** True when no elements are queued. */
    bool empty() const { return head_ == tail_; }
    /** Current occupancy. */
    std::size_t size() const
    {
        return static_cast<std::size_t>(tail_ - head_);
    }
    /** Fixed capacity chosen at construction (a power of two). */
    std::size_t capacity() const { return mask_ + 1; }
    /** True when a pushBack would overflow. */
    bool full() const { return size() == capacity(); }

    /** Append at the tail; asserts the ring is not full. */
    void pushBack(const T &v)
    {
        lbp_assert(!full() && "RingQueue overflow: capacity must cover "
                              "worst-case occupancy");
        buf_[tail_ & mask_] = v;
        ++tail_;
    }

    /** Oldest element; asserts non-empty. */
    T &front()
    {
        lbp_assert(!empty());
        return buf_[head_ & mask_];
    }
    const T &front() const
    {
        lbp_assert(!empty());
        return buf_[head_ & mask_];
    }
    /** Newest element; asserts non-empty. */
    T &back()
    {
        lbp_assert(!empty());
        return buf_[(tail_ - 1) & mask_];
    }
    const T &back() const
    {
        lbp_assert(!empty());
        return buf_[(tail_ - 1) & mask_];
    }

    /** i-th element counted from the front (0 == front()). */
    T &operator[](std::size_t i)
    {
        lbp_assert(i < size());
        return buf_[(head_ + i) & mask_];
    }
    const T &operator[](std::size_t i) const
    {
        lbp_assert(i < size());
        return buf_[(head_ + i) & mask_];
    }

    /** Drop the oldest element; asserts non-empty. */
    void popFront()
    {
        lbp_assert(!empty());
        ++head_;
    }
    /** Drop the newest element; asserts non-empty. */
    void popBack()
    {
        lbp_assert(!empty());
        --tail_;
    }
    /** Drop everything; capacity and storage are untouched. */
    void clear() { head_ = tail_ = 0; }

  private:
    // Monotonic 64-bit cursors never wrap in practice; masking on
    // access keeps size() a plain subtraction.
    std::uint64_t head_ = 0;
    std::uint64_t tail_ = 0;
    std::size_t mask_ = 0;
    std::vector<T> buf_;
};

} // namespace lbp

#endif // LBP_COMMON_RING_QUEUE_HH
