/**
 * @file
 * Lightweight statistics primitives and a text table formatter used by the
 * benchmark harnesses to print paper-style result tables.
 */

#ifndef LBP_COMMON_STATS_HH
#define LBP_COMMON_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace lbp {

/**
 * Running distribution summary: count, sum, min, max and mean, plus
 * power-of-two bucket counts for shape inspection.
 */
class Distribution
{
  public:
    void
    sample(std::uint64_t v)
    {
        ++count_;
        sum_ += v;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
        unsigned b = 0;
        while ((1ull << b) < v && b + 1 < numBuckets)
            ++b;
        ++buckets_[b];
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return count_ ? max_ : 0; }

    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    /** Count of samples v with 2^(b-1) < v <= 2^b (bucket 0: v <= 1). */
    std::uint64_t bucket(unsigned b) const { return buckets_[b]; }

    void
    reset()
    {
        count_ = sum_ = 0;
        min_ = std::numeric_limits<std::uint64_t>::max();
        max_ = 0;
        for (auto &b : buckets_)
            b = 0;
    }

    static constexpr unsigned numBuckets = 16;

  private:
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t max_ = 0;
    std::uint64_t buckets_[numBuckets] = {};
};

/**
 * Geometric mean of a list of strictly positive ratios. Returns 0.0
 * for an empty list — that is "no data", not a ratio, so gain
 * computations must guard for emptiness before turning the result
 * into a percentage (0.0 would read as a -100% gain).
 */
double geomean(const std::vector<double> &values);

/** Arithmetic mean; 0 for an empty list. */
double mean(const std::vector<double> &values);

/** Format a double with the given precision into a std::string. */
std::string fmtDouble(double v, int precision = 2);

/** Format a percentage (0.031 -> "3.10%"). */
std::string fmtPercent(double fraction, int precision = 2);

/**
 * Fixed-width text table builder. Benches use this to print rows shaped
 * like the paper's tables and figure series.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Render with aligned columns. */
    std::string render() const;

  private:
    std::vector<std::vector<std::string>> rows_;
};

} // namespace lbp

#endif // LBP_COMMON_STATS_HH
