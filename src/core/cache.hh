/**
 * @file
 * A simple multi-level cache hierarchy latency model: set-associative
 * LRU tag arrays with next-line prefetch, chained L1 -> L2 -> LLC ->
 * DRAM. Misses are non-blocking with unlimited MSHRs (each access pays
 * its own latency; the dataflow scheduler overlaps them), which is the
 * standard fast-model simplification.
 */

#ifndef LBP_CORE_CACHE_HH
#define LBP_CORE_CACHE_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/set_assoc.hh"
#include "common/types.hh"

namespace lbp {

/** Geometry and timing of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    unsigned sizeKB = 32;
    unsigned ways = 8;
    unsigned lineBytes = 64;
    unsigned latency = 5;       ///< hit latency, cycles
    bool nextLinePrefetch = true;
};

/** One cache level. */
class Cache
{
  public:
    struct Stats
    {
        std::uint64_t accesses = 0;
        std::uint64_t misses = 0;
        std::uint64_t prefetchFills = 0;
    };

    Cache(const CacheConfig &cfg, Cache *next, unsigned mem_latency);

    /**
     * Access @p addr; returns total latency including lower levels on a
     * miss, and fills the line (plus the next line when prefetching).
     * Inline: this is the hottest call in the simulator (every load,
     * store, and fetched line goes through it).
     */
    unsigned
    access(Addr addr)
    {
        ++stats_.accesses;
        const std::uint64_t key = lineKey(addr);
        const bool hit = tags_.lookup(key);

        unsigned latency = cfg_.latency;
        if (!hit) {
            ++stats_.misses;
            latency += next_ ? next_->access(addr) : memLatency_;
            tags_.insert(key);
            ++insertCount_;
        }
        if (cfg_.nextLinePrefetch) {
            // Streamer-style prefetch: keep the sequential next line
            // resident on every access (hit or miss) so strided streams
            // run ahead of demand, as the prefetchers of Table 2 do.
            prefetchFill(addr + cfg_.lineBytes);
        }
        return latency;
    }

    /** Fill without demand-latency accounting (prefetch path). */
    void
    prefetchFill(Addr addr)
    {
        const std::uint64_t key = lineKey(addr);
        // A prefetch that hits is a pure no-op (the untouched probe
        // leaves LRU alone), so a line known resident since the last
        // insert into this cache can skip the tag scan entirely.
        // Strided streams hammer the same next-line key for a whole
        // line's worth of accesses.
        if (key == lastPfKey_ && insertCount_ == lastPfGen_)
            return;
        if (tags_.lookup(key, false)) {
            lastPfKey_ = key;
            lastPfGen_ = insertCount_;
            return;
        }
        tags_.insert(key);
        ++insertCount_;
        lastPfKey_ = key;
        lastPfGen_ = insertCount_;
        ++stats_.prefetchFills;
        if (next_)
            next_->prefetchFill(addr);
    }

    /** True when the line is present (no LRU update). */
    bool probe(Addr addr) const { return tags_.lookup(lineKey(addr)); }

    const Stats &stats() const { return stats_; }
    const CacheConfig &config() const { return cfg_; }

  private:
    std::uint64_t lineKey(Addr addr) const
    {
        // lineBytes is asserted power-of-two; a shift avoids a hardware
        // divide on every access/prefetch probe.
        return addr >> lineShift_;
    }

    CacheConfig cfg_;
    Cache *next_;
    unsigned memLatency_;
    unsigned lineShift_;
    FlatTagLru tags_;
    Stats stats_;
    /** Presence memo for the prefetch probe: valid while no insert has
     *  happened since it was taken (hits have no side effects). */
    std::uint64_t lastPfKey_ = ~std::uint64_t{0};
    std::uint64_t lastPfGen_ = ~std::uint64_t{0};
    std::uint64_t insertCount_ = 0;
};

/** Table 2's three-level hierarchy plus DRAM. */
struct MemoryHierarchyConfig
{
    CacheConfig l1i{"l1i", 32, 8, 64, 5, true};
    CacheConfig l1d{"l1d", 32, 8, 64, 5, true};
    CacheConfig l2{"l2", 256, 8, 64, 15, true};
    CacheConfig llc{"llc", 8192, 16, 64, 40, true};
    unsigned memLatency = 220;  ///< DDR4-2133 round trip at 3.2 GHz
};

class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(
        const MemoryHierarchyConfig &cfg = MemoryHierarchyConfig{});

    /** Data-side load/store latency. */
    unsigned dataAccess(Addr addr) { return l1d_.access(addr); }

    /** Instruction-fetch latency. */
    unsigned fetchAccess(Addr addr) { return l1i_.access(addr); }

    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }
    const Cache &llc() const { return llc_; }
    const MemoryHierarchyConfig &config() const { return cfg_; }

  private:
    MemoryHierarchyConfig cfg_;
    Cache llc_;
    Cache l2_;
    Cache l1i_;
    Cache l1d_;
};

} // namespace lbp

#endif // LBP_CORE_CACHE_HH
