#include "core/cache.hh"

#include "common/logging.hh"

namespace lbp {

Cache::Cache(const CacheConfig &cfg, Cache *next, unsigned mem_latency)
    : cfg_(cfg), next_(next), memLatency_(mem_latency),
      lineShift_(floorLog2(cfg.lineBytes)),
      tags_(cfg.sizeKB * 1024 / cfg.lineBytes / cfg.ways, cfg.ways)
{
    lbp_assert(isPowerOf2(cfg.lineBytes));
    lbp_assert(cfg.sizeKB * 1024 % (cfg.lineBytes * cfg.ways) == 0);
}

MemoryHierarchy::MemoryHierarchy(const MemoryHierarchyConfig &cfg)
    : cfg_(cfg), llc_(cfg.llc, nullptr, cfg.memLatency),
      l2_(cfg.l2, &llc_, cfg.memLatency),
      l1i_(cfg.l1i, &l2_, cfg.memLatency),
      l1d_(cfg.l1d, &l2_, cfg.memLatency)
{
}

} // namespace lbp
