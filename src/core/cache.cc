#include "core/cache.hh"

#include "common/logging.hh"

namespace lbp {

Cache::Cache(const CacheConfig &cfg, Cache *next, unsigned mem_latency)
    : cfg_(cfg), next_(next), memLatency_(mem_latency),
      tags_(cfg.sizeKB * 1024 / cfg.lineBytes / cfg.ways, cfg.ways)
{
    lbp_assert(isPowerOf2(cfg.lineBytes));
    lbp_assert(cfg.sizeKB * 1024 % (cfg.lineBytes * cfg.ways) == 0);
}

unsigned
Cache::access(Addr addr)
{
    ++stats_.accesses;
    const std::uint64_t key = lineKey(addr);
    const bool hit = tags_.lookup(key) != nullptr;

    unsigned latency = cfg_.latency;
    if (!hit) {
        ++stats_.misses;
        latency += next_ ? next_->access(addr) : memLatency_;
        tags_.insert(key);
    }
    if (cfg_.nextLinePrefetch) {
        // Streamer-style prefetch: keep the sequential next line
        // resident on every access (hit or miss) so strided streams run
        // ahead of demand, as the enabled prefetchers of Table 2 do.
        prefetchFill(addr + cfg_.lineBytes);
    }
    return latency;
}

void
Cache::prefetchFill(Addr addr)
{
    const std::uint64_t key = lineKey(addr);
    if (tags_.lookup(key, false))
        return;
    tags_.insert(key);
    ++stats_.prefetchFills;
    if (next_)
        next_->prefetchFill(addr);
}

bool
Cache::probe(Addr addr) const
{
    return tags_.lookup(lineKey(addr)) != nullptr;
}

MemoryHierarchy::MemoryHierarchy(const MemoryHierarchyConfig &cfg)
    : cfg_(cfg), llc_(cfg.llc, nullptr, cfg.memLatency),
      l2_(cfg.l2, &llc_, cfg.memLatency),
      l1i_(cfg.l1i, &l2_, cfg.memLatency),
      l1d_(cfg.l1d, &l2_, cfg.memLatency)
{
}

} // namespace lbp
