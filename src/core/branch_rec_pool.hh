/**
 * @file
 * Recycled pool for the heavyweight per-branch TAGE state.
 *
 * The paper's point about local-predictor "baggage" cuts both ways for
 * the simulator itself: carrying a full TagePred (per-table indices and
 * tags) plus a TageCheckpoint (folded histories) inside every slot of
 * the 8K-entry DynInst ring made DynInst ~300 bytes, most of it dead
 * for the non-branch majority. The pool stores that state only for
 * branches actually in flight (bounded by fetch queue + ROB occupancy),
 * in one contiguous uint16 arena sized to the predictor's real table
 * count instead of the tageMaxTables compile-time cap. DynInst carries
 * a 4-byte pool index instead.
 *
 * Allocation and free are O(1) free-list operations; indices are
 * internal bookkeeping and never influence simulated behavior, so
 * recycling order cannot break bit-identical determinism.
 */

#ifndef LBP_CORE_BRANCH_REC_POOL_HH
#define LBP_CORE_BRANCH_REC_POOL_HH

#include <cstdint>
#include <vector>

#include "bpu/tage.hh"
#include "common/logging.hh"

namespace lbp {

/** The pooled per-branch record: prediction metadata + checkpoint. */
struct TageBranchRec
{
    TagePred pred;
    TageCheckpoint ckpt;
};

class BranchRecPool
{
  public:
    static constexpr std::uint32_t invalid = 0xffffffffu;

    /**
     * @param capacity   max simultaneously-live records; callers size
     *                   this to worst-case in-flight branches.
     * @param num_tables the predictor's table count; each record gets
     *                   2*num_tables (indices+tags) + 3*num_tables
     *                   (folded histories) arena slots.
     */
    BranchRecPool(std::uint32_t capacity, unsigned num_tables)
        : recs_(capacity),
          arena_(static_cast<std::size_t>(capacity) * 5 * num_tables, 0)
    {
        lbp_assert(capacity > 0 && num_tables > 0);
        freeList_.reserve(capacity);
        const std::size_t stride = 5u * num_tables;
        for (std::uint32_t i = 0; i < capacity; ++i) {
            std::uint16_t *base = arena_.data() + i * stride;
            recs_[i].pred.indices = base;
            recs_[i].pred.tags = base + num_tables;
            recs_[i].ckpt.folded = base + 2 * num_tables;
            // Descending push so indices are handed out ascending at
            // first — cosmetic only; order is behavior-invisible.
            freeList_.push_back(capacity - 1 - i);
        }
    }

    BranchRecPool(const BranchRecPool &) = delete;
    BranchRecPool &operator=(const BranchRecPool &) = delete;

    std::uint32_t alloc()
    {
        lbp_assert(!freeList_.empty() &&
                   "branch-record pool exhausted: a squash path leaked "
                   "records");
        const std::uint32_t idx = freeList_.back();
        freeList_.pop_back();
        return idx;
    }

    void free(std::uint32_t idx)
    {
        lbp_assert(idx < recs_.size());
        freeList_.push_back(idx);
    }

    TageBranchRec &get(std::uint32_t idx)
    {
        lbp_assert(idx < recs_.size());
        return recs_[idx];
    }

    std::uint32_t capacity() const
    {
        return static_cast<std::uint32_t>(recs_.size());
    }
    std::uint32_t live() const
    {
        return capacity() - static_cast<std::uint32_t>(freeList_.size());
    }

  private:
    std::vector<TageBranchRec> recs_;
    std::vector<std::uint16_t> arena_;
    std::vector<std::uint32_t> freeList_;
};

} // namespace lbp

#endif // LBP_CORE_BRANCH_REC_POOL_HH
