/**
 * @file
 * The out-of-order core model: a 4-wide Skylake-like pipeline (Table 2)
 * with a branch-prediction-driven front-end that genuinely fetches down
 * mispredicted paths.
 *
 * Front-end: fetch follows *predicted* directions through the program
 * CFG. While predictions match the architectural outcomes the fetch
 * stream is the executor's true-path stream; on a final-prediction
 * mismatch the front-end keeps running down the wrong edge — performing
 * speculative predictor updates exactly as hardware would — until the
 * branch resolves at execute, at which point the pipeline flushes, the
 * TAGE global state restores from the branch's O(1) checkpoint, and the
 * local-predictor repair scheme does its (multi-cycle, port-limited)
 * work.
 *
 * Back-end: in-order alloc into a 224-entry ROB, dataflow issue with an
 * issue-width/load-port calendar, per-class latencies, loads timed by
 * the 3-level cache hierarchy, in-order 4-wide retire. Wrong-path
 * instructions consume fetch/alloc bandwidth (and, for the multi-stage
 * scheme, reach the alloc-stage BHT-Defer) but do not execute — the
 * standard fast-model simplification; their *predictor* side effects,
 * which are what this paper studies, are fully modeled.
 */

#ifndef LBP_CORE_CORE_HH
#define LBP_CORE_CORE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "bpu/tage.hh"
#include "common/event_wheel.hh"
#include "common/ring_queue.hh"
#include "common/types.hh"
#include "core/branch_rec_pool.hh"
#include "core/cache.hh"
#include "core/dyn_inst.hh"
#include "obs/trace.hh"
#include "repair/scheme.hh"
#include "workload/executor.hh"
#include "workload/program.hh"

#ifdef LBP_AUDIT
#include "verify/auditor.hh"
#endif

namespace lbp {

/** Pipeline geometry (Table 2 defaults). */
struct CoreConfig
{
    unsigned fetchWidth = 4;
    unsigned allocWidth = 4;
    unsigned retireWidth = 4;
    unsigned issueWidth = 8;
    unsigned robEntries = 224;
    unsigned fetchQueueEntries = 64;  ///< allocation queue
    unsigned loadQueue = 72;
    unsigned storeQueue = 56;
    unsigned frontEndDepth = 10;      ///< fetch-to-alloc latency
    unsigned deferDepth = 5;          ///< fetch-to-alloc-queue-entry
    unsigned btbEntries = 2048;
    unsigned btbWays = 4;
    unsigned btbMissPenalty = 8;
    unsigned maxLoadsPerCycle = 2;
    unsigned maxStoresPerCycle = 1;
    unsigned mulLatency = 3;
    unsigned fpLatency = 4;
    MemoryHierarchyConfig mem{};
};

/** Full simulation configuration. */
struct SimConfig
{
    CoreConfig core{};
    TageConfig tage = TageConfig::kb7();
    bool useLocal = false;          ///< attach a local predictor + scheme
    RepairConfig repair{};
    std::uint64_t warmupInstrs = 40000;
    std::uint64_t measureInstrs = 60000;
    /**
     * Attach the speculative-state invariant auditor to auditable
     * repair schemes. Only honored in LBP_AUDIT=ON builds; the hooks
     * do not exist otherwise.
     */
    bool audit = true;
    bool auditPanic = false;  ///< abort on the first audit violation
    /**
     * Observability switches (tracing / forensics). Purely
     * observational — never changes simulated behavior, so it is
     * excluded from the suite-cache config key (suite_cache.cc).
     */
    ObsConfig obs{};
};

/** Plain counters; snapshot-and-subtract for warm-up exclusion. */
struct CoreStats
{
    std::uint64_t cycles = 0;
    std::uint64_t retiredInstrs = 0;
    std::uint64_t retiredCond = 0;
    std::uint64_t mispredicts = 0;      ///< execute-time flushes
    std::uint64_t earlyResteers = 0;    ///< alloc-stage (multi-stage)
    std::uint64_t wrongPathFetched = 0;
    std::uint64_t btbMisses = 0;
    std::uint64_t fetchedInstrs = 0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(retiredInstrs) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    double
    mpki() const
    {
        return retiredInstrs ? 1000.0 *
                                   static_cast<double>(mispredicts) /
                                   static_cast<double>(retiredInstrs)
                             : 0.0;
    }

    /** a - b, counter-wise. */
    static CoreStats delta(const CoreStats &a, const CoreStats &b);
};

/**
 * The core. Construct over a Program; run() advances until the target
 * number of true-path instructions has retired.
 */
class OooCore
{
  public:
    OooCore(const Program &prog, const SimConfig &cfg);

    /**
     * Construct with an externally-built repair scheme instead of the
     * one cfg.repair describes (cfg.repair should still describe it —
     * the auditor keys its applicability off cfg.repair.kind). Lets
     * tests inject instrumented or deliberately-broken schemes.
     */
    OooCore(const Program &prog, const SimConfig &cfg,
            std::unique_ptr<RepairScheme> scheme);

    ~OooCore();

    /** Simulate until @p instructions more have retired. */
    void run(std::uint64_t instructions);

    const CoreStats &stats() const { return stats_; }
    TagePredictor &tage() { return tage_; }

    /**
     * Attach a pipeline tracer (src/obs). The core never owns it; pass
     * nullptr to detach. Every pipeline hook is guarded by a null test,
     * so an unattached core pays nothing, and the tracer only reads
     * simulation state — attaching one cannot change results.
     */
    void attachTracer(PipelineTracer *tracer) { tracer_ = tracer; }

    RepairScheme *scheme() { return scheme_.get(); }
    const MemoryHierarchy &mem() const { return mem_; }
    Cycle now() const { return now_; }

#ifdef LBP_AUDIT
    /** Invariant-auditor counters; nullptr when no auditor attached. */
    const AuditorStats *
    auditorStats() const
    {
        return auditor_ ? &auditor_->stats() : nullptr;
    }
#endif

  private:
    struct Replayed
    {
        DynInstDesc desc;
        std::uint64_t dynIdx = 0;
        CfgCursor cursor{};
    };

    static constexpr unsigned ringLog = 13;
    static constexpr unsigned calLog = 10;
    static constexpr unsigned trueRingLog = 10;
    /** Resolve-wheel span; doneCycles past it fall to the far list. */
    static constexpr unsigned wheelLog = 11;

    DynInst &inst(InstSeq seq) { return ring_[seq & (ringSize() - 1)]; }
    static constexpr std::uint64_t ringSize() { return 1ull << ringLog; }

    void stepCycle();
    void retireStage();
    void resolveStage();
    void deferStage();
    void allocStage();
    void fetchStage();

    void scheduleInst(DynInst &di);
    void doFlush(DynInst &br);
    void handleEarlyResteer(DynInst &br, bool new_dir);
    void btbCheck(Addr pc);
    void icacheCheck(Addr pc);
    DynInst &makeInst(const DynInstDesc &desc, std::uint64_t dyn_idx,
                      const CfgCursor &cursor, bool wrong_path);

    Cycle nextWakeup();
    void fastForwardTo(Cycle t);

    /** Pooled TAGE baggage of an in-flight conditional branch. */
    TageBranchRec &brRec(const DynInst &di)
    {
        return brPool_.get(di.br.tageRec);
    }
    /** Release a branch's pool record (idempotent). */
    void freeBrRec(DynInst &di)
    {
        if (di.br.tageRec != BranchRecPool::invalid) {
            brPool_.free(di.br.tageRec);
            di.br.tageRec = BranchRecPool::invalid;
        }
    }

    const Program &prog_;
    SimConfig cfg_;
    Executor exec_;
    MemoryHierarchy mem_;
    TagePredictor tage_;
    std::unique_ptr<RepairScheme> scheme_;
#ifdef LBP_AUDIT
    std::unique_ptr<SpecStateAuditor> auditor_;
#endif
    FlatTagLru btb_;

    // Fetch state.
    CfgCursor nav_{};
    bool wrongPath_ = false;
    InstSeq divergeSeq_ = invalidSeq;
    Cycle fetchStallUntil_ = 0;
    Addr lastFetchLine_ = invalidAddr;
    RingQueue<InstSeq> fetchQueue_;
    RingQueue<InstSeq> deferQueue_;  ///< pending alloc-queue-entry checks
    RingQueue<Replayed> replay_;

    // Back-end state.
    RingQueue<InstSeq> rob_;
    unsigned lqOcc_ = 0;
    unsigned sqOcc_ = 0;
    std::vector<std::uint8_t> issueCal_;
    std::vector<std::uint8_t> loadCal_;
    std::vector<std::uint8_t> storeCal_;
    /** Branch-resolution events, fired by resolveStage. */
    EventWheel resolveWheel_;
    /** TAGE pred/checkpoint storage for in-flight branches. */
    BranchRecPool brPool_;

    std::vector<DynInst> ring_;
    std::vector<InstSeq> trueSeqRing_;
    InstSeq nextSeq_ = 0;
    Cycle now_ = 0;
    CoreStats stats_;
    /** Observability hooks; null (the default) = zero-cost off. */
    PipelineTracer *tracer_ = nullptr;
};

} // namespace lbp

#endif // LBP_CORE_CORE_HH
