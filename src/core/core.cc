#include "core/core.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace lbp {

CoreStats
CoreStats::delta(const CoreStats &a, const CoreStats &b)
{
    CoreStats d;
    d.cycles = a.cycles - b.cycles;
    d.retiredInstrs = a.retiredInstrs - b.retiredInstrs;
    d.retiredCond = a.retiredCond - b.retiredCond;
    d.mispredicts = a.mispredicts - b.mispredicts;
    d.earlyResteers = a.earlyResteers - b.earlyResteers;
    d.wrongPathFetched = a.wrongPathFetched - b.wrongPathFetched;
    d.btbMisses = a.btbMisses - b.btbMisses;
    d.fetchedInstrs = a.fetchedInstrs - b.fetchedInstrs;
    return d;
}

OooCore::OooCore(const Program &prog, const SimConfig &cfg)
    : OooCore(prog, cfg,
              cfg.useLocal ? makeRepairScheme(cfg.repair) : nullptr)
{
}

OooCore::OooCore(const Program &prog, const SimConfig &cfg,
                 std::unique_ptr<RepairScheme> scheme)
    : prog_(prog), cfg_(cfg), exec_(prog), mem_(cfg.core.mem),
      tage_(cfg.tage),
      btb_(cfg.core.btbEntries / cfg.core.btbWays, cfg.core.btbWays),
      fetchQueue_(cfg.core.fetchQueueEntries),
      deferQueue_(cfg.core.fetchQueueEntries),
      replay_(1024),
      rob_(cfg.core.robEntries),
      issueCal_(1u << calLog, 0), loadCal_(1u << calLog, 0),
      storeCal_(1u << calLog, 0),
      resolveWheel_(wheelLog),
      // Live branch records are bounded by fetch-queue + ROB occupancy
      // (everything else has been squashed and freed); the margin
      // absorbs the replay backlog's one-cycle handover.
      brPool_(cfg.core.fetchQueueEntries + cfg.core.robEntries + 64,
              tage_.numTables()),
      ring_(ringSize()),
      trueSeqRing_(1u << trueRingLog, invalidSeq)
{
    scheme_ = std::move(scheme);
#ifdef LBP_AUDIT
    if (scheme_ && cfg.audit &&
        SpecStateAuditor::auditableKind(cfg.repair.kind)) {
        AuditorConfig acfg;
        acfg.panicOnViolation = cfg.auditPanic;
        auditor_ = std::make_unique<SpecStateAuditor>(scheme_->local(),
                                                      acfg);
    }
#endif
}

OooCore::~OooCore() = default;

void
OooCore::run(std::uint64_t instructions)
{
    const std::uint64_t target = stats_.retiredInstrs + instructions;
    std::uint64_t last_retired = stats_.retiredInstrs;
    std::uint64_t idle_steps = 0;
    bool maybe_idle = true;
    while (stats_.retiredInstrs < target) {
        // Idle fast-forward: when no stage can possibly act before the
        // earliest scheduled wakeup, jump straight to it instead of
        // spinning empty stepCycle iterations through a DRAM-miss
        // stall. Skipped cycles are provably no-ops, so the cycle
        // counters and all simulated state stay bit-identical. The
        // wakeup scan itself only runs after a cycle that made no
        // progress: a busy pipeline pays nothing for it, and the one
        // extra no-op stepCycle it takes to notice a stall is exactly
        // the iteration fastForwardTo would have replayed anyway.
        if (maybe_idle) {
            const Cycle wake = nextWakeup();
            if (wake > now_ + 1)
                fastForwardTo(wake);
        }
        const std::uint64_t pre_work = stats_.retiredInstrs +
                                       stats_.fetchedInstrs +
                                       stats_.mispredicts;
        stepCycle();
        maybe_idle = stats_.retiredInstrs + stats_.fetchedInstrs +
                         stats_.mispredicts ==
                     pre_work;
        if (stats_.retiredInstrs != last_retired) {
            last_retired = stats_.retiredInstrs;
            idle_steps = 0;
        } else if (++idle_steps > 100000) {
            const auto u64 = [](std::uint64_t v) {
                return static_cast<unsigned long long>(v);
            };
            std::fprintf(stderr,
                         "deadlock: now=%llu rob=%zu fq=%zu lq=%u sq=%u "
                         "wrongPath=%d stall=%llu pending=%zu replay=%zu\n",
                         u64(now_), rob_.size(),
                         fetchQueue_.size(), lqOcc_, sqOcc_,
                         static_cast<int>(wrongPath_),
                         u64(fetchStallUntil_),
                         resolveWheel_.size(), replay_.size());
            if (!rob_.empty()) {
                const DynInst &h = inst(rob_.front());
                std::fprintf(stderr,
                             "rob head seq=%llu done=%llu cls=%d\n",
                             u64(h.seq), u64(h.doneCycle),
                             static_cast<int>(h.cls));
            }
            if (divergeSeq_ != invalidSeq) {
                const DynInst &d = inst(divergeSeq_);
                std::fprintf(stderr,
                             "diverge seq=%llu slotseq=%llu misp=%d "
                             "done=%llu fetch=%llu nextSeq=%llu\n",
                             u64(divergeSeq_), u64(d.seq),
                             static_cast<int>(d.mispredicted),
                             u64(d.doneCycle), u64(d.fetchCycle),
                             u64(nextSeq_));
            }
            // Counting *stepped* iterations, not elapsed cycles: the
            // fast-forward can legitimately jump now_ by thousands per
            // step, and a cycle-based threshold would false-positive on
            // long (but progressing) stalls or never fire if a hung
            // core kept finding bogus wakeups.
            lbp_panic("core deadlock: no retirement in 100k steps");
        }
    }
}

/**
 * Earliest future cycle at which some stage might act; stepping at any
 * earlier cycle is provably a no-op. Candidates mirror the stages'
 * own guards exactly (conservative candidates may land on a no-op
 * cycle, which is harmless; a late candidate would diverge, so every
 * bound below errs early).
 */
Cycle
OooCore::nextWakeup()
{
    const Cycle t0 = now_ + 1;

    // Retire: the ROB head retires the cycle after it completes. More
    // than retireWidth ready heads just retires over multiple cycles,
    // which the max() clamp covers.
    Cycle cand = ~Cycle{0};
    if (!rob_.empty()) {
        cand = std::max(t0, inst(rob_.front()).doneCycle + 1);
        if (cand == t0)
            return t0;
    }

    // Defer: the queue head acts deferDepth cycles after fetch. A stale
    // head (squashed slot) is popped by the stage itself — step now.
    if (!deferQueue_.empty()) {
        const InstSeq s = deferQueue_.front();
        const DynInst &d = inst(s);
        if (d.seq != s)
            return t0;
        cand = std::min(cand,
                        std::max(t0, d.fetchCycle +
                                         cfg_.core.deferDepth));
        if (cand == t0)
            return t0;
    }

    // Alloc: the queue head allocates frontEndDepth cycles after fetch,
    // unless blocked on ROB/LQ/SQ space — then retirement (above) is
    // what unblocks it, in the same cycle it frees the entry.
    if (!fetchQueue_.empty()) {
        const DynInst &f = inst(fetchQueue_.front());
        bool blocked = rob_.size() >= cfg_.core.robEntries;
        if (!blocked && !f.wrongPath) {
            if (f.cls == InstClass::Load &&
                lqOcc_ >= cfg_.core.loadQueue)
                blocked = true;
            if (f.cls == InstClass::Store &&
                sqOcc_ >= cfg_.core.storeQueue)
                blocked = true;
        }
        if (!blocked) {
            cand = std::min(cand,
                            std::max(t0, f.fetchCycle +
                                             cfg_.core.frontEndDepth));
            if (cand == t0)
                return t0;
        }
    }

    // Fetch: acts once the stall lifts, provided there is queue space
    // and ring headroom (those two are freed by alloc/retire, whose
    // candidates already cover the unblocking cycle).
    if (fetchQueue_.size() < cfg_.core.fetchQueueEntries) {
        const InstSeq oldest_live =
            !rob_.empty()
                ? inst(rob_.front()).seq
                : (!fetchQueue_.empty() ? inst(fetchQueue_.front()).seq
                                        : nextSeq_);
        if (nextSeq_ - oldest_live < ringSize() - 64) {
            cand = std::min(cand, std::max(t0, fetchStallUntil_));
            if (cand == t0)
                return t0;
        }
    }

    // Resolve: earliest pending branch-resolution event.
    cand = resolveWheel_.nextEventTime(now_, cand);
    return cand == ~Cycle{0} ? t0 : cand;
}

/**
 * Jump to cycle @p t - 1 so the next stepCycle runs cycle @p t,
 * performing exactly the state changes the skipped no-op iterations
 * would have made: advancing the cycle counter and recycling the
 * calendar slots that rolled out of the scheduling window.
 */
void
OooCore::fastForwardTo(Cycle t)
{
    lbp_assert(t > now_ + 1);
    const Cycle skip = t - 1 - now_;
    const std::size_t cal_size = std::size_t{1} << calLog;
    if (skip >= cal_size) {
        std::fill(issueCal_.begin(), issueCal_.end(), 0);
        std::fill(loadCal_.begin(), loadCal_.end(), 0);
        std::fill(storeCal_.begin(), storeCal_.end(), 0);
    } else {
        const std::size_t mask = cal_size - 1;
        for (Cycle c = now_; c <= t - 2; ++c) {
            const std::size_t slot = static_cast<std::size_t>(c) & mask;
            issueCal_[slot] = 0;
            loadCal_[slot] = 0;
            storeCal_[slot] = 0;
        }
    }
    now_ = t - 1;
    stats_.cycles += skip;
}

void
OooCore::stepCycle()
{
    ++now_;
    ++stats_.cycles;
    // Recycle the calendar slot that just rolled into the window: slot
    // (now-1) % N now represents cycle now-1+N.
    const std::size_t slot =
        static_cast<std::size_t>(now_ - 1) & ((1u << calLog) - 1);
    issueCal_[slot] = 0;
    loadCal_[slot] = 0;
    storeCal_[slot] = 0;

    retireStage();
    resolveStage();
    deferStage();
    allocStage();
    fetchStage();
}

// ---------------------------------------------------------------------
// Retire
// ---------------------------------------------------------------------

void
OooCore::retireStage()
{
    unsigned n = 0;
    while (n < cfg_.core.retireWidth && !rob_.empty()) {
        DynInst &di = inst(rob_.front());
        if (di.doneCycle >= now_)
            break;
        rob_.popFront();
        if (di.cls == InstClass::Load) {
            lbp_assert(lqOcc_ > 0);
            --lqOcc_;
        } else if (di.cls == InstClass::Store) {
            lbp_assert(sqOcc_ > 0);
            --sqOcc_;
        }
        if (di.isCond()) {
            ++stats_.retiredCond;
#ifdef LBP_AUDIT
            if (auditor_)
                auditor_->onRetire(di);
#endif
            if (scheme_)
                scheme_->atRetire(di);
            tage_.train(di.pc, di.actualDir, brRec(di).pred);
            freeBrRec(di);
        }
        ++stats_.retiredInstrs;
        if (tracer_)
            tracer_->stage(TraceStage::Retire, now_, now_, di.seq,
                           di.pc, false);
        ++n;
    }
}

// ---------------------------------------------------------------------
// Resolve (execute-time misprediction flush)
// ---------------------------------------------------------------------

void
OooCore::resolveStage()
{
    InstSeq seq = invalidSeq;
    while (resolveWheel_.popDue(now_, seq)) {
        DynInst &di = inst(seq);
        if (di.seq != seq || !di.mispredicted)
            continue;  // squashed or corrected at alloc
        doFlush(di);
    }
}

void
OooCore::doFlush(DynInst &br)
{
    ++stats_.mispredicts;
    br.mispredicted = false;

    // Forensics: snapshot the repair-work counters so the per-squash
    // record can report the walk this flush triggered as a delta (the
    // same pre/post pattern the LBP_AUDIT coverage check uses below).
    std::uint64_t pre_walk = 0;
    std::uint64_t pre_writes = 0;
    if (tracer_ && scheme_) {
        pre_walk = scheme_->stats().walkLength.sum();
        pre_writes = scheme_->stats().repairWrites;
    }

    // Local-predictor repair runs against the pre-squash OBQ contents.
    if (scheme_) {
#ifdef LBP_AUDIT
        const std::uint64_t pre_uncovered =
            scheme_->stats().uncheckpointedMispredicts;
#endif
        scheme_->atMispredict(br, now_);
        scheme_->atSquash(br.seq, br);
#ifdef LBP_AUDIT
        if (auditor_) {
            const bool covered =
                scheme_->stats().uncheckpointedMispredicts ==
                pre_uncovered;
            auditor_->onRecovery(br, scheme_->local(), covered,
                                 scheme_->lastRepairSet());
        }
#endif
    }

    // O(1) global-state repair: restore the checkpoint taken before
    // this branch's own history push, then re-push the actual outcome.
    tage_.restore(brRec(br).ckpt);
    tage_.specUpdateHist(br.pc, br.actualDir);
    br.br.finalPred = br.actualDir;

    // Everything fetched after the branch is wrong-path and lives only
    // in the fetch queue (wrong-path instructions never allocate);
    // their pooled branch records are dead with them.
    for (std::size_t i = 0; i < fetchQueue_.size(); ++i) {
        const InstSeq s = fetchQueue_[i];
        DynInst &q = inst(s);
        if (q.seq == s)
            freeBrRec(q);
    }
    fetchQueue_.clear();
    deferQueue_.clear();
    if (!rob_.empty())
        lbp_assert(inst(rob_.back()).seq <= br.seq);

    wrongPath_ = false;
    fetchStallUntil_ = std::max(fetchStallUntil_, now_ + 1);

    if (tracer_) {
        tracer_->stage(TraceStage::Resolve, now_, now_, br.seq, br.pc,
                       false);
        tracer_->stage(TraceStage::Squash, now_, now_, br.seq, br.pc,
                       false);
        SquashRecord rec;
        rec.cycle = now_;
        rec.pc = br.pc;
        rec.seq = br.seq;
        if (br.br.earlyResteered)
            rec.source = MispredictSource::BhtDefer;
        else if (br.br.usedLoop)
            rec.source = MispredictSource::LoopOverride;
        else if (brRec(br).pred.provider >= 0)
            rec.source = MispredictSource::TageTable;
        else
            rec.source = MispredictSource::Bimodal;
        rec.provider = brRec(br).pred.provider;
        rec.resolveLatency = now_ - br.fetchCycle;
        rec.wrongPathFetched = static_cast<std::uint32_t>(
            stats_.wrongPathFetched - tracer_->wrongPathAtDiverge());
        rec.obqOccupancy = scheme_ ? scheme_->obqOccupancy() : 0;
        rec.robOccupancy = static_cast<std::uint32_t>(rob_.size());
        if (scheme_) {
            rec.walkLength = static_cast<std::uint32_t>(
                scheme_->stats().walkLength.sum() - pre_walk);
            rec.repairWrites = static_cast<std::uint32_t>(
                scheme_->stats().repairWrites - pre_writes);
        }
        tracer_->squash(rec);
    }
}

// ---------------------------------------------------------------------
// Defer stage (alloc-queue entry): the multi-stage scheme's BHT-Defer
// lives here — a few cycles past fetch, before the allocation queue, so
// a deferred override resteers cheaply (section 3.2).
// ---------------------------------------------------------------------

void
OooCore::deferStage()
{
    while (!deferQueue_.empty()) {
        const InstSeq s = deferQueue_.front();
        DynInst &di = inst(s);
        if (di.seq != s) {  // squashed and slot reused
            deferQueue_.popFront();
            continue;
        }
        if (di.fetchCycle + cfg_.core.deferDepth > now_)
            break;
        deferQueue_.popFront();
        if (scheme_) {
            const auto out = scheme_->atAlloc(di, now_);
#ifdef LBP_AUDIT
            // Defer-side audit record: di.br.local now holds the
            // checkpointed table's lookup. Branches squashed out of
            // the defer queue before this point never touched
            // BHT-Defer, so skipping them is exact, not a gap.
            if (auditor_ && scheme_->auditsAtAlloc())
                auditor_->onPredict(di);
#endif
            if (out.resteer)
                handleEarlyResteer(di, out.dir);
        }
    }
}

// ---------------------------------------------------------------------
// Alloc
// ---------------------------------------------------------------------

void
OooCore::allocStage()
{
    unsigned n = 0;
    while (n < cfg_.core.allocWidth && !fetchQueue_.empty()) {
        const InstSeq s = fetchQueue_.front();
        DynInst &di = inst(s);
        if (di.fetchCycle + cfg_.core.frontEndDepth > now_)
            break;

        // Wrong-path and true-path instructions alike need a free ROB
        // slot to allocate — wrong-path work occupies real back-end
        // resources in hardware, and letting it bypass ROB
        // backpressure would let fetch churn unboundedly down a wrong
        // path while a long dependence chain stalls the window.
        if (rob_.size() >= cfg_.core.robEntries)
            break;

        if (di.wrongPath) {
            // Consumes alloc bandwidth, then evaporates (its execution
            // is never simulated; its predictor side effects happened
            // at the defer stage).
            if (tracer_)
                tracer_->stage(TraceStage::Alloc, di.fetchCycle, now_,
                               di.seq, di.pc, true);
            freeBrRec(di);
            fetchQueue_.popFront();
            ++n;
            continue;
        }
        if (di.cls == InstClass::Load && lqOcc_ >= cfg_.core.loadQueue)
            break;
        if (di.cls == InstClass::Store && sqOcc_ >= cfg_.core.storeQueue)
            break;

        fetchQueue_.popFront();
        if (tracer_)
            tracer_->stage(TraceStage::Alloc, di.fetchCycle, now_,
                           di.seq, di.pc, false);
        scheduleInst(di);
        rob_.pushBack(s);
        if (di.cls == InstClass::Load)
            ++lqOcc_;
        else if (di.cls == InstClass::Store)
            ++sqOcc_;
        ++n;
    }
}

void
OooCore::handleEarlyResteer(DynInst &br, bool new_dir)
{
    ++stats_.earlyResteers;
    if (tracer_)
        tracer_->stage(TraceStage::Resteer, now_, now_, br.seq, br.pc,
                       false);

    // Queued instructions younger than the resteering branch vanish;
    // true-path ones must be re-fetchable afterwards, so stash their
    // descriptors for replay (the executor cannot rewind).
    while (!fetchQueue_.empty() &&
           inst(fetchQueue_.back()).seq > br.seq)
        fetchQueue_.popBack();
    // The popped ones are re-collected in fetch order below.
    for (InstSeq s = br.seq + 1; s < nextSeq_; ++s) {
        DynInst &q = inst(s);
        if (q.seq != s)
            continue;
        // Squashed branches (wrong- and true-path alike) release their
        // pooled TAGE record; replayed ones get a fresh one at refetch.
        freeBrRec(q);
        if (q.wrongPath)
            continue;
        Replayed r;
        r.desc.pc = q.pc;
        r.desc.cls = q.cls;
        r.desc.dep1 = q.dep1;
        r.desc.dep2 = q.dep2;
        r.desc.branchId = -1;
        r.desc.taken = q.actualDir;
        r.desc.memAddr = q.memAddr;
        r.dynIdx = q.dynIdx;
        r.cursor = q.fetchCursor;
        replay_.pushBack(r);
        q.seq = invalidSeq;  // slot retired from circulation
    }
    while (!deferQueue_.empty() &&
           inst(deferQueue_.back()).seq > br.seq)
        deferQueue_.popBack();

    // Rewind the speculative global history to this branch and re-push
    // the new direction.
    tage_.restore(brRec(br).ckpt);
    tage_.specUpdateHist(br.pc, new_dir);

    if (new_dir == br.actualDir) {
        // The deferred local prediction corrected a wrong fetch-time
        // direction: rejoin the true path. The executor paused at the
        // divergence, so fetch simply resumes consuming it (after any
        // replay backlog, which is empty in this case by construction).
        br.mispredicted = false;
        wrongPath_ = false;
    } else {
        // The deferred override was wrong: fetch diverges here, and the
        // branch pays the full misprediction penalty at execute too
        // (scheduleInst arms the resolve event right after this hook).
        br.mispredicted = true;
        wrongPath_ = true;
        if (tracer_)
            tracer_->noteDiverge(stats_.wrongPathFetched);
        nav_ = br.fetchCursor;
        cfgAdvance(prog_, nav_, new_dir);
    }
    fetchStallUntil_ = std::max(fetchStallUntil_, now_ + 1);
}

// ---------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------

void
OooCore::scheduleInst(DynInst &di)
{
    Cycle ready = now_ + 1;

    const auto depDone = [&](std::uint8_t dist) -> Cycle {
        if (!dist || dist > di.dynIdx)
            return 0;
        const std::uint64_t p_idx = di.dynIdx - dist;
        const InstSeq s =
            trueSeqRing_[p_idx & ((1u << trueRingLog) - 1)];
        if (s == invalidSeq)
            return 0;
        const DynInst &p = inst(s);
        if (p.seq != s || p.dynIdx != p_idx)
            return 0;  // stale slot: producer long retired
        return p.doneCycle;
    };

    ready = std::max(ready, depDone(di.dep1));
    ready = std::max(ready, depDone(di.dep2));

    unsigned lat = 1;
    switch (di.cls) {
      case InstClass::Mul:
        lat = cfg_.core.mulLatency;
        break;
      case InstClass::FpOp:
        lat = cfg_.core.fpLatency;
        break;
      case InstClass::Load:
        lat = mem_.dataAccess(di.memAddr);
        break;
      case InstClass::Store:
        // Address/data ready is all retirement needs; the write drains
        // post-commit and is not modeled.
        mem_.dataAccess(di.memAddr);
        lat = 1;
        break;
      default:
        lat = 1;
        break;
    }

    // Issue-port contention within the calendar window; dependence-bound
    // instructions issuing far in the future see no contention.
    Cycle t = ready;
    const Cycle horizon = now_ + (1u << calLog) - 64;
    if (t < horizon) {
        const unsigned mask = (1u << calLog) - 1;
        while (t < horizon) {
            const std::size_t slot = static_cast<std::size_t>(t) & mask;
            const bool port_free =
                issueCal_[slot] < cfg_.core.issueWidth &&
                (di.cls != InstClass::Load ||
                 loadCal_[slot] < cfg_.core.maxLoadsPerCycle) &&
                (di.cls != InstClass::Store ||
                 storeCal_[slot] < cfg_.core.maxStoresPerCycle);
            if (port_free)
                break;
            ++t;
        }
        const std::size_t slot = static_cast<std::size_t>(t) & mask;
        ++issueCal_[slot];
        if (di.cls == InstClass::Load)
            ++loadCal_[slot];
        else if (di.cls == InstClass::Store)
            ++storeCal_[slot];
    }

    di.doneCycle = t + lat;
    di.completed = true;
    if (tracer_)
        tracer_->stage(TraceStage::Issue, t, di.doneCycle, di.seq,
                       di.pc, false);

    if (di.isCond() && di.mispredicted)
        resolveWheel_.schedule(di.doneCycle, di.seq, now_);
}

// ---------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------

void
OooCore::fetchStage()
{
    if (now_ < fetchStallUntil_)
        return;

    // Safety net: never let new sequence numbers wrap the instruction
    // ring over slots that may still be referenced by the ROB or a
    // pending branch resolution.
    const InstSeq oldest_live =
        !rob_.empty() ? inst(rob_.front()).seq
                      : (!fetchQueue_.empty() ? inst(fetchQueue_.front()).seq
                                              : nextSeq_);
    if (nextSeq_ - oldest_live >= ringSize() - 64)
        return;

    unsigned n = 0;
    while (n < cfg_.core.fetchWidth &&
           fetchQueue_.size() < cfg_.core.fetchQueueEntries) {
        DynInstDesc desc;
        std::uint64_t dyn_idx = 0;
        CfgCursor cursor_before{};
        bool from_executor = false;

        if (!wrongPath_) {
            if (!replay_.empty()) {
                const Replayed &r = replay_.front();
                desc = r.desc;
                dyn_idx = r.dynIdx;
                cursor_before = r.cursor;
                replay_.popFront();
            } else {
                cursor_before = exec_.cursor();
                desc = exec_.next();
                dyn_idx = exec_.instCount() - 1;
                from_executor = true;
            }
        } else {
            cursor_before = nav_;
            const StaticInst &si = cfgInst(prog_, nav_);
            desc = DynInstDesc{};
            desc.pc = si.pc;
            desc.cls = si.cls;
            desc.dep1 = si.dep1;
            desc.dep2 = si.dep2;
        }

        icacheCheck(desc.pc);

        DynInst &di =
            makeInst(desc, dyn_idx, cursor_before, wrongPath_);
        if (tracer_)
            tracer_->stage(TraceStage::Fetch, now_, now_, di.seq,
                           di.pc, di.wrongPath);

        bool fetch_break = false;
        if (di.isCond()) {
            di.br.tageRec = brPool_.alloc();
            TageBranchRec &tr = brRec(di);
            tage_.checkpoint(tr.ckpt);
            const bool tage_dir = tage_.predict(di.pc, tr.pred);
            bool final_dir = tage_dir;
            if (scheme_) {
                final_dir =
                    scheme_->atPredict(di, tage_dir, now_).finalDir;
#ifdef LBP_AUDIT
                // MultiStage audits BHT-Defer, whose lookup happens at
                // the defer stage; recording here would capture
                // BHT-TAGE's (unaudited, disposable) state instead.
                if (auditor_ && !scheme_->auditsAtAlloc())
                    auditor_->onPredict(di);
#endif
            } else {
                di.br.tageDir = tage_dir;
                di.br.finalPred = tage_dir;
            }
            tage_.specUpdateHist(di.pc, final_dir);

            if (!di.wrongPath) {
                if (scheme_ && from_executor)
                    scheme_->atTruePathFetch(di);
                di.mispredicted = final_dir != di.actualDir;
                if (di.mispredicted) {
                    // Fetch sails on down the wrong edge.
                    wrongPath_ = true;
                    divergeSeq_ = di.seq;
                    if (tracer_)
                        tracer_->noteDiverge(stats_.wrongPathFetched);
                    nav_ = cursor_before;
                    cfgAdvance(prog_, nav_, final_dir);
                }
            } else {
                cfgAdvance(prog_, nav_, final_dir);
            }

            if (final_dir) {
                btbCheck(di.pc);
                fetch_break = true;  // taken branch ends the group
            }
        } else if (di.cls == InstClass::Jump) {
            tage_.specUpdateHist(di.pc, true);
            if (di.wrongPath)
                cfgAdvance(prog_, nav_, true);
            btbCheck(di.pc);
            fetch_break = true;
        } else {
            if (di.wrongPath)
                cfgAdvance(prog_, nav_, false);
        }

        fetchQueue_.pushBack(di.seq);
        if (di.isCond() && scheme_)
            deferQueue_.pushBack(di.seq);
        ++n;
        if (fetch_break || now_ < fetchStallUntil_)
            break;
    }
}

void
OooCore::btbCheck(Addr pc)
{
    if (!btb_.lookup(pc >> 2)) {
        ++stats_.btbMisses;
        btb_.insert(pc >> 2);
        fetchStallUntil_ =
            std::max(fetchStallUntil_, now_ + cfg_.core.btbMissPenalty);
    }
}

void
OooCore::icacheCheck(Addr pc)
{
    const Addr line = pc & ~static_cast<Addr>(63);
    if (line == lastFetchLine_)
        return;
    lastFetchLine_ = line;
    const unsigned lat = mem_.fetchAccess(pc);
    const unsigned l1_lat = cfg_.core.mem.l1i.latency;
    if (lat > l1_lat) {
        fetchStallUntil_ =
            std::max(fetchStallUntil_, now_ + (lat - l1_lat));
    }
}

DynInst &
OooCore::makeInst(const DynInstDesc &desc, std::uint64_t dyn_idx,
                  const CfgCursor &cursor, bool wrong_path)
{
    const InstSeq seq = nextSeq_++;
    DynInst &di = inst(seq);
    // Backstop: every squash/retire path frees its pooled record, but a
    // leaked one must not survive slot reuse.
    freeBrRec(di);
    di = DynInst{};
    di.seq = seq;
    di.pc = desc.pc;
    di.cls = desc.cls;
    di.dep1 = desc.dep1;
    di.dep2 = desc.dep2;
    di.wrongPath = wrong_path;
    di.actualDir = desc.taken;
    di.memAddr = desc.memAddr;
    di.dynIdx = dyn_idx;
    di.fetchCursor = cursor;
    di.fetchCycle = now_;
    if (!wrong_path)
        trueSeqRing_[dyn_idx & ((1u << trueRingLog) - 1)] = seq;
    ++stats_.fetchedInstrs;
    if (wrong_path)
        ++stats_.wrongPathFetched;
    return di;
}

} // namespace lbp
