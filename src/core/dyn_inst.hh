/**
 * @file
 * The in-flight dynamic instruction record shared between the core
 * pipeline and the repair layer.
 *
 * Conditional branches carry the "baggage" the paper describes: the
 * pre-update TAGE global-state checkpoint (GHIST/PHIST/folded histories
 * — O(1) restore, section 2.3.1), the pre-update local BHT state (the
 * 11-bit counter of section 3.1), an OBQ entry id, and scheme-specific
 * slots (snapshot id, limited-PC payload index).
 */

#ifndef LBP_CORE_DYN_INST_HH
#define LBP_CORE_DYN_INST_HH

#include <cstdint>

#include "bpu/predictor.hh"
#include "common/types.hh"
#include "workload/program.hh"

namespace lbp {

/**
 * Branch-prediction state carried by an in-flight conditional branch.
 *
 * The heavyweight TAGE state (per-table indices/tags and the global
 * checkpoint) lives in the core's BranchRecPool, referenced by
 * tageRec; only the core's fetch/retire/flush paths touch it. What
 * stays inline is the slim state the repair schemes and the auditor
 * read.
 */
struct BranchRec
{
    /** BranchRecPool slot for the TAGE pred+checkpoint baggage
     *  (BranchRecPool::invalid when none is held). */
    std::uint32_t tageRec = 0xffffffffu;

    LocalPred local;        ///< local predictor lookup at fetch (or alloc)

    bool finalPred = false; ///< pipeline's current direction for fetch
    bool tageDir = false;
    bool usedLoop = false;  ///< local override applied
    bool loopDir = false;
    bool earlyResteered = false;  ///< multi-stage alloc-time override fired

    // Repair metadata.
    std::uint64_t obqId = invalidId;
    bool checkpointed = false;
    bool mergedEntry = false;     ///< shares a coalesced OBQ entry
    bool specUpdated = false;     ///< speculative BHT update was applied
    std::uint64_t snapId = invalidId;
    std::uint64_t limitedSlot = invalidId;
};

/** One in-flight instruction. Stored by value in bounded rings. */
struct DynInst
{
    InstSeq seq = invalidSeq;
    Addr pc = 0;
    InstClass cls = InstClass::Alu;
    std::uint8_t dep1 = 0;
    std::uint8_t dep2 = 0;
    bool wrongPath = false;
    bool actualDir = false;     ///< architectural direction (true path)
    bool mispredicted = false;  ///< fetch-time final pred != actual
    Addr memAddr = invalidAddr;

    /** Position in the true-path dynamic stream (dependency naming). */
    std::uint64_t dynIdx = 0;
    /** CFG position of this instruction (wrong-path navigation seed). */
    CfgCursor fetchCursor{};

    Cycle fetchCycle = 0;
    Cycle doneCycle = 0;

    // Back-end bookkeeping.
    std::uint8_t depsOutstanding = 0;
    bool issued = false;
    bool completed = false;

    BranchRec br;  ///< valid only when cls == CondBranch

    bool isCond() const { return cls == InstClass::CondBranch; }
    bool isMem() const
    {
        return cls == InstClass::Load || cls == InstClass::Store;
    }
};

} // namespace lbp

#endif // LBP_CORE_DYN_INST_HH
