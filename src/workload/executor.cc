#include "workload/executor.hh"

#include "common/logging.hh"
#include "common/random.hh"

namespace lbp {

Executor::Executor(const Program &prog)
    : prog_(prog), state_(prog.totalStateWords, 0),
      streamPos_(prog.streams.size(), 0)
{
    lbp_assert(!prog.blocks.empty());
    for (const auto &br : prog.branches)
        br.behavior->reset(state_.data() + br.stateOffset);
}

Addr
Executor::streamAddr(const StaticInst &si)
{
    const MemStream &ms = prog_.streams[si.stream];
    const std::uint64_t k = streamPos_[si.stream]++;
    // footprint is asserted power-of-two at build time, so the wrap is a
    // mask — the % spelling costs a hardware divide per memory access.
    const std::uint64_t wrap = ms.footprint - 1;
    std::uint64_t offset;
    if (ms.randomized)
        offset = splitmix64(k ^ ms.seed) & wrap;
    else
        offset = (k * ms.stride) & wrap;
    return ms.base + (offset & ~static_cast<std::uint64_t>(7));
}

const DynInstDesc &
Executor::next()
{
    const StaticInst &si = cfgInst(prog_, cursor_);
    const BasicBlock &bb = prog_.blocks[cursor_.block];

    desc_.pc = si.pc;
    desc_.cls = si.cls;
    desc_.dep1 = si.dep1;
    desc_.dep2 = si.dep2;
    desc_.branchId = -1;
    desc_.taken = false;
    desc_.memAddr = invalidAddr;

    bool advance_taken = false;
    if (si.cls == InstClass::CondBranch) {
        lbp_assert(cfgAtTerminator(prog_, cursor_));
        const StaticBranch &br = prog_.branches[bb.branchId];
        const bool taken =
            br.behavior->next(state_.data() + br.stateOffset, ctx_);
        desc_.branchId = bb.branchId;
        desc_.taken = taken;
        advance_taken = taken;
        ctx_.globalHist = (ctx_.globalHist << 1) | (taken ? 1 : 0);
        ++condCount_;
    } else if (si.cls == InstClass::Jump) {
        desc_.taken = true;
        advance_taken = true;
    } else if (si.cls == InstClass::Load || si.cls == InstClass::Store) {
        desc_.memAddr = streamAddr(si);
    }

    cfgAdvance(prog_, cursor_, advance_taken);
    ++instCount_;
    return desc_;
}

} // namespace lbp
