/**
 * @file
 * The 202-workload evaluation suite.
 *
 * Stands in for the paper's proprietary trace list (Table 1): 7 categories
 * with the same workload counts — Server 29, HPC 8, ISPEC 34, FSPEC 64,
 * Multimedia 15, Business Productivity 16, Personal 36. Each workload is a
 * seeded synthetic program whose branch population follows the category
 * profile (loop trip ranges and entropy, if-then-else patterns, global
 * correlation, irreducible randomness, loop-body tightness, memory
 * footprint mix). Named standouts from the paper's S-curve discussion
 * (cloud-compression, tabletmark-email, sysmark-photoshop, eembc-dither)
 * are given matching profiles.
 */

#ifndef LBP_WORKLOAD_SUITE_HH
#define LBP_WORKLOAD_SUITE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workload/program.hh"

namespace lbp {

/** Parameter envelope for one workload category. */
struct CategoryProfile
{
    std::string name;
    unsigned count = 0;  ///< workloads in this category (Table 1)

    // Branch population (per-workload ranges; drawn uniformly).
    unsigned loopsMin = 8, loopsMax = 20;
    unsigned tripMin = 4, tripMax = 64;       ///< loop period range
    double tripEntropy = 0.25;    ///< prob. a loop has a 2nd period choice
    double forwardFrac = 0.3;     ///< loops realized as forward NNN..T
    unsigned patternsMin = 4, patternsMax = 12;
    unsigned correlatedMin = 6, correlatedMax = 18;
    unsigned randomMin = 4, randomMax = 14;
    unsigned randomBiasMin = 60, randomBiasMax = 400;  ///< permille

    // Structure.
    unsigned bodyMin = 3, bodyMax = 10;   ///< loop-body straight lengths
    double nestedNoiseFrac = 0.5;  ///< prob. a loop body embeds a diamond

    // Memory behaviour: footprint class weights (normalized internally).
    double l1Weight = 8, l2Weight = 2, llcWeight = 0.7, dramWeight = 0.25;
    unsigned streamsMin = 3, streamsMax = 6;

    // Instruction mix.
    double loadFrac = 0.22, storeFrac = 0.10, fpFrac = 0.04,
           mulFrac = 0.03;
    unsigned depDistMax = 14;

    /** Multiplier applied to all branch counts for thrash-style loads. */
    double branchScale = 1.0;
};

/** The seven paper categories with tuned profiles. */
const std::vector<CategoryProfile> &categoryProfiles();

/** Options controlling suite construction. */
struct SuiteOptions
{
    std::uint64_t seed = 0x5CA1AB1Eull;
    /** Cap on total workloads (0 = full 202). Benches honour
     *  REPRO_WORKLOADS via sim/env. Categories are subsampled
     *  proportionally so every category stays represented. */
    unsigned maxWorkloads = 0;
};

/** Build one workload of a category. */
Program buildWorkload(const CategoryProfile &profile, unsigned index,
                      std::uint64_t suite_seed);

/** Build the full (or capped) suite. */
std::vector<Program> buildSuite(const SuiteOptions &opts = {});

} // namespace lbp

#endif // LBP_WORKLOAD_SUITE_HH
