/**
 * @file
 * The architectural executor: produces the true-path dynamic instruction
 * stream of a Program, advancing the behaviour state machines, memory
 * stream counters, and the architectural global branch history.
 *
 * The executor never rolls back: the core's front-end only consumes from
 * it while fetch is on the true path, pauses consumption when fetch
 * diverges down a mispredicted edge, and resumes after the resteer. All
 * wrong-path instruction descriptors come from cfgAdvance() navigation
 * instead (see core/frontend).
 */

#ifndef LBP_WORKLOAD_EXECUTOR_HH
#define LBP_WORKLOAD_EXECUTOR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "workload/program.hh"

namespace lbp {

/** Fully-resolved dynamic instruction produced by the executor. */
struct DynInstDesc
{
    Addr pc = 0;
    InstClass cls = InstClass::Alu;
    std::uint8_t dep1 = 0;
    std::uint8_t dep2 = 0;
    int branchId = -1;    ///< static conditional branch id, or -1
    bool taken = false;   ///< actual direction (cond) / true (jump)
    Addr memAddr = invalidAddr;  ///< effective address for Load/Store
};

/**
 * Walks a Program along the architecturally-correct path.
 */
class Executor
{
  public:
    explicit Executor(const Program &prog);

    /** Produce the next true-path instruction and advance state. */
    const DynInstDesc &next();

    /** Position of the *next* instruction next() would return. */
    const CfgCursor &cursor() const { return cursor_; }

    /** Architectural global outcome history (bit 0 = most recent). */
    std::uint64_t globalHist() const { return ctx_.globalHist; }

    /** Instructions produced so far. */
    std::uint64_t instCount() const { return instCount_; }

    /** Conditional branches produced so far. */
    std::uint64_t condCount() const { return condCount_; }

    const Program &program() const { return prog_; }

  private:
    Addr streamAddr(const StaticInst &si);

    const Program &prog_;
    CfgCursor cursor_;
    std::vector<std::uint64_t> state_;
    std::vector<std::uint64_t> streamPos_;
    GlobalBranchCtx ctx_;
    DynInstDesc desc_;
    std::uint64_t instCount_ = 0;
    std::uint64_t condCount_ = 0;
};

} // namespace lbp

#endif // LBP_WORKLOAD_EXECUTOR_HH
