/**
 * @file
 * Branch behaviour models.
 *
 * A BranchBehavior is the architectural "ground truth" generator for one
 * static conditional branch. Behaviours are pure state machines over a
 * small number of 64-bit state words owned by the executor, so the whole
 * architectural branch state of a program is a flat, checkpointable
 * vector. Outcomes are computed only on the true path (wrong-path fetch
 * never executes branches; it only consumes predictions), mirroring real
 * hardware.
 *
 * The model zoo covers the branch populations the paper's workloads were
 * selected for (section 4): constant- and low-entropy-exit loops
 * (backward TTT..N), forward if-then-else exits (NNN..T), repeating
 * if-then-else patterns, branches correlated with global history (which
 * favour TAGE), and biased-random branches (irreducible entropy).
 */

#ifndef LBP_WORKLOAD_BEHAVIOR_HH
#define LBP_WORKLOAD_BEHAVIOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace lbp {

/** Read-only global context available to behaviours. */
struct GlobalBranchCtx
{
    /** Shift register of the most recent true-path outcomes (bit0 newest). */
    std::uint64_t globalHist = 0;
};

/**
 * Abstract architectural behaviour of one static conditional branch.
 */
class BranchBehavior
{
  public:
    virtual ~BranchBehavior() = default;

    /** Number of 64-bit state words this behaviour owns. */
    virtual unsigned stateWords() const = 0;

    /** Initialize the state words at program start. */
    virtual void reset(std::uint64_t *state) const = 0;

    /** Compute the next outcome and advance the state. */
    virtual bool next(std::uint64_t *state,
                      const GlobalBranchCtx &ctx) const = 0;

    /** Human-readable description for workload census output. */
    virtual std::string describe() const = 0;
};

/**
 * Loop-exit behaviour: a run of the dominant direction terminated by one
 * occurrence of the opposite direction.
 *
 * With dominantTaken == true this is a classic backward loop branch
 * (TTT...N); with false it is a forward periodic exit (NNN...T), the
 * if-then-else extension the CBP-2016 loop predictor covers.
 *
 * The period (total executions per run, i.e. trip count) is drawn from a
 * small weighted set each time a run completes, which models constant
 * loops (one choice) and low-entropy exits (two or more choices).
 */
class LoopExitBehavior : public BranchBehavior
{
  public:
    struct PeriodChoice
    {
        std::uint32_t period;  ///< executions per run, >= 2
        std::uint32_t weight;  ///< relative selection weight
    };

    LoopExitBehavior(bool dominant_taken,
                     std::vector<PeriodChoice> choices,
                     std::uint64_t seed);

    unsigned stateWords() const override { return 2; }
    void reset(std::uint64_t *state) const override;
    bool next(std::uint64_t *state, const GlobalBranchCtx &ctx)
        const override;
    std::string describe() const override;

    bool dominantTaken() const { return dominantTaken_; }

    /** Period currently in effect (test/inspection helper). */
    static std::uint32_t currentPeriod(const std::uint64_t *state);

  private:
    std::uint32_t drawPeriod(std::uint64_t &lfsr_state) const;

    bool dominantTaken_;
    std::vector<PeriodChoice> choices_;
    std::uint32_t totalWeight_;
    std::uint64_t seed_;
};

/**
 * Fixed repeating direction pattern of period <= 64 (e.g. TNTN, TTNTTN):
 * the classic two-level-local-predictable if-then-else shapes.
 */
class PatternBehavior : public BranchBehavior
{
  public:
    PatternBehavior(std::uint64_t pattern, unsigned period);

    unsigned stateWords() const override { return 1; }
    void reset(std::uint64_t *state) const override;
    bool next(std::uint64_t *state, const GlobalBranchCtx &ctx)
        const override;
    std::string describe() const override;

    unsigned period() const { return period_; }

  private:
    std::uint64_t pattern_;
    unsigned period_;
};

/**
 * Outcome correlated with recent global history: parity of the selected
 * history bits, with optional noise. These branches are TAGE's bread and
 * butter and are essentially invisible to a local predictor, so they set
 * the baseline accuracy and generate the mispredictions that trigger
 * repair events.
 */
class CorrelatedBehavior : public BranchBehavior
{
  public:
    CorrelatedBehavior(std::uint64_t history_mask, bool invert,
                       std::uint32_t noise_permille, std::uint64_t seed);

    unsigned stateWords() const override { return 1; }
    void reset(std::uint64_t *state) const override;
    bool next(std::uint64_t *state, const GlobalBranchCtx &ctx)
        const override;
    std::string describe() const override;

  private:
    std::uint64_t mask_;
    bool invert_;
    std::uint32_t noisePermille_;
    std::uint64_t seed_;
};

/**
 * Biased random branch: taken with a fixed probability, irreducible by
 * any predictor. Provides the entropy floor the paper mentions ("not all
 * of these gains are attainable due to cold branch misses and data
 * entropy").
 */
class BiasedRandomBehavior : public BranchBehavior
{
  public:
    BiasedRandomBehavior(std::uint32_t taken_permille, std::uint64_t seed);

    unsigned stateWords() const override { return 1; }
    void reset(std::uint64_t *state) const override;
    bool next(std::uint64_t *state, const GlobalBranchCtx &ctx)
        const override;
    std::string describe() const override;

  private:
    std::uint32_t takenPermille_;
    std::uint64_t seed_;
};

/** Owning pointer alias for behaviours. */
using BehaviorPtr = std::unique_ptr<BranchBehavior>;

} // namespace lbp

#endif // LBP_WORKLOAD_BEHAVIOR_HH
