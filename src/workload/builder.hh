/**
 * @file
 * Structured CFG construction: segments (straight code, loops, diamonds)
 * composed into a Program wrapped in an infinite outer loop.
 */

#ifndef LBP_WORKLOAD_BUILDER_HH
#define LBP_WORKLOAD_BUILDER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workload/program.hh"

namespace lbp {

/**
 * A segment tree node. Segments are built bottom-up by the workload
 * generator and lowered to basic blocks by ProgramBuilder::build().
 */
struct Seg
{
    enum class Kind { Straight, Loop, Diamond };

    Kind kind = Kind::Straight;
    unsigned numInstrs = 0;           ///< Straight: filler length
    BehaviorPtr behavior;             ///< Loop/Diamond: branch behaviour
    bool continueOnTaken = true;      ///< Loop: which edge stays in loop
    std::vector<Seg> body;            ///< Loop body / Diamond then-arm
    std::vector<Seg> elseBody;        ///< Diamond else-arm

    static Seg straight(unsigned n);
    static Seg loop(BehaviorPtr b, bool continue_on_taken,
                    std::vector<Seg> body);
    static Seg diamond(BehaviorPtr b, std::vector<Seg> then_arm,
                       std::vector<Seg> else_arm);
};

/**
 * Lowers a segment tree into a validated Program.
 */
class ProgramBuilder
{
  public:
    /** Instruction-mix knobs for filler instruction synthesis. */
    struct Mix
    {
        double loadFrac = 0.22;
        double storeFrac = 0.10;
        double fpFrac = 0.05;
        double mulFrac = 0.03;
        unsigned depDistMax = 14; ///< max producer distance
        double depNoneFrac = 0.45; ///< fraction of instrs with no deps
    };

    ProgramBuilder(std::string name, std::string category,
                   std::uint64_t seed);

    void setMix(const Mix &mix) { mix_ = mix; }

    /** Register a memory stream; returns its index. */
    unsigned addStream(const MemStream &ms);

    /** Stream that feeds data-dependent branches (default: none). */
    void setBranchStream(unsigned idx) { branchStream_ = static_cast<int>(idx); }

    /**
     * Lower the top-level segment list into a Program. The sequence is
     * wrapped in an infinite loop (unconditional back-jump) so execution
     * never runs off the end.
     */
    Program build(std::vector<Seg> top_level);

  private:
    std::uint32_t newBlock();
    std::uint32_t emitSeq(std::vector<Seg> &segs, std::uint32_t exit_to);
    std::uint32_t emitSeg(Seg &seg, std::uint32_t exit_to);
    void fillBody(std::uint32_t block_idx, unsigned n_instrs);
    int addBranch(std::uint32_t block_idx, BehaviorPtr behavior);
    void assignAddresses();

    std::string name_;
    std::string category_;
    int branchStream_ = -1;
    std::uint64_t seed_;
    Mix mix_;
    Program prog_;
    unsigned fillCounter_ = 0;
};

} // namespace lbp

#endif // LBP_WORKLOAD_BUILDER_HH
