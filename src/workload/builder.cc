#include "workload/builder.hh"

#include <utility>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/set_assoc.hh"

namespace lbp {

Seg
Seg::straight(unsigned n)
{
    Seg s;
    s.kind = Kind::Straight;
    s.numInstrs = n;
    return s;
}

Seg
Seg::loop(BehaviorPtr b, bool continue_on_taken, std::vector<Seg> body)
{
    Seg s;
    s.kind = Kind::Loop;
    s.behavior = std::move(b);
    s.continueOnTaken = continue_on_taken;
    s.body = std::move(body);
    return s;
}

Seg
Seg::diamond(BehaviorPtr b, std::vector<Seg> then_arm,
             std::vector<Seg> else_arm)
{
    Seg s;
    s.kind = Kind::Diamond;
    s.behavior = std::move(b);
    s.body = std::move(then_arm);
    s.elseBody = std::move(else_arm);
    return s;
}

ProgramBuilder::ProgramBuilder(std::string name, std::string category,
                               std::uint64_t seed)
    : name_(std::move(name)), category_(std::move(category)), seed_(seed)
{
    prog_.name = name_;
    prog_.category = category_;
}

unsigned
ProgramBuilder::addStream(const MemStream &ms)
{
    lbp_assert(isPowerOf2(ms.footprint));
    prog_.streams.push_back(ms);
    return static_cast<unsigned>(prog_.streams.size() - 1);
}

std::uint32_t
ProgramBuilder::newBlock()
{
    prog_.blocks.emplace_back();
    return static_cast<std::uint32_t>(prog_.blocks.size() - 1);
}

void
ProgramBuilder::fillBody(std::uint32_t block_idx, unsigned n_instrs)
{
    for (unsigned i = 0; i < n_instrs; ++i) {
        const std::uint64_t h =
            hashCombine(seed_, 0x11e57ull + fillCounter_++);
        StaticInst si;
        const double roll =
            static_cast<double>(h & 0xffff) / 65536.0;
        if (!prog_.streams.empty() && roll < mix_.loadFrac) {
            si.cls = InstClass::Load;
            si.stream = static_cast<std::uint8_t>(
                (h >> 16) % prog_.streams.size());
        } else if (!prog_.streams.empty() &&
                   roll < mix_.loadFrac + mix_.storeFrac) {
            si.cls = InstClass::Store;
            si.stream = static_cast<std::uint8_t>(
                (h >> 16) % prog_.streams.size());
        } else if (roll < mix_.loadFrac + mix_.storeFrac + mix_.fpFrac) {
            si.cls = InstClass::FpOp;
        } else if (roll <
                   mix_.loadFrac + mix_.storeFrac + mix_.fpFrac +
                       mix_.mulFrac) {
            si.cls = InstClass::Mul;
        } else {
            si.cls = InstClass::Alu;
        }
        // Producer distances: a fraction of instructions are independent;
        // the rest depend on one or two recent results.
        const std::uint64_t h2 = splitmix64(h);
        if (static_cast<double>(h2 & 0xffff) / 65536.0 >=
            mix_.depNoneFrac) {
            si.dep1 = static_cast<std::uint8_t>(
                1 + ((h2 >> 16) % mix_.depDistMax));
            if (((h2 >> 40) & 3) == 0) {
                si.dep2 = static_cast<std::uint8_t>(
                    1 + ((h2 >> 24) % mix_.depDistMax));
            }
        }
        prog_.blocks[block_idx].body.push_back(si);
    }
}

int
ProgramBuilder::addBranch(std::uint32_t block_idx, BehaviorPtr behavior)
{
    lbp_assert(behavior != nullptr);
    StaticBranch br;
    br.blockIdx = block_idx;
    br.stateOffset = prog_.totalStateWords;
    prog_.totalStateWords += behavior->stateWords();
    br.behavior = std::move(behavior);
    prog_.branches.push_back(std::move(br));

    // A good fraction of real conditional branches compare a loaded
    // value, so their resolution waits on the memory hierarchy; the
    // rest feed off nearby ALU results.
    const std::uint64_t h =
        hashCombine(seed_, 0xb4a2c0ull + prog_.branches.size());
    if (!prog_.streams.empty() && (h & 0xff) < 0x80) {  // ~50%
        StaticInst feed;
        feed.cls = InstClass::Load;
        // Data-dependent branches compare values the prefetcher cannot
        // stage (pointer-chasing style), so their resolution genuinely
        // waits on the hierarchy.
        if (branchStream_ >= 0 && ((h >> 8) % 6) == 0) {
            feed.stream = static_cast<std::uint8_t>(branchStream_);
        } else {
            feed.stream = static_cast<std::uint8_t>(
                (h >> 9) % prog_.streams.size());
        }
        prog_.blocks[block_idx].body.push_back(feed);
        StaticInst term;
        term.cls = InstClass::CondBranch;
        term.dep1 = 1;
        prog_.blocks[block_idx].body.push_back(term);
    } else {
        StaticInst term;
        term.cls = InstClass::CondBranch;
        term.dep1 = static_cast<std::uint8_t>(1 + (h % 3));
        prog_.blocks[block_idx].body.push_back(term);
    }
    prog_.blocks[block_idx].branchId =
        static_cast<int>(prog_.branches.size() - 1);
    return prog_.blocks[block_idx].branchId;
}

std::uint32_t
ProgramBuilder::emitSeq(std::vector<Seg> &segs, std::uint32_t exit_to)
{
    std::uint32_t entry = exit_to;
    for (auto it = segs.rbegin(); it != segs.rend(); ++it)
        entry = emitSeg(*it, entry);
    return entry;
}

std::uint32_t
ProgramBuilder::emitSeg(Seg &seg, std::uint32_t exit_to)
{
    switch (seg.kind) {
      case Seg::Kind::Straight: {
        const std::uint32_t idx = newBlock();
        fillBody(idx, std::max(1u, seg.numInstrs));
        prog_.blocks[idx].fallThrough = exit_to;
        return idx;
      }
      case Seg::Kind::Loop: {
        // Bottom-of-loop branch block; body flows into it, and its
        // "continue" edge re-enters the body.
        const std::uint32_t br_block = newBlock();
        fillBody(br_block, 2);
        addBranch(br_block, std::move(seg.behavior));
        const std::uint32_t body_entry = emitSeq(seg.body, br_block);
        if (seg.continueOnTaken) {
            prog_.blocks[br_block].takenTarget = body_entry;
            prog_.blocks[br_block].fallThrough = exit_to;
        } else {
            prog_.blocks[br_block].takenTarget = exit_to;
            prog_.blocks[br_block].fallThrough = body_entry;
        }
        return body_entry;
      }
      case Seg::Kind::Diamond: {
        const std::uint32_t br_block = newBlock();
        fillBody(br_block, 2);
        addBranch(br_block, std::move(seg.behavior));
        const std::uint32_t then_entry = emitSeq(seg.body, exit_to);
        const std::uint32_t else_entry = emitSeq(seg.elseBody, exit_to);
        prog_.blocks[br_block].takenTarget = then_entry;
        prog_.blocks[br_block].fallThrough = else_entry;
        return br_block;
      }
    }
    lbp_panic("unreachable segment kind");
}

void
ProgramBuilder::assignAddresses()
{
    Addr pc = 0x400000;
    for (auto &bb : prog_.blocks) {
        for (auto &si : bb.body) {
            si.pc = pc;
            pc += 4;
        }
        // Leave a gap between blocks so taken targets look like real
        // discontinuities to the BTB and I-cache.
        pc += 4;
    }
    for (auto &br : prog_.branches)
        br.pc = prog_.blocks[br.blockIdx].body.back().pc;
}

Program
ProgramBuilder::build(std::vector<Seg> top_level)
{
    lbp_assert(prog_.blocks.empty());

    // Block 0: entry stub the back-jump returns to.
    const std::uint32_t entry_stub = newBlock();
    fillBody(entry_stub, 1);

    // Back-jump block closing the infinite outer loop.
    const std::uint32_t back_jump = newBlock();
    fillBody(back_jump, 1);
    StaticInst jmp;
    jmp.cls = InstClass::Jump;
    prog_.blocks[back_jump].body.push_back(jmp);
    prog_.blocks[back_jump].endsWithJump = true;
    prog_.blocks[back_jump].takenTarget = entry_stub;

    const std::uint32_t seq_entry = emitSeq(top_level, back_jump);
    prog_.blocks[entry_stub].fallThrough = seq_entry;

    assignAddresses();
    prog_.validate();
    return std::move(prog_);
}

} // namespace lbp
