/**
 * @file
 * Static program representation: a control-flow graph of basic blocks with
 * attached branch behaviours and memory stream models.
 *
 * Workloads are *programs*, not linear traces. This is deliberate: the
 * paper's subject is what happens to local-predictor state while the
 * front-end runs down mispredicted (wrong) paths, and a CFG gives the
 * wrong path a well-defined instruction stream (follow the other edge),
 * which a recorded trace cannot.
 */

#ifndef LBP_WORKLOAD_PROGRAM_HH
#define LBP_WORKLOAD_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "workload/behavior.hh"

namespace lbp {

/** One static instruction slot inside a basic block. */
struct StaticInst
{
    Addr pc = 0;
    InstClass cls = InstClass::Alu;
    /**
     * Producer distances in dynamic instructions (0 = no dependency).
     * Distance d means "depends on the d-th most recent instruction".
     */
    std::uint8_t dep1 = 0;
    std::uint8_t dep2 = 0;
    /** Memory stream index for Load/Store instructions. */
    std::uint8_t stream = 0;
};

/**
 * A basic block: straight-line instructions, optionally terminated by a
 * conditional branch (branchId >= 0) or an unconditional jump.
 *
 * When terminated by a conditional branch, the branch is the last element
 * of body. Successors: takenTarget on taken, fallThrough otherwise. A
 * block with no terminator falls through unconditionally.
 */
struct BasicBlock
{
    std::vector<StaticInst> body;
    int branchId = -1;
    bool endsWithJump = false;
    std::uint32_t takenTarget = 0;
    std::uint32_t fallThrough = 0;
};

/** A static conditional branch site. */
struct StaticBranch
{
    Addr pc = 0;
    std::uint32_t blockIdx = 0;
    unsigned stateOffset = 0;  ///< slice start in the executor state vector
    BehaviorPtr behavior;
};

/** A synthetic memory reference stream. */
struct MemStream
{
    Addr base = 0;
    std::uint32_t stride = 8;
    std::uint32_t footprint = 4096;  ///< bytes, power of two
    bool randomized = false;         ///< random offsets within footprint
    std::uint64_t seed = 0;
};

/** Census of branch behaviour kinds, for workload reporting (Table 1). */
struct BranchCensus
{
    unsigned loops = 0;         ///< backward TTT..N exits
    unsigned forwardExits = 0;  ///< forward NNN..T exits
    unsigned patterns = 0;
    unsigned correlated = 0;
    unsigned random = 0;
};

/**
 * A complete synthetic program. Execution starts at block 0 and never
 * terminates (the builder wraps everything in an infinite outer loop), so
 * any instruction budget can be simulated.
 */
class Program
{
  public:
    std::string name;
    std::string category;

    std::vector<BasicBlock> blocks;
    std::vector<StaticBranch> branches;
    std::vector<MemStream> streams;
    unsigned totalStateWords = 0;

    /** Number of conditional branch sites. */
    unsigned numCondBranches() const
    {
        return static_cast<unsigned>(branches.size());
    }

    /** Count behaviour kinds for reporting. */
    BranchCensus census() const;

    /**
     * Structural validation: every successor index in range, every block
     * non-empty or pure-fallthrough, branch back-pointers consistent,
     * state offsets contiguous. Panics on violation (builder bug).
     */
    void validate() const;

    /** Total static instruction count across blocks. */
    std::size_t staticInstCount() const;
};

/**
 * Lightweight CFG position used by both the architectural executor and
 * the front-end's wrong-path navigation.
 */
struct CfgCursor
{
    std::uint32_t block = 0;
    std::uint32_t slot = 0;

    bool operator==(const CfgCursor &) const = default;
};

/**
 * Advance @p cur past the instruction it points at.
 *
 * For the block terminator the caller supplies the branch direction
 * (predicted on the wrong path, actual on the true path); for plain
 * instructions the direction argument is ignored.
 */
inline void
cfgAdvance(const Program &prog, CfgCursor &cur, bool taken)
{
    const BasicBlock &bb = prog.blocks[cur.block];
    if (cur.slot + 1 < bb.body.size()) {
        ++cur.slot;
        return;
    }
    // Past the last instruction of the block: follow the terminator.
    if (bb.branchId >= 0)
        cur.block = taken ? bb.takenTarget : bb.fallThrough;
    else if (bb.endsWithJump)
        cur.block = bb.takenTarget;
    else
        cur.block = bb.fallThrough;
    cur.slot = 0;
}

/** The static instruction under the cursor. */
inline const StaticInst &
cfgInst(const Program &prog, const CfgCursor &cur)
{
    return prog.blocks[cur.block].body[cur.slot];
}

/** True when the cursor points at the block's terminating instruction. */
inline bool
cfgAtTerminator(const Program &prog, const CfgCursor &cur)
{
    const BasicBlock &bb = prog.blocks[cur.block];
    return (bb.branchId >= 0 || bb.endsWithJump) &&
           cur.slot + 1 == bb.body.size();
}

} // namespace lbp

#endif // LBP_WORKLOAD_PROGRAM_HH
