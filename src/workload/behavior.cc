#include "workload/behavior.hh"

#include <numeric>

#include "common/logging.hh"
#include "common/random.hh"

namespace lbp {

// ---------------------------------------------------------------------
// LoopExitBehavior
// ---------------------------------------------------------------------

// State layout:
//   word0: bits [31:0] executions so far in the current run,
//          bits [63:32] period of the current run.
//   word1: LFSR state for period selection.

LoopExitBehavior::LoopExitBehavior(bool dominant_taken,
                                   std::vector<PeriodChoice> choices,
                                   std::uint64_t seed)
    : dominantTaken_(dominant_taken), choices_(std::move(choices)),
      totalWeight_(0), seed_(seed)
{
    lbp_assert(!choices_.empty());
    for (const auto &c : choices_) {
        lbp_assert(c.period >= 2);
        lbp_assert(c.weight >= 1);
        totalWeight_ += c.weight;
    }
}

std::uint32_t
LoopExitBehavior::drawPeriod(std::uint64_t &lfsr_state) const
{
    if (choices_.size() == 1)
        return choices_.front().period;
    const std::uint32_t pick = Lfsr16::step(lfsr_state) % totalWeight_;
    std::uint32_t acc = 0;
    for (const auto &c : choices_) {
        acc += c.weight;
        if (pick < acc)
            return c.period;
    }
    return choices_.back().period;
}

void
LoopExitBehavior::reset(std::uint64_t *state) const
{
    state[1] = splitmix64(seed_) | 1;
    const std::uint32_t period = drawPeriod(state[1]);
    state[0] = static_cast<std::uint64_t>(period) << 32;
}

bool
LoopExitBehavior::next(std::uint64_t *state, const GlobalBranchCtx &) const
{
    std::uint32_t iter = static_cast<std::uint32_t>(state[0]);
    std::uint32_t period = static_cast<std::uint32_t>(state[0] >> 32);
    ++iter;
    bool dominant;
    if (iter < period) {
        dominant = true;
    } else {
        dominant = false;
        iter = 0;
        period = drawPeriod(state[1]);
    }
    state[0] = (static_cast<std::uint64_t>(period) << 32) | iter;
    return dominant ? dominantTaken_ : !dominantTaken_;
}

std::uint32_t
LoopExitBehavior::currentPeriod(const std::uint64_t *state)
{
    return static_cast<std::uint32_t>(state[0] >> 32);
}

std::string
LoopExitBehavior::describe() const
{
    std::string s = dominantTaken_ ? "loop(T" : "fwd-exit(N";
    for (const auto &c : choices_)
        s += "," + std::to_string(c.period);
    return s + ")";
}

// ---------------------------------------------------------------------
// PatternBehavior
// ---------------------------------------------------------------------

PatternBehavior::PatternBehavior(std::uint64_t pattern, unsigned period)
    : pattern_(pattern), period_(period)
{
    lbp_assert(period >= 1 && period <= 64);
}

void
PatternBehavior::reset(std::uint64_t *state) const
{
    state[0] = 0;
}

bool
PatternBehavior::next(std::uint64_t *state, const GlobalBranchCtx &) const
{
    const unsigned idx = static_cast<unsigned>(state[0]);
    state[0] = (idx + 1) % period_;
    return (pattern_ >> idx) & 1;
}

std::string
PatternBehavior::describe() const
{
    std::string s = "pattern(";
    for (unsigned i = 0; i < period_; ++i)
        s += ((pattern_ >> i) & 1) ? 'T' : 'N';
    return s + ")";
}

// ---------------------------------------------------------------------
// CorrelatedBehavior
// ---------------------------------------------------------------------

CorrelatedBehavior::CorrelatedBehavior(std::uint64_t history_mask,
                                       bool invert,
                                       std::uint32_t noise_permille,
                                       std::uint64_t seed)
    : mask_(history_mask), invert_(invert), noisePermille_(noise_permille),
      seed_(seed)
{
    lbp_assert(noise_permille <= 1000);
}

void
CorrelatedBehavior::reset(std::uint64_t *state) const
{
    state[0] = splitmix64(seed_ ^ 0xc0de) | 1;
}

bool
CorrelatedBehavior::next(std::uint64_t *state,
                         const GlobalBranchCtx &ctx) const
{
    bool out = (__builtin_popcountll(ctx.globalHist & mask_) & 1) != 0;
    if (invert_)
        out = !out;
    if (noisePermille_ &&
        Lfsr16::step(state[0]) % 1000 < noisePermille_) {
        out = !out;
    }
    return out;
}

std::string
CorrelatedBehavior::describe() const
{
    return "correlated(mask=" + std::to_string(mask_) +
           ",noise=" + std::to_string(noisePermille_) + ")";
}

// ---------------------------------------------------------------------
// BiasedRandomBehavior
// ---------------------------------------------------------------------

BiasedRandomBehavior::BiasedRandomBehavior(std::uint32_t taken_permille,
                                           std::uint64_t seed)
    : takenPermille_(taken_permille), seed_(seed)
{
    lbp_assert(taken_permille <= 1000);
}

void
BiasedRandomBehavior::reset(std::uint64_t *state) const
{
    state[0] = splitmix64(seed_ ^ 0xbead) | 1;
}

bool
BiasedRandomBehavior::next(std::uint64_t *state,
                           const GlobalBranchCtx &) const
{
    return Lfsr16::step(state[0]) % 1000 < takenPermille_;
}

std::string
BiasedRandomBehavior::describe() const
{
    return "random(p=" + std::to_string(takenPermille_) + "/1000)";
}

} // namespace lbp
