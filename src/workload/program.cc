#include "workload/program.hh"

#include <typeinfo>

#include "common/logging.hh"

namespace lbp {

BranchCensus
Program::census() const
{
    BranchCensus c;
    for (const auto &br : branches) {
        const BranchBehavior *b = br.behavior.get();
        if (auto *loop = dynamic_cast<const LoopExitBehavior *>(b)) {
            if (loop->dominantTaken())
                ++c.loops;
            else
                ++c.forwardExits;
        } else if (dynamic_cast<const PatternBehavior *>(b)) {
            ++c.patterns;
        } else if (dynamic_cast<const CorrelatedBehavior *>(b)) {
            ++c.correlated;
        } else {
            ++c.random;
        }
    }
    return c;
}

std::size_t
Program::staticInstCount() const
{
    std::size_t n = 0;
    for (const auto &bb : blocks)
        n += bb.body.size();
    return n;
}

void
Program::validate() const
{
    lbp_assert(!blocks.empty());
    unsigned expected_offset = 0;
    for (std::size_t i = 0; i < branches.size(); ++i) {
        const StaticBranch &br = branches[i];
        lbp_assert(br.behavior != nullptr);
        lbp_assert(br.blockIdx < blocks.size());
        const BasicBlock &bb = blocks[br.blockIdx];
        lbp_assert(bb.branchId == static_cast<int>(i));
        lbp_assert(!bb.body.empty());
        lbp_assert(bb.body.back().cls == InstClass::CondBranch);
        lbp_assert(bb.body.back().pc == br.pc);
        lbp_assert(br.stateOffset == expected_offset);
        expected_offset += br.behavior->stateWords();
    }
    lbp_assert(expected_offset == totalStateWords);

    for (const auto &bb : blocks) {
        lbp_assert(!bb.body.empty());
        lbp_assert(bb.fallThrough < blocks.size());
        if (bb.branchId >= 0 || bb.endsWithJump)
            lbp_assert(bb.takenTarget < blocks.size());
        lbp_assert(!(bb.branchId >= 0 && bb.endsWithJump));
        if (bb.endsWithJump)
            lbp_assert(bb.body.back().cls == InstClass::Jump);
        for (const auto &si : bb.body) {
            if (si.cls == InstClass::Load || si.cls == InstClass::Store)
                lbp_assert(si.stream < streams.size());
        }
    }
}

} // namespace lbp
