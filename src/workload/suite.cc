#include "workload/suite.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "common/random.hh"
#include "workload/builder.hh"

namespace lbp {

namespace {

/** Names the paper calls out on the S-curve, mapped to suite slots. */
struct NamedSlot
{
    const char *category;
    unsigned index;
    const char *name;
};

constexpr NamedSlot namedSlots[] = {
    {"Server", 0, "cloud-compression"},
    {"Personal", 0, "tabletmark-email"},
    {"BP", 0, "sysmark-photoshop"},
    {"Personal", 1, "eembc-dither"},
    {"Server", 1, "spark-streaming"},
    {"Server", 2, "cassandra-txn"},
    {"HPC", 0, "hplinpack"},
    {"HPC", 1, "fft-radix"},
    {"MM", 0, "video-convert"},
    {"BP", 1, "pdf-edit"},
};

const char *
slotName(const std::string &category, unsigned index)
{
    for (const auto &slot : namedSlots)
        if (category == slot.category && index == slot.index)
            return slot.name;
    return nullptr;
}

/** Random pattern of the given period with both directions present. */
std::uint64_t
mixedPattern(Xoshiro256ss &rng, unsigned period)
{
    const std::uint64_t mask =
        period == 64 ? ~0ull : ((1ull << period) - 1);
    std::uint64_t p = rng.next() & mask;
    if (p == 0)
        p = 1;
    if (p == mask)
        p = mask >> 1;
    return p;
}

MemStream
makeStream(Xoshiro256ss &rng, const CategoryProfile &prof, unsigned idx)
{
    MemStream ms;
    const double total = prof.l1Weight + prof.l2Weight + prof.llcWeight +
                         prof.dramWeight;
    const double roll = rng.real() * total;
    if (roll < prof.l1Weight) {
        ms.footprint = 8u << 10;
    } else if (roll < prof.l1Weight + prof.l2Weight) {
        ms.footprint = 128u << 10;
    } else if (roll < prof.l1Weight + prof.l2Weight + prof.llcWeight) {
        ms.footprint = 2u << 20;
    } else {
        ms.footprint = 32u << 20;
        ms.randomized = rng.chance(0.25);
    }
    ms.stride = 8u * static_cast<std::uint32_t>(rng.range(1, 8));
    ms.randomized = ms.randomized || rng.chance(0.06);
    ms.base = static_cast<Addr>(idx + 1) << 26;
    ms.seed = rng.next();
    return ms;
}

} // namespace

const std::vector<CategoryProfile> &
categoryProfiles()
{
    static const std::vector<CategoryProfile> profiles = [] {
        std::vector<CategoryProfile> v;

        CategoryProfile server;
        server.name = "Server";
        server.count = 29;
        server.loopsMin = 12; server.loopsMax = 24;
        server.tripMin = 8; server.tripMax = 40;
        server.tripEntropy = 0.20;
        server.forwardFrac = 0.40;
        server.patternsMin = 8; server.patternsMax = 18;
        server.correlatedMin = 14; server.correlatedMax = 32;
        server.randomMin = 10; server.randomMax = 24;
        server.randomBiasMin = 40; server.randomBiasMax = 260;
        server.bodyMin = 6; server.bodyMax = 16;
        server.nestedNoiseFrac = 0.80;
        server.l1Weight = 6; server.l2Weight = 2;
        server.llcWeight = 1.2; server.dramWeight = 0.5;
        server.streamsMin = 4; server.streamsMax = 7;
        server.loadFrac = 0.25; server.storeFrac = 0.11;
        server.fpFrac = 0.01; server.mulFrac = 0.03;
        v.push_back(server);

        CategoryProfile hpc;
        hpc.name = "HPC";
        hpc.count = 8;
        hpc.loopsMin = 6; hpc.loopsMax = 13;
        hpc.tripMin = 16; hpc.tripMax = 80;
        hpc.tripEntropy = 0.10;
        hpc.forwardFrac = 0.15;
        hpc.patternsMin = 2; hpc.patternsMax = 6;
        hpc.correlatedMin = 4; hpc.correlatedMax = 10;
        hpc.randomMin = 2; hpc.randomMax = 7;
        hpc.randomBiasMin = 40; hpc.randomBiasMax = 240;
        hpc.bodyMin = 10; hpc.bodyMax = 30;
        hpc.nestedNoiseFrac = 0.70;
        hpc.l1Weight = 6; hpc.l2Weight = 2;
        hpc.llcWeight = 1.0; hpc.dramWeight = 0.6;
        hpc.streamsMin = 4; hpc.streamsMax = 8;
        hpc.loadFrac = 0.28; hpc.storeFrac = 0.10;
        hpc.fpFrac = 0.20; hpc.mulFrac = 0.04;
        v.push_back(hpc);

        CategoryProfile ispec;
        ispec.name = "ISPEC";
        ispec.count = 34;
        ispec.loopsMin = 8; ispec.loopsMax = 20;
        ispec.tripMin = 6; ispec.tripMax = 36;
        ispec.tripEntropy = 0.18;
        ispec.forwardFrac = 0.35;
        ispec.patternsMin = 6; ispec.patternsMax = 14;
        ispec.correlatedMin = 10; ispec.correlatedMax = 22;
        ispec.randomMin = 6; ispec.randomMax = 15;
        ispec.randomBiasMin = 40; ispec.randomBiasMax = 240;
        ispec.bodyMin = 5; ispec.bodyMax = 14;
        ispec.nestedNoiseFrac = 0.80;
        v.push_back(ispec);

        CategoryProfile fspec;
        fspec.name = "FSPEC";
        fspec.count = 64;
        fspec.loopsMin = 9; fspec.loopsMax = 20;
        fspec.tripMin = 12; fspec.tripMax = 64;
        fspec.tripEntropy = 0.06;
        fspec.forwardFrac = 0.15;
        fspec.patternsMin = 2; fspec.patternsMax = 8;
        fspec.correlatedMin = 5; fspec.correlatedMax = 12;
        fspec.randomMin = 2; fspec.randomMax = 7;
        fspec.randomBiasMin = 30; fspec.randomBiasMax = 200;
        fspec.bodyMin = 8; fspec.bodyMax = 24;
        fspec.nestedNoiseFrac = 0.55;
        fspec.fpFrac = 0.24; fspec.loadFrac = 0.26;
        v.push_back(fspec);

        CategoryProfile mm;
        mm.name = "MM";
        mm.count = 15;
        mm.loopsMin = 8; mm.loopsMax = 17;
        mm.tripMin = 4; mm.tripMax = 16;
        mm.tripEntropy = 0.25;
        mm.forwardFrac = 0.30;
        mm.patternsMin = 4; mm.patternsMax = 10;
        mm.correlatedMin = 6; mm.correlatedMax = 14;
        mm.randomMin = 8; mm.randomMax = 18;
        mm.randomBiasMin = 80; mm.randomBiasMax = 320;
        mm.bodyMin = 3; mm.bodyMax = 8;
        mm.nestedNoiseFrac = 0.85;
        mm.fpFrac = 0.10;
        v.push_back(mm);

        CategoryProfile bp;
        bp.name = "BP";
        bp.count = 16;
        bp.loopsMin = 8; bp.loopsMax = 19;
        bp.tripMin = 3; bp.tripMax = 10;
        bp.tripEntropy = 0.28;
        bp.forwardFrac = 0.45;
        bp.patternsMin = 6; bp.patternsMax = 15;
        bp.correlatedMin = 8; bp.correlatedMax = 18;
        bp.randomMin = 10; bp.randomMax = 22;
        bp.randomBiasMin = 80; bp.randomBiasMax = 320;
        bp.bodyMin = 3; bp.bodyMax = 7;
        bp.nestedNoiseFrac = 0.85;
        v.push_back(bp);

        CategoryProfile personal;
        personal.name = "Personal";
        personal.count = 36;
        personal.loopsMin = 7; personal.loopsMax = 22;
        personal.tripMin = 6; personal.tripMax = 40;
        personal.tripEntropy = 0.20;
        personal.forwardFrac = 0.35;
        personal.patternsMin = 4; personal.patternsMax = 12;
        personal.correlatedMin = 6; personal.correlatedMax = 17;
        personal.randomMin = 4; personal.randomMax = 16;
        personal.randomBiasMin = 40; personal.randomBiasMax = 260;
        personal.bodyMin = 5; personal.bodyMax = 14;
        personal.nestedNoiseFrac = 0.75;
        v.push_back(personal);

        return v;
    }();
    return profiles;
}

Program
buildWorkload(const CategoryProfile &profile, unsigned index,
              std::uint64_t suite_seed)
{
    // Per-workload parameter resolution.
    CategoryProfile prof = profile;
    const std::uint64_t wl_seed = hashCombine(
        suite_seed, hashCombine(splitmix64(profile.name.size() * 1315423911u ^
                                           profile.name.front() ^
                                           (profile.name.back() << 8)),
                                index));
    Xoshiro256ss rng(wl_seed);

    std::string name = profile.name + "-";
    if (index < 10)
        name += "0";
    name += std::to_string(index);

    if (const char *special = slotName(profile.name, index)) {
        name = special;
        const std::string sp(special);
        if (sp == "cloud-compression" || sp == "tabletmark-email") {
            // Very loop-predictor-sensitive: long constant trips TAGE
            // cannot span, little irreducible noise.
            prof.loopsMin = 20; prof.loopsMax = 28;
            prof.tripMin = 10; prof.tripMax = 44;
            prof.tripEntropy = 0.03;
            prof.nestedNoiseFrac = 0.9;
            prof.randomMin = 3; prof.randomMax = 6;
            prof.correlatedMin = 4; prof.correlatedMax = 8;
        } else if (sp == "sysmark-photoshop") {
            // Loop-sensitive with many distinct PCs in flight, so
            // repairs touch an above-average number of entries.
            prof.loopsMin = 22; prof.loopsMax = 30;
            prof.tripMin = 4; prof.tripMax = 24;
            prof.tripEntropy = 0.1;
            prof.bodyMin = 2; prof.bodyMax = 4;
            prof.nestedNoiseFrac = 0.8;
        } else if (sp == "eembc-dither") {
            // Thrashes the BHT/PT with sheer branch-site count.
            prof.branchScale = 4.0;
            prof.tripMin = 3; prof.tripMax = 18;
        }
    }

    const auto scaled = [&](unsigned lo, unsigned hi) {
        const double v =
            static_cast<double>(rng.range(lo, hi)) * prof.branchScale;
        return std::max(1u, static_cast<unsigned>(v));
    };

    const unsigned n_loops = scaled(prof.loopsMin, prof.loopsMax);
    const unsigned n_patterns = scaled(prof.patternsMin, prof.patternsMax);
    const unsigned n_correlated =
        scaled(prof.correlatedMin, prof.correlatedMax);
    const unsigned n_random = scaled(prof.randomMin, prof.randomMax);

    ProgramBuilder builder(name, profile.name, rng.next());
    ProgramBuilder::Mix mix;
    mix.loadFrac = prof.loadFrac;
    mix.storeFrac = prof.storeFrac;
    mix.fpFrac = prof.fpFrac;
    mix.mulFrac = prof.mulFrac;
    mix.depDistMax = prof.depDistMax;
    builder.setMix(mix);

    const unsigned n_streams =
        static_cast<unsigned>(rng.range(prof.streamsMin, prof.streamsMax));
    for (unsigned s = 0; s < n_streams; ++s)
        builder.addStream(makeStream(rng, prof, s));


    std::vector<Seg> segs;

    const auto smallStraight = [&] {
        return Seg::straight(
            static_cast<unsigned>(rng.range(1, 4)));
    };

    const auto noiseDiamond = [&] {
        // Branch nested inside a loop body. Its job is to scramble the
        // global-history signature at the loop exit (each run of the
        // loop sees a shifted/permuted history, so TAGE cannot match a
        // stable exit pattern) while staying cheap to predict itself —
        // mostly short repeating patterns whose period is coprime to
        // the trip count, some correlated branches, and a few
        // strongly-biased randoms that provide the occasional
        // mid-loop misprediction that triggers repair.
        std::vector<Seg> then_arm, else_arm;
        then_arm.push_back(smallStraight());
        else_arm.push_back(smallStraight());
        BehaviorPtr beh;
        const double roll = rng.real();
        if (roll < 0.45) {
            const unsigned period =
                static_cast<unsigned>(rng.range(2, 7));
            beh = std::make_unique<PatternBehavior>(
                mixedPattern(rng, period), period);
        } else if (roll < 0.65) {
            const std::uint64_t mask =
                (1ull << rng.range(0, 3)) | (1ull << rng.range(0, 5));
            beh = std::make_unique<CorrelatedBehavior>(
                mask, rng.chance(0.5),
                static_cast<std::uint32_t>(rng.range(0, 20)), rng.next());
        } else {
            std::uint32_t bias =
                static_cast<std::uint32_t>(rng.range(12, 60));
            if (rng.chance(0.5))
                bias = 1000 - bias;
            beh = std::make_unique<BiasedRandomBehavior>(bias,
                                                         rng.next());
        }
        return Seg::diamond(std::move(beh), std::move(then_arm),
                            std::move(else_arm));
    };

    for (unsigned i = 0; i < n_loops; ++i) {
        // ~30% of loops are "fat": long bodies with small trip counts,
        // the shape where even a retirement-updated BHT counter stays
        // current (the whole body drains the window between
        // occurrences) while global history still cannot span a run.
        const bool fat = rng.chance(0.45);
        // ~12% are micro-loops: a lone branch spinning on itself, the
        // shape that fills the OBQ with consecutive same-PC entries and
        // motivates the coalescing optimization (section 3.1).
        const bool micro = !fat && rng.chance(0.2);
        std::uint32_t p1;
        unsigned body_len;
        if (micro) {
            p1 = static_cast<std::uint32_t>(rng.range(8, 40));
            body_len = static_cast<unsigned>(rng.range(1, 2));
        } else if (fat) {
            p1 = static_cast<std::uint32_t>(rng.range(3, 12));
            body_len = static_cast<unsigned>(rng.range(60, 160));
        } else {
            p1 = static_cast<std::uint32_t>(
                rng.range(prof.tripMin, prof.tripMax));
            body_len = static_cast<unsigned>(
                rng.range(prof.bodyMin, prof.bodyMax));
        }

        std::vector<LoopExitBehavior::PeriodChoice> choices;
        choices.push_back({std::max(2u, p1), 7});
        if (rng.chance(prof.tripEntropy)) {
            const auto delta = static_cast<std::uint32_t>(
                rng.range(1, std::max(2u, p1 / 2)));
            choices.push_back({std::max(2u, p1 + delta), 2});
        }
        const bool forward = rng.chance(prof.forwardFrac);
        auto beh = std::make_unique<LoopExitBehavior>(
            !forward, std::move(choices), rng.next());

        // Fat bodies carry several embedded branches, so a wrong path
        // running through a loop touches multiple distinct BHT entries
        // (the paper's Figure 8 sees 5-16 PCs needing repair).
        std::vector<Seg> body;
        const unsigned chunks = 1 + body_len / 45;
        for (unsigned c = 0; c < chunks; ++c) {
            body.push_back(Seg::straight(
                std::max(1u, body_len / chunks)));
            if (!micro && rng.chance(prof.nestedNoiseFrac))
                body.push_back(noiseDiamond());
        }
        body.push_back(Seg::straight(static_cast<unsigned>(
            rng.range(1, std::max(2u, prof.bodyMin)))));

        segs.push_back(
            Seg::loop(std::move(beh), !forward, std::move(body)));
    }

    for (unsigned i = 0; i < n_patterns; ++i) {
        const unsigned period = static_cast<unsigned>(rng.range(2, 8));
        auto beh = std::make_unique<PatternBehavior>(
            mixedPattern(rng, period), period);
        std::vector<Seg> then_arm, else_arm;
        then_arm.push_back(smallStraight());
        else_arm.push_back(smallStraight());
        segs.push_back(Seg::diamond(std::move(beh), std::move(then_arm),
                                    std::move(else_arm)));
    }

    for (unsigned i = 0; i < n_correlated; ++i) {
        std::uint64_t mask = 0;
        const unsigned bits = static_cast<unsigned>(rng.range(2, 3));
        for (unsigned b = 0; b < bits; ++b)
            mask |= 1ull << rng.range(0, 9);
        auto beh = std::make_unique<CorrelatedBehavior>(
            mask, rng.chance(0.5),
            static_cast<std::uint32_t>(rng.range(0, 30)), rng.next());
        std::vector<Seg> then_arm, else_arm;
        then_arm.push_back(smallStraight());
        else_arm.push_back(smallStraight());
        segs.push_back(Seg::diamond(std::move(beh), std::move(then_arm),
                                    std::move(else_arm)));
    }

    for (unsigned i = 0; i < n_random; ++i) {
        std::uint32_t bias = static_cast<std::uint32_t>(
            rng.range(prof.randomBiasMin, prof.randomBiasMax));
        if (rng.chance(0.5))
            bias = 1000 - bias;
        auto beh =
            std::make_unique<BiasedRandomBehavior>(bias, rng.next());
        std::vector<Seg> then_arm, else_arm;
        then_arm.push_back(smallStraight());
        else_arm.push_back(smallStraight());
        segs.push_back(Seg::diamond(std::move(beh), std::move(then_arm),
                                    std::move(else_arm)));
    }

    // Shuffle segment order so categories do not share a fixed layout.
    for (std::size_t i = segs.size(); i > 1; --i)
        std::swap(segs[i - 1], segs[rng.below(i)]);

    return builder.build(std::move(segs));
}

std::vector<Program>
buildSuite(const SuiteOptions &opts)
{
    struct Slot
    {
        const CategoryProfile *profile;
        unsigned index;
    };
    std::vector<Slot> slots;
    for (const auto &prof : categoryProfiles())
        for (unsigned i = 0; i < prof.count; ++i)
            slots.push_back({&prof, i});

    std::vector<Program> suite;
    if (opts.maxWorkloads > 0 && opts.maxWorkloads < slots.size()) {
        // Proportional per-category allocation with at least one
        // workload from every category, so small categories (HPC has
        // only 8 of 202) stay represented in subsampled runs.
        const auto &profiles = categoryProfiles();
        const unsigned cap =
            std::max<unsigned>(opts.maxWorkloads,
                               static_cast<unsigned>(profiles.size()));
        std::vector<unsigned> quota(profiles.size(), 1);
        unsigned used = static_cast<unsigned>(profiles.size());
        while (used < cap) {
            // Give the next slot to the category with the largest
            // remaining share.
            std::size_t best = 0;
            double best_deficit = -1.0;
            for (std::size_t c = 0; c < profiles.size(); ++c) {
                const double share =
                    static_cast<double>(profiles[c].count) /
                    static_cast<double>(slots.size()) * cap;
                const double deficit = share - quota[c];
                if (deficit > best_deficit &&
                    quota[c] < profiles[c].count) {
                    best_deficit = deficit;
                    best = c;
                }
            }
            ++quota[best];
            ++used;
        }
        for (std::size_t c = 0; c < profiles.size(); ++c)
            for (unsigned i = 0; i < quota[c]; ++i)
                suite.push_back(
                    buildWorkload(profiles[c], i, opts.seed));
    } else {
        suite.reserve(slots.size());
        for (const auto &slot : slots)
            suite.push_back(
                buildWorkload(*slot.profile, slot.index, opts.seed));
    }
    return suite;
}

} // namespace lbp
