/**
 * @file
 * Figure-8-style port-sensitivity analysis over squash forensics.
 *
 * The paper's core cost argument (sections 2.4-2.5, Figures 8/10-13)
 * is that a repair episode must re-walk OBQ entries and rewrite BHT
 * rows, and the OBQ read / BHT write port counts bound how fast that
 * drains — realistic ports retain only part of the perfect-repair
 * gain. The forensics channel records exactly the per-squash work
 * (SquashRecord::walkLength, ::repairWrites); this module aggregates
 * those records into "repairs needed vs available ports" rows: for
 * each candidate port count, how many squashes would have drained in a
 * single cycle, and the mean/worst drain occupancy ceil(work/ports).
 *
 * Reconciliation is exact by construction: every row aggregates every
 * record, so row.squashes equals the summed ObsRun::squashes sizes —
 * tests/test_sweep.cc asserts this against the raw records.
 */

#ifndef LBP_OBS_PORT_ANALYSIS_HH
#define LBP_OBS_PORT_ANALYSIS_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hh"

namespace lbp {

/** Aggregated repair-port demand for one candidate port count. */
struct PortAnalysisRow
{
    unsigned ports = 1;  ///< OBQ read / BHT write ports modeled

    /** Squash records aggregated — identical in every row, and equal
     *  to the summed ObsRun::squashes sizes (reconciliation anchor). */
    std::uint64_t squashes = 0;

    std::uint64_t walkSingleCycle = 0;   ///< walks with length <= ports
    std::uint64_t writeSingleCycle = 0;  ///< writes fitting in one cycle
    double walkSingleCyclePct = 0.0;     ///< 100 * walkSingleCycle / squashes
    double writeSingleCyclePct = 0.0;    ///< 100 * writeSingleCycle / squashes
    double avgWalkDrainCycles = 0.0;     ///< mean ceil(walkLength / ports)
    std::uint64_t maxWalkDrainCycles = 0;   ///< worst-case walk drain
    double avgWriteDrainCycles = 0.0;    ///< mean ceil(repairWrites / ports)
    std::uint64_t maxWriteDrainCycles = 0;  ///< worst-case write drain
};

/**
 * Aggregate every squash record of @p runs into one row per entry of
 * @p portCounts (row order follows @p portCounts). Deterministic: pure
 * arithmetic over the records, no clocks, no allocation surprises.
 */
std::vector<PortAnalysisRow>
portAnalysis(const std::vector<const ObsRun *> &runs,
             const std::vector<unsigned> &portCounts);

/** Emit @p rows as CSV with a header row (docs/SWEEP.md schema). */
void writePortAnalysisCsv(std::ostream &os,
                          const std::vector<PortAnalysisRow> &rows);

/** Render @p rows as an aligned text table (lbpsweep --port-analysis). */
std::string formatPortAnalysis(const std::vector<PortAnalysisRow> &rows);

} // namespace lbp

#endif // LBP_OBS_PORT_ANALYSIS_HH
