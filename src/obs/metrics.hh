/**
 * @file
 * Metrics registry: the single naming authority for every counter and
 * histogram the simulator exports.
 *
 * Three consumers used to hand-roll their own counter plumbing — the
 * lbpsim CSV writer, the bench telemetry JSON, and ad-hoc printf
 * summaries — and their column lists drifted independently. This header
 * centralizes the mapping from RunResult fields to (name, unit, help)
 * descriptors so every exporter iterates one table, and adds the
 * fixed-bucket histograms (resolve latency, ROB occupancy at squash,
 * repair-walk length) the aggregate counters cannot express.
 *
 * Everything here is observational: nothing in src/obs/ feeds back into
 * simulation state, which is what keeps trace-on runs bit-identical to
 * trace-off runs (tests/test_trace.cc pins that).
 */

#ifndef LBP_OBS_METRICS_HH
#define LBP_OBS_METRICS_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace lbp {

struct RunResult;
struct SweepStats;
struct ServeStats;
struct StoreStats;

/**
 * Power-of-two bucketed histogram with a fixed, compile-time bucket
 * count: sample() is a shift-free loop over at most numBuckets
 * compares and three adds, and the footprint is constant, so tracers
 * can own one per metric without heap traffic on the hot path.
 *
 * Bucket b counts samples v with 2^(b-1) < v <= 2^b (bucket 0 holds
 * v <= 1), matching common/stats.hh Distribution so the two can be
 * reconciled in tests.
 */
class FixedHistogram
{
  public:
    /** Buckets cover values up to 2^23; larger samples clamp to the
     *  last bucket (resolve latencies and walk lengths sit far below). */
    static constexpr unsigned numBuckets = 24;

    /** Record one sample. */
    void
    sample(std::uint64_t v)
    {
        ++count_;
        sum_ += v;
        if (v > max_)
            max_ = v;
        unsigned b = 0;
        while ((1ull << b) < v && b + 1 < numBuckets)
            ++b;
        ++buckets_[b];
    }

    /** Total samples recorded. */
    std::uint64_t count() const { return count_; }
    /** Sum of all sample values. */
    std::uint64_t sum() const { return sum_; }
    /** Largest sample seen (0 when empty). */
    std::uint64_t max() const { return max_; }
    /** Arithmetic mean (0.0 when empty). */
    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }
    /** Count in bucket @p b (see class comment for the bucket bounds). */
    std::uint64_t bucket(unsigned b) const { return buckets_[b]; }

    /** Sum of all bucket counts; equals count() by construction — the
     *  histogram/counter reconciliation tests assert exactly this. */
    std::uint64_t bucketTotal() const;

  private:
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
    std::uint64_t buckets_[numBuckets] = {};
};

/** One exported scalar metric: a named, unit-annotated value. */
struct Metric
{
    std::string name;   ///< stable export name (CSV column / JSON key)
    std::string unit;   ///< "count", "cycles", "ratio", "KB", ...
    std::string help;   ///< one-line description
    double value = 0.0;
    bool integral = false;  ///< print as integer (counter semantics)
};

/** A FixedHistogram paired with its export name and unit. */
struct NamedHistogram
{
    std::string name;
    std::string unit;
    std::string help;
    FixedHistogram hist;
};

/**
 * Ordered collection of metrics and histograms for one run (or one
 * aggregated suite). Exporters iterate scalars()/histograms() so the
 * set of reported metrics is defined in exactly one place.
 */
class MetricsRegistry
{
  public:
    /** Append a scalar counter (integral, printed without decimals). */
    void counter(std::string name, std::string unit, std::string help,
                 std::uint64_t value);

    /** Append a scalar gauge (floating point). */
    void gauge(std::string name, std::string unit, std::string help,
               double value);

    /** Append a histogram by value. */
    void histogram(std::string name, std::string unit, std::string help,
                   const FixedHistogram &hist);

    /** All scalars, in registration order. */
    const std::vector<Metric> &scalars() const { return scalars_; }
    /** All histograms, in registration order. */
    const std::vector<NamedHistogram> &histograms() const
    {
        return hists_;
    }

    /**
     * Serialize as a JSON object:
     * {"scalars": [{name, unit, help, value}...],
     *  "histograms": [{name, unit, help, count, sum, max, buckets}...]}
     */
    void writeJson(std::ostream &os) const;

  private:
    std::vector<Metric> scalars_;
    std::vector<NamedHistogram> hists_;
};

/**
 * Descriptor tying one exported per-run metric to its RunResult field.
 * The table (runMetrics()) is the authority for lbpsim's CSV columns,
 * the --metrics-json export, and docs/METRICS.md — adding a field to
 * RunResult means adding a row here, and every consumer picks it up.
 */
struct RunMetricDesc
{
    const char *name;  ///< CSV column / JSON key
    const char *unit;
    const char *help;
    bool integral;              ///< counter (true) vs gauge (false)
    double (*get)(const RunResult &);  ///< field accessor
};

/**
 * The per-run metric table, in CSV column order (stable: existing
 * columns keep their historical names and positions).
 */
const std::vector<RunMetricDesc> &runMetrics();

/** Register every runMetrics() entry of @p r into @p reg. */
void registerRunMetrics(MetricsRegistry &reg, const RunResult &r);

/**
 * Descriptor tying one exported sweep-level counter to its SweepStats
 * field (sim/sweep.hh) — the orchestration/store analogue of
 * RunMetricDesc. The table (sweepMetrics()) names everything the sweep
 * manifest's "counters" object contains, so the manifest, the
 * sweep-smoke CI assertions, and docs/METRICS.md share one authority.
 */
struct SweepMetricDesc
{
    const char *name;  ///< manifest counter name
    const char *unit;
    const char *help;
    bool integral;               ///< counter (true) vs gauge (false)
    double (*get)(const SweepStats &);  ///< field accessor
};

/** The sweep-counter table, in manifest order (append, never reorder). */
const std::vector<SweepMetricDesc> &sweepMetrics();

/** Register every sweepMetrics() entry of @p s into @p reg. */
void registerSweepMetrics(MetricsRegistry &reg, const SweepStats &s);

/**
 * Descriptor tying one exported daemon counter to its ServeStats field
 * (serve/protocol.hh) — the third registry next to runMetrics() and
 * sweepMetrics(). The table (serveMetrics()) names everything the
 * lbp-serve-v1 `stats` frame and lbpserved's exit summary report, so
 * the wire protocol, the CI smoke assertions, and docs/METRICS.md
 * share one authority.
 */
struct ServeMetricDesc
{
    const char *name;  ///< stats-frame counter name
    const char *unit;
    const char *help;
    bool integral;               ///< counter (true) vs gauge (false)
    double (*get)(const ServeStats &);  ///< field accessor
};

/** The daemon-counter table, in wire order (append, never reorder). */
const std::vector<ServeMetricDesc> &serveMetrics();

/** Register every serveMetrics() entry of @p s into @p reg. */
void registerServeMetrics(MetricsRegistry &reg, const ServeStats &s);

/**
 * Descriptor tying one exported result-store counter to its StoreStats
 * field (sim/result_store.hh) — the fourth registry, covering store
 * lifecycle (hits, misses, stale deletes, bytes moved, GC evictions).
 * The table (storeMetrics()) names everything the sweep manifest's
 * "store" section and the daemon scrape report about the persistent
 * store, so they cannot drift from the struct.
 */
struct StoreMetricDesc
{
    const char *name;  ///< scrape / manifest counter name
    const char *unit;
    const char *help;
    bool integral;               ///< counter (true) vs gauge (false)
    double (*get)(const StoreStats &);  ///< field accessor
};

/** The store-counter table (append, never reorder). */
const std::vector<StoreMetricDesc> &storeMetrics();

/** Register every storeMetrics() entry of @p s into @p reg. */
void registerStoreMetrics(MetricsRegistry &reg, const StoreStats &s);

/**
 * Table-driven aggregate over many RunResults — what a resident daemon
 * exposes for the run layer, where individual results are transient.
 * add() folds one run through the runMetrics() descriptors (so the
 * aggregate can never name a metric the table does not); addTo()
 * registers counters as lifetime sums and gauges as run-weighted
 * means, under the table's own names.
 */
class RunAggregate
{
  public:
    /** Fold one run's metrics into the aggregate. */
    void add(const RunResult &r);

    /** Runs folded in so far. */
    std::uint64_t runs() const { return runs_; }

    /** Register the aggregated runMetrics() rows into @p reg. */
    void addTo(MetricsRegistry &reg) const;

  private:
    std::vector<double> sums_;
    std::uint64_t runs_ = 0;
};

/**
 * Render @p reg in the Prometheus text exposition format (one
 * HELP/TYPE comment pair per family, counters as integers, gauges in
 * full precision, FixedHistograms as cumulative `_bucket{le=...}`
 * series with `_sum`/`_count`). Deterministic for a given registry:
 * the scrape tests diff successive renders byte for byte.
 */
void writePrometheus(std::ostream &os, const MetricsRegistry &reg);

/**
 * Render one labeled counter family: a HELP/TYPE pair for @p family
 * followed by `family{labelKey="value"} sample` lines in the given
 * order, label values escaped per the exposition format. Used for the
 * per-fingerprint result-store series, whose label set is dynamic.
 */
void writePrometheusLabeled(
    std::ostream &os, const char *family, const char *help,
    const char *labelKey,
    const std::vector<std::pair<std::string, std::uint64_t>> &samples);

} // namespace lbp

#endif // LBP_OBS_METRICS_HH
