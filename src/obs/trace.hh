/**
 * @file
 * Zero-cost-when-off pipeline observability: cycle-level event tracing
 * and misprediction forensics.
 *
 * The core holds a PipelineTracer pointer that is null unless the run
 * asked for observability (SimConfig::obs); every hook in the pipeline
 * stages is a single `if (tracer_)` test, so the trace-off hot path is
 * untouched and — because the tracer only ever *reads* simulation
 * state — a trace-on run retires the exact same instruction stream with
 * the exact same counters as a trace-off run (tests/test_trace.cc pins
 * this against the golden-stats fixture).
 *
 * Two channels:
 *  - Stage events (fetch/alloc/issue/resolve/retire/squash/resteer) go
 *    into a fixed-capacity ring sized from the requested cycle window,
 *    so memory stays bounded no matter how long the run is; the dump
 *    keeps the last `traceWindowCycles` cycles. Exported as Chrome
 *    `trace_event` JSON (chrome://tracing, Perfetto) and as a
 *    Konata-style pipeline log (docs/TRACING.md).
 *  - Squash forensics: one record per execute-time misprediction flush
 *    with the triggering PC, the predictor component that produced the
 *    wrong direction, the wrong-path fetch volume it caused, OBQ/ROB
 *    occupancy, and the repair-walk work it triggered. Exported as CSV
 *    and aggregated into top-N offender tables.
 */

#ifndef LBP_OBS_TRACE_HH
#define LBP_OBS_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/metrics.hh"

namespace lbp {

/**
 * Per-run observability switches, carried inside SimConfig. All fields
 * are purely observational: they never change simulated behavior, so
 * they are deliberately excluded from the suite-cache config key.
 */
struct ObsConfig
{
    bool trace = false;      ///< collect stage events (ring-buffered)
    bool forensics = false;  ///< collect per-squash records + histograms
    /** Cycle span the dumped event window covers (last N cycles). */
    std::uint64_t traceWindowCycles = 20000;
    /**
     * Forensics sampling stride: record every Nth squash starting with
     * the first (0 behaves as 1 = record all). Long runs keep the
     * capture bounded at 1/N records; the factor is recorded in
     * ObsRun::forensicsStride so sampled counts stay reconcilable —
     * records == ceil(totalMispredicts / stride) exactly.
     */
    std::uint64_t forensicsStride = 1;
};

/** Pipeline stage a trace event belongs to. */
enum class TraceStage : std::uint8_t
{
    Fetch,    ///< instruction materialized by the fetch stage
    Alloc,    ///< entered the ROB (span: fetch cycle -> alloc cycle)
    Issue,    ///< scheduled (span: issue cycle -> completion cycle)
    Retire,   ///< left the ROB in program order
    Resolve,  ///< mispredicted branch resolved at execute
    Squash,   ///< pipeline flush triggered by this branch
    Resteer,  ///< alloc-stage early resteer (multi-stage BHT-Defer)
};

/** Short lowercase label for @p st ("fetch", "alloc", ...). */
const char *traceStageName(TraceStage st);

/** One stage event: an instruction occupied @p stage over [begin,end]. */
struct TraceRecord
{
    Cycle begin = 0;
    Cycle end = 0;
    InstSeq seq = invalidSeq;
    Addr pc = 0;
    TraceStage stage = TraceStage::Fetch;
    bool wrongPath = false;
};

/** Which predictor component produced a squashed final direction. */
enum class MispredictSource : std::uint8_t
{
    Bimodal,       ///< TAGE base table provided, no local override
    TageTable,     ///< a tagged TAGE table provided
    LoopOverride,  ///< local CBPw-Loop override was used and wrong
    BhtDefer,      ///< multi-stage alloc-time resteer direction wrong
};

/** Short stable label for @p s ("bimodal", "tage", "loop", "bht-defer"). */
const char *mispredictSourceName(MispredictSource s);

/** Forensics record for one execute-time misprediction flush. */
struct SquashRecord
{
    Cycle cycle = 0;          ///< flush cycle
    Addr pc = 0;              ///< mispredicting branch PC
    InstSeq seq = invalidSeq; ///< its sequence number
    MispredictSource source = MispredictSource::Bimodal;
    std::int8_t provider = -1;       ///< TAGE providing table (-1 = base)
    Cycle resolveLatency = 0;        ///< fetch -> resolve cycles
    std::uint32_t wrongPathFetched = 0;  ///< instrs fetched past diverge
    std::uint32_t obqOccupancy = 0;  ///< repair-scheme OBQ entries live
    std::uint32_t robOccupancy = 0;  ///< ROB entries at the flush
    std::uint32_t walkLength = 0;    ///< OBQ entries examined by repair
    std::uint32_t repairWrites = 0;  ///< BHT writes the repair performed
};

/**
 * Everything one observed run produced, detached from the core so suite
 * runs on worker threads stay independent and results can outlive the
 * core. RunResult carries a shared_ptr to one of these when
 * observability was on.
 */
struct ObsRun
{
    std::string workload;  ///< workload name (set by the runner)
    std::string config;    ///< configLabel() of the run

    /** Stage events inside the final window, in emission order. */
    std::vector<TraceRecord> events;
    /**
     * Squash records, whole run, in order: every squash at the default
     * stride 1, every forensicsStride-th (starting with the first)
     * otherwise.
     */
    std::vector<SquashRecord> squashes;

    /**
     * Sampling factor the squashes were captured at. Reconciliation:
     * squashes.size() == ceil(totalMispredicts / forensicsStride).
     */
    std::uint64_t forensicsStride = 1;

    FixedHistogram resolveLatency;  ///< cycles, per squashed branch
    FixedHistogram robOccupancy;    ///< ROB entries at each squash
    FixedHistogram walkLength;      ///< OBQ entries per repair episode

    /** Events dropped because the ring wrapped (outside the window). */
    std::uint64_t eventsDropped = 0;

    // Whole-run totals snapshot for reconciliation (set by the runner;
    // tests assert squashes.size() == totalMispredicts exactly).
    std::uint64_t totalMispredicts = 0;
    std::uint64_t totalRepairs = 0;
    std::uint64_t totalCycles = 0;
};

/**
 * The collector the core hooks call. Construct per run, attach with
 * OooCore::attachTracer, harvest with finish(). Hooks are cheap:
 * ring-slot assignment for events, vector append for squashes (the
 * squash path is already the expensive flush path).
 */
class PipelineTracer
{
  public:
    explicit PipelineTracer(const ObsConfig &cfg);

    /** Record that @p seq occupied @p st over [begin, end]. */
    void
    stage(TraceStage st, Cycle begin, Cycle end, InstSeq seq, Addr pc,
          bool wrong_path)
    {
        if (!tracing_)
            return;
        TraceRecord &r = ring_[head_ & (ring_.size() - 1)];
        ++head_;
        r.begin = begin;
        r.end = end;
        r.seq = seq;
        r.pc = pc;
        r.stage = st;
        r.wrongPath = wrong_path;
    }

    /** Record one squash (forensics channel + histograms). */
    void squash(const SquashRecord &rec);

    /** Fetch diverged: remember the wrong-path-fetched counter so the
     *  eventual squash can report the delta it caused. */
    void noteDiverge(std::uint64_t wrong_path_fetched_so_far)
    {
        wrongPathAtDiverge_ = wrong_path_fetched_so_far;
    }

    /** Counter snapshot taken at the last diverge (see noteDiverge). */
    std::uint64_t wrongPathAtDiverge() const
    {
        return wrongPathAtDiverge_;
    }

    /** Whether stage-event collection is on (forensics may be on alone). */
    bool tracing() const { return tracing_; }
    /** Whether forensics collection is on. */
    bool forensics() const { return forensics_; }

    /**
     * Drain into an ObsRun: events trimmed to the last
     * traceWindowCycles cycles (relative to the newest event) and
     * restored to chronological emission order.
     */
    ObsRun finish();

  private:
    bool tracing_ = false;
    bool forensics_ = false;
    std::uint64_t windowCycles_ = 0;
    std::uint64_t stride_ = 1;      ///< forensics sampling factor
    std::uint64_t squashSeen_ = 0;  ///< squash() calls (incl. skipped)
    std::vector<TraceRecord> ring_;  ///< power-of-two capacity
    std::uint64_t head_ = 0;         ///< monotonic event count
    std::uint64_t wrongPathAtDiverge_ = 0;
    std::vector<SquashRecord> squashes_;
    FixedHistogram resolveLatency_;
    FixedHistogram robOccupancy_;
    FixedHistogram walkLength_;
};

/**
 * Emit Chrome trace_event JSON (the "JSON Array Format") for @p runs.
 * Loadable by chrome://tracing and https://ui.perfetto.dev. One process
 * (pid) per run; tid is the instruction's ring slot, which guarantees
 * begin/end pairs on one tid never overlap (two in-flight instructions
 * cannot share a slot). Timestamps are cycles reported as microseconds.
 */
void writeChromeTrace(std::ostream &os,
                      const std::vector<const ObsRun *> &runs);

/**
 * One service-side phase of a daemon request (queue wait, dedup join,
 * simulate, assemble, deliver): the serve-layer analogue of a
 * TraceRecord. Timestamps are microseconds on the daemon's own
 * monotonic clock, so one file's spans share a timeline.
 */
struct ServiceSpan
{
    std::string traceId;      ///< request trace id (args.trace_id)
    std::string phase;        ///< "queue" / "dedup" / "simulate" / ...
    std::uint64_t request = 0;   ///< request sequence number (tid)
    std::uint64_t beginUs = 0;   ///< span start, daemon-relative us
    std::uint64_t endUs = 0;     ///< span end, daemon-relative us
};

/**
 * Emit Chrome trace_event JSON for service spans, format-compatible
 * with writeChromeTrace() output (same array shape, B/E pairs, one
 * metadata record naming the daemon process) so a daemon timeline and
 * a pipeline trace can be concatenated into one Perfetto view. Spans
 * carry their trace_id in args for find-by-id.
 */
void writeServiceTrace(std::ostream &os,
                       const std::vector<ServiceSpan> &spans);

/**
 * Emit a Konata-compatible pipeline log ("Kanata\t0004" format) for one
 * run: per-instruction lanes with fetch/alloc/issue/retire stages, and
 * retirement/flush terminators. Open with the Konata viewer.
 */
void writeKonata(std::ostream &os, const ObsRun &run);

/**
 * Per-run output path for multi-run Konata dumps: the workload name
 * (with ':' and any other non-[A-Za-z0-9_-] byte sanitized to '_') is
 * inserted before the base path's extension —
 * konataRunPath("t.kanata", "Server:0") == "t.Server_0.kanata"; a base
 * without an extension gets the tag appended ("t" -> "t.Server_0").
 * Naming documented in docs/TRACING.md.
 */
std::string konataRunPath(const std::string &base,
                          const std::string &workload);

/**
 * Emit the forensics CSV: one row per squash across @p runs (a
 * `workload` column disambiguates suite dumps), with a header row.
 * Row count == sum of ObsRun::squashes sizes == total mispredicts.
 */
void writeForensicsCsv(std::ostream &os,
                       const std::vector<const ObsRun *> &runs);

/** One row of the top-offenders aggregation. */
struct OffenderRow
{
    std::string workload;
    Addr pc = 0;
    std::uint64_t squashes = 0;       ///< flushes this PC triggered
    std::uint64_t wrongPathFetched = 0;  ///< total pollution it caused
    std::uint64_t walkLength = 0;     ///< total repair work it caused
    MispredictSource dominantSource = MispredictSource::Bimodal;
};

/**
 * Aggregate squash records by (workload, PC) and return the @p n rows
 * with the most squashes, descending (ties broken by PC for
 * determinism).
 */
std::vector<OffenderRow>
topOffenders(const std::vector<const ObsRun *> &runs, std::size_t n);

/** Render @p rows as an aligned text table (lbpsim --top-offenders). */
std::string formatOffenders(const std::vector<OffenderRow> &rows);

} // namespace lbp

#endif // LBP_OBS_TRACE_HH
