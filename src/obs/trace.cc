#include "obs/trace.hh"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>

#include "common/logging.hh"
#include "common/stats.hh"

namespace lbp {

const char *
traceStageName(TraceStage st)
{
    switch (st) {
      case TraceStage::Fetch: return "fetch";
      case TraceStage::Alloc: return "alloc";
      case TraceStage::Issue: return "issue";
      case TraceStage::Retire: return "retire";
      case TraceStage::Resolve: return "resolve";
      case TraceStage::Squash: return "squash";
      case TraceStage::Resteer: return "resteer";
    }
    return "?";
}

const char *
mispredictSourceName(MispredictSource s)
{
    switch (s) {
      case MispredictSource::Bimodal: return "bimodal";
      case MispredictSource::TageTable: return "tage";
      case MispredictSource::LoopOverride: return "loop";
      case MispredictSource::BhtDefer: return "bht-defer";
    }
    return "?";
}

namespace {

/** Ring capacity for a cycle window: the pipeline emits at most
 *  ~4 fetch + 4 alloc/issue + 4 retire + flush events per cycle, so 16
 *  slots per requested cycle covers the window with slack; clamped so
 *  pathological --trace-window values keep memory bounded. */
std::size_t
ringCapacityFor(std::uint64_t window_cycles)
{
    const std::uint64_t want = window_cycles * 16;
    std::size_t cap = 4096;
    while (cap < want && cap < (std::size_t{1} << 19))
        cap <<= 1;
    return cap;
}

} // namespace

PipelineTracer::PipelineTracer(const ObsConfig &cfg)
    : tracing_(cfg.trace), forensics_(cfg.forensics),
      windowCycles_(cfg.traceWindowCycles),
      stride_(cfg.forensicsStride ? cfg.forensicsStride : 1)
{
    if (tracing_)
        ring_.resize(ringCapacityFor(windowCycles_));
}

void
PipelineTracer::squash(const SquashRecord &rec)
{
    if (!forensics_)
        return;
    // Striding counts every squash but records (and samples the
    // histograms for) every stride_-th one, starting with the first —
    // records == ceil(seen / stride) holds at every point, which is
    // the reconciliation tests/test_trace.cc pins.
    const bool record = squashSeen_ % stride_ == 0;
    ++squashSeen_;
    if (!record)
        return;
    squashes_.push_back(rec);
    resolveLatency_.sample(rec.resolveLatency);
    robOccupancy_.sample(rec.robOccupancy);
    if (rec.walkLength)
        walkLength_.sample(rec.walkLength);
}

ObsRun
PipelineTracer::finish()
{
    ObsRun out;
    out.squashes = std::move(squashes_);
    out.forensicsStride = stride_;
    out.resolveLatency = resolveLatency_;
    out.robOccupancy = robOccupancy_;
    out.walkLength = walkLength_;

    if (tracing_ && head_ > 0) {
        const std::uint64_t cap = ring_.size();
        const std::uint64_t first = head_ > cap ? head_ - cap : 0;
        // Newest event end bounds the window.
        Cycle newest = 0;
        for (std::uint64_t i = first; i < head_; ++i)
            newest = std::max(newest,
                              ring_[i & (cap - 1)].end);
        const Cycle horizon =
            newest > windowCycles_ ? newest - windowCycles_ : 0;
        out.events.reserve(static_cast<std::size_t>(head_ - first));
        for (std::uint64_t i = first; i < head_; ++i) {
            const TraceRecord &r = ring_[i & (cap - 1)];
            if (r.end >= horizon)
                out.events.push_back(r);
        }
        out.eventsDropped =
            head_ - static_cast<std::uint64_t>(out.events.size());
    }
    head_ = 0;
    return out;
}

// ---------------------------------------------------------------------
// Chrome trace_event JSON
// ---------------------------------------------------------------------

namespace {

void
chromeEvent(std::ostream &os, bool &first_event, char ph,
            const char *name, std::size_t pid, std::uint64_t tid,
            Cycle ts, const TraceRecord *rec)
{
    if (!first_event)
        os << ",\n";
    first_event = false;
    os << "{\"name\":\"" << name << "\",\"ph\":\"" << ph
       << "\",\"pid\":" << pid << ",\"tid\":" << tid
       << ",\"ts\":" << ts;
    if (rec && ph == 'B') {
        char pc[32];
        std::snprintf(pc, sizeof(pc), "0x%llx",
                      static_cast<unsigned long long>(rec->pc));
        os << ",\"cat\":\"" << (rec->wrongPath ? "wrong-path" : "true-path")
           << "\",\"args\":{\"pc\":\"" << pc << "\",\"seq\":"
           << rec->seq << '}';
    }
    os << '}';
}

} // namespace

void
writeChromeTrace(std::ostream &os,
                 const std::vector<const ObsRun *> &runs)
{
    os << "[\n";
    bool first_event = true;
    for (std::size_t pid = 0; pid < runs.size(); ++pid) {
        const ObsRun &run = *runs[pid];
        if (!first_event)
            os << ",\n";
        first_event = false;
        os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
           << ",\"args\":{\"name\":\"" << run.workload << " ["
           << run.config << "]\"}}";
        for (const TraceRecord &r : run.events) {
            // One lane (tid) per instruction-ring slot: two in-flight
            // instructions can never share a slot, so begin/end pairs
            // on a tid are naturally non-overlapping and balance.
            const std::uint64_t tid = r.seq & 0x1fffu;
            const char *name = traceStageName(r.stage);
            chromeEvent(os, first_event, 'B', name, pid, tid, r.begin,
                        &r);
            chromeEvent(os, first_event, 'E', name, pid, tid,
                        std::max(r.end, r.begin), nullptr);
        }
    }
    os << "\n]\n";
}

void
writeServiceTrace(std::ostream &os, const std::vector<ServiceSpan> &spans)
{
    // The daemon gets one synthetic process lane; request sequence
    // numbers are the tids, so every request reads as one row whose
    // queue/dedup/simulate/assemble phases tile it left to right.
    os << "[\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":9000,"
          "\"args\":{\"name\":\"lbpserved\"}}";
    for (const ServiceSpan &s : spans) {
        os << ",\n{\"name\":\"" << s.phase << "\",\"ph\":\"B\",\"pid\":"
           << 9000 << ",\"tid\":" << s.request << ",\"ts\":" << s.beginUs
           << ",\"cat\":\"service\",\"args\":{\"trace_id\":\""
           << s.traceId << "\"}}";
        os << ",\n{\"name\":\"" << s.phase << "\",\"ph\":\"E\",\"pid\":"
           << 9000 << ",\"tid\":" << s.request
           << ",\"ts\":" << std::max(s.endUs, s.beginUs) << '}';
    }
    os << "\n]\n";
}

// ---------------------------------------------------------------------
// Konata pipeline log
// ---------------------------------------------------------------------

namespace {

/** Per-instruction life reassembled from the event stream. */
struct KonataLane
{
    InstSeq seq = invalidSeq;
    Addr pc = 0;
    bool wrongPath = false;
    bool squashed = false;
    Cycle fetch = 0;
    Cycle alloc = 0;
    Cycle issueBegin = 0;
    Cycle issueEnd = 0;
    Cycle last = 0;       ///< retire or squash cycle
    bool hasAlloc = false;
    bool hasIssue = false;
    bool hasEnd = false;  ///< saw retire (or squash) terminator
};

} // namespace

void
writeKonata(std::ostream &os, const ObsRun &run)
{
    // Reassemble per-seq lanes (writer-side only; never the hot path).
    std::map<InstSeq, KonataLane> lanes;
    for (const TraceRecord &r : run.events) {
        KonataLane &l = lanes[r.seq];
        l.seq = r.seq;
        switch (r.stage) {
          case TraceStage::Fetch:
            l.pc = r.pc;
            l.wrongPath = r.wrongPath;
            l.fetch = r.begin;
            l.last = std::max(l.last, r.end);
            break;
          case TraceStage::Alloc:
            l.alloc = r.end;
            l.hasAlloc = true;
            l.last = std::max(l.last, r.end);
            break;
          case TraceStage::Issue:
            l.issueBegin = r.begin;
            l.issueEnd = r.end;
            l.hasIssue = true;
            l.last = std::max(l.last, r.end);
            break;
          case TraceStage::Retire:
            l.hasEnd = true;
            l.last = std::max(l.last, r.end);
            break;
          case TraceStage::Squash:
          case TraceStage::Resolve:
          case TraceStage::Resteer:
            if (r.stage == TraceStage::Squash)
                l.squashed = true;
            l.last = std::max(l.last, r.end);
            break;
        }
    }
    if (lanes.empty()) {
        os << "Kanata\t0004\n";
        return;
    }

    // Konata wants commands grouped by cycle, monotonically advancing.
    struct Cmd
    {
        Cycle cycle;
        std::uint64_t order;
        std::string text;
    };
    std::vector<Cmd> cmds;
    std::uint64_t order = 0;
    std::uint64_t uid = 0;
    std::uint64_t retired = 0;
    for (const auto &[seq, l] : lanes) {
        const std::uint64_t id = uid++;
        char buf[160];
        std::snprintf(buf, sizeof(buf), "I\t%llu\t%llu\t0\n",
                      static_cast<unsigned long long>(id),
                      static_cast<unsigned long long>(seq));
        cmds.push_back({l.fetch, order++, buf});
        std::snprintf(buf, sizeof(buf),
                      "L\t%llu\t0\t0x%llx%s\n",
                      static_cast<unsigned long long>(id),
                      static_cast<unsigned long long>(l.pc),
                      l.wrongPath ? " (wrong-path)" : "");
        cmds.push_back({l.fetch, order++, buf});
        std::snprintf(buf, sizeof(buf), "S\t%llu\t0\tF\n",
                      static_cast<unsigned long long>(id));
        cmds.push_back({l.fetch, order++, buf});
        if (l.hasAlloc) {
            std::snprintf(buf, sizeof(buf), "S\t%llu\t0\tA\n",
                          static_cast<unsigned long long>(id));
            cmds.push_back({l.alloc, order++, buf});
        }
        if (l.hasIssue) {
            std::snprintf(buf, sizeof(buf), "S\t%llu\t0\tX\n",
                          static_cast<unsigned long long>(id));
            cmds.push_back({l.issueBegin, order++, buf});
            std::snprintf(buf, sizeof(buf), "E\t%llu\t0\tX\n",
                          static_cast<unsigned long long>(id));
            cmds.push_back({l.issueEnd, order++, buf});
        }
        const bool flushed = l.squashed || (!l.hasEnd && l.wrongPath);
        std::snprintf(buf, sizeof(buf), "R\t%llu\t%llu\t%d\n",
                      static_cast<unsigned long long>(id),
                      static_cast<unsigned long long>(
                          flushed ? 0 : retired++),
                      flushed ? 1 : 0);
        cmds.push_back({l.last, order++, buf});
    }
    std::sort(cmds.begin(), cmds.end(),
              [](const Cmd &a, const Cmd &b) {
                  return a.cycle != b.cycle ? a.cycle < b.cycle
                                            : a.order < b.order;
              });

    os << "Kanata\t0004\n";
    Cycle cur = cmds.front().cycle;
    os << "C=\t" << cur << '\n';
    for (const Cmd &c : cmds) {
        if (c.cycle > cur) {
            os << "C\t" << (c.cycle - cur) << '\n';
            cur = c.cycle;
        }
        os << c.text;
    }
}

std::string
konataRunPath(const std::string &base, const std::string &workload)
{
    std::string tag;
    tag.reserve(workload.size());
    for (const char c : workload) {
        const bool keep = (c >= 'a' && c <= 'z') ||
                          (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '-' ||
                          c == '_';
        tag += keep ? c : '_';
    }
    const std::size_t slash = base.find_last_of('/');
    const std::size_t dot = base.find_last_of('.');
    // A dot inside a directory component is not an extension.
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return base + '.' + tag;
    return base.substr(0, dot) + '.' + tag + base.substr(dot);
}

// ---------------------------------------------------------------------
// Forensics CSV + top offenders
// ---------------------------------------------------------------------

void
writeForensicsCsv(std::ostream &os,
                  const std::vector<const ObsRun *> &runs)
{
    os << "workload,cycle,pc,seq,source,provider,resolve_latency,"
          "wrong_path_fetched,obq_occupancy,rob_occupancy,"
          "walk_length,repair_writes\n";
    char pc[32];
    for (const ObsRun *run : runs) {
        for (const SquashRecord &s : run->squashes) {
            std::snprintf(pc, sizeof(pc), "0x%llx",
                          static_cast<unsigned long long>(s.pc));
            os << run->workload << ',' << s.cycle << ',' << pc << ','
               << s.seq << ',' << mispredictSourceName(s.source) << ','
               << static_cast<int>(s.provider) << ','
               << s.resolveLatency << ',' << s.wrongPathFetched << ','
               << s.obqOccupancy << ',' << s.robOccupancy << ','
               << s.walkLength << ',' << s.repairWrites << '\n';
        }
    }
}

std::vector<OffenderRow>
topOffenders(const std::vector<const ObsRun *> &runs, std::size_t n)
{
    struct Agg
    {
        std::uint64_t squashes = 0;
        std::uint64_t wrongPathFetched = 0;
        std::uint64_t walkLength = 0;
        std::uint64_t bySource[4] = {};
    };
    std::map<std::pair<std::string, Addr>, Agg> by_pc;
    for (const ObsRun *run : runs) {
        for (const SquashRecord &s : run->squashes) {
            Agg &a = by_pc[{run->workload, s.pc}];
            ++a.squashes;
            a.wrongPathFetched += s.wrongPathFetched;
            a.walkLength += s.walkLength;
            ++a.bySource[static_cast<unsigned>(s.source)];
        }
    }

    std::vector<OffenderRow> rows;
    rows.reserve(by_pc.size());
    for (const auto &[key, a] : by_pc) {
        OffenderRow r;
        r.workload = key.first;
        r.pc = key.second;
        r.squashes = a.squashes;
        r.wrongPathFetched = a.wrongPathFetched;
        r.walkLength = a.walkLength;
        unsigned best = 0;
        for (unsigned s = 1; s < 4; ++s)
            if (a.bySource[s] > a.bySource[best])
                best = s;
        r.dominantSource = static_cast<MispredictSource>(best);
        rows.push_back(std::move(r));
    }
    std::sort(rows.begin(), rows.end(),
              [](const OffenderRow &a, const OffenderRow &b) {
                  if (a.squashes != b.squashes)
                      return a.squashes > b.squashes;
                  if (a.workload != b.workload)
                      return a.workload < b.workload;
                  return a.pc < b.pc;
              });
    if (rows.size() > n)
        rows.resize(n);
    return rows;
}

std::string
formatOffenders(const std::vector<OffenderRow> &rows)
{
    TextTable table({"workload", "pc", "squashes", "wrong-path instrs",
                     "walk entries", "dominant source"});
    char pc[32];
    for (const OffenderRow &r : rows) {
        std::snprintf(pc, sizeof(pc), "0x%llx",
                      static_cast<unsigned long long>(r.pc));
        table.addRow({r.workload, pc, std::to_string(r.squashes),
                      std::to_string(r.wrongPathFetched),
                      std::to_string(r.walkLength),
                      mispredictSourceName(r.dominantSource)});
    }
    return table.render();
}

} // namespace lbp
