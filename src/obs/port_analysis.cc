#include "obs/port_analysis.hh"

#include <cstdio>
#include <ostream>

#include "common/stats.hh"

namespace lbp {

namespace {

std::uint64_t
drainCycles(std::uint64_t work, unsigned ports)
{
    // ceil(work / ports); zero work drains in zero cycles.
    return (work + ports - 1) / ports;
}

std::string
fmt(const char *format, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), format, v);
    return buf;
}

} // namespace

std::vector<PortAnalysisRow>
portAnalysis(const std::vector<const ObsRun *> &runs,
             const std::vector<unsigned> &portCounts)
{
    std::vector<PortAnalysisRow> rows;
    rows.reserve(portCounts.size());
    for (const unsigned ports : portCounts) {
        PortAnalysisRow row;
        row.ports = ports ? ports : 1;
        std::uint64_t walkDrainSum = 0;
        std::uint64_t writeDrainSum = 0;
        for (const ObsRun *run : runs) {
            for (const SquashRecord &rec : run->squashes) {
                ++row.squashes;
                if (rec.walkLength <= row.ports)
                    ++row.walkSingleCycle;
                if (rec.repairWrites <= row.ports)
                    ++row.writeSingleCycle;
                const std::uint64_t walkDrain =
                    drainCycles(rec.walkLength, row.ports);
                const std::uint64_t writeDrain =
                    drainCycles(rec.repairWrites, row.ports);
                walkDrainSum += walkDrain;
                writeDrainSum += writeDrain;
                if (walkDrain > row.maxWalkDrainCycles)
                    row.maxWalkDrainCycles = walkDrain;
                if (writeDrain > row.maxWriteDrainCycles)
                    row.maxWriteDrainCycles = writeDrain;
            }
        }
        if (row.squashes) {
            const double n = static_cast<double>(row.squashes);
            row.walkSingleCyclePct =
                100.0 * static_cast<double>(row.walkSingleCycle) / n;
            row.writeSingleCyclePct =
                100.0 * static_cast<double>(row.writeSingleCycle) / n;
            row.avgWalkDrainCycles =
                static_cast<double>(walkDrainSum) / n;
            row.avgWriteDrainCycles =
                static_cast<double>(writeDrainSum) / n;
        }
        rows.push_back(row);
    }
    return rows;
}

void
writePortAnalysisCsv(std::ostream &os,
                     const std::vector<PortAnalysisRow> &rows)
{
    os << "ports,squashes,walk_single_cycle,walk_single_cycle_pct,"
          "avg_walk_drain_cycles,max_walk_drain_cycles,"
          "write_single_cycle,write_single_cycle_pct,"
          "avg_write_drain_cycles,max_write_drain_cycles\n";
    for (const PortAnalysisRow &r : rows) {
        os << r.ports << ',' << r.squashes << ',' << r.walkSingleCycle
           << ',' << fmt("%.4f", r.walkSingleCyclePct) << ','
           << fmt("%.6f", r.avgWalkDrainCycles) << ','
           << r.maxWalkDrainCycles << ',' << r.writeSingleCycle << ','
           << fmt("%.4f", r.writeSingleCyclePct) << ','
           << fmt("%.6f", r.avgWriteDrainCycles) << ','
           << r.maxWriteDrainCycles << '\n';
    }
}

std::string
formatPortAnalysis(const std::vector<PortAnalysisRow> &rows)
{
    TextTable table({"ports", "squashes", "walk<=1cyc%", "avg walk cyc",
                     "max walk cyc", "write<=1cyc%", "avg write cyc",
                     "max write cyc"});
    for (const PortAnalysisRow &r : rows) {
        table.addRow({std::to_string(r.ports),
                      std::to_string(r.squashes),
                      fmt("%.1f", r.walkSingleCyclePct),
                      fmt("%.2f", r.avgWalkDrainCycles),
                      std::to_string(r.maxWalkDrainCycles),
                      fmt("%.1f", r.writeSingleCyclePct),
                      fmt("%.2f", r.avgWriteDrainCycles),
                      std::to_string(r.maxWriteDrainCycles)});
    }
    return table.render();
}

} // namespace lbp
