#include "obs/metrics.hh"

#include <ostream>

#include <cstdio>

#include "common/jsonl.hh"
#include "serve/protocol.hh"
#include "sim/result_store.hh"
#include "sim/runner.hh"
#include "sim/sweep.hh"

namespace lbp {

std::uint64_t
FixedHistogram::bucketTotal() const
{
    std::uint64_t total = 0;
    for (unsigned b = 0; b < numBuckets; ++b)
        total += buckets_[b];
    return total;
}

void
MetricsRegistry::counter(std::string name, std::string unit,
                         std::string help, std::uint64_t value)
{
    scalars_.push_back(Metric{std::move(name), std::move(unit),
                              std::move(help),
                              static_cast<double>(value), true});
}

void
MetricsRegistry::gauge(std::string name, std::string unit,
                       std::string help, double value)
{
    scalars_.push_back(Metric{std::move(name), std::move(unit),
                              std::move(help), value, false});
}

void
MetricsRegistry::histogram(std::string name, std::string unit,
                           std::string help, const FixedHistogram &hist)
{
    hists_.push_back(NamedHistogram{std::move(name), std::move(unit),
                                    std::move(help), hist});
}

namespace {

/** Full RFC 8259 escaping from common/jsonl.hh — byte-identical to
 *  the escaper this file used to own for every name/unit/help string
 *  (none carry control characters). */
void
jsonString(std::ostream &os, const std::string &s)
{
    jsonEscape(os, s);
}

} // namespace

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    os << "{\n  \"scalars\": [\n";
    for (std::size_t i = 0; i < scalars_.size(); ++i) {
        const Metric &m = scalars_[i];
        os << "    {\"name\": ";
        jsonString(os, m.name);
        os << ", \"unit\": ";
        jsonString(os, m.unit);
        os << ", \"help\": ";
        jsonString(os, m.help);
        os << ", \"value\": ";
        if (m.integral)
            os << static_cast<std::uint64_t>(m.value);
        else
            os << m.value;
        os << '}' << (i + 1 < scalars_.size() ? "," : "") << '\n';
    }
    os << "  ],\n  \"histograms\": [\n";
    for (std::size_t i = 0; i < hists_.size(); ++i) {
        const NamedHistogram &h = hists_[i];
        os << "    {\"name\": ";
        jsonString(os, h.name);
        os << ", \"unit\": ";
        jsonString(os, h.unit);
        os << ", \"help\": ";
        jsonString(os, h.help);
        os << ", \"count\": " << h.hist.count()
           << ", \"sum\": " << h.hist.sum()
           << ", \"max\": " << h.hist.max() << ", \"buckets\": [";
        for (unsigned b = 0; b < FixedHistogram::numBuckets; ++b)
            os << (b ? "," : "") << h.hist.bucket(b);
        os << "]}" << (i + 1 < hists_.size() ? "," : "") << '\n';
    }
    os << "  ]\n}\n";
}

namespace {

double
u64Field(std::uint64_t v)
{
    return static_cast<double>(v);
}

} // namespace

const std::vector<RunMetricDesc> &
runMetrics()
{
    // Column order is the historical lbpsim CSV order — downstream
    // plotting scripts key on these exact names; append, never reorder.
    static const std::vector<RunMetricDesc> table = {
        {"ipc", "instr/cycle",
         "Retired instructions per cycle over the measurement window "
         "(Figures 5/7/9 speedups derive from IPC ratios)",
         false, [](const RunResult &r) { return r.ipc; }},
        {"mpki", "misp/kinstr",
         "Mispredictions per 1000 retired instructions (Figures 4/6)",
         false, [](const RunResult &r) { return r.mpki; }},
        {"mispredicts", "count",
         "Execute-time misprediction flushes in the measurement window",
         true,
         [](const RunResult &r) { return u64Field(r.stats.mispredicts); }},
        {"instructions", "count",
         "True-path instructions retired in the measurement window",
         true,
         [](const RunResult &r) {
             return u64Field(r.stats.retiredInstrs);
         }},
        {"cycles", "cycles", "Cycles simulated in the measurement window",
         true, [](const RunResult &r) { return u64Field(r.stats.cycles); }},
        {"retired_cond", "count",
         "Conditional branches retired in the measurement window", true,
         [](const RunResult &r) { return u64Field(r.stats.retiredCond); }},
        {"fetched", "count",
         "Instructions fetched (true- and wrong-path)", true,
         [](const RunResult &r) {
             return u64Field(r.stats.fetchedInstrs);
         }},
        {"wrong_path_fetched", "count",
         "Wrong-path instructions fetched after mispredicted branches "
         "(the pollution source of section 2)",
         true,
         [](const RunResult &r) {
             return u64Field(r.stats.wrongPathFetched);
         }},
        {"btb_misses", "count", "BTB misses charged the resteer penalty",
         true, [](const RunResult &r) { return u64Field(r.stats.btbMisses); }},
        {"overrides", "count",
         "Local-predictor overrides of the TAGE direction (whole run)",
         true, [](const RunResult &r) { return u64Field(r.overrides); }},
        {"overrides_correct", "count",
         "Overrides whose direction matched the architectural outcome",
         true,
         [](const RunResult &r) { return u64Field(r.overridesCorrect); }},
        {"repairs", "count",
         "Repair episodes triggered by mispredictions (whole run)", true,
         [](const RunResult &r) { return u64Field(r.repairs); }},
        {"repair_writes", "count",
         "BHT writes performed by repair walks (whole run)", true,
         [](const RunResult &r) { return u64Field(r.repairWrites); }},
        {"early_resteers", "count",
         "Alloc-stage resteers fired by the multi-stage BHT-Defer "
         "(section 3.2)",
         true,
         [](const RunResult &r) { return u64Field(r.earlyResteers); }},
        {"early_resteers_wrong", "count",
         "Early resteers whose deferred direction was itself wrong", true,
         [](const RunResult &r) {
             return u64Field(r.earlyResteersWrong);
         }},
        {"uncheckpointed", "count",
         "Mispredictions with no protecting checkpoint (OBQ overflow — "
         "the unprotected-PC case of section 2.6)",
         true,
         [](const RunResult &r) {
             return u64Field(r.uncheckpointedMispredicts);
         }},
        {"denied_predictions", "count",
         "Lookups declined because the BHT was busy repairing "
         "(section 2.5 availability cost)",
         true,
         [](const RunResult &r) { return u64Field(r.deniedPredictions); }},
        {"skipped_spec_updates", "count",
         "Speculative BHT updates skipped while the table was busy",
         true,
         [](const RunResult &r) {
             return u64Field(r.skippedSpecUpdates);
         }},
        {"avg_walk_length", "entries",
         "Mean OBQ entries examined per repair walk (Figure 8 shape)",
         false, [](const RunResult &r) { return r.avgWalkLength; }},
        {"audit_checks", "count",
         "Invariant-auditor recovery+retire checks (LBP_AUDIT builds)",
         true, [](const RunResult &r) { return u64Field(r.auditChecks); }},
        {"audit_violations", "count",
         "Invariant-auditor violations (must be 0)", true,
         [](const RunResult &r) { return u64Field(r.auditViolations); }},
        {"cache_accesses", "count",
         "Cache-hierarchy accesses, all levels (whole run)", true,
         [](const RunResult &r) { return u64Field(r.cacheAccesses); }},
        {"cache_misses", "count",
         "Cache-hierarchy misses, all levels (whole run)", true,
         [](const RunResult &r) { return u64Field(r.cacheMisses); }},
        {"cache_prefetch_fills", "count",
         "Lines installed by the next-line prefetcher", true,
         [](const RunResult &r) {
             return u64Field(r.cachePrefetchFills);
         }},
        {"core_early_resteers", "count",
         "Alloc-stage resteer flushes charged by the core (the "
         "pipeline-side view of early_resteers)",
         true,
         [](const RunResult &r) {
             return u64Field(r.stats.earlyResteers);
         }},
        {"avg_repairs_needed", "entries",
         "Mean distinct PCs polluted per misprediction (section 2.4 "
         "working-set size)",
         false, [](const RunResult &r) { return r.avgRepairsNeeded; }},
        {"max_repairs_needed", "entries",
         "Largest polluted-PC set any single misprediction produced",
         false,
         [](const RunResult &r) { return u64Field(r.maxRepairsNeeded); }},
        {"avg_repair_writes", "writes",
         "Mean BHT writes per repair episode (port-pressure proxy)",
         false, [](const RunResult &r) { return r.avgRepairWrites; }},
        {"avg_repair_cycles", "cycles",
         "Mean cycles the BHT spent busy per repair episode",
         false, [](const RunResult &r) { return r.avgRepairCycles; }},
        {"audit_resyncs", "count",
         "Golden chains re-anchored after a declared gap (LBP_AUDIT)",
         true, [](const RunResult &r) { return u64Field(r.auditResyncs); }},
        {"audit_skipped", "count",
         "Auditor checks skipped inside declared gaps (LBP_AUDIT)",
         true, [](const RunResult &r) { return u64Field(r.auditSkipped); }},
        {"audit_uncovered", "count",
         "Recoveries the auditor could not cover (uncheckpointed "
         "mispredictions; LBP_AUDIT)",
         true,
         [](const RunResult &r) { return u64Field(r.auditUncovered); }},
        {"tage_kb", "KB", "TAGE storage budget of this configuration",
         false, [](const RunResult &r) { return r.tageKB; }},
        {"local_kb", "KB",
         "Local-predictor (BHT+PT) storage of this configuration",
         false, [](const RunResult &r) { return r.localKB; }},
        {"repair_kb", "KB",
         "Repair-scheme metadata storage (OBQ, snapshots, payloads)",
         false, [](const RunResult &r) { return r.repairKB; }},
    };
    return table;
}

void
registerRunMetrics(MetricsRegistry &reg, const RunResult &r)
{
    for (const RunMetricDesc &d : runMetrics()) {
        if (d.integral)
            reg.counter(d.name, d.unit, d.help,
                        static_cast<std::uint64_t>(d.get(r)));
        else
            reg.gauge(d.name, d.unit, d.help, d.get(r));
    }
}

const std::vector<SweepMetricDesc> &
sweepMetrics()
{
    // Manifest counter order — the sweep-smoke CI job keys on these
    // exact names; append, never reorder.
    static const std::vector<SweepMetricDesc> table = {
        {"sweep_cells_total", "count",
         "(configuration x workload) cells scheduled by the sweep",
         true,
         [](const SweepStats &s) { return u64Field(s.cellsTotal); }},
        {"sweep_cells_simulated", "count",
         "Cells actually simulated (neither cache nor store had them)",
         true,
         [](const SweepStats &s) { return u64Field(s.cellsSimulated); }},
        {"sweep_cells_store_hit", "count",
         "Cells served from the persistent on-disk result store", true,
         [](const SweepStats &s) { return u64Field(s.cellsStoreHit); }},
        {"sweep_cells_cache_hit", "count",
         "Cells served from the in-process SuiteCache", true,
         [](const SweepStats &s) { return u64Field(s.cellsCacheHit); }},
        {"store_hits", "count",
         "Result-store loads that returned a usable entry", true,
         [](const SweepStats &s) { return u64Field(s.storeHits); }},
        {"store_misses", "count",
         "Result-store loads with no usable entry (includes stale)",
         true,
         [](const SweepStats &s) { return u64Field(s.storeMisses); }},
        {"store_stale", "count",
         "Store entries invalidated (fingerprint/key mismatch) and "
         "removed",
         true,
         [](const SweepStats &s) { return u64Field(s.storeStale); }},
        {"store_writes", "count",
         "Freshly simulated configs persisted to the result store",
         true,
         [](const SweepStats &s) { return u64Field(s.storeWrites); }},
        {"sweep_sim_instrs", "count",
         "Instructions simulated by the sweep (warm-up included)", true,
         [](const SweepStats &s) { return u64Field(s.simInstrs); }},
        {"sweep_wall_s", "seconds", "Whole-sweep wall-clock time",
         false, [](const SweepStats &s) { return s.wallSeconds; }},
        {"sweep_cell_wall_s", "seconds",
         "Sum of simulated cells' wall times (the event-log cell "
         "entries sum to this)",
         false, [](const SweepStats &s) { return s.cellWallSeconds; }},
        {"sweep_minstr_per_s", "Minstr/s",
         "Simulated-instruction throughput over the whole sweep wall "
         "time",
         false,
         [](const SweepStats &s) {
             return s.wallSeconds > 0.0
                        ? static_cast<double>(s.simInstrs) / 1e6 /
                              s.wallSeconds
                        : 0.0;
         }},
    };
    return table;
}

void
registerSweepMetrics(MetricsRegistry &reg, const SweepStats &s)
{
    for (const SweepMetricDesc &d : sweepMetrics()) {
        if (d.integral)
            reg.counter(d.name, d.unit, d.help,
                        static_cast<std::uint64_t>(d.get(s)));
        else
            reg.gauge(d.name, d.unit, d.help, d.get(s));
    }
}

const std::vector<ServeMetricDesc> &
serveMetrics()
{
    // Wire order of the lbp-serve-v1 `stats` frame — clients and the
    // serve-smoke CI job key on these exact names; append, never
    // reorder.
    static const std::vector<ServeMetricDesc> table = {
        {"serve_clients_connected", "count",
         "Client connections accepted since startup", true,
         [](const ServeStats &s) {
             return u64Field(s.clientsConnected);
         }},
        {"serve_clients_disconnected", "count",
         "Client connections closed (either side)", true,
         [](const ServeStats &s) {
             return u64Field(s.clientsDisconnected);
         }},
        {"serve_requests_received", "count",
         "Submit frames parsed (accepted or not)", true,
         [](const ServeStats &s) {
             return u64Field(s.requestsReceived);
         }},
        {"serve_requests_accepted", "count",
         "Accepted replies sent (dedup joins included)", true,
         [](const ServeStats &s) {
             return u64Field(s.requestsAccepted);
         }},
        {"serve_requests_deduped", "count",
         "Requests coalesced onto an identical queued or running "
         "sweep",
         true,
         [](const ServeStats &s) {
             return u64Field(s.requestsDeduped);
         }},
        {"serve_requests_rejected", "count",
         "Rejected replies sent (admission, bad specs, draining, "
         "internal failures)",
         true,
         [](const ServeStats &s) {
             return u64Field(s.requestsRejected);
         }},
        {"serve_requests_timed_out", "count",
         "Queued requests expired past the queue timeout", true,
         [](const ServeStats &s) {
             return u64Field(s.requestsTimedOut);
         }},
        {"serve_requests_cancelled", "count",
         "Queued requests dropped when their last subscriber "
         "disconnected",
         true,
         [](const ServeStats &s) {
             return u64Field(s.requestsCancelled);
         }},
        {"serve_requests_completed", "count",
         "Result frames delivered to subscribers", true,
         [](const ServeStats &s) {
             return u64Field(s.requestsCompleted);
         }},
        {"serve_sweeps_executed", "count",
         "runSweep() invocations (deduped requests share one)", true,
         [](const ServeStats &s) {
             return u64Field(s.sweepsExecuted);
         }},
        {"serve_events_streamed", "count",
         "Event frames fanned out to subscribers", true,
         [](const ServeStats &s) {
             return u64Field(s.eventsStreamed);
         }},
        {"serve_queue_high_water", "count",
         "Maximum queued+running request depth observed", true,
         [](const ServeStats &s) {
             return u64Field(s.queueHighWater);
         }},
        {"serve_cells_served", "count",
         "Cells in delivered results (deduped subscribers count "
         "each)",
         true,
         [](const ServeStats &s) { return u64Field(s.cellsServed); }},
        {"serve_cells_simulated", "count",
         "Cells freshly simulated by executed sweeps", true,
         [](const ServeStats &s) {
             return u64Field(s.cellsSimulated);
         }},
        {"serve_cells_store_hit", "count",
         "Cells served from the persistent result store", true,
         [](const ServeStats &s) {
             return u64Field(s.cellsStoreHit);
         }},
        {"serve_cells_cache_hit", "count",
         "Cells served from the resident SuiteCache", true,
         [](const ServeStats &s) {
             return u64Field(s.cellsCacheHit);
         }},
        {"serve_drain_s", "seconds",
         "Drain request to clean exit (0 while serving)", false,
         [](const ServeStats &s) { return s.drainSeconds; }},
        {"serve_scrapes", "count",
         "Metrics expositions served (metrics frames + HTTP scrapes)",
         true,
         [](const ServeStats &s) { return u64Field(s.scrapesServed); }},
        {"serve_heartbeats", "count",
         "Heartbeat records emitted into the daemon event log", true,
         [](const ServeStats &s) {
             return u64Field(s.heartbeatsEmitted);
         }},
        {"serve_store_gc_passes", "count",
         "Idle-time result-store garbage-collection passes", true,
         [](const ServeStats &s) { return u64Field(s.gcPasses); }},
    };
    return table;
}

void
registerServeMetrics(MetricsRegistry &reg, const ServeStats &s)
{
    for (const ServeMetricDesc &d : serveMetrics()) {
        if (d.integral)
            reg.counter(d.name, d.unit, d.help,
                        static_cast<std::uint64_t>(d.get(s)));
        else
            reg.gauge(d.name, d.unit, d.help, d.get(s));
    }
}

const std::vector<StoreMetricDesc> &
storeMetrics()
{
    // Store-lifecycle counter order — the manifest "store" section and
    // the daemon scrape key on these exact names; append, never
    // reorder. (The sweep table's store_* rows are per-sweep deltas;
    // these are the store's own lifetime totals.)
    static const std::vector<StoreMetricDesc> table = {
        {"result_store_hits", "count",
         "Store loads that returned a usable entry (lifetime)", true,
         [](const StoreStats &s) { return u64Field(s.hits); }},
        {"result_store_misses", "count",
         "Store loads with no usable entry, stale included (lifetime)",
         true, [](const StoreStats &s) { return u64Field(s.misses); }},
        {"result_store_stale_deletes", "count",
         "Stale entries (fingerprint/key mismatch) deleted on load",
         true, [](const StoreStats &s) { return u64Field(s.stale); }},
        {"result_store_writes", "count",
         "Entries persisted to the store (lifetime)", true,
         [](const StoreStats &s) { return u64Field(s.writes); }},
        {"result_store_read_bytes", "bytes",
         "Bytes deserialized by successful store loads", true,
         [](const StoreStats &s) { return u64Field(s.bytesRead); }},
        {"result_store_written_bytes", "bytes",
         "Bytes serialized by store writes", true,
         [](const StoreStats &s) { return u64Field(s.bytesWritten); }},
        {"result_store_gc_evicted", "count",
         "Entries removed by garbage-collection passes (age/size cap)",
         true,
         [](const StoreStats &s) { return u64Field(s.gcEvicted); }},
        {"result_store_gc_evicted_bytes", "bytes",
         "Bytes reclaimed by garbage-collection passes", true,
         [](const StoreStats &s) {
             return u64Field(s.gcEvictedBytes);
         }},
    };
    return table;
}

void
registerStoreMetrics(MetricsRegistry &reg, const StoreStats &s)
{
    for (const StoreMetricDesc &d : storeMetrics()) {
        if (d.integral)
            reg.counter(d.name, d.unit, d.help,
                        static_cast<std::uint64_t>(d.get(s)));
        else
            reg.gauge(d.name, d.unit, d.help, d.get(s));
    }
}

void
RunAggregate::add(const RunResult &r)
{
    const std::vector<RunMetricDesc> &table = runMetrics();
    if (sums_.size() < table.size())
        sums_.resize(table.size(), 0.0);
    for (std::size_t i = 0; i < table.size(); ++i)
        sums_[i] += table[i].get(r);
    ++runs_;
}

void
RunAggregate::addTo(MetricsRegistry &reg) const
{
    const std::vector<RunMetricDesc> &table = runMetrics();
    for (std::size_t i = 0; i < table.size(); ++i) {
        const RunMetricDesc &d = table[i];
        const double sum = i < sums_.size() ? sums_[i] : 0.0;
        if (d.integral)
            reg.counter(d.name, d.unit, d.help,
                        static_cast<std::uint64_t>(sum));
        else
            reg.gauge(d.name, d.unit, d.help,
                      runs_ ? sum / static_cast<double>(runs_) : 0.0);
    }
}

namespace {

/** HELP-text escaping per the exposition format: backslash and
 *  newline only (label values additionally escape '"'). */
void
promEscape(std::ostream &os, const std::string &s, bool label)
{
    for (const char c : s) {
        if (c == '\\')
            os << "\\\\";
        else if (c == '\n')
            os << "\\n";
        else if (label && c == '"')
            os << "\\\"";
        else
            os << c;
    }
}

/** One sample value: counters as integers, gauges in full precision
 *  (shortest round-trippable form, deterministic across renders). */
void
promValue(std::ostream &os, double value, bool integral)
{
    if (integral) {
        os << static_cast<std::uint64_t>(value);
    } else {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.17g", value);
        os << buf;
    }
}

void
promHeader(std::ostream &os, const std::string &name,
           const std::string &help, const char *type)
{
    os << "# HELP " << name << ' ';
    promEscape(os, help, false);
    os << '\n' << "# TYPE " << name << ' ' << type << '\n';
}

} // namespace

void
writePrometheus(std::ostream &os, const MetricsRegistry &reg)
{
    for (const Metric &m : reg.scalars()) {
        promHeader(os, m.name, m.help, m.integral ? "counter" : "gauge");
        os << m.name << ' ';
        promValue(os, m.value, m.integral);
        os << '\n';
    }
    for (const NamedHistogram &h : reg.histograms()) {
        promHeader(os, h.name, h.help, "histogram");
        // Buckets are cumulative in the exposition format; samples
        // beyond 2^23 clamp into the last finite bucket (see
        // FixedHistogram), so the last finite count equals _count.
        std::uint64_t cum = 0;
        for (unsigned b = 0; b < FixedHistogram::numBuckets; ++b) {
            cum += h.hist.bucket(b);
            os << h.name << "_bucket{le=\"" << (1ull << b) << "\"} "
               << cum << '\n';
        }
        os << h.name << "_bucket{le=\"+Inf\"} " << h.hist.count()
           << '\n';
        os << h.name << "_sum " << h.hist.sum() << '\n';
        os << h.name << "_count " << h.hist.count() << '\n';
    }
}

void
writePrometheusLabeled(
    std::ostream &os, const char *family, const char *help,
    const char *labelKey,
    const std::vector<std::pair<std::string, std::uint64_t>> &samples)
{
    if (samples.empty())
        return;
    promHeader(os, family, help, "counter");
    for (const auto &[label, value] : samples) {
        os << family << '{' << labelKey << "=\"";
        promEscape(os, label, true);
        os << "\"} " << value << '\n';
    }
}

} // namespace lbp
