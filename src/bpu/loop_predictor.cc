#include "bpu/loop_predictor.hh"

#include "common/logging.hh"

namespace lbp {

// ---------------------------------------------------------------------
// LoopConfig
// ---------------------------------------------------------------------

LoopConfig
LoopConfig::entries64()
{
    LoopConfig cfg;
    cfg.bhtEntries = 64;
    cfg.ptEntries = 64;
    return cfg;
}

LoopConfig
LoopConfig::entries128()
{
    return LoopConfig{};
}

LoopConfig
LoopConfig::entries256()
{
    LoopConfig cfg;
    cfg.bhtEntries = 256;
    cfg.ptEntries = 256;
    return cfg;
}

// ---------------------------------------------------------------------
// LoopPatternTable
// ---------------------------------------------------------------------

LoopPatternTable::LoopPatternTable(unsigned entries, unsigned ways,
                                   unsigned conf_bits,
                                   unsigned conf_threshold,
                                   unsigned conf_penalty,
                                   unsigned tag_bits)
    : table_(entries / ways, ways), confBits_(conf_bits),
      confThresh_(conf_threshold), confPenalty_(conf_penalty),
      tagBits_(tag_bits)
{
    lbp_assert(entries % ways == 0);
    lbp_assert(conf_threshold <= ((1u << conf_bits) - 1));
}

const LoopPatternTable::Entry *
LoopPatternTable::lookup(Addr pc, bool touch)
{
    const auto *way = table_.lookup(key(pc), touch);
    return way ? &way->data : nullptr;
}

void
LoopPatternTable::train(Addr pc, bool sense, std::uint16_t period)
{
    // Single-occurrence "runs" are flips, not loop bodies; training on
    // them would make alternating branches fight over the entry.
    if (period < 2)
        return;

    const std::uint8_t conf_max =
        static_cast<std::uint8_t>((1u << confBits_) - 1);
    auto *way = table_.lookup(key(pc));
    if (!way) {
        auto &fresh = table_.insert(key(pc));
        fresh.data.trip = period;
        fresh.data.sense = sense;
        fresh.data.conf = 0;
        return;
    }
    Entry &e = way->data;
    // Confidence is owned by the prediction-feedback path (CBP-style:
    // every correct computed prediction raises it, a wrong one resets
    // it); exit events only (re)learn the trip while confidence is
    // down, so a changed loop re-trains instead of fighting.
    if (e.sense == sense) {
        if (e.trip != period && e.conf == 0)
            e.trip = period;
    } else if (e.conf == 0) {
        e.sense = sense;
        e.trip = period;
    }
    (void)conf_max;
}

void
LoopPatternTable::feedback(Addr pc, bool predicted, bool actual)
{
    auto *way = table_.lookup(key(pc), false);
    if (!way)
        return;
    if (predicted != actual) {
        // A wrong computed prediction costs confPenalty earned exits.
        way->data.conf = way->data.conf >= confPenalty_
                             ? static_cast<std::uint8_t>(way->data.conf -
                                                         confPenalty_)
                             : static_cast<std::uint8_t>(0);
    } else if (predicted != way->data.sense) {
        // Trust is earned only by correctly-called exits — the hard
        // predictions. Mid-run "continue" calls are trivially right
        // even for a desynchronized counter and must not rebuild
        // confidence, or unrepaired state would keep re-arming itself.
        if (way->data.conf < (1u << confBits_) - 1)
            ++way->data.conf;
    }
}

double
LoopPatternTable::storageKB() const
{
    // trip(11) + conf + sense(1) + tag + valid(1) per entry.
    const double bits_per_entry =
        11.0 + confBits_ + 1.0 + tagBits_ + 1.0;
    return table_.numEntries() * bits_per_entry / 8192.0;
}

// ---------------------------------------------------------------------
// LoopPredictor
// ---------------------------------------------------------------------

LoopPredictor::LoopPredictor(const LoopConfig &cfg,
                             LoopPatternTable *shared_pt)
    : cfg_(cfg), bht_(cfg.bhtEntries / cfg.bhtWays, cfg.bhtWays),
      ownPt_(cfg.ptEntries, cfg.ptWays, cfg.ptConfBits,
             cfg.ptConfThreshold, cfg.ptConfPenalty, cfg.ptTagBits),
      pt_(shared_pt ? shared_pt : &ownPt_)
{
    lbp_assert(cfg.bhtEntries % cfg.bhtWays == 0);
}

bool
LoopPredictor::statePredict(LocalState s,
                            const LoopPatternTable::Entry &e, bool *valid)
{
    *valid = false;
    if (!LoopState::known(s))
        return false;

    const std::uint16_t count = LoopState::count(s);
    const bool run_dir = LoopState::dir(s);
    if (run_dir == e.sense) {
        // Exit exactly when the learned trip is reached (CBP compares
        // CurrentIter == PastIter). An over-counted (polluted) state
        // falls through the equality and keeps predicting "continue":
        // the wrong state is temporary and resynchronizes at the next
        // direction flip (paper section 3.3 observation d) — a >=
        // rule would instead predict a confident early exit every
        // iteration and cascade wrong-path pollution forward.
        *valid = true;
        return count == e.trip ? !e.sense : e.sense;
    }
    // We are in the (normally single-occurrence) non-dominant run right
    // after an exit: the next occurrence returns to the dominant
    // direction. Longer non-dominant runs mean the behaviour shifted.
    if (count == 1) {
        *valid = true;
        return e.sense;
    }
    return false;
}

LocalPred
LoopPredictor::predict(Addr pc)
{
    LocalPred res;
    const auto *way = bht_.lookup(key(pc));
    if (way) {
        res.bhtHit = true;
        res.preState = way->data.state;
    }
    const auto *e = pt_->lookup(pc);
    if (res.bhtHit && e) {
        bool decidable = false;
        const bool dir = statePredict(res.preState, *e, &decidable);
        res.predictable = decidable;
        res.dir = dir;
        res.valid = decidable && pt_->confident(*e);
    }
    return res;
}

LocalPred
LoopPredictor::predictFrom(Addr pc, LocalState state, bool known)
{
    LocalPred res;
    res.bhtHit = known;
    res.preState = state;
    const auto *e = pt_->lookup(pc);
    if (known && e) {
        bool decidable = false;
        const bool dir = statePredict(state, *e, &decidable);
        res.predictable = decidable;
        res.dir = dir;
        res.valid = decidable && pt_->confident(*e);
    }
    return res;
}

void
LoopPredictor::specUpdate(Addr pc, bool dir)
{
    auto *way = bht_.lookup(key(pc));
    if (!way)
        way = &bht_.insert(key(pc));
    way->data.state = LoopState::advance(way->data.state, dir);
}

LoopPredictor::RunState &
LoopPredictor::runFor(Addr pc)
{
    if (retireRuns_.empty())
        retireRuns_.assign(256, {invalidAddr, RunState{}});
    for (;;) {
        const std::size_t mask = retireRuns_.size() - 1;
        std::size_t idx =
            (static_cast<std::size_t>(pc >> 2) * 0x9e3779b97f4a7c15ull) &
            mask;
        for (;;) {
            auto &slot = retireRuns_[idx];
            if (slot.first == pc)
                return slot.second;
            if (slot.first == invalidAddr)
                break;
            idx = (idx + 1) & mask;
        }
        if (retireRunCount_ * 2 < retireRuns_.size()) {
            auto &slot = retireRuns_[idx];
            slot.first = pc;
            ++retireRunCount_;
            return slot.second;
        }
        // Load factor reached 1/2: rehash into a doubled table.
        std::vector<std::pair<Addr, RunState>> old;
        old.swap(retireRuns_);
        retireRuns_.assign(old.size() * 2, {invalidAddr, RunState{}});
        const std::size_t grown_mask = retireRuns_.size() - 1;
        for (const auto &e : old) {
            if (e.first == invalidAddr)
                continue;
            std::size_t j = (static_cast<std::size_t>(e.first >> 2) *
                             0x9e3779b97f4a7c15ull) &
                            grown_mask;
            while (retireRuns_[j].first != invalidAddr)
                j = (j + 1) & grown_mask;
            retireRuns_[j] = e;
        }
    }
}

void
LoopPredictor::retireTrain(Addr pc, bool actual_dir)
{
    RunState &run = runFor(pc);
    if (run.known && run.dir != actual_dir) {
        pt_->train(pc, run.dir, run.count);
        run.count = 1;
        run.dir = actual_dir;
    } else if (!run.known) {
        run.known = true;
        run.dir = actual_dir;
        run.count = 1;
    } else {
        if (run.count < LoopState::counterMask)
            ++run.count;
    }
}

void
LoopPredictor::predictionFeedback(Addr pc, bool predicted, bool actual)
{
    pt_->feedback(pc, predicted, actual);
}

LocalState
LoopPredictor::readState(Addr pc, bool *present) const
{
    const auto *way = bht_.lookup(key(pc));
    *present = way != nullptr;
    return way ? way->data.state : 0;
}

void
LoopPredictor::writeState(Addr pc, LocalState state)
{
    if (auto *way = bht_.lookup(key(pc), false))
        way->data.state = state;
}

LocalState
LoopPredictor::advanceState(LocalState state, bool dir) const
{
    return LoopState::advance(state, dir);
}

void
LoopPredictor::invalidateEntry(Addr pc)
{
    bht_.invalidate(key(pc));
}

void
LoopPredictor::setAllRepairBits()
{
    for (auto &way : bht_.raw())
        way.data.repairBit = true;
}

bool
LoopPredictor::testClearRepairBit(Addr pc)
{
    auto *way = bht_.lookup(key(pc), false);
    if (!way)
        return false;
    const bool prev = way->data.repairBit;
    way->data.repairBit = false;
    return prev;
}

std::vector<std::uint64_t>
LoopPredictor::snapshotBht() const
{
    // Two words per way: [flags|state|tag], [lruStamp].
    std::vector<std::uint64_t> snap;
    snap.reserve(bht_.raw().size() * 2);
    for (const auto &way : bht_.raw()) {
        std::uint64_t w = (way.valid ? 1u : 0u) |
                          (way.data.repairBit ? 2u : 0u) |
                          (static_cast<std::uint64_t>(way.data.state) << 2) |
                          (way.tag << 18);
        snap.push_back(w);
        snap.push_back(way.lruStamp);
    }
    return snap;
}

void
LoopPredictor::restoreBht(const std::vector<std::uint64_t> &snap)
{
    auto &ways = bht_.raw();
    lbp_assert(snap.size() == ways.size() * 2);
    for (std::size_t i = 0; i < ways.size(); ++i) {
        const std::uint64_t w = snap[i * 2];
        ways[i].valid = (w & 1) != 0;
        ways[i].data.repairBit = (w & 2) != 0;
        ways[i].data.state = static_cast<LocalState>((w >> 2) & 0xffff);
        ways[i].tag = w >> 18;
        ways[i].lruStamp = static_cast<std::uint32_t>(snap[i * 2 + 1]);
    }
}

double
LoopPredictor::storageKB() const
{
    // BHT: counter(11) + dir(1) + known(1) + repair(1) + tag + valid(1).
    const double bht_bits =
        bht_.numEntries() * (11.0 + 3.0 + cfg_.bhtTagBits + 1.0);
    const double pt_kb = pt_ == &ownPt_ ? ownPt_.storageKB() : 0.0;
    return bht_bits / 8192.0 + pt_kb;
}

} // namespace lbp
