/**
 * @file
 * Generic two-level local predictor (Yeh & Patt, PAg-style): per-PC
 * history registers in a set-associative BHT, feeding a shared pattern
 * table of saturating counters.
 *
 * Included to substantiate the paper's claim that the repair techniques
 * "can be directly extended to any local predictor design": this class
 * implements the same LocalPredictor interface as CBPw-Loop — the packed
 * state word is a shift register instead of a run counter — and plugs
 * into every repair scheme unchanged.
 *
 * Packed BHT state layout (LocalState): bits[histBits-1:0] history
 * (bit 0 = most recent outcome), bit 12 state-known flag.
 */

#ifndef LBP_BPU_LOCAL_TWO_LEVEL_HH
#define LBP_BPU_LOCAL_TWO_LEVEL_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bpu/predictor.hh"
#include "common/sat_counter.hh"
#include "common/set_assoc.hh"
#include "common/types.hh"

namespace lbp {

/** Geometry of a LocalTwoLevel instance. */
struct LocalTwoLevelConfig
{
    unsigned bhtEntries = 128;
    unsigned bhtWays = 8;
    unsigned histBits = 10;    ///< local history length (<= 11)
    unsigned ctrBits = 3;      ///< pattern-table counter width
    unsigned bhtTagBits = 8;
    /** Override only when the pattern counter is this far from the
     *  midpoint (confidence gate). */
    unsigned confMargin = 3;
};

class LocalTwoLevelPredictor : public LocalPredictor
{
  public:
    explicit LocalTwoLevelPredictor(
        const LocalTwoLevelConfig &cfg = LocalTwoLevelConfig{});

    LocalPred predict(Addr pc) override;
    LocalPred predictFrom(Addr pc, LocalState state,
                          bool known) override;
    void specUpdate(Addr pc, bool dir) override;
    void retireTrain(Addr pc, bool actual_dir) override;

    LocalState readState(Addr pc, bool *present) const override;
    void writeState(Addr pc, LocalState state) override;
    LocalState advanceState(LocalState state, bool dir) const override;
    void invalidateEntry(Addr pc) override;
    void setAllRepairBits() override;
    bool testClearRepairBit(Addr pc) override;
    std::vector<std::uint64_t> snapshotBht() const override;
    void restoreBht(const std::vector<std::uint64_t> &snap) override;

    unsigned bhtEntries() const override { return bht_.numEntries(); }
    double storageKB() const override;

    const LocalTwoLevelConfig &config() const { return cfg_; }

    static constexpr LocalState knownBit = 1u << 12;

  private:
    struct BhtPayload
    {
        LocalState state = 0;
        bool repairBit = false;
    };

    struct RunState
    {
        std::uint16_t hist = 0;
        bool known = false;
    };

    std::uint64_t key(Addr pc) const { return pc >> 2; }
    unsigned histMask() const { return (1u << cfg_.histBits) - 1; }

    LocalTwoLevelConfig cfg_;
    SetAssocTable<BhtPayload> bht_;
    std::vector<std::int8_t> patternTable_;

    /** Retirement-side architectural history reconstruction (same
     *  idealization as LoopPredictor::retireRuns_). */
    std::unordered_map<Addr, RunState> retireHist_;
};

} // namespace lbp

#endif // LBP_BPU_LOCAL_TWO_LEVEL_HH
