/**
 * @file
 * TAGE: a tagless bimodal base plus partially-tagged tables indexed with
 * geometrically-increasing global history lengths (Seznec & Michaud).
 *
 * The implementation keeps the speculative global state — direction
 * history (GHIST), path history (PHIST) and per-table folded histories —
 * checkpointable per prediction, mirroring the paper's observation that
 * global-predictor repair is O(1): every in-flight branch carries its
 * pre-update state and a flush restores the registers directly
 * (section 2.3.1).
 *
 * Training happens at retirement using the table indices/tags computed
 * at prediction time (stored in the in-flight TagePred record), so
 * restores never invalidate pending updates.
 */

#ifndef LBP_BPU_TAGE_HH
#define LBP_BPU_TAGE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "bpu/bimodal.hh"
#include "common/sat_counter.hh"
#include "common/types.hh"

namespace lbp {

/** Compile-time cap on tagged tables (config may use fewer). */
constexpr unsigned tageMaxTables = 16;

/** Geometry of one tagged table. */
struct TageTableConfig
{
    unsigned sizeLog = 9;   ///< log2(entries)
    unsigned tagBits = 8;
    unsigned histLen = 8;   ///< global history length used for indexing
};

/** Full TAGE geometry. */
struct TageConfig
{
    unsigned bimodalLog = 12;
    unsigned ctrBits = 3;
    unsigned uBits = 2;
    unsigned phistBits = 16;
    std::vector<TageTableConfig> tables;

    /** ~7.1KB configuration matching the paper's baseline (Table 2). */
    static TageConfig kb7();

    /** Iso-storage scaled baseline for Fig 14A (~9KB). */
    static TageConfig kb9();

    /** Large configuration from the CBP 64KB category for Fig 14B. */
    static TageConfig kb57();

    /** Total storage in kilobytes (tables + bimodal). */
    double storageKB() const;
};

/** Per-prediction record carried by each in-flight conditional branch. */
struct TagePred
{
    bool pred = false;          ///< final TAGE direction
    bool altPred = false;       ///< alternate prediction
    bool bimodalPred = false;
    std::int8_t provider = -1;     ///< providing table, -1 = bimodal
    std::int8_t altProvider = -1;  ///< alt providing table, -1 = bimodal
    bool providerWeak = false;     ///< provider counter near midpoint
    bool usedAlt = false;          ///< alt chosen over a weak new entry
    std::array<std::uint16_t, tageMaxTables> indices{};
    std::array<std::uint16_t, tageMaxTables> tags{};
};

/** Checkpoint of the speculative global state (O(1) restore). */
struct TageCheckpoint
{
    std::uint64_t ghistHead = 0;
    std::uint32_t phist = 0;
    std::array<std::array<std::uint16_t, 3>, tageMaxTables> folded{};
};

/**
 * The TAGE conditional branch predictor.
 */
class TagePredictor
{
  public:
    explicit TagePredictor(TageConfig cfg = TageConfig::kb7());

    /** Predict the direction of @p pc; fills the in-flight record. */
    bool predict(Addr pc, TagePred &out);

    /**
     * Speculative history push at prediction time. Conditional branches
     * push their (predicted) direction; unconditional transfers push a
     * constant taken bit so path context stays branch-count aligned.
     */
    void specUpdateHist(Addr pc, bool taken);

    /** Capture the speculative global state before a history push. */
    TageCheckpoint checkpoint() const;

    /** Restore the speculative global state (misprediction flush). */
    void restore(const TageCheckpoint &ckpt);

    /** Retirement-time training with the architectural outcome. */
    void train(Addr pc, bool actual, const TagePred &pred);

    const TageConfig &config() const { return cfg_; }
    double storageKB() const { return cfg_.storageKB(); }

    /** Longest history length in use (test/inspection helper). */
    unsigned maxHistLen() const { return maxHist_; }

  private:
    struct TageEntry
    {
        std::uint16_t tag = 0;
        std::int8_t ctr = 0;     ///< signed; >= 0 predicts taken
        std::uint8_t u = 0;      ///< usefulness
    };

    /** Folded (compressed) history register for one table purpose. */
    struct Folded
    {
        std::uint32_t comp = 0;
        unsigned compLen = 1;
        unsigned origLen = 1;
        unsigned outPoint = 0;

        void init(unsigned orig_len, unsigned comp_len);
        void update(bool new_bit, bool old_bit);
    };

    unsigned tableIndex(unsigned t, Addr pc) const;
    std::uint16_t tableTag(unsigned t, Addr pc) const;
    bool ghistAt(unsigned dist) const;
    int ctrMax() const { return (1 << (cfg_.ctrBits - 1)) - 1; }
    int ctrMin() const { return -(1 << (cfg_.ctrBits - 1)); }

    TageConfig cfg_;
    unsigned numTables_;
    unsigned maxHist_;

    BimodalPredictor bimodal_;
    std::vector<std::vector<TageEntry>> tables_;

    // Speculative global state.
    static constexpr unsigned ghistRingLog = 12;
    std::vector<std::uint8_t> ghistRing_;
    std::uint64_t ghistHead_ = 0;
    std::uint32_t phist_ = 0;
    std::array<Folded, tageMaxTables> foldedIdx_;
    std::array<Folded, tageMaxTables> foldedTagA_;
    std::array<Folded, tageMaxTables> foldedTagB_;

    // Training-side state.
    SignedSatCounter useAltOnNa_{4, 0};
    std::uint64_t lfsr_ = 0x123456789ull;
    std::uint64_t trainCount_ = 0;
    std::uint64_t uResetPeriod_ = 1ull << 18;
};

} // namespace lbp

#endif // LBP_BPU_TAGE_HH
