/**
 * @file
 * TAGE: a tagless bimodal base plus partially-tagged tables indexed with
 * geometrically-increasing global history lengths (Seznec & Michaud).
 *
 * The implementation keeps the speculative global state — direction
 * history (GHIST), path history (PHIST) and per-table folded histories —
 * checkpointable per prediction, mirroring the paper's observation that
 * global-predictor repair is O(1): every in-flight branch carries its
 * pre-update state and a flush restores the registers directly
 * (section 2.3.1).
 *
 * Training happens at retirement using the table indices/tags computed
 * at prediction time (stored in the in-flight TagePred record), so
 * restores never invalidate pending updates.
 */

#ifndef LBP_BPU_TAGE_HH
#define LBP_BPU_TAGE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "bpu/bimodal.hh"
#include "common/sat_counter.hh"
#include "common/types.hh"

namespace lbp {

/** Compile-time cap on tagged tables (config may use fewer). */
constexpr unsigned tageMaxTables = 16;

/** Geometry of one tagged table. */
struct TageTableConfig
{
    unsigned sizeLog = 9;   ///< log2(entries)
    unsigned tagBits = 8;
    unsigned histLen = 8;   ///< global history length used for indexing
};

/** Full TAGE geometry. */
struct TageConfig
{
    unsigned bimodalLog = 12;
    unsigned ctrBits = 3;
    unsigned uBits = 2;
    unsigned phistBits = 16;
    std::vector<TageTableConfig> tables;

    /** ~7.1KB configuration matching the paper's baseline (Table 2). */
    static TageConfig kb7();

    /** Iso-storage scaled baseline for Fig 14A (~9KB). */
    static TageConfig kb9();

    /** Large configuration from the CBP 64KB category for Fig 14B. */
    static TageConfig kb57();

    /** Total storage in kilobytes (tables + bimodal). */
    double storageKB() const;
};

/**
 * Per-prediction record carried by each in-flight conditional branch.
 *
 * The per-table index/tag words live in externally-owned storage sized
 * to the predictor's actual table count (numTables), not to the
 * tageMaxTables compile-time cap: in-flight branches draw their slots
 * from the core's branch-record pool arena, so an 8K-entry instruction
 * ring never carries 16-table worth of dead weight per slot. Standalone
 * users (tests, microbenchmarks) bind inline storage via
 * TagePredStorage.
 */
struct TagePred
{
    bool pred = false;          ///< final TAGE direction
    bool altPred = false;       ///< alternate prediction
    bool bimodalPred = false;
    std::int8_t provider = -1;     ///< providing table, -1 = bimodal
    std::int8_t altProvider = -1;  ///< alt providing table, -1 = bimodal
    bool providerWeak = false;     ///< provider counter near midpoint
    bool usedAlt = false;          ///< alt chosen over a weak new entry
    std::uint16_t *indices = nullptr;  ///< numTables entries
    std::uint16_t *tags = nullptr;     ///< numTables entries
};

/** TagePred owning inline index/tag storage (standalone callers). */
struct TagePredStorage : TagePred
{
    TagePredStorage()
    {
        indices = buf.data();
        tags = buf.data() + tageMaxTables;
    }
    TagePredStorage(const TagePredStorage &) = delete;
    TagePredStorage &operator=(const TagePredStorage &) = delete;

    std::array<std::uint16_t, 2 * tageMaxTables> buf{};
};

/**
 * Checkpoint of the speculative global state (O(1) restore). The three
 * folded-history words per table live in externally-owned storage
 * (layout [table * 3 + {idx, tagA, tagB}]), sized to numTables like
 * TagePred's slots; TageCheckpointStorage binds inline storage.
 */
struct TageCheckpoint
{
    std::uint64_t ghistHead = 0;
    std::uint32_t phist = 0;
    std::uint16_t *folded = nullptr;  ///< 3 * numTables entries
};

/** TageCheckpoint owning inline folded storage (standalone callers). */
struct TageCheckpointStorage : TageCheckpoint
{
    TageCheckpointStorage() { folded = buf.data(); }
    TageCheckpointStorage(const TageCheckpointStorage &) = delete;
    TageCheckpointStorage &operator=(const TageCheckpointStorage &) =
        delete;

    std::array<std::uint16_t, 3 * tageMaxTables> buf{};
};

/**
 * The TAGE conditional branch predictor.
 */
class TagePredictor
{
  public:
    explicit TagePredictor(TageConfig cfg = TageConfig::kb7());

    /** Predict the direction of @p pc; fills the in-flight record. */
    bool predict(Addr pc, TagePred &out);

    /**
     * Speculative history push at prediction time. Conditional branches
     * push their (predicted) direction; unconditional transfers push a
     * constant taken bit so path context stays branch-count aligned.
     */
    void specUpdateHist(Addr pc, bool taken);

    /** Capture the speculative global state before a history push. */
    void checkpoint(TageCheckpoint &out) const;

    /** Restore the speculative global state (misprediction flush). */
    void restore(const TageCheckpoint &ckpt);

    /** Retirement-time training with the architectural outcome. */
    void train(Addr pc, bool actual, const TagePred &pred);

    const TageConfig &config() const { return cfg_; }
    double storageKB() const { return cfg_.storageKB(); }

    /** Number of tagged tables in use (sizes pool arenas). */
    unsigned numTables() const { return numTables_; }

    /** Longest history length in use (test/inspection helper). */
    unsigned maxHistLen() const { return maxHist_; }

  private:
    struct TageEntry
    {
        std::uint16_t tag = 0;
        std::int8_t ctr = 0;     ///< signed; >= 0 predicts taken
        std::uint8_t u = 0;      ///< usefulness
    };
    static_assert(sizeof(TageEntry) == 4, "TageEntry must stay packed");

    /**
     * Precomputed per-table geometry: arena offset plus the masks and
     * shifts tableIndex/tableTag recompute from TageTableConfig on
     * every lookup in the vector-of-vectors layout.
     */
    struct TableMeta
    {
        std::uint32_t offset = 0;    ///< first entry in arena_
        std::uint32_t idxMask = 0;   ///< (1 << sizeLog) - 1
        std::uint32_t phMask = 0;    ///< (1 << min(histLen,phistBits)) - 1
        std::uint16_t tagMask = 0;   ///< (1 << tagBits) - 1
        std::uint16_t histLen = 0;
        std::uint8_t sizeLog = 0;
        std::uint8_t keyShift = 0;   ///< sizeLog - (t % 4)
    };

    /** Folded (compressed) history register for one table purpose. */
    struct Folded
    {
        std::uint32_t comp = 0;
        unsigned compLen = 1;
        unsigned origLen = 1;
        unsigned outPoint = 0;

        void init(unsigned orig_len, unsigned comp_len);
        void update(bool new_bit, bool old_bit);
    };

    unsigned tableIndex(unsigned t, Addr pc) const;
    std::uint16_t tableTag(unsigned t, Addr pc) const;
    TageEntry &entry(unsigned t, unsigned idx)
    {
        return arena_[meta_[t].offset + idx];
    }
    const TageEntry &entry(unsigned t, unsigned idx) const
    {
        return arena_[meta_[t].offset + idx];
    }
    bool ghistAt(unsigned dist) const;
    int ctrMax() const { return (1 << (cfg_.ctrBits - 1)) - 1; }
    int ctrMin() const { return -(1 << (cfg_.ctrBits - 1)); }

    TageConfig cfg_;
    unsigned numTables_;
    unsigned maxHist_;

    BimodalPredictor bimodal_;
    /** All tagged tables in one contiguous arena; meta_[t].offset maps
     *  (table, index) to a flat position. */
    std::vector<TageEntry> arena_;
    std::array<TableMeta, tageMaxTables> meta_{};

    /** Per-table folded registers, interleaved so one table's history
     *  push touches a single cache line instead of three. */
    struct FoldedSet
    {
        Folded idx;
        Folded tagA;
        Folded tagB;
    };

    // Speculative global state.
    static constexpr unsigned ghistRingLog = 12;
    std::vector<std::uint8_t> ghistRing_;
    std::uint64_t ghistHead_ = 0;
    std::uint32_t phist_ = 0;
    std::array<FoldedSet, tageMaxTables> folded_;

    // Training-side state.
    SignedSatCounter useAltOnNa_{4, 0};
    std::uint64_t lfsr_ = 0x123456789ull;
    std::uint64_t trainCount_ = 0;
    std::uint64_t uResetPeriod_ = 1ull << 18;
};

} // namespace lbp

#endif // LBP_BPU_TAGE_HH
