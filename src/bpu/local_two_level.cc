#include "bpu/local_two_level.hh"

#include "common/logging.hh"

namespace lbp {

LocalTwoLevelPredictor::LocalTwoLevelPredictor(
    const LocalTwoLevelConfig &cfg)
    : cfg_(cfg), bht_(cfg.bhtEntries / cfg.bhtWays, cfg.bhtWays),
      patternTable_(1u << cfg.histBits, 0)
{
    lbp_assert(cfg.histBits >= 2 && cfg.histBits <= 11);
    lbp_assert(cfg.bhtEntries % cfg.bhtWays == 0);
    lbp_assert(cfg.ctrBits >= 2 && cfg.ctrBits <= 7);
}

LocalPred
LocalTwoLevelPredictor::predict(Addr pc)
{
    LocalPred res;
    const auto *way = bht_.lookup(key(pc));
    if (!way)
        return res;
    res.bhtHit = true;
    res.preState = way->data.state;
    if (!(res.preState & knownBit))
        return res;

    const unsigned hist = res.preState & histMask();
    const std::int8_t ctr = patternTable_[hist];
    const int margin = static_cast<int>(cfg_.confMargin);
    res.predictable = true;
    res.dir = ctr >= 0;
    res.valid = ctr >= margin || ctr < -margin;
    return res;
}

LocalPred
LocalTwoLevelPredictor::predictFrom(Addr pc, LocalState state,
                                    bool known)
{
    (void)pc;
    LocalPred res;
    res.bhtHit = known;
    res.preState = state;
    if (!known || !(state & knownBit))
        return res;
    const std::int8_t ctr = patternTable_[state & histMask()];
    const int margin = static_cast<int>(cfg_.confMargin);
    res.predictable = true;
    res.dir = ctr >= 0;
    res.valid = ctr >= margin || ctr < -margin;
    return res;
}

void
LocalTwoLevelPredictor::specUpdate(Addr pc, bool dir)
{
    auto *way = bht_.lookup(key(pc));
    if (!way)
        way = &bht_.insert(key(pc));
    way->data.state = advanceState(way->data.state, dir);
}

void
LocalTwoLevelPredictor::retireTrain(Addr pc, bool actual_dir)
{
    RunState &run = retireHist_[pc];
    if (run.known) {
        std::int8_t &ctr = patternTable_[run.hist & histMask()];
        const int max = (1 << (cfg_.ctrBits - 1)) - 1;
        const int min = -(1 << (cfg_.ctrBits - 1));
        if (actual_dir) {
            if (ctr < max)
                ++ctr;
        } else {
            if (ctr > min)
                --ctr;
        }
    }
    run.hist = static_cast<std::uint16_t>(
        ((run.hist << 1) | (actual_dir ? 1 : 0)) & histMask());
    run.known = true;
}

LocalState
LocalTwoLevelPredictor::readState(Addr pc, bool *present) const
{
    const auto *way = bht_.lookup(key(pc));
    *present = way != nullptr;
    return way ? way->data.state : 0;
}

void
LocalTwoLevelPredictor::writeState(Addr pc, LocalState state)
{
    if (auto *way = bht_.lookup(key(pc), false))
        way->data.state = state;
}

LocalState
LocalTwoLevelPredictor::advanceState(LocalState state, bool dir) const
{
    const unsigned hist =
        ((static_cast<unsigned>(state) << 1) | (dir ? 1 : 0)) & histMask();
    return static_cast<LocalState>(hist | knownBit);
}

void
LocalTwoLevelPredictor::invalidateEntry(Addr pc)
{
    bht_.invalidate(key(pc));
}

void
LocalTwoLevelPredictor::setAllRepairBits()
{
    for (auto &way : bht_.raw())
        way.data.repairBit = true;
}

bool
LocalTwoLevelPredictor::testClearRepairBit(Addr pc)
{
    auto *way = bht_.lookup(key(pc), false);
    if (!way)
        return false;
    const bool prev = way->data.repairBit;
    way->data.repairBit = false;
    return prev;
}

std::vector<std::uint64_t>
LocalTwoLevelPredictor::snapshotBht() const
{
    std::vector<std::uint64_t> snap;
    snap.reserve(bht_.raw().size() * 2);
    for (const auto &way : bht_.raw()) {
        snap.push_back((way.valid ? 1u : 0u) |
                       (way.data.repairBit ? 2u : 0u) |
                       (static_cast<std::uint64_t>(way.data.state) << 2) |
                       (way.tag << 18));
        snap.push_back(way.lruStamp);
    }
    return snap;
}

void
LocalTwoLevelPredictor::restoreBht(const std::vector<std::uint64_t> &snap)
{
    auto &ways = bht_.raw();
    lbp_assert(snap.size() == ways.size() * 2);
    for (std::size_t i = 0; i < ways.size(); ++i) {
        const std::uint64_t w = snap[i * 2];
        ways[i].valid = (w & 1) != 0;
        ways[i].data.repairBit = (w & 2) != 0;
        ways[i].data.state = static_cast<LocalState>((w >> 2) & 0xffff);
        ways[i].tag = w >> 18;
        ways[i].lruStamp = static_cast<std::uint32_t>(snap[i * 2 + 1]);
    }
}

double
LocalTwoLevelPredictor::storageKB() const
{
    const double bht_bits =
        bht_.numEntries() *
        (cfg_.histBits + 2.0 + cfg_.bhtTagBits + 1.0);
    const double pt_bits =
        static_cast<double>(patternTable_.size()) * cfg_.ctrBits;
    return (bht_bits + pt_bits) / 8192.0;
}

} // namespace lbp
