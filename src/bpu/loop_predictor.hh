/**
 * @file
 * CBPw-Loop: the loop predictor of the CBP-2016 winner, redesigned as a
 * conventional two-level structure per section 2.3 of the paper:
 *
 *  - BHT (first level): set-associative, tracks the *current* iteration
 *    state of each PC — an 11-bit run counter plus the direction being
 *    counted. This is the speculative state that must be repaired after
 *    mispredictions, and it carries a repair bit per entry (Figure 1).
 *  - PT (second level): learns the final trip count (run length of the
 *    dominant direction) and a confidence, updated only after branches
 *    complete execution.
 *
 * Both backward loops (TTT..N) and forward if-then-else exits (NNN..T)
 * are covered: the dominant direction is learned, not assumed.
 *
 * Packed BHT state layout (LocalState): bits[10:0] run length,
 * bit 11 run direction, bit 12 state-known flag.
 */

#ifndef LBP_BPU_LOOP_PREDICTOR_HH
#define LBP_BPU_LOOP_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "bpu/predictor.hh"
#include "common/set_assoc.hh"
#include "common/types.hh"

namespace lbp {

/** Pack/unpack helpers for the loop predictor's BHT state word. */
struct LoopState
{
    static constexpr unsigned counterBits = 11;
    static constexpr LocalState counterMask = (1u << counterBits) - 1;
    static constexpr LocalState dirBit = 1u << 11;
    static constexpr LocalState knownBit = 1u << 12;

    static std::uint16_t count(LocalState s) { return s & counterMask; }
    static bool dir(LocalState s) { return (s & dirBit) != 0; }
    static bool known(LocalState s) { return (s & knownBit) != 0; }

    static LocalState
    make(std::uint16_t count, bool dir, bool known = true)
    {
        return static_cast<LocalState>((count & counterMask) |
                                       (dir ? dirBit : 0) |
                                       (known ? knownBit : 0));
    }

    /** One speculative state-machine step (shared with repair replay). */
    static LocalState
    advance(LocalState s, bool dir_taken)
    {
        if (!known(s) || dir(s) != dir_taken)
            return make(1, dir_taken);
        const std::uint16_t c = count(s);
        return make(c < counterMask ? c + 1 : c, dir_taken);
    }
};

/**
 * The trip-count pattern table (second level). Split out so the
 * multi-stage design can share one PT between BHT-TAGE and BHT-Defer
 * (section 3.2.1 studies both shared and split PT).
 */
class LoopPatternTable
{
  public:
    struct Entry
    {
        std::uint16_t trip = 0;  ///< learned dominant-run length
        std::uint8_t conf = 0;
        bool sense = false;      ///< dominant direction
    };

    LoopPatternTable(unsigned entries, unsigned ways, unsigned conf_bits,
                     unsigned conf_threshold, unsigned conf_penalty,
                     unsigned tag_bits);

    /** Look up a PC; nullptr on miss. Touches LRU when @p touch. */
    const Entry *lookup(Addr pc, bool touch = true);

    /** Retirement-side training with an observed dominant-run exit. */
    void train(Addr pc, bool sense, std::uint16_t period);

    /** CBP-style confidence: ++ on a correctly-called exit, reset to
     *  zero on any wrong computed prediction. */
    void feedback(Addr pc, bool predicted, bool actual);

    bool confident(const Entry &e) const { return e.conf >= confThresh_; }
    unsigned confThreshold() const { return confThresh_; }
    unsigned entries() const { return table_.numEntries(); }
    double storageKB() const;

  private:
    std::uint64_t key(Addr pc) const { return pc >> 2; }

    SetAssocTable<Entry> table_;
    unsigned confBits_;
    unsigned confThresh_;
    unsigned confPenalty_;
    unsigned tagBits_;
};

/** Geometry/knobs for a CBPw-Loop instance. */
struct LoopConfig
{
    unsigned bhtEntries = 128;
    unsigned bhtWays = 8;
    unsigned ptEntries = 128;
    unsigned ptWays = 4;
    unsigned ptConfBits = 3;
    unsigned ptConfThreshold = 3;
    unsigned ptConfPenalty = 2;  ///< trust lost on a wrong prediction
    unsigned bhtTagBits = 8;   ///< paper: 5-bit set + 8-bit tag + 11-bit ctr
    unsigned ptTagBits = 10;

    /** Table 2 configurations. */
    static LoopConfig entries64();
    static LoopConfig entries128();
    static LoopConfig entries256();
};

/**
 * The CBPw-Loop local predictor (BHT + PT).
 */
class LoopPredictor : public LocalPredictor
{
  public:
    /**
     * @param shared_pt when non-null, predictions/training use this
     * external PT (multi-stage shared-PT design) instead of an owned one.
     */
    explicit LoopPredictor(const LoopConfig &cfg = LoopConfig::entries128(),
                           LoopPatternTable *shared_pt = nullptr);

    LocalPred predict(Addr pc) override;
    LocalPred predictFrom(Addr pc, LocalState state,
                          bool known) override;
    void specUpdate(Addr pc, bool dir) override;
    void retireTrain(Addr pc, bool actual_dir) override;
    void predictionFeedback(Addr pc, bool predicted,
                            bool actual) override;

    LocalState readState(Addr pc, bool *present) const override;
    void writeState(Addr pc, LocalState state) override;
    LocalState advanceState(LocalState state, bool dir) const override;
    void invalidateEntry(Addr pc) override;
    void setAllRepairBits() override;
    bool testClearRepairBit(Addr pc) override;
    std::vector<std::uint64_t> snapshotBht() const override;
    void restoreBht(const std::vector<std::uint64_t> &snap) override;

    unsigned bhtEntries() const override { return bht_.numEntries(); }
    double storageKB() const override;

    const LoopConfig &config() const { return cfg_; }
    LoopPatternTable &pt() { return *pt_; }

    /**
     * Derive a direction prediction from a state word and a PT entry;
     * exposed so tests can check the decision logic directly.
     */
    static bool statePredict(LocalState s, const LoopPatternTable::Entry &e,
                             bool *valid);

  private:
    struct BhtPayload
    {
        LocalState state = 0;
        bool repairBit = false;
    };

    struct RunState
    {
        std::uint16_t count = 0;
        bool dir = false;
        bool known = false;
    };

    std::uint64_t key(Addr pc) const { return pc >> 2; }

    RunState &runFor(Addr pc);

    LoopConfig cfg_;
    SetAssocTable<BhtPayload> bht_;
    LoopPatternTable ownPt_;
    LoopPatternTable *pt_;

    /**
     * Retirement-side architectural run reconstruction used to train the
     * PT with exact exit periods. Stands in for the paper's completion-
     * time PT update path; uniform across all repair schemes (DESIGN.md
     * section 6 idealization note). Stored in a linear-probe table
     * keyed by PC — this is queried once per retired conditional
     * branch, where a node-based map's hashing and pointer chasing was
     * measurable.
     */
    std::vector<std::pair<Addr, RunState>> retireRuns_;
    std::size_t retireRunCount_ = 0;
};

} // namespace lbp

#endif // LBP_BPU_LOOP_PREDICTOR_HH
