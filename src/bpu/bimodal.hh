/**
 * @file
 * Smith-style bimodal predictor: a table of 2-bit saturating counters
 * indexed by PC. Used standalone in tests/examples and as TAGE's tagless
 * base component.
 */

#ifndef LBP_BPU_BIMODAL_HH
#define LBP_BPU_BIMODAL_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/set_assoc.hh"
#include "common/types.hh"

namespace lbp {

class BimodalPredictor
{
  public:
    explicit BimodalPredictor(unsigned size_log = 12, unsigned ctr_bits = 2)
        : sizeLog_(size_log), ctrBits_(ctr_bits),
          table_(1u << size_log, weakNotTaken())
    {
        lbp_assert(ctr_bits >= 1 && ctr_bits <= 8);
    }

    unsigned
    index(Addr pc) const
    {
        return static_cast<unsigned>((pc >> 2) & ((1u << sizeLog_) - 1));
    }

    bool
    predict(Addr pc) const
    {
        return table_[index(pc)] >= (1u << (ctrBits_ - 1));
    }

    void
    update(Addr pc, bool taken)
    {
        std::uint8_t &c = table_[index(pc)];
        if (taken) {
            if (c < maxCtr())
                ++c;
        } else {
            if (c > 0)
                --c;
        }
    }

    double
    storageKB() const
    {
        return static_cast<double>((1u << sizeLog_) * ctrBits_) / 8192.0;
    }

  private:
    std::uint8_t maxCtr() const
    {
        return static_cast<std::uint8_t>((1u << ctrBits_) - 1);
    }
    std::uint8_t weakNotTaken() const
    {
        return static_cast<std::uint8_t>((1u << (ctrBits_ - 1)) - 1);
    }

    unsigned sizeLog_;
    unsigned ctrBits_;
    std::vector<std::uint8_t> table_;
};

} // namespace lbp

#endif // LBP_BPU_BIMODAL_HH
