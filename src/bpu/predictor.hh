/**
 * @file
 * Shared branch-predictor interfaces and in-flight prediction records.
 *
 * The repair layer (src/repair) is written against the LocalPredictor
 * interface, not against the loop predictor concretely: the paper's
 * repair techniques manipulate opaque per-PC BHT state (an 11-bit
 * counter for CBPw-Loop, a history register for a generic two-level
 * predictor), so any local predictor that exposes its state words this
 * way plugs into every repair scheme unchanged.
 */

#ifndef LBP_BPU_PREDICTOR_HH
#define LBP_BPU_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace lbp {

/** Packed per-PC local state carried through the pipeline (<= 16 bits). */
using LocalState = std::uint16_t;

/** Result of a local-predictor lookup at prediction time. */
struct LocalPred
{
    bool bhtHit = false;    ///< PC present in the BHT
    /** The predictor can compute a direction (state + second level hit),
     *  regardless of confidence. Drives confidence training. */
    bool predictable = false;
    bool valid = false;     ///< predictable AND confident: may override
    bool dir = false;       ///< computed direction when predictable
    LocalState preState = 0;  ///< pre-update BHT state (checkpoint payload)
};

/**
 * Abstract local (per-PC history) direction predictor with the state
 * save/restore hooks the repair schemes require.
 */
class LocalPredictor
{
  public:
    virtual ~LocalPredictor() = default;

    /** Read-only lookup; does not modify predictor state. */
    virtual LocalPred predict(Addr pc) = 0;

    /**
     * Lookup against an externally-supplied first-level state instead
     * of the BHT's own entry (the future-file organization reads the
     * speculative state from its queue; section 2.6).
     */
    virtual LocalPred predictFrom(Addr pc, LocalState state,
                                  bool known) = 0;

    /**
     * Speculative BHT update with the pipeline's chosen direction,
     * applied right after prediction. Allocates a BHT entry on miss.
     */
    virtual void specUpdate(Addr pc, bool dir) = 0;

    /**
     * Retirement-side training with the architectural outcome (updates
     * the second-level table / confidence, not the speculative BHT).
     */
    virtual void retireTrain(Addr pc, bool actual_dir) = 0;

    /**
     * Retirement-side feedback for a *used* (confident) prediction this
     * predictor made. Wrong predictions kill the entry's confidence —
     * the CBP-style self-silencing that stops a desynchronized BHT
     * entry from overriding at full confidence indefinitely.
     */
    virtual void
    predictionFeedback(Addr pc, bool predicted, bool actual)
    {
        (void)pc;
        (void)predicted;
        (void)actual;
    }

    // --- Raw state access for the repair layer -------------------------

    /** Read a PC's packed BHT state. @p present reports a hit. */
    virtual LocalState readState(Addr pc, bool *present) const = 0;

    /** Overwrite a PC's packed BHT state; no-op when absent. */
    virtual void writeState(Addr pc, LocalState state) = 0;

    /** Advance a packed state by one outcome (repair-side replay). */
    virtual LocalState advanceState(LocalState state, bool dir) const = 0;

    /** Invalidate a PC's BHT entry if present. */
    virtual void invalidateEntry(Addr pc) = 0;

    /** Set the repair bit on every BHT entry (start of a walk). */
    virtual void setAllRepairBits() = 0;

    /**
     * Test-and-clear a PC's repair bit; returns true when the bit was
     * set (i.e. this is the entry's first write of the current walk).
     * Returns false for absent PCs.
     */
    virtual bool testClearRepairBit(Addr pc) = 0;

    /** Whole-BHT snapshot (for the snapshot-queue scheme & oracle). */
    virtual std::vector<std::uint64_t> snapshotBht() const = 0;

    /** Restore a snapshot taken from an identically-configured table. */
    virtual void restoreBht(const std::vector<std::uint64_t> &snap) = 0;

    // --- Introspection --------------------------------------------------

    virtual unsigned bhtEntries() const = 0;
    virtual double storageKB() const = 0;
};

} // namespace lbp

#endif // LBP_BPU_PREDICTOR_HH
