#include "bpu/tage.hh"

#include "common/logging.hh"
#include "common/random.hh"

namespace lbp {

// ---------------------------------------------------------------------
// Configurations
// ---------------------------------------------------------------------

TageConfig
TageConfig::kb7()
{
    TageConfig cfg;
    cfg.bimodalLog = 12;  // 4096 x 2b = 1KB
    cfg.tables = {
        {9, 7, 5},   {9, 7, 9},   {9, 8, 15},  {9, 8, 25},
        {9, 9, 44},  {9, 10, 76}, {9, 11, 130},
    };
    return cfg;
}

TageConfig
TageConfig::kb9()
{
    TageConfig cfg;
    cfg.bimodalLog = 12;  // 4096 x 2b = 1KB
    // Iso-storage scaling spends the extra ~2KB on history reach (two
    // longer-history tables) plus one doubled mid table — the spend
    // that actually buys accuracy when the limiter is how far back a
    // loop exit signature lies.
    cfg.tables = {
        {9, 7, 5},   {9, 7, 9},    {9, 8, 15},   {10, 8, 25},
        {9, 9, 44},  {9, 10, 76},  {9, 11, 130}, {9, 12, 220},
        {9, 12, 380},
    };
    return cfg;
}

TageConfig
TageConfig::kb57()
{
    TageConfig cfg;
    cfg.bimodalLog = 14;  // 16384 x 2b = 4KB
    cfg.tables = {
        {11, 8, 4},    {11, 9, 6},    {11, 9, 10},   {11, 10, 16},
        {11, 10, 25},  {11, 11, 40},  {11, 11, 64},  {11, 12, 101},
        {11, 12, 160}, {11, 13, 254}, {11, 13, 403}, {11, 14, 640},
    };
    return cfg;
}

double
TageConfig::storageKB() const
{
    double bits = static_cast<double>((1u << bimodalLog) * 2);
    for (const auto &t : tables)
        bits += static_cast<double>(1u << t.sizeLog) *
                (t.tagBits + ctrBits + uBits);
    return bits / 8192.0;
}

// ---------------------------------------------------------------------
// Folded history
// ---------------------------------------------------------------------

void
TagePredictor::Folded::init(unsigned orig_len, unsigned comp_len)
{
    lbp_assert(comp_len >= 1 && comp_len <= 16);
    comp = 0;
    origLen = orig_len;
    compLen = comp_len;
    outPoint = orig_len % comp_len;
}

void
TagePredictor::Folded::update(bool new_bit, bool old_bit)
{
    comp = (comp << 1) | (new_bit ? 1u : 0u);
    comp ^= (old_bit ? 1u : 0u) << outPoint;
    comp ^= comp >> compLen;
    comp &= (1u << compLen) - 1;
}

// ---------------------------------------------------------------------
// TagePredictor
// ---------------------------------------------------------------------

TagePredictor::TagePredictor(TageConfig cfg)
    : cfg_(std::move(cfg)),
      numTables_(static_cast<unsigned>(cfg_.tables.size())),
      maxHist_(0), bimodal_(cfg_.bimodalLog, 2),
      ghistRing_(1u << ghistRingLog, 0)
{
    lbp_assert(numTables_ >= 1 && numTables_ <= tageMaxTables);
    std::uint32_t total = 0;
    for (unsigned t = 0; t < numTables_; ++t) {
        const auto &tc = cfg_.tables[t];
        lbp_assert(tc.sizeLog >= 4 && tc.sizeLog <= 16);
        lbp_assert(tc.tagBits >= 4 && tc.tagBits <= 15);
        TableMeta &m = meta_[t];
        m.offset = total;
        m.idxMask = (1u << tc.sizeLog) - 1;
        m.phMask = (1u << std::min(tc.histLen, cfg_.phistBits)) - 1;
        m.tagMask = static_cast<std::uint16_t>((1u << tc.tagBits) - 1);
        m.histLen = static_cast<std::uint16_t>(tc.histLen);
        m.sizeLog = static_cast<std::uint8_t>(tc.sizeLog);
        m.keyShift = static_cast<std::uint8_t>(tc.sizeLog - (t % 4));
        total += 1u << tc.sizeLog;
        maxHist_ = std::max(maxHist_, tc.histLen);
        folded_[t].idx.init(tc.histLen, tc.sizeLog);
        folded_[t].tagA.init(tc.histLen, tc.tagBits);
        folded_[t].tagB.init(tc.histLen,
                            tc.tagBits > 1 ? tc.tagBits - 1 : 1);
    }
    arena_.assign(total, TageEntry{});
    lbp_assert(maxHist_ < (1u << ghistRingLog) / 2);
}

bool
TagePredictor::ghistAt(unsigned dist) const
{
    // dist 0 = most recently pushed bit.
    const std::uint64_t pos = ghistHead_ - dist;
    return ghistRing_[pos & ((1u << ghistRingLog) - 1)] != 0;
}

unsigned
TagePredictor::tableIndex(unsigned t, Addr pc) const
{
    const TableMeta &m = meta_[t];
    const std::uint64_t key = pc >> 2;
    // Path-history contribution is limited to min(histLen, phistBits)
    // bits (Seznec's F function): a short-history table must not have
    // its index perturbed by long-range path context, or it never
    // converges.
    const unsigned ph = static_cast<unsigned>(phist_) & m.phMask;
    const unsigned phist_fold = (ph ^ (ph >> m.sizeLog)) & m.idxMask;
    std::uint64_t idx = key ^ (key >> m.keyShift) ^
                        folded_[t].idx.comp ^ phist_fold;
    return static_cast<unsigned>(idx & m.idxMask);
}

std::uint16_t
TagePredictor::tableTag(unsigned t, Addr pc) const
{
    const std::uint64_t key = pc >> 2;
    std::uint64_t tag = key ^ folded_[t].tagA.comp ^
                        (static_cast<std::uint64_t>(folded_[t].tagB.comp)
                         << 1);
    return static_cast<std::uint16_t>(tag & meta_[t].tagMask);
}

bool
TagePredictor::predict(Addr pc, TagePred &out)
{
    // Reset the scalar fields only: the index/tag slots point into
    // caller-owned storage (pool arena or TagePredStorage) and the
    // first numTables_ entries are overwritten below.
    out.pred = out.altPred = out.bimodalPred = false;
    out.provider = out.altProvider = -1;
    out.providerWeak = out.usedAlt = false;

    out.bimodalPred = bimodal_.predict(pc);

    int provider = -1;
    int alt_provider = -1;
    for (unsigned t = 0; t < numTables_; ++t) {
        out.indices[t] = static_cast<std::uint16_t>(tableIndex(t, pc));
        out.tags[t] = tableTag(t, pc);
        const TageEntry &e = entry(t, out.indices[t]);
        if (e.tag == out.tags[t]) {
            // Longest-history tag hit wins; the previous hit becomes
            // the alternate provider. Pure tag match, as in hardware:
            // cold aliases just read as weak entries.
            alt_provider = provider;
            provider = static_cast<int>(t);
        }
    }

    out.provider = static_cast<std::int8_t>(provider);
    out.altProvider = static_cast<std::int8_t>(alt_provider);

    const bool alt_dir =
        alt_provider >= 0
            ? entry(static_cast<unsigned>(alt_provider),
                    out.indices[alt_provider]).ctr >= 0
            : out.bimodalPred;
    out.altPred = alt_dir;

    if (provider < 0) {
        out.pred = out.bimodalPred;
        return out.pred;
    }

    const TageEntry &pe =
        entry(static_cast<unsigned>(provider), out.indices[provider]);
    const bool provider_dir = pe.ctr >= 0;
    out.providerWeak = (pe.ctr == 0 || pe.ctr == -1);

    // Newly-allocated entries (weak counter, no proven usefulness) may
    // be overridden by the alternate prediction when the use-alt
    // counter says new entries have been unreliable.
    const bool newly_alloc = out.providerWeak && pe.u == 0;
    if (newly_alloc && useAltOnNa_.value() >= 0 &&
        alt_dir != provider_dir) {
        out.usedAlt = true;
        out.pred = alt_dir;
    } else {
        out.pred = provider_dir;
    }
    return out.pred;
}

void
TagePredictor::specUpdateHist(Addr pc, bool taken)
{
    const bool new_bit = taken;
    ++ghistHead_;
    ghistRing_[ghistHead_ & ((1u << ghistRingLog) - 1)] = new_bit ? 1 : 0;
    for (unsigned t = 0; t < numTables_; ++t) {
        const unsigned len = cfg_.tables[t].histLen;
        // The bit that just fell out of this table's window.
        const bool old_bit = ghistAt(len);
        folded_[t].idx.update(new_bit, old_bit);
        folded_[t].tagA.update(new_bit, old_bit);
        folded_[t].tagB.update(new_bit, old_bit);
    }
    phist_ = ((phist_ << 1) |
              static_cast<std::uint32_t>((pc >> 2) & 1)) &
             ((1u << cfg_.phistBits) - 1);
}

void
TagePredictor::checkpoint(TageCheckpoint &ckpt) const
{
    ckpt.ghistHead = ghistHead_;
    ckpt.phist = phist_;
    for (unsigned t = 0; t < numTables_; ++t) {
        ckpt.folded[t * 3 + 0] =
            static_cast<std::uint16_t>(folded_[t].idx.comp);
        ckpt.folded[t * 3 + 1] =
            static_cast<std::uint16_t>(folded_[t].tagA.comp);
        ckpt.folded[t * 3 + 2] =
            static_cast<std::uint16_t>(folded_[t].tagB.comp);
    }
}

void
TagePredictor::restore(const TageCheckpoint &ckpt)
{
    // The ring still holds all bits older than the checkpoint head as
    // long as fewer than ringSize - maxHist pushes happened since the
    // checkpoint was taken; in-flight windows are far smaller.
    lbp_assert(ghistHead_ - ckpt.ghistHead <
               (1u << ghistRingLog) - maxHist_);
    ghistHead_ = ckpt.ghistHead;
    phist_ = ckpt.phist;
    for (unsigned t = 0; t < numTables_; ++t) {
        folded_[t].idx.comp = ckpt.folded[t * 3 + 0];
        folded_[t].tagA.comp = ckpt.folded[t * 3 + 1];
        folded_[t].tagB.comp = ckpt.folded[t * 3 + 2];
    }
}

void
TagePredictor::train(Addr pc, bool actual, const TagePred &pred)
{
    ++trainCount_;

    // Periodic graceful usefulness aging (arena order == old
    // table-major order, so the sweep is byte-identical).
    if ((trainCount_ & (uResetPeriod_ - 1)) == 0) {
        for (auto &e : arena_)
            e.u >>= 1;
    }

    const bool mispredicted = pred.pred != actual;

    if (pred.provider >= 0) {
        TageEntry &pe = entry(static_cast<unsigned>(pred.provider),
                              pred.indices[pred.provider]);
        const bool provider_dir = pe.ctr >= 0;

        // Train the use-alt chooser on newly-allocated providers whose
        // prediction differed from the alternate.
        const bool newly_alloc =
            (pe.ctr == 0 || pe.ctr == -1) && pe.u == 0;
        if (newly_alloc && provider_dir != pred.altPred)
            useAltOnNa_.update(pred.altPred == actual);

        // Update the provider counter toward the outcome.
        if (actual) {
            if (pe.ctr < ctrMax())
                ++pe.ctr;
        } else {
            if (pe.ctr > ctrMin())
                --pe.ctr;
        }

        // Usefulness: provider proved better/worse than the alternate.
        if (provider_dir != pred.altPred) {
            if (provider_dir == actual) {
                if (pe.u < ((1u << cfg_.uBits) - 1))
                    ++pe.u;
            } else {
                if (pe.u > 0)
                    --pe.u;
            }
        }
    } else {
        bimodal_.update(pc, actual);
    }

    // Allocate a longer-history entry on misprediction.
    if (mispredicted &&
        pred.provider < static_cast<int>(numTables_) - 1) {
        const unsigned start = static_cast<unsigned>(pred.provider + 1);
        // Random skip declusters allocations (Seznec).
        lfsr_ = splitmix64(lfsr_);
        unsigned first = start + static_cast<unsigned>(lfsr_ & 1);
        if (first >= numTables_)
            first = start;

        bool allocated = false;
        for (unsigned t = first; t < numTables_; ++t) {
            TageEntry &e = entry(t, pred.indices[t]);
            if (e.u == 0) {
                e.tag = pred.tags[t];
                e.ctr = actual ? 0 : -1;
                allocated = true;
                break;
            }
        }
        if (!allocated) {
            for (unsigned t = start; t < numTables_; ++t) {
                TageEntry &e = entry(t, pred.indices[t]);
                if (e.u > 0)
                    --e.u;
            }
        }
    }
}

} // namespace lbp
