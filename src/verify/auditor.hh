/**
 * @file
 * Debug-mode speculative-state invariant auditor.
 *
 * The paper's results stand or fall on the repair schemes restoring
 * wrong-path speculative BHT state *exactly* — a bug here does not
 * crash, it silently shifts MPKI/IPC. The auditor mechanizes the
 * paper's "perfect repair" reference model as a runtime checker: it
 * shadows every speculative BHT update the pipeline performs, replays
 * retired branches through a golden in-order chain of architectural
 * outcomes, and cross-checks the live predictor state at the two points
 * where correctness is decidable:
 *
 *  - At every misprediction recovery (after the scheme's repair and the
 *    pipeline squash): each PC polluted by a wrong-path speculative
 *    update must read back the pre-update state of its *oldest*
 *    wrong-path instance — for the mispredicting PC itself, advanced by
 *    the architectural outcome when the scheme checkpointed it.
 *  - At every conditional-branch retire: the pre-update state the
 *    branch observed at prediction time must equal the golden chain of
 *    architectural outcomes of all older same-PC branches, folded with
 *    the speculative updates the auditor knows survived.
 *
 * Both checks are exact for the schemes that claim full repair
 * (perfect, backward-walk, forward-walk — with or without coalescing —
 * and snapshot); coverage gaps those schemes declare by design (OBQ
 * overflow, snapshot eviction, busy-port skips, wrong-path BHT
 * allocations that cannot be rolled back) are tracked and excluded
 * instead of reported, so a clean run means clean state, not a silent
 * checker. The auditor is compiled unconditionally (its own unit tests
 * always run); the *core pipeline hooks* are compiled in only under
 * -DLBP_AUDIT=1 (`cmake -DLBP_AUDIT=ON`).
 */

#ifndef LBP_VERIFY_AUDITOR_HH
#define LBP_VERIFY_AUDITOR_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "bpu/predictor.hh"
#include "common/types.hh"
#include "core/dyn_inst.hh"
#include "repair/scheme.hh"

namespace lbp {

/** Auditor behavior knobs. */
struct AuditorConfig
{
    bool checkAtRecovery = true;  ///< direct BHT check after each repair
    bool checkAtRetire = true;    ///< golden-chain check at each retire
    bool panicOnViolation = false;  ///< abort the run on first violation
    unsigned maxReports = 8;      ///< stderr diagnostics before going quiet
};

/** Auditor outcome counters. */
struct AuditorStats
{
    std::uint64_t recoveryChecks = 0;    ///< PC states compared at recovery
    std::uint64_t retireChecks = 0;      ///< pre-states compared at retire
    std::uint64_t recoveryViolations = 0;
    std::uint64_t retireViolations = 0;
    std::uint64_t resyncs = 0;     ///< benign chain re-adoptions
    std::uint64_t skipped = 0;     ///< checks suppressed (declared gaps)
    std::uint64_t uncoveredRecoveries = 0;  ///< scheme declared no repair

    std::uint64_t
    violations() const
    {
        return recoveryViolations + retireViolations;
    }
};

/**
 * The shadow oracle. Wire its three event hooks next to the scheme's
 * pipeline hooks (OooCore does this under LBP_AUDIT; tests drive it
 * directly):
 *
 *   atPredict   -> onPredict(di)
 *   atMispredict + atSquash -> onRecovery(di, live, covered)
 *   atRetire    -> onRetire(di)   [before the scheme's own atRetire]
 */
class SpecStateAuditor
{
  public:
    /**
     * @param model supplies advanceState() semantics only; typically
     * the audited scheme's own predictor. Never mutated.
     */
    explicit SpecStateAuditor(const LocalPredictor &model,
                              const AuditorConfig &cfg = {});

    /** True for repair kinds whose claimed contract the auditor can
     *  check exactly (full immediate repair of speculative state). */
    static bool auditableKind(RepairKind kind);

    /** Record a conditional branch's fetch-stage prediction. */
    void onPredict(const DynInst &di);

    /**
     * Cross-check after a misprediction recovery. Call after the
     * scheme's atMispredict and atSquash, before the pipeline reuses
     * the BHT. @p covered is false when the scheme itself declared the
     * recovery unrepairable (e.g. OBQ overflow). @p repairSet, when
     * non-null, is the scheme's declared coverage (LimitedPc's M-PC
     * payload): polluted PCs outside it are a designed gap — counted
     * as skipped and desynced, not asserted. The mispredicting PC
     * itself is always checked; every scheme repairs at least that.
     */
    void onRecovery(const DynInst &cause, const LocalPredictor &live,
                    bool covered,
                    const std::vector<Addr> *repairSet = nullptr);

    /** Cross-check and advance the golden chain at a conditional
     *  branch's retirement. Call before the scheme's atRetire. */
    void onRetire(const DynInst &di);

    const AuditorStats &stats() const { return stats_; }

  private:
    /** One shadowed in-flight prediction. */
    struct SpecRec
    {
        InstSeq seq = invalidSeq;
        Addr pc = 0;
        LocalState pre = 0;     ///< BHT state observed before the update
        bool bhtHit = false;
        bool specUpdated = false;
        bool checkpointed = false;  ///< pre-state captured (OBQ/snapshot)
        bool dir = false;       ///< direction written into the BHT
    };

    /** Golden per-PC chain: expected pre-state for the next retired
     *  branch of this PC. */
    struct Chain
    {
        LocalState state = 0;
        bool desynced = false;  ///< a declared gap made it unverifiable
        /**
         * The flush that caused the desync. Records predicted at or
         * before this seq observed pre-pollution state and must not be
         * adopted as resync points; only a fresh post-flush observation
         * reflects the (unrepaired) live state.
         */
        InstSeq desyncSeq = 0;
    };

    void desync(Addr pc, InstSeq cause_seq);

    void report(const char *what, const DynInst &di, LocalState expect,
                LocalState got);

    const LocalPredictor &model_;
    AuditorConfig cfg_;
    std::deque<SpecRec> inflight_;
    std::unordered_map<Addr, Chain> arch_;
    AuditorStats stats_;
    unsigned reported_ = 0;
};

} // namespace lbp

#endif // LBP_VERIFY_AUDITOR_HH
