#include "verify/auditor.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace lbp {

SpecStateAuditor::SpecStateAuditor(const LocalPredictor &model,
                                   const AuditorConfig &cfg)
    : model_(model), cfg_(cfg)
{
}

bool
SpecStateAuditor::auditableKind(RepairKind kind)
{
    // Exact auditing needs the scheme's claimed contract to be "every
    // polluted BHT entry the scheme declares covered is restored,
    // immediately and in full, from checkpoints of the live table".
    // That covers both walks and the snapshot queue outright. Two
    // schemes with *declared* gaps are auditable through the gap
    // model: LimitedPc publishes its M-PC repair set per recovery
    // (lastRepairSet()), so pollution outside the set is counted as a
    // designed divergence rather than asserted; MultiStage checkpoints
    // only BHT-Defer, whose alloc-stage records (auditsAtAlloc()) make
    // its forward walk exactly checkable — BHT-TAGE is disposable by
    // design (invalidated during repair, refilled by copy) and stays
    // outside the audited surface. PerfectRepair is excluded
    // deliberately: it restores from an independently-managed oracle
    // table whose (legitimate) eviction-history divergence from the
    // live table makes exact comparison against live checkpoints
    // ill-defined — it *is* the reference model the auditor
    // replicates. The rest (no-repair, retire-update, future-file) do
    // not claim a repair contract at all.
    switch (kind) {
      case RepairKind::BackwardWalk:
      case RepairKind::ForwardWalk:
      case RepairKind::Snapshot:
      case RepairKind::LimitedPc:
      case RepairKind::MultiStage:
        return true;
      default:
        return false;
    }
}

void
SpecStateAuditor::report(const char *what, const DynInst &di,
                         LocalState expect, LocalState got)
{
    if (reported_ < cfg_.maxReports) {
        ++reported_;
        std::fprintf(stderr,
                     "audit: %s mismatch pc=%#llx seq=%llu "
                     "expect=%#x got=%#x\n",
                     what,
                     static_cast<unsigned long long>(di.pc),
                     static_cast<unsigned long long>(di.seq),
                     static_cast<unsigned>(expect),
                     static_cast<unsigned>(got));
    }
    if (cfg_.panicOnViolation)
        lbp_panic("speculative-state audit violation");
}

void
SpecStateAuditor::desync(Addr pc, InstSeq cause_seq)
{
    Chain &c = arch_[pc];
    c.desynced = true;
    if (cause_seq > c.desyncSeq)
        c.desyncSeq = cause_seq;
}

void
SpecStateAuditor::onPredict(const DynInst &di)
{
    lbp_assert(di.isCond());
    SpecRec rec;
    rec.seq = di.seq;
    rec.pc = di.pc;
    rec.pre = di.br.local.preState;
    rec.bhtHit = di.br.local.bhtHit;
    rec.specUpdated = di.br.specUpdated;
    rec.checkpointed = di.br.checkpointed;
    rec.dir = di.br.finalPred;
    inflight_.push_back(rec);
}

void
SpecStateAuditor::onRecovery(const DynInst &cause,
                             const LocalPredictor &live, bool covered,
                             const std::vector<Addr> *repairSet)
{
    // The wrong-path window: the mispredicting branch's own (wrong-
    // direction) update plus everything fetched after it.
    std::size_t first = inflight_.size();
    while (first > 0 && inflight_[first - 1].seq >= cause.seq)
        --first;

    if (!covered) {
        // The scheme declared this recovery unrepairable (OBQ overflow,
        // snapshot-queue eviction). Every polluted PC becomes
        // unverifiable until the golden chain re-syncs on a later
        // observation.
        ++stats_.uncoveredRecoveries;
        for (std::size_t i = first; i < inflight_.size(); ++i) {
            if (inflight_[i].specUpdated)
                desync(inflight_[i].pc, cause.seq);
        }
    } else if (cfg_.checkAtRecovery) {
        // Oldest polluting instance per PC decides the expected
        // post-repair state: its pre-update checkpoint is the
        // architecturally-correct value (advanced by the resolved
        // outcome for the mispredicting PC itself).
        for (std::size_t i = first; i < inflight_.size(); ++i) {
            const SpecRec &rec = inflight_[i];
            if (!rec.specUpdated)
                continue;
            bool oldest = true;
            for (std::size_t j = first; j < i; ++j) {
                if (inflight_[j].pc == rec.pc &&
                    inflight_[j].specUpdated) {
                    oldest = false;
                    break;
                }
            }
            if (!oldest)
                continue;
            if (repairSet && rec.pc != cause.pc &&
                std::find(repairSet->begin(), repairSet->end(),
                          rec.pc) == repairSet->end()) {
                // Declared partial coverage (LimitedPc): the scheme
                // repairs only its M chosen PCs and leaves the rest
                // polluted by design (section 3.3). The divergence is
                // expected — count it and desync the chain instead of
                // asserting. The mispredicting PC never lands here:
                // every covered recovery repairs at least its cause.
                ++stats_.skipped;
                desync(rec.pc, cause.seq);
                continue;
            }
            if (!rec.bhtHit || !rec.checkpointed) {
                // Two declared gaps share this shape. A wrong-path BHT
                // allocation: no checkpoint exists and the walks cannot
                // remove the entry. An uncheckpointed update: the OBQ
                // (or snapshot ring) was full at this branch's predict,
                // so the paper's overflow rule drops the pre-state and
                // the repair cannot restore this PC.
                ++stats_.skipped;
                desync(rec.pc, cause.seq);
                continue;
            }
            LocalState expect = rec.pre;
            if (rec.seq == cause.seq && cause.br.checkpointed)
                expect = model_.advanceState(expect, cause.actualDir);
            bool present = false;
            const LocalState got = live.readState(rec.pc, &present);
            if (!present) {
                // Evicted on the wrong path; repair writes no-op on
                // absent entries by contract.
                ++stats_.skipped;
                continue;
            }
            ++stats_.recoveryChecks;
            if (got != expect) {
                ++stats_.recoveryViolations;
                report("recovery", cause, expect, got);
            }
        }
    }

    // Squash the wrong-path records; the mispredicting branch itself
    // survives to retirement with its BHT entry folded to the resolved
    // outcome (when the scheme checkpointed it).
    while (!inflight_.empty() && inflight_.back().seq > cause.seq)
        inflight_.pop_back();
    if (!inflight_.empty() && inflight_.back().seq == cause.seq &&
        covered && cause.br.checkpointed) {
        inflight_.back().dir = cause.actualDir;
    }
}

void
SpecStateAuditor::onRetire(const DynInst &di)
{
    lbp_assert(di.isCond());
    lbp_assert(!inflight_.empty());
    lbp_assert(inflight_.front().seq == di.seq);
    const SpecRec rec = inflight_.front();
    inflight_.pop_front();

    if (rec.bhtHit) {
        auto it = arch_.find(rec.pc);
        if (it == arch_.end()) {
            // First observation of this PC: adopt the live state.
            it = arch_.emplace(rec.pc, Chain{rec.pre, false, 0}).first;
            ++stats_.resyncs;
        } else if (it->second.desynced) {
            if (rec.seq <= it->second.desyncSeq) {
                // Predicted before the desyncing flush: this pre-state
                // predates the unrepaired pollution and would resync
                // the chain to a stale value. Wait for a fresh
                // post-flush observation.
                ++stats_.skipped;
                return;
            }
            it->second.state = rec.pre;
            it->second.desynced = false;
            ++stats_.resyncs;
        } else if (cfg_.checkAtRetire) {
            ++stats_.retireChecks;
            if (rec.pre != it->second.state) {
                ++stats_.retireViolations;
                report("retire", di, it->second.state, rec.pre);
                // Re-adopt so one corruption doesn't cascade into a
                // violation per subsequent retire.
                it->second.state = rec.pre;
            }
        }
        if (rec.specUpdated)
            it->second.state = model_.advanceState(rec.pre, rec.dir);
        else
            it->second.state = rec.pre;
    } else if (rec.specUpdated) {
        // Fresh allocation observed: the chain restarts from the
        // unknown state, exactly as specUpdate() allocates.
        Chain &c = arch_[rec.pc];
        if (c.desynced && rec.seq <= c.desyncSeq) {
            // Allocated before the desyncing flush: the entry may have
            // been polluted (and not repaired) since.
            ++stats_.skipped;
            return;
        }
        c.state = model_.advanceState(LocalState{}, rec.dir);
        c.desynced = false;
    } else {
        // Denied lookup (BHT busy during a repair): the branch neither
        // observed nor modified the entry — nothing to learn.
        ++stats_.skipped;
    }
}

} // namespace lbp
