#include "serve/server.hh"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <sstream>
#include <streambuf>
#include <utility>
#include <vector>

#include "common/jsonl.hh"
#include "common/socket.hh"
#include "common/telemetry.hh"
#include "common/thread_pool.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/result_store.hh"
#include "sim/suite_cache.hh"
#include "sim/sweep.hh"
#include "sim/sweep_spec.hh"

namespace lbp {

namespace {

const char *
outcomeName(SweepCell::Outcome o)
{
    switch (o) {
      case SweepCell::Outcome::Simulated:
        return "simulated";
      case SweepCell::Outcome::StoreHit:
        return "store_hit";
      case SweepCell::Outcome::CacheHit:
        return "cache_hit";
    }
    return "unknown";
}

/**
 * std::streambuf that hands every completed '\n'-terminated line to a
 * sink callback — the bridge from runSweep()'s eventLog ostream to the
 * daemon's per-subscriber event fan-out. The sweep serializes its own
 * event writes, so the sink runs on one thread at a time.
 */
class LineSinkBuf : public std::streambuf
{
  public:
    explicit LineSinkBuf(std::function<void(std::string)> sink)
        : sink_(std::move(sink))
    {}

  protected:
    int_type
    overflow(int_type ch) override
    {
        if (ch != traits_type::eof())
            push(traits_type::to_char_type(ch));
        return ch;
    }

    std::streamsize
    xsputn(const char *s, std::streamsize n) override
    {
        for (std::streamsize i = 0; i < n; ++i)
            push(s[i]);
        return n;
    }

  private:
    void
    push(char c)
    {
        if (c == '\n') {
            sink_(std::move(line_));
            line_.clear();
        } else {
            line_ += c;
        }
    }

    std::function<void(std::string)> sink_;
    std::string line_;
};

/** Render the scalars of @p reg as a flat {"name":value,...} object. */
std::string
flatCounters(const MetricsRegistry &reg)
{
    std::ostringstream os;
    os << '{';
    bool first = true;
    for (const Metric &m : reg.scalars()) {
        if (!first)
            os << ',';
        first = false;
        jsonEscape(os, m.name);
        os << ':';
        if (m.integral)
            os << static_cast<std::uint64_t>(m.value);
        else
            os << jsonNumber(m.value);
    }
    os << '}';
    return os.str();
}

} // namespace

struct Server::Impl
{
    explicit Impl(const ServeOptions &o) : opts(o)
    {
        int fds[2] = {-1, -1};
        if (::pipe(fds) == 0) {
            ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
            ::fcntl(fds[1], F_SETFL, O_NONBLOCK);
            wakeRead = fds[0];
            wakeWrite = fds[1];
        }
    }

    ~Impl()
    {
        if (wakeRead >= 0)
            ::close(wakeRead);
        if (wakeWrite >= 0)
            ::close(wakeWrite);
    }

    // ----- wiring -------------------------------------------------

    struct ClientState
    {
        TcpConn conn;
        bool helloed = false;
        bool dead = false;
    };

    struct Request
    {
        std::string key;      ///< sweepRequestKey() identity
        SweepSpec spec;
        std::vector<Program> suite;
        std::uint64_t cells = 0;
        /** Subscribers as (client fd, request id) pairs. */
        std::vector<std::pair<int, std::string>> subs;
        Stopwatch age;        ///< time since acceptance

        std::string traceId;       ///< request-scoped trace id
        std::uint64_t seq = 0;     ///< request sequence (span tid)
        std::uint64_t acceptUs = 0;    ///< accepted, daemon-relative
        std::uint64_t dispatchUs = 0;  ///< handed to the executor
        /** Accept times of dedup joins (spans end at delivery). */
        std::vector<std::uint64_t> dedupJoinUs;
    };
    using ReqPtr = std::shared_ptr<Request>;

    struct ResultPayload
    {
        SweepStats stats;
        std::string body;   ///< result-frame tail after the id field
        /** Per-config results (cache-owned) for the run aggregate. */
        std::vector<const SuiteResult *> configResults;
        bool failed = false;
        std::string error;
    };

    ServeOptions opts;
    TcpListener listener;
    TcpListener metricsListener;  ///< HTTP scrape endpoint (optional)
    int wakeRead = -1;
    int wakeWrite = -1;

    std::map<int, ClientState> clients;  ///< keyed by descriptor
    std::deque<ReqPtr> queue;
    ReqPtr running;

    bool draining = false;
    Stopwatch drainSw;
    ServeStats st;

    ServeHistograms hist;          ///< service-latency distributions
    SweepStats sweepTotals;        ///< lifetime fold of executed sweeps
    RunAggregate runAgg;           ///< lifetime fold of served runs
    std::vector<ServiceSpan> spans;  ///< per-request Chrome-trace spans
    std::uint64_t reqSeq = 0;      ///< request counter (trace minting)
    Stopwatch upSw;                ///< daemon uptime / span clock
    Stopwatch hbSw;                ///< time since the last heartbeat
    Stopwatch gcSw;                ///< time since the last GC pass

    // Executor -> main-loop channel (guarded by chMu; the wake pipe
    // makes poll() notice).
    std::mutex chMu;
    std::vector<std::string> chLines;
    bool chDone = false;
    ResultPayload chPayload;

    // Declared last so its destructor joins the worker while the
    // channel and options above are still alive.
    ThreadPool exec{1};

    // ----- helpers ------------------------------------------------

    void
    log(const std::string &msg)
    {
        if (opts.log) {
            std::fprintf(opts.log, "[lbpserved] %s\n", msg.c_str());
            std::fflush(opts.log);
        }
    }

    void
    serveEvent(const std::string &line)
    {
        if (opts.eventLog) {
            *opts.eventLog << line << '\n';
            opts.eventLog->flush();
        }
    }

    std::size_t
    pendingDepth() const
    {
        return queue.size() + (running ? 1 : 0);
    }

    /** Daemon-relative microseconds (the service-span clock). */
    std::uint64_t
    nowUs() const
    {
        return static_cast<std::uint64_t>(upSw.seconds() * 1e6);
    }

    static std::uint64_t
    msBetween(std::uint64_t begin_us, std::uint64_t end_us)
    {
        return end_us > begin_us ? (end_us - begin_us) / 1000 : 0;
    }

    static void
    foldSweepStats(SweepStats &into, const SweepStats &s)
    {
        into.cellsTotal += s.cellsTotal;
        into.cellsSimulated += s.cellsSimulated;
        into.cellsStoreHit += s.cellsStoreHit;
        into.cellsCacheHit += s.cellsCacheHit;
        into.storeHits += s.storeHits;
        into.storeMisses += s.storeMisses;
        into.storeStale += s.storeStale;
        into.storeWrites += s.storeWrites;
        into.simInstrs += s.simInstrs;
        into.wallSeconds += s.wallSeconds;
        into.cellWallSeconds += s.cellWallSeconds;
    }

    bool
    gcEnabled() const
    {
        return opts.store && (opts.storeGc.maxAgeSeconds > 0.0 ||
                              opts.storeGc.maxBytes > 0);
    }

    void
    sendTo(ClientState &c, const std::string &frame)
    {
        if (c.dead)
            return;
        if (!c.conn.sendAll(frame))
            c.dead = true;
    }

    void
    sendError(ClientState &c, ServeError e, const std::string &msg)
    {
        std::ostringstream os;
        os << "{\"type\":\"error\",\"code\":\"" << serveErrorCode(e)
           << "\",\"message\":";
        jsonEscape(os, msg);
        os << "}\n";
        sendTo(c, os.str());
    }

    void
    sendRejected(ClientState &c, const std::string &id, ServeError e,
                 const std::string &msg)
    {
        std::ostringstream os;
        os << "{\"type\":\"rejected\",\"id\":";
        jsonEscape(os, id);
        os << ",\"code\":\"" << serveErrorCode(e)
           << "\",\"message\":";
        jsonEscape(os, msg);
        os << "}\n";
        sendTo(c, os.str());
    }

    void
    wake()
    {
        if (wakeWrite >= 0) {
            const char b = 'W';
            [[maybe_unused]] const ssize_t n =
                ::write(wakeWrite, &b, 1);
        }
    }

    // ----- executor side ------------------------------------------

    void
    postLine(std::string line)
    {
        {
            std::lock_guard<std::mutex> lk(chMu);
            chLines.push_back(std::move(line));
        }
        wake();
    }

    void
    execute(const Request &req)
    {
        ResultPayload p;
        try {
            LineSinkBuf buf(
                [this](std::string l) { postLine(std::move(l)); });
            std::ostream events(&buf);
            SweepOptions so;
            so.jobs = opts.jobs;
            so.store = opts.store;
            so.cache = opts.cache;
            so.eventLog = &events;
            so.traceId = req.traceId;
            const SweepResult res =
                runSweep(req.suite, req.spec.configs, so);
            p.stats = res.stats;
            p.configResults = res.configResults;
            p.body = renderResultBody(res, req.spec.configs);
        } catch (const std::exception &e) {
            p.failed = true;
            p.error = e.what();
        }
        {
            std::lock_guard<std::mutex> lk(chMu);
            chPayload = std::move(p);
            chDone = true;
        }
        wake();
    }

    static std::string
    renderResultBody(const SweepResult &res,
                     const std::vector<SweepConfig> &configs)
    {
        const std::size_t nc = configs.size();
        const std::size_t nw = nc ? res.cells.size() / nc : 0;
        std::ostringstream os;
        os << ",\"cells\":" << res.stats.cellsTotal
           << ",\"counters\":";
        MetricsRegistry reg;
        registerSweepMetrics(reg, res.stats);
        os << flatCounters(reg);
        os << ",\"configs\":[";
        for (std::size_t c = 0; c < nc; ++c) {
            double wall = 0.0;
            for (std::size_t w = 0; w < nw; ++w)
                wall += res.cells[c * nw + w].wallSeconds;
            const SweepCell::Outcome outcome =
                nw ? res.cells[c * nw].outcome
                   : SweepCell::Outcome::Simulated;
            os << (c ? "," : "") << "{\"name\":";
            jsonEscape(os, configs[c].name);
            os << ",\"label\":";
            jsonEscape(os, configLabel(configs[c].cfg));
            os << ",\"key\":";
            jsonEscape(os, res.configKeys[c]);
            os << ",\"outcome\":\"" << outcomeName(outcome)
               << "\",\"wall_s\":" << jsonNumber(wall) << '}';
        }
        os << "],\"csv\":";
        std::ostringstream csv;
        writeSweepCsv(csv, res, configs);
        jsonEscape(os, csv.str());
        os << ",\"manifest\":";
        std::ostringstream man;
        writeSweepManifest(man, res, configs);
        jsonEscape(os, man.str());
        os << '}';
        return os.str();
    }

    // ----- main-loop side -----------------------------------------

    void
    beginDrain()
    {
        if (draining)
            return;
        draining = true;
        drainSw.reset();
        std::ostringstream msg;
        msg << "draining (" << pendingDepth() << " pending request"
            << (pendingDepth() == 1 ? "" : "s") << ")";
        log(msg.str());
        serveEvent("{\"event\":\"drain_begin\",\"pending\":" +
                   std::to_string(pendingDepth()) + "}");
    }

    void
    drainWakePipe()
    {
        char buf[64];
        while (true) {
            const ssize_t n = ::read(wakeRead, buf, sizeof(buf));
            if (n <= 0)
                break;
            for (ssize_t i = 0; i < n; ++i)
                if (buf[i] == 'D')
                    beginDrain();
        }
    }

    void
    acceptClient()
    {
        TcpConn conn = listener.acceptConn();
        if (!conn.valid())
            return;
        const int fd = conn.fd();
        ClientState cs;
        cs.conn = std::move(conn);
        clients.emplace(fd, std::move(cs));
        ++st.clientsConnected;
        serveEvent("{\"event\":\"client_connect\",\"fd\":" +
                   std::to_string(fd) + "}");
    }

    void
    dropSubscriptions(int fd)
    {
        const auto without = [fd](ReqPtr &req) {
            auto &subs = req->subs;
            subs.erase(std::remove_if(subs.begin(), subs.end(),
                                      [fd](const auto &s) {
                                          return s.first == fd;
                                      }),
                       subs.end());
        };
        if (running)
            without(running);
        for (auto it = queue.begin(); it != queue.end();) {
            without(*it);
            if ((*it)->subs.empty()) {
                ++st.requestsCancelled;
                serveEvent("{\"event\":\"request_cancelled\","
                           "\"cells\":" +
                           std::to_string((*it)->cells) + "}");
                it = queue.erase(it);
            } else {
                ++it;
            }
        }
    }

    void
    reapClients()
    {
        for (auto it = clients.begin(); it != clients.end();) {
            if (!it->second.dead) {
                ++it;
                continue;
            }
            const int fd = it->first;
            dropSubscriptions(fd);
            it = clients.erase(it);
            ++st.clientsDisconnected;
            serveEvent("{\"event\":\"client_disconnect\",\"fd\":" +
                       std::to_string(fd) + "}");
        }
    }

    void
    expireQueued()
    {
        for (auto it = queue.begin(); it != queue.end();) {
            ReqPtr req = *it;
            if (req->age.seconds() <= opts.queueTimeoutSeconds) {
                ++it;
                continue;
            }
            for (const auto &sub : req->subs) {
                auto cit = clients.find(sub.first);
                if (cit != clients.end())
                    sendRejected(cit->second, sub.second,
                                 ServeError::Timeout,
                                 "request timed out in the queue");
            }
            ++st.requestsTimedOut;
            serveEvent("{\"event\":\"request_timeout\",\"cells\":" +
                       std::to_string(req->cells) + "}");
            it = queue.erase(it);
        }
    }

    void
    maybeDispatch()
    {
        if (running || queue.empty())
            return;
        running = queue.front();
        queue.pop_front();
        running->dispatchUs = nowUs();
        hist.queueWaitMs.sample(
            msBetween(running->acceptUs, running->dispatchUs));
        spans.push_back({running->traceId, "queue", running->seq,
                         running->acceptUs, running->dispatchUs});
        ++st.sweepsExecuted;
        serveEvent("{\"event\":\"sweep_begin\",\"trace\":" +
                   jsonQuote(running->traceId) + ",\"cells\":" +
                   std::to_string(running->cells) +
                   ",\"subscribers\":" +
                   std::to_string(running->subs.size()) + "}");
        ReqPtr req = running;
        exec.submit([this, req] { execute(*req); });
    }

    void
    deliverEventLine(const std::string &line)
    {
        serveEvent(line);
        if (!running)
            return;
        for (const auto &sub : running->subs) {
            auto it = clients.find(sub.first);
            if (it == clients.end())
                continue;
            std::ostringstream os;
            os << "{\"type\":\"event\",\"id\":";
            jsonEscape(os, sub.second);
            os << ",\"data\":" << line << "}\n";
            sendTo(it->second, os.str());
            ++st.eventsStreamed;
        }
    }

    void
    completeRunning(ResultPayload &payload)
    {
        ReqPtr req = running;
        running.reset();
        if (!req)
            return;
        const std::uint64_t execDoneUs = nowUs();
        st.cellsSimulated += payload.stats.cellsSimulated;
        st.cellsStoreHit += payload.stats.cellsStoreHit;
        st.cellsCacheHit += payload.stats.cellsCacheHit;
        if (!payload.failed) {
            foldSweepStats(sweepTotals, payload.stats);
            for (const SuiteResult *sr : payload.configResults) {
                if (!sr)
                    continue;
                for (const RunResult &r : sr->runs)
                    runAgg.add(r);
            }
        }
        for (const auto &sub : req->subs) {
            auto it = clients.find(sub.first);
            if (it == clients.end())
                continue;
            if (payload.failed) {
                ++st.requestsRejected;
                sendRejected(it->second, sub.second,
                             ServeError::Internal, payload.error);
                continue;
            }
            std::string frame = "{\"type\":\"result\",\"id\":" +
                                jsonQuote(sub.second) + payload.body +
                                "\n";
            sendTo(it->second, frame);
            ++st.requestsCompleted;
            st.cellsServed += payload.stats.cellsTotal;
        }
        const std::uint64_t deliveredUs = nowUs();
        hist.executeMs.sample(msBetween(req->dispatchUs, execDoneUs));
        hist.requestTotalMs.sample(
            msBetween(req->acceptUs, deliveredUs));
        spans.push_back({req->traceId, "simulate", req->seq,
                         req->dispatchUs, execDoneUs});
        spans.push_back({req->traceId, "assemble", req->seq,
                         execDoneUs, deliveredUs});
        for (const std::uint64_t joinUs : req->dedupJoinUs)
            spans.push_back({req->traceId, "dedup", req->seq, joinUs,
                             deliveredUs});
        serveEvent("{\"event\":\"sweep_end\",\"trace\":" +
                   jsonQuote(req->traceId) + ",\"cells\":" +
                   std::to_string(req->cells) + ",\"simulated\":" +
                   std::to_string(payload.stats.cellsSimulated) +
                   ",\"store_hit\":" +
                   std::to_string(payload.stats.cellsStoreHit) +
                   ",\"cache_hit\":" +
                   std::to_string(payload.stats.cellsCacheHit) + "}");
    }

    void
    drainChannel()
    {
        std::vector<std::string> lines;
        bool done = false;
        ResultPayload payload;
        {
            std::lock_guard<std::mutex> lk(chMu);
            lines.swap(chLines);
            done = chDone;
            chDone = false;
            if (done)
                payload = std::move(chPayload);
        }
        for (const std::string &l : lines)
            deliverEventLine(l);
        if (done)
            completeRunning(payload);
    }

    // ----- message handling ---------------------------------------

    void
    handleHello(ClientState &c, const JsonValue &msg)
    {
        const JsonValue *proto = msg.member("protocol");
        if (!proto || proto->str() != kServeProtocol) {
            sendError(c, ServeError::BadProtocol,
                      std::string("this server speaks ") +
                          kServeProtocol);
            c.dead = true;
            return;
        }
        c.helloed = true;
        std::ostringstream os;
        os << "{\"type\":\"hello\",\"protocol\":\"" << kServeProtocol
           << "\",\"server\":\"lbpserved\",\"fingerprint\":";
        jsonEscape(os, buildFingerprint());
        os << ",\"git_sha\":";
        jsonEscape(os, gitShaString());
        os << ",\"jobs\":" << resolveJobs(opts.jobs) << "}\n";
        sendTo(c, os.str());
    }

    void
    handleSubmit(int fd, ClientState &c, const JsonValue &msg)
    {
        ++st.requestsReceived;
        const JsonValue *idv = msg.member("id");
        if (!idv || idv->kind() != JsonValue::Kind::String ||
            idv->str().empty()) {
            sendError(c, ServeError::BadRequest,
                      "submit needs a non-empty string id");
            return;
        }
        const std::string id = idv->str();
        if (draining) {
            ++st.requestsRejected;
            sendRejected(c, id, ServeError::Draining,
                         "server is draining; no new submits");
            return;
        }
        std::string trace;
        if (const JsonValue *v = msg.member("trace")) {
            if (v->kind() != JsonValue::Kind::String) {
                ++st.requestsRejected;
                sendRejected(c, id, ServeError::BadRequest,
                             "trace must be a string");
                return;
            }
            trace = v->str();
        }

        SweepSpec spec;
        if (const JsonValue *v = msg.member("suite")) {
            if (v->kind() == JsonValue::Kind::String &&
                v->str() == "all") {
                spec.fullSuite = true;
                spec.suite = 0;
            } else if (v->kind() == JsonValue::Kind::Number) {
                spec.suite = static_cast<unsigned>(v->number());
            } else {
                ++st.requestsRejected;
                sendRejected(c, id, ServeError::BadRequest,
                             "suite must be a number or \"all\"");
                return;
            }
        }
        if (const JsonValue *v = msg.member("warmup")) {
            if (v->kind() != JsonValue::Kind::Number) {
                ++st.requestsRejected;
                sendRejected(c, id, ServeError::BadRequest,
                             "warmup must be a number");
                return;
            }
            spec.warmupInstrs =
                static_cast<std::uint64_t>(v->number());
        }
        if (const JsonValue *v = msg.member("instr")) {
            if (v->kind() != JsonValue::Kind::Number) {
                ++st.requestsRejected;
                sendRejected(c, id, ServeError::BadRequest,
                             "instr must be a number");
                return;
            }
            spec.measureInstrs =
                static_cast<std::uint64_t>(v->number());
        }
        std::string specText;
        if (const JsonValue *v = msg.member("spec")) {
            if (v->kind() != JsonValue::Kind::String) {
                ++st.requestsRejected;
                sendRejected(c, id, ServeError::BadRequest,
                             "spec must be a string");
                return;
            }
            specText = v->str();
        }
        std::string err;
        if (!parseSweepSpecText(specText, spec, err)) {
            ++st.requestsRejected;
            sendRejected(c, id, ServeError::BadSpec, err);
            return;
        }
        finalizeSweepSpec(spec);
        std::vector<Program> suite = buildSpecSuite(spec);
        const std::uint64_t cells =
            static_cast<std::uint64_t>(suite.size()) *
            spec.configs.size();
        if (cells == 0) {
            ++st.requestsRejected;
            sendRejected(c, id, ServeError::BadRequest,
                         "empty sweep (no configs or no workloads)");
            return;
        }
        const std::string key = sweepRequestKey(suite, spec.configs);

        // Cross-client dedup: an identical request that is queued or
        // in flight gains a subscriber instead of a new simulation.
        ReqPtr joined;
        if (running && running->key == key)
            joined = running;
        if (!joined) {
            for (const ReqPtr &q : queue) {
                if (q->key == key) {
                    joined = q;
                    break;
                }
            }
        }
        if (joined) {
            joined->subs.emplace_back(fd, id);
            joined->dedupJoinUs.push_back(nowUs());
            ++st.requestsDeduped;
            ++st.requestsAccepted;
            sendAccepted(c, id, cells, true, joined->traceId);
            serveEvent("{\"event\":\"submit\",\"outcome\":\"dedup\","
                       "\"trace\":" +
                       jsonQuote(joined->traceId) + ",\"cells\":" +
                       std::to_string(cells) + "}");
            return;
        }

        // Admission control: bounded queue, bounded pending cells.
        const std::size_t depth = pendingDepth();
        if (depth >= opts.maxQueue) {
            ++st.requestsRejected;
            sendRejected(c, id, ServeError::QueueFull,
                         "request queue is full (" +
                             std::to_string(opts.maxQueue) + ")");
            serveEvent("{\"event\":\"submit\",\"outcome\":"
                       "\"queue_full\"}");
            return;
        }
        std::uint64_t pendingCells = running ? running->cells : 0;
        for (const ReqPtr &q : queue)
            pendingCells += q->cells;
        if (pendingCells + cells > opts.maxCells) {
            ++st.requestsRejected;
            sendRejected(c, id, ServeError::TooManyCells,
                         "pending cell budget exceeded (" +
                             std::to_string(pendingCells) + " + " +
                             std::to_string(cells) + " > " +
                             std::to_string(opts.maxCells) + ")");
            serveEvent("{\"event\":\"submit\",\"outcome\":"
                       "\"too_many_cells\"}");
            return;
        }

        ReqPtr req = std::make_shared<Request>();
        req->key = key;
        req->spec = std::move(spec);
        req->suite = std::move(suite);
        req->cells = cells;
        req->subs.emplace_back(fd, id);
        ++reqSeq;
        req->seq = reqSeq;
        req->traceId =
            trace.empty() ? "srv-" + std::to_string(reqSeq) : trace;
        req->acceptUs = nowUs();
        queue.push_back(req);
        ++st.requestsAccepted;
        hist.queueDepth.sample(pendingDepth());
        if (depth + 1 > st.queueHighWater)
            st.queueHighWater = depth + 1;
        sendAccepted(c, id, cells, false, req->traceId);
        serveEvent("{\"event\":\"submit\",\"outcome\":\"accepted\","
                   "\"trace\":" +
                   jsonQuote(req->traceId) + ",\"cells\":" +
                   std::to_string(cells) + ",\"queue_depth\":" +
                   std::to_string(pendingDepth()) + "}");
    }

    void
    sendAccepted(ClientState &c, const std::string &id,
                 std::uint64_t cells, bool dedup,
                 const std::string &trace)
    {
        std::ostringstream os;
        os << "{\"type\":\"accepted\",\"id\":";
        jsonEscape(os, id);
        os << ",\"trace_id\":";
        jsonEscape(os, trace);
        os << ",\"cells\":" << cells << ",\"dedup\":"
           << (dedup ? "true" : "false")
           << ",\"queue_depth\":" << pendingDepth() << "}\n";
        sendTo(c, os.str());
    }

    void
    handleStats(ClientState &c)
    {
        MetricsRegistry reg;
        registerServeMetrics(reg, st);
        sendTo(c, "{\"type\":\"stats\",\"counters\":" +
                      flatCounters(reg) + "}\n");
    }

    /**
     * One Prometheus scrape of the whole service: all four descriptor
     * tables (run aggregate, lifetime sweep totals, daemon counters,
     * store counters), the service-latency histograms, and the
     * per-fingerprint store series. Shared by the `metrics` frame and
     * the HTTP endpoint, so both expose identical bytes.
     */
    std::string
    renderExposition()
    {
        ++st.scrapesServed;
        MetricsRegistry reg;
        runAgg.addTo(reg);
        registerSweepMetrics(reg, sweepTotals);
        registerServeMetrics(reg, st);
        if (opts.store)
            registerStoreMetrics(reg, opts.store->stats());
        reg.histogram("serve_queue_wait_ms", "ms",
                      "submit accept to dispatch wait per request",
                      hist.queueWaitMs);
        reg.histogram("serve_execute_ms", "ms",
                      "sweep execution wall time per executed sweep",
                      hist.executeMs);
        reg.histogram("serve_request_total_ms", "ms",
                      "submit accept to result delivery per request",
                      hist.requestTotalMs);
        reg.histogram("serve_queue_depth", "requests",
                      "queued+running depth sampled at each accept",
                      hist.queueDepth);
        std::ostringstream os;
        writePrometheus(os, reg);
        if (opts.store) {
            const std::map<std::string, FingerprintStats> fps =
                opts.store->fingerprintStats();
            std::vector<std::pair<std::string, std::uint64_t>> hits,
                misses, stale, bytes;
            for (const auto &kv : fps) {
                hits.emplace_back(kv.first, kv.second.hits);
                misses.emplace_back(kv.first, kv.second.misses);
                stale.emplace_back(kv.first, kv.second.stale);
                bytes.emplace_back(kv.first, kv.second.bytes);
            }
            writePrometheusLabeled(
                os, "result_store_fingerprint_hits",
                "Store hits by build fingerprint.", "fingerprint",
                hits);
            writePrometheusLabeled(
                os, "result_store_fingerprint_misses",
                "Store misses by build fingerprint.", "fingerprint",
                misses);
            writePrometheusLabeled(
                os, "result_store_fingerprint_stale",
                "Stale evictions by the evicted entry's recorded "
                "fingerprint.",
                "fingerprint", stale);
            writePrometheusLabeled(
                os, "result_store_fingerprint_bytes",
                "Bytes loaded plus persisted by build fingerprint.",
                "fingerprint", bytes);
        }
        return os.str();
    }

    void
    handleMetrics(ClientState &c)
    {
        std::ostringstream os;
        os << "{\"type\":\"metrics\",\"exposition\":";
        jsonEscape(os, renderExposition());
        os << "}\n";
        sendTo(c, os.str());
    }

    void
    handleScrape()
    {
        TcpConn conn = metricsListener.acceptConn();
        if (!conn.valid())
            return;
        // The response is the same whatever the request line says, but
        // replying before the request arrives would close the socket
        // with bytes in flight — the resulting RST can discard the
        // response on the client side. Wait (briefly) for the request
        // line, drain the rest, then answer (HTTP/1.0 with
        // Connection: close — no keep-alive state to track).
        std::string requestLine;
        conn.readLine(requestLine, 1000);
        conn.fillAvailable();
        conn.sendAll("HTTP/1.0 200 OK\r\n"
                     "Content-Type: text/plain; version=0.0.4\r\n"
                     "Connection: close\r\n\r\n" +
                     renderExposition());
        conn.closeConn();
    }

    void
    maybeHeartbeat()
    {
        if (opts.heartbeatSeconds <= 0.0 ||
            hbSw.seconds() < opts.heartbeatSeconds)
            return;
        hbSw.reset();
        ++st.heartbeatsEmitted;
        std::ostringstream os;
        os << "{\"event\":\"heartbeat\",\"uptime_s\":"
           << jsonNumber(upSw.seconds())
           << ",\"queue_depth\":" << queue.size()
           << ",\"in_flight\":" << (running ? 1 : 0)
           << ",\"clients\":" << clients.size()
           << ",\"requests_completed\":" << st.requestsCompleted;
        if (opts.store) {
            const StoreStats ss = opts.store->stats();
            const std::uint64_t looks = ss.hits + ss.misses;
            os << ",\"store_hits\":" << ss.hits
               << ",\"store_misses\":" << ss.misses
               << ",\"store_hit_ratio\":"
               << jsonNumber(looks ? static_cast<double>(ss.hits) /
                                         static_cast<double>(looks)
                                   : 0.0)
               << ",\"store_written_bytes\":" << ss.bytesWritten;
        }
        os << '}';
        serveEvent(os.str());
    }

    void
    maybeGc()
    {
        if (!gcEnabled() || running || !queue.empty() ||
            gcSw.seconds() < opts.gcIntervalSeconds)
            return;
        gcSw.reset();
        ++st.gcPasses;
        const std::vector<StoreAuditRecord> evicted =
            opts.store->gc(opts.storeGc);
        // The GC ran between sweeps, so its audit records belong to
        // the daemon's event log, not to the next request's manifest —
        // drain the store-side trail we just produced.
        opts.store->takeAudit();
        std::uint64_t bytes = 0;
        for (const StoreAuditRecord &rec : evicted) {
            bytes += rec.bytes;
            std::ostringstream os;
            os << "{\"event\":\"store_evict\",\"file\":";
            jsonEscape(os, rec.file);
            os << ",\"reason\":\"" << rec.reason
               << "\",\"fingerprint\":";
            jsonEscape(os, rec.fingerprint);
            os << ",\"bytes\":" << rec.bytes
               << ",\"age_s\":" << jsonNumber(rec.ageSeconds) << '}';
            serveEvent(os.str());
        }
        serveEvent("{\"event\":\"store_gc\",\"evicted\":" +
                   std::to_string(evicted.size()) + ",\"bytes\":" +
                   std::to_string(bytes) + "}");
        if (!evicted.empty()) {
            std::ostringstream msg;
            msg << "store gc evicted " << evicted.size()
                << " entries (" << bytes << " bytes)";
            log(msg.str());
        }
    }

    void
    handleLine(int fd, ClientState &c, const std::string &line)
    {
        JsonValue msg;
        std::string perr;
        if (!JsonValue::parse(line, msg, &perr) ||
            msg.kind() != JsonValue::Kind::Object) {
            sendError(c, ServeError::BadJson,
                      perr.empty() ? "frame is not a JSON object"
                                   : perr);
            return;
        }
        const JsonValue *tv = msg.member("type");
        const std::string type = tv ? tv->str() : "";
        if (type == "hello") {
            handleHello(c, msg);
            return;
        }
        if (!c.helloed) {
            sendError(c, ServeError::NeedHello,
                      "say hello before anything else");
            return;
        }
        if (type == "submit") {
            handleSubmit(fd, c, msg);
        } else if (type == "stats") {
            handleStats(c);
        } else if (type == "metrics") {
            handleMetrics(c);
        } else if (type == "drain") {
            beginDrain();
            sendTo(c, "{\"type\":\"draining\",\"pending\":" +
                          std::to_string(pendingDepth()) + "}\n");
        } else if (type == "bye") {
            sendTo(c, "{\"type\":\"bye\"}\n");
            c.dead = true;
        } else {
            sendError(c, ServeError::BadRequest,
                      "unknown frame type '" + type + "'");
        }
    }

    void
    serviceClient(int fd)
    {
        auto it = clients.find(fd);
        if (it == clients.end())
            return;
        ClientState &c = it->second;
        const int got = c.conn.fillAvailable();
        std::string line;
        while (!c.dead && c.conn.nextLine(line))
            handleLine(fd, c, line);
        if (got < 0)
            c.dead = true;
    }

    // ----- top level ----------------------------------------------

    bool
    start(std::string &error)
    {
        if (wakeRead < 0 || wakeWrite < 0) {
            error = "cannot create wake pipe";
            return false;
        }
        if (!listener.listenOn(opts.host, opts.port, error))
            return false;
        if (opts.metricsPort >= 0 &&
            !metricsListener.listenOn(
                opts.host,
                static_cast<std::uint16_t>(opts.metricsPort), error))
            return false;
        return true;
    }

    int
    run()
    {
        if (listener.fd() < 0)
            return 1;
        {
            std::ostringstream msg;
            msg << "serving on " << opts.host << ':'
                << listener.boundPort() << " (jobs="
                << resolveJobs(opts.jobs) << ", store="
                << (opts.store ? opts.store->dir() : "none") << ")";
            log(msg.str());
        }
        serveEvent("{\"event\":\"serve_start\",\"fingerprint\":" +
                   jsonQuote(buildFingerprint()) + ",\"port\":" +
                   std::to_string(listener.boundPort()) + "}");

        const bool haveMetrics = metricsListener.fd() >= 0;
        while (true) {
            std::vector<pollfd> fds;
            std::vector<int> cfds;
            fds.push_back(
                pollfd{listener.fd(),
                       static_cast<short>(POLLIN), 0});
            fds.push_back(
                pollfd{wakeRead, static_cast<short>(POLLIN), 0});
            const std::size_t mIdx = fds.size();
            if (haveMetrics)
                fds.push_back(pollfd{metricsListener.fd(),
                                     static_cast<short>(POLLIN), 0});
            const std::size_t cBase = fds.size();
            for (const auto &kv : clients) {
                fds.push_back(
                    pollfd{kv.first, static_cast<short>(POLLIN), 0});
                cfds.push_back(kv.first);
            }
            const int rc = ::poll(fds.data(),
                                  static_cast<nfds_t>(fds.size()),
                                  pollTimeoutMs());
            if (rc < 0 && errno != EINTR) {
                log(std::string("poll failed: ") +
                    std::strerror(errno));
                return 1;
            }
            if (rc > 0 && (fds[1].revents & POLLIN))
                drainWakePipe();
            drainChannel();
            if (rc > 0 && (fds[0].revents & POLLIN))
                acceptClient();
            if (rc > 0 && haveMetrics && (fds[mIdx].revents & POLLIN))
                handleScrape();
            if (rc > 0) {
                for (std::size_t i = 0; i < cfds.size(); ++i) {
                    const short ev = fds[i + cBase].revents;
                    if (ev & (POLLIN | POLLHUP | POLLERR))
                        serviceClient(cfds[i]);
                }
            }
            reapClients();
            expireQueued();
            maybeHeartbeat();
            maybeGc();
            maybeDispatch();
            if (draining && !running && queue.empty())
                break;
        }

        st.drainSeconds = drainSw.seconds();
        serveEvent("{\"event\":\"serve_exit\",\"drain_s\":" +
                   jsonNumber(st.drainSeconds) + "}");
        {
            std::ostringstream msg;
            msg << "drained in " << jsonNumber(st.drainSeconds)
                << "s; served " << st.requestsCompleted
                << " results (" << st.requestsDeduped
                << " deduped) over " << st.sweepsExecuted
                << " sweeps";
            log(msg.str());
        }
        if (opts.traceOut) {
            writeServiceTrace(*opts.traceOut, spans);
            opts.traceOut->flush();
        }
        for (auto &kv : clients)
            kv.second.conn.closeConn();
        clients.clear();
        listener.closeListener();
        metricsListener.closeListener();
        return 0;
    }

    int
    pollTimeoutMs() const
    {
        // Nearest deadline of the three timers (queue expiry,
        // heartbeat, idle GC); -1 = sleep until a descriptor fires.
        double best = -1.0;
        const auto consider = [&best](double remain_s) {
            double ms = remain_s * 1000.0 + 1.0;
            if (ms < 0.0)
                ms = 0.0;
            if (best < 0.0 || ms < best)
                best = ms;
        };
        if (!queue.empty()) {
            double oldest = 0.0;
            for (const ReqPtr &q : queue) {
                const double a = q->age.seconds();
                if (a > oldest)
                    oldest = a;
            }
            consider(opts.queueTimeoutSeconds - oldest);
        }
        if (opts.heartbeatSeconds > 0.0)
            consider(opts.heartbeatSeconds - hbSw.seconds());
        if (gcEnabled() && !running && queue.empty())
            consider(opts.gcIntervalSeconds - gcSw.seconds());
        if (best < 0.0)
            return -1;
        if (best > 60000.0)
            best = 60000.0;
        return static_cast<int>(best);
    }
};

Server::Server(const ServeOptions &opts)
    : impl_(std::make_unique<Impl>(opts))
{}

Server::~Server() = default;

bool
Server::start(std::string &error)
{
    return impl_->start(error);
}

std::uint16_t
Server::port() const
{
    return impl_->listener.boundPort();
}

std::uint16_t
Server::metricsPort() const
{
    return impl_->metricsListener.fd() >= 0
               ? impl_->metricsListener.boundPort()
               : 0;
}

int
Server::run()
{
    return impl_->run();
}

void
Server::requestDrain()
{
    if (impl_->wakeWrite >= 0) {
        const char b = 'D';
        [[maybe_unused]] const ssize_t n =
            ::write(impl_->wakeWrite, &b, 1);
    }
}

ServeStats
Server::stats() const
{
    return impl_->st;
}

ServeHistograms
Server::histograms() const
{
    return impl_->hist;
}

} // namespace lbp
