#include "serve/protocol.hh"

namespace lbp {

const char *
serveErrorCode(ServeError e)
{
    switch (e) {
      case ServeError::BadJson:
        return "bad_json";
      case ServeError::BadProtocol:
        return "bad_protocol";
      case ServeError::NeedHello:
        return "need_hello";
      case ServeError::BadRequest:
        return "bad_request";
      case ServeError::BadSpec:
        return "bad_spec";
      case ServeError::QueueFull:
        return "queue_full";
      case ServeError::TooManyCells:
        return "too_many_cells";
      case ServeError::Draining:
        return "draining";
      case ServeError::Timeout:
        return "timeout";
      case ServeError::Internal:
        return "internal";
    }
    return "unknown";
}

} // namespace lbp
