/**
 * @file
 * The resident sweep daemon's server core.
 *
 * One poll()-driven main loop owns every socket; one single-worker
 * ThreadPool executes sweeps (each sweep fans its cells across its own
 * inner pool, so one request at a time saturates the machine without
 * two sweeps thrashing each other). Identical concurrent requests —
 * same (build fingerprint x suite key x per-config name+key) — are
 * coalesced: one simulation runs and every subscriber receives its
 * event stream and byte-identical result. Admission control bounds
 * the queue in requests and in cells; queued requests expire after a
 * timeout and are dropped when their last subscriber disconnects.
 * SIGTERM (or a `drain` frame) drains gracefully: in-flight and
 * queued work finishes, new submits are rejected, then run() returns.
 *
 * Wire format: docs/SERVER.md (normative). Counters: ServeStats
 * (serve/protocol.hh), exported via serveMetrics().
 */

#ifndef LBP_SERVE_SERVER_HH
#define LBP_SERVE_SERVER_HH

#include <cstdint>
#include <cstdio>
#include <iosfwd>
#include <memory>
#include <string>

#include "serve/protocol.hh"
#include "sim/result_store.hh"

namespace lbp {

class SuiteCache;

/**
 * Daemon configuration. Pointers are borrowed and optional; null
 * disables the corresponding facility (no store = in-memory only).
 */
struct ServeOptions
{
    std::string host = "127.0.0.1";  ///< bind address (loopback)
    std::uint16_t port = 0;          ///< 0 = kernel-assigned port

    unsigned jobs = 0;  ///< per-sweep workers; 0 = resolveJobs default

    /** Persistent store shared by every request; null = memory only. */
    ResultStore *store = nullptr;

    /** Suite cache to keep warm; null = the process-wide instance. */
    SuiteCache *cache = nullptr;

    /** Server-side JSON-lines event log (serve_* records plus every
     *  executed sweep's own events); null = off. */
    std::ostream *eventLog = nullptr;

    /** Human-readable log lines ("[lbpserved] ..."); null = quiet. */
    std::FILE *log = nullptr;

    std::size_t maxQueue = 8;  ///< max requests queued or running
    std::uint64_t maxCells = 131072;  ///< max cells queued or running
    double queueTimeoutSeconds = 600.0;  ///< max wait in the queue

    /**
     * Plain-text Prometheus exposition endpoint (--metrics-port);
     * -1 = off, 0 = kernel-assigned (read back via
     * Server::metricsPort()). Bound on `host` next to the protocol
     * port; every HTTP request receives one scrape of all four
     * registries plus the service histograms, then the connection
     * closes.
     */
    int metricsPort = -1;

    /** Heartbeat record interval in the event log; 0 = off. */
    double heartbeatSeconds = 0.0;

    /** Store GC policy applied during idle time; zeroed = off. */
    StoreGcPolicy storeGc;
    /** Seconds between idle-time GC passes (with storeGc set). */
    double gcIntervalSeconds = 60.0;

    /** Chrome-trace sink for per-request service spans (queue wait /
     *  dedup join / simulate / assemble), written at drain;
     *  null = off. */
    std::ostream *traceOut = nullptr;
};

/**
 * The daemon: bind with start(), serve with run() (blocks until a
 * drain completes), stop with requestDrain() — which is
 * async-signal-safe, so SIGTERM handlers may call it directly.
 */
class Server
{
  public:
    explicit Server(const ServeOptions &opts);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind and listen. False with @p error set on failure. */
    bool start(std::string &error);

    /** Port actually bound (resolves port-0 binds); valid after
     *  start(). */
    std::uint16_t port() const;

    /** Metrics endpoint port actually bound; 0 when the endpoint is
     *  off. Valid after start(). */
    std::uint16_t metricsPort() const;

    /**
     * Serve until a drain (requestDrain(), SIGTERM via a handler
     * calling it, or a client `drain` frame) completes. Returns 0 on
     * a clean drain, 1 on an internal failure.
     */
    int run();

    /**
     * Begin draining: finish accepted work, reject new submits, make
     * run() return. Async-signal-safe (one pipe write); callable from
     * any thread, idempotent.
     */
    void requestDrain();

    /**
     * Counter snapshot. Not synchronized with a running run() loop:
     * read it from the run() thread or after run() returned (tests
     * join the server task first).
     */
    ServeStats stats() const;

    /**
     * Service-latency histogram snapshot, same synchronization caveat
     * as stats().
     */
    ServeHistograms histograms() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace lbp

#endif // LBP_SERVE_SERVER_HH
