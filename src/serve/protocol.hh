/**
 * @file
 * lbp-serve-v1 protocol constants and the daemon's counter surface.
 *
 * The wire format itself — every frame, field, error code and the
 * connection/server lifecycle — is specified in docs/SERVER.md; that
 * document is normative and this header follows it, not the other way
 * around. What lives here is the part other layers need to name:
 * the protocol identifier, the closed set of error codes, and
 * ServeStats, whose fields are exported one-to-one by the
 * serveMetrics() table (obs/metrics.hh) the same way SweepStats maps
 * onto sweepMetrics().
 */

#ifndef LBP_SERVE_PROTOCOL_HH
#define LBP_SERVE_PROTOCOL_HH

#include <cstdint>

#include "obs/metrics.hh"

namespace lbp {

/** Protocol identifier exchanged in both hello frames. */
inline constexpr const char *kServeProtocol = "lbp-serve-v1";

/**
 * The closed set of protocol error codes (`rejected` and `error`
 * frames carry exactly these in their "code" field; docs/SERVER.md
 * defines when each is sent).
 */
enum class ServeError
{
    BadJson,       ///< line was not a JSON object
    BadProtocol,   ///< hello named an unsupported protocol
    NeedHello,     ///< request before the hello exchange
    BadRequest,    ///< malformed frame (unknown type, missing id...)
    BadSpec,       ///< submit spec text failed to parse
    QueueFull,     ///< admission: request queue at capacity
    TooManyCells,  ///< admission: pending-cell budget exceeded
    Draining,      ///< server is draining; no new submits
    Timeout,       ///< queued request exceeded the queue timeout
    Internal,      ///< accepted request failed while executing
};

/** Wire name of @p e ("bad_json", "queue_full", ...). */
const char *serveErrorCode(ServeError e);

/**
 * Aggregate daemon counters since startup, exported via
 * serveMetrics() (obs/metrics.hh) — the third metric registry next to
 * runMetrics() and sweepMetrics(). The `stats` protocol frame and the
 * daemon's exit summary both render this table; docs/METRICS.md
 * documents every row. Cell-outcome counters aggregate the executed
 * sweeps' own SweepStats, so a warm daemon shows its dedup and cache
 * leverage directly.
 */
struct ServeStats
{
    std::uint64_t clientsConnected = 0;   ///< connections accepted
    std::uint64_t clientsDisconnected = 0;  ///< connections closed
    std::uint64_t requestsReceived = 0;   ///< submit frames parsed
    std::uint64_t requestsAccepted = 0;   ///< accepted replies sent
    std::uint64_t requestsDeduped = 0;    ///< accepted by coalescing
    std::uint64_t requestsRejected = 0;   ///< rejected at submit time
    std::uint64_t requestsTimedOut = 0;   ///< expired while queued
    std::uint64_t requestsCancelled = 0;  ///< dropped (clients gone)
    std::uint64_t requestsCompleted = 0;  ///< result frames delivered
    std::uint64_t sweepsExecuted = 0;     ///< runSweep() invocations
    std::uint64_t eventsStreamed = 0;     ///< event frames sent
    std::uint64_t queueHighWater = 0;     ///< max queued+running depth
    std::uint64_t cellsServed = 0;        ///< cells in delivered results
    std::uint64_t cellsSimulated = 0;     ///< freshly simulated cells
    std::uint64_t cellsStoreHit = 0;      ///< cells from the store
    std::uint64_t cellsCacheHit = 0;      ///< cells from the SuiteCache
    double drainSeconds = 0.0;  ///< drain request -> clean exit
    std::uint64_t scrapesServed = 0;    ///< metrics frames + HTTP scrapes
    std::uint64_t heartbeatsEmitted = 0;  ///< heartbeat event records
    std::uint64_t gcPasses = 0;  ///< idle-time store gc() invocations
};

/**
 * The daemon's service-latency and queue-depth distributions, scraped
 * next to the counters (Prometheus histogram families in the
 * exposition; docs/METRICS.md tables them). Sampled on the request
 * path — microsecond-cheap FixedHistogram updates — and never fed back
 * into scheduling, so serving behavior is identical with or without a
 * scraper attached.
 */
struct ServeHistograms
{
    FixedHistogram queueWaitMs;      ///< submit accept -> dispatch
    FixedHistogram executeMs;        ///< runSweep() wall per sweep
    FixedHistogram requestTotalMs;   ///< submit accept -> result sent
    FixedHistogram queueDepth;       ///< queued+running depth at submit
};

} // namespace lbp

#endif // LBP_SERVE_PROTOCOL_HH
