#include "serve/client.hh"

#include <ostream>
#include <sstream>

#include "common/jsonl.hh"
#include "common/socket.hh"
#include "common/telemetry.hh"
#include "sim/sweep.hh"

namespace lbp {

namespace {

/**
 * Extract the raw bytes of an event frame's "data" member. The server
 * guarantees "data" is the frame's last member, so the payload is
 * everything between `"data":` and the frame's closing brace —
 * recovered without reserialization, byte-identical to what the
 * server-side sweep wrote.
 */
bool
rawEventData(const std::string &frame, std::string &data)
{
    static const std::string marker = "\"data\":";
    const std::size_t pos = frame.find(marker);
    if (pos == std::string::npos)
        return false;
    const std::size_t begin = pos + marker.size();
    const std::size_t end = frame.find_last_of('}');
    if (end == std::string::npos || end <= begin)
        return false;
    data = frame.substr(begin, end - begin);
    return true;
}

std::string
describeReject(const JsonValue &msg)
{
    const JsonValue *code = msg.member("code");
    const JsonValue *text = msg.member("message");
    std::string desc = "server rejected the request";
    if (code && code->kind() == JsonValue::Kind::String)
        desc += " (" + code->str() + ")";
    if (text && text->kind() == JsonValue::Kind::String &&
        !text->str().empty())
        desc += ": " + text->str();
    return desc;
}

} // namespace

double
ServeSweepResult::counter(const std::string &name, double dflt) const
{
    for (const auto &kv : counters)
        if (kv.first == name)
            return kv.second;
    return dflt;
}

bool
runServeSweep(const ServeClientOptions &opts, ServeSweepResult &out,
              std::string &error)
{
    TcpConn conn = tcpConnect(opts.host, opts.port, error);
    if (!conn.valid())
        return false;

    // Hello exchange: names the protocol, learns the server identity.
    {
        std::ostringstream os;
        os << "{\"type\":\"hello\",\"protocol\":\"" << kServeProtocol
           << "\",\"client\":\"lbpsweep\"}\n";
        if (!conn.sendAll(os.str())) {
            error = "cannot send hello";
            return false;
        }
    }
    const int timeoutMs =
        static_cast<int>(opts.timeoutSeconds * 1000.0);
    std::string line;
    if (conn.readLine(line, timeoutMs) != 1) {
        error = "no hello reply from server";
        return false;
    }
    JsonValue msg;
    if (!JsonValue::parse(line, msg, &error))
        return false;
    {
        const JsonValue *type = msg.member("type");
        if (!type || type->str() != "hello") {
            const JsonValue *text = msg.member("message");
            error = "server refused the hello";
            if (text && !text->str().empty())
                error += ": " + text->str();
            return false;
        }
        const JsonValue *proto = msg.member("protocol");
        if (!proto || proto->str() != kServeProtocol) {
            error = std::string("server protocol mismatch (want ") +
                    kServeProtocol + ")";
            return false;
        }
        if (const JsonValue *v = msg.member("fingerprint"))
            out.serverFingerprint = v->str();
        if (const JsonValue *v = msg.member("git_sha"))
            out.serverGitSha = v->str();
        if (const JsonValue *v = msg.member("jobs"))
            out.serverJobs = static_cast<unsigned>(v->number());
    }

    // Submit: CLI flags ride as fields, spec text rides verbatim (the
    // server applies fields first, then the spec — docs/SERVER.md).
    {
        std::ostringstream os;
        os << "{\"type\":\"submit\",\"id\":\"sweep-1\",\"suite\":";
        if (opts.fullSuite)
            os << "\"all\"";
        else
            os << opts.suite;
        os << ",\"warmup\":" << opts.warmupInstrs
           << ",\"instr\":" << opts.measureInstrs;
        if (!opts.traceId.empty()) {
            os << ",\"trace\":";
            jsonEscape(os, opts.traceId);
        }
        if (!opts.specText.empty()) {
            os << ",\"spec\":";
            jsonEscape(os, opts.specText);
        }
        os << "}\n";
        if (!conn.sendAll(os.str())) {
            error = "cannot send submit";
            return false;
        }
    }

    // Reply stream: accepted, then events, then the result.
    Stopwatch sw;
    std::uint64_t cellsDone = 0;
    bool accepted = false;
    while (true) {
        const int got = conn.readLine(line, timeoutMs);
        if (got == 0) {
            error = "server closed the connection mid-request";
            return false;
        }
        if (got < 0) {
            error = "timed out waiting for the server";
            return false;
        }
        if (!JsonValue::parse(line, msg, &error))
            return false;
        const JsonValue *tv = msg.member("type");
        const std::string type = tv ? tv->str() : "";

        if (type == "accepted") {
            accepted = true;
            if (const JsonValue *v = msg.member("cells"))
                out.cells = static_cast<std::uint64_t>(v->number());
            if (const JsonValue *v = msg.member("dedup"))
                out.dedup = v->boolean();
            if (const JsonValue *v = msg.member("trace_id"))
                out.traceId = v->str();
            continue;
        }
        if (type == "event") {
            const JsonValue *data = msg.member("data");
            if (opts.eventLog) {
                std::string raw;
                if (rawEventData(line, raw))
                    *opts.eventLog << raw << '\n';
            }
            if (data) {
                const JsonValue *ev = data->member("event");
                if (ev && ev->str() == "cell") {
                    ++cellsDone;
                    if (opts.progress) {
                        std::fprintf(
                            opts.progress, "\r%s",
                            renderSweepProgress(
                                cellsDone, out.cells, sw.seconds())
                                .c_str());
                        std::fflush(opts.progress);
                    }
                }
            }
            continue;
        }
        if (type == "result") {
            break;
        }
        if (type == "rejected" || type == "error") {
            error = describeReject(msg);
            return false;
        }
        // Unknown frame types are ignored for forward compatibility.
    }
    if (!accepted) {
        error = "server sent a result without accepting the request";
        return false;
    }
    if (opts.progress && out.cells) {
        std::fprintf(opts.progress, "\r%s\n",
                     renderSweepProgress(out.cells, out.cells,
                                         sw.seconds())
                         .c_str());
        std::fflush(opts.progress);
    }

    // Unpack the result frame.
    if (const JsonValue *v = msg.member("cells"))
        out.cells = static_cast<std::uint64_t>(v->number());
    if (const JsonValue *v = msg.member("counters")) {
        for (const auto &kv : v->members())
            out.counters.emplace_back(kv.first, kv.second.number());
    }
    if (const JsonValue *v = msg.member("configs")) {
        for (const JsonValue &e : v->items()) {
            ServeSweepResult::ConfigSummary cs;
            if (const JsonValue *f = e.member("name"))
                cs.name = f->str();
            if (const JsonValue *f = e.member("label"))
                cs.label = f->str();
            if (const JsonValue *f = e.member("key"))
                cs.key = f->str();
            if (const JsonValue *f = e.member("outcome"))
                cs.outcome = f->str();
            if (const JsonValue *f = e.member("wall_s"))
                cs.wallSeconds = f->number();
            out.configs.push_back(std::move(cs));
        }
    }
    if (const JsonValue *v = msg.member("csv"))
        out.csv = v->str();
    if (const JsonValue *v = msg.member("manifest"))
        out.manifest = v->str();

    // Polite goodbye; the reply is best-effort.
    if (conn.sendAll("{\"type\":\"bye\"}\n"))
        conn.readLine(line, 1000);
    return true;
}

} // namespace lbp
