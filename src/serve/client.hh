/**
 * @file
 * The lbp-serve-v1 client: what `lbpsweep --server` runs instead of a
 * local runSweep().
 *
 * runServeSweep() connects, performs the hello exchange, submits one
 * sweep request and consumes the reply stream: `event` frames are
 * unwrapped back into the exact JSON-lines the server-side sweep
 * emitted (so --event-log files match local runs byte for byte),
 * `cell` events drive the same live progress line, and the final
 * `result` frame carries the CSV and manifest pre-rendered by the
 * server — the client writes those bytes out verbatim, which is what
 * makes server mode indistinguishable from a local sweep.
 * Wire format: docs/SERVER.md.
 */

#ifndef LBP_SERVE_CLIENT_HH
#define LBP_SERVE_CLIENT_HH

#include <cstdint>
#include <cstdio>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "serve/protocol.hh"

namespace lbp {

/** One sweep request, expressed with the lbpsweep CLI's vocabulary. */
struct ServeClientOptions
{
    std::string host = "127.0.0.1";  ///< server address
    std::uint16_t port = 0;          ///< server port

    /** Raw spec text (--spec file contents); empty = flags only. */
    std::string specText;

    unsigned suite = 8;      ///< workload cap (--suite)
    bool fullSuite = false;  ///< --suite all
    std::uint64_t warmupInstrs = 40000;   ///< --warmup
    std::uint64_t measureInstrs = 60000;  ///< --instr

    /** Sink for the unwrapped sweep event lines; null = off. */
    std::ostream *eventLog = nullptr;

    /** Live progress/ETA line sink (stderr in lbpsweep); null = off. */
    std::FILE *progress = nullptr;

    /** Per-reply-line read timeout; covers the longest single gap
     *  between server frames, not the whole sweep. */
    double timeoutSeconds = 3600.0;

    /** Client-chosen trace id sent with the submit; empty = let the
     *  server mint one. Either way the accepted frame's trace_id is
     *  reported back in ServeSweepResult::traceId. */
    std::string traceId;
};

/** Everything a `result` frame carried, plus hello metadata. */
struct ServeSweepResult
{
    std::uint64_t cells = 0;  ///< configs x workloads served
    bool dedup = false;       ///< request coalesced onto another

    /** Sweep counters in sweepMetrics() order (name, value). */
    std::vector<std::pair<std::string, double>> counters;

    /** Per-config provenance summary. */
    struct ConfigSummary
    {
        std::string name;     ///< spec-facing config name
        std::string label;    ///< configLabel() of the resolved config
        std::string key;      ///< configKey() cache identity
        std::string outcome;  ///< "simulated" / "store_hit" / "cache_hit"
        double wallSeconds = 0.0;
    };
    std::vector<ConfigSummary> configs;

    std::string csv;       ///< writeSweepCsv() bytes, verbatim
    std::string manifest;  ///< writeSweepManifest() bytes, verbatim

    std::string serverFingerprint;  ///< server hello: build fingerprint
    std::string serverGitSha;       ///< server hello: git SHA
    unsigned serverJobs = 0;        ///< server hello: resolved workers

    /** Server-assigned trace id (accepted frame); also embedded in the
     *  manifest, correlating this run with the daemon's event log. */
    std::string traceId;

    /** Counter by sweepMetrics() name; @p dflt when absent. */
    double counter(const std::string &name, double dflt = 0.0) const;
};

/**
 * Run one sweep against a daemon. On success fills @p out and returns
 * true; on any failure — connect, protocol mismatch, `rejected`,
 * `error`, timeout — fills @p error with a one-line description and
 * returns false.
 */
bool runServeSweep(const ServeClientOptions &opts, ServeSweepResult &out,
                   std::string &error);

} // namespace lbp

#endif // LBP_SERVE_CLIENT_HH
