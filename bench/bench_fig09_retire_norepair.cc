/**
 * @file
 * Figure 9 reproduction: IPC impact per category when the BHT is only
 * updated at retirement, and when the speculative BHT state is never
 * repaired — the two "avoid the repair problem" non-solutions —
 * normalized against perfect repair.
 */

#include "bench/bench_common.hh"
#include "common/stats.hh"

using namespace lbp;
using namespace lbp::bench;

int
main()
{
    Context ctx = Context::make(
        "Figure 9: update-at-retire and no-repair, per category");

    const SuiteResult &perfect = ctx.perfect();
    const SuiteResult &retire =
        ctx.run(ctx.withScheme(RepairKind::RetireUpdate));
    const SuiteResult &norep =
        ctx.run(ctx.withScheme(RepairKind::NoRepair));

    const auto agg_p = aggregateByCategory(ctx.baseline, perfect);
    const auto agg_r = aggregateByCategory(ctx.baseline, retire);
    const auto agg_n = aggregateByCategory(ctx.baseline, norep);

    TextTable t({"Category", "perfect IPC", "retire IPC", "no-repair IPC",
                 "retire %of perfect"});
    for (std::size_t i = 0; i < agg_p.size(); ++i) {
        t.addRow({agg_p[i].name,
                  fmtPercent(agg_p[i].ipcGainPct / 100.0, 2),
                  fmtPercent(agg_r[i].ipcGainPct / 100.0, 2),
                  fmtPercent(agg_n[i].ipcGainPct / 100.0, 2),
                  fmtPercent(retainedPct(agg_r[i].ipcGainPct,
                                         agg_p[i].ipcGainPct) /
                                 100.0, 0)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("paper: update-at-retire retains ~41%% of perfect "
                "gains; no repair retains none, with MM/BP losing "
                "performance outright.\n");
    return reportThroughput("bench_fig09_retire_norepair");
}
