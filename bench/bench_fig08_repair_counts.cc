/**
 * @file
 * Figure 8 reproduction: the average and maximum number of BHT entries
 * that need repair per misprediction (distinct PCs speculatively
 * updated after the mispredicting branch), measured under perfect
 * repair with CBPw-Loop128 across the suite.
 *
 * `--port-analysis <csv>` additionally runs a forensics-enabled
 * forward-walk pass and writes the repair-port sensitivity table
 * (repairs needed vs available OBQ read / BHT write ports) the paper's
 * port-cost argument rests on — see docs/SWEEP.md.
 */

#include <algorithm>
#include <cstring>
#include <fstream>

#include "bench/bench_common.hh"
#include "common/stats.hh"
#include "obs/port_analysis.hh"

using namespace lbp;
using namespace lbp::bench;

namespace {

/**
 * The --port-analysis pass: per-squash OBQ-walk and BHT-write work
 * from the forensics channel, aggregated over candidate port counts.
 * Uses runSuite directly — observability is excluded from the suite
 * cache key, so cached results carry no forensics records.
 */
void
portAnalysisPass(const Context &ctx, const char *csv_path)
{
    SimConfig cfg = ctx.withScheme(RepairKind::ForwardWalk);
    cfg.obs.forensics = true;
    const SuiteResult res = runSuite(ctx.suite, cfg, ctx.env.jobs);

    std::vector<const ObsRun *> obs;
    std::uint64_t records = 0;
    for (const RunResult &r : res.runs) {
        if (r.obs) {
            obs.push_back(r.obs.get());
            records += r.obs->squashes.size();
        }
    }
    const auto rows = portAnalysis(obs, {1, 2, 4, 8});
    std::ofstream out(csv_path);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", csv_path);
        std::exit(1);
    }
    writePortAnalysisCsv(out, rows);
    std::printf("\nrepair-port sensitivity (forward-walk, %llu squash "
                "records):\n%s",
                static_cast<unsigned long long>(records),
                formatPortAnalysis(rows).c_str());
    std::printf("wrote port-analysis CSV to %s\n", csv_path);
}

} // namespace

int
main(int argc, char **argv)
{
    const char *port_csv = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--port-analysis") == 0 &&
            i + 1 < argc) {
            port_csv = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--port-analysis <csv>]\n", argv[0]);
            return 1;
        }
    }

    Context ctx = Context::make(
        "Figure 8: BHT repairs required per misprediction");

    const SuiteResult &res = ctx.perfect();

    std::vector<const RunResult *> sorted;
    for (const RunResult &r : res.runs)
        sorted.push_back(&r);
    std::sort(sorted.begin(), sorted.end(),
              [](const RunResult *a, const RunResult *b) {
                  return a->avgRepairsNeeded < b->avgRepairsNeeded;
              });

    double sum_avg = 0.0;
    std::uint64_t global_max = 0;
    for (const RunResult *r : sorted) {
        sum_avg += r->avgRepairsNeeded;
        global_max = std::max(global_max, r->maxRepairsNeeded);
    }

    TextTable t({"workload (sorted by avg)", "avg repairs/misp",
                 "max repairs/misp"});
    const std::size_t n = sorted.size();
    for (std::size_t p :
         {std::size_t{0}, n / 4, n / 2, 3 * n / 4, n - 3, n - 2, n - 1}) {
        if (p >= n)
            continue;
        t.addRow({sorted[p]->workload,
                  fmtDouble(sorted[p]->avgRepairsNeeded, 1),
                  std::to_string(sorted[p]->maxRepairsNeeded)});
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("suite: mean of per-workload averages = %.1f, "
                "global max = %llu\n",
                sum_avg / n, (unsigned long long)global_max);
    std::printf("paper: average ~5 repairs per misprediction (up to "
                "~16 for some workloads); worst case 61 writes.\n");

    if (port_csv)
        portAnalysisPass(ctx, port_csv);
    return reportThroughput("bench_fig08_repair_counts");
}
