/**
 * @file
 * Figure 8 reproduction: the average and maximum number of BHT entries
 * that need repair per misprediction (distinct PCs speculatively
 * updated after the mispredicting branch), measured under perfect
 * repair with CBPw-Loop128 across the suite.
 */

#include <algorithm>

#include "bench/bench_common.hh"
#include "common/stats.hh"

using namespace lbp;
using namespace lbp::bench;

int
main()
{
    Context ctx = Context::make(
        "Figure 8: BHT repairs required per misprediction");

    const SuiteResult &res = ctx.perfect();

    std::vector<const RunResult *> sorted;
    for (const RunResult &r : res.runs)
        sorted.push_back(&r);
    std::sort(sorted.begin(), sorted.end(),
              [](const RunResult *a, const RunResult *b) {
                  return a->avgRepairsNeeded < b->avgRepairsNeeded;
              });

    double sum_avg = 0.0;
    std::uint64_t global_max = 0;
    for (const RunResult *r : sorted) {
        sum_avg += r->avgRepairsNeeded;
        global_max = std::max(global_max, r->maxRepairsNeeded);
    }

    TextTable t({"workload (sorted by avg)", "avg repairs/misp",
                 "max repairs/misp"});
    const std::size_t n = sorted.size();
    for (std::size_t p :
         {std::size_t{0}, n / 4, n / 2, 3 * n / 4, n - 3, n - 2, n - 1}) {
        if (p >= n)
            continue;
        t.addRow({sorted[p]->workload,
                  fmtDouble(sorted[p]->avgRepairsNeeded, 1),
                  std::to_string(sorted[p]->maxRepairsNeeded)});
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("suite: mean of per-workload averages = %.1f, "
                "global max = %llu\n",
                sum_avg / n, (unsigned long long)global_max);
    std::printf("paper: average ~5 repairs per misprediction (up to "
                "~16 for some workloads); worst case 61 writes.\n");
    return reportThroughput("bench_fig08_repair_counts");
}
