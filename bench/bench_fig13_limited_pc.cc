/**
 * @file
 * Figure 13 reproduction: limited-PC repair as the number of repaired
 * PCs M scales, including the paper's alternative policy of
 * invalidating the non-repaired polluted entries (section 3.3 found
 * leave-as-is better on their traces; both are measured here).
 */

#include "bench/bench_common.hh"
#include "common/stats.hh"

using namespace lbp;
using namespace lbp::bench;

int
main()
{
    Context ctx = Context::make("Figure 13: limited-PC repair");

    const SuiteResult &perfect = ctx.perfect();
    const double perfect_ipc = ipcGainPct(ctx.baseline, perfect);

    TextTable t({"config", "MPKI redn", "IPC gain", "% of perfect"});
    for (const unsigned m : {2u, 4u, 8u, 16u}) {
        SimConfig cfg = ctx.withScheme(RepairKind::LimitedPc);
        cfg.repair.limitedM = m;
        cfg.repair.ports.bhtWritePorts = std::min(m, 4u);
        const SuiteResult &res = ctx.run(cfg);
        const double ipc = ipcGainPct(ctx.baseline, res);
        t.addRow({std::to_string(m) + "PC repair",
                  fmtPercent(mpkiReductionPct(ctx.baseline, res) / 100.0,
                             1),
                  fmtPercent(ipc / 100.0, 2),
                  fmtPercent(retainedPct(ipc, perfect_ipc) / 100.0, 0)});
    }
    {
        SimConfig cfg = ctx.withScheme(RepairKind::LimitedPc);
        cfg.repair.limitedM = 4;
        cfg.repair.limitedInvalidate = true;
        const SuiteResult &res = ctx.run(cfg);
        const double ipc = ipcGainPct(ctx.baseline, res);
        t.addRow({"4PC + invalidate rest",
                  fmtPercent(mpkiReductionPct(ctx.baseline, res) / 100.0,
                             1),
                  fmtPercent(ipc / 100.0, 2),
                  fmtPercent(retainedPct(ipc, perfect_ipc) / 100.0, 0)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("paper: 2PC retains 56%% and 4PC 61%% of perfect "
                "gains; even 2PC beats port-limited backward walk "
                "because the right PCs get repaired first.\n");
    return reportThroughput("bench_fig13_limited_pc");
}
