/**
 * @file
 * Engineering microbenchmarks (google-benchmark): raw throughput of
 * the predictor structures and the simulator itself. Not a paper
 * figure — this is how we keep the 202-workload sweeps fast enough to
 * run the whole figure set in minutes.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bpu/loop_predictor.hh"
#include "bpu/tage.hh"
#include "common/random.hh"
#include "common/telemetry.hh"
#include "core/core.hh"
#include "workload/suite.hh"

using namespace lbp;

namespace {

void
BM_TagePredictUpdate(benchmark::State &state)
{
    TagePredictor tage;
    Xoshiro256ss rng(1);
    Addr pc = 0x400000;
    TagePredStorage p;
    for (auto _ : state) {
        (void)_;
        const bool dir = rng.chance(0.6);
        benchmark::DoNotOptimize(tage.predict(pc, p));
        tage.specUpdateHist(pc, dir);
        tage.train(pc, dir, p);
        pc = 0x400000 + ((pc + 4) & 0x3ff);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TagePredictUpdate);

void
BM_TageCheckpointRestore(benchmark::State &state)
{
    TagePredictor tage;
    for (unsigned i = 0; i < 64; ++i)
        tage.specUpdateHist(0x400000 + 4 * i, i & 1);
    TageCheckpointStorage ckpt;
    for (auto _ : state) {
        (void)_;
        tage.checkpoint(ckpt);
        tage.specUpdateHist(0x400100, true);
        tage.restore(ckpt);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TageCheckpointRestore);

void
BM_LoopPredictLookup(benchmark::State &state)
{
    LoopPredictor loop;
    for (unsigned i = 0; i < 2000; ++i) {
        const Addr pc = 0x400000 + 4 * (i % 40);
        loop.specUpdate(pc, (i % 9) != 8);
        loop.retireTrain(pc, (i % 9) != 8);
    }
    Addr pc = 0x400000;
    for (auto _ : state) {
        (void)_;
        benchmark::DoNotOptimize(loop.predict(pc));
        pc = 0x400000 + ((pc + 4) & 0xff);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LoopPredictLookup);

void
BM_LoopSnapshotRestore(benchmark::State &state)
{
    LoopPredictor loop;
    for (unsigned i = 0; i < 500; ++i)
        loop.specUpdate(0x400000 + 4 * (i % 60), i & 1);
    for (auto _ : state) {
        (void)_;
        const auto snap = loop.snapshotBht();
        loop.restoreBht(snap);
        benchmark::DoNotOptimize(snap.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LoopSnapshotRestore);

void
BM_CoreSimulation(benchmark::State &state)
{
    const Program prog =
        buildWorkload(categoryProfiles()[0], 0, SuiteOptions{}.seed);
    SimConfig cfg;
    cfg.useLocal = true;
    cfg.repair.kind = RepairKind::ForwardWalk;
    for (auto _ : state) {
        (void)_;
        OooCore core(prog, cfg);
        core.run(20000);
        benchmark::DoNotOptimize(core.stats().cycles);
    }
    state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_CoreSimulation)->Unit(benchmark::kMillisecond);

void
BM_WorkloadGeneration(benchmark::State &state)
{
    for (auto _ : state) {
        (void)_;
        const Program prog = buildWorkload(
            categoryProfiles()[0], 0, SuiteOptions{}.seed);
        benchmark::DoNotOptimize(prog.blocks.size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorkloadGeneration);

void
BM_CoreStepCycle(benchmark::State &state)
{
    // Same fixed program as the telemetry probe below: per-iteration
    // cost here is the stepCycle loop alone (the core persists across
    // iterations), so data-layout changes show up undiluted by
    // construction or suite orchestration.
    const Program prog =
        buildWorkload(categoryProfiles()[0], 0, SuiteOptions{}.seed);
    SimConfig cfg;
    cfg.useLocal = true;
    cfg.repair.kind = RepairKind::ForwardWalk;
    OooCore core(prog, cfg);
    core.run(20000);  // prime predictors and caches
    constexpr std::uint64_t chunk = 10000;
    for (auto _ : state) {
        (void)_;
        core.run(chunk);
        benchmark::DoNotOptimize(core.stats().cycles);
    }
    state.SetItemsProcessed(state.iterations() * chunk);
}
BENCHMARK(BM_CoreStepCycle);

/**
 * Direct stepCycle-level throughput probe: one warmed core, a fixed
 * program and instruction count, timed with the telemetry stopwatch so
 * the result lands in the same registry/JSON that the suite benches
 * feed (and that tools/perf_compare.py gates in CI).
 */
void
coreThroughputProbe()
{
    constexpr std::uint64_t instrs = 2000000;
    const Program prog =
        buildWorkload(categoryProfiles()[0], 0, SuiteOptions{}.seed);
    SimConfig cfg;
    cfg.useLocal = true;
    cfg.repair.kind = RepairKind::ForwardWalk;
    OooCore core(prog, cfg);
    core.run(100000);  // warm up before the timed window
    Stopwatch sw;
    core.run(instrs);
    const double wall = sw.seconds();

    SuiteTelemetry t;
    t.label = "core-stepcycle-micro";
    t.workloads = 1;
    t.simInstrs = instrs;
    t.wallSeconds = wall;
    TelemetryRegistry::process().record(t);
    std::printf("core stepCycle probe: %llu instrs in %.3fs = "
                "%.2f ns/instr, %.2f Minstr/s\n",
                static_cast<unsigned long long>(instrs), wall,
                wall / static_cast<double>(instrs) * 1e9,
                t.minstrPerSec());
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    coreThroughputProbe();
    TelemetryRegistry::process().printSummary(stdout);
    TelemetryRegistry::process().writeJson(throughputJsonPath(),
                                           "bench_micro_predictors");
    return 0;
}
