/**
 * @file
 * Figure 10 reproduction: the prior repair techniques — backward-walk
 * history file and whole-BHT snapshots — across structure/port
 * configurations M-N-P (M entries, N checkpoint read ports, P BHT
 * write ports), normalized to perfect repair.
 */

#include "bench/bench_common.hh"
#include "common/stats.hh"

using namespace lbp;
using namespace lbp::bench;

int
main()
{
    Context ctx = Context::make(
        "Figure 10: backward-walk HF and snapshot repair vs ports");

    const SuiteResult &perfect = ctx.perfect();
    const double perfect_ipc = ipcGainPct(ctx.baseline, perfect);
    std::printf("perfect repair: %+0.2f%% IPC, %+0.1f%% MPKI\n\n",
                perfect_ipc, mpkiReductionPct(ctx.baseline, perfect));

    const RepairPorts configs[] = {
        {64, 64, 64}, {16, 16, 16}, {32, 8, 8}, {32, 4, 4},
    };

    TextTable t({"Scheme", "config M-N-P", "MPKI redn", "IPC gain",
                 "% of perfect"});
    for (const RepairKind kind :
         {RepairKind::BackwardWalk, RepairKind::Snapshot}) {
        for (const RepairPorts &ports : configs) {
            SimConfig cfg = ctx.withScheme(kind);
            cfg.repair.ports = ports;
            const SuiteResult &res = ctx.run(cfg);
            const double ipc = ipcGainPct(ctx.baseline, res);
            t.addRow({repairKindName(kind),
                      std::to_string(ports.entries) + "-" +
                          std::to_string(ports.readPorts) + "-" +
                          std::to_string(ports.bhtWritePorts),
                      fmtPercent(mpkiReductionPct(ctx.baseline, res) /
                                     100.0, 1),
                      fmtPercent(ipc / 100.0, 2),
                      fmtPercent(retainedPct(ipc, perfect_ipc) / 100.0,
                                 0)});
        }
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("paper: with 64-64-64 both schemes retain most of the "
                "gains; at realistic ports backward-walk holds ~50%% "
                "while snapshot (32-8-8) drops well below 50%%.\n");
    return reportThroughput("bench_fig10_prior");
}
