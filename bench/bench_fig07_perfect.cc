/**
 * @file
 * Figure 7 reproduction: the best-case potential of CBPw-Loop with
 * perfect, instantaneous BHT repair.
 *   (a) MPKI reduction over TAGE per category for Loop64/128/256,
 *   (b) IPC gain per category for the same configurations,
 *   (c) the per-workload IPC S-curve for CBPw-Loop128, with the named
 *       standout workloads the paper discusses.
 */

#include "bench/bench_common.hh"
#include "common/stats.hh"

using namespace lbp;
using namespace lbp::bench;

int
main()
{
    Context ctx = Context::make(
        "Figure 7: CBPw-Loop potential with perfect repair");

    const struct
    {
        const char *name;
        LoopConfig loop;
    } sizes[] = {
        {"CBPw-Loop64", LoopConfig::entries64()},
        {"CBPw-Loop128", LoopConfig::entries128()},
        {"CBPw-Loop256", LoopConfig::entries256()},
    };

    const SuiteResult *results[3];
    for (int i = 0; i < 3; ++i) {
        SimConfig cfg = ctx.withScheme(RepairKind::Perfect);
        cfg.repair.loop = sizes[i].loop;
        results[i] = &ctx.run(cfg);
    }

    // (a) + (b): per-category rows for each size.
    for (int i = 0; i < 3; ++i) {
        std::printf("--- %s (PT %.2f KB) ---\n", sizes[i].name,
                    results[i]->runs.front().localKB);
        TextTable t({"Category", "MPKI redn (7a)", "IPC gain (7b)"});
        for (const CategoryAgg &c :
             aggregateByCategory(ctx.baseline, *results[i])) {
            t.addRow({c.name, fmtPercent(c.mpkiReductionPct / 100.0, 1),
                      fmtPercent(c.ipcGainPct / 100.0, 2)});
        }
        std::printf("%s\n", t.render().c_str());
    }
    std::printf("paper: MPKI redn 28.3%% / 30.5%% / 31.2%% and IPC gain "
                "3.6%% / 3.8%% / 3.95%% for Loop64/128/256.\n\n");

    // (c) S-curve for Loop128.
    const auto curve = ipcSCurve(ctx.baseline, *results[1]);
    std::printf("--- IPC S-curve, CBPw-Loop128 (7c) ---\n");
    const std::size_t n = curve.size();
    const std::size_t picks[] = {0,       n / 10,     n / 4, n / 2,
                                 3 * n / 4, 9 * n / 10, n - 1};
    TextTable t({"percentile", "workload", "IPC gain"});
    for (std::size_t p : picks) {
        t.addRow({fmtDouble(100.0 * p / (n - 1), 0) + "%",
                  curve[p].first, fmtPercent(curve[p].second / 100.0, 2)});
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("named standouts:\n");
    for (const auto &[name, gain] : curve) {
        if (name == "cloud-compression" || name == "tabletmark-email" ||
            name == "sysmark-photoshop" || name == "eembc-dither") {
            std::printf("  %-20s %+0.2f%%\n", name.c_str(), gain);
        }
    }
    std::printf("paper: cloud-compression and tabletmark-email gain "
                ">15%%; eembc-dither loses (BHT/PT thrash) and only "
                "recovers at 256 entries.\n");
    return reportThroughput("bench_fig07_perfect");
}
